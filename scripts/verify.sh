#!/bin/sh
# verify.sh — the repository's full verification gate: build, vet, the
# complete test suite, and the race detector over the lock-free/concurrent
# packages (queue, collective, obs) whose bugs only -race reliably catches.
# CI and `make verify` both run exactly this script.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrent core packages)"
go test -race ./internal/queue ./internal/collective ./internal/obs ./internal/rma

echo "== chaos suite (watchdog/abort/fault-injection under -race)"
go test -race -count=1 \
    -run 'TestChaos|TestWatchdog|TestPanic|TestRankAbort|TestAllPanicked|TestDeadline|TestNilRank|TestAbortEmits|TestPoison|TestDeadlockDiagnosis|TestAbortFrom|TestFaultInjection|TestRMA' \
    ./internal/core ./internal/ssw ./pure

echo "== purebench RMA smoke (one-sided vs two-sided halo, quick scale)"
go run ./cmd/purebench -quick -exp rma

echo "verify: OK"
