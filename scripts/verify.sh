#!/bin/sh
# verify.sh — the repository's full verification gate: build, vet, the
# complete test suite, the race detector over every concurrent package,
# a short-budget pass of the deterministic schedule checker and the
# wire-format fuzzers, and the chaos suite.  CI and `make verify` both
# run exactly this script.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrent core packages)"
go test -race ./internal/queue ./internal/collective ./internal/obs ./internal/rma \
    ./internal/sched ./internal/netsim ./internal/ssw ./internal/core ./internal/transport \
    ./internal/statsd ./internal/shmem ./internal/apps/shmem

echo "== deterministic schedule checker (short budget; full run: make check)"
PURE_CHECK_SEEDS=64 go test -tags purecheck -count=1 ./internal/check

echo "== fuzz smoke (wire-format decoders, short budget; full run: make fuzz)"
go test -count=1 -fuzz FuzzFrameDecode -fuzztime 5s ./internal/rma
go test -count=1 -fuzz FuzzCodecRoundTrip -fuzztime 5s ./internal/codec
go test -count=1 -fuzz FuzzFrameDecode -fuzztime 5s ./internal/transport
go test -count=1 -fuzz FuzzControlDecode -fuzztime 5s ./internal/transport
go test -count=1 -fuzz FuzzStatsdParse -fuzztime 5s ./internal/statsd
go test -count=1 -fuzz FuzzShmemFrame -fuzztime 5s ./internal/shmem

echo "== chaos suite (watchdog/abort/fault-injection under -race)"
go test -race -count=1 \
    -run 'TestChaos|TestWatchdog|TestPanic|TestRankAbort|TestAllPanicked|TestDeadline|TestNilRank|TestAbortEmits|TestPoison|TestDeadlockDiagnosis|TestAbortFrom|TestFaultInjection|TestRMA' \
    ./internal/core ./internal/ssw ./pure

echo "== zero-allocation gate (eager persistent-channel endpoint hot paths)"
# The Channel API's whole point is an allocation-free eager fast path; this
# gate is machine-independent (allocs/op, not ns/op), so it holds on any
# hardware.  Both blocking endpoints and the pooled nonblocking pair must
# report 0 allocs/op.
allocout="$(go test -run XXX -bench 'BenchmarkChannelPingPong$|BenchmarkChannelIsendIrecv$' \
    -benchmem -benchtime 5000x ./internal/core)"
echo "$allocout" | grep '^Benchmark'
bad="$(echo "$allocout" | awk '/^Benchmark/ {
    for (i = 2; i < NF; i++)
        if ($(i + 1) == "allocs/op" && $i + 0 != 0) print $1, $i, "allocs/op"
}')"
if [ -n "$bad" ]; then
    echo "verify: FAIL — eager endpoint benchmarks allocate:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "== TCP transport chaos (real sockets; full run: make chaos-net)"
go test -race -count=1 -run 'TestChaosTCP' ./internal/core
go test -count=1 ./internal/livechaos

echo "== purerun multi-process smoke (2 nodes x 4 ranks over real TCP)"
workerbin="$(mktemp /tmp/pure-worker.XXXXXX)"
trap 'rm -f "$workerbin"' EXIT
go build -o "$workerbin" ./examples/purerun
runout="$(go run ./cmd/purerun -n 2 -ranks 4 -timeout 60s "$workerbin")"
echo "$runout" | tail -2
case "$runout" in
*"[node 0] OK ranks=4 nodes=2"*) ;;
*)
    echo "verify: FAIL — purerun smoke never printed node 0's OK line" >&2
    echo "$runout" >&2
    exit 1 ;;
esac

echo "== cluster observability smoke (per-node dumps -> puretrace merge -> cross-node match)"
# The full pipeline from docs/OBSERVABILITY.md "Cluster observability": a
# real 2-process job writes one v2 trace dump per node (clock samples, link
# events, placement), puretrace merge aligns them on the heartbeat-derived
# clock offsets, and the merged analysis must pair remote sends with their
# receives on the other machine and report sequence-matched link flows.
obsdir="$(mktemp -d /tmp/pure-obs.XXXXXX)"
trap 'rm -f "$workerbin"; rm -rf "$obsdir"' EXIT
# 5ms heartbeats + enough iterations that both directions collect clock
# samples (each sample needs a heartbeat echoed back).
runout="$(PURE_HB_MS=5 PURE_ITERS=2000 PURE_TRACE_BIN="$obsdir/trace.bin" \
    go run ./cmd/purerun -n 2 -ranks 4 -timeout 60s "$workerbin")"
echo "$runout" | tail -2
for node in 0 1; do
    if [ ! -f "$obsdir/trace.bin.node$node" ]; then
        echo "verify: FAIL — node $node never wrote its trace dump" >&2
        echo "$runout" >&2
        exit 1
    fi
done
mergeout="$(go run ./cmd/puretrace merge -o "$obsdir/merged.bin" \
    "$obsdir/trace.bin.node0" "$obsdir/trace.bin.node1")"
echo "$mergeout"
case "$mergeout" in
*"offset "*"via node"*) ;;
*)
    echo "verify: FAIL — merge aligned no node clocks (no offset line)" >&2
    exit 1 ;;
esac
mergedout="$(go run ./cmd/puretrace analyze "$obsdir/merged.bin")"
echo "$mergedout" | head -3
crossmatched="$(echo "$mergedout" | awk '$1 == "remote" {
    for (i = 2; i <= NF; i++) if (sub(/^matched=/, "", $i)) print $i }')"
if [ -z "$crossmatched" ] || [ "$crossmatched" -eq 0 ]; then
    echo "verify: FAIL — merged analyze matched no cross-node message pairs" >&2
    echo "$mergedout" >&2
    exit 1
fi
echo "cross-node matched pairs: $crossmatched"
case "$mergedout" in
*"seq-matched="*) ;;
*)
    echo "verify: FAIL — merged analyze reports no cross-node link flows" >&2
    echo "$mergedout" >&2
    exit 1 ;;
esac

echo "== cluster monitor smoke (purerun -monitor serves every node's link telemetry)"
go test -count=1 -run 'TestRunMonitorServesClusterView' ./cmd/purerun

echo "== monitored TCP overhead gate (min-over-runs ping-pong, <5%)"
# Per-peer link telemetry must be effectively free on the frame path: the
# counters are lock-free atomics and the labeled-series mirror only syncs on
# scrape.  Minimum-over-6-runs filters scheduler noise on shared CI boxes; a
# persistently high ratio across 3 attempts is a real regression.
attempts=0
while :; do
    attempts=$((attempts + 1))
    benchout="$(go test -run XXX -bench 'BenchmarkTCPPingPong8B$|BenchmarkTCPPingPong8BMonitored$' \
        -benchtime 2000x -count=6 ./internal/core)"
    echo "$benchout" | grep '^Benchmark'
    verdict="$(echo "$benchout" | awk '
        /^BenchmarkTCPPingPong8B-/          { if (!p || $3 + 0 < p) p = $3 + 0 }
        /^BenchmarkTCPPingPong8BMonitored-/ { if (!m || $3 + 0 < m) m = $3 + 0 }
        END {
            if (!p || !m) { print "unparsed"; exit }
            printf "plain=%.0fns monitored=%.0fns ratio=%.3f %s\n",
                p, m, m / p, (m <= p * 1.05 ? "ok" : "high")
        }')"
    echo "monitored-overhead: $verdict"
    case "$verdict" in
    *ok) break ;;
    *high)
        if [ "$attempts" -ge 3 ]; then
            echo "verify: FAIL — monitored TCP ping-pong stayed >5% over plain for $attempts attempts" >&2
            exit 1
        fi ;;
    *)
        echo "verify: FAIL — overhead gate could not parse benchmark output" >&2
        exit 1 ;;
    esac
done

echo "== statsd pipeline smoke (checksum-asserted flush totals; docs/STATSD.md)"
# Three shapes: blocking (every event applied), drop-policy backpressure
# (shed load still exactly accounted), and skewed stealing drains.  EXACT
# means the zero-sum Allreduce proof held: applied == committed on every
# counter, sum and histogram bin, so any lost or double-counted event fails.
smokeout="$(go run ./cmd/purestatsd -events 20000 -rounds 2)"
echo "$smokeout"
case "$smokeout" in *"EXACT"*) ;; *)
    echo "verify: FAIL — statsd blocking smoke not EXACT" >&2; exit 1 ;;
esac
case "$smokeout" in *"applied 20000, dropped 0"*) ;; *)
    echo "verify: FAIL — statsd blocking smoke lost events" >&2; exit 1 ;;
esac
smokeout="$(go run ./cmd/purestatsd -events 20000 -rounds 2 -drop -pbq 4 -batch 16 -zipf 1.2 -steal -workscale 32)"
echo "$smokeout"
case "$smokeout" in *"EXACT"*) ;; *)
    echo "verify: FAIL — statsd drop/steal smoke not EXACT" >&2; exit 1 ;;
esac

echo "== statsd zero-allocation gate (steady-state parse + aggregation paths)"
# The serving pipeline's throughput claim rests on an allocation-free
# steady state: parse is zero-copy and aggregation hits the slab.  Like the
# endpoint gate above, allocs/op is machine-independent.
allocout="$(go test -run XXX -bench 'BenchmarkStatsdParse$|BenchmarkStatsdAggregate$' \
    -benchmem -benchtime 5000x ./internal/statsd)"
echo "$allocout" | grep '^Benchmark'
bad="$(echo "$allocout" | awk '/^Benchmark/ {
    for (i = 2; i < NF; i++)
        if ($(i + 1) == "allocs/op" && $i + 0 != 0) print $1, $i, "allocs/op"
}')"
if [ -n "$bad" ]; then
    echo "verify: FAIL — statsd steady-state benchmarks allocate:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "== shmem PGAS smoke (exactness-gated histogram/BFS/mailbox table; docs/SHMEM.md)"
# Every row of the shmem table is exactness-gated: the last column is
# "yes" only if the run's bit-exact comparison against the serial oracle
# held (a lost remote AtomicAdd or reordered mailbox message flips it to
# "NO"), so grepping for NO asserts histogram + BFS + mailbox exactness.
shmemout="$(go run ./cmd/purebench -quick -exp shmem)"
echo "$shmemout"
case "$shmemout" in *" NO"*)
    echo "verify: FAIL — shmem table has an inexact row" >&2; exit 1 ;;
esac

echo "== shmem model tests under -race (short budget; full run: make check)"
PURE_CHECK_SEEDS=16 go test -race -tags purecheck -count=1 -run 'TestCheckShmem|TestCheckRMARegistry' ./internal/check

echo "== shmem zero-allocation gate (intra-node Put/AtomicAdd hot paths)"
# The PGAS claim rests on intra-node addressed ops being direct copies
# and hardware atomics — allocation-free, machine-independently.
allocout="$(go test -run XXX -bench 'BenchmarkShmemPut$|BenchmarkShmemAtomicAdd$' \
    -benchmem -benchtime 5000x ./internal/core)"
echo "$allocout" | grep '^Benchmark'
bad="$(echo "$allocout" | awk '/^Benchmark/ {
    for (i = 2; i < NF; i++)
        if ($(i + 1) == "allocs/op" && $i + 0 != 0) print $1, $i, "allocs/op"
}')"
if [ -n "$bad" ]; then
    echo "verify: FAIL — shmem intra-node benchmarks allocate:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "== purebench RMA smoke (one-sided vs two-sided halo, quick scale)"
go run ./cmd/purebench -quick -exp rma

echo "== trace analytics smoke (traced stencil -> binary dump -> puretrace analyze)"
tracebin="$(mktemp /tmp/pure-trace.XXXXXX.bin)"
trap 'rm -f "$workerbin" "$tracebin"; rm -rf "$obsdir"' EXIT
go run ./cmd/purebench -trace-bin "$tracebin"
out="$(go run ./cmd/puretrace analyze "$tracebin")"
echo "$out" | head -3
case "$out" in
*"matched messages: 0 "*)
    echo "verify: FAIL — puretrace analyze matched no messages" >&2
    exit 1 ;;
*"matched messages: "*) ;;
*)
    echo "verify: FAIL — puretrace analyze produced no matched-message summary" >&2
    exit 1 ;;
esac

echo "verify: OK"
