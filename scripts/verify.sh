#!/bin/sh
# verify.sh — the repository's full verification gate: build, vet, the
# complete test suite, the race detector over every concurrent package,
# a short-budget pass of the deterministic schedule checker and the
# wire-format fuzzers, and the chaos suite.  CI and `make verify` both
# run exactly this script.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrent core packages)"
go test -race ./internal/queue ./internal/collective ./internal/obs ./internal/rma \
    ./internal/sched ./internal/netsim ./internal/ssw ./internal/core

echo "== deterministic schedule checker (short budget; full run: make check)"
PURE_CHECK_SEEDS=64 go test -tags purecheck -count=1 ./internal/check

echo "== fuzz smoke (wire-format decoders, short budget; full run: make fuzz)"
go test -count=1 -fuzz FuzzFrameDecode -fuzztime 5s ./internal/rma
go test -count=1 -fuzz FuzzCodecRoundTrip -fuzztime 5s ./internal/codec

echo "== chaos suite (watchdog/abort/fault-injection under -race)"
go test -race -count=1 \
    -run 'TestChaos|TestWatchdog|TestPanic|TestRankAbort|TestAllPanicked|TestDeadline|TestNilRank|TestAbortEmits|TestPoison|TestDeadlockDiagnosis|TestAbortFrom|TestFaultInjection|TestRMA' \
    ./internal/core ./internal/ssw ./pure

echo "== zero-allocation gate (eager persistent-channel endpoint hot paths)"
# The Channel API's whole point is an allocation-free eager fast path; this
# gate is machine-independent (allocs/op, not ns/op), so it holds on any
# hardware.  Both blocking endpoints and the pooled nonblocking pair must
# report 0 allocs/op.
allocout="$(go test -run XXX -bench 'BenchmarkChannelPingPong$|BenchmarkChannelIsendIrecv$' \
    -benchmem -benchtime 5000x ./internal/core)"
echo "$allocout" | grep '^Benchmark'
bad="$(echo "$allocout" | awk '/^Benchmark/ {
    for (i = 2; i < NF; i++)
        if ($(i + 1) == "allocs/op" && $i + 0 != 0) print $1, $i, "allocs/op"
}')"
if [ -n "$bad" ]; then
    echo "verify: FAIL — eager endpoint benchmarks allocate:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "== purebench RMA smoke (one-sided vs two-sided halo, quick scale)"
go run ./cmd/purebench -quick -exp rma

echo "== trace analytics smoke (traced stencil -> binary dump -> puretrace analyze)"
tracebin="$(mktemp /tmp/pure-trace.XXXXXX.bin)"
trap 'rm -f "$tracebin"' EXIT
go run ./cmd/purebench -trace-bin "$tracebin"
out="$(go run ./cmd/puretrace analyze "$tracebin")"
echo "$out" | head -3
case "$out" in
*"matched messages: 0 "*)
    echo "verify: FAIL — puretrace analyze matched no messages" >&2
    exit 1 ;;
*"matched messages: "*) ;;
*)
    echo "verify: FAIL — puretrace analyze produced no matched-message summary" >&2
    exit 1 ;;
esac

echo "verify: OK"
