#!/bin/sh
# verify.sh — the repository's full verification gate: build, vet, the
# complete test suite, and the race detector over the lock-free/concurrent
# packages (queue, collective, obs) whose bugs only -race reliably catches.
# CI and `make verify` both run exactly this script.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrent core packages)"
go test -race ./internal/queue ./internal/collective ./internal/obs

echo "verify: OK"
