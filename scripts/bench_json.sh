#!/bin/sh
# bench_json.sh — run the PR's headline microbenchmarks and emit their
# ns/op AND allocs/op as machine-readable JSON (BENCH_pr10.json), so perf
# and allocation regressions in the hot loops are visible across commits.
# This PR adds cluster-wide observability (docs/OBSERVABILITY.md): the new
# monitored-TCP pair measures the per-peer link telemetry's cost on the
# cross-node frame path, which verify.sh gates under 5%.
#
# Usage: sh scripts/bench_json.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_pr10.json}
benchtime=${PURE_BENCHTIME:-1s}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== PBQ ping-pong (internal/queue)"
go test -run XXX -bench 'BenchmarkPBQPingPong$' -benchmem -benchtime "$benchtime" ./internal/queue | tee -a "$tmp"

echo "== SPTD allreduce (internal/collective)"
go test -run XXX -bench 'BenchmarkSPTDAllreduce8B$' -benchmem -benchtime "$benchtime" ./internal/collective | tee -a "$tmp"

echo "== RMA put/fence (internal/core)"
go test -run XXX -bench 'BenchmarkRMAPut$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Pure ping-pong, wrapper path (internal/core)"
go test -run XXX -bench 'BenchmarkPurePingPong$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Pure ping-pong, persistent channel endpoints (internal/core)"
go test -run XXX -bench 'BenchmarkChannelPingPong$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Channel ping-pong with tracing+metrics enabled (internal/core)"
go test -run XXX -bench 'BenchmarkChannelPingPongObserved$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Channel pooled Isend/Irecv (internal/core)"
go test -run XXX -bench 'BenchmarkChannelIsendIrecv$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Pure ping-pong, live monitor enabled (internal/core)"
go test -run XXX -bench 'BenchmarkPurePingPongMonitored$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== TCP ping-pong, 2 nodes over real sockets (internal/core)"
go test -run XXX -bench 'BenchmarkTCPPingPong8B$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== TCP ping-pong with per-node live monitors + link telemetry (internal/core)"
go test -run XXX -bench 'BenchmarkTCPPingPong8BMonitored$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== TCP Allreduce, 2 nodes x 2 ranks over real sockets (internal/core)"
go test -run XXX -bench 'BenchmarkTCPAllreduce8B$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Channel batched vs unbatched sends, 25B records (internal/core)"
go test -run XXX -bench 'BenchmarkChannelSendBatch$|BenchmarkChannelSendUnbatched$' \
    -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== shmem intra-node Put / atomics / mailbox round trip (internal/core)"
go test -run XXX -bench 'BenchmarkShmemPut$|BenchmarkShmemAtomicAdd$|BenchmarkShmemFetchAdd$|BenchmarkShmemMailboxPingPong$' \
    -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== statsd steady-state parse + aggregation (internal/statsd)"
go test -run XXX -bench 'BenchmarkStatsdParse$|BenchmarkStatsdAggregate$' \
    -benchmem -benchtime "$benchtime" ./internal/statsd | tee -a "$tmp"

echo "== statsd pipeline, per-event end to end (internal/apps/statsd)"
# Fixed iteration counts: the zipf pair must run identical event volumes for
# the steal-on vs steal-off ns/op comparison to be apples-to-apples.
go test -run XXX -bench 'BenchmarkStatsdPipeline/uniform' -benchtime 500000x ./internal/apps/statsd | tee -a "$tmp"
go test -run XXX -bench 'BenchmarkStatsdPipeline/zipf' -benchtime 400000x ./internal/apps/statsd | tee -a "$tmp"
go test -run XXX -bench 'BenchmarkStatsdPipeline/drop-policy' -benchtime 500000x ./internal/apps/statsd | tee -a "$tmp"

# Parse `BenchmarkName[/sub]-P  N  123.4 ns/op  0 B/op  0 allocs/op` lines
# into JSON: ns under the bench name, allocs/op under "<name>:allocs", and
# the pipeline's custom events/s and stolen-chunks metrics under their own
# suffixed keys.
awk '
BEGIN { print "{"; first = 1 }
function emit(key, val) {
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": %s", key, val
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") emit(name, $i)
        if ($(i + 1) == "allocs/op") emit(name ":allocs", $i)
        if ($(i + 1) == "events/s") emit(name ":events/s", $i)
        if ($(i + 1) == "stolen-chunks") emit(name ":stolen-chunks", $i)
    }
}
END { print "\n}" }
' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
