#!/bin/sh
# bench_json.sh — run the PR's headline microbenchmarks and emit their
# ns/op as machine-readable JSON (BENCH_pr5.json), so perf regressions in
# the hot loops are visible across commits.  This PR adds the end-to-end
# ping-pong in disabled mode (the monitor/analyzer must not perturb it) and
# the monitor-enabled variant (<5% bar, see docs/OBSERVABILITY.md).
#
# Usage: sh scripts/bench_json.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_pr5.json}
benchtime=${PURE_BENCHTIME:-1s}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== PBQ ping-pong (internal/queue)"
go test -run XXX -bench 'BenchmarkPBQPingPong$' -benchtime "$benchtime" ./internal/queue | tee -a "$tmp"

echo "== SPTD allreduce (internal/collective)"
go test -run XXX -bench 'BenchmarkSPTDAllreduce8B$' -benchtime "$benchtime" ./internal/collective | tee -a "$tmp"

echo "== RMA put/fence (internal/core)"
go test -run XXX -bench 'BenchmarkRMAPut$' -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Pure ping-pong, disabled observability (internal/core)"
go test -run XXX -bench 'BenchmarkPurePingPong$' -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Pure ping-pong, live monitor enabled (internal/core)"
go test -run XXX -bench 'BenchmarkPurePingPongMonitored$' -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

# Parse `BenchmarkName[/sub]-P  N  123.4 ns/op ...` lines into JSON.
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") {
            if (!first) printf ",\n"
            first = 0
            printf "  \"%s\": %s", name, $i
        }
    }
}
END { print "\n}" }
' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
