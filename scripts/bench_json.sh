#!/bin/sh
# bench_json.sh — run the PR's headline microbenchmarks and emit their
# ns/op AND allocs/op as machine-readable JSON (BENCH_pr7.json), so perf and
# allocation regressions in the hot loops are visible across commits.  This
# PR adds the real-TCP transport benchmarks: a two-node 8-byte ping-pong
# and a 2-node x 2-rank Allreduce, each crossing real sockets between two
# full runtimes in one process.  These ride the netpoller, so their
# numbers are dominated by socket wakeup latency, not the shared-memory
# paths the other benchmarks pin.
#
# Usage: sh scripts/bench_json.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_pr7.json}
benchtime=${PURE_BENCHTIME:-1s}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== PBQ ping-pong (internal/queue)"
go test -run XXX -bench 'BenchmarkPBQPingPong$' -benchmem -benchtime "$benchtime" ./internal/queue | tee -a "$tmp"

echo "== SPTD allreduce (internal/collective)"
go test -run XXX -bench 'BenchmarkSPTDAllreduce8B$' -benchmem -benchtime "$benchtime" ./internal/collective | tee -a "$tmp"

echo "== RMA put/fence (internal/core)"
go test -run XXX -bench 'BenchmarkRMAPut$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Pure ping-pong, wrapper path (internal/core)"
go test -run XXX -bench 'BenchmarkPurePingPong$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Pure ping-pong, persistent channel endpoints (internal/core)"
go test -run XXX -bench 'BenchmarkChannelPingPong$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Channel ping-pong with tracing+metrics enabled (internal/core)"
go test -run XXX -bench 'BenchmarkChannelPingPongObserved$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Channel pooled Isend/Irecv (internal/core)"
go test -run XXX -bench 'BenchmarkChannelIsendIrecv$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== Pure ping-pong, live monitor enabled (internal/core)"
go test -run XXX -bench 'BenchmarkPurePingPongMonitored$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== TCP ping-pong, 2 nodes over real sockets (internal/core)"
go test -run XXX -bench 'BenchmarkTCPPingPong8B$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

echo "== TCP Allreduce, 2 nodes x 2 ranks over real sockets (internal/core)"
go test -run XXX -bench 'BenchmarkTCPAllreduce8B$' -benchmem -benchtime "$benchtime" ./internal/core | tee -a "$tmp"

# Parse `BenchmarkName[/sub]-P  N  123.4 ns/op  0 B/op  0 allocs/op` lines
# into JSON: ns under the bench name, allocs/op under "<name>:allocs".
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") {
            if (!first) printf ",\n"
            first = 0
            printf "  \"%s\": %s", name, $i
        }
        if ($(i + 1) == "allocs/op") {
            if (!first) printf ",\n"
            first = 0
            printf "  \"%s:allocs\": %s", name, $i
        }
    }
}
END { print "\n}" }
' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
