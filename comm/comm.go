// Package comm defines the small backend-neutral interface the mini-apps in
// this repository (CoMD, miniAMR, NAS DT, the §2 stencil) are written
// against, with adapters for both runtimes:
//
//   - RunPure launches the app over package pure (thread-based ranks,
//     lock-free intra-node messaging, SPTD collectives, Pure Tasks);
//   - RunMPI launches the identical app over package mpibase (the
//     process-semantics MPI baseline; tasks execute serially on the owner).
//
// This mirrors the paper's methodology: the same application source, ported
// between MPI and Pure with only the communication calls (and optional
// tasks) changing.  The cmd/mpi2pure translator rewrites the explicit
// mpibase form into the pure form mechanically.
package comm

import (
	"repro/internal/codec"
	"repro/internal/collective"
	"repro/mpibase"
	"repro/pure"
)

// Op is a reduction operator.
type Op = collective.Op

// DType is a payload element type.
type DType = collective.DType

// Reduction operators and element types.
const (
	Sum  = collective.OpSum
	Prod = collective.OpProd
	Min  = collective.OpMin
	Max  = collective.OpMax

	Float64 = collective.Float64
	Int64   = collective.Int64
)

// Request is an opaque in-flight nonblocking operation.
type Request any

// Task is an executable chunk-parallel region.  Over Pure it may be stolen
// by blocked ranks; over the MPI baseline it runs serially on the owner
// (processes cannot share work).
type Task interface {
	// Execute runs every chunk exactly once and returns when all are done.
	Execute(extra any)
	// AlignedIdxRange maps a chunk range to a cacheline-aligned element
	// index range over n elements of elemSize bytes.
	AlignedIdxRange(n int64, elemSize int, startChunk, endChunk int64) (lo, hi int64)
}

// Backend is one rank's communication context.
type Backend interface {
	Rank() int
	Size() int
	Send(buf []byte, dst, tag int)
	Recv(buf []byte, src, tag int) int
	// Sendrecv pairs a send and a receive without deadlock risk.
	Sendrecv(sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) int
	Isend(buf []byte, dst, tag int) Request
	Irecv(buf []byte, src, tag int) Request
	Wait(req Request) int
	Waitall(reqs []Request)
	Barrier()
	Allreduce(in, out []byte, op Op, dt DType)
	// Reduce folds every rank's in buffer; the result lands in root's out
	// buffer (other ranks may pass nil).
	Reduce(in, out []byte, root int, op Op, dt DType)
	Bcast(buf []byte, root int)
	// Gather collects every rank's equal-sized in payload into root's out
	// buffer (Size()*len(in) bytes at the root; others may pass nil).
	Gather(in, out []byte, root int)
	// Scatter distributes contiguous len(out)-byte slices of root's in buffer
	// (Size()*len(out) bytes at the root; others may pass nil).
	Scatter(in, out []byte, root int)
	// Split partitions the communicator; negative color opts out (nil).
	Split(color, key int) Backend
	// NewTask defines a chunk-parallel region with nchunks chunks.
	NewTask(nchunks int, body func(start, end int64, extra any)) Task
	// SupportsTasks reports whether Execute may be assisted by other ranks.
	SupportsTasks() bool
}

// Channel is a persistent point-to-point endpoint bound to one peer and one
// tag.  Over Pure it is the runtime's cached zero-allocation endpoint; over
// backends without native endpoints it is a thin bound wrapper, so apps can
// hoist channel setup out of their hot loops and still run everywhere.
type Channel interface {
	Send(buf []byte)
	Recv(buf []byte) int
	Isend(buf []byte) Request
	Irecv(buf []byte) Request
}

// ChannelBackend is implemented by backends with native persistent
// endpoints (Pure).  Apps should use SendChannelOf/RecvChannelOf, which
// fall back to bound wrappers on other backends.
type ChannelBackend interface {
	SendChannel(dst, tag int) Channel
	RecvChannel(src, tag int) Channel
}

// SendChannelOf returns a persistent send endpoint to dst with tag: the
// backend's native endpoint when it has one, a bound wrapper otherwise.
func SendChannelOf(b Backend, dst, tag int) Channel {
	if cb, ok := b.(ChannelBackend); ok {
		return cb.SendChannel(dst, tag)
	}
	return sendBound{b: b, peer: dst, tag: tag}
}

// RecvChannelOf returns a persistent receive endpoint from src with tag.
func RecvChannelOf(b Backend, src, tag int) Channel {
	if cb, ok := b.(ChannelBackend); ok {
		return cb.RecvChannel(src, tag)
	}
	return recvBound{b: b, peer: src, tag: tag}
}

// sendBound / recvBound adapt a plain Backend to the Channel shape; the
// wrong-direction methods panic like the native endpoints do.
type sendBound struct {
	b    Backend
	peer int
	tag  int
}

func (c sendBound) Send(buf []byte)          { c.b.Send(buf, c.peer, c.tag) }
func (c sendBound) Isend(buf []byte) Request { return c.b.Isend(buf, c.peer, c.tag) }
func (c sendBound) Recv([]byte) int          { panic("comm: Recv on a send channel") }
func (c sendBound) Irecv([]byte) Request     { panic("comm: Irecv on a send channel") }

type recvBound struct {
	b    Backend
	peer int
	tag  int
}

func (c recvBound) Recv(buf []byte) int      { return c.b.Recv(buf, c.peer, c.tag) }
func (c recvBound) Irecv(buf []byte) Request { return c.b.Irecv(buf, c.peer, c.tag) }
func (c recvBound) Send([]byte)              { panic("comm: Send on a receive channel") }
func (c recvBound) Isend([]byte) Request     { panic("comm: Isend on a receive channel") }

// ---- Typed helpers over any backend ----

// AllreduceFloat64 folds one float64 across the communicator.
func AllreduceFloat64(b Backend, v float64, op Op) float64 {
	out := make([]float64, 1)
	AllreduceFloat64s(b, []float64{v}, out, op)
	return out[0]
}

// AllreduceInt64 folds one int64 across the communicator.
func AllreduceInt64(b Backend, v int64, op Op) int64 {
	ob := make([]byte, 8)
	b.Allreduce(codec.Int64Bytes([]int64{v}), ob, op, Int64)
	out := make([]int64, 1)
	codec.GetInt64s(out, ob)
	return out[0]
}

// AllreduceFloat64s element-wise folds a vector across the communicator.
func AllreduceFloat64s(b Backend, in, out []float64, op Op) {
	ib := codec.Float64Bytes(in)
	ob := make([]byte, len(ib))
	b.Allreduce(ib, ob, op, Float64)
	codec.GetFloat64s(out, ob)
}

// SendFloat64s / RecvFloat64s move float64 vectors point-to-point.
func SendFloat64s(b Backend, vals []float64, dst, tag int) {
	b.Send(codec.Float64Bytes(vals), dst, tag)
}

// RecvFloat64s receives exactly len(vals) float64s.
func RecvFloat64s(b Backend, vals []float64, src, tag int) {
	buf := make([]byte, 8*len(vals))
	n := b.Recv(buf, src, tag)
	codec.GetFloat64s(vals[:n/8], buf[:n])
}

// SendrecvFloat64s pairs a float64-vector send and receive without deadlock
// risk (the typed convenience over Backend.Sendrecv).
func SendrecvFloat64s(b Backend, send []float64, dst, sendTag int, recv []float64, src, recvTag int) {
	buf := make([]byte, 8*len(recv))
	n := b.Sendrecv(codec.Float64Bytes(send), dst, sendTag, buf, src, recvTag)
	codec.GetFloat64s(recv[:n/8], buf[:n])
}

// ---- Pure adapter ----

type pureBackend struct {
	r *pure.Rank
	c *pure.Comm
}

// RunPure runs main over the Pure runtime.
func RunPure(cfg pure.Config, main func(b Backend)) error {
	return pure.Run(cfg, func(r *pure.Rank) {
		main(&pureBackend{r: r, c: r.World()})
	})
}

// RunPureWithReport is RunPure plus the profiling report; when cfg.Trace or
// cfg.Metrics are set, the report also carries the observability exports
// (Report.Timeline, Report.WriteChromeTrace, Report.Metrics.Snapshot).
func RunPureWithReport(cfg pure.Config, main func(b Backend)) (pure.Report, error) {
	return pure.RunWithReport(cfg, func(r *pure.Rank) {
		main(&pureBackend{r: r, c: r.World()})
	})
}

func (b *pureBackend) Rank() int                     { return b.c.Rank() }
func (b *pureBackend) Size() int                     { return b.c.Size() }
func (b *pureBackend) Send(buf []byte, dst, tag int) { b.c.Send(buf, dst, tag) }
func (b *pureBackend) Recv(buf []byte, src, tag int) int {
	return b.c.Recv(buf, src, tag)
}
func (b *pureBackend) Sendrecv(sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) int {
	return b.c.Sendrecv(sendBuf, dst, sendTag, recvBuf, src, recvTag)
}
func (b *pureBackend) Isend(buf []byte, dst, tag int) Request { return b.c.Isend(buf, dst, tag) }
func (b *pureBackend) Irecv(buf []byte, src, tag int) Request { return b.c.Irecv(buf, src, tag) }
func (b *pureBackend) Wait(req Request) int                   { return b.c.Wait(req.(*pure.Request)) }
func (b *pureBackend) Waitall(reqs []Request) {
	for _, q := range reqs {
		if q == nil {
			continue // MPI_REQUEST_NULL slot
		}
		b.c.Wait(q.(*pure.Request))
	}
}
func (b *pureBackend) Barrier() { b.c.Barrier() }
func (b *pureBackend) Allreduce(in, out []byte, op Op, dt DType) {
	b.c.Allreduce(in, out, op, dt)
}
func (b *pureBackend) Reduce(in, out []byte, root int, op Op, dt DType) {
	b.c.Reduce(in, out, root, op, dt)
}
func (b *pureBackend) Bcast(buf []byte, root int)       { b.c.Bcast(buf, root) }
func (b *pureBackend) Gather(in, out []byte, root int)  { b.c.Gather(in, out, root) }
func (b *pureBackend) Scatter(in, out []byte, root int) { b.c.Scatter(in, out, root) }
func (b *pureBackend) Split(color, key int) Backend {
	sub := b.c.Split(color, key)
	if sub == nil {
		return nil
	}
	return &pureBackend{r: b.r, c: sub}
}
func (b *pureBackend) NewTask(nchunks int, body func(start, end int64, extra any)) Task {
	return &pureTask{t: b.r.NewTask(nchunks, body)}
}
func (b *pureBackend) SupportsTasks() bool { return true }

// pureBackend exposes the runtime's native persistent endpoints.
func (b *pureBackend) SendChannel(dst, tag int) Channel {
	return pureChannel{ch: b.c.SendChannel(dst, tag)}
}
func (b *pureBackend) RecvChannel(src, tag int) Channel {
	return pureChannel{ch: b.c.RecvChannel(src, tag)}
}

type pureChannel struct{ ch *pure.Channel }

func (c pureChannel) Send(buf []byte)          { c.ch.Send(buf) }
func (c pureChannel) Recv(buf []byte) int      { return c.ch.Recv(buf) }
func (c pureChannel) Isend(buf []byte) Request { return c.ch.Isend(buf) }
func (c pureChannel) Irecv(buf []byte) Request { return c.ch.Irecv(buf) }

type pureTask struct{ t *pure.Task }

func (t *pureTask) Execute(extra any) { t.t.Execute(extra) }
func (t *pureTask) AlignedIdxRange(n int64, elemSize int, s, e int64) (int64, int64) {
	return t.t.AlignedIdxRange(n, elemSize, s, e)
}

// ---- MPI-baseline adapter ----

type mpiBackend struct {
	p *mpibase.Proc
	c *mpibase.Comm
}

// RunMPI runs main over the mpibase baseline runtime.
func RunMPI(cfg mpibase.Config, main func(b Backend)) error {
	return mpibase.Run(cfg, func(p *mpibase.Proc) {
		main(&mpiBackend{p: p, c: p.World()})
	})
}

func (b *mpiBackend) Rank() int                     { return b.c.Rank() }
func (b *mpiBackend) Size() int                     { return b.c.Size() }
func (b *mpiBackend) Send(buf []byte, dst, tag int) { b.c.Send(buf, dst, tag) }
func (b *mpiBackend) Recv(buf []byte, src, tag int) int {
	return b.c.Recv(buf, src, tag)
}
func (b *mpiBackend) Sendrecv(sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) int {
	return b.c.Sendrecv(sendBuf, dst, sendTag, recvBuf, src, recvTag)
}
func (b *mpiBackend) Isend(buf []byte, dst, tag int) Request { return b.c.Isend(buf, dst, tag) }
func (b *mpiBackend) Irecv(buf []byte, src, tag int) Request { return b.c.Irecv(buf, src, tag) }
func (b *mpiBackend) Wait(req Request) int                   { return b.c.Wait(req.(*mpibase.Request)) }
func (b *mpiBackend) Waitall(reqs []Request) {
	for _, q := range reqs {
		if q == nil {
			continue // MPI_REQUEST_NULL slot
		}
		b.c.Wait(q.(*mpibase.Request))
	}
}
func (b *mpiBackend) Barrier() { b.c.Barrier() }
func (b *mpiBackend) Allreduce(in, out []byte, op Op, dt DType) {
	b.c.Allreduce(in, out, op, dt)
}
func (b *mpiBackend) Reduce(in, out []byte, root int, op Op, dt DType) {
	b.c.Reduce(in, out, root, op, dt)
}
func (b *mpiBackend) Bcast(buf []byte, root int)       { b.c.Bcast(buf, root) }
func (b *mpiBackend) Gather(in, out []byte, root int)  { b.c.Gather(in, out, root) }
func (b *mpiBackend) Scatter(in, out []byte, root int) { b.c.Scatter(in, out, root) }
func (b *mpiBackend) Split(color, key int) Backend {
	sub := b.c.Split(color, key)
	if sub == nil {
		return nil
	}
	return &mpiBackend{p: b.p, c: sub}
}
func (b *mpiBackend) NewTask(nchunks int, body func(start, end int64, extra any)) Task {
	if nchunks <= 0 {
		nchunks = 64 // match pure's DefaultTaskChunks
	}
	return &serialTask{nchunks: int64(nchunks), body: body}
}
func (b *mpiBackend) SupportsTasks() bool { return false }

// serialTask executes all chunks on the owner: an MPI process has no
// co-resident threads to donate cycles.
type serialTask struct {
	nchunks int64
	body    func(start, end int64, extra any)
}

func (t *serialTask) Execute(extra any) { t.body(0, t.nchunks, extra) }
func (t *serialTask) AlignedIdxRange(n int64, elemSize int, s, e int64) (int64, int64) {
	return alignedIdxRange(n, elemSize, s, e, t.nchunks)
}

// alignedIdxRange mirrors sched.AlignedIdxRange (kept local to avoid the
// public package depending on the internal scheduler).
func alignedIdxRange(n int64, elemSize int, startChunk, endChunk, totalChunks int64) (lo, hi int64) {
	if totalChunks <= 0 || n <= 0 || startChunk >= totalChunks {
		return 0, 0
	}
	perLine := int64(64 / elemSize)
	if perLine < 1 {
		perLine = 1
	}
	lines := (n + perLine - 1) / perLine
	per := lines / totalChunks
	extra := lines % totalChunks
	lineAt := func(chunk int64) int64 {
		if chunk > totalChunks {
			chunk = totalChunks
		}
		m := chunk
		if extra < m {
			m = extra
		}
		return chunk*per + m
	}
	lo = lineAt(startChunk) * perLine
	hi = lineAt(endChunk) * perLine
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
