package comm

import (
	"bytes"
	"math"
	"testing"

	"repro/mpibase"
	"repro/pure"
)

// collectBytes runs body over both runtimes and returns each rank's output
// buffer per runtime, so the test can require bit-identical results.
func collectBytes(t *testing.T, nranks int, body func(b Backend) []byte) (purer, mpir [][]byte) {
	t.Helper()
	purer = make([][]byte, nranks)
	if err := RunPure(pure.Config{NRanks: nranks}, func(b Backend) {
		purer[b.Rank()] = body(b)
	}); err != nil {
		t.Fatalf("pure: %v", err)
	}
	mpir = make([][]byte, nranks)
	if err := RunMPI(mpibase.Config{NRanks: nranks}, func(b Backend) {
		mpir[b.Rank()] = body(b)
	}); err != nil {
		t.Fatalf("mpi: %v", err)
	}
	return purer, mpir
}

// requireIdentical asserts each rank produced the same bytes on both runtimes.
func requireIdentical(t *testing.T, what string, purer, mpir [][]byte) {
	t.Helper()
	for r := range purer {
		if !bytes.Equal(purer[r], mpir[r]) {
			t.Errorf("%s rank %d: pure %x != mpi %x", what, r, purer[r], mpir[r])
		}
	}
}

func TestBackendReduceBitIdentical(t *testing.T) {
	const nranks, root = 4, 2
	purer, mpir := collectBytes(t, nranks, func(b Backend) []byte {
		in := pure.Float64Bytes([]float64{float64(b.Rank()) + 0.25, 1.5, -3})
		out := make([]byte, len(in))
		b.Reduce(in, out, root, Sum, Float64)
		if b.Rank() != root {
			return nil // only the root's buffer is defined
		}
		return out
	})
	requireIdentical(t, "Reduce", purer, mpir)
	want := pure.Float64Bytes([]float64{0.25 + 1.25 + 2.25 + 3.25, 6, -12})
	if !bytes.Equal(purer[root], want) {
		t.Errorf("Reduce root bytes = %x, want %x", purer[root], want)
	}
}

func TestBackendGatherBitIdentical(t *testing.T) {
	const nranks, root = 4, 1
	purer, mpir := collectBytes(t, nranks, func(b Backend) []byte {
		in := pure.Float64Bytes([]float64{float64(b.Rank()), math.Sqrt(float64(b.Rank() + 1))})
		var out []byte
		if b.Rank() == root {
			out = make([]byte, b.Size()*len(in))
		}
		b.Gather(in, out, root)
		return out
	})
	requireIdentical(t, "Gather", purer, mpir)
	var want []float64
	for r := 0; r < nranks; r++ {
		want = append(want, float64(r), math.Sqrt(float64(r+1)))
	}
	if !bytes.Equal(purer[root], pure.Float64Bytes(want)) {
		t.Errorf("Gather root = %x", purer[root])
	}
}

func TestBackendScatterBitIdentical(t *testing.T) {
	const nranks, root = 4, 0
	purer, mpir := collectBytes(t, nranks, func(b Backend) []byte {
		out := make([]byte, 16)
		var in []byte
		if b.Rank() == root {
			var vals []float64
			for r := 0; r < nranks; r++ {
				vals = append(vals, float64(r)*10, float64(r)*10+1)
			}
			in = pure.Float64Bytes(vals)
		}
		b.Scatter(in, out, root)
		return out
	})
	requireIdentical(t, "Scatter", purer, mpir)
	for r := 0; r < nranks; r++ {
		want := pure.Float64Bytes([]float64{float64(r) * 10, float64(r)*10 + 1})
		if !bytes.Equal(purer[r], want) {
			t.Errorf("Scatter rank %d = %x, want %x", r, purer[r], want)
		}
	}
}

// TestBackendCollectivesAcrossNodes runs the same three collectives on a
// two-node Pure placement: the leader-bridged paths must agree with the
// single-node MPI baseline bit for bit.
func TestBackendCollectivesAcrossNodes(t *testing.T) {
	const nranks, root = 4, 3
	multiCfg := pure.Config{
		NRanks:       nranks,
		Spec:         pure.CoriNode(2),
		RanksPerNode: 2,
		Net:          pure.NetConfig{LatencyNs: 50, BytesPerNs: 10, TimeScale: 10},
	}
	body := func(b Backend) []byte {
		// Dyadic values keep every fold association exact, so the two-level
		// (node-then-leader) Pure reduction and the flat MPI reduction cannot
		// differ even in the last ulp.
		in := pure.Float64Bytes([]float64{float64(b.Rank())*0.5 + 0.25, float64(b.Rank())})
		red := make([]byte, len(in))
		b.Reduce(in, red, root, Sum, Float64)
		gat := make([]byte, b.Size()*len(in))
		b.Gather(in, gat, root)
		if b.Rank() != root {
			return nil
		}
		return append(red, gat...)
	}
	multi := make([][]byte, nranks)
	if err := RunPure(multiCfg, func(b Backend) { multi[b.Rank()] = body(b) }); err != nil {
		t.Fatalf("pure multi-node: %v", err)
	}
	mpir := make([][]byte, nranks)
	if err := RunMPI(mpibase.Config{NRanks: nranks}, func(b Backend) { mpir[b.Rank()] = body(b) }); err != nil {
		t.Fatalf("mpi: %v", err)
	}
	requireIdentical(t, "multi-node Reduce+Gather", multi, mpir)
}
