package comm

import (
	"runtime"
	"testing"

	"repro/mpibase"
	"repro/pure"
)

func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

// exercise runs the same SPMD body over both backends; it is the pattern
// every app integration test uses.
func exercise(t *testing.T, nranks int, body func(b Backend) float64, want float64) {
	t.Helper()
	results := make([]float64, nranks)
	if err := RunPure(pure.Config{NRanks: nranks}, func(b Backend) {
		results[b.Rank()] = body(b)
	}); err != nil {
		t.Fatalf("pure: %v", err)
	}
	for r, v := range results {
		if v != want {
			t.Fatalf("pure rank %d: got %v, want %v", r, v, want)
		}
	}
	if err := RunMPI(mpibase.Config{NRanks: nranks}, func(b Backend) {
		results[b.Rank()] = body(b)
	}); err != nil {
		t.Fatalf("mpi: %v", err)
	}
	for r, v := range results {
		if v != want {
			t.Fatalf("mpi rank %d: got %v, want %v", r, v, want)
		}
	}
}

func TestBackendsAgreeOnPingPongPlusAllreduce(t *testing.T) {
	exercise(t, 4, func(b Backend) float64 {
		var got float64
		if b.Rank() == 0 {
			SendFloat64s(b, []float64{10}, 1, 0)
		} else if b.Rank() == 1 {
			v := make([]float64, 1)
			RecvFloat64s(b, v, 0, 0)
			if v[0] != 10 {
				return -1
			}
		}
		b.Barrier()
		got = AllreduceFloat64(b, 1, Sum)
		return got
	}, 4)
}

func TestBackendsAgreeOnVectorAllreduce(t *testing.T) {
	exercise(t, 3, func(b Backend) float64 {
		in := []float64{float64(b.Rank()), 2}
		out := make([]float64, 2)
		AllreduceFloat64s(b, in, out, Sum)
		return out[0]*100 + out[1]
	}, 306) // (0+1+2)*100 + 6
}

func TestBackendsAgreeOnInt64Allreduce(t *testing.T) {
	exercise(t, 4, func(b Backend) float64 {
		return float64(AllreduceInt64(b, int64(b.Rank()+1), Max))
	}, 4)
}

func TestBackendsAgreeOnSplit(t *testing.T) {
	exercise(t, 4, func(b Backend) float64 {
		sub := b.Split(b.Rank()%2, b.Rank())
		if sub == nil {
			return -1
		}
		return AllreduceFloat64(sub, 1, Sum)
	}, 2)
}

func TestSplitUndefinedColor(t *testing.T) {
	for _, launch := range []func(func(Backend)) error{
		func(m func(Backend)) error { return RunPure(pure.Config{NRanks: 2}, m) },
		func(m func(Backend)) error { return RunMPI(mpibase.Config{NRanks: 2}, m) },
	} {
		if err := launch(func(b Backend) {
			color := -1
			if b.Rank() == 0 {
				color = 7
			}
			sub := b.Split(color, 0)
			if b.Rank() == 0 && sub == nil {
				t.Error("rank 0 expected a comm")
			}
			if b.Rank() == 1 && sub != nil {
				t.Error("rank 1 expected nil")
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTasksOnBothBackends(t *testing.T) {
	// Pure executes tasks concurrently/stolen; MPI runs them serially — both
	// must produce identical data.
	check := func(b Backend) float64 {
		data := make([]float64, 256)
		task := b.NewTask(16, nil)
		task = b.NewTask(16, func(start, end int64, extra any) {
			scale := extra.(float64)
			lo, hi := task.AlignedIdxRange(256, 8, start, end)
			for i := lo; i < hi; i++ {
				data[i] = float64(i) * scale
			}
		})
		task.Execute(2.0)
		sum := 0.0
		for _, v := range data {
			sum += v
		}
		return sum // 2 * 255*256/2 = 65280
	}
	exercise(t, 2, check, 65280)
}

func TestSupportsTasksFlag(t *testing.T) {
	if err := RunPure(pure.Config{NRanks: 1}, func(b Backend) {
		if !b.SupportsTasks() {
			t.Error("pure backend should support tasks")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := RunMPI(mpibase.Config{NRanks: 1}, func(b Backend) {
		if b.SupportsTasks() {
			t.Error("mpi backend should not support tasks")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingAcrossBackends(t *testing.T) {
	exercise(t, 2, func(b Backend) float64 {
		if b.Rank() == 0 {
			req := b.Isend([]byte{42}, 1, 3)
			b.Waitall([]Request{req})
			return 42
		}
		buf := make([]byte, 1)
		req := b.Irecv(buf, 0, 3)
		if n := b.Wait(req); n != 1 {
			return -1
		}
		return float64(buf[0])
	}, 42)
}

func TestSerialTaskDefaultChunks(t *testing.T) {
	if err := RunMPI(mpibase.Config{NRanks: 1}, func(b Backend) {
		ran := int64(0)
		task := b.NewTask(0, func(start, end int64, _ any) { ran += end - start })
		task.Execute(nil)
		if ran != 64 {
			t.Errorf("default chunks ran %d, want 64", ran)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBcastAcrossBackends(t *testing.T) {
	exercise(t, 3, func(b Backend) float64 {
		buf := make([]byte, 4)
		if b.Rank() == 2 {
			buf = []byte{9, 9, 9, 9}
		}
		b.Bcast(buf, 2)
		return float64(buf[0])
	}, 9)
}

func TestSendrecvAcrossBackends(t *testing.T) {
	exercise(t, 4, func(b Backend) float64 {
		n := b.Size()
		next := (b.Rank() + 1) % n
		prev := (b.Rank() + n - 1) % n
		out := []byte{byte(b.Rank())}
		in := make([]byte, 1)
		if got := b.Sendrecv(out, next, 2, in, prev, 2); got != 1 {
			return -1
		}
		return float64(in[0]) - float64(prev) // 0 when correct
	}, 0)
}
