package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pure"
)

// The test binary doubles as the launched worker: when workerEnv is set the
// process runs one node of a tiny verified-Allreduce job instead of the
// tests, so the smoke test exercises the real launcher path — reserved
// ports, per-node environment, prefixed output, exit-code propagation —
// without building a second binary.
const workerEnv = "PURERUN_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) != "" {
		testWorker()
		return // testWorker exits
	}
	os.Exit(m.Run())
}

func testWorker() {
	tcfg, err := pure.TransportFromEnv()
	if err != nil || tcfg == nil {
		fmt.Fprintln(os.Stderr, "worker: need launcher environment:", err)
		os.Exit(1)
	}
	nodes := len(tcfg.Addrs)
	nranks := nodes
	if s := os.Getenv("PURE_NRANKS"); s != "" {
		if nranks, err = strconv.Atoi(s); err != nil || nranks%nodes != 0 {
			fmt.Fprintf(os.Stderr, "worker: bad PURE_NRANKS=%q for %d nodes\n", s, nodes)
			os.Exit(1)
		}
	}
	iters := 1
	if os.Getenv("PURE_LOOP_FOREVER") != "" {
		// The kill test needs the survivor mid-collective when its peer
		// dies, and a detector fast enough to keep the test short.
		iters = 1 << 30
		tcfg.HeartbeatEvery = 5 * time.Millisecond
		tcfg.PeerDeadAfter = 150 * time.Millisecond
	}
	// The monitor smoke test scrapes the job while it runs; PURE_HOLD_MS
	// keeps the ranks alive (inside Run, monitors serving) long enough.
	holdMS := 0
	if s := os.Getenv("PURE_HOLD_MS"); s != "" {
		if holdMS, err = strconv.Atoi(s); err != nil {
			fmt.Fprintf(os.Stderr, "worker: bad PURE_HOLD_MS=%q\n", s)
			os.Exit(1)
		}
	}
	cfg := pure.Config{
		NRanks:      nranks,
		Spec:        pure.Spec{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: nranks / nodes, ThreadsPerCore: 1},
		Transport:   tcfg,
		HangTimeout: 30 * time.Second,
		MonitorAddr: os.Getenv("PURE_MONITOR"),
	}
	err = pure.Run(cfg, func(r *pure.Rank) {
		w := r.World()
		me, n := r.ID(), r.NRanks()
		in, out := make([]byte, 8), make([]byte, 8)
		for i := 0; i < iters; i++ {
			binary.LittleEndian.PutUint64(in, uint64(me))
			w.Allreduce(in, out, pure.Sum, pure.Int64)
			if got, want := binary.LittleEndian.Uint64(out), uint64(n*(n-1)/2); got != want {
				panic(fmt.Sprintf("allreduce %d, want %d", got, want))
			}
		}
		if holdMS > 0 {
			time.Sleep(time.Duration(holdMS) * time.Millisecond)
		}
		if me == 0 {
			fmt.Println("OK")
		}
	})
	if err != nil {
		var re *pure.RunError
		if errors.As(err, &re) && re.Cause == pure.CauseNodeDead {
			fmt.Printf("NODEDEAD dead=%v\n", re.DeadNodes)
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestRunSmoke launches a two-node four-rank job through run() — the same
// code path as the purerun binary — and checks the prefixed output and the
// zero exit code.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(workerEnv, "1") // inherited by the spawned workers
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "2", "-ranks", "4", exe}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[node 0] OK") {
		t.Fatalf("no prefixed OK line from node 0; stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "node 1 exited ok") {
		t.Fatalf("launcher never reported node 1's exit; stderr:\n%s", stderr.String())
	}
}

// lockedBuf lets the test read launcher output while run()'s forwarding
// goroutines are still writing it.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func tryGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestRunMonitorServesClusterView launches a held two-node job with -monitor
// and, while it runs, checks that (1) every worker's printed monitor address
// serves its own /metrics and /ranks, and (2) the aggregated endpoint serves
// merged node-labeled metrics with live per-link telemetry and a /cluster
// view with both nodes alive.
func TestRunMonitorServesClusterView(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(workerEnv, "1")
	t.Setenv("PURE_HOLD_MS", "4000") // keep monitors serving while we scrape
	var stdout, stderr lockedBuf
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run([]string{"-n", "2", "-ranks", "4", "-monitor", "127.0.0.1:0", "-timeout", "60s", exe}, &stdout, &stderr)
	}()

	aggRe := regexp.MustCompile(`cluster monitor http://([^/\s]+)/`)
	nodeRe := regexp.MustCompile(`node (\d+) monitor http://([^/\s]+)/`)
	var agg string
	var nodeAddrs []string
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		s := stderr.String()
		if m := aggRe.FindStringSubmatch(s); m != nil {
			agg = m[1]
		}
		if nm := nodeRe.FindAllStringSubmatch(s, -1); agg != "" && len(nm) == 2 {
			nodeAddrs = []string{}
			for _, m := range nm {
				nodeAddrs = append(nodeAddrs, m[2])
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if agg == "" || len(nodeAddrs) != 2 {
		t.Fatalf("launcher never printed monitor addresses; stderr:\n%s", stderr.String())
	}

	// Satellite contract: each worker's monitor address is reachable while
	// the job runs.  Retry while the workers boot.
	for i, addr := range nodeAddrs {
		var body string
		for time.Now().Before(deadline) {
			if body, err = tryGet("http://" + addr + "/metrics"); err == nil {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("node %d monitor %s unreachable while job runs: %v", i, addr, err)
		}
		if !strings.Contains(body, "pure_monitor_scrapes_total") {
			t.Fatalf("node %d scrape looks wrong:\n%s", i, body)
		}
		if body, err = tryGet("http://" + addr + "/ranks"); err != nil || !strings.Contains(body, `"ranks"`) {
			t.Fatalf("node %d /ranks: %v\n%s", i, err, body)
		}
	}

	// The aggregated scrape carries per-node labels and per-link telemetry
	// for every node; /cluster reports both nodes alive with link state.
	var merged string
	for time.Now().Before(deadline) {
		merged, err = tryGet("http://" + agg + "/metrics")
		if err == nil &&
			strings.Contains(merged, `pure_link_frames_sent_total{node="0",peer="1"}`) &&
			strings.Contains(merged, `pure_link_frames_sent_total{node="1",peer="0"}`) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !strings.Contains(merged, `pure_cluster_node_up{node="0"} 1`) ||
		!strings.Contains(merged, `pure_cluster_node_up{node="1"} 1`) ||
		!strings.Contains(merged, `pure_link_frames_sent_total{node="0",peer="1"}`) {
		t.Fatalf("merged scrape missing cluster series:\n%s", merged)
	}
	cl, err := tryGet("http://" + agg + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cl, `"alive": true`) || !strings.Contains(cl, `"links"`) {
		t.Fatalf("/cluster view missing liveness or links:\n%s", cl)
	}

	if code := <-codeCh; code != 0 {
		t.Fatalf("run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[node 0] OK") {
		t.Fatalf("worker never finished; stdout:\n%s", stdout.String())
	}
}

// TestRunKillPropagatesFailure SIGKILLs node 1 under the launcher and
// checks that the surviving node's node-dead exit code (3) propagates out
// of run().
func TestRunKillPropagatesFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and waits on failure detection")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(workerEnv, "1")
	t.Setenv("PURE_LOOP_FOREVER", "1")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "2", "-kill", "1:300ms", "-timeout", "30s", exe}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("run exited %d, want 3 (node-dead)\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "NODEDEAD dead=[1]") {
		t.Fatalf("survivor never reported node 1 dead; stdout:\n%s", stdout.String())
	}
}

func TestParseKill(t *testing.T) {
	cases := []struct {
		spec  string
		nodes int
		node  int
		delay time.Duration
		bad   bool
	}{
		{"", 3, -1, 0, false},
		{"1:200ms", 3, 1, 200 * time.Millisecond, false},
		{"0:2s", 1, 0, 2 * time.Second, false},
		{"nocolon", 3, 0, 0, true},
		{"x:200ms", 3, 0, 0, true},
		{"1:banana", 3, 0, 0, true},
		{"3:200ms", 3, 0, 0, true},  // out of range
		{"-1:200ms", 3, 0, 0, true}, // out of range
	}
	for _, c := range cases {
		node, delay, err := parseKill(c.spec, c.nodes)
		if c.bad {
			if err == nil {
				t.Errorf("parseKill(%q, %d): no error", c.spec, c.nodes)
			}
			continue
		}
		if err != nil || node != c.node || delay != c.delay {
			t.Errorf("parseKill(%q, %d) = (%d, %v, %v), want (%d, %v, nil)",
				c.spec, c.nodes, node, delay, err, c.node, c.delay)
		}
	}
}

func TestReservePorts(t *testing.T) {
	addrs, err := reservePorts(3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if !strings.HasPrefix(a, "127.0.0.1:") {
			t.Fatalf("reserved address %q is not localhost", a)
		}
		if seen[a] {
			t.Fatalf("duplicate reserved address %q in %v", a, addrs)
		}
		seen[a] = true
	}
}
