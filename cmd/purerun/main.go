// Command purerun launches a multi-process Pure job on one machine: one OS
// process per virtual node, wired together over the real TCP transport.
//
// Usage:
//
//	purerun -n 3 ./worker                 # 3 nodes, reserved localhost ports
//	purerun -n 3 -ranks 12 ./worker       # ... and export PURE_NRANKS=12
//	purerun -addrs a:7001,b:7001 ./worker # explicit per-node addresses
//	purerun -n 3 -kill 1:200ms ./worker   # chaos: SIGKILL node 1 after 200ms
//	purerun -n 2 -timeout 30s ./worker    # kill the whole job after 30s
//	purerun -n 2 -monitor :0 ./worker     # + aggregated cluster monitor
//
// purerun reserves one localhost port per node (unless -addrs overrides
// them), spawns the worker command once per node with the transport
// environment set — PURE_NODE, PURE_ADDRS, PURE_JOB, and optionally
// PURE_NRANKS — prefixes every output line with "[node i]", and exits with
// the first non-zero worker exit code (or 1 for a signal death).
//
// With -monitor, purerun also reserves one monitor port per node, hands it
// to each worker as PURE_MONITOR (workers pass it to Config.MonitorAddr, so
// every node serves its own /metrics, /ranks and /links), prints each
// worker's monitor address, and serves the aggregated cluster view on the
// -monitor address: /metrics merges every node's scrape under a node="<id>"
// label, /cluster reports per-node liveness, rank wait states, and transport
// link telemetry.  The aggregator keeps serving while nodes die — a
// SIGKILLed node shows up as pure_cluster_node_up 0 and as a dying link
// (heartbeat age climbing, then down) on its peers.
//
// The worker maps the environment onto its configuration with
// pure.TransportFromEnv; the rank-to-node mapping comes from the worker's
// topology spec exactly as in a single-process run, so the same binary
// works standalone (no PURE_ADDRS) and under the launcher.  See
// docs/TRANSPORT.md.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/cluster"
	"repro/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("purerun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 0, "number of nodes (one OS process each); implied by -addrs")
	ranks := fs.Int("ranks", 0, "total rank count exported as PURE_NRANKS (0 = let the worker decide)")
	addrs := fs.String("addrs", "", "comma-separated host:port listen addresses, one per node (default: reserved localhost ports)")
	job := fs.Uint64("job", 0, "job id isolating this run from stale processes (0 = derived from pid and time)")
	kill := fs.String("kill", "", "chaos: 'node:delay' — SIGKILL that node's process after the delay (e.g. 1:200ms)")
	timeout := fs.Duration("timeout", 0, "kill every worker after this long (0 = no timeout)")
	monitor := fs.String("monitor", "", "serve the aggregated cluster monitor on this address (:0 picks a port) and give every worker a PURE_MONITOR address")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: purerun [flags] worker-command [args...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	workerArgv := fs.Args()
	if len(workerArgv) == 0 {
		fs.Usage()
		return 2
	}

	var addrList []string
	if *addrs != "" {
		addrList = strings.Split(*addrs, ",")
		if *n != 0 && *n != len(addrList) {
			fmt.Fprintf(stderr, "purerun: -n %d contradicts the %d addresses in -addrs\n", *n, len(addrList))
			return 2
		}
	} else {
		if *n <= 0 {
			fmt.Fprintf(stderr, "purerun: need -n (node count) or -addrs\n")
			return 2
		}
		var err error
		if addrList, err = reservePorts(*n); err != nil {
			fmt.Fprintf(stderr, "purerun: reserving ports: %v\n", err)
			return 1
		}
	}
	nodes := len(addrList)

	killNode, killDelay, err := parseKill(*kill, nodes)
	if err != nil {
		fmt.Fprintf(stderr, "purerun: %v\n", err)
		return 2
	}

	jobID := *job
	if jobID == 0 {
		jobID = uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())
	}

	// Cluster monitor: one reserved monitor port per worker (exported as
	// PURE_MONITOR) plus the aggregator over all of them.  The addresses are
	// printed before the workers launch so tooling can start scraping while
	// the job runs.
	var monAddrs []string
	if *monitor != "" {
		var err error
		if monAddrs, err = reservePorts(nodes); err != nil {
			fmt.Fprintf(stderr, "purerun: reserving monitor ports: %v\n", err)
			return 1
		}
		nodeList := make([]cluster.Node, nodes)
		for i, a := range monAddrs {
			nodeList[i] = cluster.Node{Node: i, Addr: a}
			fmt.Fprintf(stderr, "purerun: node %d monitor http://%s/\n", i, a)
		}
		ln, err := net.Listen("tcp", *monitor)
		if err != nil {
			fmt.Fprintf(stderr, "purerun: cluster monitor listen %s: %v\n", *monitor, err)
			return 1
		}
		fmt.Fprintf(stderr, "purerun: cluster monitor http://%s/\n", ln.Addr())
		srv := &http.Server{Handler: cluster.New(nodeList, 0).Handler()}
		go srv.Serve(ln)
		defer srv.Close()
	}

	cmds := make([]*exec.Cmd, nodes)
	var outWG sync.WaitGroup
	var outMu sync.Mutex // interleave whole lines, not bytes
	for i := range cmds {
		cmd := exec.Command(workerArgv[0], workerArgv[1:]...)
		cmd.Env = append(os.Environ(),
			transport.EnvNode+"="+strconv.Itoa(i),
			transport.EnvAddrs+"="+strings.Join(addrList, ","),
			transport.EnvJob+"="+strconv.FormatUint(jobID, 10),
		)
		if *ranks > 0 {
			cmd.Env = append(cmd.Env, "PURE_NRANKS="+strconv.Itoa(*ranks))
		}
		if monAddrs != nil {
			cmd.Env = append(cmd.Env, transport.EnvMonitor+"="+monAddrs[i])
		}
		op, _ := cmd.StdoutPipe()
		ep, _ := cmd.StderrPipe()
		prefix := fmt.Sprintf("[node %d] ", i)
		for _, p := range []io.ReadCloser{op, ep} {
			outWG.Add(1)
			go func(p io.ReadCloser) {
				defer outWG.Done()
				sc := bufio.NewScanner(p)
				sc.Buffer(make([]byte, 64<<10), 1<<20)
				for sc.Scan() {
					outMu.Lock()
					fmt.Fprintf(stdout, "%s%s\n", prefix, sc.Text())
					outMu.Unlock()
				}
			}(p)
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(stderr, "purerun: starting node %d: %v\n", i, err)
			for _, c := range cmds[:i] {
				c.Process.Kill()
			}
			return 1
		}
		cmds[i] = cmd
	}

	if killNode >= 0 {
		go func() {
			time.Sleep(killDelay)
			fmt.Fprintf(stderr, "purerun: chaos: SIGKILL node %d after %v\n", killNode, killDelay)
			cmds[killNode].Process.Kill()
		}()
	}
	if *timeout > 0 {
		t := time.AfterFunc(*timeout, func() {
			fmt.Fprintf(stderr, "purerun: timeout %v expired, killing the job\n", *timeout)
			for _, c := range cmds {
				c.Process.Kill()
			}
		})
		defer t.Stop()
	}

	code := 0
	for i, cmd := range cmds {
		err := cmd.Wait()
		st := cmd.ProcessState.ExitCode() // -1 for signal death
		switch {
		case err == nil:
			fmt.Fprintf(stderr, "purerun: node %d exited ok\n", i)
		case st >= 0:
			fmt.Fprintf(stderr, "purerun: node %d exited with code %d\n", i, st)
			if code == 0 {
				code = st
			}
		default:
			fmt.Fprintf(stderr, "purerun: node %d died: %v\n", i, err)
			if code == 0 {
				code = 1
			}
		}
	}
	outWG.Wait()
	return code
}

// reservePorts picks n distinct localhost ports by binding and releasing
// them.  The usual bind-race caveat applies; workers that lose the race
// fail their Listen with a descriptive error rather than hanging.
func reservePorts(n int) ([]string, error) {
	out := make([]string, n)
	for i := range out {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		out[i] = ln.Addr().String()
		ln.Close()
	}
	return out, nil
}

func parseKill(spec string, nodes int) (node int, delay time.Duration, err error) {
	if spec == "" {
		return -1, 0, nil
	}
	idx := strings.IndexByte(spec, ':')
	if idx < 0 {
		return -1, 0, fmt.Errorf("bad -kill %q (want node:delay, e.g. 1:200ms)", spec)
	}
	if node, err = strconv.Atoi(spec[:idx]); err != nil {
		return -1, 0, fmt.Errorf("bad -kill node in %q: %v", spec, err)
	}
	if node < 0 || node >= nodes {
		return -1, 0, fmt.Errorf("-kill node %d out of range [0,%d)", node, nodes)
	}
	if delay, err = time.ParseDuration(spec[idx+1:]); err != nil {
		return -1, 0, fmt.Errorf("bad -kill delay in %q: %v", spec, err)
	}
	return node, delay, nil
}
