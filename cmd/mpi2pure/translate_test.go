package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const sample = `package main

import (
	"fmt"

	"repro/mpibase"
)

func main() {
	cfg := mpibase.Config{NRanks: 4, EagerMax: 4096}
	err := mpibase.Run(cfg, func(p *mpibase.Proc) {
		c := p.World()
		if p.ID() == 0 {
			c.Send([]byte("hi"), 1, 0)
		} else if p.ID() == 1 {
			buf := make([]byte, 8)
			c.Recv(buf, 0, 0)
		}
		c.Barrier()
		sum := c.AllreduceFloat64(1, mpibase.Sum)
		sub := c.Split(p.ID()%2, p.ID())
		_ = sub
		var req *mpibase.Request
		_ = req
		fmt.Println(sum)
	})
	if err != nil {
		panic(err)
	}
}
`

func TestTranslateSample(t *testing.T) {
	out, warnings, err := Translate("sample.go", []byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	got := string(out)
	for _, want := range []string{
		`"repro/pure"`,
		"pure.Config{NRanks: 4, SmallMsgMax: 4096}",
		"pure.Run(cfg, func(p *pure.Rank)",
		"pure.Sum",
		"*pure.Request",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("translated output missing %q:\n%s", want, got)
		}
	}
	for _, absent := range []string{"mpibase", "EagerMax", "Proc"} {
		if strings.Contains(got, absent) {
			t.Errorf("translated output still contains %q:\n%s", absent, got)
		}
	}
	if len(warnings) != 0 {
		t.Errorf("unexpected warnings: %v", warnings)
	}
	// The output must be valid Go.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
		t.Fatalf("translated output does not parse: %v", err)
	}
}

func TestTranslateAliasedImport(t *testing.T) {
	src := `package main

import mb "repro/mpibase"

func run() {
	_ = mb.Run(mb.Config{NRanks: 2}, func(p *mb.Proc) {})
}
`
	out, _, err := Translate("aliased.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	got := string(out)
	if !strings.Contains(got, "pure.Run(pure.Config{NRanks: 2}, func(p *pure.Rank)") {
		t.Errorf("aliased translation wrong:\n%s", got)
	}
}

func TestTranslateWarnsOnUnknownAPI(t *testing.T) {
	src := `package main

import "repro/mpibase"

var x = mpibase.DefaultEagerMax
var _ = mpibase.Run
`
	_, warnings, err := Translate("warn.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "DefaultEagerMax") {
		t.Errorf("warnings = %v, want one about DefaultEagerMax", warnings)
	}
}

func TestTranslateRejectsNonMPIFile(t *testing.T) {
	if _, _, err := Translate("x.go", []byte("package main\n")); err == nil {
		t.Error("file without mpibase import should be rejected")
	}
	if _, _, err := Translate("x.go", []byte("not go")); err == nil {
		t.Error("unparseable file should be rejected")
	}
}

const rmaSample = `package main

import "repro/mpibase"

func main() {
	err := mpibase.Run(mpibase.Config{NRanks: 2}, func(p *mpibase.Proc) {
		c := p.World()
		win := MPI_Win_create(c, make([]byte, 128))
		MPI_Win_fence(win)
		if p.ID() == 0 {
			MPI_Put(win, make([]byte, 64), 1, 0)
		}
		MPI_Win_fence(win)
		if p.ID() == 1 {
			dest := make([]byte, 64)
			MPI_Get(win, dest, 0, 0)
		}
		MPI_Win_fence(win)
	})
	if err != nil {
		panic(err)
	}
}
`

// TestTranslateRMACalls checks the MPI-style one-sided calls collapse onto
// the pure RMA methods: the first argument becomes the receiver.
func TestTranslateRMACalls(t *testing.T) {
	out, warnings, err := Translate("rma.go", []byte(rmaSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Errorf("unexpected warnings: %v", warnings)
	}
	got := string(out)
	for _, want := range []string{
		"win := c.WinCreate(make([]byte, 128))",
		"win.Fence()",
		"win.Put(make([]byte, 64), 1, 0)",
		"win.Get(dest, 0, 0)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("translated output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "MPI_") {
		t.Errorf("untranslated MPI_ call remains:\n%s", got)
	}
	// The result must still parse.
	if _, err := parser.ParseFile(token.NewFileSet(), "rma.go", out, 0); err != nil {
		t.Fatalf("translated output does not parse: %v", err)
	}
}

// TestTranslateRMAWrongArity leaves malformed one-sided calls untouched and
// warns instead of producing a broken rewrite.
func TestTranslateRMAWrongArity(t *testing.T) {
	src := `package main

import "repro/mpibase"

func f(c *mpibase.Comm) {
	MPI_Put(c, nil)
}
`
	out, warnings, err := Translate("bad.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "MPI_Put expects 4 args") {
		t.Errorf("warnings = %v, want one arity warning", warnings)
	}
	if !strings.Contains(string(out), "MPI_Put(c, nil)") {
		t.Errorf("malformed call was rewritten:\n%s", out)
	}
}

const persistentSample = `package main

import "repro/mpibase"

func main() {
	err := mpibase.Run(mpibase.Config{NRanks: 2}, func(p *mpibase.Proc) {
		c := p.World()
		peer := 1 - p.ID()
		out := make([]byte, 8)
		in := make([]byte, 8)
		send := MPI_Send_init(c, out, peer, 0)
		recv := MPI_Recv_init(c, in, peer, 0)
		for i := 0; i < 4; i++ {
			MPI_Startall(recv, send)
			MPI_Waitall_ops(send, recv)
		}
		MPI_Start(send)
		MPI_Wait_op(send)
	})
	if err != nil {
		panic(err)
	}
}
`

// TestTranslatePersistentOps checks the MPI persistent-request family maps
// onto pure persistent operations: the init calls become communicator
// methods, Start/Wait become operation methods, and the variadic
// Startall/Waitall move to pure package functions.
func TestTranslatePersistentOps(t *testing.T) {
	out, warnings, err := Translate("persistent.go", []byte(persistentSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Errorf("unexpected warnings: %v", warnings)
	}
	got := string(out)
	for _, want := range []string{
		"send := c.SendInit(out, peer, 0)",
		"recv := c.RecvInit(in, peer, 0)",
		"pure.Startall(recv, send)",
		"pure.WaitallOps(send, recv)",
		"send.Start()",
		"send.Wait()",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("translated output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "MPI_") {
		t.Errorf("untranslated MPI_ call remains:\n%s", got)
	}
	if _, err := parser.ParseFile(token.NewFileSet(), "persistent.go", out, 0); err != nil {
		t.Fatalf("translated output does not parse: %v", err)
	}
}

// TestTranslatePersistentSelectorSurface: the persistent-op type and
// function names are part of the known-compatible selector surface, so
// referencing them through the mpibase qualifier translates without
// review-manually warnings.
func TestTranslatePersistentSelectorSurface(t *testing.T) {
	src := `package main

import "repro/mpibase"

var _ = mpibase.Startall
var _ = mpibase.WaitallOps

func f(op *mpibase.PersistentOp, ch *mpibase.Channel) {}
`
	out, warnings, err := Translate("surface.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Errorf("persistent-op surface should be known-compatible, got warnings: %v", warnings)
	}
	got := string(out)
	for _, want := range []string{"pure.Startall", "pure.WaitallOps", "*pure.PersistentOp", "*pure.Channel"} {
		if !strings.Contains(got, want) {
			t.Errorf("translated output missing %q:\n%s", want, got)
		}
	}
}
