// Command mpi2pure is the source-to-source translator this reproduction's
// applications were ported with, mirroring the paper's MPI-to-Pure
// translator ("we used our MPI-to-Pure source translator to automatically
// write the Pure message code", §2; Pure Tools, §4.0.3).
//
// It rewrites a Go source file written against the mpibase baseline API
// into the pure API:
//
//   - the "repro/mpibase" import becomes "repro/pure" (qualifier included);
//   - mpibase.Run/Config/Proc become pure.Run/Config/Rank;
//   - Config field EagerMax becomes SmallMsgMax;
//   - messaging, collective, communicator and typed-helper calls keep their
//     names (the APIs are deliberately aligned, as Pure's are with MPI's);
//   - MPI-style one-sided calls collapse onto the pure RMA API:
//     MPI_Win_create(comm, buf) becomes comm.WinCreate(buf),
//     MPI_Put(win, data, target, off) becomes win.Put(data, target, off),
//     MPI_Get(win, dest, target, off) becomes win.Get(dest, target, off),
//     and MPI_Win_fence(win) becomes win.Fence();
//   - MPI persistent requests become pure persistent operations:
//     MPI_Send_init(comm, buf, dst, tag) becomes comm.SendInit(buf, dst, tag),
//     MPI_Recv_init(comm, buf, src, tag) becomes comm.RecvInit(buf, src, tag),
//     MPI_Start(op) becomes op.Start(), MPI_Wait_op(op) becomes op.Wait(),
//     and MPI_Startall(ops...) becomes pure.Startall(ops...).
//
// Usage:
//
//	mpi2pure [-o out.go] in.go     # single file to stdout or -o
//	mpi2pure -w in.go ...          # rewrite files in place
//	mpi2pure -w -r dir             # rewrite every mpibase-using file under dir
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// renamedIdents maps mpibase identifiers that change names in pure.
var renamedIdents = map[string]string{
	"Proc": "Rank",
}

// renamedFields maps mpibase.Config fields to pure.Config fields.
var renamedFields = map[string]string{
	"EagerMax": "SmallMsgMax",
}

// methodCalls maps MPI-style free functions to the pure method the call
// collapses onto; the first argument becomes the receiver.  nargs is the
// exact argument count including the receiver (MPI_Put/MPI_Get take exactly
// four, the rest exactly their receiver + payload).
var methodCalls = map[string]struct {
	method string
	nargs  int
}{
	// One-sided (RMA).
	"MPI_Win_create": {"WinCreate", 2}, // (comm, buf)
	"MPI_Put":        {"Put", 4},       // (win, data, target, off)
	"MPI_Get":        {"Get", 4},       // (win, dest, target, off)
	"MPI_Win_fence":  {"Fence", 1},     // (win)
	// Persistent requests (MPI_Send_init family): init binds the buffer and
	// peer once; Start/Wait reuse the bound operation every round.
	"MPI_Send_init": {"SendInit", 4}, // (comm, buf, dst, tag)
	"MPI_Recv_init": {"RecvInit", 4}, // (comm, buf, src, tag)
	"MPI_Start":     {"Start", 1},    // (op)
	"MPI_Wait_op":   {"Wait", 1},     // (op) — persistent-request wait
}

// pkgCalls maps MPI-style free functions to pure package-level functions
// that keep their full argument list (variadic over persistent operations).
var pkgCalls = map[string]string{
	"MPI_Startall":    "Startall",
	"MPI_Waitall_ops": "WaitallOps",
}

// Translate rewrites one source file's bytes.
func Translate(filename string, src []byte) ([]byte, []string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, nil, fmt.Errorf("mpi2pure: parsing %s: %w", filename, err)
	}
	var warnings []string
	qualifier := "" // local name the file uses for the mpibase package
	for _, imp := range file.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		if path != "repro/mpibase" {
			continue
		}
		imp.Path.Value = strconv.Quote("repro/pure")
		if imp.Name != nil {
			qualifier = imp.Name.Name
		} else {
			qualifier = "mpibase"
			// The default qualifier changes with the import path.
			imp.Name = nil
		}
	}
	if qualifier == "" {
		return nil, nil, fmt.Errorf("mpi2pure: %s does not import repro/mpibase", filename)
	}

	inConfigLit := map[*ast.KeyValueExpr]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			// MPI-style one-sided free functions become method calls on
			// their first argument: MPI_Put(win, ...) -> win.Put(...).
			id, ok := node.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			// Variadic persistent-request calls keep their arguments and
			// move to pure package functions: MPI_Startall(a, b) ->
			// pure.Startall(a, b).
			if fn, ok := pkgCalls[id.Name]; ok {
				node.Fun = &ast.SelectorExpr{X: ast.NewIdent("pure"), Sel: ast.NewIdent(fn)}
				return true
			}
			rw, ok := methodCalls[id.Name]
			if !ok {
				return true
			}
			if len(node.Args) != rw.nargs {
				warnings = append(warnings,
					fmt.Sprintf("%s: %s expects %d args, got %d; left untranslated",
						fset.Position(node.Pos()), id.Name, rw.nargs, len(node.Args)))
				return true
			}
			node.Fun = &ast.SelectorExpr{X: node.Args[0], Sel: ast.NewIdent(rw.method)}
			node.Args = node.Args[1:]
		case *ast.CompositeLit:
			// Mark mpibase.Config{...} literal keys for field renaming.
			if sel, ok := node.Type.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == qualifier && sel.Sel.Name == "Config" {
					for _, elt := range node.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							inConfigLit[kv] = true
						}
					}
				}
			}
		case *ast.SelectorExpr:
			id, ok := node.X.(*ast.Ident)
			if !ok || id.Name != qualifier {
				return true
			}
			id.Name = "pure"
			if to, ok := renamedIdents[node.Sel.Name]; ok {
				node.Sel.Name = to
			}
			switch node.Sel.Name {
			case "Run", "Config", "Rank", "Comm", "Request",
				"Channel", "PersistentOp", "Startall", "WaitallOps",
				"Sum", "Prod", "Min", "Max",
				"Float64", "Float32", "Int64", "Int32", "Uint8",
				"Op", "DType":
				// Known-compatible surface.
			default:
				warnings = append(warnings,
					fmt.Sprintf("%s: pure.%s has no verified mpibase equivalent; review manually",
						fset.Position(node.Pos()), node.Sel.Name))
			}
		}
		return true
	})
	// Rename Config literal fields.
	for kv := range inConfigLit {
		if key, ok := kv.Key.(*ast.Ident); ok {
			if to, ok := renamedFields[key.Name]; ok {
				key.Name = to
			}
		}
	}

	var buf bytes.Buffer
	if err := format.Node(&buf, fset, file); err != nil {
		return nil, nil, fmt.Errorf("mpi2pure: formatting: %w", err)
	}
	return buf.Bytes(), warnings, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout; single input only)")
	write := flag.Bool("w", false, "rewrite files in place")
	recurse := flag.Bool("r", false, "treat arguments as directories and translate every mpibase-using .go file under them (requires -w)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mpi2pure [-o out.go] in.go | mpi2pure -w [-r] path ...")
		os.Exit(2)
	}
	if *recurse && !*write {
		fmt.Fprintln(os.Stderr, "mpi2pure: -r requires -w")
		os.Exit(2)
	}

	var files []string
	if *recurse {
		for _, root := range flag.Args() {
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
					if src, rerr := os.ReadFile(path); rerr == nil && bytes.Contains(src, []byte(`"repro/mpibase"`)) {
						files = append(files, path)
					}
				}
				return nil
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpi2pure: %v\n", err)
				os.Exit(1)
			}
		}
	} else {
		files = flag.Args()
	}
	if !*write && len(files) != 1 {
		fmt.Fprintln(os.Stderr, "mpi2pure: exactly one input file unless -w is set")
		os.Exit(2)
	}

	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpi2pure: %v\n", err)
			os.Exit(1)
		}
		translated, warnings, err := Translate(file, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
		switch {
		case *write:
			if err := os.WriteFile(file, translated, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mpi2pure: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "rewrote %s\n", file)
		case *out != "":
			if err := os.WriteFile(*out, translated, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mpi2pure: %v\n", err)
				os.Exit(1)
			}
		default:
			os.Stdout.Write(translated)
		}
	}
}
