// Command pureinfo prints the virtual cluster topology, rank placement, and
// cost-model tables the runtime and simulator operate with — the equivalent
// of the paper's debugging/profiling modes for inspecting rank maps.
//
// Usage:
//
//	pureinfo -ranks 128 -rpn 64          # SMP placement over Cori nodes
//	pureinfo -ranks 8 -rpn 4 -policy rr  # round-robin placement
//	pureinfo -costs                      # dump the calibrated cost model
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/desmodels"
	"repro/internal/topology"
)

func main() {
	ranks := flag.Int("ranks", 64, "number of ranks")
	rpn := flag.Int("rpn", 0, "ranks per node (0 = fill)")
	policy := flag.String("policy", "smp", "placement policy: smp or rr")
	showCosts := flag.Bool("costs", false, "print the DES cost model")
	flag.Parse()

	if *showCosts {
		fmt.Printf("calibrated cost model (ns / ns-per-byte):\n%+v\n", desmodels.Paper())
		return
	}

	pol := topology.SMP
	if *policy == "rr" {
		pol = topology.RoundRobin
	}
	eff := *rpn
	if eff <= 0 {
		eff = 64
	}
	nodes := (*ranks + eff - 1) / eff
	spec := topology.CoriSpec(nodes)
	place, err := topology.NewPlacement(spec, *ranks, *rpn, pol, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pureinfo: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("cluster: %d Cori nodes (%d sockets x %d cores x %d HT = %d hwthreads/node)\n",
		spec.Nodes, spec.SocketsPerNode, spec.CoresPerSocket, spec.ThreadsPerCore, spec.HWThreadsPerNode())
	fmt.Printf("ranks: %d, nodes used: %d\n\n", *ranks, place.NodesUsed())
	fmt.Println("rank  node  socket  core  thread  local-idx  leader")
	limit := *ranks
	if limit > 128 {
		limit = 128
	}
	for r := 0; r < limit; r++ {
		h := place.Seat(r)
		fmt.Printf("%4d  %4d  %6d  %4d  %6d  %9d  %6d\n",
			r, h.Node, h.Socket, h.Core, h.Thread, place.LocalIndex(r), place.NodeLeader(r))
	}
	if limit < *ranks {
		fmt.Printf("... (%d more ranks)\n", *ranks-limit)
	}
	fmt.Println("\npairwise locality classes (first 8 ranks):")
	n := min(8, *ranks)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			fmt.Printf("  %d<->%d: %v\n", a, b, place.DistanceBetween(a, b))
		}
	}
}
