// Command purestatsd runs the DogStatsD-style sharded aggregation pipeline
// (docs/STATSD.md): ingestion ranks parse and intern generated traffic,
// shard it by key hash over persistent batched channels, aggregator ranks
// drain into per-series aggregates, and every round rolls up into a
// zero-sum checksum-verified global flush snapshot.
//
// Usage:
//
//	purestatsd -events 1000000                  # single process, 2+2 ranks
//	purestatsd -zipf 2.0 -steal -workscale 512  # skewed load, stealing drains
//	purestatsd -drop -pbq 16                    # shed load instead of blocking
//	purestatsd -monitor :8080                   # serve the live monitor
//	purerun -n 2 ./purestatsd -events 100000    # ingest node + aggregate node over TCP
//
// Under purerun the PURE_NODE/PURE_ADDRS/PURE_JOB environment selects the
// real transport, and `purerun -monitor` hands each node a PURE_MONITOR
// address that -monitor defaults to, so every process of the job serves its
// own live monitor without extra flags; ranks are laid out SMP-style, so with the default 2+2
// split and two nodes the ingesters share node 0 and the aggregators node
// 1.  Exit codes follow the launcher convention: 0 success (prints the
// verified flush totals), 3 a peer node died (prints "NODEDEAD
// dead=<nodes>"), 1 anything else — including an inexact flush, which is a
// bug, never load.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	appstatsd "repro/internal/apps/statsd"
	proto "repro/internal/statsd"
	"repro/pure"
)

func main() {
	ingesters := flag.Int("ingesters", 2, "ingestion rank count")
	aggregators := flag.Int("aggregators", 2, "aggregator rank count")
	events := flag.Int64("events", 1_000_000, "events generated per run (all ingesters combined)")
	rounds := flag.Int("rounds", 4, "flush rounds (each ends in a verified rollup)")
	batch := flag.Int("batch", 0, "events per shard batch (0 = default)")
	frame := flag.Int("frame", 0, "flush a shard batch at this many pending bytes (0 = default)")
	drop := flag.Bool("drop", false, "shed load when a shard queue is full instead of blocking")
	steal := flag.Bool("steal", false, "drain as a stealable Pure Task (skew absorption)")
	subshards := flag.Int("subshards", 0, "drain sub-shards per aggregator = steal granularity (0 = default)")
	workscale := flag.Int("workscale", 0, "extra per-record drain work (models real aggregation cost)")
	drain := flag.Int("drain", 0, "staged events per source that trigger a drain (0 = default)")
	zipf := flag.Float64("zipf", 0, "zipf skew exponent for the generated keys (0 = uniform)")
	tagsets := flag.Int("tagsets", 0, "distinct tagsets in the generated traffic (0 = default)")
	pbq := flag.Int("pbq", 0, "PBQ slots per channel (0 = default; small values exercise backpressure)")
	monitor := flag.String("monitor", os.Getenv("PURE_MONITOR"), "serve the live runtime monitor on this address (e.g. :8080; default $PURE_MONITOR)")
	flag.Parse()

	cfg := appstatsd.Config{
		Ingesters:   *ingesters,
		Aggregators: *aggregators,
		Events:      *events,
		Rounds:      *rounds,
		BatchEvents: *batch,
		FrameBytes:  *frame,
		Drop:        *drop,
		Steal:       *steal,
		Subshards:   *subshards,
		WorkScale:   *workscale,
		DrainEvents: *drain,
		Gen:         proto.GenConfig{ZipfS: *zipf, Tagsets: *tagsets},
		Interner:    proto.NewInterner(4096), // node-shared across this process's ingesters
	}
	nranks := *ingesters + *aggregators
	pcfg := pure.Config{NRanks: nranks, PBQSlots: *pbq, MonitorAddr: *monitor}

	tcfg, err := pure.TransportFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "purestatsd:", err)
		os.Exit(1)
	}
	if tcfg != nil {
		nodes := len(tcfg.Addrs)
		if nranks%nodes != 0 {
			fmt.Fprintf(os.Stderr, "purestatsd: %d ranks do not divide over %d nodes\n", nranks, nodes)
			os.Exit(1)
		}
		pcfg.Transport = tcfg
		pcfg.Spec = pure.Spec{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: nranks / nodes, ThreadsPerCore: 1}
	}

	var res appstatsd.Result
	haveRes := false // true iff this process hosts rank 0
	err = pure.Run(pcfg, func(r *pure.Rank) {
		got, rerr := appstatsd.Run(r, cfg)
		if rerr != nil {
			r.Abort(rerr)
			return
		}
		if r.ID() == 0 {
			res, haveRes = got, true
		}
	})
	if err != nil {
		var re *pure.RunError
		if errors.As(err, &re) && re.Cause == pure.CauseNodeDead {
			fmt.Printf("NODEDEAD dead=%v\n", re.DeadNodes)
			fmt.Fprintln(os.Stderr, "purestatsd:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "purestatsd:", err)
		os.Exit(1)
	}
	if haveRes {
		fmt.Printf("purestatsd: applied %d, dropped %d, %d series, %d drain chunks stolen, flush sum %#x\n",
			res.Applied, res.Dropped, res.Keys, res.Stolen, res.Sum)
		if !res.Exact {
			fmt.Printf("INEXACT: applied %d of %d committed events\n", res.Applied, res.Committed)
			os.Exit(1)
		}
		fmt.Println("EXACT")
	}
}
