// Command puretrace analyzes binary trace dumps recorded by the Pure runtime
// (pure.Report.WriteTraceBin, or the -trace-bin flags on purebench and the
// stencil example).
//
// Usage:
//
//	puretrace analyze [-json] [-unmatched N] <trace.bin>
//	puretrace top     [-n N] <trace.bin>
//	puretrace skew    [-n N] <trace.bin>
//	puretrace convert [-o out.json] <trace.bin>
//
// analyze prints the full report: message matching per protocol path with
// latency histograms, unmatched operations, collective skew per round,
// PureBufferQueue backpressure, per-rank time breakdown, and the
// critical-path estimate.  top ranks communication pairs and PBQ stalls,
// skew prints only the collective rounds, and convert rewrites the dump as
// Chrome trace_event JSON for chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: puretrace <analyze|top|skew|convert> [flags] <trace.bin>")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "analyze":
		err = cmdAnalyze(args)
	case "top":
		err = cmdTop(args)
	case "skew":
		err = cmdSkew(args)
	case "convert":
		err = cmdConvert(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "puretrace %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// load reads the dump named by the flag set's positional argument and runs
// the analyzer over it.
func load(fs *flag.FlagSet, maxUnmatched int) (*analyze.Analysis, *obs.TraceDump, error) {
	if fs.NArg() != 1 {
		return nil, nil, fmt.Errorf("want exactly one trace file, got %d args", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	d, err := obs.ReadTraceBin(f)
	if err != nil {
		return nil, nil, err
	}
	a := analyze.Run(d.Events, d.NRanks, analyze.Options{MaxUnmatched: maxUnmatched})
	a.Dropped = d.Dropped
	return a, d, nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the analysis as JSON instead of text")
	maxUn := fs.Int("unmatched", 64, "list at most this many unmatched operations")
	fs.Parse(args)
	a, _, err := load(fs, *maxUn)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(a)
	}
	return a.WriteText(os.Stdout)
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 10, "show the top N entries per table")
	fs.Parse(args)
	a, _, err := load(fs, 0)
	if err != nil {
		return err
	}
	fmt.Printf("top %d pairs by matched bytes (%d total pairs):\n", min(*n, len(a.Pairs)), len(a.Pairs))
	for i, pr := range a.Pairs {
		if i >= *n {
			break
		}
		fmt.Printf("  %3d -> %-3d %-10s msgs=%-6d bytes=%-10d mean latency %v\n",
			pr.Src, pr.Dst, pr.Path, pr.Matched, pr.Bytes, time.Duration(pr.Latency.Mean()))
	}
	if len(a.PBQ) > 0 {
		fmt.Printf("top %d PBQ-backpressure pairs (%d total):\n", min(*n, len(a.PBQ)), len(a.PBQ))
		for i, sp := range a.PBQ {
			if i >= *n {
				break
			}
			fmt.Printf("  %3d -> %-3d stalls=%-6d total %v (max %v)\n",
				sp.Src, sp.Dst, sp.Stalls, time.Duration(sp.TotalNs), time.Duration(sp.MaxNs))
		}
	}
	return nil
}

func cmdSkew(args []string) error {
	fs := flag.NewFlagSet("skew", flag.ExitOnError)
	n := fs.Int("n", 50, "show at most N rounds")
	fs.Parse(args)
	a, _, err := load(fs, 0)
	if err != nil {
		return err
	}
	c := a.Collectives
	if len(c.Rounds) == 0 {
		fmt.Println("no collective rounds in trace")
		return nil
	}
	fmt.Printf("%d collective calls in %d rounds; arrival spread mean %v, max %v\n",
		c.Calls, len(c.Rounds), time.Duration(c.MeanSpreadNs), time.Duration(c.MaxSpreadNs))
	for i, rs := range c.Rounds {
		if i >= *n {
			fmt.Printf("... %d more rounds\n", len(c.Rounds)-i)
			break
		}
		label := fmt.Sprintf("round %d", rs.Round)
		if rs.Large {
			label = fmt.Sprintf("call #%d", rs.Round)
		}
		fmt.Printf("  %-9s node %d %-12s ranks=%-3d spread %-12v last=rank %-3d slowest=rank %d (%v)\n",
			rs.Kind, rs.Node, label, rs.Ranks, time.Duration(rs.ArrivalSpreadNs),
			rs.LastRank, rs.SlowestRank, time.Duration(rs.MaxDurNs))
	}
	for i, s := range c.Stragglers {
		if i >= 5 {
			break
		}
		fmt.Printf("straggler: rank %d last to arrive %d times (total lateness %v)\n",
			s.Rank, s.LastArrivals, time.Duration(s.LatenessNs))
	}
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file, got %d args", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := obs.ReadTraceBin(f)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	// Node placement is not recorded in the dump; render all ranks as one
	// process.
	return obs.WriteChromeTrace(w, d.Events, func(int32) int { return 0 })
}
