// Command puretrace analyzes binary trace dumps recorded by the Pure runtime
// (pure.Report.WriteTraceBin, or the -trace-bin flags on purebench and the
// stencil example).
//
// Usage:
//
//	puretrace analyze [-json] [-unmatched N] <trace.bin>
//	puretrace top     [-n N] <trace.bin>
//	puretrace skew    [-n N] <trace.bin>
//	puretrace convert [-o out.json] <trace.bin>
//	puretrace merge   [-o merged.bin] <node0.bin> <node1.bin> ...
//
// analyze prints the full report: message matching per protocol path with
// latency histograms, unmatched operations, collective skew per round,
// PureBufferQueue backpressure, per-rank time breakdown, and the
// critical-path estimate.  top ranks communication pairs and PBQ stalls,
// skew prints only the collective rounds, and convert rewrites the dump as
// Chrome trace_event JSON for chrome://tracing or https://ui.perfetto.dev.
//
// merge combines the per-node dumps of one multi-process run into a single
// clock-aligned trace: the transport's heartbeat clock samples estimate each
// node's offset from a reference node, every timestamp is rebased onto the
// reference clock, and the output is a normal trace.bin — analyze then
// matches cross-node sends to their receives (and transport frames on both
// sides of each link) exactly like local ones, and convert renders one
// process group per node.
//
// Dumps recorded by a multi-process node carry the node's identity, so
// analyze on a single per-node dump classifies traffic to ranks on other
// nodes as cross-node rather than unmatched.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: puretrace <analyze|top|skew|convert|merge> [flags] <trace.bin>...")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "analyze":
		err = cmdAnalyze(args)
	case "top":
		err = cmdTop(args)
	case "skew":
		err = cmdSkew(args)
	case "convert":
		err = cmdConvert(args)
	case "merge":
		err = cmdMerge(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "puretrace %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// readDump opens and parses one trace file.
func readDump(path string) (*obs.TraceDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadTraceBin(f)
}

// optsFromMeta derives analyzer options from the dump's metadata: the rank
// placement (when recorded) keys collective grouping and cross-node
// classification, a recorded node identity marks the dump as one node's
// partial view, and link events feed the link-flow report.
func optsFromMeta(d *obs.TraceDump, maxUnmatched int) analyze.Options {
	opt := analyze.Options{MaxUnmatched: maxUnmatched, Links: d.Meta.Links}
	if place := d.Meta.NodeOfRank; len(place) > 0 {
		opt.NodeOf = func(r int32) int {
			if int(r) < len(place) {
				return int(place[r])
			}
			return 0
		}
	}
	if d.Meta.Node >= 0 {
		opt.Partial = true
		opt.Node = d.Meta.Node
	}
	return opt
}

// load reads the dump named by the flag set's positional argument and runs
// the analyzer over it.
func load(fs *flag.FlagSet, maxUnmatched int) (*analyze.Analysis, *obs.TraceDump, error) {
	if fs.NArg() != 1 {
		return nil, nil, fmt.Errorf("want exactly one trace file, got %d args", fs.NArg())
	}
	d, err := readDump(fs.Arg(0))
	if err != nil {
		return nil, nil, err
	}
	a := analyze.Run(d.Events, d.NRanks, optsFromMeta(d, maxUnmatched))
	a.Dropped = d.Dropped
	return a, d, nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the analysis as JSON instead of text")
	maxUn := fs.Int("unmatched", 64, "list at most this many unmatched operations")
	fs.Parse(args)
	a, _, err := load(fs, *maxUn)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(a)
	}
	return a.WriteText(os.Stdout)
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 10, "show the top N entries per table")
	fs.Parse(args)
	a, _, err := load(fs, 0)
	if err != nil {
		return err
	}
	fmt.Printf("top %d pairs by matched bytes (%d total pairs):\n", min(*n, len(a.Pairs)), len(a.Pairs))
	for i, pr := range a.Pairs {
		if i >= *n {
			break
		}
		fmt.Printf("  %3d -> %-3d %-10s msgs=%-6d bytes=%-10d mean latency %v\n",
			pr.Src, pr.Dst, pr.Path, pr.Matched, pr.Bytes, time.Duration(pr.Latency.Mean()))
	}
	if len(a.PBQ) > 0 {
		fmt.Printf("top %d PBQ-backpressure pairs (%d total):\n", min(*n, len(a.PBQ)), len(a.PBQ))
		for i, sp := range a.PBQ {
			if i >= *n {
				break
			}
			fmt.Printf("  %3d -> %-3d stalls=%-6d total %v (max %v)\n",
				sp.Src, sp.Dst, sp.Stalls, time.Duration(sp.TotalNs), time.Duration(sp.MaxNs))
		}
	}
	return nil
}

func cmdSkew(args []string) error {
	fs := flag.NewFlagSet("skew", flag.ExitOnError)
	n := fs.Int("n", 50, "show at most N rounds")
	fs.Parse(args)
	a, _, err := load(fs, 0)
	if err != nil {
		return err
	}
	c := a.Collectives
	if len(c.Rounds) == 0 {
		fmt.Println("no collective rounds in trace")
		return nil
	}
	fmt.Printf("%d collective calls in %d rounds; arrival spread mean %v, max %v\n",
		c.Calls, len(c.Rounds), time.Duration(c.MeanSpreadNs), time.Duration(c.MaxSpreadNs))
	for i, rs := range c.Rounds {
		if i >= *n {
			fmt.Printf("... %d more rounds\n", len(c.Rounds)-i)
			break
		}
		label := fmt.Sprintf("round %d", rs.Round)
		if rs.Large {
			label = fmt.Sprintf("call #%d", rs.Round)
		}
		fmt.Printf("  %-9s node %d %-12s ranks=%-3d spread %-12v last=rank %-3d slowest=rank %d (%v)\n",
			rs.Kind, rs.Node, label, rs.Ranks, time.Duration(rs.ArrivalSpreadNs),
			rs.LastRank, rs.SlowestRank, time.Duration(rs.MaxDurNs))
	}
	for i, s := range c.Stragglers {
		if i >= 5 {
			break
		}
		fmt.Printf("straggler: rank %d last to arrive %d times (total lateness %v)\n",
			s.Rank, s.LastArrivals, time.Duration(s.LatenessNs))
	}
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file, got %d args", fs.NArg())
	}
	d, err := readDump(fs.Arg(0))
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	// Dumps that record placement render one process group per node; older
	// dumps fall back to a single process.
	nodeOf := func(int32) int { return 0 }
	if place := d.Meta.NodeOfRank; len(place) > 0 {
		nodeOf = func(r int32) int {
			if int(r) < len(place) {
				return int(place[r])
			}
			return 0
		}
	}
	return obs.WriteChromeTrace(w, d.Events, nodeOf)
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "merged.bin", "output file for the merged trace")
	asJSON := fs.Bool("json", false, "emit the alignment summary as JSON")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("want at least one per-node trace file")
	}
	dumps := make([]*obs.TraceDump, 0, fs.NArg())
	for _, path := range fs.Args() {
		d, err := readDump(path)
		if err != nil {
			return err
		}
		dumps = append(dumps, d)
	}
	merged, info, err := analyze.Merge(dumps)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := obs.WriteTraceBinMeta(f, merged.Events, merged.NRanks, merged.Dropped, &merged.Meta); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	}
	fmt.Printf("merged %d node dumps -> %s (%d events, %d link events, reference node %d)\n",
		len(dumps), *out, len(merged.Events), len(merged.Meta.Links), info.Ref)
	for _, na := range info.Nodes {
		switch {
		case na.Node == info.Ref:
			fmt.Printf("  node %d: reference clock\n", na.Node)
		case !na.Aligned:
			fmt.Printf("  node %d: NO CLOCK PATH to reference; timestamps passed through unaligned\n", na.Node)
		default:
			fmt.Printf("  node %d: offset %v via node %d (path delay %v, %d samples)\n",
				na.Node, time.Duration(na.OffsetNs), na.Via, time.Duration(na.DelayNs), na.Samples)
		}
	}
	return nil
}
