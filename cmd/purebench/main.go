// Command purebench regenerates the paper's tables and figures.
//
// Usage:
//
//	purebench                 # run everything at full scale
//	purebench -quick          # trimmed scales (seconds instead of minutes)
//	purebench -exp fig4,fig7a # specific experiments
//	purebench -csv out/       # also write one CSV per experiment
//	purebench -trace t.json     # run a traced stencil, write a Chrome trace
//	purebench -metrics m.prom   # ... and/or a Prometheus metrics snapshot
//	purebench -trace-bin t.bin  # ... and/or a binary dump for puretrace
//	purebench -monitor :8080    # serve the live monitor during the run
//
// Experiment ids: sec2 fig4 fig5a fig5b fig5c fig5d fig6 fig6real fig7a
// fig7b fig7breal fig7c appA appC ablation-pbq rma shmem statsd.
//
// -trace, -metrics and -trace-bin run an observed workload under the
// runtime observability layer instead of the experiment tables: the Chrome
// trace loads in chrome://tracing or https://ui.perfetto.dev, the metrics
// file is Prometheus text format, and the binary dump feeds `puretrace
// analyze`.  -monitor additionally serves /metrics, /ranks and /debug/pprof
// live while the workload runs.  The workload is the §2 stencil by default;
// `-exp statsd` selects the statsd aggregation pipeline instead (see
// docs/STATSD.md):
//
//	purebench -exp statsd -trace t.json -monitor :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/comm"
	appstatsd "repro/internal/apps/statsd"
	"repro/internal/apps/stencil"
	"repro/internal/bench"
	statsdproto "repro/internal/statsd"
	"repro/pure"
)

func main() {
	quick := flag.Bool("quick", false, "run trimmed scales")
	exps := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	traceOut := flag.String("trace", "", "run a traced stencil and write a Chrome trace to this file")
	metricsOut := flag.String("metrics", "", "run a traced stencil and write a Prometheus metrics snapshot to this file")
	traceBinOut := flag.String("trace-bin", "", "run a traced stencil and write a binary trace dump (for puretrace) to this file")
	monitorAddr := flag.String("monitor", os.Getenv("PURE_MONITOR"), "serve the live runtime monitor on this address during the observed run (e.g. :8080; default $PURE_MONITOR)")
	flag.Parse()

	if *traceOut != "" || *metricsOut != "" || *traceBinOut != "" {
		observedRun(*exps == "statsd", *traceOut, *metricsOut, *traceBinOut, *monitorAddr)
		return
	}

	var tables []bench.Table
	if *exps == "all" {
		tables = bench.All(*quick)
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			run := bench.ByID(id)
			if run == nil {
				fmt.Fprintf(os.Stderr, "purebench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			tables = append(tables, run(*quick))
		}
	}

	for _, tb := range tables {
		tb.Render(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, tb.ID+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			if err := tb.CSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}

// observedRun executes an observed workload — the §2 stencil, or with
// statsd=true the aggregation pipeline — under Config.Trace/Config.Metrics
// and writes the requested export files.
func observedRun(statsd bool, traceOut, metricsOut, traceBinOut, monitorAddr string) {
	nranks := 8
	if statsd {
		nranks = 4
	}
	cfg := pure.Config{NRanks: nranks, MonitorAddr: monitorAddr}
	if traceOut != "" || traceBinOut != "" {
		cfg.Trace = pure.NewTrace(nranks, 0)
	}
	if metricsOut != "" || monitorAddr != "" {
		cfg.Metrics = pure.NewMetrics()
	}
	var rep pure.Report
	var err error
	if statsd {
		scfg := appstatsd.Config{
			Ingesters: 2, Aggregators: 2,
			Events: 200_000, Rounds: 4, Steal: true,
			Gen:      statsdproto.GenConfig{ZipfS: 1.2},
			Interner: statsdproto.NewInterner(4096),
		}
		rep, err = pure.RunWithReport(cfg, func(r *pure.Rank) {
			res, rerr := appstatsd.Run(r, scfg)
			if rerr != nil {
				r.Abort(rerr)
				return
			}
			if r.ID() == 0 {
				fmt.Printf("purebench: statsd pipeline applied %d events (sum %#x, exact=%v, %d chunks stolen)\n",
					res.Applied, res.Sum, res.Exact, res.Stolen)
			}
		})
	} else {
		rep, err = comm.RunPureWithReport(cfg, func(b comm.Backend) {
			if _, serr := stencil.Run(b, stencil.Params{ArrSize: 512, Iters: 20, WorkScale: 24, UseTask: true}); serr != nil {
				log.Fatal(serr)
			}
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("purebench: wrote %d trace events (%d dropped) to %s\n",
			rep.Trace.Len(), rep.Trace.Dropped(), traceOut)
	}
	if traceBinOut != "" {
		f, err := os.Create(traceBinOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteTraceBin(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("purebench: wrote binary trace dump (%d events) to %s; inspect with `puretrace analyze %s`\n",
			rep.Trace.Len(), traceBinOut, traceBinOut)
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Metrics.Snapshot().WritePrometheus(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("purebench: wrote metrics snapshot to %s\n", metricsOut)
	}
}
