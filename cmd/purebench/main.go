// Command purebench regenerates the paper's tables and figures.
//
// Usage:
//
//	purebench                 # run everything at full scale
//	purebench -quick          # trimmed scales (seconds instead of minutes)
//	purebench -exp fig4,fig7a # specific experiments
//	purebench -csv out/       # also write one CSV per experiment
//	purebench -trace t.json   # run a traced stencil, write a Chrome trace
//	purebench -metrics m.prom # ... and/or a Prometheus metrics snapshot
//
// Experiment ids: sec2 fig4 fig5a fig5b fig5c fig5d fig6 fig6real fig7a
// fig7b fig7breal fig7c appA appC ablation-pbq rma.
//
// -trace and -metrics run the §2 stencil workload under the runtime
// observability layer instead of the experiment tables: the Chrome trace
// loads in chrome://tracing or https://ui.perfetto.dev, the metrics file is
// Prometheus text format.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/comm"
	"repro/internal/apps/stencil"
	"repro/internal/bench"
	"repro/pure"
)

func main() {
	quick := flag.Bool("quick", false, "run trimmed scales")
	exps := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	traceOut := flag.String("trace", "", "run a traced stencil and write a Chrome trace to this file")
	metricsOut := flag.String("metrics", "", "run a traced stencil and write a Prometheus metrics snapshot to this file")
	flag.Parse()

	if *traceOut != "" || *metricsOut != "" {
		observedRun(*traceOut, *metricsOut)
		return
	}

	var tables []bench.Table
	if *exps == "all" {
		tables = bench.All(*quick)
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			run := bench.ByID(id)
			if run == nil {
				fmt.Fprintf(os.Stderr, "purebench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			tables = append(tables, run(*quick))
		}
	}

	for _, tb := range tables {
		tb.Render(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, tb.ID+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			if err := tb.CSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}

// observedRun executes the §2 stencil under Config.Trace/Config.Metrics and
// writes the requested export files.
func observedRun(traceOut, metricsOut string) {
	const nranks = 8
	cfg := pure.Config{NRanks: nranks}
	if traceOut != "" {
		cfg.Trace = pure.NewTrace(nranks, 0)
	}
	if metricsOut != "" {
		cfg.Metrics = pure.NewMetrics()
	}
	rep, err := comm.RunPureWithReport(cfg, func(b comm.Backend) {
		if _, err := stencil.Run(b, stencil.Params{ArrSize: 512, Iters: 20, WorkScale: 24, UseTask: true}); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("purebench: wrote %d trace events (%d dropped) to %s\n",
			rep.Trace.Len(), rep.Trace.Dropped(), traceOut)
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Metrics.Snapshot().WritePrometheus(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("purebench: wrote metrics snapshot to %s\n", metricsOut)
	}
}
