// Command purebench regenerates the paper's tables and figures.
//
// Usage:
//
//	purebench                 # run everything at full scale
//	purebench -quick          # trimmed scales (seconds instead of minutes)
//	purebench -exp fig4,fig7a # specific experiments
//	purebench -csv out/       # also write one CSV per experiment
//
// Experiment ids: sec2 fig4 fig5a fig5b fig5c fig5d fig6 fig6real fig7a
// fig7b fig7breal fig7c appA appC ablation-pbq.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run trimmed scales")
	exps := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	flag.Parse()

	var tables []bench.Table
	if *exps == "all" {
		tables = bench.All(*quick)
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			run := bench.ByID(id)
			if run == nil {
				fmt.Fprintf(os.Stderr, "purebench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			tables = append(tables, run(*quick))
		}
	}

	for _, tb := range tables {
		tb.Render(os.Stdout)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, tb.ID+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			if err := tb.CSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "purebench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
