// Package comd is a Go port of the CoMD molecular-dynamics proxy app
// (ECP proxy suite) used in the paper's evaluation (§5.2), written against
// the backend-neutral comm interface so the identical source runs over both
// the Pure runtime and the MPI baseline.
//
// The physics is a cell-list classical MD step in the CoMD mold: atoms on a
// cubic lattice interact through a truncated Lennard-Jones pair potential
// (CoMD's EAM variant has the same communication structure) plus a harmonic
// tether to their lattice site that keeps the crystal bound, advanced with
// velocity Verlet.  Each rank owns a box of link cells; every step the rank
// exchanges boundary-cell atom positions with its six face neighbours in
// the standard three-phase (x, then y, then z) halo exchange, which also
// populates edge and corner ghosts, then computes forces over its own
// cells.  Periodically the ranks all-reduce the system energies, CoMD's
// collective traffic.
//
// Two imbalance variants reproduce the paper's §5.2.1/§5.2.2 experiments:
//
//   - Voids: spheres of atoms elided at initialization (following Pearce et
//     al., the paper's citation [42]) creating *static* load imbalance;
//   - Hotspot: a sphere moving through the domain inside which per-atom
//     force work is multiplied, creating *dynamic* imbalance.
//
// When Params.UseTask is set the force loop runs as a Pure Task chunked
// over cells, so ranks blocked in the halo exchange steal force work — the
// paper's eamForce task.  Force accumulation is written one-owner-per-cell
// (no Newton's-third-law halving), so chunks never write shared locations.
package comd

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/comm"
)

// Vec3 is a 3-vector.
type Vec3 struct{ X, Y, Z float64 }

func (a Vec3) add(b Vec3) Vec3      { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }
func (a Vec3) sub(b Vec3) Vec3      { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }
func (a Vec3) scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }
func (a Vec3) norm2() float64       { return a.X*a.X + a.Y*a.Y + a.Z*a.Z }

// Sphere defines a spherical region in global coordinates.
type Sphere struct {
	Center Vec3
	Radius float64
}

func (s Sphere) contains(p Vec3) bool { return p.sub(s.Center).norm2() <= s.Radius*s.Radius }

// Hotspot is a moving region of inflated force cost (dynamic imbalance).
type Hotspot struct {
	Sphere
	Velocity Vec3 // displacement per step (wraps periodically)
	// Factor multiplies the synthetic per-pair work inside the sphere.
	Factor int
}

// Params configures a CoMD run.
type Params struct {
	// Grid is the rank decomposition (px, py, pz); px*py*pz must equal the
	// communicator size.
	Grid [3]int
	// CellsPerRank is the link-cell box each rank owns (per dimension).
	CellsPerRank [3]int
	// AtomsPerCell is the initial atoms per cell (CoMD default: 4 for FCC).
	AtomsPerCell int
	// Steps is the number of timesteps (paper: 150).
	Steps int
	// Dt is the integration timestep.
	Dt float64
	// ExtraWork adds synthetic flops per pair interaction, scaling the
	// compute/communication ratio without growing the problem.
	ExtraWork int
	// PrintRate is the energy all-reduce period in steps (0 = every 10).
	PrintRate int
	// UseTask runs the force loop as a Pure Task (ignored by backends
	// without task support, where it runs serially).
	UseTask bool
	// TaskChunks is the force task's chunk count (0 = one per 4 cells).
	TaskChunks int
	// Voids elide atoms at initialization (static imbalance).
	Voids []Sphere
	// Hotspot moves a region of inflated work through the domain (dynamic
	// imbalance).
	Hotspot *Hotspot
}

// Result carries the run's invariants for cross-backend verification.
type Result struct {
	Atoms     int64   // global atom count (conserved)
	Kinetic   float64 // final kinetic energy (global)
	Potential float64 // final potential energy (global)
	Checksum  float64 // global sum of |position| components
	Steps     int
}

const (
	cellSize  = 1.0 // cutoff == cell size (link-cell condition)
	sigma     = 0.4
	epsilonLJ = 1e-4
	springK   = 0.05
	mass      = 1.0
)

// sim is one rank's simulation state.
type sim struct {
	b comm.Backend
	p Params

	coords     [3]int // this rank's grid coordinates
	origin     Vec3   // global coordinate of the rank box's low corner
	nx, ny, nz int

	// cells is the extended (ghosted) cell array, dims (nx+2)(ny+2)(nz+2);
	// interior cells are [1..nx] etc.
	cells []cellData

	interior []int // indices of interior cells (task chunk domain)

	potential float64
	// potPerCell accumulates per-cell potential so the task-parallel force
	// loop writes disjoint slots (summed after the task completes).
	potPerCell []float64

	task comm.Task
}

type cellData struct {
	pos  []Vec3
	vel  []Vec3
	frc  []Vec3
	site []Vec3
}

// Run executes CoMD over the backend and returns the global invariants.
func Run(b comm.Backend, p Params) (Result, error) {
	if p.Grid[0]*p.Grid[1]*p.Grid[2] != b.Size() {
		return Result{}, fmt.Errorf("comd: grid %v does not match %d ranks", p.Grid, b.Size())
	}
	if p.AtomsPerCell <= 0 || p.Steps < 0 {
		return Result{}, fmt.Errorf("comd: bad params %+v", p)
	}
	if p.CellsPerRank[0] < 1 || p.CellsPerRank[1] < 1 || p.CellsPerRank[2] < 1 {
		return Result{}, fmt.Errorf("comd: cells per rank must be >= 1, got %v", p.CellsPerRank)
	}
	if p.Dt == 0 {
		p.Dt = 0.001
	}
	if p.PrintRate <= 0 {
		p.PrintRate = 10
	}
	s := newSim(b, p)
	return s.run()
}

func newSim(b comm.Backend, p Params) *sim {
	s := &sim{b: b, p: p, nx: p.CellsPerRank[0], ny: p.CellsPerRank[1], nz: p.CellsPerRank[2]}
	r := b.Rank()
	s.coords = [3]int{
		r % p.Grid[0],
		(r / p.Grid[0]) % p.Grid[1],
		r / (p.Grid[0] * p.Grid[1]),
	}
	s.origin = Vec3{
		float64(s.coords[0]*s.nx) * cellSize,
		float64(s.coords[1]*s.ny) * cellSize,
		float64(s.coords[2]*s.nz) * cellSize,
	}
	s.cells = make([]cellData, (s.nx+2)*(s.ny+2)*(s.nz+2))
	s.potPerCell = make([]float64, len(s.cells))
	for iz := 1; iz <= s.nz; iz++ {
		for iy := 1; iy <= s.ny; iy++ {
			for ix := 1; ix <= s.nx; ix++ {
				ci := s.cellIndex(ix, iy, iz)
				s.interior = append(s.interior, ci)
				s.initCell(ci, ix, iy, iz)
			}
		}
	}
	if p.UseTask {
		chunks := p.TaskChunks
		if chunks <= 0 {
			chunks = (len(s.interior) + 3) / 4
		}
		s.task = b.NewTask(chunks, func(start, end int64, extra any) {
			hs := extra.(*Hotspot) // may point to a zero-factor hotspot
			n := int64(len(s.interior))
			lo := start * n / int64(chunks)
			hi := end * n / int64(chunks)
			for k := lo; k < hi; k++ {
				s.forceCell(s.interior[k], hs)
			}
		})
	}
	return s
}

func (s *sim) cellIndex(ix, iy, iz int) int {
	return (iz*(s.ny+2)+iy)*(s.nx+2) + ix
}

// initCell lays AtomsPerCell atoms on a deterministic sub-lattice of the
// cell, skipping any that fall inside a void sphere.
func (s *sim) initCell(ci, ix, iy, iz int) {
	c := &s.cells[ci]
	base := Vec3{
		s.origin.X + float64(ix-1)*cellSize,
		s.origin.Y + float64(iy-1)*cellSize,
		s.origin.Z + float64(iz-1)*cellSize,
	}
	for a := 0; a < s.p.AtomsPerCell; a++ {
		// Deterministic jittered sub-lattice positions.
		f := float64(a+1) / float64(s.p.AtomsPerCell+1)
		pos := base.add(Vec3{f * cellSize, (1 - f) * cellSize * 0.9, (0.3 + 0.5*f) * cellSize})
		skip := false
		for _, v := range s.p.Voids {
			if v.contains(pos) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		c.pos = append(c.pos, pos)
		c.site = append(c.site, pos)
		// Deterministic small initial velocity (temperature analogue).
		c.vel = append(c.vel, Vec3{
			0.01 * math.Sin(pos.X*37+pos.Y*11),
			0.01 * math.Cos(pos.Y*23+pos.Z*7),
			0.01 * math.Sin(pos.Z*31+pos.X*13),
		})
		c.frc = append(c.frc, Vec3{})
	}
}

// run advances the simulation and returns the invariants.
func (s *sim) run() (Result, error) {
	zeroHot := &Hotspot{}
	s.haloExchange()
	s.computeForces(zeroHot)
	for step := 0; step < s.p.Steps; step++ {
		hs := s.hotspotAt(step)
		s.kick(0.5 * s.p.Dt)
		s.drift(s.p.Dt)
		s.haloExchange()
		s.computeForces(hs)
		s.kick(0.5 * s.p.Dt)
		if (step+1)%s.p.PrintRate == 0 {
			// CoMD prints the global energies: two-element all-reduce.
			out := make([]float64, 2)
			comm.AllreduceFloat64s(s.b, []float64{s.kinetic(), s.potential}, out, comm.Sum)
		}
	}
	ke := comm.AllreduceFloat64(s.b, s.kinetic(), comm.Sum)
	pe := comm.AllreduceFloat64(s.b, s.potential, comm.Sum)
	atoms := comm.AllreduceInt64(s.b, s.localAtoms(), comm.Sum)
	sum := 0.0
	for _, ci := range s.interior {
		for _, p := range s.cells[ci].pos {
			sum += math.Abs(p.X) + math.Abs(p.Y) + math.Abs(p.Z)
		}
	}
	checksum := comm.AllreduceFloat64(s.b, sum, comm.Sum)
	return Result{Atoms: atoms, Kinetic: ke, Potential: pe, Checksum: checksum, Steps: s.p.Steps}, nil
}

func (s *sim) hotspotAt(step int) *Hotspot {
	if s.p.Hotspot == nil {
		return &Hotspot{}
	}
	h := *s.p.Hotspot
	// Move the hotspot with periodic wraparound over the global domain.
	gx := float64(s.p.Grid[0]*s.nx) * cellSize
	gy := float64(s.p.Grid[1]*s.ny) * cellSize
	gz := float64(s.p.Grid[2]*s.nz) * cellSize
	h.Center = Vec3{
		math.Mod(h.Center.X+h.Velocity.X*float64(step)+10*gx, gx),
		math.Mod(h.Center.Y+h.Velocity.Y*float64(step)+10*gy, gy),
		math.Mod(h.Center.Z+h.Velocity.Z*float64(step)+10*gz, gz),
	}
	return &h
}

func (s *sim) localAtoms() int64 {
	n := int64(0)
	for _, ci := range s.interior {
		n += int64(len(s.cells[ci].pos))
	}
	return n
}

func (s *sim) kinetic() float64 {
	ke := 0.0
	for _, ci := range s.interior {
		for _, v := range s.cells[ci].vel {
			ke += 0.5 * mass * v.norm2()
		}
	}
	return ke
}

func (s *sim) kick(dt float64) {
	for _, ci := range s.interior {
		c := &s.cells[ci]
		for i := range c.vel {
			c.vel[i] = c.vel[i].add(c.frc[i].scale(dt / mass))
		}
	}
}

func (s *sim) drift(dt float64) {
	for _, ci := range s.interior {
		c := &s.cells[ci]
		for i := range c.pos {
			c.pos[i] = c.pos[i].add(c.vel[i].scale(dt))
		}
	}
}

// computeForces runs the force kernel over all interior cells, as a Pure
// Task when configured (the paper's eamForce extraction) or a plain loop.
func (s *sim) computeForces(hs *Hotspot) {
	if s.task != nil {
		s.task.Execute(hs)
	} else {
		for _, ci := range s.interior {
			s.forceCell(ci, hs)
		}
	}
	// Fold the per-cell potentials (task chunks wrote disjoint slots).
	pot := 0.0
	for _, ci := range s.interior {
		pot += s.potPerCell[ci]
	}
	s.potential = pot
}

// forceCell computes forces on every atom of one cell from atoms in the 27
// surrounding cells (including ghosts).  Only this cell's atoms are
// written, so concurrent chunks are race-free.
func (s *sim) forceCell(ci int, hs *Hotspot) {
	nxy := (s.nx + 2) * (s.ny + 2)
	ix := ci % (s.nx + 2)
	iy := (ci / (s.nx + 2)) % (s.ny + 2)
	iz := ci / nxy
	c := &s.cells[ci]
	pot := 0.0
	cut2 := cellSize * cellSize
	for i := range c.pos {
		pi := c.pos[i]
		f := Vec3{}
		work := 1
		if hs.Factor > 1 && hs.contains(pi) {
			work = hs.Factor
		}
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nb := &s.cells[s.cellIndex(ix+dx, iy+dy, iz+dz)]
					for j := range nb.pos {
						d := pi.sub(nb.pos[j])
						r2 := d.norm2()
						if r2 <= 1e-12 || r2 > cut2 {
							continue
						}
						// Truncated LJ 6-12 (force magnitude / r).
						s2 := sigma * sigma / r2
						s6 := s2 * s2 * s2
						fmag := 24 * epsilonLJ * s6 * (2*s6 - 1) / r2
						// Synthetic extra work (paper's knob for making the
						// force phase dominate; burned deterministically).
						for w := 0; w < s.p.ExtraWork*work; w++ {
							fmag += 1e-30 * float64(w%3)
						}
						f = f.add(d.scale(fmag))
						pot += 0.5 * 4 * epsilonLJ * s6 * (s6 - 1)
					}
				}
			}
		}
		// Harmonic tether to the lattice site keeps the crystal bound (no
		// atom migration between cells; see package comment).
		dsite := c.site[i].sub(pi)
		f = f.add(dsite.scale(springK))
		pot += 0.5 * springK * dsite.norm2()
		c.frc[i] = f
	}
	s.potPerCell[ci] = pot
}

// ---- Halo exchange ----

// neighborRank returns the rank at grid offset (dx,dy,dz) with periodic
// wraparound.
func (s *sim) neighborRank(dx, dy, dz int) int {
	px, py, pz := s.p.Grid[0], s.p.Grid[1], s.p.Grid[2]
	x := (s.coords[0] + dx + px) % px
	y := (s.coords[1] + dy + py) % py
	z := (s.coords[2] + dz + pz) % pz
	return (z*py+y)*px + x
}

// haloExchange refreshes ghost cells with neighbour boundary atoms using the
// three-phase face exchange (x, then y, then z), which transitively fills
// edge and corner ghosts.
func (s *sim) haloExchange() {
	// Phase X: send planes ix=1 and ix=nx (interior only), recv into ix=0 / nx+1.
	s.exchangeAxis(0)
	s.exchangeAxis(1)
	s.exchangeAxis(2)
}

// plane returns the cell indices of the plane at the given coordinate along
// axis, spanning the full extended range of the other two axes for phases
// that forward ghosts.
func (s *sim) plane(axis, at int) []int {
	var out []int
	switch axis {
	case 0:
		for iz := 0; iz <= s.nz+1; iz++ {
			for iy := 0; iy <= s.ny+1; iy++ {
				out = append(out, s.cellIndex(at, iy, iz))
			}
		}
	case 1:
		for iz := 0; iz <= s.nz+1; iz++ {
			for ix := 0; ix <= s.nx+1; ix++ {
				out = append(out, s.cellIndex(ix, at, iz))
			}
		}
	default:
		for iy := 0; iy <= s.ny+1; iy++ {
			for ix := 0; ix <= s.nx+1; ix++ {
				out = append(out, s.cellIndex(ix, iy, at))
			}
		}
	}
	return out
}

// exchangeAxis swaps both faces along one axis with the +/- neighbours.
// Tags: 100+axis*4 .. so each direction has a distinct stream.
func (s *sim) exchangeAxis(axis int) {
	hiAt := []int{s.nx, s.ny, s.nz}[axis]
	var loDir, hiDir [3]int
	loDir[axis] = -1
	hiDir[axis] = 1
	loRank := s.neighborRank(loDir[0], loDir[1], loDir[2])
	hiRank := s.neighborRank(hiDir[0], hiDir[1], hiDir[2])
	baseTag := 100 + axis*4

	sendLo := s.packPlane(s.plane(axis, 1))
	sendHi := s.packPlane(s.plane(axis, hiAt))

	// Ghosts received across the global periodic boundary must be shifted by
	// the domain extent so distances are computed in our local frame.
	extent := [3]float64{
		float64(s.p.Grid[0]*s.nx) * cellSize,
		float64(s.p.Grid[1]*s.ny) * cellSize,
		float64(s.p.Grid[2]*s.nz) * cellSize,
	}[axis]
	var loShift, hiShift Vec3
	if s.coords[axis] == 0 {
		loShift = axisVec(axis, -extent) // low neighbour wraps from the high end
	}
	if s.coords[axis] == s.p.Grid[axis]-1 {
		hiShift = axisVec(axis, +extent)
	}

	if loRank == s.b.Rank() && hiRank == s.b.Rank() {
		// Single rank along this axis: periodic self-wrap, no messages.
		s.unpackPlane(s.plane(axis, hiAt+1), sendLo, axisVec(axis, +extent))
		s.unpackPlane(s.plane(axis, 0), sendHi, axisVec(axis, -extent))
		return
	}
	// Exchange sizes first (the payload sizes vary with atom counts), then
	// payloads.  Each direction is one Sendrecv shift: everybody sends
	// toward the low neighbour while receiving from the high one, then the
	// reverse — uniform cyclic shifts cannot deadlock.
	recvLoLen, recvHiLen := s.exchangeSizes(len(sendLo), len(sendHi), loRank, hiRank, baseTag)
	recvLo := make([]byte, recvLoLen)
	recvHi := make([]byte, recvHiLen)
	s.b.Sendrecv(sendLo, loRank, baseTag+3, recvHi, hiRank, baseTag+3) // our low face is their high ghost
	s.b.Sendrecv(sendHi, hiRank, baseTag+2, recvLo, loRank, baseTag+2)
	s.unpackPlane(s.plane(axis, 0), recvLo, loShift)
	s.unpackPlane(s.plane(axis, hiAt+1), recvHi, hiShift)
}

// axisVec returns a vector with v in the given axis component.
func axisVec(axis int, v float64) Vec3 {
	switch axis {
	case 0:
		return Vec3{X: v}
	case 1:
		return Vec3{Y: v}
	default:
		return Vec3{Z: v}
	}
}

func (s *sim) exchangeSizes(loLen, hiLen, loRank, hiRank, baseTag int) (int, int) {
	var lo8, hi8 [8]byte
	binary.LittleEndian.PutUint64(lo8[:], uint64(loLen))
	binary.LittleEndian.PutUint64(hi8[:], uint64(hiLen))
	inLo := make([]byte, 8)
	inHi := make([]byte, 8)
	// Two shift Sendrecvs (see exchangeAxis): low-bound sends pair with
	// high-bound receives on the same tag, and vice versa.
	s.b.Sendrecv(lo8[:], loRank, baseTag+1, inHi, hiRank, baseTag+1)
	s.b.Sendrecv(hi8[:], hiRank, baseTag, inLo, loRank, baseTag)
	return int(binary.LittleEndian.Uint64(inLo)), int(binary.LittleEndian.Uint64(inHi))
}

// packPlane serializes the plane's cells: per cell a count, then positions.
func (s *sim) packPlane(cells []int) []byte {
	n := 0
	for _, ci := range cells {
		n += 8 + 24*len(s.cells[ci].pos)
	}
	buf := make([]byte, n)
	off := 0
	for _, ci := range cells {
		c := &s.cells[ci]
		binary.LittleEndian.PutUint64(buf[off:], uint64(len(c.pos)))
		off += 8
		for _, p := range c.pos {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(p.X))
			binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(p.Y))
			binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(p.Z))
			off += 24
		}
	}
	return buf
}

// unpackPlane fills ghost cells from a packed plane, applying the periodic
// shift to every atom.
func (s *sim) unpackPlane(cells []int, buf []byte, shift Vec3) {
	off := 0
	for _, ci := range cells {
		c := &s.cells[ci]
		cnt := int(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		c.pos = c.pos[:0]
		for a := 0; a < cnt; a++ {
			c.pos = append(c.pos, Vec3{
				math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])) + shift.X,
				math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])) + shift.Y,
				math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])) + shift.Z,
			})
			off += 24
		}
	}
}
