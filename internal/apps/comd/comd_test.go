package comd

import (
	"math"
	"runtime"
	"testing"

	"repro/comm"
	"repro/mpibase"
	"repro/pure"
)

func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

func baseParams(grid [3]int) Params {
	return Params{
		Grid:         grid,
		CellsPerRank: [3]int{3, 3, 3},
		AtomsPerCell: 3,
		Steps:        8,
		PrintRate:    4,
	}
}

// runBoth executes the same configuration over both backends and returns the
// two results.
func runBoth(t *testing.T, nranks int, p Params) (pureRes, mpiRes Result) {
	t.Helper()
	if err := comm.RunPure(pure.Config{NRanks: nranks}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			pureRes = res
		}
	}); err != nil {
		t.Fatalf("pure: %v", err)
	}
	if err := comm.RunMPI(mpibase.Config{NRanks: nranks}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			mpiRes = res
		}
	}); err != nil {
		t.Fatalf("mpi: %v", err)
	}
	return pureRes, mpiRes
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den < 1e-9
}

func TestBackendsProduceIdenticalPhysics(t *testing.T) {
	p := baseParams([3]int{2, 2, 1})
	pr, mr := runBoth(t, 4, p)
	if pr.Atoms != mr.Atoms || pr.Atoms == 0 {
		t.Fatalf("atom counts differ: pure %d, mpi %d", pr.Atoms, mr.Atoms)
	}
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: pure %v, mpi %v", pr.Checksum, mr.Checksum)
	}
	if !closeEnough(pr.Kinetic, mr.Kinetic) || !closeEnough(pr.Potential, mr.Potential) {
		t.Fatalf("energies differ: pure (%v,%v), mpi (%v,%v)", pr.Kinetic, pr.Potential, mr.Kinetic, mr.Potential)
	}
	want := int64(4 * 27 * 3)
	if pr.Atoms != want {
		t.Fatalf("atoms = %d, want %d", pr.Atoms, want)
	}
}

func TestTaskVersionMatchesSerial(t *testing.T) {
	p := baseParams([3]int{2, 1, 1})
	pSerial, _ := runBoth(t, 2, p)
	p.UseTask = true
	var pTask Result
	if err := comm.RunPure(pure.Config{NRanks: 2}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			pTask = res
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !closeEnough(pSerial.Checksum, pTask.Checksum) {
		t.Fatalf("task checksum %v != serial %v", pTask.Checksum, pSerial.Checksum)
	}
	if pSerial.Atoms != pTask.Atoms {
		t.Fatalf("atoms differ: %d vs %d", pSerial.Atoms, pTask.Atoms)
	}
}

func TestVoidsRemoveAtomsDeterministically(t *testing.T) {
	p := baseParams([3]int{2, 1, 1})
	p.Voids = []Sphere{{Center: Vec3{1.5, 1.5, 1.5}, Radius: 1.2}}
	pr, mr := runBoth(t, 2, p)
	if pr.Atoms != mr.Atoms {
		t.Fatalf("void atom counts differ: %d vs %d", pr.Atoms, mr.Atoms)
	}
	full := int64(2 * 27 * 3)
	if pr.Atoms >= full {
		t.Fatalf("voids removed nothing: %d atoms", pr.Atoms)
	}
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: %v vs %v", pr.Checksum, mr.Checksum)
	}
}

func TestHotspotKeepsPhysicsIdentical(t *testing.T) {
	// The hotspot inflates work but must not change trajectories (the extra
	// flops are numerically inert).
	p := baseParams([3]int{2, 1, 1})
	p.Steps = 4
	base, _ := runBoth(t, 2, p)
	p.Hotspot = &Hotspot{
		Sphere:   Sphere{Center: Vec3{1, 1, 1}, Radius: 2},
		Velocity: Vec3{0.5, 0, 0},
		Factor:   4,
	}
	p.ExtraWork = 2
	hot, hotMPI := runBoth(t, 2, p)
	if !closeEnough(base.Checksum, hot.Checksum) {
		t.Fatalf("hotspot changed physics: %v vs %v", base.Checksum, hot.Checksum)
	}
	if !closeEnough(hot.Checksum, hotMPI.Checksum) {
		t.Fatalf("hotspot backends differ: %v vs %v", hot.Checksum, hotMPI.Checksum)
	}
}

func TestSingleRankSelfWrap(t *testing.T) {
	p := baseParams([3]int{1, 1, 1})
	pr, mr := runBoth(t, 1, p)
	if pr.Atoms != 81 || mr.Atoms != 81 {
		t.Fatalf("atoms = %d / %d, want 81", pr.Atoms, mr.Atoms)
	}
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: %v vs %v", pr.Checksum, mr.Checksum)
	}
}

func Test3DGridDecomposition(t *testing.T) {
	p := baseParams([3]int{2, 2, 2})
	p.CellsPerRank = [3]int{2, 2, 2}
	p.Steps = 4
	pr, mr := runBoth(t, 8, p)
	if pr.Atoms != int64(8*8*3) || !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("3d: atoms=%d checksums %v vs %v", pr.Atoms, pr.Checksum, mr.Checksum)
	}
}

func TestParamValidation(t *testing.T) {
	if err := comm.RunPure(pure.Config{NRanks: 2}, func(b comm.Backend) {
		if _, err := Run(b, Params{Grid: [3]int{1, 1, 1}, CellsPerRank: [3]int{2, 2, 2}, AtomsPerCell: 1}); err == nil {
			t.Error("grid mismatch accepted")
		}
		if _, err := Run(b, Params{Grid: [3]int{2, 1, 1}, CellsPerRank: [3]int{2, 2, 2}}); err == nil {
			t.Error("zero atoms accepted")
		}
		if _, err := Run(b, Params{Grid: [3]int{2, 1, 1}, CellsPerRank: [3]int{0, 2, 2}, AtomsPerCell: 1}); err == nil {
			t.Error("zero cells accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyIsFinite(t *testing.T) {
	p := baseParams([3]int{2, 1, 1})
	pr, _ := runBoth(t, 2, p)
	if math.IsNaN(pr.Kinetic) || math.IsInf(pr.Kinetic, 0) ||
		math.IsNaN(pr.Potential) || math.IsInf(pr.Potential, 0) {
		t.Fatalf("non-finite energies: %v %v", pr.Kinetic, pr.Potential)
	}
	if pr.Kinetic <= 0 {
		t.Fatalf("kinetic energy %v should be positive", pr.Kinetic)
	}
}

func TestEnergyApproximatelyConserved(t *testing.T) {
	// Velocity Verlet on a conservative potential: total energy drift over a
	// short run must be small relative to the total energy scale.
	p := baseParams([3]int{2, 1, 1})
	p.Steps = 2
	short, _ := runBoth(t, 2, p)
	p.Steps = 30
	long, _ := runBoth(t, 2, p)
	e0 := short.Kinetic + short.Potential
	e1 := long.Kinetic + long.Potential
	drift := math.Abs(e1-e0) / math.Max(math.Abs(e0), 1e-12)
	t.Logf("E(2 steps)=%v E(30 steps)=%v relative drift=%.3g", e0, e1, drift)
	if drift > 0.05 {
		t.Errorf("energy drift %.3g exceeds 5%%: integrator or forces broken", drift)
	}
}
