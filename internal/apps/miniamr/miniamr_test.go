package miniamr

import (
	"math"
	"runtime"
	"testing"

	"repro/comm"
	"repro/mpibase"
	"repro/pure"
)

func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

func baseParams(grid [3]int) Params {
	return Params{
		Grid:         grid,
		BaseCells:    4,
		MaxLevel:     2,
		Steps:        12,
		RefineRate:   4,
		ObjectRadius: 0.2,
		ObjectSpeed:  0.05,
	}
}

func runBoth(t *testing.T, nranks int, p Params) (pureRes, mpiRes Result) {
	t.Helper()
	if err := comm.RunPure(pure.Config{NRanks: nranks}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			pureRes = res
		}
	}); err != nil {
		t.Fatalf("pure: %v", err)
	}
	if err := comm.RunMPI(mpibase.Config{NRanks: nranks}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			mpiRes = res
		}
	}); err != nil {
		t.Fatalf("mpi: %v", err)
	}
	return pureRes, mpiRes
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den < 1e-9
}

func TestBackendsAgree(t *testing.T) {
	pr, mr := runBoth(t, 4, baseParams([3]int{2, 2, 1}))
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: %v vs %v", pr.Checksum, mr.Checksum)
	}
	if pr.TotalCells != mr.TotalCells || pr.Refines != mr.Refines {
		t.Fatalf("mesh state differs: %+v vs %+v", pr, mr)
	}
}

func TestRefinementActuallyHappens(t *testing.T) {
	pr, _ := runBoth(t, 4, baseParams([3]int{2, 2, 1}))
	if pr.Refines == 0 {
		t.Fatal("no refinement events; the object never triggered level changes")
	}
	// Refined mesh must exceed the uniform level-0 cell count.
	level0 := int64(4 * 4 * 4 * 4)
	if pr.TotalCells <= level0 {
		t.Logf("total cells %d (level0 %d): object may have moved off; acceptable", pr.TotalCells, level0)
	}
}

func TestTaskVariantMatches(t *testing.T) {
	p := baseParams([3]int{2, 1, 1})
	serial, _ := runBoth(t, 2, p)
	p.UseTask = true
	var task Result
	if err := comm.RunPure(pure.Config{NRanks: 2}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			task = res
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !closeEnough(serial.Checksum, task.Checksum) {
		t.Fatalf("task checksum %v != serial %v", task.Checksum, serial.Checksum)
	}
}

func TestSingleRank(t *testing.T) {
	p := baseParams([3]int{1, 1, 1})
	pr, mr := runBoth(t, 1, p)
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: %v vs %v", pr.Checksum, mr.Checksum)
	}
}

func TestLargeFacesCrossRendezvousThreshold(t *testing.T) {
	// base 8 level 2 -> 32x32 faces = 8200 B > the 8 KiB eager bound, so this
	// exercises mixed eager/rendezvous traffic in one run.
	p := baseParams([3]int{2, 1, 1})
	p.BaseCells = 8
	p.MaxLevel = 2
	p.Steps = 8
	p.ObjectRadius = 0.6 // keep blocks refined
	pr, mr := runBoth(t, 2, p)
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: %v vs %v", pr.Checksum, mr.Checksum)
	}
	if pr.Refines == 0 {
		t.Fatal("expected refinement with a large object")
	}
}

func TestValidation(t *testing.T) {
	if err := comm.RunPure(pure.Config{NRanks: 2}, func(b comm.Backend) {
		if _, err := Run(b, Params{Grid: [3]int{1, 1, 1}, BaseCells: 4}); err == nil {
			t.Error("grid mismatch accepted")
		}
		if _, err := Run(b, Params{Grid: [3]int{2, 1, 1}, BaseCells: 1}); err == nil {
			t.Error("tiny base accepted")
		}
		if _, err := Run(b, Params{Grid: [3]int{2, 1, 1}, BaseCells: 4, MaxLevel: 9}); err == nil {
			t.Error("huge level accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumIsFinite(t *testing.T) {
	pr, _ := runBoth(t, 2, baseParams([3]int{2, 1, 1}))
	if math.IsNaN(pr.Checksum) || math.IsInf(pr.Checksum, 0) {
		t.Fatalf("checksum = %v", pr.Checksum)
	}
}
