// Package miniamr is a compact proxy for the miniAMR adaptive mesh
// refinement benchmark used in the paper's evaluation (§5.3).  It keeps
// miniAMR's communication signature — nonblocking point-to-point halo
// exchange with both small and large payloads, an all-reduce every step
// (miniAMR's dt/convergence check), periodic refinement traffic, and use of
// communicators other than world — on a block-structured mesh:
//
//   - Each rank owns one block of a 3D unit-cube decomposition.  A block
//     carries a cubic cell array whose resolution is base << level.
//   - A spherical "object" moves through the domain; every RefineRate steps
//     each block re-targets its refinement level by its distance to the
//     object's surface (blocks crossing the surface refine to MaxLevel,
//     far blocks coarsen), then resamples its data to the new resolution.
//     This changes both compute load and face message sizes over time —
//     the load/traffic dynamics that drive the paper's Figure 5d.
//   - Every step, blocks exchange all six faces with neighbours (sizes
//     first, then payloads, since neighbouring blocks may sit at different
//     levels; incoming faces are nearest-sampled onto the local
//     resolution), then apply a 7-point stencil update.
//   - Every RefineRate steps the ranks also compute per-X-slab cell counts
//     on a Split sub-communicator (miniAMR's non-world communicator use).
package miniamr

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/comm"
)

// Params configures a run.
type Params struct {
	// Grid is the rank decomposition (px, py, pz); product must equal size.
	Grid [3]int
	// BaseCells is the block resolution at level 0 (cells per dimension).
	BaseCells int
	// MaxLevel is the deepest refinement level (resolution BaseCells<<level).
	MaxLevel int
	// Steps is the number of timesteps.
	Steps int
	// RefineRate re-evaluates refinement every this many steps (default 10).
	RefineRate int
	// Object is the refining sphere; it moves by Velocity per step with
	// periodic wraparound in the unit cube.
	ObjectRadius float64
	ObjectSpeed  float64
	// UseTask runs the stencil as a Pure Task chunked over z-planes.
	UseTask bool
}

// Result carries invariants for cross-backend verification.
type Result struct {
	Checksum   float64 // global sum of all cell values at the end
	TotalCells int64   // global cell count at the end (varies with refinement)
	Refines    int64   // global count of level changes
	Steps      int
}

type block struct {
	level int
	n     int       // current resolution (cells per dim)
	cells []float64 // (n+2)^3 with ghost layer
}

func (bl *block) idx(x, y, z int) int { return (z*(bl.n+2)+y)*(bl.n+2) + x }

type sim struct {
	b       comm.Backend
	p       Params
	coords  [3]int
	blk     block
	refines int64
	xcomm   comm.Backend // per-X-slab communicator (Split)
}

// Run executes the miniAMR proxy over the backend.
func Run(b comm.Backend, p Params) (Result, error) {
	if p.Grid[0]*p.Grid[1]*p.Grid[2] != b.Size() {
		return Result{}, fmt.Errorf("miniamr: grid %v does not match %d ranks", p.Grid, b.Size())
	}
	if p.BaseCells < 2 || p.MaxLevel < 0 || p.MaxLevel > 4 {
		return Result{}, fmt.Errorf("miniamr: bad resolution params %+v", p)
	}
	if p.RefineRate <= 0 {
		p.RefineRate = 10
	}
	s := &sim{b: b, p: p}
	r := b.Rank()
	s.coords = [3]int{r % p.Grid[0], (r / p.Grid[0]) % p.Grid[1], r / (p.Grid[0] * p.Grid[1])}
	s.blk = newBlock(p.BaseCells, 0)
	s.seed()
	// miniAMR uses communicators beyond world; build per-X-slab comms.
	s.xcomm = b.Split(s.coords[0], r)
	return s.run()
}

func newBlock(base, level int) block {
	n := base << level
	return block{level: level, n: n, cells: make([]float64, (n+2)*(n+2)*(n+2))}
}

// seed initializes cell values deterministically from global coordinates.
func (s *sim) seed() {
	bl := &s.blk
	for z := 1; z <= bl.n; z++ {
		for y := 1; y <= bl.n; y++ {
			for x := 1; x <= bl.n; x++ {
				gx, gy, gz := s.cellCenter(x, y, z)
				bl.cells[bl.idx(x, y, z)] = math.Sin(7*gx) + math.Cos(5*gy) + math.Sin(3*gz)
			}
		}
	}
}

// cellCenter returns the global unit-cube coordinates of a cell center.
func (s *sim) cellCenter(x, y, z int) (float64, float64, float64) {
	bl := &s.blk
	bx := 1.0 / float64(s.p.Grid[0])
	by := 1.0 / float64(s.p.Grid[1])
	bz := 1.0 / float64(s.p.Grid[2])
	return float64(s.coords[0])*bx + (float64(x)-0.5)*bx/float64(bl.n),
		float64(s.coords[1])*by + (float64(y)-0.5)*by/float64(bl.n),
		float64(s.coords[2])*bz + (float64(z)-0.5)*bz/float64(bl.n)
}

func (s *sim) run() (Result, error) {
	for step := 0; step < s.p.Steps; step++ {
		if step%s.p.RefineRate == 0 {
			s.refine(step)
			s.slabStats()
		}
		s.exchangeFaces()
		s.stencil()
		// miniAMR's per-step global reduction (dt / residual check).
		_ = comm.AllreduceFloat64(s.b, s.blockSum(), comm.Sum)
	}
	sum := comm.AllreduceFloat64(s.b, s.blockSum(), comm.Sum)
	cells := comm.AllreduceInt64(s.b, int64(s.blk.n)*int64(s.blk.n)*int64(s.blk.n), comm.Sum)
	refs := comm.AllreduceInt64(s.b, s.refines, comm.Sum)
	return Result{Checksum: sum, TotalCells: cells, Refines: refs, Steps: s.p.Steps}, nil
}

func (s *sim) blockSum() float64 {
	bl := &s.blk
	sum := 0.0
	for z := 1; z <= bl.n; z++ {
		for y := 1; y <= bl.n; y++ {
			for x := 1; x <= bl.n; x++ {
				sum += bl.cells[bl.idx(x, y, z)]
			}
		}
	}
	return sum
}

// objectCenter returns the refining sphere's center at a step (periodic path).
func (s *sim) objectCenter(step int) (float64, float64, float64) {
	t := float64(step) * s.p.ObjectSpeed
	frac := func(v float64) float64 { return v - math.Floor(v) }
	return frac(0.3 + t), frac(0.4 + 0.7*t), frac(0.5 + 0.4*t)
}

// refine re-targets this block's level by distance to the object surface and
// resamples the data if the level changes.
func (s *sim) refine(step int) {
	cx, cy, cz := s.objectCenter(step)
	// Block bounds in the unit cube.
	lo := [3]float64{
		float64(s.coords[0]) / float64(s.p.Grid[0]),
		float64(s.coords[1]) / float64(s.p.Grid[1]),
		float64(s.coords[2]) / float64(s.p.Grid[2]),
	}
	hi := [3]float64{
		float64(s.coords[0]+1) / float64(s.p.Grid[0]),
		float64(s.coords[1]+1) / float64(s.p.Grid[1]),
		float64(s.coords[2]+1) / float64(s.p.Grid[2]),
	}
	// Distance from the sphere center to the block (0 if inside).
	d2 := 0.0
	c := [3]float64{cx, cy, cz}
	for i := 0; i < 3; i++ {
		if c[i] < lo[i] {
			d2 += (lo[i] - c[i]) * (lo[i] - c[i])
		} else if c[i] > hi[i] {
			d2 += (c[i] - hi[i]) * (c[i] - hi[i])
		}
	}
	dist := math.Sqrt(d2)
	target := 0
	switch {
	case dist <= s.p.ObjectRadius*0.25:
		target = s.p.MaxLevel
	case dist <= s.p.ObjectRadius:
		target = s.p.MaxLevel - 1
	case dist <= 2*s.p.ObjectRadius:
		target = s.p.MaxLevel / 2
	}
	if target < 0 {
		target = 0
	}
	if target == s.blk.level {
		return
	}
	s.resample(target)
	s.refines++
}

// resample rebuilds the block at a new level, nearest-sampling old data.
func (s *sim) resample(level int) {
	old := s.blk
	nb := newBlock(s.p.BaseCells, level)
	for z := 1; z <= nb.n; z++ {
		for y := 1; y <= nb.n; y++ {
			for x := 1; x <= nb.n; x++ {
				ox := (x-1)*old.n/nb.n + 1
				oy := (y-1)*old.n/nb.n + 1
				oz := (z-1)*old.n/nb.n + 1
				nb.cells[nb.idx(x, y, z)] = old.cells[old.idx(ox, oy, oz)]
			}
		}
	}
	s.blk = nb
}

// neighborRank returns the rank at grid offset with periodic wraparound.
func (s *sim) neighborRank(dx, dy, dz int) int {
	px, py, pz := s.p.Grid[0], s.p.Grid[1], s.p.Grid[2]
	x := (s.coords[0] + dx + px) % px
	y := (s.coords[1] + dy + py) % py
	z := (s.coords[2] + dz + pz) % pz
	return (z*py+y)*px + x
}

// face extracts the interior face plane along axis at the low or high end,
// as an m x m payload (m = block resolution).
func (s *sim) face(axis int, high bool) []byte {
	bl := &s.blk
	m := bl.n
	buf := make([]byte, 8+8*m*m)
	binary.LittleEndian.PutUint64(buf, uint64(m))
	at := 1
	if high {
		at = m
	}
	k := 8
	for b2 := 1; b2 <= m; b2++ {
		for a := 1; a <= m; a++ {
			var v float64
			switch axis {
			case 0:
				v = bl.cells[bl.idx(at, a, b2)]
			case 1:
				v = bl.cells[bl.idx(a, at, b2)]
			default:
				v = bl.cells[bl.idx(a, b2, at)]
			}
			binary.LittleEndian.PutUint64(buf[k:], math.Float64bits(v))
			k += 8
		}
	}
	return buf
}

// applyFace writes a received face into the ghost layer, nearest-sampling if
// the neighbour runs at a different resolution.
func (s *sim) applyFace(axis int, high bool, buf []byte) {
	bl := &s.blk
	m := int(binary.LittleEndian.Uint64(buf))
	at := 0
	if high {
		at = bl.n + 1
	}
	get := func(a, b2 int) float64 {
		// map local (a,b2) in [1..n] onto sender's [1..m]
		sa := (a-1)*m/bl.n + 1
		sb := (b2-1)*m/bl.n + 1
		off := 8 + 8*((sb-1)*m+(sa-1))
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
	}
	for b2 := 1; b2 <= bl.n; b2++ {
		for a := 1; a <= bl.n; a++ {
			v := get(a, b2)
			switch axis {
			case 0:
				bl.cells[bl.idx(at, a, b2)] = v
			case 1:
				bl.cells[bl.idx(a, at, b2)] = v
			default:
				bl.cells[bl.idx(a, b2, at)] = v
			}
		}
	}
}

// exchangeFaces swaps all six faces with neighbours: first fixed-size size
// headers, then the variable payloads, all with nonblocking receives
// (miniAMR is dominated by nonblocking p2p).
func (s *sim) exchangeFaces() {
	me := s.b.Rank()
	for axis := 0; axis < 3; axis++ {
		var loD, hiD [3]int
		loD[axis], hiD[axis] = -1, 1
		loRank := s.neighborRank(loD[0], loD[1], loD[2])
		hiRank := s.neighborRank(hiD[0], hiD[1], hiD[2])
		sendLo := s.face(axis, false)
		sendHi := s.face(axis, true)
		baseTag := 200 + axis*4
		if loRank == me && hiRank == me {
			// Periodic self-wrap.
			s.applyFace(axis, true, sendLo)
			s.applyFace(axis, false, sendHi)
			continue
		}
		// Size exchange.
		var lo8, hi8 [8]byte
		binary.LittleEndian.PutUint64(lo8[:], uint64(len(sendLo)))
		binary.LittleEndian.PutUint64(hi8[:], uint64(len(sendHi)))
		inLo8 := make([]byte, 8)
		inHi8 := make([]byte, 8)
		sreqs := []comm.Request{
			s.b.Irecv(inLo8, loRank, baseTag),
			s.b.Irecv(inHi8, hiRank, baseTag+1),
		}
		s.b.Send(lo8[:], loRank, baseTag+1)
		s.b.Send(hi8[:], hiRank, baseTag)
		s.b.Waitall(sreqs)
		recvLo := make([]byte, binary.LittleEndian.Uint64(inLo8))
		recvHi := make([]byte, binary.LittleEndian.Uint64(inHi8))
		reqs := []comm.Request{
			s.b.Irecv(recvLo, loRank, baseTag+2),
			s.b.Irecv(recvHi, hiRank, baseTag+3),
		}
		s.b.Send(sendLo, loRank, baseTag+3)
		s.b.Send(sendHi, hiRank, baseTag+2)
		s.b.Waitall(reqs)
		s.applyFace(axis, false, recvLo)
		s.applyFace(axis, true, recvHi)
	}
}

// stencil applies the 7-point average update to the interior.
func (s *sim) stencil() {
	bl := &s.blk
	n := bl.n
	next := make([]float64, len(bl.cells))
	update := func(zlo, zhi int) {
		for z := zlo; z <= zhi; z++ {
			for y := 1; y <= n; y++ {
				for x := 1; x <= n; x++ {
					i := bl.idx(x, y, z)
					next[i] = (bl.cells[i] +
						bl.cells[bl.idx(x-1, y, z)] + bl.cells[bl.idx(x+1, y, z)] +
						bl.cells[bl.idx(x, y-1, z)] + bl.cells[bl.idx(x, y+1, z)] +
						bl.cells[bl.idx(x, y, z-1)] + bl.cells[bl.idx(x, y, z+1)]) / 7.0
				}
			}
		}
	}
	if s.p.UseTask {
		// Chunk over z-planes; the task is re-created per resolution change,
		// which is rare (refine events), keeping the common path allocation
		// free is not critical here.
		task := s.b.NewTask(n, func(start, end int64, _ any) {
			for c := start; c < end; c++ {
				update(int(c)+1, int(c)+1)
			}
		})
		task.Execute(nil)
	} else {
		update(1, n)
	}
	s.blk.cells = next
}

// slabStats computes per-X-slab total cells on the Split communicator
// (miniAMR's use of non-world communicators for load statistics).
func (s *sim) slabStats() {
	n3 := int64(s.blk.n) * int64(s.blk.n) * int64(s.blk.n)
	_ = comm.AllreduceInt64(s.xcomm, n3, comm.Sum)
}
