package dt

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"repro/comm"
	"repro/mpibase"
	"repro/pure"
)

func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

func runBoth(t *testing.T, p Params) (pureRes, mpiRes Result) {
	t.Helper()
	nranks := p.Width * p.Layers
	if err := comm.RunPure(pure.Config{NRanks: nranks}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			pureRes = res
		}
	}); err != nil {
		t.Fatalf("pure: %v", err)
	}
	if err := comm.RunMPI(mpibase.Config{NRanks: nranks}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			mpiRes = res
		}
	}); err != nil {
		t.Fatalf("mpi: %v", err)
	}
	return pureRes, mpiRes
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den < 1e-9
}

func TestShuffleGraphIsConsistent(t *testing.T) {
	// Every (parent -> child) edge must appear from both sides.
	f := func(wU, jU uint8) bool {
		w := (int(wU%32) + 1) * 2 // even widths 2..64
		j := int(jU) % w
		c1, c2 := ChildrenOf(j, w)
		for _, c := range []int{c1, c2} {
			p1, p2 := ParentsOf(c, w)
			if p1 != j && p2 != j {
				return false
			}
		}
		p1, p2 := ParentsOf(j, w)
		for _, p := range []int{p1, p2} {
			d1, d2 := ChildrenOf(p, w)
			if d1 != j && d2 != j {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEveryNodeHasTwoDistinctParentsAndChildren(t *testing.T) {
	for _, w := range []int{2, 4, 16, 24, 64, 128} {
		for j := 0; j < w; j++ {
			p1, p2 := ParentsOf(j, w)
			c1, c2 := ChildrenOf(j, w)
			if p1 == p2 {
				t.Fatalf("w=%d j=%d: equal parents %d", w, j, p1)
			}
			if c1 == c2 {
				t.Fatalf("w=%d j=%d: equal children %d", w, j, c1)
			}
		}
	}
}

func TestWorkCostDeterministicAndHeavyTailed(t *testing.T) {
	if WorkCost(3, 7, 16) != WorkCost(3, 7, 16) {
		t.Fatal("work cost not deterministic")
	}
	maxC, minC := 0, 1<<30
	for n := 0; n < 64; n++ {
		for wv := 0; wv < 8; wv++ {
			c := WorkCost(n, wv, 16)
			if c > maxC {
				maxC = c
			}
			if c < minC {
				minC = c
			}
		}
	}
	if maxC < 4*max(minC, 1) {
		t.Fatalf("no heavy tail: min %d max %d", minC, maxC)
	}
}

func TestClassShapesMatchPaperRankCounts(t *testing.T) {
	for _, c := range []struct {
		letter byte
		ranks  int
	}{{'A', 80}, {'B', 192}, {'C', 448}, {'D', 1024}} {
		p, err := Class(c.letter)
		if err != nil {
			t.Fatal(err)
		}
		if p.Width*p.Layers != c.ranks {
			t.Errorf("class %c: %d ranks, want %d", c.letter, p.Width*p.Layers, c.ranks)
		}
	}
	if _, err := Class('Z'); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestBackendsAgreeOnChecksum(t *testing.T) {
	p := Params{Width: 4, Layers: 3, FeatureLen: 64, Waves: 3, WorkScale: 4}
	pr, mr := runBoth(t, p)
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: pure %v, mpi %v", pr.Checksum, mr.Checksum)
	}
	if pr.Checksum == 0 {
		t.Fatal("zero checksum is suspicious")
	}
}

func TestTaskVariantMatchesChecksum(t *testing.T) {
	p := Params{Width: 4, Layers: 3, FeatureLen: 64, Waves: 3, WorkScale: 4}
	serial, _ := runBoth(t, p)
	p.UseTask = true
	var task Result
	if err := comm.RunPure(pure.Config{NRanks: 12}, func(b comm.Backend) {
		res, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			task = res
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !closeEnough(serial.Checksum, task.Checksum) {
		t.Fatalf("task checksum %v != serial %v", task.Checksum, serial.Checksum)
	}
}

func TestDeeperGraph(t *testing.T) {
	p := Params{Width: 6, Layers: 4, FeatureLen: 32, Waves: 2, WorkScale: 2}
	pr, mr := runBoth(t, p)
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: %v vs %v", pr.Checksum, mr.Checksum)
	}
}

func TestValidation(t *testing.T) {
	if err := comm.RunPure(pure.Config{NRanks: 4}, func(b comm.Backend) {
		bad := []Params{
			{Width: 3, Layers: 2, FeatureLen: 8, Waves: 1}, // odd width
			{Width: 2, Layers: 1, FeatureLen: 8, Waves: 1}, // too few layers
			{Width: 2, Layers: 3, FeatureLen: 8, Waves: 1}, // wrong rank count
			{Width: 2, Layers: 2, FeatureLen: 0, Waves: 1}, // no features
			{Width: 2, Layers: 2, FeatureLen: 8, Waves: 0}, // no waves
		}
		for i, p := range bad {
			if _, err := Run(b, p); err == nil {
				t.Errorf("bad param set %d accepted", i)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHelpersWithDTClassSShape(t *testing.T) {
	// Sparse placement with helper threads, as in Fig. 4's class A bars.
	p := Params{Width: 4, Layers: 3, FeatureLen: 64, Waves: 2, WorkScale: 4, UseTask: true}
	var res Result
	err := comm.RunPure(pure.Config{
		NRanks:         12,
		Spec:           pure.Spec{Nodes: 1, SocketsPerNode: 1, CoresPerSocket: 16, ThreadsPerCore: 1},
		RanksPerNode:   12,
		HelpersPerNode: 2,
	}, func(b comm.Backend) {
		r, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := runBoth(t, Params{Width: 4, Layers: 3, FeatureLen: 64, Waves: 2, WorkScale: 4})
	if !closeEnough(res.Checksum, serial.Checksum) {
		t.Fatalf("helpers changed the checksum: %v vs %v", res.Checksum, serial.Checksum)
	}
}
