// Package dt is a Go analogue of the NAS DT ("data traffic") benchmark in
// its SH (shuffle) graph topology, the configuration the paper evaluates
// (§5.1, Figure 4): a layered communication graph with "particularly
// unwieldy load imbalance".
//
// The graph has Layers layers of Width nodes; one rank per node.  Node j of
// layer l+1 receives feature arrays from its two shuffle parents ((2j) mod W
// and (2j+1) mod W) of layer l, combines them, applies a transform whose
// cost varies pseudo-randomly per (node, wave) — the load imbalance — and
// forwards the result to its two children.  Layer 0 nodes are sources
// (generate features), the last layer are sinks (accumulate a verification
// checksum).  Several waves stream through the pipeline per run, so
// downstream ranks repeatedly block on upstream stragglers; with Pure Tasks
// enabled the transform runs as a stealable chunked task, which is exactly
// where the paper's 1.7-2.5x DT speedups come from.
//
// Classes follow the paper's rank counts:
//
//	A: 16x5  = 80 ranks     B: 24x8 = 192 ranks
//	C: 64x7  = 448 ranks    D: 128x8 = 1024 ranks
package dt

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/comm"
)

// Params configures a DT run.
type Params struct {
	// Width and Layers define the shuffle graph; Width*Layers must equal the
	// communicator size and Width must be even.
	Width, Layers int
	// FeatureLen is the feature-array length (elements).
	FeatureLen int
	// Waves is how many feature waves stream through the graph.
	Waves int
	// WorkScale multiplies the per-node transform cost (load imbalance knob).
	WorkScale int
	// UseTask runs the transform as a Pure Task.
	UseTask bool
	// TaskChunks is the transform task's chunk count (0 = 16).
	TaskChunks int
}

// Class returns the paper's graph shape for a class letter (A, B, C, D) plus
// a feature length scaled like DT's growth.
func Class(letter byte) (Params, error) {
	switch letter {
	case 'S':
		return Params{Width: 4, Layers: 3, FeatureLen: 256, Waves: 4, WorkScale: 8}, nil
	case 'A':
		return Params{Width: 16, Layers: 5, FeatureLen: 1024, Waves: 6, WorkScale: 16}, nil
	case 'B':
		return Params{Width: 24, Layers: 8, FeatureLen: 2048, Waves: 6, WorkScale: 16}, nil
	case 'C':
		return Params{Width: 64, Layers: 7, FeatureLen: 4096, Waves: 6, WorkScale: 16}, nil
	case 'D':
		return Params{Width: 128, Layers: 8, FeatureLen: 8192, Waves: 6, WorkScale: 16}, nil
	default:
		return Params{}, fmt.Errorf("dt: unknown class %q", letter)
	}
}

// Result carries the verification state.
type Result struct {
	Checksum float64 // global sink checksum
	Waves    int
}

// ParentsOf returns the two shuffle parents of node j (within a layer of
// width w).
func ParentsOf(j, w int) (int, int) { return (2 * j) % w, (2*j + 1) % w }

// ChildrenOf returns the two shuffle children of node j.
func ChildrenOf(j, w int) (int, int) {
	if j%2 == 0 {
		return j / 2, j/2 + w/2
	}
	return (j - 1) / 2, (j-1)/2 + w/2
}

// WorkCost returns the deterministic pseudo-random transform repetition
// count for (node, wave): a heavy-tailed distribution (most nodes cheap, a
// few very slow), the shape that makes DT's imbalance "unwieldy".
func WorkCost(node, wave, scale int) int {
	h := uint64(node)*0x9E3779B97F4A7C15 ^ uint64(wave)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	r := h % 16
	cost := 1 + int(r)
	if r >= 14 { // heavy tail: 1/8 of the work items are ~8x slower
		cost *= 8
	}
	return cost * scale / 16
}

// Run executes DT over the backend.
func Run(b comm.Backend, p Params) (Result, error) {
	if p.Width <= 0 || p.Layers < 2 || p.Width%2 != 0 {
		return Result{}, fmt.Errorf("dt: bad graph %dx%d", p.Width, p.Layers)
	}
	if p.Width*p.Layers != b.Size() {
		return Result{}, fmt.Errorf("dt: graph %dx%d needs %d ranks, have %d", p.Width, p.Layers, p.Width*p.Layers, b.Size())
	}
	if p.FeatureLen <= 0 || p.Waves <= 0 {
		return Result{}, fmt.Errorf("dt: bad feature/wave params %+v", p)
	}
	if p.WorkScale <= 0 {
		p.WorkScale = 1
	}
	chunks := p.TaskChunks
	if chunks <= 0 {
		chunks = 16
	}

	rank := b.Rank()
	w := p.Width
	layer := rank / w
	j := rank % w
	node := rank

	feat := make([]float64, p.FeatureLen)
	in1 := make([]float64, p.FeatureLen)
	in2 := make([]float64, p.FeatureLen)

	// The transform: a chunked pass over the feature array repeated by the
	// wave's work cost.  As a Pure Task its chunks are stealable.
	type waveArgs struct{ cost int }
	var task comm.Task
	transformChunk := func(lo, hi int64, cost int) {
		for rep := 0; rep < cost; rep++ {
			for i := lo; i < hi; i++ {
				v := feat[i]
				feat[i] = v + math.Sqrt(math.Abs(v))*1e-6
			}
		}
	}
	if p.UseTask {
		task = b.NewTask(chunks, func(start, end int64, extra any) {
			n := int64(p.FeatureLen)
			lo := start * n / int64(chunks)
			hi := end * n / int64(chunks)
			transformChunk(lo, hi, extra.(*waveArgs).cost)
		})
	}
	transform := func(cost int) {
		if task != nil {
			task.Execute(&waveArgs{cost: cost})
		} else {
			transformChunk(0, int64(p.FeatureLen), cost)
		}
	}

	// Persistent graph edges.  Each shuffle edge is fixed for the whole run,
	// so the channel endpoints and payload buffers bind once here, outside
	// the wave loop.  (Before the Channel API this allocated a fresh payload
	// per send and two per receive every wave and re-resolved the channel on
	// each call; steady-state waves now reuse the same buffers and the
	// backend's cached endpoints — allocation-free on the Pure eager path.)
	var down []comm.Channel
	var sbuf []byte
	if layer < p.Layers-1 {
		c1, c2 := ChildrenOf(j, w)
		down = append(down, comm.SendChannelOf(b, (layer+1)*w+c1, 10))
		if c2 != c1 {
			down = append(down, comm.SendChannelOf(b, (layer+1)*w+c2, 10))
		}
		sbuf = make([]byte, 8*p.FeatureLen)
	}
	var up1, up2 comm.Channel
	var rb1, rb2 []byte
	if layer > 0 {
		p1, p2 := ParentsOf(j, w)
		up1 = comm.RecvChannelOf(b, (layer-1)*w+p1, 10)
		up2 = comm.RecvChannelOf(b, (layer-1)*w+p2, 10)
		rb1 = make([]byte, 8*p.FeatureLen)
		rb2 = make([]byte, 8*p.FeatureLen)
	}
	fanOut := func() {
		for i, v := range feat {
			binary.LittleEndian.PutUint64(sbuf[i*8:], math.Float64bits(v))
		}
		for _, ch := range down {
			ch.Send(sbuf)
		}
	}
	gather := func() {
		r1 := up1.Irecv(rb1)
		r2 := up2.Irecv(rb2)
		b.Waitall([]comm.Request{r1, r2})
		for i := range in1 {
			in1[i] = math.Float64frombits(binary.LittleEndian.Uint64(rb1[i*8:]))
			in2[i] = math.Float64frombits(binary.LittleEndian.Uint64(rb2[i*8:]))
		}
	}

	checksum := 0.0
	for wave := 0; wave < p.Waves; wave++ {
		switch {
		case layer == 0:
			// Source: deterministic features, transform, fan out.
			for i := range feat {
				feat[i] = math.Sin(float64(node*131+wave*17+i)) * 0.5
			}
			transform(WorkCost(node, wave, p.WorkScale))
			fanOut()
		case layer < p.Layers-1:
			// Interior: gather from parents, combine, transform, fan out.
			gather()
			for i := range feat {
				feat[i] = 0.5 * (in1[i] + in2[i])
			}
			transform(WorkCost(node, wave, p.WorkScale))
			fanOut()
		default:
			// Sink: gather and accumulate the verification checksum.
			gather()
			for i := range in1 {
				checksum += in1[i] - in2[i]*0.5
			}
		}
	}
	total := comm.AllreduceFloat64(b, checksum, comm.Sum)
	return Result{Checksum: total, Waves: p.Waves}, nil
}
