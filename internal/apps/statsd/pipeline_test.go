package statsd

import (
	"testing"

	proto "repro/internal/statsd"
	"repro/pure"
)

// runPipeline executes the pipeline under pure.Run and returns rank 0's
// Result (every rank receives the identical Allreduce, so one is enough).
func runPipeline(t *testing.T, pcfg pure.Config, cfg Config) Result {
	t.Helper()
	var res Result
	if cfg.Interner == nil {
		cfg.Interner = proto.NewInterner(4096)
	}
	err := pure.Run(pcfg, func(r *pure.Rank) {
		got, err := Run(r, cfg)
		if err != nil {
			r.Abort(err)
		}
		if r.ID() == 0 {
			res = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkExact(t *testing.T, res Result, wantEvents int64) {
	t.Helper()
	if !res.Exact {
		t.Errorf("zero-sum proof failed: applied %d events (sum %#x) vs committed %d",
			res.Applied, res.Sum, res.Committed)
	}
	if res.Applied != res.Committed {
		t.Errorf("applied %d != committed %d", res.Applied, res.Committed)
	}
	if got := res.Applied + res.Dropped; got != uint64(wantEvents) {
		t.Errorf("applied %d + dropped %d = %d, want every generated event (%d)",
			res.Applied, res.Dropped, got, wantEvents)
	}
	if res.Keys <= 0 {
		t.Error("no series aggregated")
	}
	if res.Sum == 0 {
		t.Error("flush snapshot checksum is zero")
	}
}

func TestPipelineExactBlocking(t *testing.T) {
	const events = 20000
	res := runPipeline(t,
		pure.Config{NRanks: 4},
		Config{Ingesters: 2, Aggregators: 2, Events: events, Rounds: 3})
	checkExact(t, res, events)
	if res.Dropped != 0 {
		t.Errorf("blocking policy dropped %d events", res.Dropped)
	}
	if res.Applied != events {
		t.Errorf("applied %d of %d events", res.Applied, events)
	}
}

func TestPipelineExactDropPolicy(t *testing.T) {
	// Tiny queues, eager flushing and slow drains force TrySendBatch
	// refusals; the totals must stay exact with the drops accounted.
	const events = 20000
	res := runPipeline(t,
		pure.Config{NRanks: 3, PBQSlots: 2},
		Config{Ingesters: 2, Aggregators: 1, Events: events, Rounds: 2,
			Drop: true, BatchEvents: 16, DrainEvents: 512, WorkScale: 64})
	checkExact(t, res, events)
	t.Logf("drop policy: applied %d, dropped %d", res.Applied, res.Dropped)
}

func TestPipelineExactUnderLoss(t *testing.T) {
	// Two modeled nodes (ingesters on node 0, aggregators on node 1 under
	// SMP placement) with 15%% of inter-node transmits dropped on the wire.
	// The link layer retransmits; the pipeline totals must stay exact.
	const events = 8000
	res := runPipeline(t,
		pure.Config{
			NRanks: 4,
			Spec:   pure.Spec{Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
			Net:    pure.NetConfig{Faults: pure.Faults{Seed: 7, DropProb: 0.15}},
		},
		Config{Ingesters: 2, Aggregators: 2, Events: events, Rounds: 2})
	checkExact(t, res, events)
	if res.Applied != events {
		t.Errorf("lossy wire lost events: applied %d of %d", res.Applied, events)
	}
}

func TestPipelineZipfSteal(t *testing.T) {
	// A zipf-hot keyspace concentrates drain work on few sub-shards; with
	// Steal the drain runs as a Pure Task whose chunks parked ranks steal.
	const events = 30000
	cfg := Config{Ingesters: 2, Aggregators: 2, Events: events, Rounds: 2,
		Steal: true, Subshards: 16, WorkScale: 32,
		Gen: proto.GenConfig{ZipfS: 1.2}}
	res := runPipeline(t, pure.Config{NRanks: 4}, cfg)
	checkExact(t, res, events)
	if res.Owner+res.Stolen == 0 {
		t.Error("steal mode executed no drain chunks")
	}
	t.Logf("zipf steal: %d owner chunks, %d stolen", res.Owner, res.Stolen)
}

func TestPipelineSharedInterner(t *testing.T) {
	// All ingesters share one interner (the node-shared configuration):
	// concurrent first-interns under real scheduling, exactness preserved.
	const events = 16000
	it := proto.NewInterner(1024)
	res := runPipeline(t,
		pure.Config{NRanks: 4},
		Config{Ingesters: 3, Aggregators: 1, Events: events,
			Interner: it, Gen: proto.GenConfig{Tagsets: 96}})
	checkExact(t, res, events)
	if it.Len() == 0 {
		t.Error("shared interner interned nothing")
	}
	hits, misses, _ := it.Stats()
	t.Logf("shared interner: %d entries, %d hits, %d misses", it.Len(), hits, misses)
}

func TestPipelineManyRounds(t *testing.T) {
	// More rounds than events per ingester per round stays exact (empty
	// rounds still carry markers and join the rollup).
	res := runPipeline(t,
		pure.Config{NRanks: 2},
		Config{Ingesters: 1, Aggregators: 1, Events: 100, Rounds: 8})
	checkExact(t, res, 100)
}

func TestPipelineConfigErrors(t *testing.T) {
	err := pure.Run(pure.Config{NRanks: 2}, func(r *pure.Rank) {
		if _, err := Run(r, Config{Ingesters: 2, Aggregators: 2, Events: 10}); err == nil {
			t.Error("rank-count mismatch not rejected")
		}
		if _, err := Run(r, Config{Ingesters: 2, Aggregators: 0, Events: 10}); err == nil {
			t.Error("zero aggregators not rejected")
		}
		if _, err := Run(r, Config{Ingesters: 1, Aggregators: 1}); err == nil {
			t.Error("zero events not rejected")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
