package statsd

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	proto "repro/internal/statsd"
	"repro/pure"
)

// The test binary doubles as a pipeline worker: when workerEnv is set,
// TestMain runs one node of a real multi-process statsd deployment instead
// of the tests (the same hermetic trick as internal/livechaos, applied to
// the full application: ingestion ranks on the front nodes, aggregators on
// the back node, live TCP in between).
const workerEnv = "PURE_STATSD_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) != "" {
		workerMain()
		return // workerMain exits
	}
	os.Exit(m.Run())
}

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: bad %s=%q\n", name, s)
			os.Exit(1)
		}
		return v
	}
	return def
}

// workerMain is one node's main: the last node aggregates, every other node
// ingests (two ranks per node), and the world runs the pipeline repeatedly
// with the zero-sum checksum asserted after every run.  Exit codes: 0
// success, 3 a peer node died (prints "NODEDEAD dead=<nodes>"), 1 anything
// else — the purestatsd CLI follows the same convention.
func workerMain() {
	tcfg, err := pure.TransportFromEnv()
	if err != nil || tcfg == nil {
		fmt.Fprintln(os.Stderr, "worker: need launcher environment:", err)
		os.Exit(1)
	}
	if ms := envInt("PURE_HB_MS", 0); ms > 0 {
		tcfg.HeartbeatEvery = time.Duration(ms) * time.Millisecond
	}
	if ms := envInt("PURE_DEAD_MS", 0); ms > 0 {
		tcfg.PeerDeadAfter = time.Duration(ms) * time.Millisecond
	}
	if s := os.Getenv("PURE_DROP"); s != "" {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil {
			os.Exit(1)
		}
		tcfg.Faults.Seed, tcfg.Faults.DropProb = 11, p
		tcfg.RetryBackoff = 2 * time.Millisecond
		tcfg.RetryBudget = 1000
	}
	nodes := len(tcfg.Addrs)
	const perNode = 2
	nranks := nodes * perNode
	iters := envInt("PURE_STATSD_ITERS", 3)
	events := int64(envInt("PURE_STATSD_EVENTS", 4000))
	pcfg := pure.Config{
		NRanks:      nranks,
		Spec:        pure.Spec{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: perNode, ThreadsPerCore: 1},
		Transport:   tcfg,
		HangTimeout: time.Duration(envInt("PURE_HANG_MS", 20000)) * time.Millisecond,
	}
	cfg := Config{
		Ingesters:   nranks - perNode, // every node but the last ingests
		Aggregators: perNode,          // the last node aggregates
		Events:      events,
		Rounds:      2,
		Interner:    proto.NewInterner(4096), // node-shared across this process's ranks
	}
	err = pure.Run(pcfg, func(r *pure.Rank) {
		for i := 0; i < iters; i++ {
			res, err := Run(r, cfg)
			if err != nil {
				r.Abort(err)
				return
			}
			if !res.Exact || res.Applied != uint64(events) {
				panic(fmt.Sprintf("iter %d: inexact flush: applied %d of %d (sum %#x)",
					i, res.Applied, events, res.Sum))
			}
			if r.ID() == 0 && i == 0 {
				fmt.Printf("LOOP applied=%d sum=%#x\n", res.Applied, res.Sum)
			}
		}
		if r.ID() == 0 {
			fmt.Println("OK")
		}
	})
	if err != nil {
		var re *pure.RunError
		if errors.As(err, &re) && re.Cause == pure.CauseNodeDead {
			fmt.Printf("NODEDEAD dead=%v\n", re.DeadNodes)
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// proc is one launched worker process plus its collected stdout.
type proc struct {
	cmd  *exec.Cmd
	mu   sync.Mutex
	out  []string
	loop chan struct{} // closed when a "LOOP" line arrives
	eof  chan struct{} // closed when the stdout scanner drains to EOF
}

func (p *proc) stdout() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.out, "\n")
}

// launchWorld starts one worker process per node and returns the handles.
func launchWorld(t *testing.T, nodes int, extraEnv []string) []*proc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, nodes)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	job := uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())
	procs := make([]*proc, nodes)
	for i := range procs {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			workerEnv+"=1",
			"PURE_NODE="+strconv.Itoa(i),
			"PURE_ADDRS="+strings.Join(addrs, ","),
			"PURE_JOB="+strconv.FormatUint(job, 10),
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		cmd.Stderr = os.Stderr
		op, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		p := &proc{cmd: cmd, loop: make(chan struct{}), eof: make(chan struct{})}
		go func() {
			defer close(p.eof)
			sc := bufio.NewScanner(op)
			closed := false
			for sc.Scan() {
				line := sc.Text()
				p.mu.Lock()
				p.out = append(p.out, line)
				p.mu.Unlock()
				if !closed && strings.HasPrefix(line, "LOOP") {
					closed = true
					close(p.loop)
				}
			}
		}()
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		t.Cleanup(func() { p.cmd.Process.Kill() })
	}
	return procs
}

// waitCode waits for the process with a deadline and returns its exit code,
// draining stdout to EOF first (Wait closes the pipe and would race the
// scanner out of the final NODEDEAD line).
func waitCode(t *testing.T, p *proc, d time.Duration) int {
	t.Helper()
	timedOut := false
	select {
	case <-p.eof:
	case <-time.After(d):
		timedOut = true
		p.cmd.Process.Kill()
		<-p.eof
	}
	p.cmd.Wait()
	if timedOut {
		t.Fatalf("worker did not exit within %v; stdout:\n%s", d, p.stdout())
	}
	return p.cmd.ProcessState.ExitCode()
}

// TestStatsdChaosLiveKill is the application acceptance scenario: a real
// three-process deployment (two ingestion nodes feeding one aggregation
// node over TCP) loses the AGGREGATOR node to SIGKILL mid-run.  Every
// survivor must unwind with a structured node-dead failure naming the dead
// node — ingestion must not hang on a shard queue whose consumer no longer
// exists.
func TestStatsdChaosLiveKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and waits on failure detection")
	}
	const hang = 20 * time.Second
	procs := launchWorld(t, 3, []string{
		"PURE_STATSD_ITERS=1000000", // far more than will run: the kill cuts it short
		"PURE_STATSD_EVENTS=8000",
		"PURE_HB_MS=5",
		"PURE_DEAD_MS=150",
		"PURE_HANG_MS=" + strconv.Itoa(int(hang.Milliseconds())),
	})
	select {
	case <-procs[0].loop:
	case <-time.After(30 * time.Second):
		t.Fatalf("pipeline never completed its first run; node 0 stdout:\n%s", procs[0].stdout())
	}
	start := time.Now()
	if err := procs[2].cmd.Process.Kill(); err != nil { // node 2 hosts the aggregators
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		code := waitCode(t, procs[i], hang+10*time.Second)
		if code != 3 {
			t.Fatalf("node %d: exit code %d, want 3 (node-dead); stdout:\n%s", i, code, procs[i].stdout())
		}
		out := procs[i].stdout()
		if !strings.Contains(out, "NODEDEAD dead=[2]") {
			t.Fatalf("node %d: no NODEDEAD report naming node 2; stdout:\n%s", i, out)
		}
	}
	if e := time.Since(start); e >= hang {
		t.Fatalf("survivors took %v to report the death, not inside HangTimeout %v", e, hang)
	}
	if code := waitCode(t, procs[2], time.Second); code != -1 {
		t.Fatalf("killed node reported exit code %d, want -1 (signal)", code)
	}
}

// TestStatsdChaosLiveLossy drops 15%% of first transmissions on every link
// of a two-process deployment (ingesters on node 0, aggregators on node 1);
// the transport retransmits and every run's flush totals must stay exactly
// checksum-verified end to end.
func TestStatsdChaosLiveLossy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and rides retransmit timeouts")
	}
	procs := launchWorld(t, 2, []string{
		"PURE_STATSD_ITERS=3",
		"PURE_STATSD_EVENTS=4000",
		"PURE_DROP=0.15",
	})
	for i, p := range procs {
		if code := waitCode(t, p, 120*time.Second); code != 0 {
			t.Fatalf("node %d: exit code %d, want 0; stdout:\n%s", i, code, p.stdout())
		}
	}
	out := procs[0].stdout()
	if !strings.Contains(out, "OK") {
		t.Fatalf("node 0 never printed OK; stdout:\n%s", out)
	}
	if !strings.Contains(out, "applied=4000") {
		t.Fatalf("node 0 never reported exact applied totals; stdout:\n%s", out)
	}
}
