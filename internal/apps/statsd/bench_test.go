package statsd

import (
	"runtime"
	"testing"

	proto "repro/internal/statsd"
	"repro/pure"
)

// BenchmarkStatsdPipeline runs the full pipeline — generate, parse, intern,
// shard, batch, ship, stage, drain, rollup — with one benchmark op per
// *event*, so ns/op is the end-to-end per-event cost and 1e9/ns-op is the
// single-node events/sec figure the acceptance gate reads.
//
//	uniform       flat keyspace, inline drains: the raw throughput number
//	zipf-nosteal  hot keyspace, heavier drains, stealing off (skew baseline)
//	zipf-steal    same load with the drain as a stealable Pure Task
func BenchmarkStatsdPipeline(b *testing.B) {
	b.Run("uniform", func(b *testing.B) {
		benchPipeline(b, Config{}, 0)
	})
	b.Run("zipf-nosteal", func(b *testing.B) {
		benchPipeline(b, zipfConfig(b.N), zipfProcs())
	})
	b.Run("zipf-steal", func(b *testing.B) {
		cfg := zipfConfig(b.N)
		cfg.Steal = true
		benchPipeline(b, cfg, zipfProcs())
	})
	b.Run("drop-policy", func(b *testing.B) {
		benchPipeline(b, Config{Drop: true}, 0)
	})
}

// zipfConfig is the skew-absorption scenario: a sharply zipf-hot keyspace
// whose heavy drain work (staged to each round's rollup) lands mostly on
// one aggregator's sub-shards.  Without stealing that aggregator drains
// alone while the other three ranks spin in the rollup collective; with
// Steal the same ranks steal its drain chunks instead of burning their
// spin budgets.
func zipfConfig(n int) Config {
	return Config{
		Gen:         proto.GenConfig{ZipfS: 2.0},
		WorkScale:   2048,
		Subshards:   32,
		DrainEvents: 1 << 30, // stage the whole round; drain at the rollup
		Rounds:      n/131072 + 1,
	}
}

// zipfProcs picks GOMAXPROCS for the steal comparison: at least 2, so the
// parked ranks can run as thieves even when the container's CPU affinity
// collapses to one core (both zipf variants run under the same value, so
// the comparison stays apples-to-apples either way).
func zipfProcs() int {
	if n := runtime.NumCPU(); n > 2 {
		return n
	}
	return 2
}

func benchPipeline(b *testing.B, cfg Config, procs int) {
	if procs == 0 {
		procs = runtime.NumCPU()
	}
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	cfg.Ingesters = 2
	cfg.Aggregators = 2
	cfg.Events = int64(b.N)
	cfg.Interner = proto.NewInterner(4096)

	var res Result
	b.ResetTimer()
	err := pure.Run(pure.Config{NRanks: cfg.Ingesters + cfg.Aggregators}, func(r *pure.Rank) {
		got, err := Run(r, cfg)
		if err != nil {
			r.Abort(err)
		}
		if r.ID() == 0 {
			res = got
		}
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if !res.Exact {
		b.Fatalf("pipeline lost events: applied %d, committed %d", res.Applied, res.Committed)
	}
	b.ReportMetric(float64(res.Applied)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(res.Stolen), "stolen-chunks")
}
