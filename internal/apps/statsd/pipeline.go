// Package statsd is the Pure application layer of the DogStatsD-style
// metrics-aggregation pipeline (ROADMAP item 3).  Ranks split into two
// roles:
//
//   - Ingesters (ranks [0, Ingesters)) synthesize DogStatsD wire lines,
//     parse them allocation-free, resolve tagsets through a per-rank hot
//     set backed by the node-shared interner, shard each event by its
//     64-bit key hash, and coalesce records into batched frames on
//     persistent channels — one PBQ enqueue per batch, with a hash→string
//     dictionary side channel so strings cross the wire once per link.
//
//   - Aggregators (the remaining ranks) fan in over every ingester with
//     nonblocking batch receives, parking in Rank.WaitFor when nothing is
//     ready (a parked aggregator steals other ranks' drain chunks), stage
//     decoded records by sub-shard, and drain them through a Pure Task so
//     a zipf-hot shard's work is stolen by idle neighbours.
//
// Backpressure is explicit: a full PBQ surfaces as TrySendBatch refusing,
// and the ingester either blocks (lossless) or drops the batch and rolls
// its totals back (lossy but *accounted* — Result.Dropped).  Exactness is
// proven, not assumed: ingesters fold every committed event into 256
// checksum bins (negated), aggregators fold every applied event in
// (positive), and a round-ending Allreduce of the 520-slot int64 vector —
// large enough to take the SPTD partitioned-reducer path — must come back
// all-zero in the verify half.  Markers ride the data channels FIFO behind
// the batches they summarize, so "all markers for round r received" implies
// "all round-r committed events applied".
package statsd

import (
	"fmt"

	proto "repro/internal/statsd"
	"repro/pure"
)

// Config parameterizes one pipeline run.  Every rank must pass identical
// values (except Interner, which is per-process state).
type Config struct {
	// Ingesters and Aggregators partition the communicator: ranks
	// [0, Ingesters) ingest, the rest aggregate.  Their sum must equal the
	// rank count.
	Ingesters   int
	Aggregators int

	// Events is the total event count, split evenly across ingesters.
	Events int64
	// Rounds is how many marker/flush rounds the run is divided into
	// (default 1).  Each round ends with a global snapshot rollup.
	Rounds int

	// BatchEvents flushes a destination's batch at this many records
	// (default 64); FrameBytes flushes earlier if the pending frame payload
	// (records + dictionary) reaches this size (default 3072 — frames must
	// stay safely under the eager threshold).
	BatchEvents int
	FrameBytes  int

	// Drop selects the backpressure policy at a full queue: true drops the
	// batch (counted in Result.Dropped, rolled back from the committed
	// totals), false blocks the ingester until the aggregator drains.
	Drop bool

	// Steal drains staged records through a Pure Task whose sub-shard
	// chunks idle ranks steal; false drains inline (the skew-absorption
	// baseline).
	Steal bool
	// Subshards is the per-aggregator sub-shard count == drain-task chunks
	// (default 8).
	Subshards int
	// DrainEvents triggers a drain when this many records are staged
	// (default 4096).
	DrainEvents int
	// WorkScale adds synthetic per-record compute to the drain (sketch
	// maintenance stand-in), making shard skew visible to the scheduler.
	// 0 means the bare aggregation cost.
	WorkScale int

	// Gen shapes the synthetic traffic (ZipfS is the skew knob).  Each
	// ingester perturbs the seed with its rank.
	Gen proto.GenConfig

	// Interner, when non-nil, is the node-shared tagset table (share one
	// across all ingesters in this process); nil gives each ingester a
	// private 4096-slot table.
	Interner *proto.Interner
}

func (c *Config) defaults() error {
	if c.Ingesters <= 0 || c.Aggregators <= 0 {
		return fmt.Errorf("statsd: need at least one ingester and one aggregator, have %d/%d",
			c.Ingesters, c.Aggregators)
	}
	if c.Events <= 0 {
		return fmt.Errorf("statsd: no events to run (%d)", c.Events)
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.BatchEvents <= 0 {
		c.BatchEvents = 64
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = 3072
	}
	if c.Subshards <= 0 {
		c.Subshards = 8
	}
	if c.DrainEvents <= 0 {
		c.DrainEvents = 4096
	}
	return nil
}

// Result is the global flush snapshot plus the run's accounting, identical
// on every rank (it is the final Allreduce).
type Result struct {
	// Applied is the event count folded into aggregator state; Committed
	// is the count the ingesters successfully enqueued.  Equal iff Exact.
	Applied   uint64
	Committed uint64
	// Dropped counts events discarded by the drop policy (0 when blocking).
	Dropped uint64
	// Keys is the distinct live series count across all aggregators.
	Keys int64
	// Owner and Stolen are the drain task's chunk split (Stolen > 0 means
	// work stealing actually absorbed skew).
	Owner, Stolen int64
	// Sum and Bins are the global applied checksum and its per-bin split —
	// the flush snapshot's integrity digest.
	Sum  uint64
	Bins [proto.NBins]uint64
	// Exact reports that the zero-sum proof held: every committed event
	// was applied exactly once, bin by bin.
	Exact bool
}

// Verification vector layout (int64 slots; wraparound arithmetic).  The
// verify half must reduce to zero; the rest are absolute tallies.
const (
	vEvents = iota // applied − committed (zero-sum)
	vSum           // applied − committed checksum (zero-sum)
	vApplied
	vCommitted
	vDropped
	vKeys
	vOwner
	vStolen
	vHeader
	vVerifyBins = vHeader               // [vVerifyBins, +NBins): zero-sum bins
	vSnapBins   = vHeader + proto.NBins // [vSnapBins, +NBins): absolute bins
	vLen        = vHeader + 2*proto.NBins
)

// tagData is the single channel tag: each (ingester, aggregator) pair owns
// one persistent channel carrying batch frames of dict/record/marker
// messages, FIFO per link.
const tagData = 0

// Run executes the pipeline body on one rank.  Call it from inside
// pure.Run; every rank returns the same Result.
func Run(r *pure.Rank, cfg Config) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	if n := cfg.Ingesters + cfg.Aggregators; n != r.NRanks() {
		return Result{}, fmt.Errorf("statsd: %d ingesters + %d aggregators need %d ranks, have %d",
			cfg.Ingesters, cfg.Aggregators, n, r.NRanks())
	}
	if r.ID() < cfg.Ingesters {
		return runIngester(r, cfg)
	}
	return runAggregator(r, cfg)
}

// share splits total into counts per worker, spreading the remainder over
// the first workers.
func share(total int64, workers, i int) int64 {
	n := total / int64(workers)
	if int64(i) < total%int64(workers) {
		n++
	}
	return n
}

func runIngester(r *pure.Rank, cfg Config) (Result, error) {
	c := r.World()
	me := r.ID()
	nAgg := cfg.Aggregators

	it := cfg.Interner
	if it == nil {
		it = proto.NewInterner(4096)
	}
	hot := proto.NewHotSet(512)

	gcfg := cfg.Gen
	gcfg.Seed ^= uint64(me)*0x9e3779b97f4a7c15 + 1
	gen := proto.NewGen(gcfg)

	chans := make([]*pure.Channel, nAgg)
	writers := make([]*proto.BatchWriter, nAgg)
	for a := 0; a < nAgg; a++ {
		chans[a] = c.SendChannel(cfg.Ingesters+a, tagData)
		writers[a] = proto.NewBatchWriter()
	}

	var bins [proto.NBins]uint64 // committed checksum bins, all links
	var dropped uint64
	msgs := make([][]byte, 0, 3)
	marker := make([]byte, 0, 32)
	line := make([]byte, 0, 256)
	var ev proto.Event

	// flush sends writer d's pending frame.  Mid-round flushes honour the
	// drop policy; round-ending flushes always block — markers and the
	// batches they summarize must arrive.
	flush := func(d int, blocking bool) {
		w := writers[d]
		if w.PendingBytes() == 0 {
			return
		}
		msgs = w.Messages(msgs)
		if blocking || !cfg.Drop {
			chans[d].SendBatch(msgs)
			w.Commit(&bins)
			return
		}
		if chans[d].TrySendBatch(msgs) {
			w.Commit(&bins)
			return
		}
		dropped += uint64(w.Count())
		w.Rollback()
		if w.PendingBytes() >= cfg.FrameBytes {
			// Rollback keeps dictionary bytes (definitions must arrive even
			// when their events don't), so under sustained drops the dict
			// alone can outgrow a frame.  It is control plane, like markers:
			// deliver it blocking before it breaches the eager limit.
			chans[d].SendBatch(w.Messages(msgs))
			w.Commit(&bins)
		}
	}

	myEvents := share(cfg.Events, cfg.Ingesters, me)
	vec := make([]int64, vLen)
	in := make([]byte, 8*vLen)
	out := make([]byte, 8*vLen)
	var res Result

	for round := 0; round < cfg.Rounds; round++ {
		for i := share(myEvents, cfg.Rounds, round); i > 0; i-- {
			line = gen.Next(line[:0])
			if err := proto.ParseLine(line, &ev); err != nil {
				return Result{}, fmt.Errorf("statsd: generator emitted a bad line %q: %w", line, err)
			}
			nameH := proto.Hash64(ev.Name)
			ts := hot.Intern(it, proto.Hash64(ev.Tags), ev.Tags)
			key := proto.KeyHash(nameH, ts.Hash, ev.Type)
			d := int(key % uint64(nAgg))
			w := writers[d]
			w.Add(nameH, ev.Name, ts, ev.Type, ev.Value, key)
			if w.Count() >= cfg.BatchEvents || w.PendingBytes() >= cfg.FrameBytes {
				flush(d, false)
			}
		}
		// Round rollup: everything pending is committed (blocking), then
		// each link gets its marker carrying the cumulative totals.
		final := round == cfg.Rounds-1
		var committed, sum uint64
		for d := range writers {
			flush(d, true)
			marker = writers[d].AppendMarker(marker, round, final)
			chans[d].SendBatch(append(msgs[:0], marker))
			committed += writers[d].SentEvents
			sum += writers[d].SentSum
		}
		// Contribute the negated committed side of the zero-sum proof.
		clear(vec)
		vec[vEvents] = -int64(committed)
		vec[vSum] = -int64(sum)
		vec[vCommitted] = int64(committed)
		vec[vDropped] = int64(dropped)
		for b, v := range bins {
			vec[vVerifyBins+b] = -int64(v)
		}
		pure.PutInt64s(in, vec)
		c.Allreduce(in, out, pure.Sum, pure.Int64)
		pure.GetInt64s(vec, out)
		res = resultFrom(vec)
	}
	return res, nil
}

// stagedRec is one decoded record parked between receive and drain.
type stagedRec struct {
	key, nameH, tagH uint64
	value            float64
	typ              proto.MetricType
}

func runAggregator(r *pure.Rank, cfg Config) (Result, error) {
	c := r.World()
	nIng := cfg.Ingesters
	nSub := cfg.Subshards

	srcs := make([]*pure.Channel, nIng)
	for s := 0; s < nIng; s++ {
		srcs[s] = c.RecvChannel(s, tagData)
	}

	aggs := make([]*proto.Agg, nSub)
	staged := make([][]stagedRec, nSub)
	stagedCap := cfg.DrainEvents/nSub + 16
	if stagedCap > 4096 {
		stagedCap = 4096 // huge DrainEvents means "drain at round end"; grow lazily
	}
	for s := range aggs {
		aggs[s] = proto.NewAgg()
		staged[s] = make([]stagedRec, 0, stagedCap)
	}

	// The drain task: chunk s == sub-shard s.  Chunks touch disjoint
	// (staged[s], aggs[s]) pairs, so stolen chunks race with nothing.
	drainChunk := func(s int) {
		a := aggs[s]
		for _, rec := range staged[s] {
			if cfg.WorkScale > 0 {
				spinWork(rec.key, cfg.WorkScale)
			}
			a.Apply(rec.key, rec.nameH, rec.tagH, rec.typ, rec.value)
		}
		staged[s] = staged[s][:0]
	}
	task := r.NewTask(nSub, func(start, end int64, _ any) {
		for s := start; s < end; s++ {
			drainChunk(int(s))
		}
	})
	var owner, stolen int64
	nStaged := 0
	drain := func() {
		if nStaged == 0 {
			return
		}
		if cfg.Steal {
			st := task.Execute(nil)
			owner += st.OwnerChunks
			stolen += st.StolenChunks
		} else {
			for s := 0; s < nSub; s++ {
				drainChunk(s)
			}
		}
		nStaged = 0
	}

	stageCur := 0
	names := make(map[uint64]string)
	tagsets := make(map[uint64]string)
	marks := make([]int, nIng)         // markers seen per source
	linkEvents := make([]uint64, nIng) // cumulative committed, from markers
	linkSums := make([]uint64, nIng)

	frame := make([]byte, 2*cfg.FrameBytes)
	msgs := make([][]byte, 0, 8)

	handle := func(src int, m []byte) error {
		kind, err := proto.MsgKind(m)
		if err != nil {
			return err
		}
		switch kind {
		case proto.MsgDict:
			return proto.DecodeDict(m, names, tagsets)
		case proto.MsgRecords:
			payload, n, err := proto.DecodeRecords(m)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				nameH, tagH, typ, value := proto.RecordAt(payload, i)
				key := proto.KeyHash(nameH, tagH, typ)
				// Round-robin staging, not key-hash staging: a zipf-hot key
				// must spread over every sub-shard or its drain work would sit
				// in one chunk no thief can split.  Each sub-shard owns a
				// private Agg (the same key aggregates independently per
				// sub-shard and the rollup merges the totals), the standard
				// hot-key split-and-merge shape.
				staged[stageCur] = append(staged[stageCur], stagedRec{key: key, nameH: nameH, tagH: tagH, value: value, typ: typ})
				stageCur = (stageCur + 1) % nSub
			}
			nStaged += n
		case proto.MsgMarker:
			round, _, events, sum, err := proto.DecodeMarker(m)
			if err != nil {
				return err
			}
			if round != marks[src] {
				return fmt.Errorf("statsd: source %d delivered marker for round %d during round %d (FIFO violated)",
					src, round, marks[src])
			}
			marks[src]++
			linkEvents[src] = events
			linkSums[src] = sum
		}
		return nil
	}

	anyReady := func() bool {
		for _, ch := range srcs {
			if ch.RecvReady() {
				return true
			}
		}
		return false
	}

	vec := make([]int64, vLen)
	in := make([]byte, 8*vLen)
	out := make([]byte, 8*vLen)
	var res Result

	for round := 0; round < cfg.Rounds; round++ {
		for !roundDone(marks, round) {
			// Park until a frame is ready; a parked aggregator steals drain
			// chunks from its hot neighbours.
			r.WaitFor(anyReady)
			for src, ch := range srcs {
				for {
					ms, ok := ch.TryRecvBatch(frame, msgs)
					if !ok {
						break
					}
					for _, m := range ms {
						if err := handle(src, m); err != nil {
							return Result{}, err
						}
					}
					if nStaged >= cfg.DrainEvents {
						drain()
					}
				}
			}
		}
		drain()

		// Local cross-check before the global one: markers carry each
		// link's committed totals, and FIFO order guarantees everything
		// they summarize was received above.
		var wantEvents, wantSum, applied, sum uint64
		for s := range linkEvents {
			wantEvents += linkEvents[s]
			wantSum += linkSums[s]
		}
		var binsAcc [proto.NBins]uint64
		var keys int64
		for _, a := range aggs {
			applied += a.Count
			sum += a.Sum
			keys += int64(a.Keys)
			for b, v := range a.Bins {
				binsAcc[b] += v
			}
		}
		if applied != wantEvents || sum != wantSum {
			return Result{}, fmt.Errorf("statsd: aggregator %d applied (%d events, sum %#x) but markers committed (%d, %#x)",
				r.ID(), applied, sum, wantEvents, wantSum)
		}

		clear(vec)
		vec[vEvents] = int64(applied)
		vec[vSum] = int64(sum)
		vec[vApplied] = int64(applied)
		vec[vKeys] = keys
		vec[vOwner] = owner
		vec[vStolen] = stolen
		for b, v := range binsAcc {
			vec[vVerifyBins+b] = int64(v)
			vec[vSnapBins+b] = int64(v)
		}
		pure.PutInt64s(in, vec)
		c.Allreduce(in, out, pure.Sum, pure.Int64)
		pure.GetInt64s(vec, out)
		res = resultFrom(vec)
	}
	return res, nil
}

// roundDone reports whether every source's marker for round has arrived.
func roundDone(marks []int, round int) bool {
	for _, m := range marks {
		if m <= round {
			return false
		}
	}
	return true
}

// resultFrom decodes the reduced verification vector.
func resultFrom(vec []int64) Result {
	res := Result{
		Applied:   uint64(vec[vApplied]),
		Committed: uint64(vec[vCommitted]),
		Dropped:   uint64(vec[vDropped]),
		Keys:      vec[vKeys],
		Owner:     vec[vOwner],
		Stolen:    vec[vStolen],
	}
	exact := vec[vEvents] == 0 && vec[vSum] == 0
	for b := 0; b < proto.NBins; b++ {
		if vec[vVerifyBins+b] != 0 {
			exact = false
		}
		res.Bins[b] = uint64(vec[vSnapBins+b])
		res.Sum += uint64(vec[vSnapBins+b])
	}
	res.Exact = exact
	return res
}

// spinWork is the synthetic per-record compute (WorkScale): a short
// data-dependent mix loop the compiler cannot elide.
func spinWork(seed uint64, scale int) uint64 {
	x := seed
	for i := 0; i < scale; i++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		x *= 0x2545f4914f6cdd1d
	}
	return x
}
