package stencil

import (
	"math"
	"runtime"
	"testing"

	"repro/comm"
	"repro/mpibase"
	"repro/pure"
)

func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den < 1e-9
}

func runPure(t *testing.T, nranks int, p Params) Result {
	t.Helper()
	var res Result
	if err := comm.RunPure(pure.Config{NRanks: nranks}, func(b comm.Backend) {
		r, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			res = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	return res
}

func runMPI(t *testing.T, nranks int, p Params) Result {
	t.Helper()
	var res Result
	if err := comm.RunMPI(mpibase.Config{NRanks: nranks}, func(b comm.Backend) {
		r, err := Run(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			res = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBackendsAgree(t *testing.T) {
	p := Params{ArrSize: 128, Iters: 6, WorkScale: 4}
	pr := runPure(t, 4, p)
	mr := runMPI(t, 4, p)
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("checksums differ: %v vs %v", pr.Checksum, mr.Checksum)
	}
}

func TestTaskMatchesSerial(t *testing.T) {
	serial := runPure(t, 4, Params{ArrSize: 128, Iters: 6, WorkScale: 4})
	task := runPure(t, 4, Params{ArrSize: 128, Iters: 6, WorkScale: 4, UseTask: true})
	if !closeEnough(serial.Checksum, task.Checksum) {
		t.Fatalf("task checksum %v != serial %v", task.Checksum, serial.Checksum)
	}
}

func TestSingleRank(t *testing.T) {
	pr := runPure(t, 1, Params{ArrSize: 64, Iters: 3})
	mr := runMPI(t, 1, Params{ArrSize: 64, Iters: 3})
	if !closeEnough(pr.Checksum, mr.Checksum) {
		t.Fatalf("single-rank checksums differ: %v vs %v", pr.Checksum, mr.Checksum)
	}
}

func TestWorkRepsVariance(t *testing.T) {
	lo, hi := 1<<30, 0
	for i := 0; i < 1000; i++ {
		r := workReps(1, 2, i, 16)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi < 8*lo {
		t.Fatalf("work distribution too flat: [%d, %d]", lo, hi)
	}
}

func TestValidation(t *testing.T) {
	if err := comm.RunPure(pure.Config{NRanks: 1}, func(b comm.Backend) {
		if _, err := Run(b, Params{ArrSize: 2, Iters: 1}); err == nil {
			t.Error("tiny array accepted")
		}
		if _, err := Run(b, Params{ArrSize: 64, Iters: 0}); err == nil {
			t.Error("zero iters accepted")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWorkValueIndependentOfReps(t *testing.T) {
	a := randomWork(1.25, 1)
	b := randomWork(1.25, 10000)
	if a != b {
		t.Fatalf("randomWork value depends on reps: %v vs %v", a, b)
	}
}

func runRMA(t *testing.T, nranks int, p Params) Result {
	t.Helper()
	var res Result
	if err := pure.Run(pure.Config{NRanks: nranks}, func(r *pure.Rank) {
		rr, err := RunRMA(r, p)
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			res = rr
		}
	}); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRMAMatchesMessages pins the one-sided halo exchange to the
// message-passing variant: same trajectory, bit-identical checksum.
func TestRMAMatchesMessages(t *testing.T) {
	p := Params{ArrSize: 128, Iters: 6, WorkScale: 4}
	msg := runPure(t, 4, p)
	rma := runRMA(t, 4, p)
	if msg.Checksum != rma.Checksum {
		t.Fatalf("RMA checksum %v != message checksum %v", rma.Checksum, msg.Checksum)
	}
	pt := p
	pt.UseTask = true
	if tr := runRMA(t, 4, pt); tr.Checksum != msg.Checksum {
		t.Fatalf("tasked RMA checksum %v != message checksum %v", tr.Checksum, msg.Checksum)
	}
	if single := runRMA(t, 1, p); single.Checksum != runPure(t, 1, p).Checksum {
		t.Fatalf("single-rank RMA diverged")
	}
}

// TestChannelsMatchWrappers: the persistent-channel halo exchange
// (RunChannels) produces the wrapper path's exact checksum on both backends
// — the Pure native endpoints and the bound-wrapper fallback over mpibase.
func TestChannelsMatchWrappers(t *testing.T) {
	p := Params{ArrSize: 128, Iters: 6, WorkScale: 4}
	want := runPure(t, 4, p)

	var chPure, chMPI Result
	if err := comm.RunPure(pure.Config{NRanks: 4}, func(b comm.Backend) {
		r, err := RunChannels(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			chPure = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := comm.RunMPI(mpibase.Config{NRanks: 4}, func(b comm.Backend) {
		r, err := RunChannels(b, p)
		if err != nil {
			t.Error(err)
			return
		}
		if b.Rank() == 0 {
			chMPI = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !closeEnough(want.Checksum, chPure.Checksum) {
		t.Fatalf("pure channels checksum %v != wrapper %v", chPure.Checksum, want.Checksum)
	}
	if !closeEnough(want.Checksum, chMPI.Checksum) {
		t.Fatalf("mpi bound-channel checksum %v != wrapper %v", chMPI.Checksum, want.Checksum)
	}
}
