// Package stencil is the paper's running example (§2, Listings 1 and 2): a
// 1-D stencil whose per-element "random work" takes a variable, unknown
// amount of time, introducing load imbalance.  Each rank owns a slice of the
// global array; every iteration it transforms its slice (rand_work), applies
// a 3-point average, and exchanges edge elements with its two neighbours.
// With UseTask set, the transform runs as a Pure Task (Listing 2's
// rand_work_task) so neighbours blocked in their receives steal chunks.
package stencil

import (
	"fmt"
	"math"

	"repro/comm"
	"repro/internal/codec"
)

// Params configures a run.
type Params struct {
	// ArrSize is the per-rank array length.
	ArrSize int
	// Iters is the iteration count.
	Iters int
	// WorkScale scales the variable per-element work (imbalance magnitude).
	WorkScale int
	// UseTask runs rand_work as a Pure Task (Listing 2); otherwise the plain
	// loop (Listing 1).
	UseTask bool
	// TaskChunks is the task's chunk count (0 = 32).
	TaskChunks int
}

// Result is the run's verification state.
type Result struct {
	Checksum float64
	Iters    int
}

// workReps returns the deterministic variable work count for an element —
// the stand-in for the paper's random_work timing variability.  It depends
// only on (rank, iter, index) so every backend computes identical values.
func workReps(rank, iter, idx, scale int) int {
	h := uint64(rank)*0x9E3779B97F4A7C15 ^ uint64(iter)*0xBF58476D1CE4E5B9 ^ uint64(idx)*0x94D049BB133111EB
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	r := h % 32
	reps := int(r)
	if r >= 30 { // occasional very slow elements
		reps *= 16
	}
	return 1 + reps*scale/16
}

// randomWork is the paper's random_work: it does not modify its input and
// takes variable time.  The accumulated term underflows to exactly zero, so
// the returned value depends only on v (keeping trajectories deterministic)
// while the loop cannot be eliminated by the compiler.
func randomWork(v float64, reps int) float64 {
	acc := 0.0
	for i := 0; i < reps; i++ {
		acc += math.Sqrt(math.Abs(v) + float64(i))
	}
	return v*1.0001 + acc*1e-300*1e-300
}

// Run executes the stencil over the backend (rand_stencil_mpi /
// rand_stencil_pure from the paper, §2) with the original wrapper-path halo
// exchange: one Sendrecv call per neighbour per iteration.
func Run(b comm.Backend, p Params) (Result, error) { return run(b, p, false) }

// RunChannels is Run with the halo exchange rewritten over persistent
// channel endpoints: the four neighbour channels and their one-element
// payload buffers bind once before the iteration loop, and each iteration
// just posts Irecv/Isend on them.  Same checksum as Run; on the Pure backend
// the steady-state exchange is allocation-free.
func RunChannels(b comm.Backend, p Params) (Result, error) { return run(b, p, true) }

func run(b comm.Backend, p Params, useChannels bool) (Result, error) {
	if p.ArrSize < 4 || p.Iters <= 0 {
		return Result{}, fmt.Errorf("stencil: bad params %+v", p)
	}
	if p.WorkScale <= 0 {
		p.WorkScale = 1
	}
	chunks := p.TaskChunks
	if chunks <= 0 {
		chunks = 32
	}
	rank, n := b.Rank(), b.Size()
	arr := p.ArrSize
	a := make([]float64, arr)
	for i := range a {
		a[i] = math.Sin(float64(rank*arr+i)) + 1.5
	}
	temp := make([]float64, arr)

	// rand_work_task (Listing 2, lines 4-13): capture a, temp, arr; receive
	// the chunk range from the runtime; per-iteration state via extra.
	type iterArgs struct{ iter int }
	var task comm.Task
	runChunkRange := func(lo, hi int64, iter int) {
		for i := lo; i < hi; i++ {
			temp[i] = randomWork(a[i], workReps(rank, iter, int(i), p.WorkScale))
		}
	}
	if p.UseTask {
		task = b.NewTask(chunks, func(start, end int64, extra any) {
			lo, hi := task.AlignedIdxRange(int64(arr), 8, start, end)
			runChunkRange(lo, hi, extra.(*iterArgs).iter)
		})
	}

	// Persistent halo channels (RunChannels): both neighbour endpoints and
	// the one-element payload buffers bind once, outside the loop.
	var loSend, loRecv, hiSend, hiRecv comm.Channel
	var loOut, loIn, hiOut, hiIn []byte
	if useChannels {
		if rank > 0 {
			loSend = comm.SendChannelOf(b, rank-1, 0)
			loRecv = comm.RecvChannelOf(b, rank-1, 0)
			loOut, loIn = make([]byte, 8), make([]byte, 8)
		}
		if rank < n-1 {
			hiSend = comm.SendChannelOf(b, rank+1, 0)
			hiRecv = comm.RecvChannelOf(b, rank+1, 0)
			hiOut, hiIn = make([]byte, 8), make([]byte, 8)
		}
	}

	buf := make([]byte, 8)
	one := make([]float64, 1)
	lo, hi := make([]float64, 1), make([]float64, 1)
	for it := 0; it < p.Iters; it++ {
		if task != nil {
			task.Execute(&iterArgs{iter: it})
		} else {
			runChunkRange(0, int64(arr), it)
		}
		for i := 1; i < arr-1; i++ {
			a[i] = (temp[i-1] + temp[i] + temp[i+1]) / 3.0
		}
		switch {
		case useChannels:
			// Post every receive, then every send, then complete: the
			// pre-posted receives make the exchange deadlock-free without
			// the low-side-first ordering the wrapper path needs.
			var rl, rh comm.Request
			if loRecv != nil {
				rl = loRecv.Irecv(loIn)
			}
			if hiRecv != nil {
				rh = hiRecv.Irecv(hiIn)
			}
			if loSend != nil {
				codec.PutFloat64s(loOut, temp[:1])
				loSend.Send(loOut)
			}
			if hiSend != nil {
				codec.PutFloat64s(hiOut, temp[arr-1:])
				hiSend.Send(hiOut)
			}
			if rl != nil {
				b.Wait(rl)
				codec.GetFloat64s(lo, loIn)
				a[0] = (lo[0] + temp[0] + temp[1]) / 3.0
			}
			if rh != nil {
				b.Wait(rh)
				codec.GetFloat64s(hi, hiIn)
				a[arr-1] = (temp[arr-2] + temp[arr-1] + hi[0]) / 3.0
			}
		default:
			// Each edge exchange is one Sendrecv with the matching
			// neighbour.  Low side first everywhere: rank 0 has no low
			// neighbour, so the chain unwinds without deadlock.
			if rank > 0 {
				comm.SendrecvFloat64s(b, temp[:1], rank-1, 0, one, rank-1, 0)
				a[0] = (one[0] + temp[0] + temp[1]) / 3.0
			}
			if rank < n-1 {
				comm.SendrecvFloat64s(b, temp[arr-1:], rank+1, 0, one, rank+1, 0)
				a[arr-1] = (temp[arr-2] + temp[arr-1] + one[0]) / 3.0
			}
		}
		_ = buf
	}
	sum := 0.0
	for _, v := range a {
		sum += v
	}
	return Result{Checksum: comm.AllreduceFloat64(b, sum, comm.Sum), Iters: p.Iters}, nil
}
