package stencil

import (
	"fmt"
	"math"

	"repro/pure"
)

// RunRMA is the stencil's one-sided halo exchange: instead of the
// send/receive pairs in Run, each rank Puts its edge elements directly into
// its neighbours' window memory and flags them with Notify — the paper's
// point that within a node "message passing" can collapse to a store into
// shared memory plus a flag update.  The numerical trajectory is identical
// to Run's, so the two variants must produce the same checksum.
//
// Window layout per rank (two float64 ghost cells):
//
//	[0:8)  ghost from the low neighbour  (its temp[arr-1])
//	[8:16) ghost from the high neighbour (its temp[0])
//
// Notify slots: 0 = low-side ghost written, 1 = high-side ghost written,
// 2 = high neighbour consumed our right-edge put, 3 = low neighbour
// consumed our left-edge put.  The ack slots (2, 3) gate the next
// iteration's overwrite of a ghost the consumer may not have read yet.
func RunRMA(r *pure.Rank, p Params) (Result, error) {
	if p.ArrSize < 4 || p.Iters <= 0 {
		return Result{}, fmt.Errorf("stencil: bad params %+v", p)
	}
	if p.WorkScale <= 0 {
		p.WorkScale = 1
	}
	chunks := p.TaskChunks
	if chunks <= 0 {
		chunks = 32
	}
	c := r.World()
	rank, n := c.Rank(), c.Size()
	arr := p.ArrSize
	a := make([]float64, arr)
	for i := range a {
		a[i] = math.Sin(float64(rank*arr+i)) + 1.5
	}
	temp := make([]float64, arr)

	type iterArgs struct{ iter int }
	var task *pure.Task
	runChunkRange := func(lo, hi int64, iter int) {
		for i := lo; i < hi; i++ {
			temp[i] = randomWork(a[i], workReps(rank, iter, int(i), p.WorkScale))
		}
	}
	if p.UseTask {
		task = r.NewTask(chunks, func(start, end int64, extra any) {
			lo, hi := task.AlignedIdxRange(int64(arr), 8, start, end)
			runChunkRange(lo, hi, extra.(*iterArgs).iter)
		})
	}

	const (
		ghostLo   = 0 // byte offset of the low-side ghost
		ghostHi   = 8
		slotLo    = 0 // data-ready: low-side ghost written
		slotHi    = 1 // data-ready: high-side ghost written
		slotAckHi = 2 // ack: our put into the high neighbour was consumed
		slotAckLo = 3 // ack: our put into the low neighbour was consumed
	)
	win := c.WinCreate(make([]byte, 16))
	ghost := make([]float64, 1)
	edge := make([]float64, 1)
	for it := 0; it < p.Iters; it++ {
		if task != nil {
			task.Execute(&iterArgs{iter: it})
		} else {
			runChunkRange(0, int64(arr), it)
		}
		for i := 1; i < arr-1; i++ {
			a[i] = (temp[i-1] + temp[i] + temp[i+1]) / 3.0
		}
		// Wait for last iteration's ghosts to be consumed before
		// overwriting them.
		if it > 0 {
			if rank < n-1 {
				win.NotifyWait(slotAckHi, 1)
			}
			if rank > 0 {
				win.NotifyWait(slotAckLo, 1)
			}
		}
		// Put edges into the neighbours' ghost cells and flag them.
		if rank < n-1 {
			edge[0] = temp[arr-1]
			win.Put(pure.Float64Bytes(edge), rank+1, ghostLo)
			win.Notify(rank+1, slotLo)
		}
		if rank > 0 {
			edge[0] = temp[0]
			win.Put(pure.Float64Bytes(edge), rank-1, ghostHi)
			win.Notify(rank-1, slotHi)
		}
		// Consume our ghosts, update the boundary points, ack the writers.
		if rank > 0 {
			win.NotifyWait(slotLo, 1)
			pure.GetFloat64s(ghost, win.Buffer()[ghostLo:ghostLo+8])
			a[0] = (ghost[0] + temp[0] + temp[1]) / 3.0
			win.Notify(rank-1, slotAckHi)
		}
		if rank < n-1 {
			win.NotifyWait(slotHi, 1)
			pure.GetFloat64s(ghost, win.Buffer()[ghostHi:ghostHi+8])
			a[arr-1] = (temp[arr-2] + temp[arr-1] + ghost[0]) / 3.0
			win.Notify(rank+1, slotAckLo)
		}
	}
	win.Free()
	sum := 0.0
	for _, v := range a {
		sum += v
	}
	return Result{Checksum: c.AllreduceFloat64(sum, pure.Sum), Iters: p.Iters}, nil
}
