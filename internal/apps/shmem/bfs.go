package shmemapp

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"repro/pure"
)

// Level-synchronous BFS with mailbox frontier exchange.
//
// The graph is synthetic and deterministic: vertex v has ring edges to
// v±1 plus Degree pseudo-random skip edges drawn from the seed, so every
// rank (and the serial oracle) derives the same adjacency from the config
// alone — no graph distribution step.  Vertices are owned round-robin
// (owner(v) = v % Size); each rank keeps the distance array for its own
// vertices and opens one actor mailbox.
//
// Each level, a rank walks its frontier and routes every discovered
// neighbor to the neighbor's owner: local ones relax directly, remote ones
// travel as 8-byte vertex ids through the owner's mailbox.  Senders never
// block on a full ring — a blocked sender whose own mailbox sits undrained
// is the classic distributed-termination deadlock — instead TrySend
// failure triggers a drain of the rank's own mailbox and a retry.  Level
// termination is marker-based for the same reason a barrier would deadlock
// here (a rank parked in a barrier stops draining while its ring fills):
// after its frontier, each rank sends every peer an end-of-level marker,
// and keeps draining until all n-1 markers arrive.  Mailboxes are
// per-sender FIFO (ring tickets intra-node, one ordered flow inter-node),
// so a rank holding every marker has provably consumed every data message
// of the level; an Allreduce of newly discovered counts then decides
// termination, and no rank starts the next level until every rank's
// markers are in.

// BFSConfig parameterizes one traversal.  Every rank passes identical
// values.
type BFSConfig struct {
	// Vertices is the graph size (default 2048).
	Vertices int
	// Degree is the per-vertex skip-edge count on top of the ring edges
	// (default 3).
	Degree int
	// Source is the BFS root (default 0).
	Source int
	// MailboxCap is the per-owner ring capacity in messages (default 64;
	// small values exercise the full-ring drain path).
	MailboxCap int
	// Seed shapes the skip edges (default 1).
	Seed uint64
}

func (c *BFSConfig) defaults() {
	if c.Vertices <= 0 {
		c.Vertices = 2048
	}
	if c.Degree <= 0 {
		c.Degree = 3
	}
	if c.MailboxCap <= 0 {
		c.MailboxCap = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// BFSResult is the verified outcome of one traversal.
type BFSResult struct {
	Levels  int   // levels until the frontier emptied
	Reached int64 // vertices with a finite distance
	Exact   bool  // distances match the serial reference on every rank
}

// bfsNeighbors appends v's adjacency to dst: the two ring edges plus
// Degree seeded skip edges (self-loops allowed and harmless).
func bfsNeighbors(cfg BFSConfig, v int, dst []int) []int {
	n := cfg.Vertices
	dst = append(dst, (v+1)%n, (v+n-1)%n)
	for k := 0; k < cfg.Degree; k++ {
		dst = append(dst, int(splitmix64(cfg.Seed^uint64(v)<<16^uint64(k))%uint64(n)))
	}
	return dst
}

// BFSReference runs the serial oracle and returns every vertex's distance
// (-1 for unreachable).
func BFSReference(cfg BFSConfig) []int64 {
	cfg.defaults()
	dist := make([]int64, cfg.Vertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[cfg.Source] = 0
	frontier := []int{cfg.Source}
	var scratch []int
	for d := int64(1); len(frontier) > 0; d++ {
		var next []int
		for _, v := range frontier {
			scratch = bfsNeighbors(cfg, v, scratch[:0])
			for _, w := range scratch {
				if dist[w] < 0 {
					dist[w] = d
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// RunBFS executes the distributed traversal on the world communicator and
// verifies every local distance against the serial oracle.
func RunBFS(r *pure.Rank, cfg BFSConfig) (BFSResult, error) {
	cfg.defaults()
	c := r.World()
	n, me := c.Size(), c.Rank()
	if cfg.Source < 0 || cfg.Source >= cfg.Vertices {
		return BFSResult{}, fmt.Errorf("shmemapp: BFS source %d outside [0,%d)", cfg.Source, cfg.Vertices)
	}

	// The symmetric heap only carries the mailboxes; the distance arrays
	// are rank-private.
	s := c.ShmemCreate(int64(n)*(8+int64(cfg.MailboxCap)*24)+256, n+8)
	defer s.FreeHeap()
	mbs := make([]*pure.Mailbox, n)
	for p := 0; p < n; p++ {
		mbs[p] = s.NewMailbox(p, cfg.MailboxCap, 8)
	}

	// dist[i] is vertex i*n+me's distance; -1 = undiscovered.
	nLocal := (cfg.Vertices - me + n - 1) / n
	dist := make([]int64, nLocal)
	for i := range dist {
		dist[i] = -1
	}
	var frontier, next []int // local vertex ids (global = id*n + me)

	// drain consumes every currently published mailbox message: data
	// messages relax the carried vertex into the next frontier, marker
	// messages count toward the level's termination.
	const markerBit = uint64(1) << 63
	msg := make([]byte, 8)
	out := make([]byte, 8)
	level := int64(0)
	markers := 0
	drain := func() {
		for {
			k, ok := mbs[me].Poll(msg)
			if !ok {
				return
			}
			if k != 8 {
				panic(fmt.Sprintf("shmemapp: BFS mailbox message of %d bytes", k))
			}
			v := binary.LittleEndian.Uint64(msg)
			if v&markerBit != 0 {
				markers++
				continue
			}
			if li := int(v) / n; dist[li] < 0 {
				dist[li] = level + 1
				next = append(next, li)
			}
		}
	}
	// send delivers one payload to rank p's mailbox, draining our own ring
	// (which also turns the transport progress crank) whenever p's is full.
	send := func(p int, payload uint64) {
		binary.LittleEndian.PutUint64(out, payload)
		for !mbs[p].TrySend(out) {
			drain()
			runtime.Gosched()
		}
	}

	if cfg.Source%n == me {
		dist[cfg.Source/n] = 0
		frontier = append(frontier, cfg.Source/n)
	}
	s.Barrier()

	var scratch []int
	res := BFSResult{}
	for {
		for _, li := range frontier {
			v := li*n + me
			scratch = bfsNeighbors(cfg, v, scratch[:0])
			for _, w := range scratch {
				if p := w % n; p == me {
					if lw := w / n; dist[lw] < 0 {
						dist[lw] = level + 1
						next = append(next, lw)
					}
				} else {
					send(p, uint64(w))
				}
			}
		}
		// End of our frontier: tell every peer, then drain until every
		// peer has told us.  Markers ride FIFO behind the data, so holding
		// all n-1 markers means the whole level has been consumed.
		for p := 0; p < n; p++ {
			if p != me {
				send(p, markerBit)
			}
		}
		for markers < n-1 {
			drain()
			runtime.Gosched()
		}
		markers = 0

		level++
		total := c.AllreduceInt64(int64(len(next)), pure.Sum)
		frontier, next = next, frontier[:0]
		if total == 0 {
			break
		}
	}
	res.Levels = int(level)

	// Verify against the serial oracle and count reached vertices.
	ref := BFSReference(cfg)
	var bad, reached int64
	for i, d := range dist {
		if d != ref[i*n+me] {
			bad++
		}
		if d >= 0 {
			reached++
		}
	}
	res.Exact = c.AllreduceInt64(bad, pure.Sum) == 0
	res.Reached = c.AllreduceInt64(reached, pure.Sum)
	s.Barrier()
	return res, nil
}
