// Package shmemapp holds the PGAS-layer applications: a distributed
// histogram driven entirely by remote atomic adds, and a level-synchronous
// BFS whose frontier exchange rides actor mailboxes.  Both are exactness
// proofs as much as benchmarks — every run recomputes a serial reference
// from the same deterministic generator and the distributed result must
// match it bit-exactly, on one node and across lossy multi-node transports
// alike.
package shmemapp

import (
	"fmt"

	"repro/pure"
)

// splitmix64 is the deterministic value stream both the distributed ranks
// and the serial reference draw from (Steele et al.'s SplitMix64 finalizer;
// the same generator seeds the statsd pipeline).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// histValue is item i of rank rk in round rd: a pure function of the
// configuration seed, so any rank can regenerate any other rank's stream.
func histValue(seed uint64, rk, rd, i int) uint64 {
	return splitmix64(seed ^ uint64(rk)<<40 ^ uint64(rd)<<20 ^ uint64(i))
}

// HistConfig parameterizes one histogram run.  Every rank passes identical
// values.
type HistConfig struct {
	// Bins is the global bin count (default 256).  Bin b lives on rank
	// b % Size at symmetric index b / Size, so every rank owns a strided
	// share and most increments are remote.
	Bins int
	// Items is the per-rank item count per round (default 2048).
	Items int
	// Rounds phases the run (default 3): each round ends with a heap
	// barrier and a bit-exact comparison of every bin against the serial
	// reference, so a lost remote AtomicAdd is caught in the round it
	// happened, not just at the end.
	Rounds int
	// Seed selects the value stream (default 1).
	Seed uint64
	// OnRound, when non-nil, is called on every rank after round rd's
	// verification with that round's cumulative exactness (the live-chaos
	// worker prints these as per-round proof lines).
	OnRound func(rd int, exact bool)
}

func (c *HistConfig) defaults() {
	if c.Bins <= 0 {
		c.Bins = 256
	}
	if c.Items <= 0 {
		c.Items = 2048
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// HistResult is the verified outcome of one histogram run.
type HistResult struct {
	Rounds  int
	Updates int64 // increments issued across all ranks
	Sum     int64 // order-independent checksum: sum of count[b]*(b+1)
	Exact   bool  // every round matched the serial reference on every rank
}

// HistReference computes the serial cumulative histogram after `rounds`
// rounds with `ranks` participating ranks — the oracle the distributed run
// is compared against (exported for the bench/chaos harnesses to prove
// partial totals against).
func HistReference(cfg HistConfig, ranks, rounds int) []int64 {
	cfg.defaults()
	ref := make([]int64, cfg.Bins)
	for rd := 0; rd < rounds; rd++ {
		for rk := 0; rk < ranks; rk++ {
			for i := 0; i < cfg.Items; i++ {
				ref[histValue(cfg.Seed, rk, rd, i)%uint64(cfg.Bins)]++
			}
		}
	}
	return ref
}

// RunHistogram executes the distributed histogram on the world
// communicator: every rank streams its items, folding each into the owning
// rank's bin with a remote AtomicAdd, and every round closes with a heap
// barrier plus a bin-by-bin comparison against the serial reference.
func RunHistogram(r *pure.Rank, cfg HistConfig) (HistResult, error) {
	cfg.defaults()
	c := r.World()
	n, me := c.Size(), c.Rank()
	perRank := (cfg.Bins + n - 1) / n
	s := c.ShmemCreate(int64(perRank)*8+64, 0)
	defer s.FreeHeap()
	binsOff := s.Malloc(int64(perRank) * 8)
	s.Barrier() // bins are zeroed symmetric memory before anyone increments

	res := HistResult{Rounds: cfg.Rounds, Exact: true}
	var issued int64
	for rd := 0; rd < cfg.Rounds; rd++ {
		for i := 0; i < cfg.Items; i++ {
			b := int(histValue(cfg.Seed, me, rd, i) % uint64(cfg.Bins))
			s.AtomicAdd(b%n, binsOff+int64(b/n)*8, 1)
			issued++
		}
		s.Barrier() // every rank's round-rd adds are applied everywhere

		// Verify this round's cumulative totals: each rank checks the bins
		// it owns against the serial oracle, and an Allreduce publishes the
		// global mismatch count.
		ref := HistReference(cfg, n, rd+1)
		var bad int64
		for b := me; b < cfg.Bins; b += n {
			if got := s.AtomicLoad(me, binsOff+int64(b/n)*8); got != ref[b] {
				bad++
			}
		}
		exact := c.AllreduceInt64(bad, pure.Sum) == 0
		res.Exact = res.Exact && exact
		if cfg.OnRound != nil {
			cfg.OnRound(rd, exact)
		}
	}

	// Checksum and totals, computed from the live distributed bins (not
	// the oracle) so the numbers prove what the heap actually holds.
	var sum, count int64
	for b := me; b < cfg.Bins; b += n {
		v := s.AtomicLoad(me, binsOff+int64(b/n)*8)
		sum += v * int64(b+1)
		count += v
	}
	res.Sum = c.AllreduceInt64(sum, pure.Sum)
	res.Updates = c.AllreduceInt64(issued, pure.Sum)
	if total := c.AllreduceInt64(count, pure.Sum); total != res.Updates {
		return res, fmt.Errorf("shmemapp: histogram holds %d counts but %d increments were issued", total, res.Updates)
	}
	s.Barrier()
	return res, nil
}
