package shmemapp

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/pure"
)

// chaosSeeds mirrors the pure-package convention: {1, 2, 3} by default,
// PURE_CHAOS_SEEDS=comma,separated,ints to override.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("PURE_CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad PURE_CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// multiNodeCfg places one rank per node so every remote operation crosses
// the modeled network.
func multiNodeCfg(nodes int) pure.Config {
	return pure.Config{
		NRanks:       nodes,
		Spec:         pure.Spec{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
		RanksPerNode: 1,
		Net:          pure.NetConfig{LatencyNs: 200, BytesPerNs: 10, TimeScale: 10},
		HangTimeout:  30 * time.Second,
	}
}

func runHist(t *testing.T, cfg pure.Config, hcfg HistConfig) HistResult {
	t.Helper()
	var res HistResult
	err := pure.Run(cfg, func(r *pure.Rank) {
		got, herr := RunHistogram(r, hcfg)
		if herr != nil {
			r.Abort(herr)
			return
		}
		if r.ID() == 0 {
			res = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHistogramSingleNode: 4 co-resident ranks; the distributed totals
// must be bit-exact against the serial reference every round, and the
// checksum must equal the oracle's.
func TestHistogramSingleNode(t *testing.T) {
	hcfg := HistConfig{Bins: 128, Items: 1024, Rounds: 3, Seed: 7}
	res := runHist(t, pure.Config{NRanks: 4}, hcfg)
	if !res.Exact {
		t.Fatal("histogram diverged from the serial reference")
	}
	if want := int64(4 * 1024 * 3); res.Updates != want {
		t.Fatalf("updates = %d, want %d", res.Updates, want)
	}
	ref := HistReference(hcfg, 4, 3)
	var want int64
	for b, v := range ref {
		want += v * int64(b+1)
	}
	if res.Sum != want {
		t.Fatalf("checksum = %d, want %d", res.Sum, want)
	}
}

// TestHistogramCrossNode: every increment to a peer bin crosses the
// modeled wire as a FrameShmem atomic add; exactness must survive.
func TestHistogramCrossNode(t *testing.T) {
	res := runHist(t, multiNodeCfg(2), HistConfig{Bins: 64, Items: 200, Rounds: 2, Seed: 11})
	if !res.Exact {
		t.Fatal("cross-node histogram diverged from the serial reference")
	}
}

// TestChaosHistogramLossy is the ISSUE's acceptance gate: ≥2 processes
// (modeled as 2 one-rank nodes) under a 15%-lossy wire, and the histogram
// must still be bit-exact — the link layer recovers every dropped,
// duplicated, or reordered atomic-add frame.
func TestChaosHistogramLossy(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := multiNodeCfg(2)
			cfg.Net.Faults = netsim.Faults{
				Seed: seed, DropProb: 0.15, DupProb: 0.10, ReorderProb: 0.10,
				RetryBackoffNs: 20_000,
			}
			res := runHist(t, cfg, HistConfig{Bins: 32, Items: 60, Rounds: 2, Seed: uint64(seed)})
			if !res.Exact {
				t.Fatal("lossy-wire histogram diverged from the serial reference")
			}
		})
	}
}

func runBFS(t *testing.T, cfg pure.Config, bcfg BFSConfig) BFSResult {
	t.Helper()
	var res BFSResult
	err := pure.Run(cfg, func(r *pure.Rank) {
		got, berr := RunBFS(r, bcfg)
		if berr != nil {
			r.Abort(berr)
			return
		}
		if r.ID() == 0 {
			res = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBFSSingleNode: 4 ranks over mailboxes in one node's shared memory.
// The ring+skip graph is connected (ring edges alone connect it), so every
// vertex must be reached, at oracle-identical distances.
func TestBFSSingleNode(t *testing.T) {
	bcfg := BFSConfig{Vertices: 1024, Degree: 3, Seed: 5}
	res := runBFS(t, pure.Config{NRanks: 4}, bcfg)
	if !res.Exact {
		t.Fatal("BFS distances diverged from the serial reference")
	}
	if res.Reached != int64(bcfg.Vertices) {
		t.Fatalf("reached %d of %d vertices", res.Reached, bcfg.Vertices)
	}
}

// TestBFSSmallMailbox squeezes the frontier exchange through capacity-2
// rings, forcing the drain-on-full path constantly.
func TestBFSSmallMailbox(t *testing.T) {
	res := runBFS(t, pure.Config{NRanks: 4}, BFSConfig{Vertices: 512, Degree: 4, MailboxCap: 2, Seed: 9})
	if !res.Exact {
		t.Fatal("BFS with tiny mailboxes diverged from the serial reference")
	}
}

// TestBFSCrossNode sends the frontier through remote mailboxes (claim =
// remote CAS, fill/publish = remote put/store on one FIFO flow).
func TestBFSCrossNode(t *testing.T) {
	res := runBFS(t, multiNodeCfg(2), BFSConfig{Vertices: 96, Degree: 2, MailboxCap: 8, Seed: 13})
	if !res.Exact {
		t.Fatal("cross-node BFS diverged from the serial reference")
	}
	if res.Reached != 96 {
		t.Fatalf("reached %d of 96 vertices", res.Reached)
	}
}

// TestChaosBFSLossy runs the mailbox frontier exchange over a 15%-lossy
// wire: per-sender FIFO and exactly-once delivery must survive
// retransmission, or distances diverge.
func TestChaosBFSLossy(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := multiNodeCfg(2)
			cfg.Net.Faults = netsim.Faults{
				Seed: seed, DropProb: 0.15, DupProb: 0.10, ReorderProb: 0.10,
				RetryBackoffNs: 20_000,
			}
			res := runBFS(t, cfg, BFSConfig{Vertices: 48, Degree: 2, MailboxCap: 4, Seed: uint64(seed) + 1})
			if !res.Exact {
				t.Fatal("lossy-wire BFS diverged from the serial reference")
			}
		})
	}
}

// TestBFSReferenceConnected pins the oracle itself: ring edges make the
// graph connected, so no vertex may stay at -1.
func TestBFSReferenceConnected(t *testing.T) {
	ref := BFSReference(BFSConfig{Vertices: 300, Degree: 1, Seed: 3})
	for v, d := range ref {
		if d < 0 {
			t.Fatalf("vertex %d unreachable in a ring-connected graph", v)
		}
	}
}
