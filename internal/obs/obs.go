// Package obs is the runtime observability layer: a low-overhead event
// tracer and a metrics registry, with exporters for JSON, the Prometheus
// text exposition format, and the Chrome trace_event format (loadable in
// chrome://tracing and Perfetto).
//
// The paper ships "special debugging and profiling modes to assist in
// application development" (§4.0.1); this package is the analogue for the Go
// runtime.  It is designed so that the instrumented code paths in
// internal/core, internal/queue, internal/collective and internal/sched cost
// a single nil-check when observability is disabled:
//
//	if r.trace != nil { r.trace.Emit(...) }
//
// Tracing uses one single-writer ring buffer of fixed-size Event records per
// rank (no locks, no allocation on the record path; the newest events win
// when the ring wraps).  Metrics are shared atomics that may be snapshotted
// at any time, including while a program is running.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind identifies what an Event records.
type Kind uint8

// Event kinds.  P2P kinds are instant events stamped when the operation is
// posted; PBQStall, the collectives, StealSuccess and TaskExecute are spans
// (Dur > 0 possible).
const (
	// KSendEager is an eager (PureBufferQueue) send post; Arg = bytes.
	KSendEager Kind = iota
	// KSendRendezvous is a rendezvous send post; Arg = bytes.
	KSendRendezvous
	// KSendRemote is an inter-node send; Arg = bytes.
	KSendRemote
	// KRecvEager is an eager receive completion; Arg = bytes.
	KRecvEager
	// KRecvRendezvous is a rendezvous receive completion; Arg = bytes.
	KRecvRendezvous
	// KRecvRemote is an inter-node receive completion; Arg = bytes.
	KRecvRemote
	// KPBQStall is a blocking send that found the PureBufferQueue full;
	// Dur is the time until a slot freed, Arg = bytes.
	KPBQStall
	// KRendezvousHandoff is the sender-side single-copy handoff of a
	// rendezvous payload into the receiver's posted buffer; Arg = bytes.
	KRendezvousHandoff
	// KBarrier / KReduce / KAllreduce / KBcast are collective calls; Dur is
	// the caller's time inside the collective and Arg is the SPTD round
	// number on the small-payload path (0 on the large-payload path).
	KBarrier
	KReduce
	KAllreduce
	KBcast
	// KStealSuccess is one successful SSW-Loop steal; Dur is the time spent
	// executing the stolen allocation.
	KStealSuccess
	// KTaskExecute is one Task.Execute call; Dur is the execution time and
	// Arg the chunk count.
	KTaskExecute
	// KAbortUnwind records a rank being forcibly unwound by runtime
	// poisoning (watchdog, Abort, panic containment); Peer is the peer the
	// rank was blocked on (-1 if none) and Arg the numeric wait kind.
	KAbortUnwind
	// KRmaPut is a one-sided Put post; Peer is the target, Arg = bytes.
	KRmaPut
	// KRmaGet is a one-sided Get post; Peer is the target, Arg = bytes.
	KRmaGet
	// KRmaAcc is a one-sided Accumulate post; Peer is the target, Arg = bytes.
	KRmaAcc
	// KRmaFence is one rank's fence call; Dur is the time spent completing
	// outstanding operations and waiting for the epoch, Arg the fence round.
	KRmaFence

	kindCount
)

var kindNames = [kindCount]string{
	"SendEager", "SendRendezvous", "SendRemote",
	"RecvEager", "RecvRendezvous", "RecvRemote",
	"PBQStall", "RendezvousHandoff",
	"Barrier", "Reduce", "Allreduce", "Bcast",
	"StealSuccess", "TaskExecute", "AbortUnwind",
	"RmaPut", "RmaGet", "RmaAcc", "RmaFence",
}

// String returns the kind's stable name (used in exports).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Category returns the trace category the kind belongs to (p2p, queue,
// collective, sched), used as the Chrome trace "cat" field.
func (k Kind) Category() string {
	switch k {
	case KPBQStall, KRendezvousHandoff:
		return "queue"
	case KBarrier, KReduce, KAllreduce, KBcast:
		return "collective"
	case KStealSuccess, KTaskExecute:
		return "sched"
	case KAbortUnwind:
		return "runtime"
	case KRmaPut, KRmaGet, KRmaAcc, KRmaFence:
		return "rma"
	default:
		return "p2p"
	}
}

// Event is one fixed-size trace record.  Timestamps are nanoseconds since
// the owning Trace was created (monotonic clock).
type Event struct {
	TS   int64 // start time, ns since trace start
	Dur  int64 // span duration in ns; 0 for instant events
	Arg  int64 // kind-specific payload (bytes, round, chunks)
	Rank int32 // recording rank
	Peer int32 // peer rank for p2p kinds, -1 otherwise
	Kind Kind
}

// DefaultRankEvents is the per-rank ring capacity used when the caller does
// not specify one (fixed cost: 40 B/event ≈ 2.5 MiB per rank).
const DefaultRankEvents = 1 << 16

// Trace owns one event ring per rank.  Create it with NewTrace before the
// run, hand it to the runtime, and read it back with Events after the ranks
// have finished (the rings are single-writer and unsynchronized, so a merged
// read is only well-defined once the writers have stopped).
type Trace struct {
	start time.Time
	ranks []RankTrace

	metaMu sync.Mutex
	meta   TraceMeta
	hasMet bool
}

// NewTrace builds a tracer for nranks ranks with perRankEvents ring slots
// each (0 means DefaultRankEvents).  The per-rank capacity rounds up to a
// power of two so the record path can mask the write cursor instead of
// dividing by the capacity.
func NewTrace(nranks, perRankEvents int) *Trace {
	if nranks <= 0 {
		panic(fmt.Sprintf("obs: NewTrace nranks must be positive, got %d", nranks))
	}
	if perRankEvents <= 0 {
		perRankEvents = DefaultRankEvents
	}
	perRankEvents = ceilPow2(perRankEvents)
	t := &Trace{start: time.Now(), ranks: make([]RankTrace, nranks)}
	for i := range t.ranks {
		t.ranks[i] = RankTrace{
			rank:  int32(i),
			start: t.start,
			buf:   make([]Event, perRankEvents),
			mask:  uint64(perRankEvents - 1),
		}
	}
	return t
}

// StartUnixNano returns the wall clock at the trace's relative time zero.
func (t *Trace) StartUnixNano() int64 { return t.start.UnixNano() }

// SetMeta attaches recording-time context (node identity, rank placement,
// clock samples, transport link events) carried into the binary dump.  The
// runtime calls it once, after the ranks have stopped; StartUnixNano is
// filled by the trace itself.
func (t *Trace) SetMeta(m TraceMeta) {
	t.metaMu.Lock()
	t.meta = m
	t.hasMet = true
	t.metaMu.Unlock()
}

// Meta returns the attached metadata, with StartUnixNano always filled; a
// trace with no SetMeta call reports an unknown node (-1).
func (t *Trace) Meta() TraceMeta {
	t.metaMu.Lock()
	m := t.meta
	has := t.hasMet
	t.metaMu.Unlock()
	if !has {
		m = TraceMeta{Node: -1}
	}
	m.StartUnixNano = t.start.UnixNano()
	return m
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ringCounts is the single home of the ring wraparound arithmetic: given a
// write cursor of n total events ever recorded into a ring of the given
// capacity, it returns how many events are retained and how many were
// overwritten.  RankTrace.Len and Trace.Dropped both derive from it.
func ringCounts(n uint64, capacity int) (retained int, dropped int64) {
	if n <= uint64(capacity) {
		return int(n), 0
	}
	return capacity, int64(n - uint64(capacity))
}

// NRanks returns the number of per-rank rings.
func (t *Trace) NRanks() int { return len(t.ranks) }

// Rank returns rank i's ring.  Exactly one goroutine (the rank itself) may
// record into it.
func (t *Trace) Rank(i int) *RankTrace { return &t.ranks[i] }

// Now returns the trace-relative timestamp in nanoseconds.
func (t *Trace) Now() int64 { return int64(time.Since(t.start)) }

// Len returns the total number of retained events across all ranks.
func (t *Trace) Len() int {
	n := 0
	for i := range t.ranks {
		n += t.ranks[i].Len()
	}
	return n
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Trace) Dropped() int64 {
	var d int64
	for i := range t.ranks {
		rt := &t.ranks[i]
		_, dropped := ringCounts(rt.n, len(rt.buf))
		d += dropped
	}
	return d
}

// Events returns every retained event, merged across ranks and sorted by
// start time.  Call only after the recording ranks have stopped.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, t.Len())
	for i := range t.ranks {
		out = append(out, t.ranks[i].Events()...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].TS != out[b].TS {
			return out[a].TS < out[b].TS
		}
		return out[a].Rank < out[b].Rank
	})
	return out
}

// RankTrace is one rank's single-writer event ring.  Only the owning rank
// may call Emit/EmitSpan/Now; any goroutine may read Events after the writer
// has stopped.  The struct is padded on both sides so adjacent ranks' write
// cursors never share a cacheline: trailing padding alone would still let
// rank i's cursor sit on the same line as rank i+1's leading fields when the
// backing array is not cacheline-aligned.
type RankTrace struct {
	_     [64]byte
	rank  int32
	start time.Time
	buf   []Event
	mask  uint64 // len(buf)-1; capacity is always a power of two
	n     uint64 // total events ever recorded (write cursor)
	_     [64]byte
}

// Now returns the trace-relative timestamp in nanoseconds (use as the start
// argument of EmitSpan).
func (rt *RankTrace) Now() int64 { return int64(time.Since(rt.start)) }

// Emit records an instant event.
func (rt *RankTrace) Emit(k Kind, peer int32, arg int64) {
	rt.put(Event{TS: rt.Now(), Arg: arg, Rank: rt.rank, Peer: peer, Kind: k})
}

// EmitSpan records a span event that began at the trace-relative timestamp
// start (obtained from Now) and ends now.
func (rt *RankTrace) EmitSpan(k Kind, peer int32, arg int64, start int64) {
	now := rt.Now()
	rt.put(Event{TS: start, Dur: now - start, Arg: arg, Rank: rt.rank, Peer: peer, Kind: k})
}

// EmitDur records a span event that ended now and lasted dur nanoseconds
// (for callers that measured the duration themselves).
func (rt *RankTrace) EmitDur(k Kind, peer int32, arg int64, dur int64) {
	now := rt.Now()
	rt.put(Event{TS: now - dur, Dur: dur, Arg: arg, Rank: rt.rank, Peer: peer, Kind: k})
}

func (rt *RankTrace) put(e Event) {
	rt.buf[rt.n&rt.mask] = e
	rt.n++
}

// Len returns the number of retained events (≤ ring capacity).
func (rt *RankTrace) Len() int {
	retained, _ := ringCounts(rt.n, len(rt.buf))
	return retained
}

// Events returns the retained events in record order (oldest first).
func (rt *RankTrace) Events() []Event {
	out := make([]Event, 0, rt.Len())
	if rt.n <= uint64(len(rt.buf)) {
		return append(out, rt.buf[:rt.n]...)
	}
	head := rt.n & rt.mask // oldest retained slot
	out = append(out, rt.buf[head:]...)
	out = append(out, rt.buf[:head]...)
	return out
}
