package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestRankTraceRecordAndOrder(t *testing.T) {
	tr := NewTrace(2, 8)
	r0 := tr.Rank(0)
	r1 := tr.Rank(1)
	r0.Emit(KSendEager, 1, 64)
	r1.Emit(KRecvEager, 0, 64)
	start := r0.Now()
	r0.EmitSpan(KBarrier, -1, 3, start)

	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("Events len = %d, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events not time-sorted: %v", evs)
		}
	}
	last := evs[len(evs)-1]
	if last.Kind != KBarrier || last.Arg != 3 || last.Peer != -1 {
		t.Fatalf("span event mangled: %+v", last)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
}

func TestRankTraceWraparound(t *testing.T) {
	tr := NewTrace(1, 4)
	rt := tr.Rank(0)
	for i := 0; i < 10; i++ {
		rt.Emit(KSendEager, -1, int64(i))
	}
	if rt.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rt.Len())
	}
	evs := rt.Events()
	want := []int64{6, 7, 8, 9} // newest events win
	for i, e := range evs {
		if e.Arg != want[i] {
			t.Fatalf("retained args = %v at %d, want %v", e.Arg, i, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "" || k.Category() == "" {
			t.Fatalf("kind %d missing name or category", k)
		}
	}
}

func TestMetricsConcurrentAndSnapshot(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("pure_test_total")
	g := m.Gauge("pure_test_depth")
	h := m.Histogram("pure_test_latency_ns", []int64{10, 100, 1000})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Max(int64(w*1000 + i))
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()

	s := m.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 4000 {
		t.Fatalf("counter snapshot wrong: %+v", s.Counters)
	}
	if s.Gauges[0].Value != 3999 {
		t.Fatalf("gauge max = %d, want 3999", s.Gauges[0].Value)
	}
	hs := s.Histograms[0]
	if hs.Count != 4000 {
		t.Fatalf("histogram count = %d, want 4000", hs.Count)
	}
	var total int64
	for _, n := range hs.Counts {
		total += n
	}
	if total != hs.Count {
		t.Fatalf("bucket counts sum %d != count %d", total, hs.Count)
	}
	// 0..9 → ≤10 bucket has 10*4 observations... bounds are inclusive, so
	// v ≤ 10 lands in bucket 0: values 0..10 = 11 per goroutine.
	if hs.Counts[0] != 44 {
		t.Fatalf("bucket[≤10] = %d, want 44", hs.Counts[0])
	}
}

func TestMetricsHandleStability(t *testing.T) {
	m := NewMetrics()
	if m.Counter("a_b") != m.Counter("a_b") {
		t.Fatal("counter handle not stable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	m.Counter("9bad name")
}

func TestPrometheusRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Counter("pure_sends_eager_total").Add(123)
	m.Counter("pure_bytes_sent_total").Add(456789)
	m.Gauge("pure_pbq_depth").Set(7)
	h := m.Histogram("pure_steal_latency_ns", []int64{100, 1000, 10000})
	for _, v := range []int64{50, 150, 1500, 999999, 42} {
		h.Observe(v)
	}
	want := m.Snapshot()

	var buf bytes.Buffer
	if err := want.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\ntext:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	m := NewMetrics()
	m.Counter("x_total").Add(5)
	var buf bytes.Buffer
	if err := m.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if len(round.Counters) != 1 || round.Counters[0].Value != 5 {
		t.Fatalf("JSON round trip mangled: %+v", round)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace(2, 16)
	tr.Rank(0).Emit(KSendEager, 1, 64)
	start := tr.Rank(1).Now()
	tr.Rank(1).EmitSpan(KAllreduce, -1, 1, start)

	var buf bytes.Buffer
	nodeOf := func(rank int32) int { return int(rank) / 2 }
	if err := WriteChromeTrace(&buf, tr.Events(), nodeOf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	for _, e := range doc.TraceEvents {
		phases = append(phases, e["ph"].(string))
	}
	// 2 thread_name metadata records + 1 instant + 1 complete event.
	wantPh := map[string]int{"M": 2, "i": 1, "X": 1}
	gotPh := map[string]int{}
	for _, p := range phases {
		gotPh[p]++
	}
	if !reflect.DeepEqual(wantPh, gotPh) {
		t.Fatalf("phases = %v, want %v", gotPh, wantPh)
	}
}
