package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// fakeNode builds one per-node monitor the way the runtime does: a registry
// with plain and peer-labeled series, a rank-state source, and a link-state
// source.
func fakeNode(node int, peers []int) *obs.Monitor {
	reg := obs.NewMetrics()
	reg.Counter("pure_sends_eager_total").Add(int64(10 * (node + 1)))
	for _, p := range peers {
		l := obs.Label{Key: "peer", Value: itoa(p)}
		reg.CounterL("pure_link_frames_sent_total", l).Add(int64(100*node + p))
		reg.GaugeL("pure_link_up", l).Set(1)
	}
	mon := obs.NewMonitor(reg, func() []obs.RankState {
		return []obs.RankState{{Rank: 2 * node, State: "running"}, {Rank: 2*node + 1, State: "done"}}
	})
	mon.SetLinks(func() []obs.LinkState {
		out := make([]obs.LinkState, 0, len(peers))
		for _, p := range peers {
			out = append(out, obs.LinkState{Peer: p, Up: true, EverUp: true, FramesSent: int64(100*node + p)})
		}
		return out
	})
	return mon
}

func itoa(v int) string {
	return string(rune('0' + v))
}

// TestAggregatorTwoNodeRoundTrip serves two fake node monitors, aggregates
// them, and checks the merged scrape parses back with per-node labels and
// the /cluster view carries both nodes' ranks and links.
func TestAggregatorTwoNodeRoundTrip(t *testing.T) {
	s0 := httptest.NewServer(fakeNode(0, []int{1}).Handler())
	defer s0.Close()
	s1 := httptest.NewServer(fakeNode(1, []int{0}).Handler())
	defer s1.Close()

	ag := New([]Node{
		{Node: 1, Addr: strings.TrimPrefix(s1.URL, "http://")},
		{Node: 0, Addr: strings.TrimPrefix(s0.URL, "http://")},
	}, 0)
	srv := httptest.NewServer(ag.Handler())
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	// The merged exposition must round-trip through the strict parser: valid
	// names, valid (node-augmented) label sets, one TYPE line per family.
	snap, err := obs.ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("merged scrape does not parse: %v\nbody:\n%s", err, body)
	}
	want := map[string]int64{
		`pure_cluster_node_up{node="0"}`:                 1,
		`pure_cluster_node_up{node="1"}`:                 1,
		`pure_sends_eager_total{node="0"}`:               10,
		`pure_sends_eager_total{node="1"}`:               20,
		`pure_link_frames_sent_total{node="0",peer="1"}`: 1,
		`pure_link_frames_sent_total{node="1",peer="0"}`: 100,
		`pure_link_up{node="0",peer="1"}`:                1,
	}
	got := map[string]int64{}
	for _, c := range snap.Counters {
		got[c.Name] = c.Value
	}
	for _, g := range snap.Gauges {
		got[g.Name] = g.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("merged scrape: %s = %d, want %d", name, got[name], v)
		}
	}
	if n := strings.Count(body, "# TYPE pure_sends_eager_total counter"); n != 1 {
		t.Errorf("TYPE line for shared family emitted %d times, want 1", n)
	}

	var view ClusterView
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/cluster")), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Nodes) != 2 {
		t.Fatalf("cluster view has %d nodes, want 2", len(view.Nodes))
	}
	for i, ns := range view.Nodes {
		if ns.Node != i || !ns.Alive {
			t.Fatalf("node entry %d = %+v, want node %d alive", i, ns, i)
		}
		if len(ns.Ranks) != 2 || len(ns.Links) != 1 {
			t.Fatalf("node %d: %d ranks, %d links; want 2/1", i, len(ns.Ranks), len(ns.Links))
		}
		if !ns.Links[0].Up {
			t.Fatalf("node %d link not up: %+v", i, ns.Links[0])
		}
	}
}

// TestAggregatorReportsDeadNode points one entry at a closed listener: the
// merged scrape must still succeed, with node_up 0 and alive=false.
func TestAggregatorReportsDeadNode(t *testing.T) {
	s0 := httptest.NewServer(fakeNode(0, nil).Handler())
	defer s0.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close() // connection refused from now on

	ag := New([]Node{
		{Node: 0, Addr: strings.TrimPrefix(s0.URL, "http://")},
		{Node: 1, Addr: deadAddr},
	}, 0)
	srv := httptest.NewServer(ag.Handler())
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, `pure_cluster_node_up{node="0"} 1`) ||
		!strings.Contains(body, `pure_cluster_node_up{node="1"} 0`) {
		t.Fatalf("node_up gauges wrong:\n%s", body)
	}
	if _, err := obs.ParsePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("merged scrape with dead node does not parse: %v", err)
	}

	var view ClusterView
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/cluster")), &view); err != nil {
		t.Fatal(err)
	}
	if !view.Nodes[0].Alive {
		t.Fatal("live node reported dead")
	}
	if view.Nodes[1].Alive || view.Nodes[1].Err == "" {
		t.Fatalf("dead node entry = %+v, want alive=false with an error", view.Nodes[1])
	}
}

func TestTagNode(t *testing.T) {
	cases := [][2]string{
		{`foo_total 42`, `foo_total{node="3"} 42`},
		{`foo_total{peer="1"} 42`, `foo_total{node="3",peer="1"} 42`},
		{`h_bucket{le="+Inf"} 7`, `h_bucket{node="3",le="+Inf"} 7`},
		// Label values may contain spaces and escaped quotes; only the first
		// '{' matters.
		{`g{k="a b\"c"} 1`, `g{node="3",k="a b\"c"} 1`},
	}
	for _, c := range cases {
		if got := tagNode(c[0], 3); got != c[1] {
			t.Errorf("tagNode(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
