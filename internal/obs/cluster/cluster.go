// Package cluster aggregates the per-node runtime monitors of a
// multi-process Pure job into one cluster-wide observability endpoint.
//
// Every node of a launched job serves its own obs.Monitor (Prometheus
// /metrics, JSON /ranks and /links).  The aggregator — run by the launcher,
// which knows every node's monitor address — scrapes all of them on demand
// and serves:
//
//	/metrics  the union of every node's scrape, each series tagged with a
//	          node="<id>" label, plus pure_cluster_node_up per node
//	/cluster  one JSON document with per-node liveness, rank wait states,
//	          and transport link telemetry (the dying-link view)
//
// A node that cannot be scraped is reported down (pure_cluster_node_up 0,
// "alive": false) rather than failing the whole aggregation: the cluster
// view matters most while something is wrong.
package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Node names one worker's monitor endpoint.
type Node struct {
	Node int    // node id in the job
	Addr string // host:port of the node's monitor listener
}

// Aggregator scrapes a fixed set of per-node monitors.  Safe for concurrent
// use; every request fans out fresh scrapes (no caching — the point is a
// live view).
type Aggregator struct {
	nodes  []Node
	client *http.Client
}

// New builds an aggregator over the given nodes.  timeout bounds each
// per-node scrape (0 means 2s).
func New(nodes []Node, timeout time.Duration) *Aggregator {
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	ns := make([]Node, len(nodes))
	copy(ns, nodes)
	sort.Slice(ns, func(i, j int) bool { return ns[i].Node < ns[j].Node })
	return &Aggregator{nodes: ns, client: &http.Client{Timeout: timeout}}
}

// Handler returns the aggregator's HTTP handler (/, /metrics, /cluster).
func (ag *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", ag.serveIndex)
	mux.HandleFunc("/metrics", ag.serveMetrics)
	mux.HandleFunc("/cluster", ag.serveCluster)
	return mux
}

func (ag *Aggregator) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "pure cluster monitor over %d nodes\n\n", len(ag.nodes))
	fmt.Fprintln(w, "/metrics  merged Prometheus scrape, node=\"<id>\" label per series")
	fmt.Fprintln(w, "/cluster  JSON per-node liveness, rank states, link telemetry")
	for _, n := range ag.nodes {
		fmt.Fprintf(w, "\nnode %d: http://%s/", n.Node, n.Addr)
	}
	fmt.Fprintln(w)
}

// get fetches one path from one node's monitor.
func (ag *Aggregator) get(n Node, path string) ([]byte, error) {
	resp, err := ag.client.Get("http://" + n.Addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s%s: HTTP %d", n.Addr, path, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// serveMetrics scrapes every node concurrently and writes the merged
// exposition: comment lines deduplicated by metric family, every sample line
// tagged with the source node's label.
func (ag *Aggregator) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	type scrape struct {
		body []byte
		err  error
	}
	results := make([]scrape, len(ag.nodes))
	var wg sync.WaitGroup
	for i, n := range ag.nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			results[i].body, results[i].err = ag.get(n, "/metrics")
		}(i, n)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# TYPE pure_cluster_node_up gauge")
	for i, n := range ag.nodes {
		up := 1
		if results[i].err != nil {
			up = 0
		}
		fmt.Fprintf(bw, "pure_cluster_node_up{node=%q} %d\n", strconv.Itoa(n.Node), up)
	}
	commented := map[string]bool{} // family comment lines already emitted
	for i, n := range ag.nodes {
		if results[i].err != nil {
			continue
		}
		sc := bufio.NewScanner(strings.NewReader(string(results[i].body)))
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				// "# TYPE <name> <kind>" / "# HELP <name> ...": emit once
				// across all nodes — the union shares each family.
				if !commented[line] {
					commented[line] = true
					fmt.Fprintln(bw, line)
				}
				continue
			}
			fmt.Fprintln(bw, tagNode(line, n.Node))
		}
	}
	bw.Flush()
}

// tagNode injects a node="<id>" label into one exposition sample line.  The
// first '{' in a sample line always opens the label set (metric names cannot
// contain braces; escaped label values only appear after it).
func tagNode(line string, node int) string {
	label := `node="` + strconv.Itoa(node) + `"`
	if i := strings.IndexByte(line, '{'); i >= 0 {
		return line[:i+1] + label + "," + line[i+1:]
	}
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i] + "{" + label + "}" + line[i:]
	}
	return line // malformed; pass through untouched
}

// NodeStatus is one node's entry in the /cluster view.
type NodeStatus struct {
	Node  int    `json:"node"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	// Err explains a failed scrape (connection refused once the process
	// died, timeouts while it hangs, ...).
	Err string `json:"err,omitempty"`
	// ScrapeMs is how long the node took to answer.
	ScrapeMs int64 `json:"scrape_ms"`
	// Ranks and Links are the node's own /ranks and /links views.
	Ranks []obs.RankState `json:"ranks,omitempty"`
	Links []obs.LinkState `json:"links,omitempty"`
}

// ClusterView is the /cluster response body.
type ClusterView struct {
	Time  string       `json:"time"`
	Nodes []NodeStatus `json:"nodes"`
}

// View scrapes every node's rank and link state once.
func (ag *Aggregator) View() ClusterView {
	view := ClusterView{
		Time:  time.Now().Format(time.RFC3339Nano),
		Nodes: make([]NodeStatus, len(ag.nodes)),
	}
	var wg sync.WaitGroup
	for i, n := range ag.nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			st := NodeStatus{Node: n.Node, Addr: n.Addr}
			t0 := time.Now()
			rb, err := ag.get(n, "/ranks")
			st.ScrapeMs = time.Since(t0).Milliseconds()
			if err != nil {
				st.Err = err.Error()
				view.Nodes[i] = st
				return
			}
			var rv obs.RanksView
			if err := json.Unmarshal(rb, &rv); err != nil {
				st.Err = "bad /ranks payload: " + err.Error()
				view.Nodes[i] = st
				return
			}
			st.Alive = true
			st.Ranks = rv.Ranks
			if lb, err := ag.get(n, "/links"); err == nil {
				var lv obs.LinksView
				if json.Unmarshal(lb, &lv) == nil {
					st.Links = lv.Links
				}
			}
			view.Nodes[i] = st
		}(i, n)
	}
	wg.Wait()
	return view
}

func (ag *Aggregator) serveCluster(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ag.View())
}
