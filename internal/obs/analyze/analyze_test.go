package analyze

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// ev is a compact Event constructor for synthetic traces.
func ev(k obs.Kind, rank, peer int32, ts, dur, arg int64) obs.Event {
	return obs.Event{TS: ts, Dur: dur, Arg: arg, Rank: rank, Peer: peer, Kind: k}
}

func TestMatchEagerPair(t *testing.T) {
	events := []obs.Event{
		ev(obs.KSendEager, 0, 1, 100, 0, 8),
		ev(obs.KRecvEager, 1, 0, 350, 0, 8),
	}
	a := Run(events, 2, Options{})
	if a.TotalMatched != 1 || a.TotalUnmatched != 0 {
		t.Fatalf("matched=%d unmatched=%d, want 1/0", a.TotalMatched, a.TotalUnmatched)
	}
	if len(a.Paths) != 1 || a.Paths[0].Path != PathEager {
		t.Fatalf("paths = %+v, want one eager entry", a.Paths)
	}
	ps := a.Paths[0]
	if ps.Latency.N != 1 || ps.Latency.Min != 250 || ps.Latency.Max != 250 {
		t.Fatalf("latency hist = %+v, want single 250ns observation", ps.Latency)
	}
	if ps.Bytes != 8 {
		t.Fatalf("bytes = %d, want 8", ps.Bytes)
	}
	if got := a.MatchRate(); got != 1 {
		t.Fatalf("MatchRate = %v, want 1", got)
	}
}

func TestMatchFIFOOrderPerPair(t *testing.T) {
	// Two sends 0->1; receives complete in order. FIFO matching must pair
	// first send with first recv (latency 100) and second with second (300).
	events := []obs.Event{
		ev(obs.KSendEager, 0, 1, 0, 0, 8),
		ev(obs.KSendEager, 0, 1, 50, 0, 16),
		ev(obs.KRecvEager, 1, 0, 100, 0, 8),
		ev(obs.KRecvEager, 1, 0, 350, 0, 16),
	}
	a := Run(events, 2, Options{})
	ps := a.Paths[0]
	if ps.Matched != 2 {
		t.Fatalf("matched = %d, want 2", ps.Matched)
	}
	if ps.Latency.Min != 100 || ps.Latency.Max != 300 {
		t.Fatalf("latencies min=%d max=%d, want 100/300", ps.Latency.Min, ps.Latency.Max)
	}
}

func TestUnmatchedListedNotDropped(t *testing.T) {
	events := []obs.Event{
		ev(obs.KSendEager, 0, 1, 0, 0, 8),      // never received
		ev(obs.KRecvRendezvous, 2, 3, 5, 0, 9), // never sent
	}
	a := Run(events, 4, Options{})
	if a.TotalMatched != 0 || a.TotalUnmatched != 2 {
		t.Fatalf("matched=%d unmatched=%d, want 0/2", a.TotalMatched, a.TotalUnmatched)
	}
	if len(a.Unmatched) != 2 {
		t.Fatalf("unmatched list = %+v, want 2 entries", a.Unmatched)
	}
	ops := map[string]bool{}
	for _, u := range a.Unmatched {
		ops[u.Op] = true
	}
	if !ops["send"] || !ops["recv"] {
		t.Fatalf("unmatched ops = %+v, want both send and recv", a.Unmatched)
	}
	if a.MatchRate() != 0 {
		t.Fatalf("MatchRate = %v, want 0", a.MatchRate())
	}
}

func TestUnmatchedListCapped(t *testing.T) {
	var events []obs.Event
	for i := 0; i < 10; i++ {
		events = append(events, ev(obs.KSendEager, 0, 1, int64(i), 0, 8))
	}
	a := Run(events, 2, Options{MaxUnmatched: 3})
	if a.TotalUnmatched != 10 {
		t.Fatalf("TotalUnmatched = %d, want exact 10 despite cap", a.TotalUnmatched)
	}
	if len(a.Unmatched) != 3 {
		t.Fatalf("listed = %d, want capped at 3", len(a.Unmatched))
	}
}

func TestRendezvousDecomposition(t *testing.T) {
	events := []obs.Event{
		ev(obs.KSendRendezvous, 0, 1, 0, 0, 65536),
		ev(obs.KRendezvousHandoff, 0, 1, 400, 0, 65536),
		ev(obs.KRecvRendezvous, 1, 0, 1000, 0, 65536),
	}
	a := Run(events, 2, Options{})
	ps := a.Paths[0]
	if ps.Path != PathRendezvous || ps.Matched != 1 {
		t.Fatalf("paths = %+v", a.Paths)
	}
	if ps.QueueWaitNs != 400 || ps.TransferNs != 600 {
		t.Fatalf("queue-wait=%d transfer=%d, want 400/600", ps.QueueWaitNs, ps.TransferNs)
	}
}

func TestCollectiveSkewRounds(t *testing.T) {
	// Two allreduce rounds across 4 ranks on one node. Round 1: rank 3 is
	// 900ns late. Round 2: rank 0 is 200ns late.
	events := []obs.Event{
		ev(obs.KAllreduce, 0, -1, 100, 1000, 1),
		ev(obs.KAllreduce, 1, -1, 150, 950, 1),
		ev(obs.KAllreduce, 2, -1, 120, 980, 1),
		ev(obs.KAllreduce, 3, -1, 1000, 100, 1),
		ev(obs.KAllreduce, 1, -1, 2000, 300, 2),
		ev(obs.KAllreduce, 2, -1, 2010, 290, 2),
		ev(obs.KAllreduce, 3, -1, 2020, 280, 2),
		ev(obs.KAllreduce, 0, -1, 2200, 100, 2),
	}
	a := Run(events, 4, Options{})
	c := a.Collectives
	if c.Calls != 8 || len(c.Rounds) != 2 {
		t.Fatalf("calls=%d rounds=%d, want 8/2", c.Calls, len(c.Rounds))
	}
	r1 := c.Rounds[0]
	if r1.Round != 1 || r1.ArrivalSpreadNs != 900 || r1.LastRank != 3 || r1.Ranks != 4 {
		t.Fatalf("round 1 = %+v", r1)
	}
	if r1.SlowestRank != 0 || r1.MaxDurNs != 1000 {
		t.Fatalf("round 1 slowest = %+v", r1)
	}
	r2 := c.Rounds[1]
	if r2.Round != 2 || r2.ArrivalSpreadNs != 200 || r2.LastRank != 0 {
		t.Fatalf("round 2 = %+v", r2)
	}
	if c.MaxSpreadNs != 900 || c.MeanSpreadNs != 550 {
		t.Fatalf("spread max=%d mean=%d, want 900/550", c.MaxSpreadNs, c.MeanSpreadNs)
	}
	if len(c.Stragglers) == 0 || c.Stragglers[0].Rank != 3 && c.Stragglers[0].Rank != 0 {
		t.Fatalf("stragglers = %+v", c.Stragglers)
	}
}

func TestCollectiveLargePathGroupedByOccurrence(t *testing.T) {
	// Arg == 0 marks the large-payload path: two consecutive calls on each
	// rank must form two rounds, not one giant group.
	events := []obs.Event{
		ev(obs.KReduce, 0, -1, 0, 10, 0),
		ev(obs.KReduce, 1, -1, 5, 10, 0),
		ev(obs.KReduce, 0, -1, 100, 10, 0),
		ev(obs.KReduce, 1, -1, 130, 10, 0),
	}
	a := Run(events, 2, Options{})
	if len(a.Collectives.Rounds) != 2 {
		t.Fatalf("rounds = %+v, want 2 occurrence groups", a.Collectives.Rounds)
	}
	if !a.Collectives.Rounds[0].Large || a.Collectives.Rounds[0].ArrivalSpreadNs != 5 {
		t.Fatalf("round 0 = %+v", a.Collectives.Rounds[0])
	}
	if a.Collectives.Rounds[1].ArrivalSpreadNs != 30 {
		t.Fatalf("round 1 = %+v", a.Collectives.Rounds[1])
	}
}

func TestCollectiveRoundsSplitByNode(t *testing.T) {
	// Same SPTD round number on two nodes must form two groups.
	events := []obs.Event{
		ev(obs.KBarrier, 0, -1, 0, 10, 1),
		ev(obs.KBarrier, 1, -1, 8, 2, 1),
		ev(obs.KBarrier, 2, -1, 0, 10, 1),
		ev(obs.KBarrier, 3, -1, 4, 6, 1),
	}
	a := Run(events, 4, Options{NodeOf: func(r int32) int { return int(r) / 2 }})
	if len(a.Collectives.Rounds) != 2 {
		t.Fatalf("rounds = %+v, want one per node", a.Collectives.Rounds)
	}
}

func TestPBQBackpressureRanking(t *testing.T) {
	events := []obs.Event{
		ev(obs.KPBQStall, 0, 1, 0, 100, 8),
		ev(obs.KPBQStall, 0, 1, 200, 300, 8),
		ev(obs.KPBQStall, 2, 3, 50, 150, 8),
	}
	a := Run(events, 4, Options{})
	if len(a.PBQ) != 2 {
		t.Fatalf("pbq = %+v, want 2 pairs", a.PBQ)
	}
	top := a.PBQ[0]
	if top.Src != 0 || top.Dst != 1 || top.Stalls != 2 || top.TotalNs != 400 || top.MaxNs != 300 {
		t.Fatalf("top pair = %+v", top)
	}
}

func TestRankBreakdown(t *testing.T) {
	events := []obs.Event{
		ev(obs.KTaskExecute, 0, -1, 0, 500, 4), // 4 chunks executed
		ev(obs.KPBQStall, 0, 1, 600, 200, 8),
		ev(obs.KSendEager, 0, 1, 850, 0, 8),
		ev(obs.KStealSuccess, 1, 0, 100, 300, 2), // rank 1 stole 2 chunks
		ev(obs.KRecvEager, 1, 0, 900, 0, 8),
	}
	a := Run(events, 2, Options{})
	r0 := a.Ranks[0]
	if r0.TaskNs != 500 || r0.TasksExecuted != 1 || r0.TaskChunks != 4 {
		t.Fatalf("rank0 task accounting = %+v", r0)
	}
	if r0.BlockedNs != 200 || r0.Sends != 1 {
		t.Fatalf("rank0 = %+v", r0)
	}
	// Wall = 0..850; other = 850 - 200 - 500 = 150.
	if r0.WallNs != 850 || r0.OtherNs != 150 {
		t.Fatalf("rank0 wall=%d other=%d, want 850/150", r0.WallNs, r0.OtherNs)
	}
	r1 := a.Ranks[1]
	if r1.ChunksStolen != 2 || r1.StealNs != 300 || r1.Recvs != 1 {
		t.Fatalf("rank1 = %+v", r1)
	}
}

func TestCriticalPathHopsToSender(t *testing.T) {
	// Rank 1 computes 0..100, then idles until a message from rank 0 (posted
	// at 400) arrives at 600, then computes until 1000.  The critical path
	// must hop to rank 0 (which computed 0..400 then sent) rather than charge
	// the idle gap to rank 1.
	events := []obs.Event{
		ev(obs.KTaskExecute, 1, -1, 0, 100, 1),
		ev(obs.KTaskExecute, 0, -1, 0, 400, 1),
		ev(obs.KSendEager, 0, 1, 400, 0, 8),
		ev(obs.KRecvEager, 1, 0, 600, 0, 8),
		ev(obs.KTaskExecute, 1, -1, 600, 400, 1),
	}
	a := Run(events, 2, Options{})
	cp := a.Critical
	if cp.LengthNs != 1000 {
		t.Fatalf("length = %d, want 1000", cp.LengthNs)
	}
	if cp.Hops != 1 || cp.InFlightNs != 200 {
		t.Fatalf("hops=%d inflight=%d, want 1/200", cp.Hops, cp.InFlightNs)
	}
	if cp.EndRank != 1 || cp.StartRank != 0 {
		t.Fatalf("path %d -> %d, want 0 -> 1", cp.StartRank, cp.EndRank)
	}
	var ns0, ns1 int64
	for _, rs := range cp.RankNs {
		switch rs.Rank {
		case 0:
			ns0 = rs.Ns
		case 1:
			ns1 = rs.Ns
		}
	}
	if ns0 != 400 || ns1 != 400 {
		t.Fatalf("rank shares = 0:%d 1:%d, want 400/400", ns0, ns1)
	}
}

func TestCriticalPathStaysLocalWhenBusy(t *testing.T) {
	// The receiver was busy right up to the receive, so the local chain (not
	// the message edge) is critical: no hops.
	events := []obs.Event{
		ev(obs.KSendEager, 0, 1, 10, 0, 8),
		ev(obs.KTaskExecute, 1, -1, 0, 500, 1),
		ev(obs.KRecvEager, 1, 0, 500, 0, 8),
		ev(obs.KTaskExecute, 1, -1, 500, 500, 1),
	}
	a := Run(events, 2, Options{})
	if a.Critical.Hops != 0 {
		t.Fatalf("hops = %d, want 0 (receiver never idle)", a.Critical.Hops)
	}
	if a.Critical.LengthNs != 1000 {
		t.Fatalf("length = %d, want 1000", a.Critical.LengthNs)
	}
}

func TestRunEmptyAndUnsorted(t *testing.T) {
	a := Run(nil, 2, Options{})
	if a.Events != 0 || a.TotalMatched != 0 || len(a.Ranks) != 2 {
		t.Fatalf("empty analysis = %+v", a)
	}
	// Reversed input must produce the same matching as sorted input.
	events := []obs.Event{
		ev(obs.KRecvEager, 1, 0, 350, 0, 8),
		ev(obs.KSendEager, 0, 1, 100, 0, 8),
	}
	a = Run(events, 2, Options{})
	if a.TotalMatched != 1 {
		t.Fatalf("unsorted input: matched = %d, want 1", a.TotalMatched)
	}
}

func TestHistQuantileAndMean(t *testing.T) {
	h := newHist()
	for _, v := range []int64{100, 200, 300, 400} {
		h.observe(v)
	}
	if h.N != 4 || h.Mean() != 250 {
		t.Fatalf("hist = %+v", h)
	}
	if q := h.Quantile(0.5); q < 200 {
		t.Fatalf("p50 bound = %d, want >= 200", q)
	}
	if q := h.Quantile(0.99); q < 400 {
		t.Fatalf("p99 bound = %d, want >= 400", q)
	}
	empty := newHist()
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatalf("empty hist mean/quantile must be 0")
	}
}

func TestWriteTextReport(t *testing.T) {
	events := []obs.Event{
		ev(obs.KSendEager, 0, 1, 100, 0, 8),
		ev(obs.KRecvEager, 1, 0, 350, 0, 8),
		ev(obs.KSendRendezvous, 1, 0, 400, 0, 65536), // unmatched
		ev(obs.KBarrier, 0, -1, 500, 100, 1),
		ev(obs.KBarrier, 1, -1, 550, 50, 1),
		ev(obs.KPBQStall, 0, 1, 700, 50, 8),
	}
	a := Run(events, 2, Options{})
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"matched messages: 1",
		"unmatched: 1",
		"eager",
		"collective skew",
		"PBQ backpressure",
		"per-rank breakdown",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
