package analyze

import (
	"fmt"
	"io"
	"time"
)

// WriteText renders the analysis as a human-readable report.  The layout is
// stable enough to grep in CI ("matched messages:" carries the total), but
// not a machine interface — use the JSON encoding of Analysis for that.
func (a *Analysis) WriteText(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("trace: %d ranks, %d events, span %v\n", a.NRanks, a.Events, ns(a.SpanNs))
	if a.Dropped > 0 {
		p("WARNING: %d events lost to ring wraparound; matching below is incomplete\n", a.Dropped)
	}
	p("matched messages: %d (%.2f%% of sends), unmatched: %d\n",
		a.TotalMatched, 100*a.MatchRate(), a.TotalUnmatched)

	p("\n== message paths ==\n")
	for _, ps := range a.Paths {
		p("%-10s sends=%-6d recvs=%-6d matched=%-6d bytes=%-10d", ps.Path, ps.Sends, ps.Recvs, ps.Matched, ps.Bytes)
		if ps.Latency.N > 0 {
			p(" latency mean=%v p50≤%v p99≤%v max=%v",
				ns(ps.Latency.Mean()), ns(ps.Latency.Quantile(0.50)), ns(ps.Latency.Quantile(0.99)), ns(ps.Latency.Max))
		}
		if ps.CrossSends+ps.CrossRecvs > 0 {
			p(" cross-node sends=%d recvs=%d", ps.CrossSends, ps.CrossRecvs)
		}
		if ps.UnmatchedSends+ps.UnmatchedRecvs > 0 {
			p(" UNMATCHED sends=%d recvs=%d", ps.UnmatchedSends, ps.UnmatchedRecvs)
		}
		p("\n")
		if ps.Path == PathRendezvous && ps.Matched > 0 && ps.QueueWaitNs+ps.TransferNs > 0 {
			p("           rendezvous decomposition: queue-wait %v/msg, transfer %v/msg\n",
				ns(ps.QueueWaitNs/int64(ps.Matched)), ns(ps.TransferNs/int64(ps.Matched)))
		}
	}

	if len(a.Pairs) > 0 {
		p("\n== top pairs by bytes ==\n")
		for i, pr := range a.Pairs {
			if i >= 10 {
				p("  ... %d more pairs\n", len(a.Pairs)-i)
				break
			}
			p("  %3d -> %-3d %-10s msgs=%-6d bytes=%-10d mean=%v\n",
				pr.Src, pr.Dst, pr.Path, pr.Matched, pr.Bytes, ns(pr.Latency.Mean()))
		}
	}

	if len(a.Links) > 0 {
		p("\n== cross-node links ==\n")
		for _, f := range a.Links {
			p("  node %d -> node %-2d frames=%-6d recv-side=%-6d seq-matched=%-6d bytes=%-10d",
				f.Src, f.Dst, f.Sends, f.Recvs, f.Matched, f.Bytes)
			if f.Latency.N > 0 {
				p(" one-way mean=%v p99≤%v", ns(f.Latency.Mean()), ns(f.Latency.Quantile(0.99)))
			}
			if f.Retransmits > 0 {
				p(" retrans-rounds=%d", f.Retransmits)
			}
			p("\n")
		}
	}

	if len(a.Unmatched) > 0 {
		p("\n== unmatched operations (%d total, %d listed) ==\n", a.TotalUnmatched, len(a.Unmatched))
		for _, u := range a.Unmatched {
			p("  %-4s %-10s %3d -> %-3d bytes=%-8d at %v\n", u.Op, u.Path, u.Src, u.Dst, u.Bytes, ns(u.TS))
		}
	}

	if a.Collectives.Calls > 0 {
		c := &a.Collectives
		p("\n== collective skew (%d calls, %d rounds) ==\n", c.Calls, len(c.Rounds))
		p("arrival spread: mean %v, max %v\n", ns(c.MeanSpreadNs), ns(c.MaxSpreadNs))
		for i, rs := range c.Rounds {
			if i >= 20 {
				p("  ... %d more rounds\n", len(c.Rounds)-i)
				break
			}
			label := fmt.Sprintf("round %d", rs.Round)
			if rs.Large {
				label = fmt.Sprintf("call #%d (large path)", rs.Round)
			}
			p("  %-9s node %d %-22s ranks=%-3d spread=%-10v last-arrival=rank %-3d slowest=rank %d (%v)\n",
				rs.Kind, rs.Node, label, rs.Ranks, ns(rs.ArrivalSpreadNs), rs.LastRank, rs.SlowestRank, ns(rs.MaxDurNs))
		}
		if len(c.Stragglers) > 0 {
			p("stragglers (by rounds arrived last):\n")
			for i, s := range c.Stragglers {
				if i >= 5 || (s.LastArrivals == 0 && i > 0) {
					break
				}
				p("  rank %-3d last to arrive %d times, total lateness %v\n", s.Rank, s.LastArrivals, ns(s.LatenessNs))
			}
		}
	}

	if len(a.PBQ) > 0 {
		p("\n== PBQ backpressure (hot pairs) ==\n")
		for i, sp := range a.PBQ {
			if i >= 10 {
				p("  ... %d more pairs\n", len(a.PBQ)-i)
				break
			}
			p("  %3d -> %-3d stalls=%-6d total=%-10v max=%v\n", sp.Src, sp.Dst, sp.Stalls, ns(sp.TotalNs), ns(sp.MaxNs))
		}
	}

	p("\n== per-rank breakdown ==\n")
	for _, rb := range a.Ranks {
		p("  rank %-3d wall=%-10v blocked=%-10v tasks=%v (%d execs, %d chunks)",
			rb.Rank, ns(rb.WallNs), ns(rb.BlockedNs), ns(rb.TaskNs), rb.TasksExecuted, rb.TaskChunks)
		if rb.ChunksStolen > 0 {
			p(" stolen=%d chunks (%v)", rb.ChunksStolen, ns(rb.StealNs))
		}
		p(" other=%v sends=%d recvs=%d\n", ns(rb.OtherNs), rb.Sends, rb.Recvs)
	}

	if a.Critical.LengthNs > 0 {
		cp := &a.Critical
		p("\n== critical path (estimate) ==\n")
		p("length %v, rank %d -> rank %d, %d message hops (%v in flight)\n",
			ns(cp.LengthNs), cp.StartRank, cp.EndRank, cp.Hops, ns(cp.InFlightNs))
		for i, rs := range cp.RankNs {
			if i >= 8 {
				break
			}
			pct := float64(0)
			if cp.LengthNs > 0 {
				pct = 100 * float64(rs.Ns) / float64(cp.LengthNs)
			}
			p("  rank %-3d %-10v (%.1f%%)\n", rs.Rank, ns(rs.Ns), pct)
		}
	}
	return nil
}

func ns(v int64) time.Duration { return time.Duration(v) }
