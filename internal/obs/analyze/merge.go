package analyze

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Cross-node trace merge.  Each node of a multi-process run dumps its own
// trace with timestamps in its own clock domain; the transport's heartbeat
// exchange records NTP-style offset samples (obs.ClockSample) against every
// peer.  Merge picks a reference node, chains the pairwise offsets into one
// absolute offset per node (minimum-delay sample wins — the classic NTP
// filter, since a symmetric-path sample's error is bounded by its RTT), and
// rebases every event onto the reference clock so cross-node send→recv pairs
// line up and the analyzer can match them like local ones.

// NodeAlign reports how one node's clock was aligned to the reference.
type NodeAlign struct {
	Node int `json:"node"`
	// OffsetNs is the node's clock minus the reference node's clock; the
	// merge subtracts it from the node's timestamps.
	OffsetNs int64 `json:"offset_ns"`
	// DelayNs is the path delay of the winning clock sample (its error
	// bound); 0 for the reference itself.
	DelayNs int64 `json:"delay_ns"`
	// Via is the already-aligned peer the offset chains through, -1 for the
	// reference node and for unaligned fallbacks.
	Via int `json:"via"`
	// Samples counts the usable clock samples between Node and Via.
	Samples int `json:"samples"`
	// Aligned is false when no chain of clock samples connects the node to
	// the reference; its offset is then assumed 0 (timestamps pass through).
	Aligned bool `json:"aligned"`
}

// MergeInfo describes one merge: the reference node and every node's
// alignment, ordered by node id.
type MergeInfo struct {
	Ref   int         `json:"ref"`
	Nodes []NodeAlign `json:"nodes"`
	// BaseUnixNano is the merged trace's time zero (the earliest aligned
	// node start), stored in the merged dump's Meta.StartUnixNano.
	BaseUnixNano int64 `json:"base_unix_nano"`
}

// edge is one usable pairwise clock estimate: clock(to) - clock(from),
// with the sample's path delay as its quality.
type edge struct {
	to      int
	offset  int64
	delay   int64
	samples int
}

// Merge aligns per-node trace dumps onto one clock and returns the combined
// dump.  Every input must be a v2 dump recording its node identity
// (Meta.Node >= 0) and the node ids must be distinct.  The merged dump has
// Meta.Node == -1, the union of all events and link events rebased to the
// reference clock, and Meta.StartUnixNano set so timestamps remain
// trace-relative nanoseconds.
func Merge(dumps []*obs.TraceDump) (*obs.TraceDump, *MergeInfo, error) {
	if len(dumps) == 0 {
		return nil, nil, fmt.Errorf("no dumps to merge")
	}
	byNode := map[int]*obs.TraceDump{}
	for i, d := range dumps {
		if d.Meta.Node < 0 {
			return nil, nil, fmt.Errorf("dump %d records no node identity (v1 trace, or not a multi-process run)", i)
		}
		if prev, ok := byNode[d.Meta.Node]; ok && prev != d {
			return nil, nil, fmt.Errorf("two dumps claim node %d", d.Meta.Node)
		}
		byNode[d.Meta.Node] = d
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	ref := nodes[0]

	// Best pairwise offset per ordered (from, to): minimum-delay sample.  A
	// sample recorded at node R about peer P estimates clock(P) - clock(R),
	// so it yields edge R→P with that offset and P→R with its negation.
	type pair struct{ from, to int }
	best := map[pair]edge{}
	note := func(from, to int, off, delay int64) {
		k := pair{from, to}
		e, ok := best[k]
		if !ok || delay < e.delay {
			best[k] = edge{to: to, offset: off, delay: delay, samples: e.samples + 1}
		} else {
			e.samples++
			best[k] = e
		}
	}
	for _, n := range nodes {
		for _, s := range byNode[n].Meta.Clock {
			p := int(s.Peer)
			if p == n || byNode[p] == nil || s.DelayNs <= 0 {
				continue
			}
			note(n, p, s.OffsetNs, s.DelayNs)
			note(p, n, -s.OffsetNs, s.DelayNs)
		}
	}
	adj := map[int][]edge{}
	for k, e := range best {
		adj[k.from] = append(adj[k.from], e)
	}

	// Breadth-first chain from the reference, always expanding the node
	// reached through the lowest-delay edge first (Dijkstra on delay), so a
	// direct low-RTT sample beats a multi-hop chain.
	align := map[int]*NodeAlign{ref: {Node: ref, Via: -1, Aligned: true}}
	done := map[int]bool{}
	for len(done) < len(nodes) {
		// Pick the cheapest aligned-but-unexpanded node.
		cur, curDelay := -1, int64(0)
		for n, a := range align {
			if done[n] {
				continue
			}
			if cur == -1 || a.DelayNs < curDelay {
				cur, curDelay = n, a.DelayNs
			}
		}
		if cur == -1 {
			break // remaining nodes unreachable
		}
		done[cur] = true
		for _, e := range adj[cur] {
			cost := curDelay + e.delay
			if a, ok := align[e.to]; ok && (done[e.to] || a.DelayNs <= cost) {
				continue
			}
			align[e.to] = &NodeAlign{
				Node:     e.to,
				OffsetNs: align[cur].OffsetNs + e.offset,
				DelayNs:  cost,
				Via:      cur,
				Samples:  e.samples,
				Aligned:  true,
			}
		}
	}

	info := &MergeInfo{Ref: ref}
	offsets := map[int]int64{}
	for _, n := range nodes {
		a := align[n]
		if a == nil {
			a = &NodeAlign{Node: n, Via: -1} // no clock path: pass through
		}
		offsets[n] = a.OffsetNs
		info.Nodes = append(info.Nodes, *a)
	}

	// Time zero of the merged trace: the earliest node start, expressed in
	// the reference clock.  Aligned absolute time of a rank event is
	// StartUnixNano + TS - offset; of a link event (already absolute wall
	// clock), TS - offset.
	base := int64(0)
	for i, n := range nodes {
		if s := byNode[n].Meta.StartUnixNano - offsets[n]; i == 0 || s < base {
			base = s
		}
	}
	info.BaseUnixNano = base

	out := &obs.TraceDump{}
	out.Meta.Node = -1
	out.Meta.StartUnixNano = base
	for _, n := range nodes {
		d := byNode[n]
		if d.NRanks > out.NRanks {
			out.NRanks = d.NRanks
		}
		if d.Meta.Nodes > out.Meta.Nodes {
			out.Meta.Nodes = d.Meta.Nodes
		}
		if len(out.Meta.NodeOfRank) == 0 && len(d.Meta.NodeOfRank) > 0 {
			out.Meta.NodeOfRank = d.Meta.NodeOfRank
		}
		out.Dropped += d.Dropped
		shift := d.Meta.StartUnixNano - offsets[n] - base
		for _, e := range d.Events {
			e.TS += shift
			out.Events = append(out.Events, e)
		}
		for _, le := range d.Meta.Links {
			le.TS += -offsets[n] - base
			out.Meta.Links = append(out.Meta.Links, le)
		}
	}
	sort.SliceStable(out.Events, func(a, b int) bool { return out.Events[a].TS < out.Events[b].TS })
	sort.SliceStable(out.Meta.Links, func(a, b int) bool { return out.Meta.Links[a].TS < out.Meta.Links[b].TS })
	return out, info, nil
}
