package analyze

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// twoNodeDumps builds per-node dumps for a 4-rank run (ranks 0,1 on node 0;
// ranks 2,3 on node 1) where node 1's clock leads node 0's by skew ns.  One
// remote message goes rank 0 -> rank 2 (sent at trueSend, received at
// trueRecv, both in node 0's = the true clock), with matching transport
// frame events, plus one purely local eager pair on node 0.
func twoNodeDumps(skew, trueSend, trueRecv int64) (*obs.TraceDump, *obs.TraceDump) {
	const s0 = int64(1_000_000_000_000) // node 0 trace start, node-0 clock
	start1 := s0 + 500_000 + skew       // node 1 started 500µs later, its own clock
	place := []int32{0, 0, 1, 1}

	d0 := &obs.TraceDump{
		NRanks: 4,
		Meta: obs.TraceMeta{
			Node: 0, Nodes: 2, StartUnixNano: s0, NodeOfRank: place,
			Clock: []obs.ClockSample{
				// Noisy high-delay estimate, then the clean low-delay one the
				// min-delay filter must prefer.
				{Peer: 1, LocalUnixNano: s0 + 1000, OffsetNs: skew + 40_000, DelayNs: 300_000},
				{Peer: 1, LocalUnixNano: s0 + 2000, OffsetNs: skew, DelayNs: 60_000},
			},
			Links: []obs.LinkEvent{
				// Link event timestamps are absolute wall-clock nanos in the
				// recorder's domain (rank events are trace-relative).
				{TS: trueSend, Kind: obs.LinkSend, Node: 0, Peer: 1, Seq: 7, Bytes: 64},
			},
		},
		Events: []obs.Event{
			{TS: trueSend - s0, Arg: 64, Rank: 0, Peer: 2, Kind: obs.KSendRemote},
			{TS: 10_000, Arg: 8, Rank: 0, Peer: 1, Kind: obs.KSendEager},
			{TS: 20_000, Arg: 8, Rank: 1, Peer: 0, Kind: obs.KRecvEager},
		},
	}
	d1 := &obs.TraceDump{
		NRanks: 4,
		Meta: obs.TraceMeta{
			Node: 1, Nodes: 2, StartUnixNano: start1, NodeOfRank: place,
			Clock: []obs.ClockSample{
				// The reverse-direction estimate, worse delay: must lose.
				{Peer: 0, LocalUnixNano: start1 + 1000, OffsetNs: -skew - 90_000, DelayNs: 900_000},
			},
			Links: []obs.LinkEvent{
				{TS: trueRecv + skew, Kind: obs.LinkRecv, Node: 1, Peer: 0, Seq: 7, Bytes: 64},
			},
		},
		Events: []obs.Event{
			{TS: trueRecv + skew - start1, Arg: 64, Rank: 2, Peer: 0, Kind: obs.KRecvRemote},
		},
	}
	return d0, d1
}

func TestMergeAlignsKnownSkew(t *testing.T) {
	const skew = 7_000_000 // node 1's clock leads by 7ms
	const s0 = int64(1_000_000_000_000)
	trueSend, trueRecv := s0+600_000, s0+1_200_000 // 600µs in flight
	d0, d1 := twoNodeDumps(skew, trueSend, trueRecv)

	merged, info, err := Merge([]*obs.TraceDump{d1, d0}) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	if info.Ref != 0 {
		t.Fatalf("reference node = %d, want 0", info.Ref)
	}
	var n1 *NodeAlign
	for i := range info.Nodes {
		if info.Nodes[i].Node == 1 {
			n1 = &info.Nodes[i]
		}
	}
	if n1 == nil || !n1.Aligned {
		t.Fatalf("node 1 not aligned: %+v", info.Nodes)
	}
	if n1.OffsetNs != skew {
		t.Fatalf("node 1 offset = %d, want %d (the min-delay sample)", n1.OffsetNs, skew)
	}
	if merged.Meta.Node != -1 || merged.NRanks != 4 || len(merged.Events) != 4 {
		t.Fatalf("merged shape: node=%d nranks=%d events=%d", merged.Meta.Node, merged.NRanks, len(merged.Events))
	}

	// With the skew removed, the analyzer matches the cross-node pair with
	// the true in-flight latency.
	a := Run(merged.Events, merged.NRanks, Options{
		NodeOf: func(r int32) int { return int(merged.Meta.NodeOfRank[r]) },
		Links:  merged.Meta.Links,
	})
	var remote *PathStats
	for _, ps := range a.Paths {
		if ps.Path == PathRemote {
			remote = ps
		}
	}
	if remote == nil || remote.Matched != 1 {
		t.Fatalf("remote path not matched after merge: %+v", remote)
	}
	if got := remote.Latency.Max; got != trueRecv-trueSend {
		t.Fatalf("cross-node latency = %d, want %d", got, trueRecv-trueSend)
	}
	if a.TotalUnmatched != 0 {
		t.Fatalf("unmatched after merge: %d", a.TotalUnmatched)
	}
	// The transport frames pair up on seq in the merged clock domain too.
	if len(a.Links) != 1 || a.Links[0].Matched != 1 {
		t.Fatalf("link flows = %+v, want one 0->1 flow with Matched=1", a.Links)
	}
	if f := a.Links[0]; f.Src != 0 || f.Dst != 1 || f.Latency.Max != trueRecv-trueSend {
		t.Fatalf("link flow %+v, want 0->1 one-way %d", f, trueRecv-trueSend)
	}
}

func TestMergeRoundTripsThroughTraceBin(t *testing.T) {
	d0, d1 := twoNodeDumps(-2_500_000, 1_000_000_000_600_000, 1_000_000_001_100_000)
	merged, _, err := Merge([]*obs.TraceDump{d0, d1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteTraceBinMeta(&buf, merged.Events, merged.NRanks, merged.Dropped, &merged.Meta); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadTraceBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NRanks != merged.NRanks || len(back.Events) != len(merged.Events) {
		t.Fatalf("round trip shape: %d ranks %d events, want %d/%d",
			back.NRanks, len(back.Events), merged.NRanks, len(merged.Events))
	}
	if len(back.Meta.Links) != len(merged.Meta.Links) || len(back.Meta.NodeOfRank) != 4 {
		t.Fatalf("round trip meta: %+v", back.Meta)
	}
	for i := range merged.Events {
		if back.Events[i] != merged.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back.Events[i], merged.Events[i])
		}
	}
	for i := range merged.Meta.Links {
		if back.Meta.Links[i] != merged.Meta.Links[i] {
			t.Fatalf("link %d: %+v != %+v", i, back.Meta.Links[i], merged.Meta.Links[i])
		}
	}
}

func TestMergeRejectsBadInputs(t *testing.T) {
	if _, _, err := Merge(nil); err == nil {
		t.Fatal("merged zero dumps")
	}
	d0, d1 := twoNodeDumps(0, 1_000_000_000_100_000, 1_000_000_000_200_000)
	d1.Meta.Node = 0
	if _, _, err := Merge([]*obs.TraceDump{d0, d1}); err == nil {
		t.Fatal("merged two dumps claiming the same node")
	}
	d1.Meta.Node = -1
	if _, _, err := Merge([]*obs.TraceDump{d0, d1}); err == nil {
		t.Fatal("merged a dump with no node identity")
	}
}

func TestPartialDumpClassifiesCrossNode(t *testing.T) {
	d0, _ := twoNodeDumps(0, 1_000_000_000_100_000, 1_000_000_000_200_000)
	a := Run(d0.Events, d0.NRanks, Options{
		NodeOf:  func(r int32) int { return int(d0.Meta.NodeOfRank[r]) },
		Partial: true,
		Node:    0,
	})
	var remote *PathStats
	for _, ps := range a.Paths {
		if ps.Path == PathRemote {
			remote = ps
		}
	}
	if remote == nil || remote.CrossSends != 1 {
		t.Fatalf("remote path = %+v, want CrossSends=1", remote)
	}
	if a.TotalUnmatched != 0 {
		t.Fatalf("partial dump reported %d unmatched; cross-node ops must not count", a.TotalUnmatched)
	}
	if got := a.MatchRate(); got != 1 {
		t.Fatalf("MatchRate() = %v, want 1 (cross sends excluded)", got)
	}
}
