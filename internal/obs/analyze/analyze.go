// Package analyze is the offline trace-analytics engine: it consumes the
// event stream the runtime observability layer records (internal/obs) and
// derives the answers the raw timeline only implies — which send paired with
// which receive and how long the message took per protocol path, how skewed
// each collective round was and who the stragglers are, which channel pairs
// suffer PureBufferQueue backpressure, how task chunks were balanced by the
// SSW-Loop, where each rank's time went, and a critical-path estimate across
// matched message edges.
//
// The paper ships "special debugging and profiling modes to assist in
// application development" (§4.0.1); this package is the analysis half of
// that story for the Go runtime.  It is deliberately decoupled from the
// runtime: the input is a plain []obs.Event (live from Report.Timeline or
// read back from a binary dump via obs.ReadTraceBin), so traces can be
// analyzed on a different machine than the one that recorded them.
package analyze

import (
	"sort"

	"repro/internal/obs"
)

// Path identifies a message-protocol path.
type Path string

// Protocol paths.
const (
	PathEager      Path = "eager"      // intra-node PureBufferQueue
	PathRendezvous Path = "rendezvous" // intra-node single-copy handoff
	PathRemote     Path = "remote"     // inter-node transport
)

// Options tunes an analysis run.
type Options struct {
	// NodeOf maps a rank to its node.  It keeps collective-round grouping
	// correct on multi-node traces (SPTD rounds are per node); nil places
	// every rank on node 0.
	NodeOf func(rank int32) int
	// MaxUnmatched caps the individually listed unmatched operations
	// (totals are always exact); 0 means 64.
	MaxUnmatched int
	// Partial marks a per-node dump from a multi-process run: the trace holds
	// only the ranks of node Node, so a remote-path operation whose peer rank
	// lives on another node (per NodeOf) can never find its counterpart here.
	// Those are classified as cross-node traffic (PathStats.CrossSends /
	// CrossRecvs) instead of being reported unmatched.  After `puretrace
	// merge` rejoins the per-node dumps, Partial is off again and cross-node
	// messages match normally.
	Partial bool
	// Node is the recording node of a Partial dump.
	Node int
	// Links carries the transport-level frame events (TraceMeta.Links); when
	// present the analysis adds per-direction link flows, matching send and
	// receive frames on sequence number across nodes.
	Links []obs.LinkEvent
}

// Hist is a fixed-bound latency histogram plus exact min/max/sum, the same
// bucket model as obs.Histogram but analyzer-local (no atomics).
type Hist struct {
	Bounds []int64 `json:"bounds"` // ascending inclusive upper bounds
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is +Inf
	N      int64   `json:"n"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

func newHist() *Hist {
	return &Hist{
		Bounds: obs.LatencyBuckets,
		Counts: make([]int64, len(obs.LatencyBuckets)+1),
	}
}

func (h *Hist) observe(v int64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Counts[i]++
	h.Sum += v
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.N++
}

// Mean returns the mean observation, 0 when empty.
func (h *Hist) Mean() int64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / h.N
}

// Quantile returns an upper bound on the q-quantile (the bucket boundary the
// quantile falls under; Max for the +Inf bucket), 0 when empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	want := int64(q * float64(h.N))
	if float64(want) < q*float64(h.N) {
		want++ // ceiling: p99 of 4 samples needs all 4, not 3
	}
	if want < 1 {
		want = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= want {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// PathStats aggregates message matching over one protocol path.
type PathStats struct {
	Path           Path `json:"path"`
	Sends          int  `json:"sends"`
	Recvs          int  `json:"recvs"`
	Matched        int  `json:"matched"`
	UnmatchedSends int  `json:"unmatched_sends"`
	UnmatchedRecvs int  `json:"unmatched_recvs"`
	// CrossSends / CrossRecvs count operations whose peer rank lives on a
	// different node than the recorder of a partial (per-node) dump: the
	// counterpart event is in some other node's dump, so they are cross-node
	// traffic, not evidence of a hang.  Always 0 unless Options.Partial.
	CrossSends int   `json:"cross_sends,omitempty"`
	CrossRecvs int   `json:"cross_recvs,omitempty"`
	Bytes      int64 `json:"bytes"` // matched payload bytes
	Latency    *Hist `json:"latency"`
	// QueueWaitNs / TransferNs decompose the rendezvous path using the
	// sender's handoff timestamps: send post -> handoff start (waiting for
	// the receiver's envelope) and handoff -> receive completion (the copy
	// plus completion signalling).  Zero on the other paths, which emit no
	// intermediate event.
	QueueWaitNs int64 `json:"queue_wait_ns,omitempty"`
	TransferNs  int64 `json:"transfer_ns,omitempty"`
}

// PairStats aggregates matched traffic for one (src, dst, path) channel
// bundle.
type PairStats struct {
	Src     int32 `json:"src"`
	Dst     int32 `json:"dst"`
	Path    Path  `json:"path"`
	Matched int   `json:"matched"`
	Bytes   int64 `json:"bytes"`
	Latency *Hist `json:"latency"`
}

// Unmatched is one send without a matching receive (or vice versa) — listed,
// not silently dropped, because unmatched operations are the classic
// symptom of a hang or a ring-wraparound loss.
type Unmatched struct {
	Op    string `json:"op"` // "send" or "recv"
	Path  Path   `json:"path"`
	Src   int32  `json:"src"`
	Dst   int32  `json:"dst"`
	Bytes int64  `json:"bytes"`
	TS    int64  `json:"ts"`
}

// RoundSkew is one collective round's arrival analysis across the ranks that
// recorded it.
type RoundSkew struct {
	Kind  string `json:"kind"`
	Node  int    `json:"node"`
	Round int64  `json:"round"`
	// Large marks the large-payload path, where the runtime records no SPTD
	// round; Round is then the per-rank occurrence index of the call.
	Large bool `json:"large,omitempty"`
	Ranks int  `json:"ranks"` // participants seen in the trace
	// ArrivalSpreadNs is lastArrival - firstArrival: how long the earliest
	// rank sat in the collective before the last one showed up.
	ArrivalSpreadNs int64 `json:"arrival_spread_ns"`
	FirstTS         int64 `json:"first_ts"`
	LastRank        int32 `json:"last_rank"` // last to arrive (the straggler)
	MaxDurNs        int64 `json:"max_dur_ns"`
	SlowestRank     int32 `json:"slowest_rank"` // longest time inside the call
}

// Straggler ranks one rank's contribution to collective imbalance.
type Straggler struct {
	Rank int32 `json:"rank"`
	// LastArrivals counts rounds this rank was the last to arrive at.
	LastArrivals int `json:"last_arrivals"`
	// LatenessNs sums this rank's arrival delay behind each round's first
	// arrival, over all rounds it took part in.
	LatenessNs int64 `json:"lateness_ns"`
}

// CollectiveStats is the cross-round collective skew summary.
type CollectiveStats struct {
	Calls        int         `json:"calls"`  // collective span events seen
	Rounds       []RoundSkew `json:"rounds"` // chronological
	Stragglers   []Straggler `json:"stragglers"`
	MeanSpreadNs int64       `json:"mean_spread_ns"`
	MaxSpreadNs  int64       `json:"max_spread_ns"`
}

// StallPair is one sender→receiver pair's PureBufferQueue backpressure.
type StallPair struct {
	Src     int32 `json:"src"`
	Dst     int32 `json:"dst"`
	Stalls  int   `json:"stalls"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// RankBreakdown is one rank's time and work accounting.
type RankBreakdown struct {
	Rank   int32 `json:"rank"`
	Events int   `json:"events"`
	// WallNs spans the rank's first event start to its last event end.
	WallNs int64 `json:"wall_ns"`
	// BlockedNs sums the recorded runtime-wait spans: PBQ stalls,
	// collectives, and RMA fences.  (P2P waits record no span, so this is a
	// lower bound on blocked time.)
	BlockedNs int64 `json:"blocked_ns"`
	// TaskNs / TasksExecuted / TaskChunks cover the rank's own Task.Execute
	// calls; StealNs / ChunksStolen cover work it stole while blocked.
	TaskNs        int64 `json:"task_ns"`
	TasksExecuted int   `json:"tasks_executed"`
	TaskChunks    int64 `json:"task_chunks"`
	StealNs       int64 `json:"steal_ns"`
	ChunksStolen  int64 `json:"chunks_stolen"`
	// OtherNs = Wall - Blocked - Task, clamped at 0: application compute
	// outside tasks plus untraced waits.
	OtherNs int64 `json:"other_ns"`
	Sends   int   `json:"sends"`
	Recvs   int   `json:"recvs"`
}

// RankShare is one rank's time on the critical path.
type RankShare struct {
	Rank int32 `json:"rank"`
	Ns   int64 `json:"ns"`
}

// CriticalPath is a longest-chain estimate through the trace: starting from
// the last event to finish, it walks backwards, hopping a matched message
// edge whenever the receiver was provably waiting on the sender (its
// previous local event ended before the send was even posted) and staying on
// the rank otherwise.
type CriticalPath struct {
	LengthNs  int64 `json:"length_ns"`
	StartRank int32 `json:"start_rank"`
	EndRank   int32 `json:"end_rank"`
	// Hops counts the matched send→recv edges on the path; InFlightNs sums
	// the time the path spent inside those messages.
	Hops       int         `json:"hops"`
	InFlightNs int64       `json:"in_flight_ns"`
	RankNs     []RankShare `json:"rank_ns"` // descending by Ns
}

// Analysis is the full derived report.
type Analysis struct {
	NRanks  int   `json:"nranks"`
	Events  int   `json:"events"`
	Dropped int64 `json:"dropped,omitempty"` // ring losses, when known
	// SpanNs is first event start to last event end across all ranks.
	SpanNs int64 `json:"span_ns"`

	Paths          []*PathStats `json:"paths"`
	Pairs          []*PairStats `json:"pairs"` // descending by bytes
	TotalMatched   int          `json:"total_matched"`
	TotalUnmatched int          `json:"total_unmatched"`
	Unmatched      []Unmatched  `json:"unmatched"` // capped sample; totals exact

	Collectives CollectiveStats `json:"collectives"`
	PBQ         []StallPair     `json:"pbq"` // descending by TotalNs
	Ranks       []RankBreakdown `json:"ranks"`
	Critical    CriticalPath    `json:"critical_path"`

	// Links holds the per-direction transport link flows when the trace
	// carried frame events (Options.Links); nil otherwise.
	Links []*LinkFlow `json:"links,omitempty"`
}

// LinkFlow aggregates one direction of inter-node frame traffic
// (Src node -> Dst node) from the transport's link events.  Send frames are
// recorded by the sender, receive frames by the receiver; after `puretrace
// merge` aligns the node clocks, a frame's send and receive events pair up on
// the link sequence number and Latency holds the one-way frame latency in the
// merged clock domain.  In a single-node dump only one side of each direction
// is present, so Matched stays 0.
type LinkFlow struct {
	Src         int   `json:"src"` // sending node
	Dst         int   `json:"dst"` // receiving node
	Sends       int   `json:"sends"`
	Recvs       int   `json:"recvs"`
	Matched     int   `json:"matched"` // frames seen on both sides (seq match)
	Retransmits int   `json:"retransmits"`
	Bytes       int64 `json:"bytes"` // payload bytes of send frames
	Latency     *Hist `json:"latency"`
}

// MatchRate returns the fraction of locally matchable sends that found their
// receive, 1 when the trace holds no such sends.  Cross-node sends in a
// partial dump are excluded: their receives live in another node's dump.
func (a *Analysis) MatchRate() float64 {
	sends := 0
	for _, p := range a.Paths {
		sends += p.Sends - p.CrossSends
	}
	if sends == 0 {
		return 1
	}
	return float64(a.TotalMatched) / float64(sends)
}

// sendPath / recvPath classify an event kind, returning "" for non-message
// kinds.
func sendPath(k obs.Kind) Path {
	switch k {
	case obs.KSendEager:
		return PathEager
	case obs.KSendRendezvous:
		return PathRendezvous
	case obs.KSendRemote:
		return PathRemote
	}
	return ""
}

func recvPath(k obs.Kind) Path {
	switch k {
	case obs.KRecvEager:
		return PathEager
	case obs.KRecvRendezvous:
		return PathRendezvous
	case obs.KRecvRemote:
		return PathRemote
	}
	return ""
}

func isCollective(k obs.Kind) bool {
	switch k {
	case obs.KBarrier, obs.KReduce, obs.KAllreduce, obs.KBcast:
		return true
	}
	return false
}

type pairKey struct {
	src, dst int32
	path     Path
}

// Run analyzes one trace.  events may be in any order (a copy is sorted by
// start time); nranks sizes the per-rank accounting and must cover every
// event's Rank.
func Run(events []obs.Event, nranks int, opt Options) *Analysis {
	if opt.MaxUnmatched == 0 {
		opt.MaxUnmatched = 64
	}
	nodeOf := opt.NodeOf
	if nodeOf == nil {
		nodeOf = func(int32) int { return 0 }
	}
	evs := make([]obs.Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].TS < evs[b].TS })

	a := &Analysis{NRanks: nranks, Events: len(evs)}

	// Per-rank event index lists (sorted order preserved) for the breakdown
	// and the critical-path walk.
	perRank := make([][]int, nranks)
	pos := make([]int, len(evs)) // index of evs[i] within perRank[rank]
	for i, e := range evs {
		r := int(e.Rank)
		if r < 0 || r >= nranks {
			continue
		}
		pos[i] = len(perRank[r])
		perRank[r] = append(perRank[r], i)
	}

	a.matchMessages(evs, opt)
	a.linkFlows(opt.Links)
	a.collectiveSkew(evs, nranks, nodeOf)
	a.backpressure(evs)
	a.breakdown(evs, perRank)
	a.criticalPath(evs, perRank, pos)

	if len(evs) > 0 {
		first := evs[0].TS
		last := first
		for _, e := range evs {
			if end := e.TS + e.Dur; end > last {
				last = end
			}
		}
		a.SpanNs = last - first
	}
	return a
}

// matchMessages pairs send posts with receive completions per (src, dst,
// path) in FIFO order — the runtime's channels are FIFO per (src, dst, tag,
// comm), so per-pair FIFO is exact for single-tag traffic and a tight
// approximation when tags interleave.
func (a *Analysis) matchMessages(evs []obs.Event, opt Options) {
	paths := map[Path]*PathStats{}
	pathFor := func(p Path) *PathStats {
		ps, ok := paths[p]
		if !ok {
			ps = &PathStats{Path: p, Latency: newHist()}
			paths[p] = ps
		}
		return ps
	}
	pairs := map[pairKey]*PairStats{}
	sendQ := map[pairKey][]int{}    // pending send event indices, FIFO
	handoffQ := map[pairKey][]int{} // pending rendezvous handoffs, FIFO

	// In a partial (per-node) dump, an operation whose peer rank lives on
	// another node can never match locally — its counterpart is in that
	// node's dump.  Classify it as cross-node instead of unmatched.
	nodeOf := opt.NodeOf
	if nodeOf == nil {
		nodeOf = func(int32) int { return 0 }
	}
	cross := func(peer int32) bool {
		return opt.Partial && peer >= 0 && nodeOf(peer) != opt.Node
	}

	for i, e := range evs {
		if p := sendPath(e.Kind); p != "" {
			ps := pathFor(p)
			ps.Sends++
			if cross(e.Peer) {
				ps.CrossSends++
				continue
			}
			k := pairKey{src: e.Rank, dst: e.Peer, path: p}
			sendQ[k] = append(sendQ[k], i)
			continue
		}
		if e.Kind == obs.KRendezvousHandoff {
			k := pairKey{src: e.Rank, dst: e.Peer, path: PathRendezvous}
			handoffQ[k] = append(handoffQ[k], i)
			continue
		}
		p := recvPath(e.Kind)
		if p == "" {
			continue
		}
		ps := pathFor(p)
		ps.Recvs++
		if cross(e.Peer) {
			ps.CrossRecvs++
			continue
		}
		k := pairKey{src: e.Peer, dst: e.Rank, path: p}
		q := sendQ[k]
		if len(q) == 0 {
			ps.UnmatchedRecvs++
			a.TotalUnmatched++
			if len(a.Unmatched) < opt.MaxUnmatched {
				a.Unmatched = append(a.Unmatched, Unmatched{
					Op: "recv", Path: p, Src: e.Peer, Dst: e.Rank, Bytes: e.Arg, TS: e.TS,
				})
			}
			continue
		}
		s := evs[q[0]]
		sendQ[k] = q[1:]
		lat := e.TS - s.TS
		if lat < 0 {
			lat = 0
		}
		ps.Matched++
		ps.Bytes += e.Arg
		ps.Latency.observe(lat)
		a.TotalMatched++
		pr, ok := pairs[k]
		if !ok {
			pr = &PairStats{Src: k.src, Dst: k.dst, Path: p, Latency: newHist()}
			pairs[k] = pr
		}
		pr.Matched++
		pr.Bytes += e.Arg
		pr.Latency.observe(lat)
		// Rendezvous decomposition: the sender's handoff event splits the
		// latency into envelope queue-wait and copy/transfer time.
		if p == PathRendezvous {
			if hq := handoffQ[k]; len(hq) > 0 {
				h := evs[hq[0]]
				handoffQ[k] = hq[1:]
				if qw := h.TS - s.TS; qw > 0 {
					ps.QueueWaitNs += qw
				}
				if tr := e.TS - h.TS; tr > 0 {
					ps.TransferNs += tr
				}
			}
		}
	}

	// Whatever is left in the send queues never met a receive.
	for k, q := range sendQ {
		for _, i := range q {
			ps := pathFor(k.path)
			ps.UnmatchedSends++
			a.TotalUnmatched++
			if len(a.Unmatched) < opt.MaxUnmatched {
				e := evs[i]
				a.Unmatched = append(a.Unmatched, Unmatched{
					Op: "send", Path: k.path, Src: k.src, Dst: k.dst, Bytes: e.Arg, TS: e.TS,
				})
			}
		}
	}
	sort.Slice(a.Unmatched, func(x, y int) bool { return a.Unmatched[x].TS < a.Unmatched[y].TS })

	for _, p := range []Path{PathEager, PathRendezvous, PathRemote} {
		if ps, ok := paths[p]; ok {
			a.Paths = append(a.Paths, ps)
		}
	}
	for _, pr := range pairs {
		a.Pairs = append(a.Pairs, pr)
	}
	sort.Slice(a.Pairs, func(x, y int) bool {
		if a.Pairs[x].Bytes != a.Pairs[y].Bytes {
			return a.Pairs[x].Bytes > a.Pairs[y].Bytes
		}
		if a.Pairs[x].Src != a.Pairs[y].Src {
			return a.Pairs[x].Src < a.Pairs[y].Src
		}
		return a.Pairs[x].Dst < a.Pairs[y].Dst
	})
}

// linkFlows aggregates transport frame events into per-direction flows and
// pairs send frames with their receive on (src, dst, seq).  Link sequence
// numbers are per-direction and never reused (reconnects replay the same
// seqs, but the receiver accepts each in-order seq exactly once and only
// accepted frames emit a LinkRecv event), so seq matching is exact.
func (a *Analysis) linkFlows(links []obs.LinkEvent) {
	if len(links) == 0 {
		return
	}
	type dirKey struct{ src, dst int32 }
	type seqKey struct {
		src, dst int32
		seq      uint64
	}
	flows := map[dirKey]*LinkFlow{}
	flowFor := func(k dirKey) *LinkFlow {
		f, ok := flows[k]
		if !ok {
			f = &LinkFlow{Src: int(k.src), Dst: int(k.dst), Latency: newHist()}
			flows[k] = f
		}
		return f
	}
	sent := map[seqKey]int64{} // send timestamp by frame identity
	for _, ev := range links {
		switch ev.Kind {
		case obs.LinkSend:
			k := dirKey{src: ev.Node, dst: ev.Peer}
			f := flowFor(k)
			f.Sends++
			f.Bytes += int64(ev.Bytes)
			sent[seqKey{src: ev.Node, dst: ev.Peer, seq: ev.Seq}] = ev.TS
		case obs.LinkRecv:
			k := dirKey{src: ev.Peer, dst: ev.Node}
			f := flowFor(k)
			f.Recvs++
			if sts, ok := sent[seqKey{src: ev.Peer, dst: ev.Node, seq: ev.Seq}]; ok {
				f.Matched++
				lat := ev.TS - sts
				if lat < 0 {
					lat = 0
				}
				f.Latency.observe(lat)
			}
		case obs.LinkRetransmit:
			flowFor(dirKey{src: ev.Node, dst: ev.Peer}).Retransmits++
		}
	}
	for _, f := range flows {
		a.Links = append(a.Links, f)
	}
	sort.Slice(a.Links, func(x, y int) bool {
		if a.Links[x].Src != a.Links[y].Src {
			return a.Links[x].Src < a.Links[y].Src
		}
		return a.Links[x].Dst < a.Links[y].Dst
	})
}

// collectiveSkew groups collective span events into rounds and measures the
// arrival spread within each.  SPTD rounds (Arg > 0) identify the instance
// exactly per node; large-payload calls (Arg == 0) are grouped by per-rank
// occurrence index, which is exact as long as every rank runs the same
// collective sequence (the SPMD common case).
func (a *Analysis) collectiveSkew(evs []obs.Event, nranks int, nodeOf func(int32) int) {
	type groupKey struct {
		kind  obs.Kind
		node  int
		round int64
		large bool
	}
	type member struct {
		rank int32
		ts   int64
		dur  int64
	}
	groups := map[groupKey][]member{}
	order := []groupKey{}
	largeSeq := map[struct {
		kind obs.Kind
		rank int32
	}]int64{}

	for _, e := range evs {
		if !isCollective(e.Kind) {
			continue
		}
		a.Collectives.Calls++
		k := groupKey{kind: e.Kind, node: nodeOf(e.Rank), round: e.Arg}
		if e.Arg == 0 {
			sk := struct {
				kind obs.Kind
				rank int32
			}{e.Kind, e.Rank}
			largeSeq[sk]++
			k.large = true
			k.round = largeSeq[sk]
			k.node = 0 // the large path is node-oblivious (binomial over comm ranks)
		}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], member{rank: e.Rank, ts: e.TS, dur: e.Dur})
	}

	lateness := make([]int64, nranks)
	lastCount := make([]int, nranks)
	var spreadSum int64
	for _, k := range order {
		ms := groups[k]
		if len(ms) < 2 {
			continue // skew needs at least two participants
		}
		rs := RoundSkew{
			Kind: k.kind.String(), Node: k.node, Round: k.round, Large: k.large,
			Ranks: len(ms), FirstTS: ms[0].ts,
		}
		var firstTS, lastTS, maxDur int64
		for i, m := range ms {
			if i == 0 || m.ts < firstTS {
				firstTS = m.ts
			}
			if i == 0 || m.ts > lastTS {
				lastTS = m.ts
				rs.LastRank = m.rank
			}
			if m.dur > maxDur {
				maxDur = m.dur
				rs.SlowestRank = m.rank
			}
		}
		rs.FirstTS = firstTS
		rs.ArrivalSpreadNs = lastTS - firstTS
		rs.MaxDurNs = maxDur
		for _, m := range ms {
			if int(m.rank) < nranks {
				lateness[m.rank] += m.ts - firstTS
			}
		}
		if int(rs.LastRank) < nranks {
			lastCount[rs.LastRank]++
		}
		spreadSum += rs.ArrivalSpreadNs
		if rs.ArrivalSpreadNs > a.Collectives.MaxSpreadNs {
			a.Collectives.MaxSpreadNs = rs.ArrivalSpreadNs
		}
		a.Collectives.Rounds = append(a.Collectives.Rounds, rs)
	}
	sort.Slice(a.Collectives.Rounds, func(x, y int) bool {
		return a.Collectives.Rounds[x].FirstTS < a.Collectives.Rounds[y].FirstTS
	})
	if n := len(a.Collectives.Rounds); n > 0 {
		a.Collectives.MeanSpreadNs = spreadSum / int64(n)
	}
	for r := 0; r < nranks; r++ {
		if lastCount[r] > 0 || lateness[r] > 0 {
			a.Collectives.Stragglers = append(a.Collectives.Stragglers, Straggler{
				Rank: int32(r), LastArrivals: lastCount[r], LatenessNs: lateness[r],
			})
		}
	}
	sort.Slice(a.Collectives.Stragglers, func(x, y int) bool {
		sx, sy := a.Collectives.Stragglers[x], a.Collectives.Stragglers[y]
		if sx.LastArrivals != sy.LastArrivals {
			return sx.LastArrivals > sy.LastArrivals
		}
		return sx.LatenessNs > sy.LatenessNs
	})
}

// backpressure ranks sender→receiver pairs by PureBufferQueue stall time.
func (a *Analysis) backpressure(evs []obs.Event) {
	type sd struct{ src, dst int32 }
	m := map[sd]*StallPair{}
	for _, e := range evs {
		if e.Kind != obs.KPBQStall {
			continue
		}
		k := sd{e.Rank, e.Peer}
		sp, ok := m[k]
		if !ok {
			sp = &StallPair{Src: e.Rank, Dst: e.Peer}
			m[k] = sp
		}
		sp.Stalls++
		sp.TotalNs += e.Dur
		if e.Dur > sp.MaxNs {
			sp.MaxNs = e.Dur
		}
	}
	for _, sp := range m {
		a.PBQ = append(a.PBQ, *sp)
	}
	sort.Slice(a.PBQ, func(x, y int) bool {
		if a.PBQ[x].TotalNs != a.PBQ[y].TotalNs {
			return a.PBQ[x].TotalNs > a.PBQ[y].TotalNs
		}
		return a.PBQ[x].Src < a.PBQ[y].Src
	})
}

// breakdown computes the per-rank time and work accounting.
func (a *Analysis) breakdown(evs []obs.Event, perRank [][]int) {
	for r, idxs := range perRank {
		rb := RankBreakdown{Rank: int32(r), Events: len(idxs)}
		if len(idxs) > 0 {
			first := evs[idxs[0]].TS
			last := first
			for _, i := range idxs {
				e := evs[i]
				if end := e.TS + e.Dur; end > last {
					last = end
				}
				switch {
				case e.Kind == obs.KPBQStall || isCollective(e.Kind) || e.Kind == obs.KRmaFence:
					rb.BlockedNs += e.Dur
				case e.Kind == obs.KTaskExecute:
					rb.TaskNs += e.Dur
					rb.TasksExecuted++
					rb.TaskChunks += e.Arg
				case e.Kind == obs.KStealSuccess:
					rb.StealNs += e.Dur
					rb.ChunksStolen += e.Arg
				}
				if sendPath(e.Kind) != "" {
					rb.Sends++
				} else if recvPath(e.Kind) != "" {
					rb.Recvs++
				}
			}
			rb.WallNs = last - first
			rb.OtherNs = rb.WallNs - rb.BlockedNs - rb.TaskNs
			if rb.OtherNs < 0 {
				rb.OtherNs = 0
			}
		}
		a.Ranks = append(a.Ranks, rb)
	}
}

// criticalPath walks backwards from the last event to finish.  At a matched
// receive whose rank was locally idle before the send was posted (previous
// local event ended at or before the send), the path hops to the sender;
// otherwise it stays on the rank.  Local time is attributed to ranks,
// in-flight time to the edges.
func (a *Analysis) criticalPath(evs []obs.Event, perRank [][]int, pos []int) {
	if len(evs) == 0 {
		return
	}
	// Re-derive the matched edges (recv event index -> send event index).
	// Matching is FIFO per (src, dst, path) over the same sorted order, so
	// this mirrors matchMessages exactly.
	matched := make(map[int]int)
	sendQ := map[pairKey][]int{}
	for i, e := range evs {
		if p := sendPath(e.Kind); p != "" {
			k := pairKey{src: e.Rank, dst: e.Peer, path: p}
			sendQ[k] = append(sendQ[k], i)
			continue
		}
		if p := recvPath(e.Kind); p != "" {
			k := pairKey{src: e.Peer, dst: e.Rank, path: p}
			if q := sendQ[k]; len(q) > 0 {
				matched[i] = q[0]
				sendQ[k] = q[1:]
			}
		}
	}

	end := func(i int) int64 { return evs[i].TS + evs[i].Dur }
	endIdx := 0
	for i := range evs {
		if end(i) > end(endIdx) {
			endIdx = i
		}
	}

	rankNs := map[int32]int64{}
	cp := &a.Critical
	cp.EndRank = evs[endIdx].Rank
	cur := endIdx
	cursor := end(endIdx)
	start := evs[endIdx].TS

	for steps := 0; steps <= 2*len(evs); steps++ {
		e := evs[cur]
		prevIdx := -1
		if int(e.Rank) >= 0 && int(e.Rank) < len(perRank) && pos[cur] > 0 {
			prevIdx = perRank[e.Rank][pos[cur]-1]
		}
		if sIdx, ok := matched[cur]; ok {
			s := evs[sIdx]
			if (prevIdx < 0 || end(prevIdx) <= s.TS) && s.TS <= e.TS {
				// The receiver was idle before the send was posted: the
				// sender is the critical predecessor.
				rankNs[e.Rank] += cursor - e.TS
				cp.InFlightNs += e.TS - s.TS
				cp.Hops++
				cur = sIdx
				cursor = s.TS
				continue
			}
		}
		if prevIdx < 0 {
			rankNs[e.Rank] += cursor - e.TS
			start = e.TS
			cp.StartRank = e.Rank
			break
		}
		pEnd := end(prevIdx)
		if pEnd > cursor {
			pEnd = cursor // overlapping spans (a stall inside a task)
		}
		rankNs[e.Rank] += cursor - pEnd
		cursor = pEnd
		cur = prevIdx
		start = evs[prevIdx].TS
		cp.StartRank = evs[prevIdx].Rank
	}
	cp.LengthNs = end(endIdx) - start
	for r, ns := range rankNs {
		cp.RankNs = append(cp.RankNs, RankShare{Rank: r, Ns: ns})
	}
	sort.Slice(cp.RankNs, func(x, y int) bool {
		if cp.RankNs[x].Ns != cp.RankNs[y].Ns {
			return cp.RankNs[x].Ns > cp.RankNs[y].Ns
		}
		return cp.RankNs[x].Rank < cp.RankNs[y].Rank
	})
}
