package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// The live runtime monitor: an HTTP introspection surface that turns a
// running (or hung) Pure program into something inspectable from outside —
// a Prometheus scrape of the metrics registry, a JSON view of every rank's
// current wait state from the runtime's wait registry, and the standard
// net/http/pprof handlers for goroutine/CPU/heap profiles.  The runtime
// serves it when Config.MonitorAddr is set; tests mount Handler() directly
// on an httptest server.

// WaitState is the JSON rendering of one blocked rank's wait record.
type WaitState struct {
	// Kind is the wait-kind name ("p2p-recv", "collective", "rma-fence", ...).
	Kind string `json:"kind"`
	// Peer is the global rank the wait is directed at, -1 when none.
	Peer int `json:"peer"`
	// Tag and Comm are the channel coordinates (p2p kinds).
	Tag  int    `json:"tag"`
	Comm uint64 `json:"comm"`
	// Seq is the SPTD round / rendezvous ticket / link sequence, if any.
	Seq uint64 `json:"seq,omitempty"`
	// Op is the collective op name ("barrier", "allreduce", ...), if any.
	Op string `json:"op,omitempty"`
	// BlockedNs is how long the rank has been in this wait.
	BlockedNs int64 `json:"blocked_ns"`
}

// RankState is one rank's entry in the monitor's /ranks view.
type RankState struct {
	Rank int `json:"rank"`
	// State is "running" (in application code, or in a wait that has not
	// proven slow yet), "blocked" (published a wait record), "done", or
	// "unwound" (done, but by runtime poisoning).
	State string `json:"state"`
	// Wait describes the blocking wait when State is "blocked".
	Wait *WaitState `json:"wait,omitempty"`
}

// LinkState is one transport link's entry in the monitor's /links view —
// the JSON rendering of the transport's per-peer snapshot, which is also
// what the cluster monitor folds into its /cluster view.
type LinkState struct {
	Peer       int    `json:"peer"`
	Up         bool   `json:"up"`
	EverUp     bool   `json:"ever_up"`
	Departed   bool   `json:"departed"`
	Dead       bool   `json:"dead"`
	DeadReason string `json:"dead_reason,omitempty"`
	Unacked    int    `json:"unacked"`

	FramesSent  int64 `json:"frames_sent"`
	FramesRecv  int64 `json:"frames_recv"`
	BytesSent   int64 `json:"bytes_sent"`
	BytesRecv   int64 `json:"bytes_recv"`
	Retransmits int64 `json:"retransmits"`
	RetryRounds int64 `json:"retry_rounds"`
	Reconnects  int64 `json:"reconnects"`
	AcksSent    int64 `json:"acks_sent"`
	AcksRecv    int64 `json:"acks_recv"`
	SendBusy    int64 `json:"send_busy"`

	HeartbeatsSent int64 `json:"heartbeats_sent"`
	HeartbeatsRecv int64 `json:"heartbeats_recv"`
	HeartbeatAgeNs int64 `json:"heartbeat_age_ns"`
	SmoothedRTTNs  int64 `json:"smoothed_rtt_ns"`
	ClockOffsetNs  int64 `json:"clock_offset_ns"`
}

// Monitor serves the live introspection endpoints over one metrics registry
// and one rank-state source.  Both are optional: a nil registry serves an
// empty (but valid) scrape, a nil source serves an empty rank list.
type Monitor struct {
	metrics  *Metrics
	ranks    func() []RankState
	links    func() []LinkState
	onScrape func()
	started  time.Time
	scrapes  *Counter
}

// SetLinks installs the transport link-state source behind /links.  A nil
// source (the default; also any non-transport run) serves an empty list.
func (mon *Monitor) SetLinks(f func() []LinkState) { mon.links = f }

// SetOnScrape installs a hook run at the start of every /metrics scrape,
// before the registry snapshot.  The runtime uses it to sync the per-peer
// link telemetry counters from the transport's internal atomics, so a
// scrape always serves current values without the transport paying for
// registry writes on its hot paths.
func (mon *Monitor) SetOnScrape(f func()) { mon.onScrape = f }

// NewMonitor builds a monitor over the given registry (nil creates a private
// one, so /metrics always serves valid exposition text) and rank-state
// source.  The monitor registers a pure_monitor_scrapes_total counter on the
// registry it serves.
func NewMonitor(m *Metrics, ranks func() []RankState) *Monitor {
	if m == nil {
		m = NewMetrics()
	}
	return &Monitor{
		metrics: m,
		ranks:   ranks,
		started: time.Now(),
		scrapes: m.Counter("pure_monitor_scrapes_total"),
	}
}

// Handler returns the monitor's HTTP handler:
//
//	/            plain-text index of the endpoints
//	/metrics     Prometheus text exposition of the metrics registry
//	/ranks       JSON rank states from the wait registry
//	/debug/pprof the standard runtime profiles
func (mon *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", mon.serveIndex)
	mux.HandleFunc("/metrics", mon.serveMetrics)
	mux.HandleFunc("/ranks", mon.serveRanks)
	mux.HandleFunc("/links", mon.serveLinks)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (mon *Monitor) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "pure runtime monitor (up %v)\n\n", time.Since(mon.started).Round(time.Second))
	fmt.Fprintln(w, "/metrics      Prometheus scrape of the runtime metrics")
	fmt.Fprintln(w, "/ranks        JSON wait state of every rank")
	fmt.Fprintln(w, "/links        JSON per-peer transport link telemetry")
	fmt.Fprintln(w, "/debug/pprof  goroutine / CPU / heap profiles")
}

func (mon *Monitor) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	mon.scrapes.Inc()
	if mon.onScrape != nil {
		mon.onScrape()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := mon.metrics.Snapshot().WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is log nothing and drop the conn.
		return
	}
}

// RanksView is the /ranks response body.
type RanksView struct {
	// Time is the wall-clock scrape time (RFC 3339 with nanoseconds).
	Time string `json:"time"`
	// Ranks holds every rank's state, ordered by rank id.
	Ranks []RankState `json:"ranks"`
}

func (mon *Monitor) serveRanks(w http.ResponseWriter, _ *http.Request) {
	view := RanksView{Time: time.Now().Format(time.RFC3339Nano)}
	if mon.ranks != nil {
		view.Ranks = mon.ranks()
	}
	if view.Ranks == nil {
		view.Ranks = []RankState{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view)
}

// LinksView is the /links response body.
type LinksView struct {
	Time  string      `json:"time"`
	Links []LinkState `json:"links"`
}

func (mon *Monitor) serveLinks(w http.ResponseWriter, _ *http.Request) {
	view := LinksView{Time: time.Now().Format(time.RFC3339Nano)}
	if mon.links != nil {
		view.Links = mon.links()
	}
	if view.Links == nil {
		view.Links = []LinkState{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view)
}
