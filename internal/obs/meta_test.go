package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestTraceBinMetaRoundTrip writes a v2 dump with full metadata — node
// identity, placement, clock samples, link events — and reads it back.
func TestTraceBinMetaRoundTrip(t *testing.T) {
	events := []Event{
		{TS: 100, Dur: 5, Arg: 64, Rank: 0, Peer: 2, Kind: KSendRemote},
		{TS: 900, Arg: 64, Rank: 1, Peer: 3, Kind: KSendRemote},
	}
	meta := TraceMeta{
		Node:          1,
		Nodes:         2,
		StartUnixNano: 1_700_000_000_000_000_000,
		NodeOfRank:    []int32{0, 0, 1, 1},
		Clock: []ClockSample{
			{Peer: 0, LocalUnixNano: 1_700_000_000_000_001_000, OffsetNs: -42_000, DelayNs: 81_000},
			{Peer: 0, LocalUnixNano: 1_700_000_000_000_002_000, OffsetNs: -40_500, DelayNs: 77_000},
		},
		Links: []LinkEvent{
			{TS: 1_700_000_000_000_003_000, Kind: LinkSend, Node: 1, Peer: 0, Seq: 9, Bytes: 64},
			{TS: 1_700_000_000_000_004_000, Kind: LinkRecv, Node: 1, Peer: 0, Seq: 4, Bytes: 32},
			{TS: 1_700_000_000_000_005_000, Kind: LinkRetransmit, Node: 1, Peer: 0, Seq: 9, Bytes: 2},
		},
	}
	var buf bytes.Buffer
	if err := WriteTraceBinMeta(&buf, events, 4, 3, &meta); err != nil {
		t.Fatal(err)
	}
	d, err := ReadTraceBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.NRanks != 4 || d.Dropped != 3 || len(d.Events) != 2 {
		t.Fatalf("shape: %d ranks, %d dropped, %d events", d.NRanks, d.Dropped, len(d.Events))
	}
	if d.Meta.Node != 1 || d.Meta.Nodes != 2 || d.Meta.StartUnixNano != meta.StartUnixNano {
		t.Fatalf("meta header: %+v", d.Meta)
	}
	if len(d.Meta.NodeOfRank) != 4 || d.Meta.NodeOfRank[2] != 1 {
		t.Fatalf("placement: %v", d.Meta.NodeOfRank)
	}
	for i, cs := range meta.Clock {
		if d.Meta.Clock[i] != cs {
			t.Fatalf("clock sample %d: %+v != %+v", i, d.Meta.Clock[i], cs)
		}
	}
	for i, le := range meta.Links {
		if d.Meta.Links[i] != le {
			t.Fatalf("link event %d: %+v != %+v", i, d.Meta.Links[i], le)
		}
	}
	for i, e := range events {
		if d.Events[i] != e {
			t.Fatalf("event %d: %+v != %+v", i, d.Events[i], e)
		}
	}
}

// TestTraceBinEventsOnlyReadsAsNoMeta checks the meta-less writer (and so v1
// consumers' expectations): Node reads back as -1, everything else empty.
func TestTraceBinEventsOnlyReadsAsNoMeta(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceBinEvents(&buf, []Event{{TS: 5, Rank: 0, Kind: KSendEager, Peer: 1}}, 2, 0); err != nil {
		t.Fatal(err)
	}
	d, err := ReadTraceBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Node != -1 || len(d.Meta.NodeOfRank) != 0 || len(d.Meta.Clock) != 0 || len(d.Meta.Links) != 0 {
		t.Fatalf("meta-less dump read back meta %+v, want Node=-1 and empty tables", d.Meta)
	}
}

// TestMonitorLinksEndpoint checks /links serves the installed source and the
// on-scrape hook runs before /metrics snapshots.
func TestMonitorLinksEndpoint(t *testing.T) {
	reg := NewMetrics()
	synced := 0
	mon := NewMonitor(reg, nil)
	mon.SetLinks(func() []LinkState {
		return []LinkState{{Peer: 1, Up: true, EverUp: true, FramesSent: 12, SmoothedRTTNs: 80_000}}
	})
	mon.SetOnScrape(func() {
		synced++
		reg.CounterL("pure_link_frames_sent_total", Label{Key: "peer", Value: "1"}).Store(12)
	})
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	var lv LinksView
	_, body := monitorGet(t, srv, "/links")
	if err := json.Unmarshal([]byte(body), &lv); err != nil {
		t.Fatal(err)
	}
	if len(lv.Links) != 1 || lv.Links[0].Peer != 1 || !lv.Links[0].Up || lv.Links[0].FramesSent != 12 {
		t.Fatalf("/links = %+v", lv)
	}

	_, body = monitorGet(t, srv, "/metrics")
	if synced != 1 {
		t.Fatalf("on-scrape hook ran %d times, want 1", synced)
	}
	if !bytes.Contains([]byte(body), []byte(`pure_link_frames_sent_total{peer="1"} 12`)) {
		t.Fatalf("scrape missing synced labeled series:\n%s", body)
	}
}
