package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.  All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
	_ [56]byte // keep adjacent registry entries off one cacheline
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Store overwrites the count.  It exists for mirroring an external monotonic
// source (e.g. a transport link's internal frame counters) into the
// registry; regular instrumentation should use Add/Inc.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Gauge is a metric that can go up and down (e.g. a sampled queue depth).
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Max raises the gauge to v if v is larger (lock-free high-water mark).
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into buckets bounded above by fixed upper
// bounds, plus an implicit +Inf bucket, and tracks the observation sum —
// the Prometheus histogram model.
type Histogram struct {
	bounds []int64 // ascending upper bounds (inclusive)
	counts []atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1) // i == len(bounds) is the +Inf bucket
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the total observation count.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// LatencyBuckets is the default bucket ladder for nanosecond latencies:
// 100 ns to ~100 ms in half-decade steps.
var LatencyBuckets = []int64{
	100, 316, 1_000, 3_160, 10_000, 31_600, 100_000,
	316_000, 1_000_000, 3_160_000, 10_000_000, 31_600_000, 100_000_000,
}

// Metrics is a named registry of counters, gauges and histograms.  Handles
// are created on first use and stable for the registry's lifetime; resolve
// them once outside hot paths.  Metric names must match the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func checkName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// Counter returns the named counter, creating it if needed.
func (m *Metrics) Counter(name string) *Counter {
	checkName(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (m *Metrics) Gauge(name string) *Gauge {
	checkName(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds if needed (nil bounds mean LatencyBuckets).  Bounds
// are fixed at creation; later calls ignore the argument.
func (m *Metrics) Histogram(name string, bounds []int64) *Histogram {
	checkName(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		if !sort.SliceIsSorted(bounds, func(a, b int) bool { return bounds[a] < bounds[b] }) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		m.hists[name] = h
	}
	return h
}

// CounterSample is one counter's snapshot.
type CounterSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSample is one gauge's snapshot.
type GaugeSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSample is one histogram's snapshot.  Counts[i] is the number of
// observations ≤ Bounds[i] (non-cumulative, per bucket); the final entry of
// Counts is the +Inf bucket.
type HistogramSample struct {
	Name   string  `json:"name"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, ordered by name.  Taking
// one is safe at any time, including while ranks are still running; each
// individual value is atomically read, though the set is not a consistent
// cut across metrics.
type Snapshot struct {
	Counters   []CounterSample   `json:"counters"`
	Gauges     []GaugeSample     `json:"gauges"`
	Histograms []HistogramSample `json:"histograms"`
}

// Snapshot captures the registry's current values.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	for name, c := range m.counters {
		s.Counters = append(s.Counters, CounterSample{Name: name, Value: c.Value()})
	}
	for name, g := range m.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: name, Value: g.Value()})
	}
	for name, h := range m.hists {
		hs := HistogramSample{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(a, b int) bool { return s.Counters[a].Name < s.Counters[b].Name })
	sort.Slice(s.Gauges, func(a, b int) bool { return s.Gauges[a].Name < s.Gauges[b].Name })
	sort.Slice(s.Histograms, func(a, b int) bool { return s.Histograms[a].Name < s.Histograms[b].Name })
	return s
}
