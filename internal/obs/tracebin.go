package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace dump format, so traces survive the recording process and can
// be analyzed offline (cmd/puretrace).  The format is versioned and
// little-endian:
//
//	offset  size  field
//	0       8     magic "PURETRCB"
//	8       4     format version (currently 2)
//	12      4     rank count
//	16      8     dropped-event count (ring wraparound losses at dump time)
//	24      8     event count
//
// Version 2 follows the header with a metadata block for cross-node
// alignment (`puretrace merge`):
//
//	32      4     recording node id (int32; -1 = unknown/merged)
//	36      4     job node count (int32; 0 = unknown)
//	40      8     trace start, unix nanoseconds (0 = unknown)
//	48      4     rank-placement entry count (0 or rank count)
//	52      4     clock-offset sample count
//	56      4     transport link-event count
//	60      ...   placements: node int32 per rank
//	        28*k  clock samples: Peer int32, LocalUnixNano int64,
//	              OffsetNs int64, DelayNs int64
//	        29*m  link events: TS int64, Kind uint8, Node int32, Peer int32,
//	              Seq uint64, Bytes int32
//
// and then the events (33 bytes each: TS int64, Dur int64, Arg int64,
// Rank int32, Peer int32, Kind uint8), stored merged across ranks in
// start-time order, exactly as Trace.Events returns them.  Version 1 dumps
// (no metadata block) remain readable; their meta reads back as unknown.

// traceBinMagic identifies a trace dump; traceBinVersion is bumped on any
// incompatible layout change (readers reject versions they do not know).
const (
	traceBinMagic     = "PURETRCB"
	traceBinVersion   = 2
	traceBinRecSize   = 8 + 8 + 8 + 4 + 4 + 1
	traceBinMetaSize  = 4 + 4 + 8 + 4 + 4 + 4
	traceBinClockSize = 4 + 8 + 8 + 8
	traceBinLinkSize  = 8 + 1 + 4 + 4 + 8 + 4
)

// maxTraceBinAlloc caps the slice pre-allocation while reading a dump, so a
// corrupt header cannot make ReadTraceBin allocate gigabytes up front.
const maxTraceBinAlloc = 1 << 20

// TraceMeta is the recording-time context stored alongside the events in a
// version-2 dump: which node recorded the trace, where each rank lives, and
// the clock/transport records cross-node merging needs.
type TraceMeta struct {
	// Node is the recording node's id; -1 when unknown, or when the dump
	// holds a whole job (a single-process run, or a merged dump).
	Node int
	// Nodes is the job's node count; 0 when unknown.
	Nodes int
	// StartUnixNano is the wall clock at the trace's relative time zero,
	// on the recording node's clock; 0 when unknown.
	StartUnixNano int64
	// NodeOfRank maps each global rank to its node; nil when unknown.
	NodeOfRank []int32
	// Clock is the per-peer clock-offset sample history (heartbeat echoes).
	Clock []ClockSample
	// Links is the transport frame-event history (send/recv/retransmit
	// with link sequence numbers), timestamped in unix nanoseconds.
	Links []LinkEvent
}

// TraceDump is a trace read back from its binary dump: the recorded events
// plus the recording-time metadata an analyzer needs.
type TraceDump struct {
	NRanks  int
	Dropped int64
	Meta    TraceMeta
	Events  []Event
}

// WriteTraceBin dumps the trace in the versioned binary format, including
// any metadata attached with Trace.SetMeta.  Call it only after the
// recording ranks have stopped (the rings are single-writer).
func WriteTraceBin(w io.Writer, t *Trace) error {
	meta := t.Meta()
	return WriteTraceBinMeta(w, t.Events(), t.NRanks(), t.Dropped(), &meta)
}

// WriteTraceBinEvents dumps an already-merged event slice (used when the
// events were transformed or filtered before dumping) with no metadata.
func WriteTraceBinEvents(w io.Writer, events []Event, nranks int, dropped int64) error {
	return WriteTraceBinMeta(w, events, nranks, dropped, nil)
}

// WriteTraceBinMeta dumps an event slice with explicit metadata (nil meta
// writes an unknown-node dump).
func WriteTraceBinMeta(w io.Writer, events []Event, nranks int, dropped int64, meta *TraceMeta) error {
	if nranks <= 0 {
		return fmt.Errorf("obs: trace dump needs a positive rank count, got %d", nranks)
	}
	var m TraceMeta
	if meta != nil {
		m = *meta
	} else {
		m.Node = -1
	}
	if len(m.NodeOfRank) != 0 && len(m.NodeOfRank) != nranks {
		return fmt.Errorf("obs: trace dump placement table has %d entries for %d ranks", len(m.NodeOfRank), nranks)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceBinMagic); err != nil {
		return err
	}
	var hdr [24 + traceBinMetaSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceBinVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(nranks))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(dropped))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(events)))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(int32(m.Node)))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(int32(m.Nodes)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(m.StartUnixNano))
	binary.LittleEndian.PutUint32(hdr[40:], uint32(len(m.NodeOfRank)))
	binary.LittleEndian.PutUint32(hdr[44:], uint32(len(m.Clock)))
	binary.LittleEndian.PutUint32(hdr[48:], uint32(len(m.Links)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for _, n := range m.NodeOfRank {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(n))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	var crec [traceBinClockSize]byte
	for _, s := range m.Clock {
		binary.LittleEndian.PutUint32(crec[0:], uint32(s.Peer))
		binary.LittleEndian.PutUint64(crec[4:], uint64(s.LocalUnixNano))
		binary.LittleEndian.PutUint64(crec[12:], uint64(s.OffsetNs))
		binary.LittleEndian.PutUint64(crec[20:], uint64(s.DelayNs))
		if _, err := bw.Write(crec[:]); err != nil {
			return err
		}
	}
	var lrec [traceBinLinkSize]byte
	for _, e := range m.Links {
		binary.LittleEndian.PutUint64(lrec[0:], uint64(e.TS))
		lrec[8] = byte(e.Kind)
		binary.LittleEndian.PutUint32(lrec[9:], uint32(e.Node))
		binary.LittleEndian.PutUint32(lrec[13:], uint32(e.Peer))
		binary.LittleEndian.PutUint64(lrec[17:], e.Seq)
		binary.LittleEndian.PutUint32(lrec[25:], uint32(e.Bytes))
		if _, err := bw.Write(lrec[:]); err != nil {
			return err
		}
	}
	var rec [traceBinRecSize]byte
	for _, e := range events {
		binary.LittleEndian.PutUint64(rec[0:], uint64(e.TS))
		binary.LittleEndian.PutUint64(rec[8:], uint64(e.Dur))
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.Arg))
		binary.LittleEndian.PutUint32(rec[24:], uint32(e.Rank))
		binary.LittleEndian.PutUint32(rec[28:], uint32(e.Peer))
		rec[32] = byte(e.Kind)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceBin parses a dump written by WriteTraceBin (version 2, or the
// metadata-free version 1).  It validates the magic, the version, and the
// per-event rank range, and reports truncation as an error rather than
// returning a silently short trace.
func ReadTraceBin(r io.Reader) (*TraceDump, error) {
	br := bufio.NewReader(r)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("obs: trace dump header: %w", err)
	}
	if string(hdr[:8]) != traceBinMagic {
		return nil, fmt.Errorf("obs: not a trace dump (bad magic %q)", hdr[:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version != 1 && version != traceBinVersion {
		return nil, fmt.Errorf("obs: trace dump version %d not supported (want <= %d)", version, traceBinVersion)
	}
	nranks := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
	if nranks <= 0 {
		return nil, fmt.Errorf("obs: trace dump has invalid rank count %d", nranks)
	}
	d := &TraceDump{
		NRanks:  nranks,
		Dropped: int64(binary.LittleEndian.Uint64(hdr[16:])),
		Meta:    TraceMeta{Node: -1},
	}
	nevents := binary.LittleEndian.Uint64(hdr[24:])
	if version >= 2 {
		var mhdr [traceBinMetaSize]byte
		if _, err := io.ReadFull(br, mhdr[:]); err != nil {
			return nil, fmt.Errorf("obs: trace dump metadata header: %w", err)
		}
		d.Meta.Node = int(int32(binary.LittleEndian.Uint32(mhdr[0:])))
		d.Meta.Nodes = int(int32(binary.LittleEndian.Uint32(mhdr[4:])))
		d.Meta.StartUnixNano = int64(binary.LittleEndian.Uint64(mhdr[8:]))
		nplace := binary.LittleEndian.Uint32(mhdr[16:])
		nclock := binary.LittleEndian.Uint32(mhdr[20:])
		nlink := binary.LittleEndian.Uint32(mhdr[24:])
		if nplace != 0 && int(nplace) != nranks {
			return nil, fmt.Errorf("obs: trace dump placement table has %d entries for %d ranks", nplace, nranks)
		}
		if nplace > 0 {
			d.Meta.NodeOfRank = make([]int32, nplace)
			var b [4]byte
			for i := range d.Meta.NodeOfRank {
				if _, err := io.ReadFull(br, b[:]); err != nil {
					return nil, fmt.Errorf("obs: trace dump placement table truncated: %w", err)
				}
				d.Meta.NodeOfRank[i] = int32(binary.LittleEndian.Uint32(b[:]))
			}
		}
		d.Meta.Clock = make([]ClockSample, 0, min(uint64(nclock), maxTraceBinAlloc))
		var crec [traceBinClockSize]byte
		for i := uint32(0); i < nclock; i++ {
			if _, err := io.ReadFull(br, crec[:]); err != nil {
				return nil, fmt.Errorf("obs: trace dump clock samples truncated at %d/%d: %w", i, nclock, err)
			}
			d.Meta.Clock = append(d.Meta.Clock, ClockSample{
				Peer:          int32(binary.LittleEndian.Uint32(crec[0:])),
				LocalUnixNano: int64(binary.LittleEndian.Uint64(crec[4:])),
				OffsetNs:      int64(binary.LittleEndian.Uint64(crec[12:])),
				DelayNs:       int64(binary.LittleEndian.Uint64(crec[20:])),
			})
		}
		d.Meta.Links = make([]LinkEvent, 0, min(uint64(nlink), maxTraceBinAlloc))
		var lrec [traceBinLinkSize]byte
		for i := uint32(0); i < nlink; i++ {
			if _, err := io.ReadFull(br, lrec[:]); err != nil {
				return nil, fmt.Errorf("obs: trace dump link events truncated at %d/%d: %w", i, nlink, err)
			}
			d.Meta.Links = append(d.Meta.Links, LinkEvent{
				TS:    int64(binary.LittleEndian.Uint64(lrec[0:])),
				Kind:  LinkEventKind(lrec[8]),
				Node:  int32(binary.LittleEndian.Uint32(lrec[9:])),
				Peer:  int32(binary.LittleEndian.Uint32(lrec[13:])),
				Seq:   binary.LittleEndian.Uint64(lrec[17:]),
				Bytes: int32(binary.LittleEndian.Uint32(lrec[25:])),
			})
		}
	}
	d.Events = make([]Event, 0, min(nevents, maxTraceBinAlloc))
	var rec [traceBinRecSize]byte
	for i := uint64(0); i < nevents; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("obs: trace dump truncated at event %d/%d: %w", i, nevents, err)
		}
		e := Event{
			TS:   int64(binary.LittleEndian.Uint64(rec[0:])),
			Dur:  int64(binary.LittleEndian.Uint64(rec[8:])),
			Arg:  int64(binary.LittleEndian.Uint64(rec[16:])),
			Rank: int32(binary.LittleEndian.Uint32(rec[24:])),
			Peer: int32(binary.LittleEndian.Uint32(rec[28:])),
			Kind: Kind(rec[32]),
		}
		if e.Rank < 0 || int(e.Rank) >= nranks {
			return nil, fmt.Errorf("obs: trace dump event %d has rank %d outside [0,%d)", i, e.Rank, nranks)
		}
		d.Events = append(d.Events, e)
	}
	return d, nil
}
