package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace dump format, so traces survive the recording process and can
// be analyzed offline (cmd/puretrace).  The format is versioned and
// little-endian:
//
//	offset  size  field
//	0       8     magic "PURETRCB"
//	8       4     format version (currently 1)
//	12      4     rank count
//	16      8     dropped-event count (ring wraparound losses at dump time)
//	24      8     event count
//	32      33*n  events: TS int64, Dur int64, Arg int64, Rank int32,
//	              Peer int32, Kind uint8
//
// Events are stored merged across ranks in start-time order, exactly as
// Trace.Events returns them.

// traceBinMagic identifies a trace dump; traceBinVersion is bumped on any
// incompatible layout change (readers reject versions they do not know).
const (
	traceBinMagic   = "PURETRCB"
	traceBinVersion = 1
	traceBinRecSize = 8 + 8 + 8 + 4 + 4 + 1
)

// maxTraceBinAlloc caps the slice pre-allocation while reading a dump, so a
// corrupt header cannot make ReadTraceBin allocate gigabytes up front.
const maxTraceBinAlloc = 1 << 20

// TraceDump is a trace read back from its binary dump: the recorded events
// plus the recording-time metadata an analyzer needs.
type TraceDump struct {
	NRanks  int
	Dropped int64
	Events  []Event
}

// WriteTraceBin dumps the trace in the versioned binary format.  Call it
// only after the recording ranks have stopped (the rings are single-writer).
func WriteTraceBin(w io.Writer, t *Trace) error {
	return WriteTraceBinEvents(w, t.Events(), t.NRanks(), t.Dropped())
}

// WriteTraceBinEvents dumps an already-merged event slice (used when the
// events were transformed or filtered before dumping).
func WriteTraceBinEvents(w io.Writer, events []Event, nranks int, dropped int64) error {
	if nranks <= 0 {
		return fmt.Errorf("obs: trace dump needs a positive rank count, got %d", nranks)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceBinMagic); err != nil {
		return err
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceBinVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(nranks))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(dropped))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [traceBinRecSize]byte
	for _, e := range events {
		binary.LittleEndian.PutUint64(rec[0:], uint64(e.TS))
		binary.LittleEndian.PutUint64(rec[8:], uint64(e.Dur))
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.Arg))
		binary.LittleEndian.PutUint32(rec[24:], uint32(e.Rank))
		binary.LittleEndian.PutUint32(rec[28:], uint32(e.Peer))
		rec[32] = byte(e.Kind)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceBin parses a dump written by WriteTraceBin.  It validates the
// magic, the version, and the per-event rank range, and reports truncation
// as an error rather than returning a silently short trace.
func ReadTraceBin(r io.Reader) (*TraceDump, error) {
	br := bufio.NewReader(r)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("obs: trace dump header: %w", err)
	}
	if string(hdr[:8]) != traceBinMagic {
		return nil, fmt.Errorf("obs: not a trace dump (bad magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != traceBinVersion {
		return nil, fmt.Errorf("obs: trace dump version %d not supported (want %d)", v, traceBinVersion)
	}
	nranks := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
	if nranks <= 0 {
		return nil, fmt.Errorf("obs: trace dump has invalid rank count %d", nranks)
	}
	d := &TraceDump{
		NRanks:  nranks,
		Dropped: int64(binary.LittleEndian.Uint64(hdr[16:])),
	}
	nevents := binary.LittleEndian.Uint64(hdr[24:])
	d.Events = make([]Event, 0, min(nevents, maxTraceBinAlloc))
	var rec [traceBinRecSize]byte
	for i := uint64(0); i < nevents; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("obs: trace dump truncated at event %d/%d: %w", i, nevents, err)
		}
		e := Event{
			TS:   int64(binary.LittleEndian.Uint64(rec[0:])),
			Dur:  int64(binary.LittleEndian.Uint64(rec[8:])),
			Arg:  int64(binary.LittleEndian.Uint64(rec[16:])),
			Rank: int32(binary.LittleEndian.Uint32(rec[24:])),
			Peer: int32(binary.LittleEndian.Uint32(rec[28:])),
			Kind: Kind(rec[32]),
		}
		if e.Rank < 0 || int(e.Rank) >= nranks {
			return nil, fmt.Errorf("obs: trace dump event %d has rank %d outside [0,%d)", i, e.Rank, nranks)
		}
		d.Events = append(d.Events, e)
	}
	return d, nil
}
