package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestRingCounts(t *testing.T) {
	cases := []struct {
		n        uint64
		capacity int
		retained int
		dropped  int64
	}{
		{0, 4, 0, 0},
		{3, 4, 3, 0},  // n < cap
		{4, 4, 4, 0},  // n == cap
		{10, 4, 4, 6}, // n > cap
	}
	for _, c := range cases {
		r, d := ringCounts(c.n, c.capacity)
		if r != c.retained || d != c.dropped {
			t.Errorf("ringCounts(%d, %d) = (%d, %d), want (%d, %d)",
				c.n, c.capacity, r, d, c.retained, c.dropped)
		}
	}
}

func TestNewTraceRoundsCapacityToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {100, 128}, {1 << 10, 1 << 10},
	} {
		tr := NewTrace(1, c.ask)
		if got := len(tr.Rank(0).buf); got != c.want {
			t.Errorf("NewTrace(1, %d) capacity = %d, want %d", c.ask, got, c.want)
		}
	}
	// Masked wraparound must still retain the newest events.
	tr := NewTrace(1, 3) // rounds to 4
	for i := 0; i < 6; i++ {
		tr.Rank(0).Emit(KSendEager, -1, int64(i))
	}
	evs := tr.Rank(0).Events()
	if len(evs) != 4 || evs[0].Arg != 2 || evs[3].Arg != 5 {
		t.Fatalf("retained events = %+v, want args 2..5", evs)
	}
}

func TestTraceBinRoundTrip(t *testing.T) {
	tr := NewTrace(3, 8)
	tr.Rank(0).Emit(KSendEager, 1, 64)
	tr.Rank(1).Emit(KRecvEager, 0, 64)
	start := tr.Rank(2).Now()
	tr.Rank(2).EmitSpan(KAllreduce, -1, 5, start)

	var buf bytes.Buffer
	if err := WriteTraceBin(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := ReadTraceBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.NRanks != 3 || d.Dropped != 0 {
		t.Fatalf("dump meta = %+v, want 3 ranks, 0 dropped", d)
	}
	if !reflect.DeepEqual(d.Events, tr.Events()) {
		t.Fatalf("events mangled:\nwant %+v\ngot  %+v", tr.Events(), d.Events)
	}
}

func TestTraceBinCarriesDropCount(t *testing.T) {
	tr := NewTrace(1, 4)
	for i := 0; i < 10; i++ {
		tr.Rank(0).Emit(KSendEager, -1, int64(i))
	}
	var buf bytes.Buffer
	if err := WriteTraceBin(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d, err := ReadTraceBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dropped != 6 || len(d.Events) != 4 {
		t.Fatalf("dropped=%d events=%d, want 6/4", d.Dropped, len(d.Events))
	}
}

func TestTraceBinNegativeFieldsSurvive(t *testing.T) {
	// Peer -1 and negative Arg must round-trip through the unsigned encoding.
	events := []Event{{TS: 1, Dur: 2, Arg: -7, Rank: 0, Peer: -1, Kind: KBarrier}}
	var buf bytes.Buffer
	if err := WriteTraceBinEvents(&buf, events, 1, 0); err != nil {
		t.Fatal(err)
	}
	d, err := ReadTraceBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Events, events) {
		t.Fatalf("round trip mangled: %+v", d.Events)
	}
}

func TestReadTraceBinRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data func() []byte
		want string
	}{
		{"empty", func() []byte { return nil }, "header"},
		{"bad magic", func() []byte {
			return append([]byte("NOTATRCE"), make([]byte, 24)...)
		}, "magic"},
		{"bad version", func() []byte {
			var buf bytes.Buffer
			WriteTraceBinEvents(&buf, nil, 1, 0)
			b := buf.Bytes()
			b[8] = 99
			return b
		}, "version"},
		{"zero ranks", func() []byte {
			var buf bytes.Buffer
			WriteTraceBinEvents(&buf, nil, 1, 0)
			b := buf.Bytes()
			b[12], b[13], b[14], b[15] = 0, 0, 0, 0
			return b
		}, "rank count"},
		{"truncated events", func() []byte {
			var buf bytes.Buffer
			WriteTraceBinEvents(&buf, []Event{{Rank: 0, Kind: KSendEager}}, 1, 0)
			b := buf.Bytes()
			return b[:len(b)-5]
		}, "truncated"},
		{"rank out of range", func() []byte {
			var buf bytes.Buffer
			WriteTraceBinEvents(&buf, []Event{{Rank: 5, Kind: KSendEager}}, 2, 0)
			return buf.Bytes()
		}, "outside"},
	}
	for _, c := range cases {
		_, err := ReadTraceBin(bytes.NewReader(c.data()))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestReadTraceBinHugeHeaderDoesNotPreallocate(t *testing.T) {
	// A header claiming 2^60 events must fail with a truncation error, not
	// attempt a 2^60-slot allocation.
	var buf bytes.Buffer
	WriteTraceBinEvents(&buf, nil, 1, 0)
	b := buf.Bytes()
	b[24], b[31] = 0xff, 0x0f // nevents = huge
	_, err := ReadTraceBin(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncation error", err)
	}
}

func TestWriteTraceBinRejectsBadRankCount(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceBinEvents(&buf, nil, 0, 0); err == nil {
		t.Fatal("rank count 0 accepted")
	}
}
