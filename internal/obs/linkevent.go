package obs

// Transport-level trace types.  The transport records per-link frame events
// and clock-offset samples against the wall clock (unix nanoseconds, not the
// trace-relative clock rank events use) because their whole purpose is
// cross-node correlation: `puretrace merge` aligns the wall clocks of
// several per-node dumps and then matches LinkSend/LinkRecv pairs on link
// sequence numbers for exact per-link one-way latency.  They are defined
// here, not in internal/transport, so the binary trace dump codec can carry
// them without importing the transport.

// LinkEventKind says what happened on the link.
type LinkEventKind uint8

const (
	// LinkSend: a sequenced frame was assigned its link sequence number and
	// queued/transmitted toward the peer.
	LinkSend LinkEventKind = iota + 1
	// LinkRecv: a sequenced frame was delivered in order from the peer.
	LinkRecv
	// LinkRetransmit: a go-back-N retransmit round replayed the unacked
	// window (Seq is the lowest replayed sequence, Bytes the frame count).
	LinkRetransmit
)

func (k LinkEventKind) String() string {
	switch k {
	case LinkSend:
		return "link-send"
	case LinkRecv:
		return "link-recv"
	case LinkRetransmit:
		return "link-retransmit"
	}
	return "link-unknown"
}

// LinkEvent is one transport frame event.
type LinkEvent struct {
	TS   int64 // unix nanoseconds on the recording node's clock
	Kind LinkEventKind
	Node int32 // node that recorded the event
	Peer int32 // the other end of the link
	Seq  uint64
	// Bytes is the frame payload size; for LinkRetransmit it is the number
	// of frames replayed in the round.
	Bytes int32
}

// ClockSample is one accepted NTP-style offset measurement against a peer
// node, as recorded into trace dumps for post-run alignment.
type ClockSample struct {
	Peer          int32 // peer node id
	LocalUnixNano int64 // local clock when the echo arrived
	OffsetNs      int64 // estimated peer clock minus local clock
	DelayNs       int64 // round-trip time with the peer's hold removed
}
