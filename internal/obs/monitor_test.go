package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func monitorGet(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp, string(body)
}

func TestMonitorMetricsEndpoint(t *testing.T) {
	m := NewMetrics()
	m.Counter("pure_sends_eager_total").Add(42)
	m.Histogram("pure_steal_latency_ns", nil).Observe(123)
	mon := NewMonitor(m, nil)
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	resp, body := monitorGet(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want Prometheus text 0.0.4", ct)
	}
	snap, err := ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not round-trip: %v\n%s", err, body)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "pure_sends_eager_total" && c.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("counter missing from scrape: %+v", snap.Counters)
	}

	// The monitor counts its own scrapes on the registry it serves.
	_, body = monitorGet(t, srv, "/metrics")
	if !strings.Contains(body, "pure_monitor_scrapes_total 2") {
		t.Fatalf("scrape counter missing or wrong:\n%s", body)
	}
}

func TestMonitorNilMetricsStillValid(t *testing.T) {
	mon := NewMonitor(nil, nil)
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()
	resp, body := monitorGet(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if _, err := ParsePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("nil-registry scrape invalid: %v\n%s", err, body)
	}
}

func TestMonitorRanksEndpoint(t *testing.T) {
	states := []RankState{
		{Rank: 0, State: "running"},
		{Rank: 1, State: "blocked", Wait: &WaitState{
			Kind: "p2p-recv", Peer: 0, Tag: 7, Comm: 1, BlockedNs: 5000,
		}},
		{Rank: 2, State: "done"},
	}
	mon := NewMonitor(nil, func() []RankState { return states })
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	resp, body := monitorGet(t, srv, "/ranks")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var view RanksView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("/ranks not valid JSON: %v\n%s", err, body)
	}
	if len(view.Ranks) != 3 {
		t.Fatalf("ranks = %+v, want 3", view.Ranks)
	}
	blocked := view.Ranks[1]
	if blocked.State != "blocked" || blocked.Wait == nil || blocked.Wait.Kind != "p2p-recv" || blocked.Wait.Peer != 0 {
		t.Fatalf("blocked rank mangled: %+v", blocked)
	}
	if view.Ranks[0].Wait != nil {
		t.Fatalf("running rank must omit wait: %+v", view.Ranks[0])
	}
}

func TestMonitorRanksEmptySourceIsEmptyList(t *testing.T) {
	mon := NewMonitor(nil, nil)
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()
	_, body := monitorGet(t, srv, "/ranks")
	var view RanksView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.Ranks == nil || len(view.Ranks) != 0 {
		t.Fatalf("want empty (non-null) rank list, got %s", body)
	}
}

func TestMonitorIndexAndPprof(t *testing.T) {
	mon := NewMonitor(nil, nil)
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	resp, body := monitorGet(t, srv, "/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", resp.StatusCode, body)
	}
	resp, _ = monitorGet(t, srv, "/no-such-page")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}
	resp, body = monitorGet(t, srv, "/debug/pprof/goroutine?debug=1")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof goroutine = %d", resp.StatusCode)
	}
}
