package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// Exporter edge cases: registries with empty histograms and zero-value
// counters must still produce valid, round-trippable exposition text, and
// metric-name validation must accept exactly the Prometheus name grammar.

func TestPrometheusEmptyHistogramRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Histogram("pure_unused_latency_ns", []int64{10, 100}) // no observations
	want := m.Snapshot()

	var buf bytes.Buffer
	if err := want.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "pure_unused_latency_ns_count 0") {
		t.Fatalf("empty histogram missing zero count:\n%s", text)
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Fatalf("empty histogram missing +Inf bucket:\n%s", text)
	}
	got, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestPrometheusZeroValueCountersRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Counter("pure_never_incremented_total")
	m.Gauge("pure_idle_depth")
	want := m.Snapshot()

	var buf bytes.Buffer
	if err := want.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pure_never_incremented_total 0") {
		t.Fatalf("zero counter dropped from exposition:\n%s", buf.String())
	}
	got, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestMetricNameValidity(t *testing.T) {
	m := NewMetrics()
	for _, ok := range []string{"a", "_x", "pure_total", "A9_b:c"} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("valid name %q panicked: %v", ok, r)
				}
			}()
			m.Counter(ok)
		}()
	}
	for _, bad := range []string{"", "9lead", "has space", "dash-ed", "uni·code"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid name %q accepted", bad)
				}
			}()
			m.Counter(bad)
		}()
	}
}

func TestSnapshotJSONEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewMetrics().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "{") {
		t.Fatalf("empty registry JSON = %q", buf.String())
	}
}
