package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Label support for the metrics registry.  A labeled metric is an ordinary
// registry entry whose name is the canonical Prometheus series string
// `base{k1="v1",k2="v2"}` — label keys sorted, values escaped — so the
// existing registry maps, snapshots and JSON encoding carry labeled series
// with no schema change.  The exporter groups series into families (the name
// up to the label block) when emitting TYPE lines, and the parser folds them
// back.  This is what the per-peer link telemetry uses: one counter per
// (metric, peer) pair, e.g. pure_link_frames_sent_total{peer="3"}.

// Label is one key="value" pair on a metric series.
type Label struct {
	Key   string
	Value string
}

// SeriesName builds the canonical series string base{k="v",...}.  Keys are
// sorted, values escaped per the Prometheus text format (backslash, quote,
// newline).  No labels returns base unchanged.  Invalid base names or label
// keys panic, like the registry's bare-name check.
func SeriesName(base string, labels ...Label) string {
	checkName(base)
	if len(labels) == 0 {
		return base
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i, l := range ls {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, base))
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func validLabelKey(k string) bool {
	if k == "" {
		return false
	}
	for i, r := range k {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// unescapeLabelValue reverses escapeLabelValue.
func unescapeLabelValue(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var sb strings.Builder
	esc := false
	for _, r := range v {
		if esc {
			switch r {
			case 'n':
				sb.WriteByte('\n')
			default: // \\ and \" unescape to themselves
				sb.WriteRune(r)
			}
			esc = false
			continue
		}
		if r == '\\' {
			esc = true
			continue
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// seriesFamily returns the metric family of a series name: the name up to
// the label block, or the whole name when unlabeled.
func seriesFamily(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// splitSeries splits a canonical series string into family and label pairs
// (in written order).  A malformed label block returns ok=false.
func splitSeries(series string) (family string, labels []Label, ok bool) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, nil, true
	}
	if !strings.HasSuffix(series, "}") {
		return "", nil, false
	}
	family = series[:i]
	body := series[i+1 : len(series)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return "", nil, false
		}
		key := body[:eq]
		rest := body[eq+2:]
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for j := 0; j < len(rest); j++ {
			if rest[j] == '\\' {
				j++
				continue
			}
			if rest[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return "", nil, false
		}
		labels = append(labels, Label{Key: key, Value: unescapeLabelValue(rest[:end])})
		body = rest[end+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) > 0 {
			return "", nil, false
		}
	}
	return family, labels, true
}

// CounterL returns the counter for base with the given labels, creating it
// if needed.  The handle is stable; resolve it once outside hot paths.
func (m *Metrics) CounterL(base string, labels ...Label) *Counter {
	series := SeriesName(base, labels...)
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[series]
	if !ok {
		c = &Counter{}
		m.counters[series] = c
	}
	return c
}

// GaugeL returns the gauge for base with the given labels, creating it if
// needed.
func (m *Metrics) GaugeL(base string, labels ...Label) *Gauge {
	series := SeriesName(base, labels...)
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[series]
	if !ok {
		g = &Gauge{}
		m.gauges[series] = g
	}
	return g
}
