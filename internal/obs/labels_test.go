package obs

import (
	"strings"
	"testing"
)

func TestSeriesNameCanonicalizes(t *testing.T) {
	cases := []struct {
		base   string
		labels []Label
		want   string
	}{
		{"plain_total", nil, "plain_total"},
		{"x", []Label{{"peer", "3"}}, `x{peer="3"}`},
		// Keys sort, whatever order the caller used.
		{"x", []Label{{"zz", "1"}, {"aa", "2"}}, `x{aa="2",zz="1"}`},
		// Values get the Prometheus escapes: backslash, quote, newline.
		{"x", []Label{{"k", `a\b`}}, `x{k="a\\b"}`},
		{"x", []Label{{"k", `say "hi"`}}, `x{k="say \"hi\""}`},
		{"x", []Label{{"k", "two\nlines"}}, `x{k="two\nlines"}`},
		// Empty values and spaces are legal.
		{"x", []Label{{"k", ""}}, `x{k=""}`},
		{"x", []Label{{"k", "a b"}}, `x{k="a b"}`},
	}
	for _, c := range cases {
		if got := SeriesName(c.base, c.labels...); got != c.want {
			t.Errorf("SeriesName(%q, %v) = %q, want %q", c.base, c.labels, got, c.want)
		}
	}
}

func TestSeriesNamePanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad base", func() { SeriesName("has space", Label{"k", "v"}) })
	mustPanic("empty key", func() { SeriesName("x", Label{"", "v"}) })
	mustPanic("key with dash", func() { SeriesName("x", Label{"bad-key", "v"}) })
	mustPanic("key starting with digit", func() { SeriesName("x", Label{"9k", "v"}) })
}

func TestSplitSeriesRoundTrip(t *testing.T) {
	values := []string{"3", "", "a b", `a\b`, `say "hi"`, "two\nlines", `tricky\`, `{brace,comma}`}
	for _, v := range values {
		series := SeriesName("fam_total", Label{"peer", v}, Label{"zone", "z1"})
		fam, labels, ok := splitSeries(series)
		if !ok || fam != "fam_total" {
			t.Fatalf("splitSeries(%q) = %q, %v, %v", series, fam, labels, ok)
		}
		if len(labels) != 2 || labels[0] != (Label{"peer", v}) || labels[1] != (Label{"zone", "z1"}) {
			t.Fatalf("splitSeries(%q) labels = %v, want peer=%q zone=z1", series, labels, v)
		}
	}
	for _, bad := range []string{`x{`, `x{k=}`, `x{k="v}`, `x{k="v" extra}`, `x{k="a"b="c"}`} {
		if _, _, ok := splitSeries(bad); ok {
			t.Errorf("splitSeries(%q) accepted malformed input", bad)
		}
	}
	if fam, labels, ok := splitSeries("bare_name"); !ok || fam != "bare_name" || labels != nil {
		t.Errorf("splitSeries(bare_name) = %q, %v, %v", fam, labels, ok)
	}
}

// TestLabeledMetricsExportRoundTrip pushes labeled counters and gauges with
// awkward label values through WritePrometheus and back through
// ParsePrometheus, checking values, family typing, and TYPE dedup.
func TestLabeledMetricsExportRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.CounterL("pure_link_frames_sent_total", Label{"peer", "0"}).Add(7)
	m.CounterL("pure_link_frames_sent_total", Label{"peer", "1"}).Add(11)
	m.Counter("pure_plain_total").Add(3)
	m.GaugeL("pure_link_up", Label{"peer", "0"}).Set(1)
	m.GaugeL("weird", Label{"k", `a "quoted\" value` + "\nline2"}).Set(-5)

	var sb strings.Builder
	if err := m.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if n := strings.Count(text, "# TYPE pure_link_frames_sent_total counter"); n != 1 {
		t.Fatalf("TYPE emitted %d times for the labeled family, want 1:\n%s", n, text)
	}
	back, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\n%s", err, text)
	}
	counters := map[string]int64{}
	for _, c := range back.Counters {
		counters[c.Name] = c.Value
	}
	if counters[`pure_link_frames_sent_total{peer="0"}`] != 7 ||
		counters[`pure_link_frames_sent_total{peer="1"}`] != 11 ||
		counters["pure_plain_total"] != 3 {
		t.Fatalf("counters did not round-trip: %v", counters)
	}
	gauges := map[string]int64{}
	for _, g := range back.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges[`pure_link_up{peer="0"}`] != 1 {
		t.Fatalf("labeled gauge did not round-trip: %v", gauges)
	}
	wantWeird := SeriesName("weird", Label{"k", `a "quoted\" value` + "\nline2"})
	if gauges[wantWeird] != -5 {
		t.Fatalf("gauge with escaped value did not round-trip: %v", gauges)
	}
}

// TestCounterLHandleStability checks that the same (base, labels) always
// resolves to the same underlying counter, independent of label order.
func TestCounterLHandleStability(t *testing.T) {
	m := NewMetrics()
	a := m.CounterL("x_total", Label{"a", "1"}, Label{"b", "2"})
	b := m.CounterL("x_total", Label{"b", "2"}, Label{"a", "1"})
	if a != b {
		t.Fatal("label order produced distinct counter handles")
	}
	a.Add(5)
	if b.Value() != 5 {
		t.Fatal("handles disagree on value")
	}
	if g1, g2 := m.GaugeL("y", Label{"k", "v"}), m.GaugeL("y", Label{"k", "v"}); g1 != g2 {
		t.Fatal("GaugeL returned distinct handles for the same series")
	}
}

// TestCounterStoreMirrorsMonotonicSource checks the Store path the link
// telemetry mirror uses: repeated syncs must not double-count.
func TestCounterStoreMirrorsMonotonicSource(t *testing.T) {
	m := NewMetrics()
	c := m.CounterL("mirror_total", Label{"peer", "2"})
	c.Store(10)
	c.Store(10)
	c.Store(25)
	if c.Value() != 25 {
		t.Fatalf("Counter.Store: value = %d, want 25", c.Value())
	}
}
