package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one TYPE comment per family, histogram buckets
// cumulative with an explicit +Inf bucket plus _sum and _count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(bw, "# TYPE %s histogram\n", h.Name)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", h.Name, b, cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum)
		fmt.Fprintf(bw, "%s_sum %d\n", h.Name, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", h.Name, h.Count)
	}
	return bw.Flush()
}

// ParsePrometheus parses text previously produced by WritePrometheus back
// into a Snapshot (cumulative buckets are de-accumulated).  It understands
// exactly the subset of the exposition format this package emits; it exists
// so exports can be round-trip tested and snapshots diffed.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	var s Snapshot
	types := map[string]string{}
	hists := map[string]*HistogramSample{}
	var order []string // histogram first-seen order

	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return s, fmt.Errorf("obs: unparseable sample line %q", line)
		}
		name, valStr := f[0], f[1]
		val, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return s, fmt.Errorf("obs: bad value in %q: %v", line, err)
		}
		// Histogram series: name_bucket{le="..."} / name_sum / name_count.
		if i := strings.Index(name, "_bucket{le=\""); i >= 0 && strings.HasSuffix(name, "\"}") {
			base := name[:i]
			le := name[i+len("_bucket{le=\"") : len(name)-2]
			h := histFor(hists, &order, base)
			if le == "+Inf" {
				h.Counts = append(h.Counts, val)
			} else {
				bound, err := strconv.ParseInt(le, 10, 64)
				if err != nil {
					return s, fmt.Errorf("obs: bad bucket bound in %q: %v", line, err)
				}
				h.Bounds = append(h.Bounds, bound)
				h.Counts = append(h.Counts, val)
			}
			continue
		}
		if base, ok := strings.CutSuffix(name, "_sum"); ok && types[base] == "histogram" {
			histFor(hists, &order, base).Sum = val
			continue
		}
		if base, ok := strings.CutSuffix(name, "_count"); ok && types[base] == "histogram" {
			histFor(hists, &order, base).Count = val
			continue
		}
		switch types[name] {
		case "counter":
			s.Counters = append(s.Counters, CounterSample{Name: name, Value: val})
		case "gauge":
			s.Gauges = append(s.Gauges, GaugeSample{Name: name, Value: val})
		default:
			return s, fmt.Errorf("obs: sample %q has no preceding TYPE line", name)
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	for _, name := range order {
		h := hists[name]
		// De-accumulate the cumulative bucket counts.
		for i := len(h.Counts) - 1; i > 0; i-- {
			h.Counts[i] -= h.Counts[i-1]
		}
		s.Histograms = append(s.Histograms, *h)
	}
	sort.Slice(s.Histograms, func(a, b int) bool { return s.Histograms[a].Name < s.Histograms[b].Name })
	return s, nil
}

func histFor(hists map[string]*HistogramSample, order *[]string, name string) *HistogramSample {
	h, ok := hists[name]
	if !ok {
		h = &HistogramSample{Name: name}
		hists[name] = h
		*order = append(*order, name)
	}
	return h
}

// chromeEvent is one trace_event record (the subset Perfetto needs).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// WriteChromeTrace writes events in the Chrome trace_event JSON format, one
// process per node and one thread per rank, so a run opens directly in
// chrome://tracing or https://ui.perfetto.dev.  nodeOf maps a rank to its
// node (pid); nil places every rank in node 0.  Spans become complete ("X")
// events; instant events use phase "i" with thread scope.
func WriteChromeTrace(w io.Writer, events []Event, nodeOf func(rank int32) int) error {
	if nodeOf == nil {
		nodeOf = func(int32) int { return 0 }
	}
	type payload struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	p := payload{DisplayTimeUnit: "ns", TraceEvents: make([]any, 0, len(events)+8)}
	seen := map[int32]bool{}
	for _, e := range events {
		if !seen[e.Rank] {
			seen[e.Rank] = true
			p.TraceEvents = append(p.TraceEvents, chromeMeta{
				Name: "thread_name", Phase: "M", PID: nodeOf(e.Rank), TID: int(e.Rank),
				Args: map[string]any{"name": fmt.Sprintf("rank %d", e.Rank)},
			})
		}
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.Category(),
			TS:   float64(e.TS) / 1e3,
			PID:  nodeOf(e.Rank),
			TID:  int(e.Rank),
			Args: map[string]any{"arg": e.Arg},
		}
		if e.Peer >= 0 {
			ce.Args["peer"] = e.Peer
		}
		if e.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		p.TraceEvents = append(p.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}
