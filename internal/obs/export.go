package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one TYPE comment per family, histogram buckets
// cumulative with an explicit +Inf bucket plus _sum and _count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// Labeled series share one family (the name up to the label block) and
	// must share one TYPE line; snapshots are name-sorted, so all series of a
	// family are contiguous but a set still dedupes `foo` vs `foo{...}`.
	typed := map[string]bool{}
	typeLine := func(series, kind string) {
		fam := seriesFamily(series)
		if !typed[fam] {
			typed[fam] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, kind)
		}
	}
	for _, c := range s.Counters {
		typeLine(c.Name, "counter")
		fmt.Fprintf(bw, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		typeLine(g.Name, "gauge")
		fmt.Fprintf(bw, "%s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		typeLine(h.Name, "histogram")
		// A labeled histogram series (e.g. parsed back from a cluster-merged
		// scrape) folds its labels into each bucket alongside le.
		fam, labels, ok := splitSeries(h.Name)
		if !ok {
			fam, labels = h.Name, nil
		}
		series := func(suffix string, extra ...Label) string {
			return SeriesName(fam+suffix, append(append([]Label(nil), labels...), extra...)...)
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s %d\n", series("_bucket", Label{"le", strconv.FormatInt(b, 10)}), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(bw, "%s %d\n", series("_bucket", Label{"le", "+Inf"}), cum)
		fmt.Fprintf(bw, "%s %d\n", series("_sum"), h.Sum)
		fmt.Fprintf(bw, "%s %d\n", series("_count"), h.Count)
	}
	return bw.Flush()
}

// ParsePrometheus parses text previously produced by WritePrometheus (or by
// the cluster monitor's merged endpoint, which adds a node label to every
// series) back into a Snapshot (cumulative buckets are de-accumulated).  It
// understands exactly the subset of the exposition format this package
// emits; it exists so exports can be round-trip tested and snapshots diffed.
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	var s Snapshot
	types := map[string]string{} // family -> counter|gauge|histogram
	hists := map[string]*HistogramSample{}
	var order []string // histogram first-seen order

	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) == 4 && f[1] == "TYPE" {
				types[f[2]] = f[3]
			}
			continue
		}
		// Split "series value"; a label value may contain spaces, so cut at
		// the label block's closing brace rather than the first blank.
		var name, valStr string
		if i := strings.LastIndexByte(line, '}'); i >= 0 {
			name, valStr = line[:i+1], strings.TrimSpace(line[i+1:])
		} else {
			f := strings.Fields(line)
			if len(f) != 2 {
				return s, fmt.Errorf("obs: unparseable sample line %q", line)
			}
			name, valStr = f[0], f[1]
		}
		if valStr == "" || strings.ContainsRune(valStr, ' ') {
			return s, fmt.Errorf("obs: unparseable sample line %q", line)
		}
		val, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return s, fmt.Errorf("obs: bad value in %q: %v", line, err)
		}
		fam, labels, ok := splitSeries(name)
		if !ok {
			return s, fmt.Errorf("obs: malformed label block in %q", line)
		}
		// Histogram series: fam_bucket{...,le="..."} / fam_sum / fam_count,
		// where fam minus the suffix has TYPE histogram.  Non-le labels fold
		// back into the histogram's series name.
		if base, isB := strings.CutSuffix(fam, "_bucket"); isB && types[base] == "histogram" {
			le, rest := "", make([]Label, 0, len(labels))
			for _, l := range labels {
				if l.Key == "le" {
					le = l.Value
				} else {
					rest = append(rest, l)
				}
			}
			if le == "" {
				return s, fmt.Errorf("obs: bucket sample without le label: %q", line)
			}
			h := histFor(hists, &order, SeriesName(base, rest...))
			if le == "+Inf" {
				h.Counts = append(h.Counts, val)
			} else {
				bound, err := strconv.ParseInt(le, 10, 64)
				if err != nil {
					return s, fmt.Errorf("obs: bad bucket bound in %q: %v", line, err)
				}
				h.Bounds = append(h.Bounds, bound)
				h.Counts = append(h.Counts, val)
			}
			continue
		}
		if base, isS := strings.CutSuffix(fam, "_sum"); isS && types[base] == "histogram" {
			histFor(hists, &order, SeriesName(base, labels...)).Sum = val
			continue
		}
		if base, isC := strings.CutSuffix(fam, "_count"); isC && types[base] == "histogram" {
			histFor(hists, &order, SeriesName(base, labels...)).Count = val
			continue
		}
		switch types[fam] {
		case "counter":
			s.Counters = append(s.Counters, CounterSample{Name: name, Value: val})
		case "gauge":
			s.Gauges = append(s.Gauges, GaugeSample{Name: name, Value: val})
		default:
			return s, fmt.Errorf("obs: sample %q has no preceding TYPE line", name)
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	for _, name := range order {
		h := hists[name]
		// De-accumulate the cumulative bucket counts.
		for i := len(h.Counts) - 1; i > 0; i-- {
			h.Counts[i] -= h.Counts[i-1]
		}
		s.Histograms = append(s.Histograms, *h)
	}
	sort.Slice(s.Histograms, func(a, b int) bool { return s.Histograms[a].Name < s.Histograms[b].Name })
	return s, nil
}

func histFor(hists map[string]*HistogramSample, order *[]string, name string) *HistogramSample {
	h, ok := hists[name]
	if !ok {
		h = &HistogramSample{Name: name}
		hists[name] = h
		*order = append(*order, name)
	}
	return h
}

// chromeEvent is one trace_event record (the subset Perfetto needs).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// WriteChromeTrace writes events in the Chrome trace_event JSON format, one
// process per node and one thread per rank, so a run opens directly in
// chrome://tracing or https://ui.perfetto.dev.  nodeOf maps a rank to its
// node (pid); nil places every rank in node 0.  Spans become complete ("X")
// events; instant events use phase "i" with thread scope.
func WriteChromeTrace(w io.Writer, events []Event, nodeOf func(rank int32) int) error {
	if nodeOf == nil {
		nodeOf = func(int32) int { return 0 }
	}
	type payload struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	p := payload{DisplayTimeUnit: "ns", TraceEvents: make([]any, 0, len(events)+8)}
	seen := map[int32]bool{}
	for _, e := range events {
		if !seen[e.Rank] {
			seen[e.Rank] = true
			p.TraceEvents = append(p.TraceEvents, chromeMeta{
				Name: "thread_name", Phase: "M", PID: nodeOf(e.Rank), TID: int(e.Rank),
				Args: map[string]any{"name": fmt.Sprintf("rank %d", e.Rank)},
			})
		}
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.Category(),
			TS:   float64(e.TS) / 1e3,
			PID:  nodeOf(e.Rank),
			TID:  int(e.Rank),
			Args: map[string]any{"arg": e.Arg},
		}
		if e.Peer >= 0 {
			ce.Args["peer"] = e.Peer
		}
		if e.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		p.TraceEvents = append(p.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}
