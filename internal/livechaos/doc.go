// Package livechaos holds the live-process chaos suite: tests that launch
// real OS processes (one per virtual node, re-execing the test binary as
// the worker), connect them over the real TCP transport, and then kill,
// starve, or degrade them mid-run.  It complements the in-process chaos
// tests in internal/core (TestChaosTCP*) with the one failure mode those
// cannot express — a whole node dying without unwinding anything — and the
// purerun launcher's end-to-end path.  See docs/TRANSPORT.md.
package livechaos
