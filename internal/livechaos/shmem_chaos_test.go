package livechaos

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	shmemapp "repro/internal/apps/shmem"
	"repro/pure"
)

// The PGAS chaos workload: the remote-atomic histogram from
// internal/apps/shmem, run as one real process per node with PURE_WORKLOAD=
// shmem-hist.  Unlike the Allreduce loop, the hot path here is one-sided —
// ranks fire AtomicAdds into each other's symmetric heaps and only meet at
// the per-round verification barrier — so a peer death must be surfaced out
// of the RMA progress engine, not just out of a collective.

// histChecksum folds a bin vector into the order-independent checksum the
// histogram app reports (sum of count[b]*(b+1)).
func histChecksum(bins []int64) int64 {
	var sum int64
	for b, v := range bins {
		sum += v * int64(b+1)
	}
	return sum
}

// shmemHistCfg is the shared workload shape; the launcher and the worker
// must agree on it so the test can recompute the per-round reference
// checksums the worker prints.
func shmemHistCfg(rounds, items int) shmemapp.HistConfig {
	return shmemapp.HistConfig{Bins: 128, Items: items, Rounds: rounds, Seed: 9}
}

// shmemHistMain is the worker body for PURE_WORKLOAD=shmem-hist: one rank
// per node runs the round-verified histogram, printing a "ROUND rd EXACT
// sum=..." proof line after each early round's barrier + oracle comparison
// (every rank prints, so every surviving process carries the proof).  Exit
// codes match workerMain: 0 success, 3 peer node died, 1 anything else.
func shmemHistMain(tcfg *pure.TransportConfig) {
	nodes := len(tcfg.Addrs)
	rounds := envInt("PURE_HIST_ROUNDS", 3)
	items := envInt("PURE_HIST_ITEMS", 2048)
	cfg := pure.Config{
		NRanks:       nodes,
		Spec:         pure.Spec{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: 1, ThreadsPerCore: 1},
		RanksPerNode: 1,
		Transport:    tcfg,
		HangTimeout:  time.Duration(envInt("PURE_HANG_MS", 20000)) * time.Millisecond,
	}
	hcfg := shmemHistCfg(rounds, items)
	err := pure.Run(cfg, func(r *pure.Rank) {
		h := hcfg
		h.OnRound = func(rd int, exact bool) {
			if rd >= 5 {
				return // a kill run asks for millions of rounds; don't flood stdout
			}
			state := "INEXACT"
			var sum int64
			if exact {
				state = "EXACT"
				sum = histChecksum(shmemapp.HistReference(hcfg, nodes, rd+1))
			}
			fmt.Printf("ROUND %d %s sum=%#x\n", rd, state, sum)
			if rd == 0 {
				fmt.Println("LOOP")
			}
		}
		res, herr := shmemapp.RunHistogram(r, h)
		if herr != nil {
			r.Abort(herr)
			return
		}
		if !res.Exact {
			panic(fmt.Sprintf("inexact histogram: updates=%d sum=%#x", res.Updates, res.Sum))
		}
		fmt.Printf("OK updates=%d sum=%#x\n", res.Updates, res.Sum)
	})
	if err != nil {
		var re *pure.RunError
		if errors.As(err, &re) && re.Cause == pure.CauseNodeDead {
			fmt.Printf("NODEDEAD dead=%v\n", re.DeadNodes)
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestChaosLiveShmemKill SIGKILLs one of three real processes mid-histogram.
// Every survivor must unwind its one-sided RMA traffic with a structured
// node-dead failure naming the dead node, and must already have printed a
// checksum-verified round proof — evidence the partial totals that survived
// the crash were bit-exact before it.
func TestChaosLiveShmemKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and waits on failure detection")
	}
	const hang = 20 * time.Second
	procs := launchWorld(t, 3, []string{
		"PURE_WORKLOAD=shmem-hist",
		"PURE_HIST_ROUNDS=1000000", // far more than will run: the kill cuts it short
		"PURE_HIST_ITEMS=2048",
		"PURE_HB_MS=5",
		"PURE_DEAD_MS=150",
		"PURE_HANG_MS=" + strconv.Itoa(int(hang.Milliseconds())),
	})
	select {
	case <-procs[0].loop:
	case <-time.After(30 * time.Second):
		t.Fatalf("histogram never completed its first round; node 0 stdout:\n%s", procs[0].stdout())
	}
	start := time.Now()
	if err := procs[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	wantRound := fmt.Sprintf("ROUND 0 EXACT sum=%#x",
		histChecksum(shmemapp.HistReference(shmemHistCfg(1, 2048), 3, 1)))
	for _, i := range []int{0, 2} {
		code := waitCode(t, procs[i], hang+10*time.Second)
		if code != 3 {
			t.Fatalf("node %d: exit code %d, want 3 (node-dead); stdout:\n%s", i, code, procs[i].stdout())
		}
		out := procs[i].stdout()
		if !strings.Contains(out, "NODEDEAD dead=[1]") {
			t.Fatalf("node %d: no NODEDEAD report naming node 1; stdout:\n%s", i, out)
		}
		// The surviving partial totals must carry a checksum proof: round 0
		// verified bit-exact against the independently recomputed reference
		// before the kill landed.
		if !strings.Contains(out, wantRound) {
			t.Fatalf("node %d: no pre-death round proof %q; stdout:\n%s", i, wantRound, out)
		}
	}
	if e := time.Since(start); e >= hang {
		t.Fatalf("survivors took %v to report the death, not inside HangTimeout %v", e, hang)
	}
	if code := waitCode(t, procs[1], time.Second); code != -1 {
		t.Fatalf("killed node reported exit code %d, want -1 (signal)", code)
	}
}

// TestChaosLiveShmemLossy drops 15%% of first transmissions on every link of
// a two-process histogram; the RMA retransmit path must recover every remote
// AtomicAdd and every round must verify bit-exact.
func TestChaosLiveShmemLossy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and rides retransmit timeouts")
	}
	const rounds, items = 3, 1024
	procs := launchWorld(t, 2, []string{
		"PURE_WORKLOAD=shmem-hist",
		"PURE_HIST_ROUNDS=" + strconv.Itoa(rounds),
		"PURE_HIST_ITEMS=" + strconv.Itoa(items),
		"PURE_DROP=0.15",
	})
	for i, p := range procs {
		if code := waitCode(t, p, 120*time.Second); code != 0 {
			t.Fatalf("node %d: exit code %d, want 0; stdout:\n%s", i, code, p.stdout())
		}
	}
	out := procs[0].stdout()
	if !strings.Contains(out, "OK") {
		t.Fatalf("node 0 never printed OK; stdout:\n%s", out)
	}
	wantLast := fmt.Sprintf("ROUND %d EXACT sum=%#x", rounds-1,
		histChecksum(shmemapp.HistReference(shmemHistCfg(rounds, items), 2, rounds)))
	if !strings.Contains(out, wantLast) {
		t.Fatalf("node 0 never printed the final verified round %q; stdout:\n%s", wantLast, out)
	}
}
