package livechaos

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pure"
)

// The test binary doubles as the worker: when workerEnv is set, TestMain
// runs one node of an SPMD job instead of the tests.  This keeps the suite
// hermetic — no `go build` at test time, no dependence on another binary's
// location — while still crossing a real process boundary.
const workerEnv = "PURE_LIVECHAOS_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) != "" {
		workerMain()
		return // workerMain exits
	}
	os.Exit(m.Run())
}

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: bad %s=%q\n", name, s)
			os.Exit(1)
		}
		return v
	}
	return def
}

// workerMain is one node's main: iterated verified Allreduces over the
// world until PURE_ITERS runs out.  Exit codes: 0 success, 3 a peer node
// died (prints "NODEDEAD dead=<nodes>"), 1 anything else.
func workerMain() {
	tcfg, err := pure.TransportFromEnv()
	if err != nil || tcfg == nil {
		fmt.Fprintln(os.Stderr, "worker: need launcher environment:", err)
		os.Exit(1)
	}
	if ms := envInt("PURE_HB_MS", 0); ms > 0 {
		tcfg.HeartbeatEvery = time.Duration(ms) * time.Millisecond
	}
	if ms := envInt("PURE_DEAD_MS", 0); ms > 0 {
		tcfg.PeerDeadAfter = time.Duration(ms) * time.Millisecond
	}
	if s := os.Getenv("PURE_DROP"); s != "" {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil {
			os.Exit(1)
		}
		tcfg.Faults.Seed, tcfg.Faults.DropProb = 11, p
		tcfg.RetryBackoff = 2 * time.Millisecond
		tcfg.RetryBudget = 1000
	}
	if os.Getenv("PURE_WORKLOAD") == "shmem-hist" {
		shmemHistMain(tcfg) // exits
	}
	nodes := len(tcfg.Addrs)
	nranks := envInt("PURE_NRANKS", nodes)
	iters := envInt("PURE_ITERS", 100)
	cfg := pure.Config{
		NRanks:      nranks,
		Spec:        pure.Spec{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: nranks / nodes, ThreadsPerCore: 1},
		Transport:   tcfg,
		HangTimeout: time.Duration(envInt("PURE_HANG_MS", 20000)) * time.Millisecond,
		MonitorAddr: os.Getenv("PURE_MONITOR"),
	}
	err = pure.Run(cfg, func(r *pure.Rank) {
		w := r.World()
		me, n := r.ID(), r.NRanks()
		in, out := make([]byte, 8), make([]byte, 8)
		for i := 0; i < iters; i++ {
			binary.LittleEndian.PutUint64(in, uint64(me+i))
			w.Allreduce(in, out, pure.Sum, pure.Int64)
			want := uint64(n*i + n*(n-1)/2)
			if got := binary.LittleEndian.Uint64(out); got != want {
				panic(fmt.Sprintf("iter %d: allreduce %d, want %d", i, got, want))
			}
			if me == 0 && i == 0 {
				fmt.Println("LOOP")
			}
		}
		if me == 0 {
			fmt.Println("OK")
		}
	})
	if err != nil {
		var re *pure.RunError
		if errors.As(err, &re) && re.Cause == pure.CauseNodeDead {
			fmt.Printf("NODEDEAD dead=%v\n", re.DeadNodes)
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// proc is one launched worker process plus its collected stdout.
type proc struct {
	cmd  *exec.Cmd
	mu   sync.Mutex
	out  []string
	loop chan struct{} // closed when a "LOOP" line arrives
	eof  chan struct{} // closed when the stdout scanner drains to EOF
}

func (p *proc) stdout() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.out, "\n")
}

// launchWorld starts one worker process per node and returns the handles.
// Optional perNode funcs contribute extra environment entries for each node
// (e.g. a distinct PURE_MONITOR address per process).
func launchWorld(t *testing.T, nodes int, extraEnv []string, perNode ...func(node int) []string) []*proc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, nodes)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	job := uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())
	procs := make([]*proc, nodes)
	for i := range procs {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			workerEnv+"=1",
			"PURE_NODE="+strconv.Itoa(i),
			"PURE_ADDRS="+strings.Join(addrs, ","),
			"PURE_JOB="+strconv.FormatUint(job, 10),
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		for _, f := range perNode {
			cmd.Env = append(cmd.Env, f(i)...)
		}
		cmd.Stderr = os.Stderr
		op, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		p := &proc{cmd: cmd, loop: make(chan struct{}), eof: make(chan struct{})}
		go func() {
			defer close(p.eof)
			sc := bufio.NewScanner(op)
			closed := false
			for sc.Scan() {
				line := sc.Text()
				p.mu.Lock()
				p.out = append(p.out, line)
				p.mu.Unlock()
				if !closed && strings.HasPrefix(line, "LOOP") {
					closed = true
					close(p.loop)
				}
			}
		}()
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		t.Cleanup(func() { p.cmd.Process.Kill() })
	}
	return procs
}

// waitCode waits for the process with a deadline and returns its exit code.
// It waits for the stdout scanner to drain to EOF before calling Wait —
// Wait closes the pipe, and calling it with the scanner mid-read both races
// the close and can lose the worker's final lines (the NODEDEAD report the
// tests assert on arrives last).
func waitCode(t *testing.T, p *proc, d time.Duration) int {
	t.Helper()
	timedOut := false
	select {
	case <-p.eof:
	case <-time.After(d):
		timedOut = true
		p.cmd.Process.Kill()
		<-p.eof
	}
	p.cmd.Wait()
	if timedOut {
		t.Fatalf("worker did not exit within %v; stdout:\n%s", d, p.stdout())
	}
	return p.cmd.ProcessState.ExitCode()
}

// TestChaosLiveSIGKILL is the tentpole acceptance scenario: three real
// processes run a verified Allreduce loop, one is SIGKILLed mid-loop, and
// the survivors must return a structured node-dead failure naming the dead
// node — via the transport failure detector, well inside the watchdog's
// HangTimeout — instead of hanging.
func TestChaosLiveSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and waits on failure detection")
	}
	const hang = 20 * time.Second
	procs := launchWorld(t, 3, []string{
		"PURE_ITERS=1000000", // far more than will run: the kill cuts it short
		"PURE_HB_MS=5",
		"PURE_DEAD_MS=150",
		"PURE_HANG_MS=" + strconv.Itoa(int(hang.Milliseconds())),
	})
	select {
	case <-procs[0].loop:
	case <-time.After(30 * time.Second):
		t.Fatalf("world never completed its first Allreduce; node 0 stdout:\n%s", procs[0].stdout())
	}
	start := time.Now()
	if err := procs[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		code := waitCode(t, procs[i], hang+10*time.Second)
		if code != 3 {
			t.Fatalf("node %d: exit code %d, want 3 (node-dead); stdout:\n%s", i, code, procs[i].stdout())
		}
		// Every survivor must name the node that was killed — including the
		// one that learned of the death second-hand via a peer's abort Bye
		// (the Bye carries the originator's dead-node list).
		out := procs[i].stdout()
		if !strings.Contains(out, "NODEDEAD dead=[1]") {
			t.Fatalf("node %d: no NODEDEAD report naming node 1; stdout:\n%s", i, out)
		}
	}
	if e := time.Since(start); e >= hang {
		t.Fatalf("survivors took %v to report the death, not inside HangTimeout %v", e, hang)
	}
	if code := waitCode(t, procs[1], time.Second); code != -1 {
		t.Fatalf("killed node reported exit code %d, want -1 (signal)", code)
	}
}

// TestChaosLiveLossy drops 15%% of first transmissions on every link of a
// two-process world; the ack/retransmit protocol must recover every frame
// and the run must complete with every Allreduce verified.
func TestChaosLiveLossy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and rides retransmit timeouts")
	}
	procs := launchWorld(t, 2, []string{
		"PURE_ITERS=100",
		"PURE_DROP=0.15",
	})
	for i, p := range procs {
		if code := waitCode(t, p, 60*time.Second); code != 0 {
			t.Fatalf("node %d: exit code %d, want 0; stdout:\n%s", i, code, p.stdout())
		}
	}
	if out := procs[0].stdout(); !strings.Contains(out, "OK") {
		t.Fatalf("node 0 never printed OK; stdout:\n%s", out)
	}
}
