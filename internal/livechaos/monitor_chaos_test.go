package livechaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeLinks fetches one node's /links view; any error means the monitor
// (and so the worker) is gone.
func scrapeLinks(addr string) (*obs.LinksView, error) {
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get("http://" + addr + "/links")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/links: %s", resp.Status)
	}
	var lv obs.LinksView
	if err := json.Unmarshal(body, &lv); err != nil {
		return nil, err
	}
	return &lv, nil
}

// TestChaosDyingLinkVisibleOnMonitor is the cluster-observability acceptance
// scenario for failures: a two-node world runs with per-process live
// monitors (PURE_MONITOR, exactly as purerun -monitor wires it), one node is
// SIGKILLed, and the survivor's /links view must show the link to the dead
// peer dying — heartbeat age climbing far past the heartbeat interval, or
// already marked dead — while the survivor is still running, i.e. before the
// failure detector turns the silence into a structured *RunError
// (CauseNodeDead, exit code 3).
func TestChaosDyingLinkVisibleOnMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and waits on failure detection")
	}
	monAddrs := make([]string, 2)
	for i := range monAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		monAddrs[i] = ln.Addr().String()
		ln.Close()
	}
	procs := launchWorld(t, 2, []string{
		"PURE_ITERS=1000000", // far more than will run: the kill cuts it short
		"PURE_HB_MS=5",
		"PURE_DEAD_MS=2000", // long detection window: the dying link stays observable
		"PURE_HANG_MS=20000",
	}, func(node int) []string {
		return []string{"PURE_MONITOR=" + monAddrs[node]}
	})
	select {
	case <-procs[0].loop:
	case <-time.After(30 * time.Second):
		t.Fatalf("world never completed its first Allreduce; node 0 stdout:\n%s", procs[0].stdout())
	}

	// Healthy first: node 0's monitor must show a live, traffic-carrying
	// link to node 1 before the chaos.
	deadline := time.Now().Add(10 * time.Second)
	for {
		lv, err := scrapeLinks(monAddrs[0])
		if err == nil && len(lv.Links) == 1 && lv.Links[0].Peer == 1 &&
			lv.Links[0].Up && lv.Links[0].FramesSent > 0 && lv.Links[0].HeartbeatsRecv > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 0 monitor never showed a healthy link to node 1 (last: %+v, err %v)", lv, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := procs[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// The dying link must be observable on the survivor's monitor before the
	// survivor exits: heartbeats stop, so the heartbeat age climbs far past
	// the 5ms interval (or the transport already marks the peer dead) while
	// /links still answers.
	const dying = 250 * time.Millisecond // 50 missed heartbeat intervals
	sawDying := false
	deadline = time.Now().Add(15 * time.Second)
	for !sawDying && time.Now().Before(deadline) {
		lv, err := scrapeLinks(monAddrs[0])
		if err != nil {
			break // monitor gone: the survivor already tore down
		}
		if len(lv.Links) == 1 && lv.Links[0].Peer == 1 &&
			(lv.Links[0].Dead || lv.Links[0].HeartbeatAgeNs > int64(dying)) {
			sawDying = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDying {
		t.Fatalf("node 0's /links never showed the link to the killed node dying before teardown")
	}

	// And only after that observability window does the structured failure
	// surface: exit code 3 naming the dead node.
	if code := waitCode(t, procs[0], 30*time.Second); code != 3 {
		t.Fatalf("survivor exit code %d, want 3 (node-dead); stdout:\n%s", code, procs[0].stdout())
	}
	if out := procs[0].stdout(); !strings.Contains(out, "NODEDEAD dead=[1]") {
		t.Fatalf("survivor did not name node 1 dead; stdout:\n%s", out)
	}
}
