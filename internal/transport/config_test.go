package transport

import (
	"strings"
	"testing"
	"time"
)

// validConfig is a defaults-resolved two-node configuration the error cases
// below perturb one field at a time.
func validConfig() Config {
	return Config{Node: 0, Addrs: []string{"127.0.0.1:9001", "127.0.0.1:9002"}}.WithDefaults()
}

func TestConfigValidateOK(t *testing.T) {
	c := validConfig()
	if err := c.Validate(0); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := c.Validate(time.Second); err != nil {
		t.Fatalf("valid config rejected under hang timeout: %v", err)
	}
}

// TestConfigValidateErrors checks that every way the transport configuration
// can be wrong produces an error that names the field and says what to do
// about it — these strings surface verbatim from pure.Run, so they are the
// user's only diagnostic.
func TestConfigValidateErrors(t *testing.T) {
	cases := []struct {
		name        string
		mut         func(*Config)
		hangTimeout time.Duration
		want        []string
	}{
		{"empty addrs", func(c *Config) { c.Addrs = nil }, 0,
			[]string{"Addrs is empty", "one listen address per node"}},
		{"node negative", func(c *Config) { c.Node = -1 }, 0,
			[]string{"Node -1 out of range"}},
		{"node past table", func(c *Config) { c.Node = 2 }, 0,
			[]string{"Node 2 out of range", "[0,2)"}},
		{"empty addr entry", func(c *Config) { c.Addrs[1] = "" }, 0,
			[]string{"Addrs[1] is empty"}},
		{"addr without port", func(c *Config) { c.Addrs[1] = "hostonly" }, 0,
			[]string{`Addrs[1] = "hostonly" has no port`, "host:port"}},
		{"duplicate addrs", func(c *Config) { c.Addrs[1] = c.Addrs[0] }, 0,
			[]string{"Addrs[0] and Addrs[1]", "cannot share a listen address"}},
		{"negative heartbeat", func(c *Config) { c.HeartbeatEvery = -time.Second }, 0,
			[]string{"HeartbeatEvery must be positive"}},
		{"negative dial timeout", func(c *Config) { c.DialTimeout = -1 }, 0,
			[]string{"DialTimeout must be positive"}},
		{"peer-dead below heartbeat", func(c *Config) { c.PeerDeadAfter = c.HeartbeatEvery / 2 }, 0,
			[]string{"PeerDeadAfter", "below HeartbeatEvery", "dead between heartbeats"}},
		{"peer-dead above hang timeout", func(c *Config) {}, 100 * time.Millisecond,
			[]string{"PeerDeadAfter", "must be below HangTimeout", "anonymous stall"}},
		{"negative retry budget", func(c *Config) { c.RetryBudget = -3 }, 0,
			[]string{"RetryBudget must not be negative", "default 16"}},
		{"negative drain timeout", func(c *Config) { c.DrainTimeout = -time.Second }, 0,
			[]string{"DrainTimeout must be positive"}},
		{"negative max unacked", func(c *Config) { c.MaxUnacked = -1 }, 0,
			[]string{"MaxUnacked must not be negative"}},
		{"drop prob above one", func(c *Config) { c.Faults.DropProb = 1.5 }, 0,
			[]string{"Faults.DropProb must be in [0, 1]", "1.5"}},
		{"negative delay prob", func(c *Config) { c.Faults.DelayProb = -0.25 }, 0,
			[]string{"Faults.DelayProb must be in [0, 1]"}},
		{"delay prob without max", func(c *Config) { c.Faults.DelayProb = 0.5 }, 0,
			[]string{"Faults.DelayProb 0.5 needs a positive Faults.DelayMax"}},
	}
	for _, tc := range cases {
		c := validConfig()
		tc.mut(&c)
		err := c.Validate(tc.hangTimeout)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q missing %q", tc.name, err, want)
			}
		}
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{Addrs: []string{"a:1", "b:2"}}.WithDefaults()
	if c.HeartbeatEvery != DefaultHeartbeatEvery {
		t.Fatalf("HeartbeatEvery = %v", c.HeartbeatEvery)
	}
	if c.PeerDeadAfter != DefaultPeerDeadFactor*DefaultHeartbeatEvery {
		t.Fatalf("PeerDeadAfter = %v", c.PeerDeadAfter)
	}
	if c.RetryBudget != DefaultRetryBudget || c.MaxUnacked != DefaultMaxUnacked {
		t.Fatalf("RetryBudget = %d MaxUnacked = %d", c.RetryBudget, c.MaxUnacked)
	}
	if c.DrainTimeout != DefaultDrainTimeout {
		t.Fatalf("DrainTimeout = %v, want %v", c.DrainTimeout, DefaultDrainTimeout)
	}
	// A custom heartbeat scales the derived dead interval.
	c2 := Config{HeartbeatEvery: 5 * time.Millisecond}.WithDefaults()
	if c2.PeerDeadAfter != DefaultPeerDeadFactor*5*time.Millisecond {
		t.Fatalf("derived PeerDeadAfter = %v", c2.PeerDeadAfter)
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvAddrs, "")
	cfg, err := FromEnv()
	if cfg != nil || err != nil {
		t.Fatalf("unset env: %v, %v", cfg, err)
	}

	t.Setenv(EnvAddrs, "127.0.0.1:1,127.0.0.1:2,127.0.0.1:3")
	if _, err := FromEnv(); err == nil {
		t.Fatal("missing PURE_NODE accepted")
	}
	t.Setenv(EnvNode, "nope")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad PURE_NODE accepted")
	}
	t.Setenv(EnvNode, "2")
	t.Setenv(EnvJob, "77")
	cfg, err = FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Node != 2 || len(cfg.Addrs) != 3 || cfg.Job != 77 {
		t.Fatalf("env config: %+v", cfg)
	}
	t.Setenv(EnvJob, "not-a-number")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad PURE_JOB accepted")
	}
}
