package transport

import (
	"sync"

	"repro/internal/obs"
)

// linkEventRing is the per-link transport trace: a small mutex-guarded ring
// of frame events (send/recv/retransmit with link sequence numbers), the
// same newest-wins discipline as the per-rank trace rings.  It exists only
// when Config.LinkEvents > 0 — the runtime enables it exactly when rank
// tracing is on — so the send hot path pays nothing otherwise.
type linkEventRing struct {
	mu    sync.Mutex
	buf   []obs.LinkEvent
	total uint64 // events ever recorded; buf[total%len] is the next write slot
}

func newLinkEventRing(capacity int) *linkEventRing {
	if capacity <= 0 {
		return nil
	}
	return &linkEventRing{buf: make([]obs.LinkEvent, capacity)}
}

func (r *linkEventRing) add(e obs.LinkEvent) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained events oldest-first.
func (r *linkEventRing) snapshot() []obs.LinkEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	out := make([]obs.LinkEvent, 0, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(start+i)%uint64(len(r.buf))])
	}
	return out
}

// dropped returns how many events were overwritten by ring wraparound.
func (r *linkEventRing) dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total > uint64(len(r.buf)) {
		return r.total - uint64(len(r.buf))
	}
	return 0
}
