// Package transport is the real inter-node transport: frames over stream
// connections (TCP by default, behind the Backend interface so QUIC- or
// RDMA-style transports can slot in), with the same reliability discipline
// the in-process simulator's link layer uses — per-link sequence numbers,
// cumulative acknowledgements, retransmission with exponential backoff
// under a retry budget — plus connection establishment with retry and
// backoff, transparent reconnect-with-resend on broken connections, and
// per-link heartbeats feeding a node-failure detector.
//
// One Transport instance represents one node (one process) of a Pure job.
// Nodes are fully meshed: every node pair shares exactly one link, dialed
// by the lower-numbered node and accepted by the higher-numbered one, so
// the pair never races two connections against each other.  The internal
// core runtime routes every inter-node byte — two-sided sends, collective
// leader-tree traffic, and one-sided RMA frames — through Send, and
// receives them via the Handlers callbacks.
//
// TCP already retransmits within one connection; the link layer here exists
// for everything TCP does not cover: frames buffered in a dead process's
// socket, connections broken mid-stream (delivery resumes on the next
// connection exactly after the receiver's delivered watermark), injected
// drops from the fault plan, and silent peers (heartbeat timeout).  See
// docs/TRANSPORT.md for the wire format and the failure model.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire constants.
const (
	// frameMagic marks every frame header ("PF", little-endian).
	frameMagic = 0x5046
	// wireVersion is the frame-format version; both ends must match.
	wireVersion = 1
	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 48
	// MaxPayload bounds a single frame's payload (64 MiB).  A decoder that
	// trusted the length field unconditionally could be made to allocate
	// arbitrary memory by one corrupt header.
	MaxPayload = 1 << 26
)

// Kind identifies a frame's role on the link.
type Kind uint8

// Frame kinds.
const (
	// KindHello opens a connection: the dialer identifies itself and its
	// delivered watermark (control.go describes the payload).
	KindHello Kind = iota + 1
	// KindWelcome answers a Hello from the accepting side, carrying the
	// same payload shape.
	KindWelcome
	// KindData carries one runtime message (two-sided payload, collective
	// leader traffic, or an encoded RMA frame).  Sequenced and reliable.
	KindData
	// KindAck carries only the cumulative delivered watermark (every frame
	// piggybacks it; an explicit Ack flows when the receiver has nothing
	// else to say).
	KindAck
	// KindHeartbeat keeps an idle link observably alive; its absence is
	// what declares a peer dead.
	KindHeartbeat
	// KindBye announces a deliberate departure: graceful at the end of a
	// run, or abort-carrying when the peer's runtime poisoned itself.
	KindBye
	// KindApplied carries an RMA applied-watermark update from a target
	// rank back to an origin rank.  Sequenced and reliable.
	KindApplied
)

var kindNames = [...]string{
	"invalid", "hello", "welcome", "data", "ack", "heartbeat", "bye", "applied",
}

// String returns the kind's stable name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// sequenced reports whether the kind rides the reliable in-order stream
// (assigned a link sequence number, buffered for retransmission, delivered
// exactly once in order).  Control frames are fire-and-forget.
func (k Kind) sequenced() bool { return k == KindData || k == KindApplied }

// Frame is one decoded transport frame.
//
// Header layout (little-endian, HeaderLen bytes):
//
//	off  size  field
//	0    2     magic (0x5046)
//	2    1     version
//	3    1     kind
//	4    4     srcNode
//	8    8     seq   (link sequence; 0 on control frames)
//	16   8     ack   (sender's cumulative delivered watermark)
//	24   4     srcRank
//	28   4     dstRank
//	32   4     tag
//	36   4     payload length
//	40   8     comm
type Frame struct {
	Kind    Kind
	SrcNode int32  // sending node id
	Seq     uint64 // link sequence (sequenced kinds only)
	Ack     uint64 // piggybacked cumulative ack: highest seq the sender has delivered
	SrcRank int32  // global source rank (KindData/KindApplied)
	DstRank int32  // global destination rank (KindData/KindApplied)
	Tag     int32  // channel tag (KindData/KindApplied)
	Comm    uint64 // communicator id (KindData/KindApplied)
	Payload []byte
}

// AppendFrame serializes f (header plus payload) onto dst and returns the
// extended slice.  It panics on oversized payloads — the runtime never
// produces one, and silently truncating would corrupt the stream.
func AppendFrame(dst []byte, f *Frame) []byte {
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("transport: %d-byte payload exceeds the %d-byte frame bound", len(f.Payload), MaxPayload))
	}
	var h [HeaderLen]byte
	binary.LittleEndian.PutUint16(h[0:], frameMagic)
	h[2] = wireVersion
	h[3] = byte(f.Kind)
	binary.LittleEndian.PutUint32(h[4:], uint32(f.SrcNode))
	binary.LittleEndian.PutUint64(h[8:], f.Seq)
	binary.LittleEndian.PutUint64(h[16:], f.Ack)
	binary.LittleEndian.PutUint32(h[24:], uint32(f.SrcRank))
	binary.LittleEndian.PutUint32(h[28:], uint32(f.DstRank))
	binary.LittleEndian.PutUint32(h[32:], uint32(f.Tag))
	binary.LittleEndian.PutUint32(h[36:], uint32(len(f.Payload)))
	binary.LittleEndian.PutUint64(h[40:], f.Comm)
	dst = append(dst, h[:]...)
	return append(dst, f.Payload...)
}

// Encode serializes f into a fresh buffer.
func (f *Frame) Encode() []byte {
	return AppendFrame(make([]byte, 0, HeaderLen+len(f.Payload)), f)
}

// DecodeFrame parses one frame from the front of b, returning the frame and
// the number of bytes consumed.  The payload aliases b.  A short buffer,
// bad magic/version, unknown kind, or oversized length is an error.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderLen {
		return Frame{}, 0, fmt.Errorf("transport: %d-byte buffer shorter than the %d-byte header", len(b), HeaderLen)
	}
	f, n, err := decodeHeader(b)
	if err != nil {
		return Frame{}, 0, err
	}
	if len(b) < HeaderLen+n {
		return Frame{}, 0, fmt.Errorf("transport: frame payload truncated: header says %d bytes, %d available", n, len(b)-HeaderLen)
	}
	f.Payload = b[HeaderLen : HeaderLen+n]
	return f, HeaderLen + n, nil
}

// decodeHeader validates and parses the fixed header, returning the frame
// (payload unset) and the payload length.
func decodeHeader(h []byte) (Frame, int, error) {
	if m := binary.LittleEndian.Uint16(h[0:]); m != frameMagic {
		return Frame{}, 0, fmt.Errorf("transport: bad frame magic %#x (want %#x)", m, frameMagic)
	}
	if v := h[2]; v != wireVersion {
		return Frame{}, 0, fmt.Errorf("transport: frame version %d not supported (want %d)", v, wireVersion)
	}
	k := Kind(h[3])
	if k < KindHello || k > KindApplied {
		return Frame{}, 0, fmt.Errorf("transport: unknown frame kind %d", h[3])
	}
	n := binary.LittleEndian.Uint32(h[36:])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("transport: %d-byte payload exceeds the %d-byte frame bound", n, MaxPayload)
	}
	return Frame{
		Kind:    k,
		SrcNode: int32(binary.LittleEndian.Uint32(h[4:])),
		Seq:     binary.LittleEndian.Uint64(h[8:]),
		Ack:     binary.LittleEndian.Uint64(h[16:]),
		SrcRank: int32(binary.LittleEndian.Uint32(h[24:])),
		DstRank: int32(binary.LittleEndian.Uint32(h[28:])),
		Tag:     int32(binary.LittleEndian.Uint32(h[32:])),
		Comm:    binary.LittleEndian.Uint64(h[40:]),
	}, int(n), nil
}

// frameReader reads frames off one connection, reusing its header and
// payload buffers across calls (the payload of a returned frame is only
// valid until the next Read).
type frameReader struct {
	r       io.Reader
	hdr     [HeaderLen]byte
	payload []byte
}

// Read blocks for the next complete frame.
func (fr *frameReader) Read() (Frame, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return Frame{}, err
	}
	f, n, err := decodeHeader(fr.hdr[:])
	if err != nil {
		return Frame{}, err
	}
	if cap(fr.payload) < n {
		fr.payload = make([]byte, n)
	}
	f.Payload = fr.payload[:n]
	if _, err := io.ReadFull(fr.r, f.Payload); err != nil {
		return Frame{}, fmt.Errorf("transport: reading %d-byte %s payload: %w", n, f.Kind, err)
	}
	return f, nil
}
