package transport

import (
	"bufio"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// link is the reliable channel between this node and one peer.  Exactly one
// link exists per node pair; the lower-numbered node dials, the higher one
// accepts, and the pair never races two connections against each other.
//
// Sender side (guarded by mu): frames get consecutive sequence numbers and
// are buffered in unacked until the peer's cumulative ack covers them.  The
// ticker retransmits the whole unacked window when the ack stalls past the
// backoff (go-back-N), and declares the peer dead when RetryBudget rounds
// bring no progress.  A frame queued while the connection is down is simply
// buffered; (re)connection replays everything past the peer's delivered
// watermark.
//
// Receiver side (guarded by recvMu): sequenced frames are delivered to the
// handlers strictly in order — the next expected sequence is delivered,
// duplicates (at or below the watermark) are dropped, and anything past the
// expected sequence is dropped too, to be recovered by the sender's
// retransmission.  Acks piggyback on every outgoing frame; an explicit ack
// flows when the reader drains its buffer (the stream went idle) or every
// ackEvery frames, whichever comes first.
type link struct {
	t      *Transport
	peer   int
	addr   string
	dialer bool // this side initiates connections (t.cfg.Node < peer)

	mu       sync.Mutex
	conn     Conn
	bw       *bufio.Writer
	gen      uint64 // connection generation; readers of older generations are stale
	dialing  bool   // a dialLoop goroutine is active
	nextSeq  uint64
	unacked  []outFrame // resend buffer, ascending seq
	ackedOut uint64     // highest seq the peer has acked
	attempts int        // retransmit rounds since the last ack progress
	retryAt  time.Time  // when the next retransmit round is due
	scratch  []byte     // control-frame encode buffer
	rng      uint64     // send-side fault-injection stream
	hbNonce  uint64
	lastHB   time.Time

	recvMu    sync.Mutex
	delivered uint64 // highest in-order seq handed to the handlers
	sinceAck  int    // delivered frames since the last explicit/piggybacked ack we sent

	deliveredA  atomic.Uint64 // mirror of delivered for lock-free reads (handshake, acks)
	lastRecv    atomic.Int64  // unix nanos of the last frame heard from the peer
	everUp      atomic.Bool
	departed    atomic.Bool // peer sent Bye: stop talking to it, it is not a failure
	dead        atomic.Bool
	partitioned atomic.Bool // chaos switch: suppress all traffic both ways
	deadReason  string      // written once before dead is set

	// Clock alignment against this peer (guarded by clockMu): the newest
	// heartbeat received (echoed back on our next heartbeat), the NTP-style
	// estimator fed by echoes of our own heartbeats, and the sample history
	// recorded into trace dumps.  rttNs/offNs mirror the current estimates
	// for lock-free snapshots.
	clockMu    sync.Mutex
	peerHB     Heartbeat
	peerHBRecv int64
	clock      ClockEstimator
	samples    []obs.ClockSample // ring, newest at samplesN-1 mod len
	samplesN   uint64
	rttNs      atomic.Int64 // smoothed filtered round-trip (EWMA); 0 = no sample yet
	offNs      atomic.Int64 // current offset estimate (peer minus local)

	events *linkEventRing // transport trace ring; nil when link tracing is off

	stats linkCounters
}

// linkClockHistory bounds the per-link offset-sample history kept for trace
// dumps; at the 25ms default heartbeat cadence it spans ~25s of run.
const linkClockHistory = 1024

// outFrame is one sequenced frame awaiting acknowledgement, fully encoded.
type outFrame struct {
	seq uint64
	buf []byte
}

// linkCounters are the per-link observability counters (all atomics: the
// ticker, reader, and Stats snapshot each other concurrently).
type linkCounters struct {
	framesSent, framesRecv   atomic.Int64
	bytesSent, bytesRecv     atomic.Int64
	retransmits              atomic.Int64
	dupsDropped, oooDropped  atomic.Int64
	reconnects               atomic.Int64
	hbSent, hbRecv, acksSent atomic.Int64
	acksRecv                 atomic.Int64
	retryRounds              atomic.Int64
	dropsInjected            atomic.Int64
	delaysInjected           atomic.Int64
	sendBusy                 atomic.Int64
}

// ackEvery bounds how many delivered frames may ride on piggybacked acks
// alone before the receiver owes the sender an explicit ack, so a one-way
// stream (a long Bcast fan-out) cannot stall the sender's resend window.
const ackEvery = 64

// send queues one sequenced frame and transmits it on the live connection.
// It returns ErrBusy when the resend window is full (the caller yields and
// retries), a *DeadError when the peer has been declared dead, and nil
// otherwise — including when the connection is down, in which case the
// frame is buffered and replayed on reconnect.
func (l *link) send(f *Frame) error {
	l.mu.Lock()
	if l.dead.Load() {
		reason := l.deadReason
		l.mu.Unlock()
		return &DeadError{Node: l.peer, Reason: reason}
	}
	if l.departed.Load() {
		// The peer finished and left; anything still addressed to it is
		// undeliverable by design.  Dropping (rather than erroring) keeps
		// shutdown races harmless: the messages could not have mattered.
		l.mu.Unlock()
		return nil
	}
	if len(l.unacked) >= l.t.cfg.MaxUnacked {
		l.stats.sendBusy.Add(1)
		l.mu.Unlock()
		return ErrBusy
	}
	l.nextSeq++
	f.Seq = l.nextSeq
	f.Ack = l.deliveredA.Load()
	f.SrcNode = int32(l.t.cfg.Node)
	buf := AppendFrame(make([]byte, 0, HeaderLen+len(f.Payload)), f)
	if l.events != nil {
		l.events.add(obs.LinkEvent{
			TS: time.Now().UnixNano(), Kind: obs.LinkSend,
			Node: int32(l.t.cfg.Node), Peer: int32(l.peer),
			Seq: f.Seq, Bytes: int32(len(f.Payload)),
		})
	}
	l.unacked = append(l.unacked, outFrame{seq: f.Seq, buf: buf})
	if len(l.unacked) == 1 {
		l.attempts = 0
		l.retryAt = time.Now().Add(l.t.cfg.RetryBackoff)
	}
	if l.conn != nil && !l.partitioned.Load() {
		if l.injectDropLocked() {
			l.stats.dropsInjected.Add(1)
		} else {
			l.writeLocked(buf)
		}
	}
	l.mu.Unlock()
	return nil
}

// sendControl transmits one unsequenced frame (ack, heartbeat, handshake,
// bye) on the live connection, best-effort: with the connection down the
// frame is simply not sent.
func (l *link) sendControl(kind Kind, payload []byte) {
	l.mu.Lock()
	if l.conn != nil && !l.partitioned.Load() {
		f := Frame{Kind: kind, SrcNode: int32(l.t.cfg.Node), Ack: l.deliveredA.Load(), Payload: payload}
		l.scratch = AppendFrame(l.scratch[:0], &f)
		l.writeLocked(l.scratch)
	}
	l.mu.Unlock()
}

// writeLocked writes one encoded frame to the live connection, tearing the
// connection down (and arming the redial) on error.  Caller holds mu.
func (l *link) writeLocked(buf []byte) {
	if d := l.t.cfg.PeerDeadAfter; d > 0 {
		l.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if _, err := l.bw.Write(buf); err == nil {
		err = l.bw.Flush()
		if err == nil {
			l.stats.framesSent.Add(1)
			l.stats.bytesSent.Add(int64(len(buf)))
			return
		}
	}
	l.teardownConnLocked()
}

// teardownConnLocked drops the current connection (write error, read error,
// or chaos KillLink) and arms the dialer's reconnect loop.  Caller holds mu.
func (l *link) teardownConnLocked() {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
		l.bw = nil
		l.gen++
	}
	if l.dialer && !l.dialing && !l.dead.Load() && !l.departed.Load() && !l.t.closed.Load() {
		l.dialing = true
		l.t.wg.Add(1)
		go l.dialLoop()
	}
}

// installConn makes c the link's live connection: the peer's delivered
// watermark (from its Hello/Welcome) acts as a cumulative ack, and every
// sequenced frame past it is replayed in order before new traffic flows.
// It reports whether the connection was accepted (a dead/departed/closed
// link refuses) and starts the connection's reader.
func (l *link) installConn(c Conn, peerDelivered uint64) bool {
	l.mu.Lock()
	if l.dead.Load() || l.departed.Load() || l.t.closed.Load() {
		l.mu.Unlock()
		c.Close()
		return false
	}
	if l.conn != nil {
		// A replacement arrived while an old connection looked alive (the
		// peer saw a break we have not noticed yet).  The newest wins.
		l.conn.Close()
	}
	l.conn = c
	l.bw = bufio.NewWriterSize(c, 64<<10)
	l.gen++
	gen := l.gen
	// Order matters against the (lockless) tick: lastRecv must be current
	// before everUp flips, or a tick in the window reads everUp with a
	// zero/stale lastRecv and declares instant heartbeat death.
	l.lastRecv.Store(time.Now().UnixNano())
	if l.everUp.Swap(true) {
		l.stats.reconnects.Add(1)
	}
	l.handleAckLocked(peerDelivered)
	if n := len(l.unacked); n > 0 {
		for _, of := range l.unacked {
			l.bw.Write(of.buf)
		}
		if err := l.bw.Flush(); err != nil {
			l.teardownConnLocked()
			l.mu.Unlock()
			return false
		}
		l.stats.framesSent.Add(int64(n))
		if gen > 1 {
			l.stats.retransmits.Add(int64(n))
		}
	}
	l.mu.Unlock()

	l.t.wg.Add(1)
	go l.readLoop(c, gen)
	return true
}

// handleAckLocked processes a cumulative ack: completed frames leave the
// resend buffer and ack progress resets the retransmit clock.  Caller
// holds mu.
func (l *link) handleAckLocked(a uint64) {
	if a <= l.ackedOut {
		return
	}
	l.ackedOut = a
	drop := 0
	for drop < len(l.unacked) && l.unacked[drop].seq <= a {
		drop++
	}
	if drop > 0 {
		copy(l.unacked, l.unacked[drop:])
		for i := len(l.unacked) - drop; i < len(l.unacked); i++ {
			l.unacked[i] = outFrame{}
		}
		l.unacked = l.unacked[:len(l.unacked)-drop]
		if len(l.unacked) == 0 {
			l.unacked = nil
		}
	}
	l.attempts = 0
	l.retryAt = time.Now().Add(l.t.cfg.RetryBackoff)
}

// readLoop consumes frames from one connection until it breaks or is
// replaced.  Only the loop whose generation is still current tears the
// connection down; a stale loop exits silently.
func (l *link) readLoop(c Conn, gen uint64) {
	defer l.t.wg.Done()
	br := bufio.NewReaderSize(c, 64<<10)
	fr := frameReader{r: br}
	for {
		f, err := fr.Read()
		if err != nil {
			l.mu.Lock()
			if l.gen == gen {
				l.teardownConnLocked()
			}
			l.mu.Unlock()
			return
		}
		if l.partitioned.Load() {
			continue // the chaos partition eats everything, liveness included
		}
		l.lastRecv.Store(time.Now().UnixNano())
		l.stats.framesRecv.Add(1)
		l.stats.bytesRecv.Add(int64(HeaderLen + len(f.Payload)))
		if f.Ack > 0 {
			l.mu.Lock()
			l.handleAckLocked(f.Ack)
			l.mu.Unlock()
		}
		switch f.Kind {
		case KindData, KindApplied:
			l.acceptSequenced(&f, br)
		case KindHeartbeat:
			l.stats.hbRecv.Add(1)
			if hb, err := DecodeHeartbeat(f.Payload); err == nil {
				l.noteHeartbeat(hb, time.Now())
			}
		case KindAck:
			// The watermark itself is handled by the piggyback path above.
			l.stats.acksRecv.Add(1)
		case KindBye:
			l.handleBye(&f)
		case KindHello, KindWelcome:
			// A late handshake duplicate on an established stream; ignore.
		}
	}
}

// acceptSequenced runs the receive side of the reliability protocol for one
// Data/Applied frame and owes the sender an ack when the stream goes idle.
func (l *link) acceptSequenced(f *Frame, br *bufio.Reader) {
	if fl := &l.t.cfg.Faults; fl.DelayProb > 0 && l.t.rand01() < fl.DelayProb {
		l.stats.delaysInjected.Add(1)
		time.Sleep(time.Duration(l.t.rand01() * float64(fl.DelayMax)))
	}
	owesAck := false
	l.recvMu.Lock()
	switch {
	case f.Seq == l.delivered+1:
		l.delivered++
		l.deliveredA.Store(l.delivered)
		l.sinceAck++
		if l.events != nil {
			l.events.add(obs.LinkEvent{
				TS: time.Now().UnixNano(), Kind: obs.LinkRecv,
				Node: int32(l.t.cfg.Node), Peer: int32(l.peer),
				Seq: f.Seq, Bytes: int32(len(f.Payload)),
			})
		}
		if f.Kind == KindApplied {
			if h := l.t.h.Applied; h != nil {
				h(f)
			}
		} else if h := l.t.h.Deliver; h != nil {
			h(f)
		}
	case f.Seq <= l.delivered:
		l.stats.dupsDropped.Add(1)
	default:
		// A gap: an earlier frame was dropped (injected or lost with a dead
		// connection).  Go-back-N: drop this one too and let the sender's
		// retransmission replay the stream from the gap in order.
		l.stats.oooDropped.Add(1)
	}
	if l.sinceAck > 0 && (l.sinceAck >= ackEvery || br.Buffered() == 0) {
		l.sinceAck = 0
		owesAck = true
	}
	l.recvMu.Unlock()
	if owesAck {
		l.stats.acksSent.Add(1)
		l.sendControl(KindAck, nil)
	}
}

// handleBye processes a peer's departure announcement.
func (l *link) handleBye(f *Frame) {
	bye, err := DecodeBye(f.Payload)
	if err != nil {
		bye = Bye{Reason: fmt.Sprintf("unparseable bye: %v", err)}
	}
	l.mu.Lock()
	already := l.departed.Swap(true)
	// Nothing queued for a departed peer can be delivered; dropping the
	// resend buffer stops the retransmit clock from declaring a clean
	// departure a failure.
	l.unacked = nil
	l.mu.Unlock()
	if !already {
		if h := l.t.h.PeerBye; h != nil {
			var dead []int
			for _, d := range bye.Dead {
				dead = append(dead, int(d))
			}
			h(l.peer, bye.Abort, bye.Reason, dead)
		}
	}
}

// die declares the peer dead exactly once and tells the failure handler.
func (l *link) die(reason string) {
	l.mu.Lock()
	if l.dead.Load() || l.departed.Load() {
		l.mu.Unlock()
		return
	}
	l.deadReason = reason
	l.dead.Store(true)
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
		l.bw = nil
		l.gen++
	}
	l.mu.Unlock()
	if h := l.t.h.PeerDead; h != nil {
		h(l.peer, reason)
	}
}

// tick runs the link's periodic work from the transport's ticker: failure
// detection, the retransmit clock, and heartbeats.
func (l *link) tick(now time.Time) {
	if l.dead.Load() || l.departed.Load() {
		return
	}
	cfg := &l.t.cfg
	if l.everUp.Load() {
		if silent := now.UnixNano() - l.lastRecv.Load(); silent > int64(cfg.PeerDeadAfter) {
			l.die(fmt.Sprintf("no traffic from node %d for %v (last heard %v ago; heartbeat timeout)",
				l.peer, cfg.PeerDeadAfter, time.Duration(silent).Round(time.Millisecond)))
			return
		}
	}

	l.mu.Lock()
	if len(l.unacked) > 0 && now.After(l.retryAt) && l.conn != nil && !l.partitioned.Load() {
		l.attempts++
		if l.attempts > cfg.RetryBudget {
			n, at := len(l.unacked), l.attempts-1
			l.mu.Unlock()
			l.die(fmt.Sprintf("retry budget exhausted: %d frames to node %d unacked after %d retransmit rounds",
				n, l.peer, at))
			return
		}
		n := len(l.unacked)
		lowest := l.unacked[0].seq
		for _, of := range l.unacked {
			l.bw.Write(of.buf)
		}
		if err := l.bw.Flush(); err != nil {
			l.teardownConnLocked()
		} else {
			l.stats.framesSent.Add(int64(n))
			l.stats.retransmits.Add(int64(n))
			l.stats.retryRounds.Add(1)
			if l.events != nil {
				l.events.add(obs.LinkEvent{
					TS: now.UnixNano(), Kind: obs.LinkRetransmit,
					Node: int32(l.t.cfg.Node), Peer: int32(l.peer),
					Seq: lowest, Bytes: int32(n),
				})
			}
		}
		l.retryAt = now.Add(l.backoff(l.attempts))
	}
	sendHB := now.Sub(l.lastHB) >= cfg.HeartbeatEvery
	if sendHB {
		l.lastHB = now
		l.hbNonce++
	}
	nonce := l.hbNonce
	l.mu.Unlock()

	if sendHB {
		l.stats.hbSent.Add(1)
		hb := Heartbeat{Nonce: nonce, SentUnixNano: now.UnixNano()}
		// Echo the newest heartbeat heard from the peer: that closes the
		// peer's NTP loop (its t0/t1 come back alongside our t2).
		l.clockMu.Lock()
		hb.EchoNonce = l.peerHB.Nonce
		hb.EchoSentUnixNano = l.peerHB.SentUnixNano
		hb.EchoRecvUnixNano = l.peerHBRecv
		l.clockMu.Unlock()
		l.sendControl(KindHeartbeat, hb.Encode())
	}
}

// noteHeartbeat ingests one received heartbeat: remembers it for echoing,
// and — when it echoes one of ours — turns the four timestamps into a clock
// offset sample.
func (l *link) noteHeartbeat(hb Heartbeat, now time.Time) {
	t3 := now.UnixNano()
	l.clockMu.Lock()
	if hb.Nonce > l.peerHB.Nonce {
		l.peerHB = hb
		l.peerHBRecv = t3
	}
	if l.clock.AddSample(hb.EchoSentUnixNano, hb.EchoRecvUnixNano, hb.SentUnixNano, t3) {
		off, _ := l.clock.Offset()
		delay, _ := l.clock.Delay()
		l.offNs.Store(off)
		if prev := l.rttNs.Load(); prev == 0 {
			l.rttNs.Store(delay)
		} else {
			l.rttNs.Store(prev - prev/8 + delay/8)
		}
		s := obs.ClockSample{
			Peer: int32(l.peer), LocalUnixNano: t3,
			OffsetNs: ((hb.EchoRecvUnixNano - hb.EchoSentUnixNano) + (hb.SentUnixNano - t3)) / 2,
			DelayNs:  (t3 - hb.EchoSentUnixNano) - (hb.SentUnixNano - hb.EchoRecvUnixNano),
		}
		if len(l.samples) < linkClockHistory {
			l.samples = append(l.samples, s)
		} else {
			l.samples[l.samplesN%linkClockHistory] = s
		}
		l.samplesN++
	}
	l.clockMu.Unlock()
}

// clockSamples returns the recorded offset-sample history, oldest first.
func (l *link) clockSamples() []obs.ClockSample {
	l.clockMu.Lock()
	defer l.clockMu.Unlock()
	out := make([]obs.ClockSample, 0, len(l.samples))
	if l.samplesN > linkClockHistory {
		start := l.samplesN % linkClockHistory
		out = append(out, l.samples[start:]...)
		out = append(out, l.samples[:start]...)
	} else {
		out = append(out, l.samples...)
	}
	return out
}

// backoff returns the exponential retransmit backoff for the given round,
// capped at RetryBackoffMax (the netsim link layer's discipline, on real
// clocks).
func (l *link) backoff(attempts int) time.Duration {
	d := l.t.cfg.RetryBackoff
	for i := 1; i < attempts && d < l.t.cfg.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > l.t.cfg.RetryBackoffMax {
		d = l.t.cfg.RetryBackoffMax
	}
	return d
}

// injectDropLocked rolls the fault plan's drop dice for one first
// transmission.  Caller holds mu (the rng stream is mu-guarded).
func (l *link) injectDropLocked() bool {
	p := l.t.cfg.Faults.DropProb
	if p <= 0 {
		return false
	}
	l.rng += 0x9e3779b97f4a7c15
	z := l.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < p
}

// dialLoop establishes (and re-establishes) the connection from the dialing
// side, with exponential backoff between attempts.  Exactly one dialLoop
// runs per link at a time (the dialing flag).
func (l *link) dialLoop() {
	defer l.t.wg.Done()
	backoff := l.t.cfg.DialBackoff
	for {
		if l.t.closed.Load() || l.dead.Load() || l.departed.Load() {
			break
		}
		c, err := l.t.be.Dial(l.addr, l.t.cfg.DialTimeout)
		if err == nil {
			if l.handshakeDial(c) {
				break
			}
		}
		select {
		case <-l.t.stop:
			l.clearDialing()
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > l.t.cfg.DialBackoffMax {
			backoff = l.t.cfg.DialBackoffMax
		}
	}
	l.clearDialing()
}

func (l *link) clearDialing() {
	l.mu.Lock()
	l.dialing = false
	// A connection torn down between handshake success and this point would
	// have skipped arming a redial (dialing was still set); catch up.
	if l.conn == nil && l.dialer && !l.dead.Load() && !l.departed.Load() && !l.t.closed.Load() {
		l.dialing = true
		l.t.wg.Add(1)
		go l.dialLoop()
	}
	l.mu.Unlock()
}

// handshakeDial runs the dialing side of the handshake on a fresh
// connection: send Hello, await Welcome, validate identity, install.
func (l *link) handshakeDial(c Conn) bool {
	t := l.t
	hello := Hello{
		Job: t.cfg.Job, Node: int32(t.cfg.Node), Nodes: int32(len(t.cfg.Addrs)),
		NRanks: int32(t.nranks), Delivered: l.deliveredA.Load(),
	}
	f := Frame{Kind: KindHello, SrcNode: int32(t.cfg.Node), Payload: hello.Encode()}
	if _, err := c.Write(f.Encode()); err != nil {
		c.Close()
		return false
	}
	c.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout))
	fr := frameReader{r: c}
	rf, err := fr.Read()
	if err != nil || rf.Kind != KindWelcome {
		c.Close()
		return false
	}
	w, err := DecodeHello(rf.Payload)
	if err != nil || w.Job != t.cfg.Job || int(w.Node) != l.peer {
		// A different job or an unexpected identity on the peer's port: a
		// stale process or a misrouted address.  Keep retrying; the real
		// peer may still be starting up.
		c.Close()
		return false
	}
	if int(w.Nodes) != len(t.cfg.Addrs) || (t.nranks > 0 && w.NRanks > 0 && int(w.NRanks) != t.nranks) {
		c.Close()
		l.die(fmt.Sprintf("configuration mismatch with node %d: it runs %d nodes / %d ranks, this node %d / %d",
			l.peer, w.Nodes, w.NRanks, len(t.cfg.Addrs), t.nranks))
		return false
	}
	c.SetReadDeadline(time.Time{})
	return l.installConn(c, w.Delivered)
}

// snapshot captures the link's counters for Stats.
func (l *link) snapshot() LinkStats {
	l.mu.Lock()
	up := l.conn != nil
	unacked := len(l.unacked)
	reason := l.deadReason
	l.mu.Unlock()
	hbAge := int64(0)
	if last := l.lastRecv.Load(); last > 0 && l.everUp.Load() {
		hbAge = time.Now().UnixNano() - last
	}
	return LinkStats{
		SmoothedRTTNs:  l.rttNs.Load(),
		ClockOffsetNs:  l.offNs.Load(),
		HeartbeatAgeNs: hbAge,
		Node:           l.peer, Up: up, EverUp: l.everUp.Load(),
		Departed: l.departed.Load(), Dead: l.dead.Load(), DeadReason: reason,
		Unacked:        unacked,
		FramesSent:     l.stats.framesSent.Load(),
		FramesRecv:     l.stats.framesRecv.Load(),
		BytesSent:      l.stats.bytesSent.Load(),
		BytesRecv:      l.stats.bytesRecv.Load(),
		Retransmits:    l.stats.retransmits.Load(),
		DupsDropped:    l.stats.dupsDropped.Load(),
		OooDropped:     l.stats.oooDropped.Load(),
		Reconnects:     l.stats.reconnects.Load(),
		HeartbeatsSent: l.stats.hbSent.Load(),
		HeartbeatsRecv: l.stats.hbRecv.Load(),
		AcksSent:       l.stats.acksSent.Load(),
		AcksRecv:       l.stats.acksRecv.Load(),
		RetryRounds:    l.stats.retryRounds.Load(),
		DropsInjected:  l.stats.dropsInjected.Load(),
		DelaysInjected: l.stats.delaysInjected.Load(),
		SendBusy:       l.stats.sendBusy.Load(),
	}
}
