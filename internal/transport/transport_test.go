package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// reserveAddrs picks n free loopback ports the way the purerun launcher
// does: bind, record, release.
func reserveAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserving port %d: %v", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// collector gathers delivered frames (payloads copied — the handler
// contract says they are only valid during the call).
type collector struct {
	mu     sync.Mutex
	frames []Frame

	deadMu   sync.Mutex
	dead     map[int]string
	byes     map[int]string
	byeAbort map[int]bool
	byeDead  map[int][]int
}

func newCollector() *collector {
	return &collector{dead: map[int]string{}, byes: map[int]string{}, byeAbort: map[int]bool{}, byeDead: map[int][]int{}}
}

func (c *collector) handlers() Handlers {
	return Handlers{
		Deliver: func(f *Frame) {
			cp := *f
			cp.Payload = append([]byte(nil), f.Payload...)
			c.mu.Lock()
			c.frames = append(c.frames, cp)
			c.mu.Unlock()
		},
		PeerDead: func(node int, reason string) {
			c.deadMu.Lock()
			c.dead[node] = reason
			c.deadMu.Unlock()
		},
		PeerBye: func(node int, abort bool, reason string, dead []int) {
			c.deadMu.Lock()
			c.byes[node] = reason
			c.byeAbort[node] = abort
			c.byeDead[node] = dead
			c.deadMu.Unlock()
		},
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collector) deadReason(node int) (string, bool) {
	c.deadMu.Lock()
	defer c.deadMu.Unlock()
	r, ok := c.dead[node]
	return r, ok
}

func (c *collector) byeFrom(node int) (string, bool, bool) {
	c.deadMu.Lock()
	defer c.deadMu.Unlock()
	r, ok := c.byes[node]
	return r, c.byeAbort[node], ok
}

// startPair brings up a two-node mesh and returns both endpoints plus their
// collectors.  Cleanup closes both.
func startPair(t *testing.T, mut func(node int, c *Config)) (tp [2]*Transport, col [2]*collector) {
	t.Helper()
	addrs := reserveAddrs(t, 2)
	for node := 0; node < 2; node++ {
		cfg := Config{Node: node, Addrs: addrs, Job: 42}
		if mut != nil {
			mut(node, &cfg)
		}
		col[node] = newCollector()
		var err error
		tp[node], err = New(cfg, nil, 2, col[node].handlers())
		if err != nil {
			t.Fatalf("node %d: New: %v", node, err)
		}
		if err := tp[node].Start(); err != nil {
			t.Fatalf("node %d: Start: %v", node, err)
		}
	}
	t.Cleanup(func() {
		tp[0].Close()
		tp[1].Close()
	})
	return tp, col
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// waitUp blocks until tp's link to peer has a live connection (frames sent
// while the link is still dialing are queued and replayed without touching
// the fault plan, so lossy tests must wait).
func waitUp(t *testing.T, tp *Transport, peer int) {
	t.Helper()
	waitFor(t, 5*time.Second, fmt.Sprintf("link to node %d up", peer), func() bool {
		return tp.Stats()[peer].Up
	})
}

// sendN pushes n sequenced data frames (payload = frame index, LE64) from
// tp to dstNode, yielding through ErrBusy.
func sendN(t *testing.T, tp *Transport, dstNode, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], uint64(i))
		f := Frame{Kind: KindData, SrcRank: 1, DstRank: 2, Tag: 7, Comm: 1, Payload: p[:]}
		for {
			err := tp.Send(dstNode, &f)
			if err == nil {
				break
			}
			if err != ErrBusy {
				t.Fatalf("send %d: %v", i, err)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// checkOrdered verifies the collector saw payloads 0..n-1 in order.
func checkOrdered(t *testing.T, c *collector, n int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.frames) != n {
		t.Fatalf("delivered %d frames, want %d", len(c.frames), n)
	}
	for i, f := range c.frames {
		if got := binary.LittleEndian.Uint64(f.Payload); got != uint64(i) {
			t.Fatalf("frame %d: payload %d (out of order or lost)", i, got)
		}
		if f.SrcRank != 1 || f.DstRank != 2 || f.Tag != 7 || f.Comm != 1 {
			t.Fatalf("frame %d: routing fields corrupted: %+v", i, f)
		}
	}
}

func TestLinkDeliverOrder(t *testing.T) {
	tp, col := startPair(t, nil)
	const n = 200
	sendN(t, tp[0], 1, n)
	waitFor(t, 5*time.Second, "all frames delivered", func() bool { return col[1].count() == n })
	checkOrdered(t, col[1], n)

	// And the reverse direction (accepting side sends too).
	sendN(t, tp[1], 0, n)
	waitFor(t, 5*time.Second, "reverse frames delivered", func() bool { return col[0].count() == n })
	checkOrdered(t, col[0], n)
}

func TestLinkLossyRecovery(t *testing.T) {
	tp, col := startPair(t, func(node int, c *Config) {
		c.Faults = Faults{Seed: 7, DropProb: 0.25}
		c.RetryBackoff = 2 * time.Millisecond
		c.RetryBackoffMax = 20 * time.Millisecond
		c.RetryBudget = 1000 // drops must be recovered, not declared fatal
	})
	waitUp(t, tp[0], 1)
	const n = 300
	sendN(t, tp[0], 1, n)
	waitFor(t, 10*time.Second, "lossy stream delivered", func() bool { return col[1].count() == n })
	checkOrdered(t, col[1], n)

	st := tp[0].Stats()[1]
	if st.DropsInjected == 0 {
		t.Fatal("fault plan injected no drops; the test exercised nothing")
	}
	if st.Retransmits == 0 {
		t.Fatal("drops recovered without retransmissions?")
	}
	if d, ok := col[0].deadReason(1); ok {
		t.Fatalf("healthy lossy link declared dead: %s", d)
	}
	if d, ok := col[1].deadReason(0); ok {
		t.Fatalf("healthy lossy link declared dead: %s", d)
	}
}

func TestLinkReconnectResend(t *testing.T) {
	tp, col := startPair(t, func(node int, c *Config) {
		c.RetryBackoff = 5 * time.Millisecond
		c.PeerDeadAfter = 2 * time.Second // survive the break
	})
	const half = 100
	sendN(t, tp[0], 1, half)
	waitFor(t, 5*time.Second, "first half delivered", func() bool { return col[1].count() == half })

	// Sever the connection on both sides and keep sending through the break;
	// the dialer reconnects and the delivered watermark dedups any overlap.
	tp[0].KillLink(1)
	tp[1].KillLink(0)
	go func() {
		for i := 0; i < half; i++ {
			var p [8]byte
			binary.LittleEndian.PutUint64(p[:], uint64(half+i))
			f := Frame{Kind: KindData, SrcRank: 1, DstRank: 2, Tag: 7, Comm: 1, Payload: p[:]}
			for tp[0].Send(1, &f) == ErrBusy {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	waitFor(t, 10*time.Second, "all frames across the reconnect", func() bool { return col[1].count() == 2*half })
	checkOrdered(t, col[1], 2*half)
	if d, ok := col[0].deadReason(1); ok {
		t.Fatalf("reconnectable break declared dead: %s", d)
	}
}

func TestLinkHeartbeatDeath(t *testing.T) {
	tp, col := startPair(t, func(node int, c *Config) {
		c.HeartbeatEvery = 5 * time.Millisecond
		c.PeerDeadAfter = 50 * time.Millisecond
	})
	// Make sure the link is actually up first (everUp arms the detector).
	sendN(t, tp[0], 1, 1)
	waitFor(t, 5*time.Second, "link up", func() bool { return col[1].count() == 1 })

	// A full partition silences both directions; both sides must name the
	// peer dead within a few detection intervals.
	tp[0].SetPartitioned(1, true)
	tp[1].SetPartitioned(0, true)
	waitFor(t, 2*time.Second, "node 0 declares node 1 dead", func() bool {
		_, ok := col[0].deadReason(1)
		return ok
	})
	waitFor(t, 2*time.Second, "node 1 declares node 0 dead", func() bool {
		_, ok := col[1].deadReason(0)
		return ok
	})
	reason, _ := col[0].deadReason(1)
	if !strings.Contains(reason, "no traffic from node 1") {
		t.Fatalf("death reason does not name the silence: %q", reason)
	}
	// Sends toward a dead peer fail loudly with the stored reason.
	err := tp[0].Send(1, &Frame{Kind: KindData, Payload: []byte("x")})
	var de *DeadError
	if !asDeadError(err, &de) || de.Node != 1 {
		t.Fatalf("send to dead peer: %v", err)
	}
}

func asDeadError(err error, out **DeadError) bool {
	de, ok := err.(*DeadError)
	if ok {
		*out = de
	}
	return ok
}

func TestLinkRetryBudgetExhaustion(t *testing.T) {
	tp, col := startPair(t, func(node int, c *Config) {
		c.RetryBudget = 3
		c.RetryBackoff = 2 * time.Millisecond
		c.RetryBackoffMax = 4 * time.Millisecond
		c.PeerDeadAfter = 5 * time.Second // the budget, not the heartbeat, must trip
	})
	sendN(t, tp[0], 1, 1)
	waitFor(t, 5*time.Second, "link up", func() bool { return col[1].count() == 1 })

	// Node 1 goes silent (partition eats node 0's frames and withholds acks);
	// node 0's retransmit rounds burn the budget and give up.
	tp[1].SetPartitioned(0, true)
	sendN(t, tp[0], 1, 4)
	waitFor(t, 5*time.Second, "budget exhaustion", func() bool {
		_, ok := col[0].deadReason(1)
		return ok
	})
	reason, _ := col[0].deadReason(1)
	if !strings.Contains(reason, "retry budget exhausted") || !strings.Contains(reason, "node 1") {
		t.Fatalf("death reason: %q", reason)
	}
	if st := tp[0].Stats()[1]; st.Retransmits == 0 || !st.Dead {
		t.Fatalf("stats after exhaustion: %+v", st)
	}
}

func TestLinkGracefulBye(t *testing.T) {
	tp, col := startPair(t, nil)
	sendN(t, tp[0], 1, 1)
	waitFor(t, 5*time.Second, "link up", func() bool { return col[1].count() == 1 })

	tp[0].Close()
	waitFor(t, 5*time.Second, "bye received", func() bool {
		_, _, ok := col[1].byeFrom(0)
		return ok
	})
	if _, abort, _ := col[1].byeFrom(0); abort {
		t.Fatal("graceful close delivered an abort bye")
	}
	// A departed peer is not dead: sends to it vanish silently (shutdown
	// races are benign) and no failure is reported.
	if err := tp[1].Send(0, &Frame{Kind: KindData, Payload: []byte("x")}); err != nil {
		t.Fatalf("send to departed peer: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if d, ok := col[1].deadReason(0); ok {
		t.Fatalf("departed peer declared dead: %s", d)
	}
}

func TestLinkAbortBye(t *testing.T) {
	tp, col := startPair(t, nil)
	sendN(t, tp[0], 1, 1)
	waitFor(t, 5*time.Second, "link up", func() bool { return col[1].count() == 1 })

	tp[0].Abort("rank 3 panicked: boom", []int{7})
	waitFor(t, 5*time.Second, "abort bye received", func() bool {
		_, _, ok := col[1].byeFrom(0)
		return ok
	})
	reason, abort, _ := col[1].byeFrom(0)
	if !abort || !strings.Contains(reason, "rank 3 panicked") {
		t.Fatalf("abort bye: abort=%v reason=%q", abort, reason)
	}
	col[1].deadMu.Lock()
	gotDead := col[1].byeDead[0]
	col[1].deadMu.Unlock()
	if len(gotDead) != 1 || gotDead[0] != 7 {
		t.Fatalf("abort bye dead list = %v, want [7]", gotDead)
	}
}

// TestLinkBackoffDoublesAndCaps pins the retransmit backoff schedule on the
// real-clock link layer: doubling per round from RetryBackoff, capped at
// RetryBackoffMax, flooring at the base for round 0/negative junk.
func TestLinkBackoffDoublesAndCaps(t *testing.T) {
	l := &link{t: &Transport{cfg: Config{
		RetryBackoff:    time.Millisecond,
		RetryBackoffMax: 6 * time.Millisecond,
	}}}
	cases := []struct {
		attempts int
		want     time.Duration
	}{
		{-1, time.Millisecond},
		{0, time.Millisecond},
		{1, time.Millisecond},
		{2, 2 * time.Millisecond},
		{3, 4 * time.Millisecond},
		{4, 6 * time.Millisecond}, // 8ms capped to the 6ms max
		{50, 6 * time.Millisecond},
	}
	for _, c := range cases {
		if got := l.backoff(c.attempts); got != c.want {
			t.Errorf("backoff(%d) = %v, want %v", c.attempts, got, c.want)
		}
	}
}

// TestLinkRetryBudgetBoundary partitions the peer's receive side and counts
// retransmit rounds: with RetryBudget = N the link must survive N rounds
// and die on round N+1, naming the budget in the reason.
func TestLinkRetryBudgetBoundary(t *testing.T) {
	const budget = 3
	tp, col := startPair(t, func(node int, c *Config) {
		c.RetryBudget = budget
		c.RetryBackoff = 2 * time.Millisecond
		c.RetryBackoffMax = 2 * time.Millisecond // constant rounds: timing is arithmetic
		c.PeerDeadAfter = time.Hour              // isolate the budget detector from the heartbeat one
	})
	sendN(t, tp[0], 1, 1)
	waitFor(t, 5*time.Second, "link up", func() bool { return col[1].count() == 1 })

	tp[1].SetPartitioned(0, true) // acks stop coming back
	sendN(t, tp[0], 1, 1)
	waitFor(t, 10*time.Second, "budget exhaustion", func() bool {
		_, ok := col[0].deadReason(1)
		return ok
	})
	reason, _ := col[0].deadReason(1)
	if !strings.Contains(reason, "retry budget exhausted") ||
		!strings.Contains(reason, fmt.Sprintf("after %d retransmit rounds", budget)) {
		t.Fatalf("death reason %q does not pin %d rounds of retransmit", reason, budget)
	}
	if got := tp[0].Stats()[1].Retransmits; got < budget {
		t.Fatalf("only %d retransmits counted, want >= %d", got, budget)
	}
}

func TestLinkBackpressure(t *testing.T) {
	tp, col := startPair(t, func(node int, c *Config) {
		c.MaxUnacked = 4
		c.RetryBudget = 1 << 20
		c.RetryBackoff = time.Hour // no retransmit noise
		c.PeerDeadAfter = time.Hour
	})
	sendN(t, tp[0], 1, 1)
	waitFor(t, 5*time.Second, "link up", func() bool { return col[1].count() == 1 })

	// With the peer's receive side partitioned, acks stop and the window
	// fills after MaxUnacked frames.
	tp[1].SetPartitioned(0, true)
	f := Frame{Kind: KindData, Payload: []byte("x")}
	busy := false
	for i := 0; i < 64 && !busy; i++ {
		busy = tp[0].Send(1, &f) == ErrBusy
	}
	if !busy {
		t.Fatal("window never filled: backpressure is not working")
	}
	if st := tp[0].Stats()[1]; st.SendBusy == 0 || st.Unacked != 4 {
		t.Fatalf("backpressure stats: %+v", st)
	}
}

func TestTransportSendErrors(t *testing.T) {
	tp, _ := startPair(t, nil)
	if err := tp[0].Send(0, &Frame{Kind: KindData}); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := tp[0].Send(9, &Frame{Kind: KindData}); err == nil {
		t.Fatal("out-of-mesh send accepted")
	}
	if err := tp[0].Send(1, &Frame{Kind: KindHeartbeat}); err == nil {
		t.Fatal("unsequenced Send accepted")
	}
	tp[0].Close()
	if err := tp[0].Send(1, &Frame{Kind: KindData}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestJobMismatchRejected(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	mk := func(node int, job uint64) *Transport {
		cfg := Config{Node: node, Addrs: addrs, Job: job, DialBackoffMax: 50 * time.Millisecond}
		tp, err := New(cfg, nil, 0, Handlers{})
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tp.Close() })
		return tp
	}
	a := mk(0, 1)
	mk(1, 2)
	// Different jobs must never establish a link.
	time.Sleep(300 * time.Millisecond)
	if st := a.Stats()[1]; st.EverUp {
		t.Fatalf("links established across job ids: %+v", st)
	}
}

func TestTransportLargeFrames(t *testing.T) {
	tp, col := startPair(t, nil)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	f := Frame{Kind: KindData, SrcRank: 0, DstRank: 1, Tag: 1, Comm: 1, Payload: payload}
	if err := tp[0].Send(1, &f); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "large frame", func() bool { return col[1].count() == 1 })
	col[1].mu.Lock()
	got := col[1].frames[0].Payload
	col[1].mu.Unlock()
	if len(got) != len(payload) {
		t.Fatalf("payload length %d, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestThreeNodeMesh(t *testing.T) {
	addrs := reserveAddrs(t, 3)
	var tps [3]*Transport
	var cols [3]*collector
	for node := 0; node < 3; node++ {
		cols[node] = newCollector()
		tp, err := New(Config{Node: node, Addrs: addrs, Job: 9}, nil, 3, cols[node].handlers())
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.Start(); err != nil {
			t.Fatal(err)
		}
		tps[node] = tp
		t.Cleanup(func() { tp.Close() })
	}
	// Every ordered pair exchanges traffic.
	const n = 20
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			for i := 0; i < n; i++ {
				var p [8]byte
				binary.LittleEndian.PutUint64(p[:], uint64(src*1000+i))
				f := Frame{Kind: KindData, SrcRank: int32(src), DstRank: int32(dst), Tag: 1, Comm: 1, Payload: p[:]}
				for tps[src].Send(dst, &f) == ErrBusy {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}
	}
	for node := 0; node < 3; node++ {
		node := node
		waitFor(t, 10*time.Second, fmt.Sprintf("node %d inbox", node), func() bool {
			return cols[node].count() == 2*n
		})
	}
	// Per-source ordering holds even with two senders interleaved.
	for node := 0; node < 3; node++ {
		next := map[int32]uint64{}
		cols[node].mu.Lock()
		for _, f := range cols[node].frames {
			got := binary.LittleEndian.Uint64(f.Payload)
			want := uint64(f.SrcRank)*1000 + next[f.SrcRank]
			if got != want {
				cols[node].mu.Unlock()
				t.Fatalf("node %d: frame from %d out of order: got %d want %d", node, f.SrcRank, got, want)
			}
			next[f.SrcRank]++
		}
		cols[node].mu.Unlock()
	}
}
