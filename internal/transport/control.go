package transport

import (
	"encoding/binary"
	"fmt"
)

// Control-frame payload codecs.  Hello/Welcome carry the handshake; Bye
// carries the departure reason; Heartbeat carries a nonce and a send
// timestamp (for observability — liveness only needs the frame's arrival).
// All fixed-width fields are little-endian, like the frame header.

// Hello is the handshake payload, sent as KindHello by the dialing side and
// echoed back as KindWelcome by the accepting side.  Delivered is the
// sender's cumulative delivered watermark for the link, which is what makes
// reconnection resume exactly where the last connection broke: the peer
// retransmits everything after it, nothing before it.
type Hello struct {
	Job       uint64 // job id; both ends of a link must agree
	Node      int32  // sending node id
	Nodes     int32  // cluster size the sender was configured with
	NRanks    int32  // rank count the sender was configured with
	Delivered uint64 // highest link sequence the sender has delivered in order
}

const helloLen = 8 + 4 + 4 + 4 + 8

// Encode serializes the handshake payload.
func (h *Hello) Encode() []byte {
	b := make([]byte, helloLen)
	binary.LittleEndian.PutUint64(b[0:], h.Job)
	binary.LittleEndian.PutUint32(b[8:], uint32(h.Node))
	binary.LittleEndian.PutUint32(b[12:], uint32(h.Nodes))
	binary.LittleEndian.PutUint32(b[16:], uint32(h.NRanks))
	binary.LittleEndian.PutUint64(b[20:], h.Delivered)
	return b
}

// DecodeHello parses a Hello/Welcome payload.
func DecodeHello(b []byte) (Hello, error) {
	if len(b) != helloLen {
		return Hello{}, fmt.Errorf("transport: %d-byte hello payload, want %d", len(b), helloLen)
	}
	return Hello{
		Job:       binary.LittleEndian.Uint64(b[0:]),
		Node:      int32(binary.LittleEndian.Uint32(b[8:])),
		Nodes:     int32(binary.LittleEndian.Uint32(b[12:])),
		NRanks:    int32(binary.LittleEndian.Uint32(b[16:])),
		Delivered: binary.LittleEndian.Uint64(b[20:]),
	}, nil
}

// Heartbeat is the keepalive payload.  Beyond liveness (which only needs the
// frame's arrival), each heartbeat echoes the most recently received peer
// heartbeat together with its local arrival time.  That turns every
// heartbeat pair into one NTP-style clock sample: with t0 = EchoSentUnixNano
// (peer's clock), t1 = EchoRecvUnixNano (our clock), t2 = SentUnixNano
// (our clock), t3 = the peer's arrival clock, the peer computes
// offset = ((t1-t0)+(t2-t3))/2 and rtt = (t3-t0)-(t2-t1); the holding time
// t2-t1 between receive and echo cancels out, so echoing on the regular
// heartbeat cadence costs nothing in accuracy.
type Heartbeat struct {
	Nonce        uint64 // per-link counter (detects log interleaving, aids debugging)
	SentUnixNano int64  // sender clock at transmission
	// Echo of the newest heartbeat received from the peer; all three are
	// zero until the first one arrives.
	EchoNonce        uint64 // that heartbeat's Nonce
	EchoSentUnixNano int64  // its SentUnixNano, returned verbatim (peer clock)
	EchoRecvUnixNano int64  // local clock when it arrived
}

const heartbeatLen = 8 + 8 + 8 + 8 + 8

// Encode serializes the heartbeat payload.
func (h *Heartbeat) Encode() []byte {
	b := make([]byte, heartbeatLen)
	binary.LittleEndian.PutUint64(b[0:], h.Nonce)
	binary.LittleEndian.PutUint64(b[8:], uint64(h.SentUnixNano))
	binary.LittleEndian.PutUint64(b[16:], h.EchoNonce)
	binary.LittleEndian.PutUint64(b[24:], uint64(h.EchoSentUnixNano))
	binary.LittleEndian.PutUint64(b[32:], uint64(h.EchoRecvUnixNano))
	return b
}

// DecodeHeartbeat parses a heartbeat payload.
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	if len(b) != heartbeatLen {
		return Heartbeat{}, fmt.Errorf("transport: %d-byte heartbeat payload, want %d", len(b), heartbeatLen)
	}
	return Heartbeat{
		Nonce:            binary.LittleEndian.Uint64(b[0:]),
		SentUnixNano:     int64(binary.LittleEndian.Uint64(b[8:])),
		EchoNonce:        binary.LittleEndian.Uint64(b[16:]),
		EchoSentUnixNano: int64(binary.LittleEndian.Uint64(b[24:])),
		EchoRecvUnixNano: int64(binary.LittleEndian.Uint64(b[32:])),
	}, nil
}

// Bye is the departure payload.  Abort distinguishes "my run completed"
// (survivors keep going and simply stop talking to this node) from "my
// runtime poisoned itself" (survivors propagate the abort immediately
// instead of waiting for the heartbeat detector).  Dead carries the node
// ids the sender's own failure detector blamed for the abort, so that a
// survivor learning of a failure second-hand still names the node that
// actually died — not the peer that merely relayed the bad news first.
type Bye struct {
	Abort  bool
	Reason string
	Dead   []int32
}

// maxByeReason bounds the reason string on the wire; a longer reason is
// truncated by the encoder, and the decoder rejects anything larger (the
// length field is attacker-controlled input on a corrupt stream).
// maxByeDead bounds the propagated dead-node list the same way.
const (
	maxByeReason = 4096
	maxByeDead   = 4096
)

// Encode serializes the departure payload.
func (y *Bye) Encode() []byte {
	reason := y.Reason
	if len(reason) > maxByeReason {
		reason = reason[:maxByeReason]
	}
	dead := y.Dead
	if len(dead) > maxByeDead {
		dead = dead[:maxByeDead]
	}
	b := make([]byte, 1+2+len(reason)+2+4*len(dead))
	if y.Abort {
		b[0] = 1
	}
	binary.LittleEndian.PutUint16(b[1:], uint16(len(reason)))
	copy(b[3:], reason)
	off := 3 + len(reason)
	binary.LittleEndian.PutUint16(b[off:], uint16(len(dead)))
	off += 2
	for _, d := range dead {
		binary.LittleEndian.PutUint32(b[off:], uint32(d))
		off += 4
	}
	return b
}

// DecodeBye parses a departure payload.
func DecodeBye(b []byte) (Bye, error) {
	if len(b) < 3 {
		return Bye{}, fmt.Errorf("transport: %d-byte bye payload shorter than the 3-byte header", len(b))
	}
	if b[0] > 1 {
		return Bye{}, fmt.Errorf("transport: bye abort flag %d is not a bool", b[0])
	}
	n := int(binary.LittleEndian.Uint16(b[1:]))
	if n > maxByeReason {
		return Bye{}, fmt.Errorf("transport: %d-byte bye reason exceeds the %d-byte bound", n, maxByeReason)
	}
	if len(b) < 3+n+2 {
		return Bye{}, fmt.Errorf("transport: bye payload is %d bytes, too short for a %d-byte reason", len(b), n)
	}
	y := Bye{Abort: b[0] == 1, Reason: string(b[3 : 3+n])}
	off := 3 + n
	nd := int(binary.LittleEndian.Uint16(b[off:]))
	if nd > maxByeDead {
		return Bye{}, fmt.Errorf("transport: %d-entry bye dead list exceeds the %d-entry bound", nd, maxByeDead)
	}
	off += 2
	if len(b) != off+4*nd {
		return Bye{}, fmt.Errorf("transport: bye payload is %d bytes, header says %d", len(b), off+4*nd)
	}
	for i := 0; i < nd; i++ {
		y.Dead = append(y.Dead, int32(binary.LittleEndian.Uint32(b[off:])))
		off += 4
	}
	return y, nil
}
