package transport

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: KindHello, SrcNode: 2, Payload: (&Hello{Job: 7, Node: 2, Nodes: 4, NRanks: 16, Delivered: 99}).Encode()},
		{Kind: KindData, SrcNode: 0, Seq: 12, Ack: 11, SrcRank: 3, DstRank: 9, Tag: 42, Comm: 1, Payload: []byte("hello pure")},
		{Kind: KindAck, SrcNode: 1, Ack: 1 << 40},
		{Kind: KindHeartbeat, SrcNode: 3, Payload: (&Heartbeat{Nonce: 5, SentUnixNano: 123456789}).Encode()},
		{Kind: KindBye, SrcNode: 1, Payload: (&Bye{Abort: true, Reason: "poisoned"}).Encode()},
		{Kind: KindApplied, SrcNode: 1, Seq: 1, SrcRank: 4, DstRank: 0, Tag: 1<<29 + 1, Comm: 1, Payload: make([]byte, 8)},
		{Kind: KindData, SrcNode: 0, Seq: 1, Payload: nil}, // empty payload
	}
	var buf []byte
	for i := range frames {
		buf = AppendFrame(buf, &frames[i])
	}
	rest := buf
	for i := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		rest = rest[n:]
		want := frames[i]
		if got.Kind != want.Kind || got.SrcNode != want.SrcNode || got.Seq != want.Seq ||
			got.Ack != want.Ack || got.SrcRank != want.SrcRank || got.DstRank != want.DstRank ||
			got.Tag != want.Tag || got.Comm != want.Comm || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding all frames", len(rest))
	}
}

func TestFrameReaderStream(t *testing.T) {
	var buf bytes.Buffer
	const n = 50
	for i := 0; i < n; i++ {
		f := Frame{Kind: KindData, Seq: uint64(i + 1), SrcRank: int32(i), Payload: bytes.Repeat([]byte{byte(i)}, i)}
		buf.Write(f.Encode())
	}
	fr := frameReader{r: &buf}
	for i := 0; i < n; i++ {
		f, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Seq != uint64(i+1) || len(f.Payload) != i {
			t.Fatalf("frame %d: got seq %d payload %d", i, f.Seq, len(f.Payload))
		}
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := (&Frame{Kind: KindData, Seq: 1, Payload: []byte("x")}).Encode()

	cases := []struct {
		name string
		mut  func([]byte)
		want string
	}{
		{"short buffer", func(b []byte) {}, "shorter than"},
		{"bad magic", func(b []byte) { b[0] = 0xff }, "magic"},
		{"bad version", func(b []byte) { b[2] = 99 }, "version"},
		{"zero kind", func(b []byte) { b[3] = 0 }, "kind"},
		{"kind past applied", func(b []byte) { b[3] = byte(KindApplied) + 1 }, "kind"},
		{"oversized payload", func(b []byte) { b[36], b[37], b[38], b[39] = 0xff, 0xff, 0xff, 0xff }, "exceeds"},
		{"truncated payload", func(b []byte) { b[36] = 200 }, "truncated"},
	}
	for _, tc := range cases {
		b := append([]byte(nil), good...)
		if tc.name == "short buffer" {
			b = b[:HeaderLen-1]
		}
		tc.mut(b)
		if _, _, err := DecodeFrame(b); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestControlCodecs(t *testing.T) {
	h := Hello{Job: 1 << 60, Node: 3, Nodes: 8, NRanks: 64, Delivered: 1 << 50}
	got, err := DecodeHello(h.Encode())
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	if _, err := DecodeHello([]byte{1, 2, 3}); err == nil {
		t.Fatal("short hello decoded")
	}

	hb := Heartbeat{Nonce: 9, SentUnixNano: -5}
	gotHB, err := DecodeHeartbeat(hb.Encode())
	if err != nil || gotHB != hb {
		t.Fatalf("heartbeat round trip: %+v, %v", gotHB, err)
	}
	if _, err := DecodeHeartbeat(nil); err == nil {
		t.Fatal("empty heartbeat decoded")
	}

	for _, y := range []Bye{
		{},
		{Abort: true, Reason: "node 2 poisoned: panic"},
		{Reason: strings.Repeat("r", maxByeReason+100)},
		{Abort: true, Reason: "node 0 reported node 3 dead", Dead: []int32{3}},
		{Abort: true, Dead: []int32{1, 4, 2}},
	} {
		got, err := DecodeBye(y.Encode())
		if err != nil {
			t.Fatalf("bye %+v: %v", y, err)
		}
		wantReason := y.Reason
		if len(wantReason) > maxByeReason {
			wantReason = wantReason[:maxByeReason]
		}
		if got.Abort != y.Abort || got.Reason != wantReason {
			t.Fatalf("bye round trip: got %+v", got)
		}
		if len(got.Dead) != len(y.Dead) {
			t.Fatalf("bye dead round trip: got %v, want %v", got.Dead, y.Dead)
		}
		for i := range got.Dead {
			if got.Dead[i] != y.Dead[i] {
				t.Fatalf("bye dead round trip: got %v, want %v", got.Dead, y.Dead)
			}
		}
	}
	if _, err := DecodeBye([]byte{2, 0, 0, 0, 0}); err == nil {
		t.Fatal("bye with non-bool flag decoded")
	}
	if _, err := DecodeBye([]byte{0, 5, 0, 'x'}); err == nil {
		t.Fatal("bye with wrong length decoded")
	}
	if _, err := DecodeBye([]byte{0, 0, 0}); err == nil {
		t.Fatal("bye missing its dead-list header decoded")
	}
	if _, err := DecodeBye([]byte{0, 0, 0, 2, 0, 1, 0, 0, 0}); err == nil {
		t.Fatal("bye with truncated dead list decoded")
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindApplied.String() != "applied" {
		t.Fatalf("kind names: %s %s", KindData, KindApplied)
	}
	if !KindData.sequenced() || !KindApplied.sequenced() || KindAck.sequenced() || KindHeartbeat.sequenced() {
		t.Fatal("sequenced() misclassifies kinds")
	}
}
