package transport

import (
	"testing"
)

// sym feeds one symmetric-path exchange: the peer's clock leads ours by off,
// each direction takes d, and the peer holds the echo for hold.
func sym(c *ClockEstimator, t0, off, d, hold int64) bool {
	t1 := t0 + d + off    // peer receives our heartbeat (peer clock)
	t2 := t1 + hold       // peer sends its heartbeat back (peer clock)
	t3 := t0 + 2*d + hold // we receive it (our clock)
	return c.AddSample(t0, t1, t2, t3)
}

func TestClockEstimatorSymmetric(t *testing.T) {
	var c ClockEstimator
	const off, d = 5_000_000, 40_000 // peer leads by 5ms, 40µs one-way
	t0 := int64(1_000_000)
	for i := 0; i < 10; i++ {
		if !sym(&c, t0, off, d, 10_000) {
			t.Fatalf("sample %d rejected", i)
		}
		t0 += 1_000_000
	}
	got, ok := c.Offset()
	if !ok || got != off {
		t.Fatalf("Offset() = %d, %v; want %d, true", got, ok, off)
	}
	delay, ok := c.Delay()
	if !ok || delay != 2*d {
		t.Fatalf("Delay() = %d, %v; want %d, true", delay, ok, 2*d)
	}
	if c.Samples() != 10 {
		t.Fatalf("Samples() = %d, want 10", c.Samples())
	}
}

func TestClockEstimatorAsymmetricDelays(t *testing.T) {
	// With asymmetric path delays d1 (to peer) and d2 (back), the estimate's
	// error is (d1-d2)/2 — bounded by half the RTT.  The min-delay filter
	// must pick the most symmetric (lowest-RTT) sample.
	var c ClockEstimator
	const off = -3_000_000 // peer lags by 3ms
	add := func(t0, d1, d2 int64) {
		t1 := t0 + d1 + off
		t2 := t1 + 1000
		t3 := t0 + d1 + d2 + 1000
		c.AddSample(t0, t1, t2, t3)
	}
	// Noisy asymmetric samples, then one clean symmetric exchange.
	add(1_000_000, 900_000, 100_000)
	add(2_000_000, 50_000, 750_000)
	add(3_000_000, 20_000, 20_000) // lowest RTT, symmetric
	add(4_000_000, 600_000, 60_000)
	got, ok := c.Offset()
	if !ok || got != off {
		t.Fatalf("Offset() = %d, %v; want %d (the symmetric sample)", got, ok, off)
	}
	// Every estimate, even from a skewed sample, stays within RTT/2 of truth.
	for _, w := range c.win {
		est := w.offset
		if diff := est - off; diff > w.delay/2 || diff < -w.delay/2 {
			t.Fatalf("sample offset %d off by %d, beyond delay/2 = %d", est, diff, w.delay/2)
		}
	}
}

func TestClockEstimatorDrift(t *testing.T) {
	// The peer's clock gains 50µs per second: 50_000 ppb.
	var c ClockEstimator
	const ppb = 50_000
	base := int64(1_000_000)
	for i := int64(0); i < 20; i++ {
		t0 := base + i*50_000_000 // one sample every 50ms, spanning ~1s
		off := t0 * ppb / 1_000_000_000
		if !sym(&c, t0, off, 30_000, 5_000) {
			t.Fatalf("sample %d rejected", i)
		}
	}
	got, ok := c.DriftPPB()
	if !ok {
		t.Fatal("DriftPPB() not ready after 20 samples over 1s")
	}
	if got < ppb-ppb/10 || got > ppb+ppb/10 {
		t.Fatalf("DriftPPB() = %d, want %d ±10%%", got, ppb)
	}
}

func TestClockEstimatorRejectsBadSamples(t *testing.T) {
	var c ClockEstimator
	if c.AddSample(0, 50, 60, 100) {
		t.Fatal("accepted sample with zero t0 (no echo yet)")
	}
	if c.AddSample(100, 0, 60, 200) {
		t.Fatal("accepted sample with zero t1")
	}
	if !sym(&c, 1_000_000, 0, 10_000, 100) {
		t.Fatal("rejected a valid sample")
	}
	// Stale echo: the peer re-sent an echo of the same (or an older)
	// heartbeat of ours; t0 does not advance.
	if sym(&c, 1_000_000, 0, 10_000, 100) {
		t.Fatal("accepted duplicate echo (t0 not advanced)")
	}
	if sym(&c, 500_000, 0, 10_000, 100) {
		t.Fatal("accepted out-of-order echo (t0 went backwards)")
	}
	if c.AddSample(2_000_000, 2_000_100, 2_000_200, 1_999_000) {
		t.Fatal("accepted sample with t3 < t0")
	}
	// Hold longer than the round trip implies negative path delay.
	if c.AddSample(3_000_000, 3_000_100, 3_900_000, 3_100_000) {
		t.Fatal("accepted sample with negative path delay")
	}
	if got := c.Samples(); got != 1 {
		t.Fatalf("Samples() = %d, want 1 (only the valid one)", got)
	}
	if _, ok := c.Offset(); !ok {
		t.Fatal("Offset() not available after one valid sample")
	}
}

func TestClockEstimatorWindowSlides(t *testing.T) {
	// After the window fills, old samples fall out: a persistent change in
	// offset eventually wins even though earlier samples had lower delay.
	var c ClockEstimator
	t0 := int64(1_000_000)
	for i := 0; i < clockWindow; i++ {
		sym(&c, t0, 1_000_000, 10_000, 100) // old offset 1ms, low delay
		t0 += 1_000_000
	}
	for i := 0; i < clockWindow; i++ {
		sym(&c, t0, 9_000_000, 50_000, 100) // new offset 9ms, higher delay
		t0 += 1_000_000
	}
	got, ok := c.Offset()
	if !ok || got != 9_000_000 {
		t.Fatalf("Offset() = %d, %v; want 9000000 after window slid", got, ok)
	}
}
