package transport

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Defaults.  Heartbeats are cheap (one 64-byte frame per link per interval),
// so the interval errs toward fast failure detection; PeerDeadAfter trades
// false positives under scheduler stalls against detection latency and must
// sit well below the watchdog's HangTimeout (Validate enforces it) so a dead
// node is named before the hang diagnosis fires.
const (
	DefaultHeartbeatEvery  = 25 * time.Millisecond
	DefaultPeerDeadFactor  = 8 // PeerDeadAfter = factor * HeartbeatEvery
	DefaultDialTimeout     = 2 * time.Second
	DefaultDialBackoff     = 20 * time.Millisecond
	DefaultDialBackoffMax  = time.Second
	DefaultRetryBudget     = 16
	DefaultRetryBackoff    = 20 * time.Millisecond
	DefaultRetryBackoffMax = time.Second
	// DefaultMaxUnacked bounds the per-link resend buffer (frames).  A full
	// buffer pushes back on senders instead of growing without bound toward
	// a slow or silent peer.
	DefaultMaxUnacked = 4096
	// DefaultDrainTimeout bounds the graceful-close drain (see
	// Config.DrainTimeout).
	DefaultDrainTimeout = 2 * time.Second
)

// Faults is the transport-level fault plan, the real-socket analogue of the
// simulator's netsim.Faults: seeded, deterministic per link, and applied
// only to the first transmission of a sequenced frame — retransmissions are
// exempt, so every injected drop is recoverable and exercises exactly the
// recovery path.  Delays are applied on the receive side (the reader sleeps
// before processing), modeling added one-way latency.
type Faults struct {
	Seed      uint64        // RNG seed; links derive independent streams from it
	DropProb  float64       // probability a sequenced frame's first transmission is dropped
	DelayProb float64       // probability an arriving sequenced frame is delayed
	DelayMax  time.Duration // upper bound of the injected (uniform) delay
}

// Active reports whether any fault injection is configured.
func (f Faults) Active() bool { return f.DropProb > 0 || f.DelayProb > 0 }

// Config configures one node's transport endpoint.
type Config struct {
	// Node is this process's node id in [0, len(Addrs)).
	Node int
	// Addrs is the listen address of every node in the job, indexed by node
	// id.  All nodes must be configured with the same table.
	Addrs []string
	// Job identifies the job; links reject peers from a different job (a
	// stale process from a previous run redialing a reused port).
	Job uint64

	// HeartbeatEvery is the per-link keepalive interval (0 = default).
	HeartbeatEvery time.Duration
	// PeerDeadAfter declares a peer dead when nothing — data, ack, or
	// heartbeat — has arrived on its link for this long (0 = default:
	// DefaultPeerDeadFactor heartbeat intervals).  It must be shorter than
	// the runtime's HangTimeout, so survivors learn *which node* died
	// instead of diagnosing an anonymous stall.
	PeerDeadAfter time.Duration

	// DialTimeout bounds one connection attempt; DialBackoff/DialBackoffMax
	// shape the exponential backoff between attempts (0 = defaults).
	DialTimeout    time.Duration
	DialBackoff    time.Duration
	DialBackoffMax time.Duration

	// RetryBudget is how many retransmission rounds a link tolerates without
	// ack progress before declaring the peer dead; RetryBackoff/
	// RetryBackoffMax shape the exponential backoff between rounds
	// (0 = defaults, negative RetryBudget is invalid).
	RetryBudget     int
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration

	// MaxUnacked bounds the per-link resend buffer in frames (0 = default).
	MaxUnacked int

	// DrainTimeout bounds how long a graceful Close waits for in-flight
	// frames to be acknowledged before tearing connections down
	// (0 = default).  Sends complete at post, so without the drain a
	// process whose last act is a send could exit with the frame still in
	// the resend buffer — or still waiting on the initial dial — and the
	// payload would be silently lost while the peer blocks until heartbeat
	// death.  Aborts skip the drain: poison must not wait behind a wedged
	// link.
	DrainTimeout time.Duration

	// LinkEvents, when positive, gives each link a transport trace ring of
	// that many entries recording frame send/recv/retransmit events with
	// link sequence numbers (read back via Transport.LinkEvents).  The
	// runtime enables it exactly when rank tracing is on; 0 keeps the send
	// path free of trace work.
	LinkEvents int

	// Faults is the transport fault plan (chaos testing).
	Faults Faults
}

// WithDefaults returns c with zero values replaced by the defaults.
func (c Config) WithDefaults() Config {
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.PeerDeadAfter == 0 {
		c.PeerDeadAfter = DefaultPeerDeadFactor * c.HeartbeatEvery
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.DialBackoff == 0 {
		c.DialBackoff = DefaultDialBackoff
	}
	if c.DialBackoffMax == 0 {
		c.DialBackoffMax = DefaultDialBackoffMax
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = DefaultRetryBudget
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = DefaultRetryBackoffMax
	}
	if c.MaxUnacked == 0 {
		c.MaxUnacked = DefaultMaxUnacked
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	return c
}

// Validate checks the (defaults-resolved) configuration, returning a
// descriptive error for each way it can be wrong.  hangTimeout is the
// runtime watchdog's timeout (0 when the watchdog is disarmed): failure
// detection must beat it, or every node death would be reported as an
// anonymous stall.
func (c *Config) Validate(hangTimeout time.Duration) error {
	if len(c.Addrs) == 0 {
		return fmt.Errorf("transport: Addrs is empty: a transport needs one listen address per node")
	}
	if c.Node < 0 || c.Node >= len(c.Addrs) {
		return fmt.Errorf("transport: Node %d out of range [0,%d) of the Addrs table", c.Node, len(c.Addrs))
	}
	for i, a := range c.Addrs {
		if a == "" {
			return fmt.Errorf("transport: Addrs[%d] is empty: every node needs a listen address", i)
		}
		if !strings.Contains(a, ":") {
			return fmt.Errorf("transport: Addrs[%d] = %q has no port (want host:port)", i, a)
		}
	}
	seen := make(map[string]int, len(c.Addrs))
	for i, a := range c.Addrs {
		if j, dup := seen[a]; dup {
			return fmt.Errorf("transport: Addrs[%d] and Addrs[%d] are both %q: nodes cannot share a listen address", j, i, a)
		}
		seen[a] = i
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"HeartbeatEvery", c.HeartbeatEvery},
		{"PeerDeadAfter", c.PeerDeadAfter},
		{"DialTimeout", c.DialTimeout},
		{"DialBackoff", c.DialBackoff},
		{"DialBackoffMax", c.DialBackoffMax},
		{"RetryBackoff", c.RetryBackoff},
		{"RetryBackoffMax", c.RetryBackoffMax},
		{"DrainTimeout", c.DrainTimeout},
	} {
		if d.v <= 0 {
			return fmt.Errorf("transport: %s must be positive (0 selects the default before validation), got %v", d.name, d.v)
		}
	}
	if c.PeerDeadAfter < c.HeartbeatEvery {
		return fmt.Errorf("transport: PeerDeadAfter (%v) below HeartbeatEvery (%v) would declare every peer dead between heartbeats",
			c.PeerDeadAfter, c.HeartbeatEvery)
	}
	if hangTimeout > 0 && c.PeerDeadAfter >= hangTimeout {
		return fmt.Errorf("transport: PeerDeadAfter (%v) must be below HangTimeout (%v) so a dead node is named before the watchdog diagnoses an anonymous stall",
			c.PeerDeadAfter, hangTimeout)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("transport: RetryBudget must not be negative (0 selects the default %d), got %d", DefaultRetryBudget, c.RetryBudget)
	}
	if c.MaxUnacked < 0 {
		return fmt.Errorf("transport: MaxUnacked must not be negative (0 selects the default %d), got %d", DefaultMaxUnacked, c.MaxUnacked)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", c.Faults.DropProb},
		{"DelayProb", c.Faults.DelayProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("transport: Faults.%s must be in [0, 1], got %g", p.name, p.v)
		}
	}
	if c.Faults.DelayProb > 0 && c.Faults.DelayMax <= 0 {
		return fmt.Errorf("transport: Faults.DelayProb %g needs a positive Faults.DelayMax", c.Faults.DelayProb)
	}
	return nil
}

// Environment variables understood by FromEnv (set by the purerun launcher).
const (
	EnvNode  = "PURE_NODE"  // this process's node id
	EnvAddrs = "PURE_ADDRS" // comma-separated listen addresses, indexed by node id
	EnvJob   = "PURE_JOB"   // numeric job id (optional, default 0)
	// EnvMonitor is the monitor listen address purerun -monitor assigns to
	// each worker.  FromEnv does not consume it (the monitor belongs to the
	// runtime, not the transport); workers read it and set
	// Config.MonitorAddr so the launcher's aggregator can scrape them.
	EnvMonitor = "PURE_MONITOR"
)

// FromEnv builds a Config from the PURE_NODE / PURE_ADDRS / PURE_JOB
// environment, the contract between the purerun launcher and the processes
// it spawns.  It returns (nil, nil) when PURE_ADDRS is unset — the process
// is running standalone, not under a launcher.
func FromEnv() (*Config, error) {
	addrs := os.Getenv(EnvAddrs)
	if addrs == "" {
		return nil, nil
	}
	nodeStr := os.Getenv(EnvNode)
	if nodeStr == "" {
		return nil, fmt.Errorf("transport: %s is set but %s is not", EnvAddrs, EnvNode)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return nil, fmt.Errorf("transport: bad %s %q: %v", EnvNode, nodeStr, err)
	}
	cfg := &Config{Node: node, Addrs: strings.Split(addrs, ",")}
	if j := os.Getenv(EnvJob); j != "" {
		job, err := strconv.ParseUint(j, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("transport: bad %s %q: %v", EnvJob, j, err)
		}
		cfg.Job = job
	}
	return cfg, nil
}
