package transport

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode hammers the transport frame decoder with arbitrary bytes:
// it must either reject the input or produce a frame that re-encodes to the
// bytes it consumed.  Every inbound connection feeds this decoder before
// any validation, so it must never panic or over-read.
func FuzzFrameDecode(f *testing.F) {
	hello := Hello{Job: 42, Node: 1, Nodes: 4, NRanks: 32, Delivered: 7}
	seeds := []Frame{
		{Kind: KindHello, SrcNode: 1, Payload: hello.Encode()},
		{Kind: KindWelcome, SrcNode: 3, Payload: hello.Encode()},
		{Kind: KindData, SrcNode: 0, Seq: 9, Ack: 8, SrcRank: 2, DstRank: 5, Tag: 11, Comm: 1, Payload: []byte("payload")},
		{Kind: KindAck, SrcNode: 2, Ack: 1 << 33},
		{Kind: KindHeartbeat, SrcNode: 1, Payload: (&Heartbeat{Nonce: 3, SentUnixNano: 1}).Encode()},
		{Kind: KindBye, SrcNode: 0, Payload: (&Bye{Abort: true, Reason: "chaos"}).Encode()},
		{Kind: KindApplied, SrcNode: 1, Seq: 2, SrcRank: 6, DstRank: 0, Tag: 1<<29 + 1, Comm: 3, Payload: make([]byte, 8)},
	}
	for i := range seeds {
		f.Add(seeds[i].Encode())
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x46, 0x50}, HeaderLen))
	f.Add(seeds[2].Encode()[:HeaderLen-1])

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n < HeaderLen || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		if fr.Kind < KindHello || fr.Kind > KindApplied {
			t.Fatalf("decoder accepted kind %d", fr.Kind)
		}
		if len(fr.Payload) > MaxPayload {
			t.Fatalf("decoder accepted %d-byte payload", len(fr.Payload))
		}
		if got := fr.Encode(); !bytes.Equal(got, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, b[:n])
		}
	})
}

// FuzzControlDecode hammers the control-payload codecs (handshake,
// heartbeat, departure).  These parse peer-controlled bytes during the
// handshake — before the peer has proven anything about itself.
func FuzzControlDecode(f *testing.F) {
	f.Add((&Hello{Job: 1, Node: 0, Nodes: 2, NRanks: 8, Delivered: 3}).Encode())
	f.Add((&Heartbeat{Nonce: 1, SentUnixNano: 2}).Encode())
	f.Add((&Bye{Abort: true, Reason: "node 1 poisoned"}).Encode())
	f.Add((&Bye{Abort: true, Reason: "node 2 saw node 1 die", Dead: []int32{1, 3}}).Encode())
	f.Add((&Bye{}).Encode())
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{0, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		if h, err := DecodeHello(b); err == nil {
			if got := h.Encode(); !bytes.Equal(got, b) {
				t.Fatalf("hello re-encode mismatch: %x vs %x", got, b)
			}
		}
		if hb, err := DecodeHeartbeat(b); err == nil {
			if got := hb.Encode(); !bytes.Equal(got, b) {
				t.Fatalf("heartbeat re-encode mismatch: %x vs %x", got, b)
			}
		}
		if y, err := DecodeBye(b); err == nil {
			if len(y.Reason) > maxByeReason {
				t.Fatalf("bye decoder accepted %d-byte reason", len(y.Reason))
			}
			if got := (&y).Encode(); !bytes.Equal(got, b) {
				t.Fatalf("bye re-encode mismatch: %x vs %x", got, b)
			}
		}
	})
}
