package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrBusy reports a full resend window toward the destination: the link will
// not buffer more until the peer acks progress.  Callers yield and retry —
// the runtime's progress loops interleave poison checks so a dead peer
// cannot spin a sender forever.
var ErrBusy = errors.New("transport: link resend window full")

// ErrClosed reports a send on a transport that has been closed.
var ErrClosed = errors.New("transport: closed")

// DeadError reports a send toward a peer the failure detector has declared
// dead.
type DeadError struct {
	Node   int
	Reason string
}

func (e *DeadError) Error() string {
	return fmt.Sprintf("transport: node %d is dead: %s", e.Node, e.Reason)
}

// Handlers are the upcalls a Transport makes into its owner (the core
// runtime).  Deliver and Applied run on a link's reader goroutine with the
// link's receive lock held, strictly in link order; their Frame (payload
// included) is only valid for the duration of the call — the handler copies
// what it keeps.  PeerDead and PeerBye run at most once per peer, off the
// transport's internal goroutines.
type Handlers struct {
	// Deliver receives one KindData frame.
	Deliver func(f *Frame)
	// Applied receives one KindApplied frame (RMA applied watermark).
	Applied func(f *Frame)
	// PeerDead reports a peer declared dead by the failure detector
	// (heartbeat silence or retry-budget exhaustion).
	PeerDead func(node int, reason string)
	// PeerBye reports a peer's deliberate departure.  abort distinguishes a
	// poisoned runtime (propagate the failure) from a completed one; dead
	// lists the node ids the departing peer blamed for its abort, so a
	// survivor hearing of a failure second-hand still names the node that
	// actually died rather than the peer relaying the news.
	PeerBye func(node int, abort bool, reason string, dead []int)
}

// Transport is one node's endpoint in the job's full mesh.  See the package
// comment for the protocol.
type Transport struct {
	cfg    Config
	be     Backend
	h      Handlers
	nranks int
	links  []*link // indexed by node id; nil at own index

	ln   Listener
	stop chan struct{}
	// closing is set at the top of Close (idempotency + refusing new
	// sends); closed is set once the drain has finished and teardown is
	// actually underway — dial and reconnect paths key off closed so the
	// drain can still re-establish a link and flush its resend buffer.
	closing  atomic.Bool
	closed   atomic.Bool
	wg       sync.WaitGroup
	rngState atomic.Uint64
}

// New builds a transport endpoint from a defaults-resolved, validated
// configuration.  nranks (the job's world size, 0 if unknown) is exchanged
// in the handshake so a misconfigured launch fails fast instead of
// deadlocking.  Call Start to bind and connect.
func New(cfg Config, be Backend, nranks int, h Handlers) (*Transport, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(0); err != nil {
		return nil, err
	}
	if be == nil {
		be = TCP()
	}
	t := &Transport{
		cfg:    cfg,
		be:     be,
		h:      h,
		nranks: nranks,
		links:  make([]*link, len(cfg.Addrs)),
		stop:   make(chan struct{}),
	}
	t.rngState.Store(cfg.Faults.Seed ^ 0x6a09e667f3bcc909)
	for peer := range cfg.Addrs {
		if peer == cfg.Node {
			continue
		}
		l := &link{
			t:      t,
			peer:   peer,
			addr:   cfg.Addrs[peer],
			dialer: cfg.Node < peer,
			rng:    cfg.Faults.Seed ^ (uint64(cfg.Node)<<32 | uint64(peer)) ^ 0x9e3779b97f4a7c15,
			events: newLinkEventRing(cfg.LinkEvents),
		}
		t.links[peer] = l
	}
	return t, nil
}

// Start binds the listen address, starts dialing every higher-numbered
// peer, and arms the ticker that drives heartbeats, retransmissions, and
// failure detection.
func (t *Transport) Start() error {
	ln, err := t.be.Listen(t.cfg.Addrs[t.cfg.Node])
	if err != nil {
		return fmt.Errorf("transport: node %d cannot listen on %q: %w", t.cfg.Node, t.cfg.Addrs[t.cfg.Node], err)
	}
	t.ln = ln

	t.wg.Add(1)
	go t.acceptLoop(ln)

	for _, l := range t.links {
		if l != nil && l.dialer {
			l.mu.Lock()
			l.dialing = true
			l.mu.Unlock()
			t.wg.Add(1)
			go l.dialLoop()
		}
	}

	t.wg.Add(1)
	go t.tickLoop()
	return nil
}

// Addr is the bound listen address (resolving a ":0" request to the picked
// port).  Valid after Start.
func (t *Transport) Addr() string { return t.ln.Addr() }

// Node is this endpoint's node id.
func (t *Transport) Node() int { return t.cfg.Node }

// Nodes is the job's node count.
func (t *Transport) Nodes() int { return len(t.cfg.Addrs) }

// Send routes one sequenced frame (KindData or KindApplied) to dstNode.
// nil means the link has taken responsibility for delivery (the frame is
// buffered for retransmission until acked); ErrBusy means the resend window
// is full and the caller should yield and retry; a *DeadError means the
// failure detector has given up on the peer.
func (t *Transport) Send(dstNode int, f *Frame) error {
	if t.closing.Load() {
		return ErrClosed
	}
	if dstNode < 0 || dstNode >= len(t.links) || t.links[dstNode] == nil {
		return fmt.Errorf("transport: no link from node %d to node %d", t.cfg.Node, dstNode)
	}
	if !f.Kind.sequenced() {
		return fmt.Errorf("transport: Send wants a sequenced frame, got %s", f.Kind)
	}
	return t.links[dstNode].send(f)
}

// Abort announces this node's runtime failure to every live peer (an
// abort-flagged Bye), so survivors propagate the poison immediately instead
// of waiting out the heartbeat detector.  dead lists the nodes this
// runtime's own detector blamed (empty when the abort had a local cause,
// e.g. a rank panic); peers record those nodes — not this one — as dead.
// Best-effort and non-blocking with respect to the runtime's abort path.
func (t *Transport) Abort(reason string, dead []int) {
	y := Bye{Abort: true, Reason: reason}
	for _, d := range dead {
		y.Dead = append(y.Dead, int32(d))
	}
	payload := y.Encode()
	for _, l := range t.links {
		if l != nil && !l.dead.Load() && !l.departed.Load() {
			l.sendControl(KindBye, payload)
		}
	}
}

// Close announces a graceful departure to every live peer, tears down every
// connection, and waits for the transport's goroutines to exit.  Safe to
// call more than once.
func (t *Transport) Close() error {
	if t.closing.Swap(true) {
		return nil
	}
	t.drain()
	t.closed.Store(true)
	y := Bye{}
	payload := y.Encode()
	for _, l := range t.links {
		if l != nil && !l.dead.Load() && !l.departed.Load() {
			l.sendControl(KindBye, payload)
		}
	}
	close(t.stop)
	for _, l := range t.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
			l.conn = nil
			l.bw = nil
			l.gen++
		}
		l.mu.Unlock()
	}
	if t.ln != nil {
		t.ln.Close()
	}
	t.wg.Wait()
	return nil
}

// drain blocks (bounded by DrainTimeout) until every live link's resend
// buffer is empty.  Sends complete at post, so an application whose last
// act is a send considers itself done while the frame may still be
// unacknowledged — or queued behind a dial that has not finished.  The
// tick loop is still running here (Close has not signalled stop yet), so
// retransmits and redials keep making progress during the wait.  Links that
// are dead, departed, or chaos-partitioned are excluded: their frames are
// undeliverable by definition and must not hold shutdown hostage.
func (t *Transport) drain() {
	deadline := time.Now().Add(t.cfg.DrainTimeout)
	for time.Now().Before(deadline) {
		pending := false
		for _, l := range t.links {
			if l == nil || l.dead.Load() || l.departed.Load() || l.partitioned.Load() {
				continue
			}
			l.mu.Lock()
			n := len(l.unacked)
			l.mu.Unlock()
			if n > 0 {
				pending = true
				break
			}
		}
		if !pending {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// KillLink severs the current connection to a peer (chaos: the link layer
// must reconnect and resume via the delivered watermarks).  A no-op when no
// connection is up.
func (t *Transport) KillLink(node int) {
	if node < 0 || node >= len(t.links) || t.links[node] == nil {
		return
	}
	l := t.links[node]
	l.mu.Lock()
	l.teardownConnLocked()
	l.mu.Unlock()
}

// SetPartitioned switches a chaos partition toward a peer on or off: while
// set, nothing is sent on the link and everything arriving is ignored —
// including heartbeats, so a long enough partition trips the failure
// detector on both sides.
func (t *Transport) SetPartitioned(node int, on bool) {
	if node < 0 || node >= len(t.links) || t.links[node] == nil {
		return
	}
	t.links[node].partitioned.Store(on)
}

// LinkStats is a point-in-time snapshot of one link's state and counters.
type LinkStats struct {
	Node       int
	Up         bool // a connection is currently established
	EverUp     bool // a connection has existed at some point
	Departed   bool // peer sent Bye
	Dead       bool // failure detector gave up on the peer
	DeadReason string
	Unacked    int // frames awaiting ack (resend buffer depth)

	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	Retransmits            int64 // frames re-sent (timeout rounds + reconnect replays)
	DupsDropped            int64 // received at or below the delivered watermark
	OooDropped             int64 // received past a gap (go-back-N discard)
	Reconnects             int64 // successful re-establishments after the first
	HeartbeatsSent         int64
	HeartbeatsRecv         int64
	AcksSent               int64 // explicit ack frames (piggybacks not counted)
	AcksRecv               int64 // explicit ack frames received
	RetryRounds            int64 // go-back-N retransmit rounds (backoff events)
	DropsInjected          int64 // fault plan: first transmissions suppressed
	DelaysInjected         int64 // fault plan: deliveries delayed
	SendBusy               int64 // sends refused by a full resend window

	// Clock/latency telemetry from the heartbeat echo exchange; all zero
	// until the first completed echo round trip.
	SmoothedRTTNs  int64 // EWMA of the filtered heartbeat round trip
	ClockOffsetNs  int64 // estimated peer clock minus local clock
	HeartbeatAgeNs int64 // time since anything was heard from the peer
}

// Stats snapshots every link.  The slice is indexed by peer node id with
// this node's own entry zeroed.
func (t *Transport) Stats() []LinkStats {
	out := make([]LinkStats, len(t.links))
	for i, l := range t.links {
		if l != nil {
			out[i] = l.snapshot()
		}
	}
	return out
}

// ClockSamples returns every link's recorded clock-offset history, merged
// and ordered by local arrival time.  The runtime records these into the
// node's binary trace dump; `puretrace merge` uses them to align per-node
// dumps onto one timeline.
func (t *Transport) ClockSamples() []obs.ClockSample {
	var out []obs.ClockSample
	for _, l := range t.links {
		if l != nil {
			out = append(out, l.clockSamples()...)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].LocalUnixNano < out[b].LocalUnixNano })
	return out
}

// LinkEvents returns every link's retained transport trace events (frame
// send/recv/retransmit with sequence numbers), merged and time-ordered.
// Empty unless Config.LinkEvents enabled the rings.
func (t *Transport) LinkEvents() []obs.LinkEvent {
	var out []obs.LinkEvent
	for _, l := range t.links {
		if l != nil && l.events != nil {
			out = append(out, l.events.snapshot()...)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	return out
}

// DeadNodes lists the peers the failure detector has declared dead.
func (t *Transport) DeadNodes() []int {
	var out []int
	for i, l := range t.links {
		if l != nil && l.dead.Load() {
			out = append(out, i)
		}
	}
	return out
}

// acceptLoop admits inbound connections for the node's lifetime.
func (t *Transport) acceptLoop(ln Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			if t.closed.Load() {
				return
			}
			select {
			case <-t.stop:
				return
			case <-time.After(time.Millisecond):
			}
			continue
		}
		t.wg.Add(1)
		go t.handleAccept(c)
	}
}

// handleAccept runs the accepting side of the handshake: await Hello,
// validate the peer, answer Welcome, install the connection.
func (t *Transport) handleAccept(c Conn) {
	defer t.wg.Done()
	c.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout))
	fr := frameReader{r: c}
	f, err := fr.Read()
	if err != nil || f.Kind != KindHello {
		c.Close()
		return
	}
	hello, err := DecodeHello(f.Payload)
	if err != nil || hello.Job != t.cfg.Job {
		c.Close()
		return
	}
	peer := int(hello.Node)
	// The lower-numbered node dials; an accepted connection must come from a
	// lower-numbered peer or the mesh has two connections racing.
	if peer < 0 || peer >= len(t.links) || peer >= t.cfg.Node || t.links[peer] == nil {
		c.Close()
		return
	}
	l := t.links[peer]
	if int(hello.Nodes) != len(t.cfg.Addrs) || (t.nranks > 0 && hello.NRanks > 0 && int(hello.NRanks) != t.nranks) {
		c.Close()
		l.die(fmt.Sprintf("configuration mismatch with node %d: it runs %d nodes / %d ranks, this node %d / %d",
			peer, hello.Nodes, hello.NRanks, len(t.cfg.Addrs), t.nranks))
		return
	}
	w := Hello{
		Job: t.cfg.Job, Node: int32(t.cfg.Node), Nodes: int32(len(t.cfg.Addrs)),
		NRanks: int32(t.nranks), Delivered: l.deliveredA.Load(),
	}
	wf := Frame{Kind: KindWelcome, SrcNode: int32(t.cfg.Node), Payload: w.Encode()}
	if _, err := c.Write(wf.Encode()); err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	l.installConn(c, hello.Delivered)
}

// tickLoop drives every link's periodic work.  The period is finer than
// both the heartbeat interval and the retransmit backoff so neither loses
// resolution.
func (t *Transport) tickLoop() {
	defer t.wg.Done()
	period := t.cfg.HeartbeatEvery
	if t.cfg.RetryBackoff < period {
		period = t.cfg.RetryBackoff
	}
	if period /= 2; period < time.Millisecond {
		period = time.Millisecond
	}
	tk := time.NewTicker(period)
	defer tk.Stop()
	for {
		select {
		case <-t.stop:
			return
		case now := <-tk.C:
			for _, l := range t.links {
				if l != nil {
					l.tick(now)
				}
			}
		}
	}
}

// rand01 draws from the transport's shared fault-injection stream (receive-
// side delays; the send side keeps per-link mu-guarded streams).
func (t *Transport) rand01() float64 {
	z := t.rngState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
