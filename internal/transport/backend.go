package transport

import (
	"io"
	"net"
	"time"
)

// Backend abstracts the byte-stream layer under the link protocol.  The
// default is TCP; a QUIC- or RDMA-style transport slots in by implementing
// these three interfaces — the link layer only needs ordered reliable byte
// streams with explicit connect/accept, and supplies its own framing,
// sequencing and failure detection on top.
type Backend interface {
	// Name identifies the backend in diagnostics ("tcp").
	Name() string
	// Listen binds the node's accept endpoint.
	Listen(addr string) (Listener, error)
	// Dial opens a connection to a peer's accept endpoint, bounded by
	// timeout.
	Dial(addr string, timeout time.Duration) (Conn, error)
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the bound address (resolves ":0" to the picked port).
	Addr() string
}

// Conn is one established byte-stream connection.
type Conn interface {
	io.ReadWriteCloser
	// SetReadDeadline bounds blocking reads (used for handshake timeouts).
	SetReadDeadline(t time.Time) error
	// SetWriteDeadline bounds blocking writes, so a peer that stops draining
	// its socket cannot wedge the sender behind a full kernel buffer.
	SetWriteDeadline(t time.Time) error
	// RemoteAddr names the peer endpoint for diagnostics.
	RemoteAddr() string
}

// TCP returns the TCP backend.
func TCP() Backend { return tcpBackend{} }

type tcpBackend struct{}

func (tcpBackend) Name() string { return "tcp" }

func (tcpBackend) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{ln}, nil
}

func (tcpBackend) Dial(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return wrapTCP(c), nil
}

type tcpListener struct{ ln net.Listener }

func (l tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return wrapTCP(c), nil
}

func (l tcpListener) Close() error { return l.ln.Close() }
func (l tcpListener) Addr() string { return l.ln.Addr().String() }

// wrapTCP disables Nagle's algorithm: the runtime's messages are latency-
// critical and the link layer already batches what it can behind a
// bufio.Writer, so delaying small frames for coalescing only adds RTTs.
func wrapTCP(c net.Conn) Conn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return tcpConn{c}
}

type tcpConn struct{ net.Conn }

func (c tcpConn) RemoteAddr() string { return c.Conn.RemoteAddr().String() }
