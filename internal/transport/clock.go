package transport

// NTP-style clock offset estimation over heartbeat echoes.  Every received
// heartbeat that echoes one of ours yields the four classic timestamps
//
//	t0  we sent a heartbeat            (local clock)
//	t1  the peer received it           (peer clock)
//	t2  the peer sent the echo         (peer clock)
//	t3  the echo arrived               (local clock)
//
// from which offset = ((t1-t0)+(t2-t3))/2 estimates the peer clock minus the
// local clock at the midpoint of the exchange, with an error bounded by half
// the path asymmetry, and delay = (t3-t0)-(t2-t1) is the round trip with the
// peer's holding time removed.  The estimator keeps a sliding window of
// samples and reports the offset of the minimum-delay sample (the standard
// NTP filter: queueing only ever adds delay, so the fastest exchange is the
// least distorted), plus a least-squares drift rate over the window's
// low-delay samples.

// clockWindow is the sliding sample window.  At the default 25ms heartbeat
// cadence it spans ~1.6s — long enough to catch a quiet network moment,
// short enough to track drift.
const clockWindow = 64

type clockObs struct {
	at     int64 // local clock (t3)
	offset int64
	delay  int64
}

// ClockEstimator derives clock offset and drift for one peer from heartbeat
// echo samples.  Methods are not safe for concurrent use; the link guards
// its estimator with clockMu.
type ClockEstimator struct {
	win    []clockObs
	lastT0 int64 // newest accepted sample's t0, to drop stale/duplicate echoes
	total  int   // accepted samples ever
}

// AddSample feeds one echo exchange.  It reports whether the sample was
// accepted; stale echoes (t0 not newer than the previous sample's), clock
// nonsense (echo before send on either clock) and non-positive round trips
// are rejected.
func (ce *ClockEstimator) AddSample(t0, t1, t2, t3 int64) bool {
	if t0 == 0 || t1 == 0 {
		return false // peer had nothing to echo yet
	}
	if t0 <= ce.lastT0 {
		return false // out-of-order or duplicated echo
	}
	hold := t2 - t1 // peer clock: receive -> echo
	if hold < 0 || t3 < t0 {
		return false
	}
	delay := (t3 - t0) - hold
	if delay <= 0 {
		return false
	}
	ce.lastT0 = t0
	ce.total++
	obs := clockObs{
		at:     t3,
		offset: ((t1 - t0) + (t2 - t3)) / 2,
		delay:  delay,
	}
	if len(ce.win) == clockWindow {
		copy(ce.win, ce.win[1:])
		ce.win[len(ce.win)-1] = obs
	} else {
		ce.win = append(ce.win, obs)
	}
	return true
}

// Samples returns the number of accepted samples ever.
func (ce *ClockEstimator) Samples() int { return ce.total }

// best returns the window's minimum-delay observation.
func (ce *ClockEstimator) best() (clockObs, bool) {
	if len(ce.win) == 0 {
		return clockObs{}, false
	}
	b := ce.win[0]
	for _, o := range ce.win[1:] {
		if o.delay < b.delay {
			b = o
		}
	}
	return b, true
}

// Offset returns the current offset estimate (peer clock minus local clock,
// nanoseconds): the offset of the window's minimum-delay sample.
func (ce *ClockEstimator) Offset() (int64, bool) {
	b, ok := ce.best()
	return b.offset, ok
}

// Delay returns the window's minimum filtered round-trip delay.
func (ce *ClockEstimator) Delay() (int64, bool) {
	b, ok := ce.best()
	return b.delay, ok
}

// DriftPPB estimates the relative clock drift rate in parts per billion
// (positive: the peer clock runs fast relative to ours) by a least-squares
// fit of offset against local time over the window's low-delay samples.
// ok is false until the window holds at least four such samples spanning
// at least 100ms.
func (ce *ClockEstimator) DriftPPB() (int64, bool) {
	b, ok := ce.best()
	if !ok {
		return 0, false
	}
	// Only fit samples whose delay is close to the window minimum: the
	// high-delay ones carry the queueing noise the min filter exists to
	// reject, and they would dominate the regression.
	limit := 2 * b.delay
	var pts []clockObs
	for _, o := range ce.win {
		if o.delay <= limit {
			pts = append(pts, o)
		}
	}
	if len(pts) < 4 {
		return 0, false
	}
	span := pts[len(pts)-1].at - pts[0].at
	if span < 100e6 {
		return 0, false
	}
	// Least squares on (at, offset), centered for numeric headroom.
	t0 := pts[0].at
	var sumT, sumO, sumTT, sumTO float64
	for _, o := range pts {
		t := float64(o.at - t0)
		v := float64(o.offset)
		sumT += t
		sumO += v
		sumTT += t * t
		sumTO += t * v
	}
	n := float64(len(pts))
	den := n*sumTT - sumT*sumT
	if den == 0 {
		return 0, false
	}
	slope := (n*sumTO - sumT*sumO) / den // ns of offset per ns of local time
	return int64(slope * 1e9), true
}
