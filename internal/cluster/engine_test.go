package cluster

import (
	"testing"
	"testing/quick"
)

func TestSingleProcDelay(t *testing.T) {
	e := New()
	var observed []int64
	e.Spawn("p", func(p *Proc) {
		observed = append(observed, e.Now())
		p.Delay(100)
		observed = append(observed, e.Now())
		p.Delay(50)
		observed = append(observed, e.Now())
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 150 {
		t.Fatalf("end = %d, want 150", end)
	}
	want := []int64{0, 100, 150}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("observed %v, want %v", observed, want)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Delay(10)
		order = append(order, "a10")
		p.Delay(20) // t=30
		order = append(order, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		p.Delay(20)
		order = append(order, "b20")
		p.Delay(10) // t=30, scheduled after a's
		order = append(order, "b30")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a10", "b20", "a30", "b30"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestChanLatency(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "wire")
	var recvAt int64
	e.Spawn("sender", func(p *Proc) {
		p.Delay(5)
		ch.SendAfter(42, 100) // delivery at t=105
	})
	e.Spawn("receiver", func(p *Proc) {
		v := ch.Recv(p)
		if v != 42 {
			t.Errorf("got %d", v)
		}
		recvAt = e.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != 105 {
		t.Fatalf("received at %d, want 105", recvAt)
	}
}

func TestChanFIFOAndTryRecv(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "q")
	var got []int
	e.Spawn("p", func(p *Proc) {
		ch.Send(1)
		ch.Send(2)
		if v, ok := ch.TryRecv(); !ok || v != 1 {
			t.Errorf("TryRecv = %d,%v", v, ok)
		}
		if ch.Len() != 1 {
			t.Errorf("Len = %d", ch.Len())
		}
		got = append(got, ch.Recv(p))
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "never")
	e.Spawn("stuck", func(p *Proc) {
		ch.Recv(p)
	})
	_, err := e.Run()
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestSignalPulseWakesAll(t *testing.T) {
	e := New()
	sig := &Signal{}
	woke := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			sig.Wait(p, "sig")
			woke++
		})
	}
	e.Spawn("pulser", func(p *Proc) {
		p.Delay(10)
		sig.Pulse()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke %d, want 3", woke)
	}
}

func TestAtCallbacksRunInOrder(t *testing.T) {
	e := New()
	var order []int
	e.Spawn("p", func(p *Proc) {
		e.At(30, func() { order = append(order, 30) })
		e.At(10, func() { order = append(order, 10) })
		e.At(10, func() { order = append(order, 11) }) // same time: insertion order
		p.Delay(100)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 10 || order[1] != 11 || order[2] != 30 {
		t.Fatalf("order %v", order)
	}
}

// Property: a pipeline of n stages each delaying d ends at exactly n*d and
// the simulation is deterministic across repeated runs.
func TestPipelineDeterminismProperty(t *testing.T) {
	f := func(nU, dU uint8) bool {
		n := int(nU%8) + 2
		d := int64(dU%100) + 1
		run := func() int64 {
			e := New()
			chans := make([]*Chan[int], n+1)
			for i := range chans {
				chans[i] = NewChan[int](e, "s")
			}
			for i := 0; i < n; i++ {
				stage := i
				e.Spawn("stage", func(p *Proc) {
					v := chans[stage].Recv(p)
					p.Delay(d)
					chans[stage+1].Send(v + 1)
				})
			}
			e.Spawn("src", func(p *Proc) { chans[0].Send(0) })
			var end int64
			e.Spawn("sink", func(p *Proc) {
				v := chans[n].Recv(p)
				if v != n {
					t.Errorf("sink got %d, want %d", v, n)
				}
				end = e.Now()
			})
			if _, err := e.Run(); err != nil {
				t.Error(err)
			}
			return end
		}
		a, b := run(), run()
		return a == b && a == int64(n)*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative delay did not panic")
			}
		}()
		p.Delay(-1)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
