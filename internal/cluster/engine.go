// Package cluster is a deterministic process-oriented discrete-event
// simulator (DES).  It is the stand-in for the hardware this reproduction
// does not have: the paper evaluates Pure on up to 1,024 Cray XC40 nodes
// (65,536 hardware threads), while this repository runs on a small host.
//
// Simulated processes are goroutines that run one at a time under a strict
// handshake with the engine, communicating through simulated channels and
// advancing a shared virtual clock.  Everything is deterministic: events at
// equal times fire in scheduling order (a monotone sequence number breaks
// ties), so a simulation's result is a pure function of its inputs.
//
// The runtime cost models in internal/desmodels build virtual Pure/MPI/AMPI
// runtimes on these primitives; the workload skeletons in
// internal/workloads run the paper's applications over them, regenerating
// the end-to-end figures in virtual nanoseconds.
package cluster

import (
	"container/heap"
	"fmt"
)

// event is a scheduled occurrence: either resume a parked process or run a
// callback inside the engine.
type event struct {
	at  int64
	seq uint64
	p   *Proc  // non-nil: resume this process
	fn  func() // non-nil: run this callback
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Engine is one simulation instance.  Not safe for concurrent use; the
// handshake guarantees only one simulated process runs at a time.
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
	parked chan *Proc // a process signals here when it blocks or exits
	nlive  int
	procs  []*Proc
}

// New creates an empty simulation.
func New() *Engine {
	return &Engine{parked: make(chan *Proc)}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn to run at now+delay inside the engine (it must not block).
func (e *Engine) At(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Proc is one simulated process.
type Proc struct {
	eng      *Engine
	name     string
	resume   chan struct{}
	done     bool
	panicked any
	// blocked marks a process parked on a wait structure (not a timer);
	// used for deadlock reporting.
	blockedOn string
}

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Spawn registers a process; it starts when Run is called.  fn runs on its
// own goroutine but in strict alternation with the engine.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.nlivePlus()
	e.seq++
	heap.Push(&e.events, event{at: e.now, seq: e.seq, p: p})
	go func() {
		<-p.resume // wait for the engine to start us
		defer func() {
			if r := recover(); r != nil {
				p.panicked = r
			}
			p.done = true
			e.parked <- p
		}()
		fn(p)
	}()
	return p
}

func (e *Engine) nlivePlus() { e.nlive++ }

// schedule resumes p at now+delay.
func (e *Engine) schedule(p *Proc, delay int64) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, p: p})
}

// Run executes the simulation until every process has finished or no event
// can make progress.  It returns the final virtual time and an error if
// processes deadlocked.
func (e *Engine) Run() (int64, error) {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.p.done {
			continue
		}
		ev.p.resume <- struct{}{}
		q := <-e.parked // wait for it to park, block, or exit
		if q.done {
			e.nlive--
			if q.panicked != nil {
				return e.now, fmt.Errorf("cluster: process %s panicked: %v", q.name, q.panicked)
			}
		}
	}
	if e.nlive > 0 {
		var stuck []string
		for _, p := range e.procs {
			if !p.done {
				stuck = append(stuck, fmt.Sprintf("%s (on %s)", p.name, p.blockedOn))
			}
		}
		return e.now, fmt.Errorf("cluster: deadlock at t=%dns; %d processes blocked: %v", e.now, e.nlive, stuck)
	}
	return e.now, nil
}

// Delay advances virtual time for this process by ns (models computation).
func (p *Proc) Delay(ns int64) {
	if ns < 0 {
		panic("cluster: negative delay")
	}
	p.eng.schedule(p, ns)
	p.park("timer")
}

// park yields to the engine without scheduling a wake; something else must
// call unpark (or the process deadlocks).
func (p *Proc) park(what string) {
	p.blockedOn = what
	p.eng.parked <- p
	<-p.resume
	p.blockedOn = ""
}

// unpark schedules p to resume at the current time.
func (p *Proc) unpark() { p.eng.schedule(p, 0) }

// Chan is an unbounded FIFO of values between simulated processes.
type Chan[T any] struct {
	eng     *Engine
	name    string
	items   []T
	waiters []*Proc
}

// NewChan creates a channel on the engine.
func NewChan[T any](e *Engine, name string) *Chan[T] {
	return &Chan[T]{eng: e, name: name}
}

// Len returns the queued item count.
func (c *Chan[T]) Len() int { return len(c.items) }

// Send enqueues v now and wakes one waiter.  It never blocks.
func (c *Chan[T]) Send(v T) {
	c.items = append(c.items, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[:copy(c.waiters, c.waiters[1:])]
		w.unpark()
	}
}

// SendAfter enqueues v after a virtual delay (models wire latency).
func (c *Chan[T]) SendAfter(v T, delay int64) {
	c.eng.At(delay, func() { c.Send(v) })
}

// TryRecv dequeues without blocking.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.items) == 0 {
		return zero, false
	}
	v := c.items[0]
	c.items = c.items[:copy(c.items, c.items[1:])]
	return v, true
}

// Recv blocks the process until an item is available.
func (c *Chan[T]) Recv(p *Proc) T {
	for {
		if v, ok := c.TryRecv(); ok {
			return v
		}
		c.waiters = append(c.waiters, p)
		p.park("chan " + c.name)
	}
}

// Signal wakes a set of parked processes when pulsed (used for "something
// changed on this node, re-check your condition" wakeups).
type Signal struct {
	waiters []*Proc
}

// Wait parks the process until the next Pulse.
func (s *Signal) Wait(p *Proc, what string) {
	s.waiters = append(s.waiters, p)
	p.park(what)
}

// Pulse wakes every currently parked waiter.
func (s *Signal) Pulse() {
	for _, w := range s.waiters {
		w.unpark()
	}
	s.waiters = s.waiters[:0]
}
