// Package rma holds the lock-free data structures of Pure's one-sided
// communication subsystem: per-communicator windows of exposed memory,
// direct Put/Get/Accumulate application, and the epoch synchronization
// primitives (fence, post/start/complete/wait, notify counters).
//
// The package is deliberately transport-free.  Everything here operates on
// shared memory within one address space; internal/core supplies the
// glue that carries window operations between nodes (frames over the
// modeled network) and the SSW wait loops that the epoch primitives block
// in.  The synchronization flags follow the SPTD discipline from
// internal/collective: per-rank sequence-numbered atomics that each rank
// advances monotonically, so a waiter only ever polls for "flag >= my
// round" and no flag is ever reset (no ABA, no locks, and the atomics give
// the happens-before edges that make direct memcpy into a peer's window
// race-detector clean).
package rma

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/collective"
)

// padUint64 is a cache-line padded atomic sequence flag (the same layout the
// SPTD flags use: one writer, many polling readers, no false sharing).
type padUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// spinlock is a tiny CAS lock used to serialize target-side Accumulate
// application.  Contention on it models the atomicity window MPI_Accumulate
// guarantees; callers must supply their own backoff (the core layer yields
// through the SSW loop).
type spinlock struct{ state atomic.Int32 }

// TryLock attempts one acquisition.
func (l *spinlock) TryLock() bool { return l.state.CompareAndSwap(0, 1) }

// Unlock releases the lock.
func (l *spinlock) Unlock() { l.state.Store(0) }

// NotifySlots is the number of independent notification counters each rank
// exposes per window (producer-consumer patterns use distinct slots for
// distinct neighbors or phases).
const NotifySlots = 8

// Window is the shared state of one window: every member rank's exposed
// buffer plus the epoch flags.  One Window is shared by all member ranks
// (and is reachable from the registry by the core layer's remote-frame
// dispatch); per-rank bookkeeping (epoch rounds, outstanding requests)
// lives in the caller's per-rank handle, not here.
type Window struct {
	n    int
	bufs [][]byte // comm rank -> exposed buffer; fixed after the create barrier
	// lens holds every member's exposed-buffer length.  Within one process it
	// mirrors len(bufs[i]); when window members span OS processes, remote
	// members' buffers are absent from this replica (bufs[i] == nil) and the
	// core layer fills lens from an exchange instead, so origin-side bounds
	// checks (Check) still see the true window sizes.
	lens []atomic.Int64

	fence []padUint64 // per-rank fence epoch flags
	post  []padUint64 // per-rank PSCW exposure flags (written by targets)
	// complete is an origin x target matrix of completion flags: origin o
	// stores its round into complete[o*n+t] when it finishes its access
	// epoch at target t; target t's Wait polls column t.
	complete []padUint64
	// notify holds per-(rank, slot) notification counters, advanced by
	// origins (or by the core layer applying remote notify frames) and
	// consumed monotonically by the owner.
	notify []padUint64

	accMu []spinlock // per-target-rank Accumulate serialization
}

// NewWindow builds the shared state for a window over n comm ranks.
func NewWindow(n int) *Window {
	return &Window{
		n:        n,
		bufs:     make([][]byte, n),
		lens:     make([]atomic.Int64, n),
		fence:    make([]padUint64, n),
		post:     make([]padUint64, n),
		complete: make([]padUint64, n*n),
		notify:   make([]padUint64, n*NotifySlots),
		accMu:    make([]spinlock, n),
	}
}

// N returns the window's member count.
func (w *Window) N() int { return w.n }

// Attach exposes buf as rank tid's window memory.  Each rank attaches its
// own buffer exactly once, before the creating collective's barrier; after
// that the bufs table is read-only.
func (w *Window) Attach(tid int, buf []byte) {
	w.bufs[tid] = buf
	w.lens[tid].Store(int64(len(buf)))
}

// SetLen records rank tid's exposed-buffer length without a buffer — the
// core layer's cross-process form of Attach, fed from a length exchange so
// origin-side bounds checks see the sizes of windows it cannot address.
func (w *Window) SetLen(tid int, n int) { w.lens[tid].Store(int64(n)) }

// Buffer returns rank tid's exposed buffer.
func (w *Window) Buffer(tid int) []byte { return w.bufs[tid] }

// Len returns rank tid's exposed-buffer length (valid for every member,
// including cross-process members whose buffer this replica cannot address).
func (w *Window) Len(tid int) int { return int(w.lens[tid].Load()) }

// Check bounds-checks an n-byte access at off into target's buffer,
// panicking with a descriptive message on violation.  Origins call it
// before shipping remote operations so misuse fails at the calling site
// rather than on the target's goroutine.
func (w *Window) Check(target, off, n int, what string) { w.checkRange(target, off, n, what) }

// checkRange bounds-checks an n-byte access at off into target's buffer.
func (w *Window) checkRange(target, off, n int, what string) {
	if target < 0 || target >= w.n {
		panic(fmt.Sprintf("rma: %s target rank %d out of range [0,%d)", what, target, w.n))
	}
	if off < 0 || n < 0 || int64(off)+int64(n) > w.lens[target].Load() {
		panic(fmt.Sprintf("rma: %s of %d bytes at offset %d overflows rank %d's %d-byte window",
			what, n, off, target, w.lens[target].Load()))
	}
}

// CopyIn applies a Put: one direct copy of data into target's window at off
// (the single unavoidable payload copy of an intra-node Put).  The caller
// provides ordering: the data only becomes readable by the target after an
// epoch flag (fence/PSCW/notify) published subsequently.
func (w *Window) CopyIn(target, off int, data []byte) {
	w.checkRange(target, off, len(data), "Put")
	schedpoint("rma:put:copy-in")
	copy(w.bufs[target][off:], data)
}

// CopyOut applies a Get: one direct copy out of target's window at off.
func (w *Window) CopyOut(target, off int, dest []byte) {
	w.checkRange(target, off, len(dest), "Get")
	schedpoint("rma:get:copy-out")
	copy(dest, w.bufs[target][off:])
}

// AccumulateLocal folds data into target's window at off with op over dt,
// serialized against every other Accumulate targeting the same rank by the
// per-target spinlock (MPI_Accumulate's element-wise atomicity, at window
// granularity).  wait is the caller's SSW loop, used while the lock is
// contended.
func (w *Window) AccumulateLocal(target, off int, data []byte, op collective.Op, dt collective.DType, wait func(func() bool)) {
	w.checkRange(target, off, len(data), "Accumulate")
	mu := &w.accMu[target]
	schedpoint("rma:acc:trylock")
	if !mu.TryLock() {
		wait(mu.TryLock)
	}
	schedpoint("rma:acc:fold")
	collective.Accumulate(w.bufs[target][off:off+len(data)], data, op, dt)
	schedpoint("rma:acc:unlock")
	mu.Unlock()
}

// ---- Fence epochs ----

// FenceArrive publishes rank tid's arrival at fence round (monotonically
// increasing, starting at 1).  The caller must have completed its own
// outstanding window operations first.
func (w *Window) FenceArrive(tid int, round uint64) {
	schedpoint("rma:fence:arrive")
	w.fence[tid].v.Store(round)
}

// FenceReached reports whether every member has arrived at round.  Polled
// from the caller's SSW loop; the atomic loads carry the happens-before
// edges that make the preceding epoch's Puts readable.
func (w *Window) FenceReached(round uint64) bool {
	for i := range w.fence {
		if w.fence[i].v.Load() < round {
			return false
		}
	}
	return true
}

// FenceLaggards returns the member ranks that have not reached round
// (watchdog diagnostics).
func (w *Window) FenceLaggards(round uint64) []int {
	var lag []int
	for i := range w.fence {
		if w.fence[i].v.Load() < round {
			lag = append(lag, i)
		}
	}
	return lag
}

// ---- PSCW (post/start/complete/wait) ----

// Post publishes rank tid's exposure epoch round (the target side of PSCW).
func (w *Window) Post(tid int, round uint64) {
	schedpoint("rma:pscw:post")
	w.post[tid].v.Store(round)
}

// Posted reports whether target has posted exposure round.
func (w *Window) Posted(target int, round uint64) bool {
	return w.post[target].v.Load() >= round
}

// Complete publishes origin's completion of access epoch round at target.
func (w *Window) Complete(origin, target int, round uint64) {
	schedpoint("rma:pscw:complete")
	w.complete[origin*w.n+target].v.Store(round)
}

// Completed reports whether origin has completed access epoch round at
// target (the target side polls this in Wait).
func (w *Window) Completed(origin, target int, round uint64) bool {
	return w.complete[origin*w.n+target].v.Load() >= round
}

// ---- Notify counters ----

// checkSlot validates a notification slot index.
func checkSlot(slot int) {
	if slot < 0 || slot >= NotifySlots {
		panic(fmt.Sprintf("rma: notify slot %d out of range [0,%d)", slot, NotifySlots))
	}
}

// Notify increments target's notification counter for slot, after the
// notifier's prior Puts to that target (program order plus the atomic add
// give the consumer a happens-before edge to the data).
func (w *Window) Notify(target, slot int) {
	checkSlot(slot)
	if target < 0 || target >= w.n {
		panic(fmt.Sprintf("rma: Notify target rank %d out of range [0,%d)", target, w.n))
	}
	schedpoint("rma:notify:add")
	w.notify[target*NotifySlots+slot].v.Add(1)
}

// NotifyCount returns rank tid's cumulative notification count for slot.
// Counters never reset; consumers track how many they have consumed.
func (w *Window) NotifyCount(tid, slot int) uint64 {
	checkSlot(slot)
	return w.notify[tid*NotifySlots+slot].v.Load()
}

// ---- Registry ----

// Key identifies a window: the owning communicator and the communicator's
// creation sequence number (every member counts WinCreate calls identically,
// collective-call ordering being the application's obligation, exactly like
// the channel manager's chanKey derives from message arguments).
type Key struct {
	Comm uint64
	Seq  uint64
}

// Registry maps Key -> *Window, creating windows on demand — the window
// analogue of the channel manager.  All member ranks (and the core layer's
// remote-frame dispatch) resolve the same Window through it.
type Registry struct{ m sync.Map }

// GetOrCreate returns the window for k, creating it with n members if it
// does not exist yet.  Two member ranks entering WinCreate at once race
// from the fast-path Load to the LoadOrStore; the seams let the model
// tests drive both orders and prove the racers converge on one *Window
// (the loser's freshly built window is garbage, never visible).
func (g *Registry) GetOrCreate(k Key, n int) *Window {
	schedpoint("rma:reg:lookup")
	if v, ok := g.m.Load(k); ok {
		return v.(*Window)
	}
	schedpoint("rma:reg:create")
	v, _ := g.m.LoadOrStore(k, NewWindow(n))
	return v.(*Window)
}

// Lookup returns the window for k, or nil.
func (g *Registry) Lookup(k Key) *Window {
	if v, ok := g.m.Load(k); ok {
		return v.(*Window)
	}
	return nil
}

// Free removes the window for k (after the owning communicator's closing
// barrier; sequence numbers are never reused, so a stale key cannot alias a
// new window).
func (g *Registry) Free(k Key) { g.m.Delete(k) }
