package rma

import (
	"encoding/binary"
	"fmt"

	"repro/internal/collective"
)

// Remote RMA frame format.  Inter-node window operations travel as frames
// over the same mailbox transport (and, under fault injection, the same
// link-layer ack/retransmit protocol) as ordinary messages, on a reserved
// tag outside the application tag space.  One frame is one operation; the
// per-flow frame order is the application order, and the link layer
// guarantees in-order single delivery, so the target applies frames as it
// drains them.

// FrameKind identifies a remote window operation.
type FrameKind uint8

// Frame kinds.
const (
	// FramePut carries a Put payload to be copied into the target window.
	FramePut FrameKind = iota + 1
	// FrameAcc carries an Accumulate payload plus op/dtype.
	FrameAcc
	// FrameGetReq asks the target to read its window and reply.
	FrameGetReq
	// FrameGetRep is the reply to a FrameGetReq; Aux echoes the request id.
	FrameGetRep
	// FrameNotify increments the target's notification counter Aux.
	FrameNotify
	// FramePost publishes the sender's PSCW exposure epoch (round in Aux)
	// into the receiving origin's window replica.  Used when window members
	// span OS processes, where the shared post flags are not shared.
	FramePost
	// FrameComplete publishes the sender's PSCW access-epoch completion
	// toward Target (round in Aux), the cross-process form of the complete
	// flag matrix.
	FrameComplete
	// FrameShmem nests one encoded shmem.Op (the PGAS layer's addressed
	// operation codec) in the payload; the header's window names the
	// symmetric heap.  Fetching ops reply via FrameGetRep with the op's
	// request id in Aux, reusing the get-reply plumbing unchanged.
	FrameShmem
)

var frameKindNames = [...]string{"invalid", "put", "acc", "get-req", "get-rep", "notify", "post", "complete", "shmem"}

// String returns the kind's stable name.
func (k FrameKind) String() string {
	if int(k) < len(frameKindNames) {
		return frameKindNames[k]
	}
	return fmt.Sprintf("FrameKind(%d)", int(k))
}

// Frame is one decoded remote window operation.
type Frame struct {
	Kind   FrameKind
	WinSeq uint64 // window sequence within the communicator (Key.Seq)
	Origin uint32 // origin comm rank
	Target uint32 // target comm rank
	Off    uint64 // window byte offset (put/acc/get-req)
	// Aux is kind-specific: the packed op/dtype for FrameAcc (see PackAcc),
	// the origin-local request id for FrameGetReq/FrameGetRep, and the
	// notification slot for FrameNotify.
	Aux uint64
	// N is the requested byte count for FrameGetReq (other kinds carry
	// their length as len(Payload)).
	N       uint64
	Payload []byte
}

// headerLen is the fixed frame header size.
const headerLen = 1 + 8 + 4 + 4 + 8 + 8 + 8

// Encode serializes f (header plus payload) into a fresh buffer.
func (f *Frame) Encode() []byte {
	b := make([]byte, headerLen+len(f.Payload))
	b[0] = byte(f.Kind)
	binary.LittleEndian.PutUint64(b[1:], f.WinSeq)
	binary.LittleEndian.PutUint32(b[9:], f.Origin)
	binary.LittleEndian.PutUint32(b[13:], f.Target)
	binary.LittleEndian.PutUint64(b[17:], f.Off)
	binary.LittleEndian.PutUint64(b[25:], f.Aux)
	binary.LittleEndian.PutUint64(b[33:], f.N)
	copy(b[headerLen:], f.Payload)
	return b
}

// DecodeFrame parses an encoded frame.  The payload aliases b.
func DecodeFrame(b []byte) (Frame, error) {
	if len(b) < headerLen {
		return Frame{}, fmt.Errorf("rma: %d-byte frame shorter than the %d-byte header", len(b), headerLen)
	}
	f := Frame{
		Kind:    FrameKind(b[0]),
		WinSeq:  binary.LittleEndian.Uint64(b[1:]),
		Origin:  binary.LittleEndian.Uint32(b[9:]),
		Target:  binary.LittleEndian.Uint32(b[13:]),
		Off:     binary.LittleEndian.Uint64(b[17:]),
		Aux:     binary.LittleEndian.Uint64(b[25:]),
		N:       binary.LittleEndian.Uint64(b[33:]),
		Payload: b[headerLen:],
	}
	if f.Kind < FramePut || f.Kind > FrameShmem {
		return Frame{}, fmt.Errorf("rma: unknown frame kind %d", b[0])
	}
	return f, nil
}

// PackAcc packs an Accumulate's op/dtype into a frame Aux value.
func PackAcc(op collective.Op, dt collective.DType) uint64 {
	return uint64(uint32(op))<<32 | uint64(uint32(dt))
}

// UnpackAcc inverts PackAcc.
func UnpackAcc(aux uint64) (collective.Op, collective.DType) {
	return collective.Op(uint32(aux >> 32)), collective.DType(uint32(aux))
}
