package rma

import (
	"bytes"
	"testing"

	"repro/internal/collective"
)

// FuzzFrameDecode throws arbitrary bytes at the remote-frame decoder.
// Frames arrive off the modeled network (and, under fault injection, after
// link-layer corruption), so DecodeFrame must never panic: it either
// rejects the input with an error or returns a frame that re-encodes to
// the same header and payload it was decoded from.
func FuzzFrameDecode(f *testing.F) {
	// Seed with one valid frame of every kind, including the Aux packings.
	seeds := []Frame{
		{Kind: FramePut, WinSeq: 1, Origin: 0, Target: 1, Off: 64, Payload: []byte("payload")},
		{Kind: FrameAcc, WinSeq: 2, Origin: 1, Target: 0, Off: 0, Aux: PackAcc(collective.OpSum, collective.Float64), Payload: make([]byte, 16)},
		{Kind: FrameGetReq, WinSeq: 3, Origin: 2, Target: 3, Off: 8, Aux: 7, N: 128},
		{Kind: FrameGetRep, WinSeq: 3, Origin: 3, Target: 2, Aux: 7, Payload: bytes.Repeat([]byte{0xAB}, 128)},
		{Kind: FrameNotify, WinSeq: 4, Origin: 0, Target: 1, Aux: 5},
		{Kind: FramePost, WinSeq: 5, Origin: 1, Target: 0, Aux: 3},
		{Kind: FrameComplete, WinSeq: 5, Origin: 0, Target: 1, Aux: 3},
		{Kind: FrameShmem, WinSeq: 6, Origin: 1, Target: 0, Payload: []byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
	}
	for i := range seeds {
		f.Add(seeds[i].Encode())
	}
	// Plus degenerate inputs the decoder must reject cleanly.
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, headerLen))
	f.Add(bytes.Repeat([]byte{0xFF}, headerLen+3))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if fr.Kind < FramePut || fr.Kind > FrameShmem {
			t.Fatalf("decoder accepted out-of-range kind %d", fr.Kind)
		}
		// Round-trip: re-encoding an accepted frame must reproduce the
		// input exactly (the payload aliases b, so lengths must agree too).
		if got := fr.Encode(); !bytes.Equal(got, b) {
			t.Fatalf("re-encode mismatch:\n in:  %x\n out: %x", b, got)
		}
		// The packed accumulate metadata must survive a pack/unpack cycle.
		if fr.Kind == FrameAcc {
			op, dt := UnpackAcc(fr.Aux)
			if PackAcc(op, dt) != fr.Aux {
				t.Fatalf("PackAcc(UnpackAcc(%#x)) = %#x", fr.Aux, PackAcc(op, dt))
			}
		}
	})
}
