package rma

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/collective"
)

func spin(cond func() bool) {
	for !cond() {
	}
}

func TestCopyInOutBounds(t *testing.T) {
	w := NewWindow(2)
	w.Attach(0, make([]byte, 16))
	w.Attach(1, make([]byte, 8))

	w.CopyIn(0, 4, []byte{1, 2, 3, 4})
	got := make([]byte, 4)
	w.CopyOut(0, 4, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("CopyOut = %v", got)
	}

	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"overflow", func() { w.CopyIn(1, 4, make([]byte, 8)) }},
		{"negative-off", func() { w.CopyIn(0, -1, []byte{1}) }},
		{"bad-rank", func() { w.CopyIn(7, 0, []byte{1}) }},
		{"get-overflow", func() { w.CopyOut(1, 0, make([]byte, 9)) }},
		{"bad-slot", func() { w.Notify(0, NotifySlots) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestAccumulateSerialized(t *testing.T) {
	const writers, each = 8, 1000
	w := NewWindow(1)
	w.Attach(0, make([]byte, 8))
	one := codec.Int64Bytes([]int64{1})

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				w.AccumulateLocal(0, 0, one, collective.OpSum, collective.Int64, spin)
			}
		}()
	}
	wg.Wait()
	got := make([]int64, 1)
	codec.GetInt64s(got, w.Buffer(0))
	if got[0] != writers*each {
		t.Fatalf("accumulated %d, want %d", got[0], writers*each)
	}
}

func TestFenceFlags(t *testing.T) {
	w := NewWindow(3)
	if w.FenceReached(1) {
		t.Fatal("round 1 reached before any arrivals")
	}
	w.FenceArrive(0, 1)
	w.FenceArrive(2, 1)
	if w.FenceReached(1) {
		t.Fatal("round 1 reached with rank 1 missing")
	}
	if lag := w.FenceLaggards(1); len(lag) != 1 || lag[0] != 1 {
		t.Fatalf("laggards = %v", lag)
	}
	w.FenceArrive(1, 2) // a rank ahead still satisfies earlier rounds
	if !w.FenceReached(1) {
		t.Fatal("round 1 not reached after all arrivals")
	}
	if w.FenceReached(2) {
		t.Fatal("round 2 reached early")
	}
}

func TestPSCWFlags(t *testing.T) {
	w := NewWindow(2)
	if w.Posted(1, 1) {
		t.Fatal("posted before Post")
	}
	w.Post(1, 1)
	if !w.Posted(1, 1) {
		t.Fatal("not posted after Post")
	}
	if w.Completed(0, 1, 1) {
		t.Fatal("completed before Complete")
	}
	w.Complete(0, 1, 1)
	if !w.Completed(0, 1, 1) {
		t.Fatal("not completed after Complete")
	}
}

func TestNotifyCounters(t *testing.T) {
	w := NewWindow(2)
	w.Notify(1, 3)
	w.Notify(1, 3)
	w.Notify(1, 0)
	if n := w.NotifyCount(1, 3); n != 2 {
		t.Fatalf("slot 3 count = %d, want 2", n)
	}
	if n := w.NotifyCount(1, 0); n != 1 {
		t.Fatalf("slot 0 count = %d, want 1", n)
	}
	if n := w.NotifyCount(0, 3); n != 0 {
		t.Fatalf("rank 0 count = %d, want 0", n)
	}
}

func TestRegistryConverges(t *testing.T) {
	var g Registry
	k := Key{Comm: 7, Seq: 1}
	const goroutines = 8
	wins := make([]*Window, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i] = g.GetOrCreate(k, 4)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if wins[i] != wins[0] {
			t.Fatal("concurrent GetOrCreate returned distinct windows")
		}
	}
	if g.Lookup(Key{Comm: 7, Seq: 2}) != nil {
		t.Fatal("Lookup invented a window")
	}
	g.Free(k)
	if g.Lookup(k) != nil {
		t.Fatal("window survived Free")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Kind: FramePut, WinSeq: 3, Origin: 1, Target: 2, Off: 64, Payload: []byte("hello")},
		{Kind: FrameAcc, WinSeq: 1, Origin: 0, Target: 5, Off: 8,
			Aux: PackAcc(collective.OpMax, collective.Float32), Payload: []byte{9, 8, 7, 6}},
		{Kind: FrameGetReq, WinSeq: 2, Origin: 4, Target: 0, Off: 128, Aux: 42, N: 256},
		{Kind: FrameGetRep, Origin: 0, Target: 4, Aux: 42, Payload: bytes.Repeat([]byte{0xAB}, 256)},
		{Kind: FrameNotify, WinSeq: 9, Origin: 2, Target: 3, Aux: 5},
	} {
		got, err := DecodeFrame(f.Encode())
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if got.Kind != f.Kind || got.WinSeq != f.WinSeq || got.Origin != f.Origin ||
			got.Target != f.Target || got.Off != f.Off || got.Aux != f.Aux || got.N != f.N {
			t.Fatalf("%v: header mismatch: %+v vs %+v", f.Kind, got, f)
		}
		if !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("%v: payload mismatch", f.Kind)
		}
	}
	if _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame decoded")
	}
	if _, err := DecodeFrame(make([]byte, headerLen)); err == nil {
		t.Fatal("zero frame kind decoded")
	}
	op, dt := UnpackAcc(PackAcc(collective.OpProd, collective.Int32))
	if op != collective.OpProd || dt != collective.Int32 {
		t.Fatalf("PackAcc round trip = (%v, %v)", op, dt)
	}
}
