//go:build purecheck

// Model tests for the PGAS (shmem) protocols: the symmetric-heap publish
// table, the cell atomics remote operations resolve to, the mailbox ring's
// sender/consumer step machine, and the heap/window registries' racing
// first-use creation.  Each protocol is driven directly through its
// schedpoint seams, with no runtime underneath — exactly the configuration
// the package docs promise is model-checkable.
package check

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/rma"
	"repro/internal/shmem"
)

func hookShmem(t *testing.T) {
	shmem.SetSchedHook(Hook)
	t.Cleanup(func() { shmem.SetSchedHook(nil) })
}

// ---- Symmetric-heap publish convergence ----

// heapPublishRaceThreads: two ranks race to publish the same Malloc (their
// deterministic allocator mirrors computed the same extent, as the
// symmetric contract requires), then race to free it.  Every interleaving
// must converge on one canonical offset — the CAS admits exactly one value
// per slot — and the free bit must be set exactly once.
func heapPublishRaceThreads() Threads {
	h := shmem.NewHeap(1024, 8)
	var offs [2]int64
	rank := func(i int) func() {
		return func() {
			offs[i] = h.Publish(0, 64, 32)
			h.PublishFree(0)
		}
	}
	return Threads{
		Names: []string{"rank0", "rank1"},
		Fns:   []func(){rank(0), rank(1)},
		Final: func() error {
			if offs[0] != 64 || offs[1] != 64 {
				return fmt.Errorf("publish race split the allocation: rank0 got %d, rank1 got %d, want 64", offs[0], offs[1])
			}
			off, size, live, ok := h.Extent(0)
			if !ok || off != 64 || size != 32 {
				return fmt.Errorf("published extent is (%d,%d,ok=%v), want (64,32)", off, size, ok)
			}
			if live {
				return fmt.Errorf("racing frees lost: allocation 0 still live")
			}
			return nil
		},
	}
}

// TestCheckShmemHeapPublishRace: under PCT schedules, racing Malloc
// publishes always converge to one offset and racing frees always land.
func TestCheckShmemHeapPublishRace(t *testing.T) {
	hookShmem(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, heapPublishRaceThreads)
	if rep.Failed {
		t.Fatalf("heap publish race: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// TestCheckShmemHeapPublishExhaustive explores EVERY schedule of the
// two-rank publish+free race (no waits, so all conditions are trivially
// pure).
func TestCheckShmemHeapPublishExhaustive(t *testing.T) {
	hookShmem(t)
	rep := Exhaust(0, 0, heapPublishRaceThreads)
	if rep.Failed {
		t.Fatalf("heap publish race (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}

// ---- Atomic cell updates never lose increments ----

// atomicAddThreads: adders fold increments into one shared cell while a
// CAS-loop thread folds its own — the composition the package doc claims
// (every cell operation goes through the same hardware atomic, so updates
// from any path are never lost).  perThread increments of (tid+1) each.
func atomicAddThreads(adders, perThread int) Threads {
	buf := shmem.AlignedBytes(shmem.CellBytes)
	fns := make([]func(), adders+1)
	for tid := 0; tid < adders; tid++ {
		tid := tid
		fns[tid] = func() {
			for i := 0; i < perThread; i++ {
				shmem.AtomicAdd(buf, 0, int64(tid+1))
			}
		}
	}
	// The last thread increments through the CAS contract instead (the
	// path a remote AtomicCAS lands on): retry until the swap succeeds.
	casDelta := int64(adders + 1)
	fns[adders] = func() {
		for i := 0; i < perThread; i++ {
			for {
				old := shmem.AtomicLoad(buf, 0)
				if shmem.AtomicCAS(buf, 0, old, old+casDelta) == old {
					break
				}
			}
		}
	}
	return Threads{Fns: fns, Final: func() error {
		var want int64
		for tid := 0; tid <= adders; tid++ {
			want += int64(perThread) * int64(tid+1)
		}
		if got := shmem.AtomicLoad(buf, 0); got != want {
			return fmt.Errorf("lost update: cell holds %d want %d", got, want)
		}
		return nil
	}}
}

// TestCheckShmemAtomicAddNoLostUpdates: three mixed add/CAS threads under
// PCT schedules; the cell must end at the exact sum.
func TestCheckShmemAtomicAddNoLostUpdates(t *testing.T) {
	hookShmem(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		return atomicAddThreads(2, 3)
	})
	if rep.Failed {
		t.Fatalf("atomic add: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// TestCheckShmemAtomicAddExhaustive explores every schedule of one adder
// racing one CAS-loop thread (small enough to enumerate; the CAS retry
// loop is lock-free, so every schedule terminates).
func TestCheckShmemAtomicAddExhaustive(t *testing.T) {
	hookShmem(t)
	rep := Exhaust(0, 0, func() Threads { return atomicAddThreads(1, 2) })
	if rep.Failed {
		t.Fatalf("atomic add (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}

// ---- Mailbox ring: per-sender FIFO, exactly-once, backpressure ----

// mailboxMsg encodes (sender, seq) into one 8-byte ring payload.
func mailboxMsg(sender, seq int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(sender)<<32|uint64(seq))
	return b
}

// mailboxThreads: senders push perSender tagged messages each through the
// Vyukov ring steps (claim/fill/publish) while the owner consumes them all
// (poll/consume/recycle).  cap below the total forces the full-ring path:
// a blocked sender waits for the consumer's recycle store.  The invariant
// is the mailbox contract: every message arrives exactly once, and each
// sender's messages arrive in the order it sent them (per-sender FIFO) —
// a stamp bug (wrong recycle value, lost publish) shows up as a dropped,
// duplicated, or reordered message.
func mailboxThreads(senders, perSender, cap int) Threads {
	ring := shmem.Ring{Base: 0, Cap: cap, Slot: 8}
	region := shmem.AlignedBytes(int(ring.Bytes()))
	shmem.InitRing(region, ring)
	total := senders * perSender
	got := make([]uint64, 0, total)
	fns := make([]func(), senders+1)
	for s := 0; s < senders; s++ {
		s := s
		fns[s] = func() {
			for i := 0; i < perSender; i++ {
				msg := mailboxMsg(s, i)
				for !shmem.Send(region, ring, msg) {
					// Ring full: park until the slot the next ticket maps to
					// has been recycled (a pure load, so exhaustive-safe).
					WaitLabeled("send-full", func() bool {
						tl := shmem.AtomicLoad(region, int(ring.TailOff()))
						return shmem.AtomicLoad(region, int(ring.StampOff(ring.SlotOf(tl)))) == tl
					})
				}
			}
		}
	}
	fns[senders] = func() {
		dst := make([]byte, ring.Slot)
		for h := int64(0); h < int64(total); h++ {
			h := h
			WaitLabeled("recv-wait", func() bool { return shmem.PollStamp(region, ring, h) })
			n := shmem.Consume(region, ring, h, dst)
			if n != 8 {
				got = append(got, ^uint64(0)) // impossible tag; fails Final
				continue
			}
			got = append(got, binary.LittleEndian.Uint64(dst))
		}
	}
	names := make([]string, senders+1)
	for s := 0; s < senders; s++ {
		names[s] = fmt.Sprintf("sender%d", s)
	}
	names[senders] = "owner"
	return Threads{
		Names: names,
		Fns:   fns,
		Final: func() error {
			if len(got) != total {
				return fmt.Errorf("consumed %d messages, want %d", len(got), total)
			}
			next := make([]int, senders)
			for i, tag := range got {
				s, seq := int(tag>>32), int(tag&0xffffffff)
				if s < 0 || s >= senders {
					return fmt.Errorf("message %d carries corrupt tag %#x", i, tag)
				}
				if seq != next[s] {
					return fmt.Errorf("sender %d FIFO broken: received seq %d, want %d (order %v)", s, seq, next[s], got)
				}
				next[s]++
			}
			for s, n := range next {
				if n != perSender {
					return fmt.Errorf("sender %d: %d of %d messages arrived", s, n, perSender)
				}
			}
			return nil
		},
	}
}

// TestCheckShmemMailboxFIFO: two senders and the owner over a ring smaller
// than the message count, under PCT schedules — per-sender FIFO and
// exactly-once delivery hold through the full-ring/recycle path.
func TestCheckShmemMailboxFIFO(t *testing.T) {
	hookShmem(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		return mailboxThreads(2, 3, 2)
	})
	if rep.Failed {
		t.Fatalf("mailbox FIFO: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// mailboxRecycleThreads isolates the ring's hardest handoff for exhaustive
// enumeration: the workload starts from a FULL capacity-2 ring (pre-filled
// during setup, outside the scheduler, so the interesting race is the
// whole schedule space), with a sender blocked on message 2 and the owner
// consuming message 0.  Every interleaving must route the sender through
// full-detection, the consumer's recycle store, and a generation-wrapped
// claim of slot 0 — the exact stamp arithmetic that makes cap=1 unsound
// (see InitRing).  Final drains the ring and checks FIFO + exactly-once.
func mailboxRecycleThreads() Threads {
	ring := shmem.Ring{Base: 0, Cap: 2, Slot: 8}
	region := shmem.AlignedBytes(int(ring.Bytes()))
	shmem.InitRing(region, ring)
	for i := 0; i < 2; i++ { // fill to capacity before the race starts
		if !shmem.Send(region, ring, mailboxMsg(0, i)) {
			panic("pre-fill send failed on a fresh ring")
		}
	}
	var got []uint64
	return Threads{
		Names: []string{"sender", "owner"},
		Fns: []func(){
			func() {
				msg := mailboxMsg(0, 2)
				for !shmem.Send(region, ring, msg) {
					WaitLabeled("send-full", func() bool {
						tl := shmem.AtomicLoad(region, int(ring.TailOff()))
						return shmem.AtomicLoad(region, int(ring.StampOff(ring.SlotOf(tl)))) == tl
					})
				}
			},
			func() {
				dst := make([]byte, ring.Slot)
				WaitLabeled("recv-wait", func() bool { return shmem.PollStamp(region, ring, 0) })
				if n := shmem.Consume(region, ring, 0, dst); n == 8 {
					got = append(got, binary.LittleEndian.Uint64(dst))
				}
			},
		},
		Final: func() error {
			// Drain the two remaining messages on the scheduler goroutine
			// (the threads are done, so the ring is quiescent).
			dst := make([]byte, ring.Slot)
			for h := int64(1); h <= 2; h++ {
				n, ok := shmem.Poll(region, ring, h, dst)
				if !ok || n != 8 {
					return fmt.Errorf("message at cursor %d missing after the recycle handoff", h)
				}
				got = append(got, binary.LittleEndian.Uint64(dst))
			}
			for i, tag := range got {
				if want := uint64(i); tag != want {
					return fmt.Errorf("FIFO broken across the recycle: slot %d holds seq %d, want %d (order %v)", i, tag&0xffffffff, i, got)
				}
			}
			return nil
		},
	}
}

// TestCheckShmemMailboxExhaustive explores every schedule of the full-ring
// recycle handoff (sender blocked on a full ring, consumer freeing a slot,
// generation-wrapped reclaim).
func TestCheckShmemMailboxExhaustive(t *testing.T) {
	hookShmem(t)
	rep := Exhaust(0, 0, mailboxRecycleThreads)
	if rep.Failed {
		t.Fatalf("mailbox (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}

// ---- Registry first-use races ----

// shmemRegistryRaceThreads: two member ranks race ShmemCreate's
// GetOrCreate for a fresh key.  Both must come back holding the same *Heap
// — a split heap would give each rank a private allocation table and the
// symmetric publish validation would be vacuous.
func shmemRegistryRaceThreads() Threads {
	var reg shmem.Registry
	k := shmem.Key{Comm: 1, Seq: 0}
	var hs [2]*shmem.Heap
	get := func(i int) func() {
		return func() { hs[i] = reg.GetOrCreate(k, 4096, 16) }
	}
	return Threads{
		Names: []string{"rank0", "rank1"},
		Fns:   []func(){get(0), get(1)},
		Final: func() error {
			if hs[0] == nil || hs[0] != hs[1] {
				return fmt.Errorf("registry race split the heap: %p vs %p", hs[0], hs[1])
			}
			if reg.Lookup(k) != hs[0] {
				return fmt.Errorf("registry lookup does not resolve the raced heap")
			}
			return nil
		},
	}
}

// TestCheckShmemRegistryRace: PCT over the heap registry's first-use race.
func TestCheckShmemRegistryRace(t *testing.T) {
	hookShmem(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, shmemRegistryRaceThreads)
	if rep.Failed {
		t.Fatalf("shmem registry race: %s", rep.Error())
	}
}

// TestCheckShmemRegistryExhaustive: every schedule of the same race.
func TestCheckShmemRegistryExhaustive(t *testing.T) {
	hookShmem(t)
	rep := Exhaust(0, 0, shmemRegistryRaceThreads)
	if rep.Failed {
		t.Fatalf("shmem registry race (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
}

// rmaRegistryRaceThreads: the window-registry analogue, driving the seams
// added to rma.Registry.GetOrCreate — two ranks entering WinCreate at once
// race from the fast-path Load to the LoadOrStore and must converge on one
// *Window (the loser's freshly built window is garbage, never visible).
func rmaRegistryRaceThreads() Threads {
	var reg rma.Registry
	k := rma.Key{Comm: 1, Seq: 0}
	var ws [2]*rma.Window
	get := func(i int) func() {
		return func() { ws[i] = reg.GetOrCreate(k, 2) }
	}
	return Threads{
		Names: []string{"rank0", "rank1"},
		Fns:   []func(){get(0), get(1)},
		Final: func() error {
			if ws[0] == nil || ws[0] != ws[1] {
				return fmt.Errorf("registry race split the window: %p vs %p", ws[0], ws[1])
			}
			if reg.Lookup(k) != ws[0] {
				return fmt.Errorf("registry lookup does not resolve the raced window")
			}
			return nil
		},
	}
}

// TestCheckRMARegistryRace: PCT over the window registry's first-use race.
func TestCheckRMARegistryRace(t *testing.T) {
	hookRMA(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, rmaRegistryRaceThreads)
	if rep.Failed {
		t.Fatalf("rma registry race: %s", rep.Error())
	}
}

// TestCheckRMARegistryExhaustive: every schedule of the same race.
func TestCheckRMARegistryExhaustive(t *testing.T) {
	hookRMA(t)
	rep := Exhaust(0, 0, rmaRegistryRaceThreads)
	if rep.Failed {
		t.Fatalf("rma registry race (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
}
