//go:build purecheck

// Model tests for the PureBufferQueue and the generic SPSC ring, run under
// the deterministic schedule explorer (`make check`).  Build-tagged: the
// schedpoint seams in internal/queue only dispatch to the checker under
// `purecheck`.
package check

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/queue"
)

// hookQueue routes internal/queue's schedpoints to the checker for the
// duration of the test.
func hookQueue(t *testing.T) {
	queue.SetSchedHook(Hook)
	t.Cleanup(func() { queue.SetSchedHook(nil) })
}

// pbqFIFOThreads builds one schedule's workload: a producer streaming k
// distinct messages through a small PBQ and a consumer draining them, with
// the consumed sequence checked against the sequential FIFO spec (refinement:
// every schedule's observable history must equal the spec queue's).
func pbqFIFOThreads(slots, k int) Threads {
	q := queue.NewPBQ(slots, 32)
	var got [][]byte
	msg := func(i int) []byte {
		// Distinct content and length per message so reordering, loss,
		// duplication, and torn slot reads are all distinguishable.
		return append([]byte(fmt.Sprintf("m%03d", i)), bytes.Repeat([]byte{byte(i)}, i%7)...)
	}
	return Threads{
		Names: []string{"producer", "consumer"},
		Fns: []func(){
			func() {
				for i := 0; i < k; i++ {
					for !q.TryEnqueue(msg(i)) {
						WaitLabeled("pbq:wait-space", func() bool { return q.Len() < q.Cap() })
					}
				}
			},
			func() {
				buf := make([]byte, 32)
				for len(got) < k {
					n, ok := q.TryDequeue(buf)
					if !ok {
						WaitLabeled("pbq:wait-msg", func() bool { _, ok := q.PeekLen(); return ok })
						continue
					}
					got = append(got, append([]byte(nil), buf[:n]...))
				}
			},
		},
		Final: func() error {
			if len(got) != k {
				return fmt.Errorf("consumed %d of %d messages", len(got), k)
			}
			for i, g := range got {
				if want := msg(i); !bytes.Equal(g, want) {
					return fmt.Errorf("FIFO refinement violated at message %d: got %q want %q", i, g, want)
				}
			}
			return nil
		},
	}
}

// TestCheckPBQFIFORefinement: under every explored schedule, the PBQ's
// observable dequeue history equals the sequential FIFO spec — no loss, no
// duplication, no reordering, no torn payload.
func TestCheckPBQFIFORefinement(t *testing.T) {
	hookQueue(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		return pbqFIFOThreads(2, 6) // 2 slots forces full-queue backpressure
	})
	if rep.Failed {
		t.Fatalf("PBQ FIFO refinement: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// TestCheckPBQFIFOExhaustive explores EVERY schedule of a small
// configuration (1 slot, 2 messages — the single slot forces the
// full-queue backpressure path into every schedule; ~18k schedules).
func TestCheckPBQFIFOExhaustive(t *testing.T) {
	hookQueue(t)
	rep := Exhaust(0, 0, func() Threads { return pbqFIFOThreads(1, 2) })
	if rep.Failed {
		t.Fatalf("PBQ FIFO refinement (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}

// pbqObserverThreads adds a third, read-only observer thread polling the
// relaxed observer methods (Len, PeekLen, Stalls) while a stream is in
// flight; every snapshot must stay within the structure's invariants.
func pbqObserverThreads(slots, k, polls int) Threads {
	q := queue.NewPBQ(slots, 16)
	capn := q.Cap()
	var obsErr error
	done := 0
	return Threads{
		Names: []string{"producer", "consumer", "observer"},
		Fns: []func(){
			func() {
				m := make([]byte, 5)
				for i := 0; i < k; i++ {
					m[0] = byte(i)
					for !q.TryEnqueue(m) {
						WaitLabeled("pbq:wait-space", func() bool { return q.Len() < capn })
					}
				}
			},
			func() {
				buf := make([]byte, 16)
				for done < k {
					if _, ok := q.TryDequeue(buf); ok {
						done++
						continue
					}
					WaitLabeled("pbq:wait-msg", func() bool { _, ok := q.PeekLen(); return ok })
				}
			},
			func() {
				lastStalls := int64(0)
				for i := 0; i < polls; i++ {
					l := q.Len()
					if l < 0 || l > capn {
						obsErr = fmt.Errorf("torn Len snapshot: %d outside [0,%d]", l, capn)
						return
					}
					if n, ok := q.PeekLen(); ok && (n <= 0 || n > q.MaxPayload()) {
						obsErr = fmt.Errorf("torn PeekLen snapshot: %d", n)
						return
					}
					s := q.Stalls()
					if s < lastStalls {
						obsErr = fmt.Errorf("Stalls went backwards: %d after %d", s, lastStalls)
						return
					}
					lastStalls = s
					Yield("observer:poll")
				}
			},
		},
		Final: func() error { return obsErr },
	}
}

// TestCheckPBQObserverSanity: Len/PeekLen/Stalls snapshots taken by a third
// goroutine must stay in range under every explored interleaving.  Before
// PBQ.Len loaded head-first and clamped, this test failed (the tail-first
// unclamped difference underflows when the head passes the stale tail
// snapshot); see TestCheckPBQObserverLenRegression for the exhibiting seeds.
func TestCheckPBQObserverSanity(t *testing.T) {
	hookQueue(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		return pbqObserverThreads(2, 4, 6)
	})
	if rep.Failed {
		t.Fatalf("PBQ observer sanity: %s", rep.Error())
	}
}

// TestCheckPBQObserverLenRegression pins the schedules that exhibited the
// torn PBQ.Len observer read (negative length from the unsigned underflow
// of a stale tail snapshot).  The seeds were recorded from the failing run
// of TestCheckPBQObserverSanity against the pre-fix Len; they must stay
// green forever.
func TestCheckPBQObserverLenRegression(t *testing.T) {
	hookQueue(t)
	for _, seed := range pbqLenRegressionSeeds {
		res := RunSeed(seed, DefaultPCTDepth, pbqObserverThreads(2, 4, 6))
		if res.Failed() {
			t.Fatalf("seed %d regressed: %v\n%s", seed, res.Err, res.TraceString(40))
		}
	}
}

// pbqLenRegressionSeeds are the first PCT seeds that exhibited the torn
// PBQ.Len read before the head-first clamped fix (each produced a negative
// length, e.g. seed 1 observed Len = -4 on a 2-slot queue: the observer
// loaded the tail, then producer and consumer both advanced past it, and
// the unsigned head-tail difference underflowed).
var pbqLenRegressionSeeds = []int64{1, 12, 20, 37, 57, 80}

// ringThreads streams k typed values through a Ring[int] with an observer.
func ringThreads(slots, k, polls int) Threads {
	r := queue.NewRing[int](slots)
	capn := r.Cap()
	var got []int
	var obsErr error
	return Threads{
		Names: []string{"producer", "consumer", "observer"},
		Fns: []func(){
			func() {
				for i := 1; i <= k; i++ {
					for !r.TryPush(i) {
						WaitLabeled("ring:wait-space", func() bool { return r.Len() < capn })
					}
				}
			},
			func() {
				for len(got) < k {
					v, ok := r.TryPop()
					if !ok {
						WaitLabeled("ring:wait-val", func() bool { _, ok := r.Peek(); return ok })
						continue
					}
					got = append(got, v)
				}
			},
			func() {
				for i := 0; i < polls; i++ {
					if l := r.Len(); l < 0 || l > capn {
						obsErr = fmt.Errorf("torn Ring.Len snapshot: %d outside [0,%d]", l, capn)
						return
					}
					Yield("observer:poll")
				}
			},
		},
		Final: func() error {
			if obsErr != nil {
				return obsErr
			}
			for i, v := range got {
				if v != i+1 {
					return fmt.Errorf("ring FIFO violated at %d: got %d", i, v)
				}
			}
			return nil
		},
	}
}

// TestCheckRingFIFO covers the rendezvous-path SPSC ring the same way.
func TestCheckRingFIFO(t *testing.T) {
	hookQueue(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		return ringThreads(2, 5, 5)
	})
	if rep.Failed {
		t.Fatalf("Ring FIFO: %s", rep.Error())
	}
}
