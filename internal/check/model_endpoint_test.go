//go:build purecheck

// Model tests for persistent-endpoint creation (internal/core's channel
// manager seam).  When both halves of a (sender, receiver, tag, comm) pair
// touch a fresh key, each rank races through lookupChannel and the CAS-once
// PBQ bind; every interleaving must converge on a single shared channel and
// queue, or one side's endpoint would publish into a queue the other never
// reads — a permanently lost message.
package check

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/queue"
)

// hookCore routes internal/core's schedpoints to the checker for the
// duration of the test.
func hookCore(t *testing.T) {
	core.SetSchedHook(Hook)
	t.Cleanup(func() { core.SetSchedHook(nil) })
}

// endpointRaceThreads builds one schedule's workload: a sender and a
// receiver concurrently creating their endpoints for the same fresh channel
// key (the concurrent-first-use race), then the invariant sends a message
// through the sender's handle and receives it through the receiver's.
func endpointRaceThreads() Threads {
	var tbl core.ModelChannelTable
	var chans [2]any
	var qs [2]*queue.PBQ
	bind := func(i int) func() {
		return func() {
			ch, q := tbl.Endpoint(0, 1, 7, 2, 32)
			chans[i], qs[i] = ch, q
		}
	}
	return Threads{
		Names: []string{"send-endpoint", "recv-endpoint"},
		Fns:   []func(){bind(0), bind(1)},
		Final: func() error {
			if chans[0] != chans[1] {
				return fmt.Errorf("endpoint creation split the channel: %p vs %p", chans[0], chans[1])
			}
			if qs[0] != qs[1] {
				return fmt.Errorf("endpoint creation split the PBQ: %p vs %p", qs[0], qs[1])
			}
			msg := []byte("via-endpoints")
			if !qs[0].TryEnqueue(msg) {
				return fmt.Errorf("enqueue through sender endpoint failed on an empty queue")
			}
			buf := make([]byte, 32)
			n, ok := qs[1].TryDequeue(buf)
			if !ok || !bytes.Equal(buf[:n], msg) {
				return fmt.Errorf("message lost across endpoint handles: got %q ok=%v", buf[:n], ok)
			}
			return nil
		},
	}
}

// reuseAndIsolateThreads models second-use lookups racing a first-use
// creation on a different tag: the reused key must return the already
// created channel, and the fresh tag must never alias it.
func reuseAndIsolateThreads() Threads {
	var tbl core.ModelChannelTable
	first, firstQ := tbl.Endpoint(0, 1, 3, 2, 32) // created before the race
	var reused, fresh any
	var reusedQ *queue.PBQ
	return Threads{
		Names: []string{"reuse-tag3", "create-tag4"},
		Fns: []func(){
			func() { reused, reusedQ = tbl.Endpoint(0, 1, 3, 2, 32) },
			func() { fresh, _ = tbl.Endpoint(0, 1, 4, 2, 32) },
		},
		Final: func() error {
			if reused != first || reusedQ != firstQ {
				return fmt.Errorf("same-key lookup did not reuse the persistent channel")
			}
			if fresh == first {
				return fmt.Errorf("distinct tag aliased an existing channel")
			}
			return nil
		},
	}
}

// TestCheckEndpointCreationRace: under PCT schedules, concurrent first-use
// endpoint creation by the two halves of a pair always yields one channel
// and one queue, and a message flows across the two handles.
func TestCheckEndpointCreationRace(t *testing.T) {
	hookCore(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, endpointRaceThreads)
	if rep.Failed {
		t.Fatalf("endpoint creation race: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// TestCheckEndpointCreationExhaustive explores EVERY schedule of the
// two-thread creation race (small: 3 schedpoints per thread).
func TestCheckEndpointCreationExhaustive(t *testing.T) {
	hookCore(t)
	rep := Exhaust(0, 0, endpointRaceThreads)
	if rep.Failed {
		t.Fatalf("endpoint creation race (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}

// TestCheckEndpointReuseIsolation: a racing reuse and a racing fresh-tag
// creation neither split nor alias channels, under every schedule.
func TestCheckEndpointReuseIsolation(t *testing.T) {
	hookCore(t)
	rep := Exhaust(0, 0, reuseAndIsolateThreads)
	if rep.Failed {
		t.Fatalf("endpoint reuse/isolation: %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}
