//go:build purecheck

// Model tests for the one-sided (RMA) epoch primitives under the
// deterministic schedule explorer: fence visibility, notify ordering,
// PSCW round matching, and Accumulate atomicity.
package check

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/collective"
	"repro/internal/rma"
)

func hookRMA(t *testing.T) {
	rma.SetSchedHook(Hook)
	t.Cleanup(func() { rma.SetSchedHook(nil) })
}

// rmaFenceThreads: each rank Puts a distinct per-epoch value into its
// right neighbor's window, fences, and then must observe its left
// neighbor's value in its own window — the fence's happens-before edge is
// the only thing making that read safe.
func rmaFenceThreads(n, epochs int) Threads {
	w := rma.NewWindow(n)
	for tid := 0; tid < n; tid++ {
		w.Attach(tid, make([]byte, 8))
	}
	errs := make([]error, n)
	fns := make([]func(), n)
	for tid := 0; tid < n; tid++ {
		tid := tid
		fns[tid] = func() {
			for e := 1; e <= epochs; e++ {
				want := int64(1000*e + (tid+n-1)%n) // left neighbor's value
				put := codec.Int64Bytes([]int64{int64(1000*e + tid)})
				// Fence rounds must advance monotonically, so epoch e uses
				// rounds 2e-1 (publish the Puts) and 2e (close the epoch so
				// the next epoch's Puts cannot land before everyone reads).
				w.CopyIn((tid+1)%n, 0, put)
				w.FenceArrive(tid, uint64(2*e-1))
				Wait(func() bool { return w.FenceReached(uint64(2*e - 1)) })
				got := make([]int64, 1)
				codec.GetInt64s(got, w.Buffer(tid))
				if got[0] != want {
					errs[tid] = fmt.Errorf("rank %d epoch %d: window holds %d want %d", tid, e, got[0], want)
					return
				}
				w.FenceArrive(tid, uint64(2*e))
				Wait(func() bool { return w.FenceReached(uint64(2 * e)) })
			}
		}
	}
	return Threads{Fns: fns, Final: func() error {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}}
}

// TestCheckRMAFenceVisibility: after a fence, every rank must see the
// bytes its peer Put during the closing epoch, in every explored schedule.
func TestCheckRMAFenceVisibility(t *testing.T) {
	hookRMA(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		return rmaFenceThreads(3, 2)
	})
	if rep.Failed {
		t.Fatalf("RMA fence: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// TestCheckRMAFenceExhaustive explores every schedule of the 2-rank,
// 1-epoch fence exchange (the fence conds are pure loads, so bounded
// exhaustive exploration is sound here).
func TestCheckRMAFenceExhaustive(t *testing.T) {
	hookRMA(t)
	rep := Exhaust(0, 0, func() Threads { return rmaFenceThreads(2, 1) })
	if rep.Failed {
		t.Fatalf("RMA fence (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}

// TestCheckRMANotifyOrdering: a producer streams values through the
// consumer's window with Put+Notify; the consumer must never read a value
// before the matching notification and must see exactly the value the
// notification covers.  The consumer acks on a second slot so the producer
// cannot overwrite an unread value.
func TestCheckRMANotifyOrdering(t *testing.T) {
	hookRMA(t)
	const k = 3
	mk := func() Threads {
		w := rma.NewWindow(2)
		w.Attach(0, make([]byte, 8))
		w.Attach(1, make([]byte, 8))
		var err error
		return Threads{
			Names: []string{"producer", "consumer"},
			Fns: []func(){
				func() {
					for i := 1; i <= k; i++ {
						w.CopyIn(1, 0, codec.Int64Bytes([]int64{int64(10 * i)}))
						w.Notify(1, 0)
						// Wait for the consumer's ack before reusing the slot.
						Wait(func() bool { return w.NotifyCount(0, 1) >= uint64(i) })
					}
				},
				func() {
					for i := 1; i <= k; i++ {
						Wait(func() bool { return w.NotifyCount(1, 0) >= uint64(i) })
						got := make([]int64, 1)
						codec.GetInt64s(got, w.Buffer(1))
						if got[0] != int64(10*i) {
							err = fmt.Errorf("notification %d delivered %d want %d", i, got[0], 10*i)
							return
						}
						w.Notify(0, 1) // ack
					}
				},
			},
			Final: func() error { return err },
		}
	}
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, mk)
	if rep.Failed {
		t.Fatalf("RMA notify: %s", rep.Error())
	}
}

// TestCheckRMAPSCWRoundMatching: two origins expose-epoch into one target
// over two rounds.  The target must only read after both origins complete,
// and each round's Posts/Completes must pair up (no origin may write into
// an unposted epoch, no round-r+1 write may land before the target drains
// round r).
func TestCheckRMAPSCWRoundMatching(t *testing.T) {
	hookRMA(t)
	const rounds = 2
	mk := func() Threads {
		w := rma.NewWindow(3)
		for tid := 0; tid < 3; tid++ {
			w.Attach(tid, make([]byte, 16))
		}
		var err error
		origin := func(tid int) func() {
			return func() {
				for r := 1; r <= rounds; r++ {
					Wait(func() bool { return w.Posted(0, uint64(r)) })
					// Disjoint 8-byte halves of the target window.
					w.CopyIn(0, (tid-1)*8, codec.Int64Bytes([]int64{int64(100*r + tid)}))
					w.Complete(tid, 0, uint64(r))
					// Origins must not start round r+1 writes until the
					// target re-posts; the Posted wait above provides that.
				}
			}
		}
		target := func() {
			for r := 1; r <= rounds; r++ {
				w.Post(0, uint64(r))
				Wait(func() bool { return w.Completed(1, 0, uint64(r)) && w.Completed(2, 0, uint64(r)) })
				got := make([]int64, 2)
				codec.GetInt64s(got, w.Buffer(0))
				if got[0] != int64(100*r+1) || got[1] != int64(100*r+2) {
					err = fmt.Errorf("round %d: target window %v want [%d %d]", r, got, 100*r+1, 100*r+2)
					return
				}
			}
		}
		return Threads{
			Names: []string{"target", "origin1", "origin2"},
			Fns:   []func(){target, origin(1), origin(2)},
			Final: func() error { return err },
		}
	}
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, mk)
	if rep.Failed {
		t.Fatalf("RMA PSCW: %s", rep.Error())
	}
}

// TestCheckRMAAccumulateAtomicity: three ranks concurrently fold
// increments into one shared window cell through AccumulateLocal; the
// per-target spinlock must make every read-modify-write atomic so no
// increment is ever lost.  PCT only: the TryLock wait cond has a side
// effect (acquiring the lock), which the exhaustive mode's replay-purity
// requirement disallows but PCT's probe-then-run discipline tolerates.
func TestCheckRMAAccumulateAtomicity(t *testing.T) {
	hookRMA(t)
	const perThread = 2
	mk := func() Threads {
		w := rma.NewWindow(3)
		for tid := 0; tid < 3; tid++ {
			w.Attach(tid, make([]byte, 8))
		}
		fns := make([]func(), 3)
		for tid := 0; tid < 3; tid++ {
			tid := tid
			fns[tid] = func() {
				delta := codec.Int64Bytes([]int64{int64(tid + 1)})
				for i := 0; i < perThread; i++ {
					w.AccumulateLocal(0, 0, delta, collective.OpSum, collective.Int64, Wait)
				}
			}
		}
		return Threads{Fns: fns, Final: func() error {
			got := make([]int64, 1)
			codec.GetInt64s(got, w.Buffer(0))
			want := int64(perThread * (1 + 2 + 3))
			if got[0] != want {
				return fmt.Errorf("lost accumulate: cell holds %d want %d", got[0], want)
			}
			return nil
		}}
	}
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, mk)
	if rep.Failed {
		t.Fatalf("RMA accumulate: %s", rep.Error())
	}
}
