package check

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// lostUpdate is the canonical planted bug: two threads do a read-modify-write
// split across a schedpoint, so some interleavings lose an increment.
func lostUpdate() (Threads, *int64) {
	var counter int64
	body := func() {
		v := atomic.LoadInt64(&counter)
		Yield("rmw:between-load-and-store")
		atomic.StoreInt64(&counter, v+1)
	}
	return Threads{
		Names: []string{"inc0", "inc1"},
		Fns:   []func(){body, body},
		Final: func() error {
			if c := atomic.LoadInt64(&counter); c != 2 {
				return fmt.Errorf("lost update: counter = %d, want 2", c)
			}
			return nil
		},
	}, &counter
}

func TestPCTFindsLostUpdate(t *testing.T) {
	rep := RunPCT(1, 200, DefaultPCTDepth, func() Threads {
		th, _ := lostUpdate()
		return th
	})
	if !rep.Failed {
		t.Fatalf("PCT did not find the planted lost update in %d seeds", rep.Seeds)
	}
	// The failing seed must replay deterministically.
	th, _ := lostUpdate()
	res := RunSeed(rep.FailingSeed, DefaultPCTDepth, th)
	if !res.Failed() {
		t.Fatalf("failing seed %d did not reproduce on replay", rep.FailingSeed)
	}
}

func TestExhaustFindsLostUpdate(t *testing.T) {
	rep := Exhaust(0, 0, func() Threads {
		th, _ := lostUpdate()
		return th
	})
	if !rep.Failed {
		t.Fatalf("exhaustive exploration missed the planted lost update (%d schedules)", rep.Schedules)
	}
	// And the choice vector must replay the same failure.
	th, _ := lostUpdate()
	res := ReplayChoices(rep.Choices, 0, th)
	if !res.Failed() {
		t.Fatalf("choice vector %v did not reproduce on replay", rep.Choices)
	}
}

func TestExhaustEnumeratesAllInterleavings(t *testing.T) {
	// Two threads, one yield each: each thread takes two grants
	// (run-to-yield, run-to-done), so the schedule is an interleaving of two
	// pairs: C(4,2) = 6 schedules.
	mk := func() Threads {
		body := func() { Yield("a") }
		return Threads{Fns: []func(){body, body}}
	}
	rep := Exhaust(0, 0, mk)
	if rep.Failed {
		t.Fatalf("unexpected failure: %v", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exploration did not complete")
	}
	if rep.Schedules != 6 {
		t.Fatalf("explored %d schedules, want 6", rep.Schedules)
	}
}

func TestSeedDeterminism(t *testing.T) {
	mk := func() Threads {
		var sink atomic.Int64
		body := func(id int64) func() {
			return func() {
				for i := 0; i < 5; i++ {
					sink.Add(id)
					Yield("step")
				}
			}
		}
		return Threads{Fns: []func(){body(1), body(2), body(3)}}
	}
	a := RunSeed(42, DefaultPCTDepth, mk())
	b := RunSeed(42, DefaultPCTDepth, mk())
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("same seed diverged at step %d: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	// Across a pool of seeds the schedules must actually vary (with 3
	// threads there are few priority permutations, so any single pair of
	// seeds may legitimately coincide).
	distinct := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		r := RunSeed(seed, DefaultPCTDepth, mk())
		key := ""
		for _, s := range r.Trace {
			key += fmt.Sprintf("%d,", s.Thread)
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("20 seeds produced %d distinct schedules (suspicious RNG plumbing)", len(distinct))
	}
}

func TestWaitBlocksUntilCondition(t *testing.T) {
	mk := func() Threads {
		var flag atomic.Bool
		var order []string
		return Threads{
			Names: []string{"waiter", "setter"},
			Fns: []func(){
				func() {
					WaitLabeled("wait-flag", flag.Load)
					order = append(order, "woke")
				},
				func() {
					Yield("before-set")
					flag.Store(true)
					order = append(order, "set")
				},
			},
			Final: func() error {
				if len(order) != 2 || order[0] != "set" || order[1] != "woke" {
					return fmt.Errorf("wrong order %v", order)
				}
				return nil
			},
		}
	}
	rep := RunPCT(1, 300, DefaultPCTDepth, mk)
	if rep.Failed {
		t.Fatalf("wait ordering violated: %s", rep.Error())
	}
	if rep2 := Exhaust(0, 0, mk); rep2.Failed {
		t.Fatalf("wait ordering violated exhaustively: %s", rep2.Error())
	}
}

func TestDeadlockDetected(t *testing.T) {
	mk := func() Threads {
		var a, b atomic.Bool
		return Threads{
			Names: []string{"x", "y"},
			Fns: []func(){
				func() { WaitLabeled("wait-a", a.Load); b.Store(true) },
				func() { WaitLabeled("wait-b", b.Load); a.Store(true) },
			},
		}
	}
	res := RunSeed(7, DefaultPCTDepth, mk())
	if !res.Failed() {
		t.Fatalf("circular wait not reported as deadlock")
	}
}

func TestLivelockBounded(t *testing.T) {
	var spin atomic.Bool
	th := Threads{Fns: []func(){
		func() {
			for !spin.Load() { // never satisfied, never parks: pure spin
				Yield("spin")
			}
		},
	}}
	res := RunSeedSteps(1, DefaultPCTDepth, 500, th)
	if !res.Failed() {
		t.Fatalf("unbounded spin not reported")
	}
}

func TestNoGoroutineLeakAcrossFailures(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 300; i++ {
		res := RunSeed(int64(i), DefaultPCTDepth, func() Threads {
			th, _ := lostUpdate()
			return th
		}())
		_ = res
	}
	// Teardown unwinds parked workers synchronously, but give the runtime a
	// beat to retire exited goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+5 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestHookOutsideRunIsNoop(t *testing.T) {
	Hook("stray") // must not panic or block
	done := false
	Wait(func() bool { done = true; return true })
	if !done {
		t.Fatal("Wait outside a run did not evaluate its condition")
	}
}
