package check

import (
	"fmt"
	"math/rand"
)

// PCT (probabilistic concurrency testing): every thread gets a distinct
// random priority; at each step the highest-priority runnable thread runs.
// d-1 priority-change points at random step indices demote the running
// thread below every base priority, which guarantees that any bug of "depth"
// d (one requiring d ordering constraints) is hit with probability at least
// 1/(n·k^(d-1)) per seed — so thousands of seeds cover shallow races with
// near certainty, and a failing seed replays the identical schedule.

// DefaultPCTDepth is the bug depth PCT targets by default.  Depth 3 covers
// every pairwise ordering bug plus most "window" bugs (a write landing
// inside a two-step read sequence, e.g. a torn Len observer snapshot).
const DefaultPCTDepth = 3

// pctChooser implements chooser with randomized priorities.
type pctChooser struct {
	prio     []int // higher runs first; demotions go negative
	changeAt map[int]int
	ruled    []ruledEntry // threads ruled out within the current step
}

// newPCTChooser builds the chooser for n threads from a seeded RNG.
// maxSteps bounds where change points may land.
func newPCTChooser(rng *rand.Rand, n, depth, maxSteps int) *pctChooser {
	c := &pctChooser{prio: rng.Perm(n), changeAt: map[int]int{}}
	if depth < 1 {
		depth = 1
	}
	// Change points land in the early window where the protocols do their
	// interesting work; spreading them over the full maxSteps would waste
	// most of them past the end of short schedules.
	window := 4 * n * 16
	if window > maxSteps {
		window = maxSteps
	}
	for k := 0; k < depth-1; k++ {
		c.changeAt[rng.Intn(window)] = k
	}
	return c
}

func (c *pctChooser) pick(st *schedState) int {
	best := -1
	for {
		// Highest-priority live thread not yet ruled out this step.
		bestPrio := 0
		best = -1
		for i := 0; i < st.N(); i++ {
			if st.Finished(i) || c.prio[i] == ruledOut {
				continue
			}
			if best == -1 || c.prio[i] > bestPrio {
				best, bestPrio = i, c.prio[i]
			}
		}
		if best == -1 {
			break
		}
		if !st.Blocked(best) || st.Probe(best) {
			break
		}
		// Parked on a false condition: rule it out for this step only.
		c.ruled = append(c.ruled, ruledEntry{best, c.prio[best]})
		c.prio[best] = ruledOut
	}
	// Restore the priorities of threads ruled out during this step.
	for _, r := range c.ruled {
		c.prio[r.i] = r.p
	}
	c.ruled = c.ruled[:0]
	if best == -1 {
		return -1
	}
	if k, ok := c.changeAt[st.step]; ok {
		// Demote the thread chosen at the change point below all others.
		c.prio[best] = -(k + 1)
	}
	return best
}

const ruledOut = -1 << 30

type ruledEntry struct {
	i, p int
}

// RunSeed runs exactly one PCT schedule for the given seed and returns its
// result.  This is the replay primitive: the seed fully determines the
// schedule, so a failing seed from a log or a committed regression test
// reproduces the identical interleaving.
func RunSeed(seed int64, depth int, th Threads) Result {
	return RunSeedSteps(seed, depth, DefaultMaxSteps, th)
}

// RunSeedSteps is RunSeed with an explicit per-schedule step bound.
func RunSeedSteps(seed int64, depth, maxSteps int, th Threads) Result {
	rng := rand.New(rand.NewSource(seed))
	return run(newPCTChooser(rng, len(th.Fns), depth, maxSteps), th, maxSteps)
}

// PCTReport summarizes a multi-seed PCT exploration.
type PCTReport struct {
	Seeds       int   // schedules explored
	FailingSeed int64 // first failing seed (valid when Failed)
	Failed      bool
	Result      Result // the failing schedule's result (when Failed)
	TotalSteps  int
}

// Error renders the failure with its replay instructions.
func (r PCTReport) Error() string {
	if !r.Failed {
		return ""
	}
	return fmt.Sprintf("seed %d failed after %d steps: %v\nreplay: PURE_CHECK_SEED=%d (or check.RunSeed(%d, ...))\nschedule tail:\n%s",
		r.FailingSeed, r.Result.Steps, r.Result.Err, r.FailingSeed, r.FailingSeed, r.Result.TraceString(40))
}

// RunPCT explores nseeds schedules (seeds seed0..seed0+nseeds-1), building a
// fresh workload per schedule, and stops at the first failure.  When the
// PURE_CHECK_SEED environment variable is set, exactly that seed runs
// instead — the documented replay path for a failure printed by any model
// test.
func RunPCT(seed0 int64, nseeds, depth int, mk func() Threads) PCTReport {
	if s, ok := ReplaySeedFromEnv(); ok {
		res := RunSeed(s, depth, mk())
		return PCTReport{Seeds: 1, FailingSeed: s, Failed: res.Failed(), Result: res, TotalSteps: res.Steps}
	}
	rep := PCTReport{}
	for i := 0; i < nseeds; i++ {
		seed := seed0 + int64(i)
		res := RunSeed(seed, depth, mk())
		rep.Seeds++
		rep.TotalSteps += res.Steps
		if res.Failed() {
			rep.Failed = true
			rep.FailingSeed = seed
			rep.Result = res
			return rep
		}
	}
	return rep
}
