package check

import "fmt"

// Bounded exhaustive exploration: depth-first enumeration of every
// scheduling choice sequence, in lexicographic order, for small
// configurations (2-3 threads, a few operations each).  Each schedule
// re-executes a fresh workload following a recorded choice prefix and then
// first-runnable choices, noting where alternatives existed; backtracking
// increments the deepest un-exhausted choice.  This is stateless model
// checking in the CHESS style (no partial-order reduction — the schedpoint
// density is low enough that small configs stay in the tens of thousands of
// schedules).
//
// Exhaustive mode probes every parked condition at each step to enumerate
// the runnable set, so conditions must be pure (no TryLock-style acquire
// side effects).  Every fence/sequence-flag poll in this repository is a
// pure atomic load; the RMA Accumulate spinlock is the one impure wait and
// is exercised under PCT instead.

// exhaustChooser follows `prefix` and then always picks the first runnable
// thread, recording the runnable-set size at every step.
type exhaustChooser struct {
	prefix  []int // choice index (into the runnable set) per step
	chosen  []int // choice index actually taken, per step
	options []int // runnable-set size per step
}

func (c *exhaustChooser) pick(st *schedState) int {
	var runnable []int
	for i := 0; i < st.N(); i++ {
		if st.Finished(i) {
			continue
		}
		if st.Blocked(i) && !st.Probe(i) {
			continue
		}
		runnable = append(runnable, i)
	}
	if len(runnable) == 0 {
		return -1
	}
	step := len(c.chosen)
	choice := 0
	if step < len(c.prefix) {
		choice = c.prefix[step]
		if choice >= len(runnable) {
			// The prefix no longer matches (can only happen on
			// nondeterministic workloads, which violate the Threads
			// contract); fall back to the last runnable.
			choice = len(runnable) - 1
		}
	}
	c.chosen = append(c.chosen, choice)
	c.options = append(c.options, len(runnable))
	return runnable[choice]
}

// ExhaustReport summarizes a bounded exhaustive exploration.
type ExhaustReport struct {
	Schedules int  // schedules executed
	Complete  bool // false when the schedule budget was exhausted first
	Failed    bool
	Result    Result // the failing schedule's result (when Failed)
	Choices   []int  // the failing schedule's choice sequence (replayable)
}

// Error renders the failure with its replay vector.
func (r ExhaustReport) Error() string {
	if !r.Failed {
		return ""
	}
	return fmt.Sprintf("schedule %d failed after %d steps: %v\nreplay choices: %v\nschedule tail:\n%s",
		r.Schedules, r.Result.Steps, r.Result.Err, r.Choices, r.Result.TraceString(40))
}

// Exhaust explores every schedule of mk-built workloads, up to maxSchedules
// (0 means a default of 200000) with maxSteps per schedule, stopping at the
// first failure.
func Exhaust(maxSchedules, maxSteps int, mk func() Threads) ExhaustReport {
	if maxSchedules <= 0 {
		maxSchedules = 200000
	}
	rep := ExhaustReport{}
	prefix := []int(nil)
	for {
		if rep.Schedules >= maxSchedules {
			return rep
		}
		c := &exhaustChooser{prefix: prefix}
		res := run(c, mk(), maxSteps)
		rep.Schedules++
		if res.Failed() {
			rep.Failed = true
			rep.Result = res
			rep.Choices = append([]int(nil), c.chosen...)
			return rep
		}
		// Backtrack: bump the deepest choice that still has alternatives.
		next := -1
		for i := len(c.chosen) - 1; i >= 0; i-- {
			if c.chosen[i]+1 < c.options[i] {
				next = i
				break
			}
		}
		if next < 0 {
			rep.Complete = true
			return rep
		}
		prefix = append(append([]int(nil), c.chosen[:next]...), c.chosen[next]+1)
	}
}

// ReplayChoices reruns one exact schedule from an Exhaust failure's choice
// vector (committed in regression tests).
func ReplayChoices(choices []int, maxSteps int, th Threads) Result {
	c := &exhaustChooser{prefix: choices}
	return run(c, th, maxSteps)
}
