//go:build purecheck

// Model tests for the work-stealing task scheduler: every chunk of an
// execution must run exactly once, no matter how steals interleave with
// the owner's own allocation loop or with the task closing.
package check

import (
	"fmt"
	"testing"

	"repro/internal/sched"
)

func hookSched(t *testing.T) {
	sched.SetSchedHook(Hook)
	t.Cleanup(func() { sched.SetSchedHook(nil) })
}

// schedStealThreads builds one schedule's workload: the owner in slot 0
// runs `runs` consecutive task executions of nchunks chunks each while
// nthieves thief threads make bounded TrySteal probes throughout.  Every
// chunk must execute exactly once per run, the owner/stolen stats must
// add up, and a thief holding a stale exec pointer from an earlier run
// must never re-execute anything (the fresh-exec-per-Run guarantee).
func schedStealThreads(cfg sched.Config, nthieves, runs int, nchunks int64, attempts int) Threads {
	s := sched.New(cfg)
	counts := make([][]int, runs) // counts[run][chunk] = times executed
	for r := range counts {
		counts[r] = make([]int, nchunks)
	}
	stats := make([]sched.RunStats, runs)
	thieves := make([]*sched.Thief, nthieves)
	fns := make([]func(), 1+nthieves)
	names := make([]string, 1+nthieves)
	names[0] = "owner"
	fns[0] = func() {
		for r := 0; r < runs; r++ {
			r := r
			stats[r] = s.Run(0, nchunks, func(start, end int64, extra any) {
				for c := start; c < end; c++ {
					counts[r][c]++
				}
			}, nil, Wait)
		}
	}
	for i := 0; i < nthieves; i++ {
		i := i
		names[1+i] = fmt.Sprintf("thief%d", i+1)
		fns[1+i] = func() {
			th := s.NewThief(1 + i)
			thieves[i] = th
			for a := 0; a < attempts; a++ {
				th.TrySteal() // at least one schedpoint per probe
			}
		}
	}
	return Threads{Names: names, Fns: fns, Final: func() error {
		var stolen int64
		for r := 0; r < runs; r++ {
			for c, n := range counts[r] {
				if n != 1 {
					return fmt.Errorf("run %d chunk %d executed %d times", r, c, n)
				}
			}
			if stats[r].OwnerChunks+stats[r].StolenChunks != nchunks {
				return fmt.Errorf("run %d stats %+v do not sum to %d chunks", r, stats[r], nchunks)
			}
			stolen += stats[r].StolenChunks
		}
		var thiefTotal int64
		for _, th := range thieves {
			if th != nil {
				thiefTotal += th.Stolen
			}
		}
		if thiefTotal != stolen {
			return fmt.Errorf("thieves report %d stolen chunks, owner stats report %d", thiefTotal, stolen)
		}
		return nil
	}}
}

// TestCheckSchedExactlyOnce drives the exactly-once invariant under every
// victim policy, including the steal-vs-complete race on the active_tasks
// slot (a thief that loaded the exec pointer just before the owner closes
// the task must find the chunk counter exhausted, never a live chunk).
func TestCheckSchedExactlyOnce(t *testing.T) {
	policies := []struct {
		name string
		cfg  sched.Config
	}{
		{"RandomSteal", sched.Config{Slots: 3, Policy: sched.RandomSteal}},
		{"NUMAAwareSteal", sched.Config{Slots: 3, Policy: sched.NUMAAwareSteal, SocketOf: []int{0, 0, 1}}},
		{"StickySteal", sched.Config{Slots: 3, Policy: sched.StickySteal}},
	}
	for _, p := range policies {
		p := p
		t.Run(p.name, func(t *testing.T) {
			hookSched(t)
			rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
				return schedStealThreads(p.cfg, 2, 1, 4, 6)
			})
			if rep.Failed {
				t.Fatalf("%s: %s", p.name, rep.Error())
			}
		})
	}
}

// TestCheckSchedStickyAcrossRuns runs two consecutive executions under
// StickySteal: a thief's cached lastExec from run 1 goes stale when run 2
// opens a fresh exec in the same slot, and the sticky fast path must
// detect the swap (pointer inequality) rather than grab from the dead
// execution.
func TestCheckSchedStickyAcrossRuns(t *testing.T) {
	hookSched(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		return schedStealThreads(sched.Config{Slots: 3, Policy: sched.StickySteal}, 2, 2, 3, 10)
	})
	if rep.Failed {
		t.Fatalf("sticky across runs: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// TestCheckSchedExhaustive explores every schedule of the smallest
// interesting configuration: one owner, one thief, two chunks.  All conds
// here are pure (the straggler wait polls the done counter), so bounded
// exhaustive exploration is sound.
func TestCheckSchedExhaustive(t *testing.T) {
	hookSched(t)
	rep := Exhaust(0, 0, func() Threads {
		return schedStealThreads(sched.Config{Slots: 2, Policy: sched.RandomSteal}, 1, 1, 2, 3)
	})
	if rep.Failed {
		t.Fatalf("sched (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}
