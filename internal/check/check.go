// Package check is a deterministic schedule-exploration harness for the
// repository's lock-free shared-memory protocols (PBQ/ring, SPTD dropboxes,
// RMA epoch flags, the task-stealing scheduler).
//
// The Go race detector only examines the schedules that happen to occur;
// check makes schedules first-class.  A model test runs N application
// "threads" as goroutines under a cooperative scheduler: exactly one thread
// executes at a time, and at every instrumented synchronization point (a
// schedpoint seam compiled into the hot loops only under the `purecheck`
// build tag) the running thread hands control back to the scheduler, which
// picks the next thread to run.  Two choosers are provided:
//
//   - PCT (probabilistic concurrency testing, Burckhardt et al. ASPLOS'10):
//     random thread priorities plus d priority-change points, seeded, so a
//     failing schedule is replayed exactly by re-running its seed;
//   - bounded exhaustive DFS over every scheduling choice, for small
//     configurations (2-3 threads, a handful of operations).
//
// Threads block through Wait (the checker's WaitFunc): the scheduler parks
// the thread and probes its condition only when the thread is the next
// scheduling candidate, so conditions with acquire side effects (TryLock)
// stay correct under PCT.  Exhaustive mode probes every parked condition at
// each step to enumerate the full choice set and therefore requires pure
// conditions (all the fence/sequence-flag polls in this repository are pure
// loads).
//
// The harness serializes execution, which models sequentially consistent
// interleavings at schedpoint granularity: exactly the level at which Go's
// sync/atomic operations interleave.  What it checks is protocol logic —
// lost signals, round/sequence mismatches, torn observer snapshots,
// deadlocks — not weak-memory reordering (Go atomics are SC) and not data
// races on unannotated fields (that remains `make race`'s job).
package check

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Threads is one schedule's workload: the cooperative thread bodies plus an
// optional invariant checked after every thread has finished.  A fresh
// Threads must be built per schedule (state is not reusable across runs).
type Threads struct {
	// Names labels the threads in failure traces; optional (index used when
	// short).
	Names []string
	// Fns are the thread bodies.  They must be deterministic: given the
	// same scheduling decisions they must perform the same schedpoint/Wait
	// sequence (no time, no randomness, no channel waits).
	Fns []func()
	// Final, if non-nil, runs on the scheduler goroutine after all threads
	// complete; a non-nil error fails the schedule.
	Final func() error
}

// Step is one scheduling decision in a trace: which thread ran and the label
// of the schedpoint (or wait) it stopped at next.
type Step struct {
	Thread int
	Label  string
}

// Result reports one explored schedule.
type Result struct {
	Steps int    // scheduling decisions taken
	Trace []Step // the full decision sequence (for failure reports)
	Err   error  // nil for a clean schedule
}

// Failed reports whether the schedule violated an invariant, deadlocked,
// panicked, or exceeded the step bound.
func (r Result) Failed() bool { return r.Err != nil }

// TraceString renders the tail of the schedule trace for failure messages.
func (r Result) TraceString(max int) string {
	tr := r.Trace
	omitted := 0
	if len(tr) > max {
		omitted = len(tr) - max
		tr = tr[omitted:]
	}
	var b strings.Builder
	if omitted > 0 {
		fmt.Fprintf(&b, "... %d earlier steps ...\n", omitted)
	}
	for _, s := range tr {
		fmt.Fprintf(&b, "  T%d %s\n", s.Thread, s.Label)
	}
	return b.String()
}

// DefaultMaxSteps bounds a single schedule; exceeding it is reported as a
// livelock (some thread is spinning without a schedpoint-visible wait).
const DefaultMaxSteps = 100000

// ---- The cooperative scheduler ----

// cursched is the scheduler driving the current run.  Exactly one run is
// active at a time (the harness is not reentrant); it is set before worker
// goroutines start and cleared after they all finish, so the accesses are
// ordered by goroutine creation/termination and the run's channel handoffs.
var cursched *scheduler

// abortSentinel unwinds a parked worker when its schedule is being torn
// down (another thread failed, or the step bound was hit).
type abortSentinel struct{}

type evKind uint8

const (
	evYield evKind = iota // thread reached a schedpoint
	evBlock               // thread parked on a condition
	evDone                // thread body returned
	evPanic               // thread body panicked
	evAbort               // thread unwound by teardown
)

type event struct {
	t     *thread
	kind  evKind
	label string
	cond  func() bool
	pval  any // evPanic value
}

type thread struct {
	id     int
	name   string
	fn     func()
	resume chan struct{}
	// Scheduler-owned state (only touched while the thread is parked):
	cond     func() bool // non-nil when parked in Wait
	finished bool
	lastLbl  string
}

type scheduler struct {
	threads []*thread
	toSched chan event
	cur     *thread
	granted bool // true only while a worker goroutine is executing
	abort   bool // set during teardown; parked workers unwind when resumed
	trace   []Step
}

// yield is the schedpoint implementation: park at a scheduling decision.
func (s *scheduler) yield(label string) {
	if !s.granted {
		// Called from the scheduler goroutine (a condition probe reaching
		// instrumented code) — not a worker decision point.
		return
	}
	t := s.cur
	t.lastLbl = label
	s.toSched <- event{t: t, kind: evYield, label: label}
	s.waitGrant(t)
}

// waitCond parks the calling thread until cond holds.  The scheduler probes
// cond only when this thread is its next scheduling candidate.
func (s *scheduler) waitCond(cond func() bool, label string) {
	if !s.granted {
		// Scheduler-side call (e.g. a Final hook): evaluate inline; with
		// every worker parked the state is quiescent, so a false condition
		// here can never become true.
		if !cond() {
			panic("check: Wait called outside a checker thread with an unsatisfiable condition")
		}
		return
	}
	t := s.cur
	t.lastLbl = label
	s.toSched <- event{t: t, kind: evBlock, label: label, cond: cond}
	s.waitGrant(t)
}

func (s *scheduler) waitGrant(t *thread) {
	<-t.resume
	if s.abort {
		panic(abortSentinel{})
	}
}

// grant runs thread t until its next event and returns that event.
func (s *scheduler) grant(t *thread) event {
	s.cur = t
	s.granted = true
	t.resume <- struct{}{}
	ev := <-s.toSched
	s.granted = false
	s.cur = nil
	return ev
}

// schedState is the view a chooser gets of the current scheduling step.
type schedState struct {
	s    *scheduler
	step int
}

// N returns the thread count.
func (st *schedState) N() int { return len(st.s.threads) }

// Finished reports whether thread i's body has returned.
func (st *schedState) Finished(i int) bool { return st.s.threads[i].finished }

// Blocked reports whether thread i is parked on a condition.
func (st *schedState) Blocked(i int) bool { return st.s.threads[i].cond != nil }

// Probe evaluates thread i's parked condition.  A true probe MUST be
// followed by picking i this step (conditions may have acquire side
// effects); PCT honours this, exhaustive mode requires pure conditions.
func (st *schedState) Probe(i int) bool { return st.s.threads[i].cond() }

// chooser picks the next thread to run at each step.  Returning -1 means no
// thread is runnable (deadlock).  pick must respect the Probe contract.
type chooser interface {
	pick(st *schedState) int
}

// deadlockError describes an all-parked state.
func (s *scheduler) deadlockError() error {
	var parked []string
	for _, t := range s.threads {
		if t.finished {
			continue
		}
		parked = append(parked, fmt.Sprintf("T%d(%s) at %q", t.id, t.name, t.lastLbl))
	}
	return fmt.Errorf("deadlock: every live thread is parked on a false condition: %s",
		strings.Join(parked, ", "))
}

// run executes one schedule of th under ch.
func run(ch chooser, th Threads, maxSteps int) Result {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	s := &scheduler{toSched: make(chan event)}
	for i, fn := range th.Fns {
		name := ""
		if i < len(th.Names) {
			name = th.Names[i]
		}
		t := &thread{id: i, name: name, fn: fn, resume: make(chan struct{})}
		s.threads = append(s.threads, t)
	}
	cursched = s
	defer func() { cursched = nil }()

	live := 0
	for _, t := range s.threads {
		live++
		go func(t *thread) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSentinel); ok {
						s.toSched <- event{t: t, kind: evAbort}
						return
					}
					buf := make([]byte, 4096)
					n := runtime.Stack(buf, false)
					s.toSched <- event{t: t, kind: evPanic, pval: r, label: string(buf[:n])}
					return
				}
				s.toSched <- event{t: t, kind: evDone}
			}()
			<-t.resume
			if s.abort {
				panic(abortSentinel{})
			}
			t.fn()
		}(t)
	}

	res := Result{}
	st := &schedState{s: s}
	var failure error
	for live > 0 {
		if res.Steps >= maxSteps {
			failure = fmt.Errorf("livelock: schedule exceeded %d steps (a thread is spinning without a Wait)", maxSteps)
			break
		}
		st.step = res.Steps
		i := ch.pick(st)
		if i < 0 {
			failure = s.deadlockError()
			break
		}
		t := s.threads[i]
		t.cond = nil // a picked thread is no longer parked
		ev := s.grant(t)
		res.Steps++
		res.Trace = append(res.Trace, Step{Thread: i, Label: ev.label})
		switch ev.kind {
		case evYield:
			// runnable again next step
		case evBlock:
			t.cond = ev.cond
		case evDone, evAbort:
			t.finished = true
			live--
		case evPanic:
			t.finished = true
			live--
			failure = fmt.Errorf("thread T%d(%s) panicked: %v\n%s", t.id, t.name, ev.pval, ev.label)
		}
		if failure != nil {
			break
		}
	}

	if failure != nil {
		// Teardown: unwind every still-live worker so no goroutines leak
		// across the thousands of schedules a test explores.
		s.abort = true
		for _, t := range s.threads {
			if t.finished {
				continue
			}
			t.resume <- struct{}{}
			for {
				ev := <-s.toSched
				if ev.t == t && (ev.kind == evAbort || ev.kind == evDone || ev.kind == evPanic) {
					break
				}
			}
		}
		res.Err = failure
		return res
	}
	if th.Final != nil {
		res.Err = th.Final()
	}
	return res
}

// ---- Hooks installed into the packages under test ----

// Hook is the scheduling hook the instrumented packages call at every
// synchronization point.  Model tests install it via each package's
// SetSchedHook (available under the purecheck build tag); outside a run it
// is a no-op, so hooked code keeps working in ordinary tests.
func Hook(label string) {
	if s := cursched; s != nil {
		s.yield(label)
	}
}

// Wait is the checker's WaitFunc (collective.WaitFunc compatible): inside a
// run it parks the calling thread until cond holds; outside a run it
// degrades to a spin-yield loop so shared helpers work in plain tests too.
func Wait(cond func() bool) {
	if s := cursched; s != nil {
		s.waitCond(cond, "wait")
		return
	}
	for !cond() {
		runtime.Gosched()
	}
}

// WaitLabeled is Wait with a trace label for readable failure schedules.
func WaitLabeled(label string, cond func() bool) {
	if s := cursched; s != nil {
		s.waitCond(cond, label)
		return
	}
	for !cond() {
		runtime.Gosched()
	}
}

// Yield is an explicit schedpoint for thread bodies written inside model
// tests (loops that have no instrumented call on some paths).
func Yield(label string) { Hook(label) }

// ---- Environment knobs ----

// SeedsFromEnv returns the PCT seed count for a full model test: the
// PURE_CHECK_SEEDS variable when set, else def.
func SeedsFromEnv(def int) int {
	if v := os.Getenv("PURE_CHECK_SEEDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// ReplaySeedFromEnv returns (seed, true) when PURE_CHECK_SEED is set,
// asking every model test to replay exactly that one schedule.
func ReplaySeedFromEnv() (int64, bool) {
	if v := os.Getenv("PURE_CHECK_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n, true
		}
	}
	return 0, false
}
