//go:build purecheck

// Model tests for the SPTD collective structures (leader election,
// dropboxes, partitioned reducer) under the deterministic schedule explorer.
package check

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/collective"
)

func hookCollective(t *testing.T) {
	collective.SetSchedHook(Hook)
	t.Cleanup(func() { collective.SetSchedHook(nil) })
}

// sptdAllreduceThreads runs `rounds` all-reduce rounds over n threads with
// distinct per-thread/per-round contributions; every thread must observe the
// exact sum every round (no lost contribution, no stale result reuse).
func sptdAllreduceThreads(n, rounds int) Threads {
	s := collective.NewSPTD(n, 64)
	errs := make([]error, n)
	fns := make([]func(), n)
	for tid := 0; tid < n; tid++ {
		tid := tid
		fns[tid] = func() {
			for r := 1; r <= rounds; r++ {
				in := codec.Int64Bytes([]int64{int64(100*r + tid), int64(tid)})
				out := make([]byte, len(in))
				s.Allreduce(tid, in, out, collective.OpSum, collective.Int64, nil, Wait)
				got := make([]int64, 2)
				codec.GetInt64s(got, out)
				wantA := int64(0)
				wantB := int64(0)
				for t := 0; t < n; t++ {
					wantA += int64(100*r + t)
					wantB += int64(t)
				}
				if got[0] != wantA || got[1] != wantB {
					errs[tid] = fmt.Errorf("thread %d round %d: got %v want [%d %d]", tid, r, got, wantA, wantB)
					return
				}
			}
		}
	}
	return Threads{Fns: fns, Final: func() error {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}}
}

// TestCheckSPTDAllreduceNoLostContribution: the sequence-numbered dropbox
// protocol must deliver every thread's contribution to every thread's
// result in every explored schedule, across multiple reuse rounds (the
// round r-1 ack gate protects the shared result buffer).
func TestCheckSPTDAllreduceNoLostContribution(t *testing.T) {
	hookCollective(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		return sptdAllreduceThreads(3, 2)
	})
	if rep.Failed {
		t.Fatalf("SPTD allreduce: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// sptdBarrierThreads checks the barrier's separation invariant: no thread
// may leave barrier round r before every thread has arrived at round r.
// Arrivals are recorded in per-thread slots before the barrier call; on
// exit every slot must already show the current round.
func sptdBarrierThreads(n, rounds int, mkBarrier func() func(tid int)) Threads {
	barrier := mkBarrier()
	arrived := make([]int, n) // arrived[t] = latest round t has entered
	errs := make([]error, n)
	fns := make([]func(), n)
	for tid := 0; tid < n; tid++ {
		tid := tid
		fns[tid] = func() {
			for r := 1; r <= rounds; r++ {
				arrived[tid] = r
				Yield("barrier:arrived")
				barrier(tid)
				for t := 0; t < n; t++ {
					if arrived[t] < r {
						errs[tid] = fmt.Errorf("thread %d escaped round %d before thread %d arrived (saw round %d)", tid, r, t, arrived[t])
						return
					}
				}
			}
		}
	}
	return Threads{Fns: fns, Final: func() error {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}}
}

// TestCheckSPTDBarrierSequenceInvariant covers the static-leader SPTD
// barrier (the paper's chosen design).
func TestCheckSPTDBarrierSequenceInvariant(t *testing.T) {
	hookCollective(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		s := collective.NewSPTD(3, 8)
		return sptdBarrierThreads(3, 2, func() func(int) {
			return func(tid int) { s.Barrier(tid, Wait) }
		})
	})
	if rep.Failed {
		t.Fatalf("SPTD barrier: %s", rep.Error())
	}
}

// TestCheckSPTDBarrierExhaustive explores every schedule of the 2-thread,
// 2-round barrier.
func TestCheckSPTDBarrierExhaustive(t *testing.T) {
	hookCollective(t)
	rep := Exhaust(0, 0, func() Threads {
		s := collective.NewSPTD(2, 8)
		return sptdBarrierThreads(2, 2, func() func(int) {
			return func(tid int) { s.Barrier(tid, Wait) }
		})
	})
	if rep.Failed {
		t.Fatalf("SPTD barrier (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}

// TestCheckCASBarrierElection covers the rejected CAS "first thread in"
// leader election retained for the ablation benchmarks — its per-round
// leader race is exactly the kind of protocol the checker exists for.
func TestCheckCASBarrierElection(t *testing.T) {
	hookCollective(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, func() Threads {
		b := collective.NewCASBarrier(3)
		return sptdBarrierThreads(3, 2, func() func(int) {
			return func(tid int) { b.Wait(tid, Wait) }
		})
	})
	if rep.Failed {
		t.Fatalf("CAS barrier: %s", rep.Error())
	}
}

// TestCheckSPTDReduceBroadcast drives the remaining dropbox shapes: a
// rooted reduce (root 1, a non-leader) followed by a broadcast from root 2,
// checking payload integrity and round lockstep.
func TestCheckSPTDReduceBroadcast(t *testing.T) {
	hookCollective(t)
	mk := func() Threads {
		s := collective.NewSPTD(3, 64)
		errs := make([]error, 3)
		fns := make([]func(), 3)
		for tid := 0; tid < 3; tid++ {
			tid := tid
			fns[tid] = func() {
				in := codec.Int64Bytes([]int64{int64(tid + 1)})
				out := make([]byte, len(in))
				s.Reduce(tid, 1, in, out, collective.OpSum, collective.Int64, nil, Wait)
				if tid == 1 {
					got := make([]int64, 1)
					codec.GetInt64s(got, out)
					if got[0] != 6 {
						errs[tid] = fmt.Errorf("reduce at root 1: got %d want 6", got[0])
						return
					}
				}
				buf := codec.Int64Bytes([]int64{int64(99)})
				if tid != 2 {
					buf = codec.Int64Bytes([]int64{int64(-1)})
				}
				s.Broadcast(tid, 2, buf, nil, Wait)
				got := make([]int64, 1)
				codec.GetInt64s(got, buf)
				if got[0] != 99 {
					errs[tid] = fmt.Errorf("broadcast at thread %d: got %d want 99", tid, got[0])
				}
			}
		}
		return Threads{Fns: fns, Final: func() error {
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
			return nil
		}}
	}
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, mk)
	if rep.Failed {
		t.Fatalf("SPTD reduce/broadcast: %s", rep.Error())
	}
}

// TestCheckPartitionedReducer: the large-data all-reduce's publish/fold/
// ack protocol, with a payload sized so the cacheline chunking leaves one
// thread with no fold work (the asymmetric case).
func TestCheckPartitionedReducer(t *testing.T) {
	hookCollective(t)
	mk := func() Threads {
		p := collective.NewPartitionedReducer(3, 128)
		errs := make([]error, 3)
		fns := make([]func(), 3)
		for tid := 0; tid < 3; tid++ {
			tid := tid
			fns[tid] = func() {
				for r := 1; r <= 2; r++ {
					vals := make([]float64, 16) // 128 B = 2 cachelines over 3 threads
					for i := range vals {
						vals[i] = float64(tid + r)
					}
					in := codec.Float64Bytes(vals)
					out := make([]byte, len(in))
					p.Allreduce(tid, in, out, collective.OpSum, collective.Float64, nil, Wait)
					got := make([]float64, 16)
					codec.GetFloat64s(got, out)
					want := float64((0 + r) + (1 + r) + (2 + r))
					for i, v := range got {
						if v != want {
							errs[tid] = fmt.Errorf("thread %d round %d elem %d: got %v want %v", tid, r, i, v, want)
							return
						}
					}
				}
			}
		}
		return Threads{Fns: fns, Final: func() error {
			for _, e := range errs {
				if e != nil {
					return e
				}
			}
			return nil
		}}
	}
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, mk)
	if rep.Failed {
		t.Fatalf("partitioned reducer: %s", rep.Error())
	}
}
