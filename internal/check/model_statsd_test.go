//go:build purecheck

// Model tests for the statsd tagset interner (internal/statsd's lock-free
// hash-consing table).  Two ingestion ranks first-interning the same tagset
// race through the load / CAS-publish window; every interleaving must
// converge on ONE canonical *Tagset pointer, or downstream identity
// comparisons (hot-set hits, dictionary dedup) would silently split a
// series in two.
package check

import (
	"fmt"
	"testing"

	"repro/internal/statsd"
)

// hookStatsd routes internal/statsd's schedpoints to the checker for the
// duration of the test.
func hookStatsd(t *testing.T) {
	statsd.SetSchedHook(Hook)
	t.Cleanup(func() { statsd.SetSchedHook(nil) })
}

// internRaceThreads builds one schedule's workload: two ranks concurrently
// first-interning the same raw tagset.  The invariant demands pointer
// convergence, a single occupied slot, and exactly one recorded miss (the
// CAS loser must adopt the winner's pointer and count a hit, not publish a
// duplicate).
func internRaceThreads() Threads {
	it := statsd.NewInterner(64)
	raw := []byte("env:prod,host:web-3,service:api")
	hash := statsd.Hash64(raw)
	var got [2]*statsd.Tagset
	intern := func(i int) func() {
		return func() { got[i] = it.Intern(hash, raw) }
	}
	return Threads{
		Names: []string{"rank0-intern", "rank1-intern"},
		Fns:   []func(){intern(0), intern(1)},
		Final: func() error {
			if got[0] == nil || got[1] == nil {
				return fmt.Errorf("intern returned nil")
			}
			if got[0] != got[1] {
				return fmt.Errorf("first-intern race split the tagset: %p vs %p", got[0], got[1])
			}
			if got[0].Hash != hash || got[0].Raw != string(raw) {
				return fmt.Errorf("canonical tagset corrupted: hash %#x raw %q", got[0].Hash, got[0].Raw)
			}
			if it.Len() != 1 {
				return fmt.Errorf("race occupied %d slots, want 1", it.Len())
			}
			hits, misses, overflows := it.Stats()
			if misses != 1 || hits != 1 || overflows != 0 {
				return fmt.Errorf("race counted hits=%d misses=%d overflows=%d, want 1/1/0", hits, misses, overflows)
			}
			// A later intern of the same bytes must still resolve to the winner.
			if it.Intern(hash, raw) != got[0] {
				return fmt.Errorf("post-race intern returned a different pointer")
			}
			return nil
		},
	}
}

// internCollisionThreads races two DIFFERENT tagsets whose hashes collide
// into the same slot chain (same low bits), so one thread's probe walks
// past the other's freshly published entry: neither may adopt the other's
// tagset, and both must end up interned in distinct slots.
func internCollisionThreads() Threads {
	it := statsd.NewInterner(16) // mask 15: identical low bits collide
	rawA := []byte("env:prod,team:alpha")
	rawB := []byte("env:prod,team:bravo")
	hashA := statsd.Hash64(rawA)
	// Force a slot collision: give B a distinct hash with A's low bits.
	hashB := (statsd.Hash64(rawB) &^ uint64(15)) | (hashA & 15)
	var gotA, gotB *statsd.Tagset
	return Threads{
		Names: []string{"intern-A", "intern-B"},
		Fns: []func(){
			func() { gotA = it.Intern(hashA, rawA) },
			func() { gotB = it.Intern(hashB, rawB) },
		},
		Final: func() error {
			if gotA == gotB {
				return fmt.Errorf("colliding tagsets aliased one pointer")
			}
			if gotA.Raw != string(rawA) || gotB.Raw != string(rawB) {
				return fmt.Errorf("collision crossed raw bytes: %q / %q", gotA.Raw, gotB.Raw)
			}
			if it.Len() != 2 {
				return fmt.Errorf("collision occupied %d slots, want 2", it.Len())
			}
			if it.Intern(hashA, rawA) != gotA || it.Intern(hashB, rawB) != gotB {
				return fmt.Errorf("post-race interns did not resolve to the published entries")
			}
			return nil
		},
	}
}

// TestCheckInternFirstUseRace: under PCT schedules, concurrent first-intern
// of one tagset always converges on a single canonical pointer with exact
// hit/miss accounting.
func TestCheckInternFirstUseRace(t *testing.T) {
	hookStatsd(t)
	rep := RunPCT(1, SeedsFromEnv(1000), DefaultPCTDepth, internRaceThreads)
	if rep.Failed {
		t.Fatalf("intern first-use race: %s", rep.Error())
	}
	t.Logf("PCT: %d seeds, %d total steps", rep.Seeds, rep.TotalSteps)
}

// TestCheckInternFirstUseExhaustive explores EVERY schedule of the
// two-thread first-intern race (two schedpoints per thread).
func TestCheckInternFirstUseExhaustive(t *testing.T) {
	hookStatsd(t)
	rep := Exhaust(0, 0, internRaceThreads)
	if rep.Failed {
		t.Fatalf("intern first-use race (exhaustive): %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}

// TestCheckInternCollisionRace: racing inserts of distinct colliding
// tagsets neither alias nor lose an entry, under every schedule.
func TestCheckInternCollisionRace(t *testing.T) {
	hookStatsd(t)
	rep := Exhaust(0, 0, internCollisionThreads)
	if rep.Failed {
		t.Fatalf("intern collision race: %s", rep.Error())
	}
	if !rep.Complete {
		t.Fatalf("exhaustive exploration hit the schedule budget (%d schedules)", rep.Schedules)
	}
	t.Logf("exhaustive: %d schedules, complete", rep.Schedules)
}
