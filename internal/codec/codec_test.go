package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64RoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		b := Float64Bytes(vals)
		out := make([]float64, len(vals))
		GetFloat64s(out, b)
		for i := range vals {
			same := out[i] == vals[i] || (math.IsNaN(out[i]) && math.IsNaN(vals[i]))
			if !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		b := Int64Bytes(vals)
		out := make([]int64, len(vals))
		GetInt64s(out, b)
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutIsLittleEndian(t *testing.T) {
	// The wire layout is a contract (cross-runtime tests compare payloads
	// byte for byte), so pin it explicitly.
	got := Int64Bytes([]int64{0x0102030405060708})
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if !bytes.Equal(got, want) {
		t.Errorf("int64 layout = %x, want %x", got, want)
	}
	if g := Float64Bytes([]float64{1.0}); g[7] != 0x3f || g[6] != 0xf0 {
		t.Errorf("float64 layout = %x", g)
	}
}
