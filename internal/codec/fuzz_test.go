package codec

import (
	"bytes"
	"math"
	"testing"
)

// FuzzCodecRoundTrip drives the payload codec with arbitrary bytes: any
// 8-byte-aligned prefix must decode to numeric slices that re-encode to
// the identical bytes (bit-exact, including NaN payloads and negative
// zero — the cross-runtime comparison tests depend on this).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(Float64Bytes([]float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1)}))
	f.Add(Float64Bytes([]float64{math.NaN(), math.Copysign(0, -1)}))
	f.Add(Int64Bytes([]int64{0, 1, -1, math.MaxInt64, math.MinInt64}))
	f.Add([]byte{1, 2, 3}) // sub-element tail, ignored by the slice view

	f.Fuzz(func(t *testing.T, b []byte) {
		n := len(b) / 8
		aligned := b[:n*8]

		fs := make([]float64, n)
		GetFloat64s(fs, aligned)
		fb := make([]byte, n*8)
		PutFloat64s(fb, fs)
		if !bytes.Equal(fb, aligned) {
			t.Fatalf("float64 round trip not bit-exact:\n in:  %x\n out: %x", aligned, fb)
		}
		if got := Float64Bytes(fs); !bytes.Equal(got, aligned) {
			t.Fatalf("Float64Bytes diverges from PutFloat64s")
		}

		is := make([]int64, n)
		GetInt64s(is, aligned)
		ib := make([]byte, n*8)
		PutInt64s(ib, is)
		if !bytes.Equal(ib, aligned) {
			t.Fatalf("int64 round trip not bit-exact:\n in:  %x\n out: %x", aligned, ib)
		}
		if got := Int64Bytes(is); !bytes.Equal(got, aligned) {
			t.Fatalf("Int64Bytes diverges from PutInt64s")
		}
	})
}
