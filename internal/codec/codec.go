// Package codec is the repository's single implementation of the on-wire
// payload layout: numeric slices marshalled as little-endian fixed-width
// elements.  The transports move raw bytes; pure, mpibase and comm all
// funnel their typed convenience helpers through here so the two runtimes
// cannot drift apart (bit-identical payloads are what make the cross-runtime
// comparison tests meaningful).
package codec

import (
	"encoding/binary"
	"math"
)

// Float64Bytes encodes vals into a fresh little-endian payload.
func Float64Bytes(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	PutFloat64s(b, vals)
	return b
}

// PutFloat64s encodes vals into b, which must hold 8*len(vals) bytes.
func PutFloat64s(b []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
}

// GetFloat64s decodes len(vals) float64s from b into vals.
func GetFloat64s(vals []float64, b []byte) {
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// Int64Bytes encodes vals into a fresh little-endian payload.
func Int64Bytes(vals []int64) []byte {
	b := make([]byte, 8*len(vals))
	PutInt64s(b, vals)
	return b
}

// PutInt64s encodes vals into b, which must hold 8*len(vals) bytes.
func PutInt64s(b []byte, vals []int64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
}

// GetInt64s decodes len(vals) int64s from b into vals.
func GetInt64s(vals []int64, b []byte) {
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
}
