package collective

import "sync/atomic"

// The paper §4.2: "We use a simple static leader election process, which
// outperformed a compare-and-swap based 'first thread in' process."  This
// file implements that rejected CAS design so the claim can be measured
// (BenchmarkAblationLeaderElection).

// CASBarrier is a barrier whose per-round leader is the first thread to win
// a compare-and-swap; the leader then waits for the stragglers and releases
// everyone.  Contrast with SPTD's statically elected thread 0.
type CASBarrier struct {
	n int
	// leader is the round's winner + 1 (0 = unclaimed), CAS-contended by
	// every arriving thread — the cost the paper measured and avoided.
	leader  atomic.Int64
	arrived atomic.Int64
	_       pad
	release atomic.Uint64
	_       pad
	rounds  []paddedCounter
}

// NewCASBarrier builds a first-thread-in barrier for n threads.
func NewCASBarrier(n int) *CASBarrier {
	if n <= 0 {
		panic("collective: NewCASBarrier needs positive n")
	}
	return &CASBarrier{n: n, rounds: make([]paddedCounter, n)}
}

// Wait blocks tid until all n threads have arrived.
func (b *CASBarrier) Wait(tid int, wait WaitFunc) {
	r := b.rounds[tid].v.Add(1)
	iAmLeader := b.leader.CompareAndSwap(0, int64(tid)+1)
	arrivedNow := b.arrived.Add(1)
	if iAmLeader {
		// Leader: wait for everyone, reset, release.
		wait(func() bool { return b.arrived.Load() == int64(b.n) })
		b.arrived.Store(0)
		b.leader.Store(0)
		b.release.Store(r)
		return
	}
	_ = arrivedNow
	wait(func() bool { return b.release.Load() >= r })
}
