package collective

import (
	"fmt"
	"sync/atomic"
)

// PartitionedReducer implements the paper's large-data all-reduce (§4.2.2,
// Fig. 3).  Rather than serializing the fold through the leader, every
// thread publishes a pointer to its input buffer, then all threads
// concurrently reduce disjoint, cacheline-multiple chunks of the element
// range, writing into a shared output buffer.  The leader then bridges
// across nodes (MPI_Allreduce in the paper) and publishes the final result,
// which every thread copies into its private output buffer.
//
// Example from the paper: a 4 KiB reduction on 64 B cachelines splits into 64
// chunks, so up to 64 threads fold concurrently; threads beyond the chunk
// count have no fold work.
type PartitionedReducer struct {
	nthreads int
	maxBytes int

	arrive []prSlot
	shared []byte // shared output buffer, leader-owned allocation

	finalSeq atomic.Uint64
	_        pad
	rounds   []paddedCounter
}

// prSlot is one thread's arrival/done/ack record, padded against false sharing.
type prSlot struct {
	input atomic.Pointer[[]byte] // published input buffer for this round
	seq   atomic.Uint64          // arrival sequence
	_     pad
	done  atomic.Uint64 // fold-work-complete sequence
	_     pad
	ack   atomic.Uint64 // copy-out-complete sequence
	_     pad
}

// NewPartitionedReducer builds the structure for nthreads threads reducing
// payloads of up to maxBytes bytes.
func NewPartitionedReducer(nthreads, maxBytes int) *PartitionedReducer {
	if nthreads <= 0 || maxBytes <= 0 {
		panic(fmt.Sprintf("collective: NewPartitionedReducer(%d, %d): arguments must be positive", nthreads, maxBytes))
	}
	return &PartitionedReducer{
		nthreads: nthreads,
		maxBytes: maxBytes,
		arrive:   make([]prSlot, nthreads),
		shared:   make([]byte, maxBytes),
		rounds:   make([]paddedCounter, nthreads),
	}
}

// ChunkRange returns the half-open byte range [lo, hi) of the shared output
// that thread tid folds, given a payload of n bytes.  Chunks are multiples of
// the 64-byte cacheline so concurrent writers never false-share; threads
// beyond the cacheline count receive an empty range.
func (p *PartitionedReducer) ChunkRange(tid, n int) (lo, hi int) {
	const line = 64
	lines := (n + line - 1) / line
	per := lines / p.nthreads
	extra := lines % p.nthreads
	// Deal `per` lines to everyone and one extra line to the first `extra`
	// threads, preserving contiguity.
	start := tid*per + min(tid, extra)
	count := per
	if tid < extra {
		count++
	}
	lo = start * line
	hi = lo + count*line
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Allreduce folds every thread's in buffer element-wise and writes the result
// into every thread's out buffer.  bridge, if non-nil, runs on the leader
// (thread 0) once the node-local fold completes and may rewrite the reduced
// bytes in place with the cross-node result.  All nthreads threads must call
// Allreduce with equal-length buffers.
func (p *PartitionedReducer) Allreduce(tid int, in, out []byte, op Op, dt DType, bridge func([]byte), wait WaitFunc) {
	if len(in) > p.maxBytes {
		panic(fmt.Sprintf("collective: payload %d exceeds PartitionedReducer max %d", len(in), p.maxBytes))
	}
	if len(out) < len(in) {
		panic(fmt.Sprintf("collective: output buffer %d smaller than input %d", len(out), len(in)))
	}
	r := p.nextRound(tid)
	me := &p.arrive[tid]

	// Before publishing our input for round r we must know the shared buffer
	// is no longer being read from round r-1 by anyone (everyone acked).
	// Threads only write disjoint chunks, but a slow thread could still be
	// copying out round r-1's bytes from our chunk.
	for t := 0; t < p.nthreads; t++ {
		s := &p.arrive[t]
		wait(func() bool { return s.ack.Load() >= r-1 })
	}

	// Arrival: publish a pointer to our input, bump our sequence (paper:
	// "instead of copying in their data, they just set a pointer to their
	// buffer before incrementing their sequence number").
	inCopy := in
	me.input.Store(&inCopy)
	me.seq.Store(r)

	// Fold phase: wait for all arrivals, then reduce our chunk across all
	// threads' inputs into the shared output.
	for t := 0; t < p.nthreads; t++ {
		s := &p.arrive[t]
		wait(func() bool { return s.seq.Load() >= r })
	}
	lo, hi := p.ChunkRange(tid, len(in))
	if lo < hi {
		first := *p.arrive[0].input.Load()
		copy(p.shared[lo:hi], first[lo:hi])
		for t := 1; t < p.nthreads; t++ {
			src := *p.arrive[t].input.Load()
			Accumulate(p.shared[lo:hi], src[lo:hi], op, dt)
		}
	}
	me.done.Store(r)

	if tid == 0 {
		// Leader: wait for all folds, bridge across nodes, publish.
		for t := 0; t < p.nthreads; t++ {
			s := &p.arrive[t]
			wait(func() bool { return s.done.Load() >= r })
		}
		if bridge != nil {
			bridge(p.shared[:len(in)])
		}
		p.finalSeq.Store(r)
	} else {
		wait(func() bool { return p.finalSeq.Load() >= r })
	}
	copy(out[:len(in)], p.shared[:len(in)])
	me.ack.Store(r)
}

func (p *PartitionedReducer) nextRound(tid int) uint64 {
	return p.rounds[tid].v.Add(1)
}

// Round returns how many Allreduce rounds thread tid has completed on this
// structure (exact for tid itself, an atomic snapshot for other readers).
func (p *PartitionedReducer) Round(tid int) uint64 { return p.rounds[tid].v.Load() }

// CounterBarrier is the shared-atomic-counter barrier the paper tried first
// and abandoned ("the pairwise synchronization offered by [SPTD] vastly
// outperformed a shared atomic counter approach").  It is retained for the
// ablation benchmarks: a sense-reversing central counter.
type CounterBarrier struct {
	n      int
	count  atomic.Int64
	_      pad
	sense  atomic.Uint64
	_      pad
	rounds []paddedCounter
}

// NewCounterBarrier builds a central-counter barrier for n threads.
func NewCounterBarrier(n int) *CounterBarrier {
	if n <= 0 {
		panic(fmt.Sprintf("collective: NewCounterBarrier(%d): n must be positive", n))
	}
	return &CounterBarrier{n: n, rounds: make([]paddedCounter, n)}
}

// Wait blocks tid until all n threads have arrived.
func (b *CounterBarrier) Wait(tid int, wait WaitFunc) {
	r := b.rounds[tid].v.Add(1)
	if b.count.Add(1) == int64(b.n) {
		b.count.Store(0)
		b.sense.Store(r) // release everyone
	} else {
		wait(func() bool { return b.sense.Load() >= r })
	}
}
