package collective

import (
	"encoding/binary"
	"math"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ssw"
)

func spinWait(cond func() bool) { ssw.SpinWait(cond) }

func f64bytes(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func bytesToF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func i64bytes(vals ...int64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b
}

func TestAccumulateFloat64Ops(t *testing.T) {
	cases := []struct {
		op   Op
		want []float64
	}{
		{OpSum, []float64{5, -1}},
		{OpProd, []float64{6, -6}},
		{OpMin, []float64{2, -3}},
		{OpMax, []float64{3, 2}},
	}
	for _, c := range cases {
		dst := f64bytes(2, 2)
		src := f64bytes(3, -3)
		Accumulate(dst, src, c.op, Float64)
		got := bytesToF64(dst)
		if got[0] != c.want[0] || got[1] != c.want[1] {
			t.Errorf("%v: got %v, want %v", c.op, got, c.want)
		}
	}
}

func TestAccumulateInt64AndInt32(t *testing.T) {
	dst := i64bytes(10, -5)
	Accumulate(dst, i64bytes(3, -7), OpSum, Int64)
	if got := int64(binary.LittleEndian.Uint64(dst)); got != 13 {
		t.Errorf("int64 sum = %d, want 13", got)
	}
	if got := int64(binary.LittleEndian.Uint64(dst[8:])); got != -12 {
		t.Errorf("int64 sum = %d, want -12", got)
	}

	d32 := make([]byte, 8)
	neg4 := int32(-4)
	binary.LittleEndian.PutUint32(d32, uint32(neg4))
	binary.LittleEndian.PutUint32(d32[4:], 7)
	s32 := make([]byte, 8)
	binary.LittleEndian.PutUint32(s32, 10)
	neg2 := int32(-2)
	binary.LittleEndian.PutUint32(s32[4:], uint32(neg2))
	Accumulate(d32, s32, OpMax, Int32)
	if got := int32(binary.LittleEndian.Uint32(d32)); got != 10 {
		t.Errorf("int32 max = %d, want 10", got)
	}
	if got := int32(binary.LittleEndian.Uint32(d32[4:])); got != 7 {
		t.Errorf("int32 max = %d, want 7", got)
	}
}

func TestAccumulateFloat32AndUint8(t *testing.T) {
	d := make([]byte, 4)
	binary.LittleEndian.PutUint32(d, math.Float32bits(1.5))
	s := make([]byte, 4)
	binary.LittleEndian.PutUint32(s, math.Float32bits(2.5))
	Accumulate(d, s, OpSum, Float32)
	if got := math.Float32frombits(binary.LittleEndian.Uint32(d)); got != 4.0 {
		t.Errorf("float32 sum = %v, want 4", got)
	}
	Accumulate(d, s, OpMin, Float32)
	if got := math.Float32frombits(binary.LittleEndian.Uint32(d)); got != 2.5 {
		t.Errorf("float32 min = %v, want 2.5", got)
	}
	Accumulate(d, s, OpProd, Float32)
	if got := math.Float32frombits(binary.LittleEndian.Uint32(d)); got != 6.25 {
		t.Errorf("float32 prod = %v, want 6.25", got)
	}
	Accumulate(d, s, OpMax, Float32)
	if got := math.Float32frombits(binary.LittleEndian.Uint32(d)); got != 6.25 {
		t.Errorf("float32 max = %v, want 6.25", got)
	}

	du := []byte{1, 200, 3, 4}
	Accumulate(du, []byte{2, 100, 7, 1}, OpMax, Uint8)
	if du[0] != 2 || du[1] != 200 || du[2] != 7 || du[3] != 4 {
		t.Errorf("uint8 max = %v", du)
	}
	Accumulate(du, []byte{1, 1, 1, 1}, OpSum, Uint8)
	if du[0] != 3 || du[3] != 5 {
		t.Errorf("uint8 sum = %v", du)
	}
	Accumulate(du, []byte{2, 2, 2, 2}, OpProd, Uint8)
	if du[0] != 6 {
		t.Errorf("uint8 prod = %v", du)
	}
	Accumulate(du, []byte{0, 0, 0, 0}, OpMin, Uint8)
	if du[0] != 0 {
		t.Errorf("uint8 min = %v", du)
	}
}

func TestAccumulatePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("length mismatch", func() { Accumulate(make([]byte, 8), make([]byte, 16), OpSum, Float64) })
	mustPanic("bad multiple", func() { Accumulate(make([]byte, 7), make([]byte, 7), OpSum, Float64) })
}

func TestDTypeSizeAndStrings(t *testing.T) {
	if Float64.Size() != 8 || Int32.Size() != 4 || Uint8.Size() != 1 || Float32.Size() != 4 || Int64.Size() != 8 {
		t.Error("DType.Size wrong")
	}
	if OpSum.String() != "sum" || OpProd.String() != "prod" || OpMin.String() != "min" || OpMax.String() != "max" {
		t.Error("Op.String wrong")
	}
	if Float64.String() != "float64" || Uint8.String() != "uint8" {
		t.Error("DType.String wrong")
	}
}

// Property: Accumulate(OpSum) over float64 equals the reference fold within
// floating-point equality (identical operation order).
func TestAccumulateSumMatchesReference(t *testing.T) {
	f := func(a, b []float64) bool {
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		dst := f64bytes(a...)
		Accumulate(dst, f64bytes(b...), OpSum, Float64)
		got := bytesToF64(dst)
		for i := 0; i < n; i++ {
			want := a[i] + b[i]
			if got[i] != want && !(math.IsNaN(got[i]) && math.IsNaN(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// runCollective runs body(tid) on n goroutines and waits for all.
func runCollective(n int, body func(tid int)) {
	var wg sync.WaitGroup
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			body(tid)
		}(tid)
	}
	wg.Wait()
}

func TestSPTDBarrier(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 8
	s := NewSPTD(n, 64)
	var phase [n]int
	for round := 0; round < 50; round++ {
		runCollective(n, func(tid int) {
			phase[tid]++
			s.Barrier(tid, spinWait)
			// After the barrier every thread must observe every phase count
			// at the new value.
			for t2 := 0; t2 < n; t2++ {
				if phase[t2] != round+1 {
					t.Errorf("round %d tid %d: phase[%d] = %d", round, tid, t2, phase[t2])
				}
			}
			s.Barrier(tid, spinWait) // protect phase writes of next round
		})
	}
}

func TestSPTDBarrierBridged(t *testing.T) {
	const n = 4
	s := NewSPTD(n, 8)
	bridgeCalls := 0
	runCollective(n, func(tid int) {
		s.BarrierBridged(tid, func() { bridgeCalls++ }, spinWait)
	})
	if bridgeCalls != 1 {
		t.Fatalf("bridge called %d times, want 1 (leader only)", bridgeCalls)
	}
}

func TestSPTDAllreduceSum(t *testing.T) {
	const n = 6
	s := NewSPTD(n, 2048)
	outs := make([][]byte, n)
	for round := 0; round < 20; round++ {
		runCollective(n, func(tid int) {
			in := f64bytes(float64(tid+1), float64(round))
			out := make([]byte, len(in))
			s.Allreduce(tid, in, out, OpSum, Float64, nil, spinWait)
			outs[tid] = out
		})
		want := []float64{21, float64(round * n)} // 1+2+..+6 = 21
		for tid := 0; tid < n; tid++ {
			got := bytesToF64(outs[tid])
			if got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("round %d tid %d: got %v, want %v", round, tid, got, want)
			}
		}
	}
}

func TestSPTDAllreduceBridge(t *testing.T) {
	const n = 3
	s := NewSPTD(n, 64)
	outs := make([][]byte, n)
	runCollective(n, func(tid int) {
		in := f64bytes(1)
		out := make([]byte, 8)
		s.Allreduce(tid, in, out, OpSum, Float64, func(acc []byte) {
			// Pretend another node contributed 10.
			v := math.Float64frombits(binary.LittleEndian.Uint64(acc))
			binary.LittleEndian.PutUint64(acc, math.Float64bits(v+10))
		}, spinWait)
		outs[tid] = out
	})
	for tid := 0; tid < n; tid++ {
		if got := bytesToF64(outs[tid])[0]; got != 13 {
			t.Fatalf("tid %d: got %v, want 13", tid, got)
		}
	}
}

func TestSPTDReduceToEachRoot(t *testing.T) {
	const n = 5
	s := NewSPTD(n, 64)
	for root := 0; root < n; root++ {
		var rootOut []byte
		runCollective(n, func(tid int) {
			in := i64bytes(int64(tid + 1))
			out := make([]byte, 8)
			s.Reduce(tid, root, in, out, OpSum, Int64, nil, spinWait)
			if tid == root {
				rootOut = out
			}
		})
		if got := int64(binary.LittleEndian.Uint64(rootOut)); got != 15 {
			t.Fatalf("root %d: got %d, want 15", root, got)
		}
	}
}

func TestSPTDBroadcastFromEachRoot(t *testing.T) {
	const n = 5
	s := NewSPTD(n, 64)
	for root := 0; root < n; root++ {
		bufs := make([][]byte, n)
		runCollective(n, func(tid int) {
			buf := make([]byte, 8)
			if tid == root {
				binary.LittleEndian.PutUint64(buf, uint64(1000+root))
			}
			s.Broadcast(tid, root, buf, nil, spinWait)
			bufs[tid] = buf
		})
		for tid := 0; tid < n; tid++ {
			if got := binary.LittleEndian.Uint64(bufs[tid]); got != uint64(1000+root) {
				t.Fatalf("root %d tid %d: got %d", root, tid, got)
			}
		}
	}
}

func TestSPTDBroadcastBridge(t *testing.T) {
	const n = 2
	s := NewSPTD(n, 8)
	calls := 0
	runCollective(n, func(tid int) {
		buf := make([]byte, 8)
		s.Broadcast(tid, 0, buf, func([]byte) { calls++ }, spinWait)
	})
	if calls != 1 {
		t.Fatalf("bridge called %d times, want 1", calls)
	}
}

func TestSPTDMixedCollectiveSequence(t *testing.T) {
	// Exercise buffer-reuse safety across alternating collective kinds.
	const n = 4
	s := NewSPTD(n, 256)
	for round := 0; round < 30; round++ {
		results := make([]int64, n)
		runCollective(n, func(tid int) {
			out := make([]byte, 8)
			s.Allreduce(tid, i64bytes(1), out, OpSum, Int64, nil, spinWait)
			s.Barrier(tid, spinWait)
			buf := make([]byte, 8)
			root := round % n
			if tid == root {
				copy(buf, out)
			}
			s.Broadcast(tid, root, buf, nil, spinWait)
			results[tid] = int64(binary.LittleEndian.Uint64(buf))
		})
		for tid, v := range results {
			if v != int64(n) {
				t.Fatalf("round %d tid %d: got %d, want %d", round, tid, v, n)
			}
		}
	}
}

func TestSPTDPanicsOnOversizedPayload(t *testing.T) {
	s := NewSPTD(2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized payload")
		}
	}()
	s.Allreduce(0, make([]byte, 16), make([]byte, 16), OpSum, Uint8, nil, spinWait)
}

func TestNewSPTDPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero threads")
		}
	}()
	NewSPTD(0, 8)
}

func TestPartitionedReducerChunkRange(t *testing.T) {
	p := NewPartitionedReducer(4, 1<<20)
	// 4096 bytes = 64 cachelines over 4 threads -> 16 lines = 1024 B each.
	total := 0
	prev := 0
	for tid := 0; tid < 4; tid++ {
		lo, hi := p.ChunkRange(tid, 4096)
		if lo != prev {
			t.Fatalf("tid %d: lo = %d, want %d (contiguous)", tid, lo, prev)
		}
		if (hi-lo)%64 != 0 {
			t.Fatalf("tid %d: chunk %d not a cacheline multiple", tid, hi-lo)
		}
		total += hi - lo
		prev = hi
	}
	if total != 4096 {
		t.Fatalf("chunks cover %d bytes, want 4096", total)
	}
}

// Property: ChunkRange always partitions [0, n) exactly, in cacheline
// multiples except possibly the tail.
func TestChunkRangePartitionProperty(t *testing.T) {
	f := func(nthreadsU uint8, nU uint16) bool {
		nt := int(nthreadsU%64) + 1
		n := int(nU)
		p := NewPartitionedReducer(nt, n+1)
		prev := 0
		for tid := 0; tid < nt; tid++ {
			lo, hi := p.ChunkRange(tid, n)
			if lo > hi || lo != min(prev, n) {
				return false
			}
			prev = hi
		}
		return prev >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedReducerAllreduce(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 8
	const elems = 1024 // 8 KiB payload
	p := NewPartitionedReducer(n, elems*8)
	for round := 0; round < 5; round++ {
		outs := make([][]float64, n)
		runCollective(n, func(tid int) {
			vals := make([]float64, elems)
			for i := range vals {
				vals[i] = float64(tid + i + round)
			}
			in := f64bytes(vals...)
			out := make([]byte, len(in))
			p.Allreduce(tid, in, out, OpSum, Float64, nil, spinWait)
			outs[tid] = bytesToF64(out)
		})
		for tid := 0; tid < n; tid++ {
			for i := 0; i < elems; i += 97 {
				want := 0.0
				for t2 := 0; t2 < n; t2++ {
					want += float64(t2 + i + round)
				}
				if outs[tid][i] != want {
					t.Fatalf("round %d tid %d elem %d: got %v, want %v", round, tid, i, outs[tid][i], want)
				}
			}
		}
	}
}

func TestPartitionedReducerMoreThreadsThanLines(t *testing.T) {
	// 64 B payload = 1 cacheline but 8 threads: most threads have no fold work.
	const n = 8
	p := NewPartitionedReducer(n, 64)
	outs := make([][]float64, n)
	runCollective(n, func(tid int) {
		in := f64bytes(1, 2, 3, 4, 5, 6, 7, 8)
		out := make([]byte, 64)
		p.Allreduce(tid, in, out, OpMax, Float64, nil, spinWait)
		outs[tid] = bytesToF64(out)
	})
	for tid := 0; tid < n; tid++ {
		if outs[tid][7] != 8 || outs[tid][0] != 1 {
			t.Fatalf("tid %d: got %v", tid, outs[tid])
		}
	}
}

func TestPartitionedReducerBridge(t *testing.T) {
	const n = 2
	p := NewPartitionedReducer(n, 64)
	outs := make([][]float64, n)
	runCollective(n, func(tid int) {
		in := f64bytes(1)
		out := make([]byte, 8)
		p.Allreduce(tid, in, out, OpSum, Float64, func(acc []byte) {
			v := math.Float64frombits(binary.LittleEndian.Uint64(acc))
			binary.LittleEndian.PutUint64(acc, math.Float64bits(v*100))
		}, spinWait)
		outs[tid] = bytesToF64(out)
	})
	for tid := 0; tid < n; tid++ {
		if outs[tid][0] != 200 {
			t.Fatalf("tid %d: got %v, want 200", tid, outs[tid][0])
		}
	}
}

func TestPartitionedReducerPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad ctor", func() { NewPartitionedReducer(0, 0) })
	p := NewPartitionedReducer(1, 8)
	mustPanic("oversized", func() { p.Allreduce(0, make([]byte, 16), make([]byte, 16), OpSum, Uint8, nil, spinWait) })
	mustPanic("short out", func() { p.Allreduce(0, make([]byte, 8), make([]byte, 4), OpSum, Uint8, nil, spinWait) })
}

func TestCounterBarrier(t *testing.T) {
	const n = 6
	b := NewCounterBarrier(n)
	var phase [n]int
	for round := 0; round < 20; round++ {
		runCollective(n, func(tid int) {
			phase[tid]++
			b.Wait(tid, spinWait)
			for t2 := 0; t2 < n; t2++ {
				if phase[t2] != round+1 {
					t.Errorf("round %d: phase[%d] = %d", round, t2, phase[t2])
				}
			}
			b.Wait(tid, spinWait)
		})
	}
}

func TestNewCounterBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCounterBarrier(0)
}

// Ablation benches: SPTD pairwise barrier vs shared counter barrier.
func BenchmarkAblationSPTDvsCounter(b *testing.B) {
	const n = 4
	b.Run("sptd", func(b *testing.B) {
		s := NewSPTD(n, 8)
		benchBarrier(b, n, func(tid int) { s.Barrier(tid, spinWait) })
	})
	b.Run("counter", func(b *testing.B) {
		c := NewCounterBarrier(n)
		benchBarrier(b, n, func(tid int) { c.Wait(tid, spinWait) })
	})
}

func benchBarrier(b *testing.B, n int, barrier func(tid int)) {
	var wg sync.WaitGroup
	b.ResetTimer()
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				barrier(tid)
			}
		}(tid)
	}
	wg.Wait()
}

func BenchmarkSPTDAllreduce8B(b *testing.B) {
	const n = 4
	s := NewSPTD(n, 8)
	var wg sync.WaitGroup
	b.ResetTimer()
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			in := f64bytes(float64(tid))
			out := make([]byte, 8)
			for i := 0; i < b.N; i++ {
				s.Allreduce(tid, in, out, OpSum, Float64, nil, spinWait)
			}
		}(tid)
	}
	wg.Wait()
}

func BenchmarkPartitionedAllreduce64KB(b *testing.B) {
	const n = 4
	p := NewPartitionedReducer(n, 64<<10)
	var wg sync.WaitGroup
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			in := make([]byte, 64<<10)
			out := make([]byte, 64<<10)
			for i := 0; i < b.N; i++ {
				p.Allreduce(tid, in, out, OpSum, Float64, nil, spinWait)
			}
		}(tid)
	}
	wg.Wait()
}

func TestCASBarrier(t *testing.T) {
	const n = 6
	b := NewCASBarrier(n)
	var phase [n]int
	for round := 0; round < 25; round++ {
		runCollective(n, func(tid int) {
			phase[tid]++
			b.Wait(tid, spinWait)
			for t2 := 0; t2 < n; t2++ {
				if phase[t2] != round+1 {
					t.Errorf("round %d: phase[%d] = %d", round, t2, phase[t2])
				}
			}
			b.Wait(tid, spinWait)
		})
	}
}

func TestNewCASBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCASBarrier(0)
}

// Ablation: static leader (SPTD) vs CAS first-thread-in election (the paper
// kept static election after measuring both).
func BenchmarkAblationLeaderElection(b *testing.B) {
	const n = 4
	b.Run("static-sptd", func(b *testing.B) {
		s := NewSPTD(n, 8)
		benchBarrier(b, n, func(tid int) { s.Barrier(tid, spinWait) })
	})
	b.Run("cas-first-in", func(b *testing.B) {
		c := NewCASBarrier(n)
		benchBarrier(b, n, func(tid int) { c.Wait(tid, spinWait) })
	})
}
