// Package collective implements Pure's lock-free intra-node collective data
// structures (paper §4.2): the Sequenced Per-Thread Dropbox (SPTD) used for
// barrier/broadcast/reduce and small all-reduce payloads, and the
// Partitioned Reducer used for large all-reduce payloads, plus the
// element-wise reduction kernels they share with the rest of the runtime.
//
// Every structure is driven collectively: the N threads of one node (or one
// communicator's node-local group) each call the same method with their own
// thread id.  Synchronization is purely via per-thread atomic sequence
// numbers ("pairwise synchronization"), which the paper found to vastly
// outperform shared atomic counters; a shared-counter variant is kept in
// this package for the ablation benchmarks.
package collective

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Op is a reduction operator, semantically matching the MPI_Op of the same name.
type Op int

const (
	OpSum Op = iota
	OpProd
	OpMin
	OpMax
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// DType is the element type of a typed payload, matching MPI datatypes.
type DType int

const (
	Float64 DType = iota
	Float32
	Int64
	Int32
	Uint8
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Float64, Int64:
		return 8
	case Float32, Int32:
		return 4
	case Uint8:
		return 1
	default:
		panic(fmt.Sprintf("collective: unknown dtype %d", int(d)))
	}
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Int64:
		return "int64"
	case Int32:
		return "int32"
	case Uint8:
		return "uint8"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Accumulate folds src into dst element-wise: dst[i] = op(dst[i], src[i]).
// Both slices must have the same length, a multiple of dt.Size().  The inner
// loops are written per-type over 8-byte lanes so the compiler can keep the
// accumulation in registers; this is the portable stand-in for the paper's
// vectorized cacheline-aligned reduction loops.
func Accumulate(dst, src []byte, op Op, dt DType) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("collective: Accumulate length mismatch %d != %d", len(dst), len(src)))
	}
	es := dt.Size()
	if len(dst)%es != 0 {
		panic(fmt.Sprintf("collective: payload of %d bytes is not a multiple of %s size %d", len(dst), dt, es))
	}
	n := len(dst) / es
	switch dt {
	case Float64:
		for i := 0; i < n; i++ {
			o := i * 8
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[o:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[o:]))
			binary.LittleEndian.PutUint64(dst[o:], math.Float64bits(foldF64(a, b, op)))
		}
	case Float32:
		for i := 0; i < n; i++ {
			o := i * 4
			a := math.Float32frombits(binary.LittleEndian.Uint32(dst[o:]))
			b := math.Float32frombits(binary.LittleEndian.Uint32(src[o:]))
			binary.LittleEndian.PutUint32(dst[o:], math.Float32bits(foldF32(a, b, op)))
		}
	case Int64:
		for i := 0; i < n; i++ {
			o := i * 8
			a := int64(binary.LittleEndian.Uint64(dst[o:]))
			b := int64(binary.LittleEndian.Uint64(src[o:]))
			binary.LittleEndian.PutUint64(dst[o:], uint64(foldI64(a, b, op)))
		}
	case Int32:
		for i := 0; i < n; i++ {
			o := i * 4
			a := int32(binary.LittleEndian.Uint32(dst[o:]))
			b := int32(binary.LittleEndian.Uint32(src[o:]))
			binary.LittleEndian.PutUint32(dst[o:], uint32(foldI64(int64(a), int64(b), op)))
		}
	case Uint8:
		for i := range dst {
			dst[i] = foldU8(dst[i], src[i], op)
		}
	default:
		panic(fmt.Sprintf("collective: unknown dtype %d", int(dt)))
	}
}

func foldF64(a, b float64, op Op) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	}
	panic("collective: unknown op")
}

func foldF32(a, b float32, op Op) float32 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	}
	panic("collective: unknown op")
}

func foldI64(a, b int64, op Op) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		return min(a, b)
	case OpMax:
		return max(a, b)
	}
	panic("collective: unknown op")
}

func foldU8(a, b byte, op Op) byte {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		return min(a, b)
	case OpMax:
		return max(a, b)
	}
	panic("collective: unknown op")
}

// WaitFunc blocks until cond returns true.  The Pure runtime passes an
// SSW-Loop waiter (spin, steal a task chunk, yield); tests pass a simple
// spin-yield loop.  See internal/ssw.
type WaitFunc func(cond func() bool)
