package collective

import (
	"encoding/binary"
	"math"
	"runtime"
	"testing"
)

// TestSPTDSequenceReuseStress hammers one SPTD instance with thousands of
// back-to-back collectives of mixed kinds on the same dropboxes.  The
// sequence numbers that order each round are per-thread monotonic counters;
// a stale-sequence bug (a thread observing round r's payload as round r+1's,
// or reusing a dropbox before every peer is finished with it) shows up as a
// wrong reduction value or a torn broadcast.  Run under -race this also
// exercises the acquire/release pairing on the seq/ack words.
func TestSPTDSequenceReuseStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	// Sized for the worst case in CI: a single-CPU box under -race, where
	// every contended collective round costs tens of milliseconds.
	const n = 4
	rounds := 250
	if testing.Short() {
		rounds = 50
	}
	s := NewSPTD(n, 8)
	errs := make(chan string, n)

	runCollective(n, func(tid int) {
		in := make([]byte, 8)
		out := make([]byte, 8)
		calls := uint64(0)
		for r := 0; r < rounds; r++ {
			// Allreduce with per-round distinct inputs: sum must match every
			// round or a stale value leaked across the sequence boundary.
			binary.LittleEndian.PutUint64(in, uint64((tid+1)*(r+1)))
			s.Allreduce(tid, in, out, OpSum, Int64, nil, spinWait)
			calls++
			want := uint64((r + 1) * n * (n + 1) / 2)
			if got := binary.LittleEndian.Uint64(out); got != want {
				errs <- "allreduce round mismatch"
				return
			}

			// Every third round, a broadcast from a rotating root keeps the
			// dropbox payload area churning with a different traffic pattern.
			if r%3 == 0 {
				root := r % n
				buf := make([]byte, 8)
				if tid == root {
					binary.LittleEndian.PutUint64(buf, uint64(r)|0xcafe0000)
				}
				s.Broadcast(tid, root, buf, nil, spinWait)
				calls++
				if got := binary.LittleEndian.Uint64(buf); got != uint64(r)|0xcafe0000 {
					errs <- "broadcast round mismatch"
					return
				}
			}
			if r%5 == 0 {
				s.Barrier(tid, spinWait)
				calls++
			}
		}
		// Each collective call must advance tid's round counter exactly once;
		// any other count means a sequence number was skipped or reused.
		if got := s.Round(tid); got != calls {
			errs <- "round counter drift"
		}
	})
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPartitionedReducerReuseStress reuses one PartitionedReducer for many
// rounds and checks both the values and the per-thread round counters.
func TestPartitionedReducerReuseStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		n     = 4
		elems = 256
	)
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	p := NewPartitionedReducer(n, elems*8)
	errs := make(chan string, n)

	runCollective(n, func(tid int) {
		vals := make([]float64, elems)
		out := make([]byte, elems*8)
		for r := 0; r < rounds; r++ {
			for i := range vals {
				// Dyadic values: the partitioned fold is exact regardless of
				// which thread reduces which cacheline.
				vals[i] = float64(tid)*0.5 + float64(r%7)*0.25
			}
			p.Allreduce(tid, f64bytes(vals...), out, OpSum, Float64, nil, spinWait)
			want := (0.5*float64(n*(n-1))/2 + float64(n)*float64(r%7)*0.25)
			for i := 0; i < elems; i++ {
				got := binary.LittleEndian.Uint64(out[i*8:])
				if math.Float64frombits(got) != want {
					errs <- "partitioned allreduce mismatch"
					return
				}
			}
		}
		if got := p.Round(tid); got != uint64(rounds) {
			errs <- "partitioned round counter drift"
		}
	})
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
