package collective

import (
	"fmt"
	"sync/atomic"
)

// pad separates atomics owned by different threads so sequence numbers never
// false-share (64-byte cachelines on the paper's Haswell nodes).
type pad [64]byte

// dropbox is one thread's Sequenced Per-Thread Dropbox (paper Fig. 2): a
// small payload area plus an atomic sequence number.  The owning (non-leader)
// thread writes the payload and then stores the sequence; the leader loads
// the sequence and, when it matches the current round, consumes the payload.
// ack carries the reverse direction: the thread stores the round it has fully
// completed, which tells the next round's shared-buffer writer that reuse is
// safe.
type dropbox struct {
	seq atomic.Uint64
	_   pad
	ack atomic.Uint64
	_   pad
	buf []byte // small-data payload area, cap = maxPayload
}

// SPTD is the Sequenced Per-Thread Dropbox collective structure for the
// nthreads ranks co-resident on one node (within one communicator).  One
// instance is shared by those threads and reused for every collective round;
// rounds are counted per-thread and advance in lockstep because collectives
// must be invoked in the same order by every rank (the usual MPI rule).
//
// Thread 0 is the statically elected leader (the paper found static election
// beats a CAS-based "first thread in" race; see the ablation bench).
type SPTD struct {
	nthreads   int
	maxPayload int
	boxes      []dropbox
	// leader zone: result payload and its publication sequence.
	resultSeq atomic.Uint64
	_         pad
	result    []byte
	// per-thread round counters, padded.
	rounds []paddedCounter
}

// paddedCounter is a per-thread round counter.  Only the owning thread
// advances it, but the observability layer (and watchdog diagnostics) may
// read any thread's counter from another goroutine, so the value is atomic:
// the owner's uncontended Add costs the same as a plain increment plus a
// lock-prefix, and observers get a well-defined snapshot instead of a data
// race (a stale-read bug the deterministic checker's audit surfaced).
type paddedCounter struct {
	v atomic.Uint64
	_ [56]byte
}

// NewSPTD builds the structure for nthreads threads exchanging payloads of up
// to maxPayload bytes (the paper uses SPTD for arrays up to 2 KiB; larger
// reductions switch to the Partitioned Reducer).
func NewSPTD(nthreads, maxPayload int) *SPTD {
	if nthreads <= 0 {
		panic(fmt.Sprintf("collective: NewSPTD nthreads must be positive, got %d", nthreads))
	}
	s := &SPTD{
		nthreads:   nthreads,
		maxPayload: maxPayload,
		boxes:      make([]dropbox, nthreads),
		result:     make([]byte, maxPayload),
		rounds:     make([]paddedCounter, nthreads),
	}
	for i := range s.boxes {
		s.boxes[i].buf = make([]byte, maxPayload)
	}
	return s
}

// NThreads returns the number of participating threads.
func (s *SPTD) NThreads() int { return s.nthreads }

// Round returns how many collective rounds thread tid has completed on this
// structure.  Each thread owns its counter, so the value is exact when read
// by tid itself and an atomic snapshot otherwise; the observability layer
// records it with SPTD-path collective trace events.
func (s *SPTD) Round(tid int) uint64 { return s.rounds[tid].v.Load() }

// nextRound advances and returns tid's round number (1-based).
func (s *SPTD) nextRound(tid int) uint64 {
	return s.rounds[tid].v.Add(1)
}

// finish records that tid has completed round r.
func (s *SPTD) finish(tid int, r uint64) { s.boxes[tid].ack.Store(r) }

// waitAllFinished blocks until every thread has completed round r.  Writers
// of the shared result buffer call this with the previous round before
// overwriting, so a slow thread still copying out can never observe a torn
// result.
func (s *SPTD) waitAllFinished(r uint64, wait WaitFunc) {
	for t := 0; t < s.nthreads; t++ {
		b := &s.boxes[t]
		wait(func() bool { return b.ack.Load() >= r })
	}
}

// Barrier synchronizes the node-local threads: pairwise arrive at the leader,
// pairwise release from the leader.  No payload moves.
func (s *SPTD) Barrier(tid int, wait WaitFunc) {
	s.BarrierBridged(tid, nil, wait)
}

// BarrierBridged is Barrier with a cross-node hook: when every local thread
// has arrived, the leader invokes bridge (e.g. the inter-node barrier over
// MPI in the paper, netsim here) before releasing the local threads.
func (s *SPTD) BarrierBridged(tid int, bridge func(), wait WaitFunc) {
	r := s.nextRound(tid)
	if tid == 0 {
		for t := 1; t < s.nthreads; t++ {
			b := &s.boxes[t]
			wait(func() bool { return b.seq.Load() >= r })
		}
		if bridge != nil {
			bridge()
		}
		schedpoint("sptd:barrier:publish-result")
		s.resultSeq.Store(r)
	} else {
		schedpoint("sptd:barrier:arrive")
		s.boxes[tid].seq.Store(r)
		wait(func() bool { return s.resultSeq.Load() >= r })
	}
	schedpoint("sptd:barrier:finish")
	s.finish(tid, r)
}

// Reduce folds every thread's in payload with op/dt; the result lands in
// root's out buffer.  bridge, if non-nil, runs on the leader after the local
// reduction with the locally reduced bytes; it may rewrite them in place with
// the cross-node result (MPI_Reduce at node scope in the paper).
func (s *SPTD) Reduce(tid, root int, in, out []byte, op Op, dt DType, bridge func([]byte), wait WaitFunc) {
	if len(in) > s.maxPayload {
		panic(fmt.Sprintf("collective: SPTD payload %d exceeds max %d", len(in), s.maxPayload))
	}
	r := s.nextRound(tid)
	if tid == 0 {
		// Gather and fold every non-leader's dropbox payload.
		s.waitAllFinished(r-1, wait) // result buffer reuse safety
		schedpoint("sptd:reduce:leader-fold")
		acc := s.result[:len(in)]
		copy(acc, in)
		for t := 1; t < s.nthreads; t++ {
			b := &s.boxes[t]
			wait(func() bool { return b.seq.Load() >= r })
			schedpoint("sptd:reduce:consume-box")
			Accumulate(acc, b.buf[:len(in)], op, dt)
		}
		if bridge != nil {
			bridge(acc)
		}
		schedpoint("sptd:reduce:publish-result")
		s.resultSeq.Store(r)
		if root == 0 {
			copy(out, acc)
		}
	} else {
		b := &s.boxes[tid]
		schedpoint("sptd:reduce:write-box")
		copy(b.buf[:len(in)], in)
		schedpoint("sptd:reduce:publish-box")
		b.seq.Store(r)
		if tid == root {
			wait(func() bool { return s.resultSeq.Load() >= r })
			schedpoint("sptd:reduce:copy-out")
			copy(out, s.result[:len(in)])
		}
	}
	schedpoint("sptd:reduce:finish")
	s.finish(tid, r)
	// The leader must not return before the root has copied the result out;
	// otherwise the leader could start the next round and overwrite it.  The
	// waitAllFinished(r-1) gate above provides exactly that protection, so no
	// extra synchronization is needed here.
}

// Allreduce folds every thread's in payload and delivers the result to every
// thread's out buffer.  This is the paper's small-data all-reduce (§4.2.1):
// flat-combining through the leader with pairwise sequence synchronization.
func (s *SPTD) Allreduce(tid int, in, out []byte, op Op, dt DType, bridge func([]byte), wait WaitFunc) {
	if len(in) > s.maxPayload {
		panic(fmt.Sprintf("collective: SPTD payload %d exceeds max %d", len(in), s.maxPayload))
	}
	r := s.nextRound(tid)
	if tid == 0 {
		s.waitAllFinished(r-1, wait)
		schedpoint("sptd:allreduce:leader-fold")
		acc := s.result[:len(in)]
		copy(acc, in)
		for t := 1; t < s.nthreads; t++ {
			b := &s.boxes[t]
			wait(func() bool { return b.seq.Load() >= r })
			schedpoint("sptd:allreduce:consume-box")
			Accumulate(acc, b.buf[:len(in)], op, dt)
		}
		if bridge != nil {
			bridge(acc)
		}
		schedpoint("sptd:allreduce:publish-result")
		s.resultSeq.Store(r)
		copy(out, acc)
	} else {
		b := &s.boxes[tid]
		schedpoint("sptd:allreduce:write-box")
		copy(b.buf[:len(in)], in)
		schedpoint("sptd:allreduce:publish-box")
		b.seq.Store(r)
		wait(func() bool { return s.resultSeq.Load() >= r })
		schedpoint("sptd:allreduce:copy-out")
		copy(out, s.result[:len(in)])
	}
	schedpoint("sptd:allreduce:finish")
	s.finish(tid, r)
}

// Broadcast delivers root's buf to every thread's buf.  The root writes the
// shared result area (after confirming the previous round fully drained) and
// publishes it with the result sequence; everyone else copies out.
func (s *SPTD) Broadcast(tid, root int, buf []byte, bridge func([]byte), wait WaitFunc) {
	if len(buf) > s.maxPayload {
		panic(fmt.Sprintf("collective: SPTD payload %d exceeds max %d", len(buf), s.maxPayload))
	}
	r := s.nextRound(tid)
	if tid == root {
		s.waitAllFinished(r-1, wait)
		if bridge != nil {
			bridge(buf)
		}
		schedpoint("sptd:bcast:write-result")
		copy(s.result[:len(buf)], buf)
		schedpoint("sptd:bcast:publish-result")
		s.resultSeq.Store(r)
	} else {
		wait(func() bool { return s.resultSeq.Load() >= r })
		schedpoint("sptd:bcast:copy-out")
		copy(buf, s.result[:len(buf)])
	}
	schedpoint("sptd:bcast:finish")
	s.finish(tid, r)
}
