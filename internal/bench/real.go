package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/desmodels"
	"repro/internal/topology"
	"repro/mpibase"
	"repro/pure"
)

// runPurePlacedPair simulates the two-rank ping-pong with ranks placed at a
// chosen distance: 1 = same socket/different cores (shared L3), 2 =
// different sockets (cross NUMA).
func runPurePlacedPair(kind int, prog func(desmodels.VCtx)) (int64, error) {
	spec := topology.CoriSpec(1)
	var seats []topology.HWThread
	switch kind {
	case 1:
		seats = []topology.HWThread{{Node: 0, Socket: 0, Core: 0, Thread: 0}, {Node: 0, Socket: 0, Core: 5, Thread: 0}}
	default:
		seats = []topology.HWThread{{Node: 0, Socket: 0, Core: 0, Thread: 0}, {Node: 0, Socket: 1, Core: 0, Thread: 0}}
	}
	place, err := topology.NewPlacement(spec, 2, 0, topology.Custom, seats)
	if err != nil {
		return 0, err
	}
	return desmodels.RunPurePlaced(place, costs, desmodels.PureOpts{}, prog)
}

// ---- Real-runtime microbenchmarks (measured on this host) ----

// medianOf runs f reps times and returns the median result, the paper's
// reporting convention ("taking the median result across 10 runs").
func medianOf(reps int, f func() int64) int64 {
	vals := make([]int64, reps)
	for i := range vals {
		runtime.GC() // keep collector pauses out of the timed region
		vals[i] = f()
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	return vals[len(vals)/2]
}

// RealHostPingPong measures the actual Pure and mpibase runtimes' two-rank
// round-trip time on this machine for a range of payloads.  The paper's
// placement axis cannot be reproduced here (no thread pinning across
// sockets on this host); the measurement validates the *protocol* gap the
// DES placement curves are calibrated against.
func RealHostPingPong(quick bool) Table {
	sizes := []int{8, 64, 1 << 10, 8 << 10, 64 << 10, 1 << 20}
	iters := 2000
	reps := 9
	if quick {
		sizes = []int{8, 1 << 10, 64 << 10}
		iters = 300
		reps = 5
	}
	tb := Table{
		ID:      "fig6real",
		Title:   "Real-runtime intra-node ping-pong on this host (validates Fig. 6's protocol gap)",
		Columns: []string{"payload", "mpibase-rt", "pure-rt", "speedup"},
		Notes: []string{
			"medians of repeated runs; on this single-core host neither runtime can exploit parallel spin-waiting, so near-parity is expected — the protocol gap appears with real cores and in the DES placement curves",
		},
	}
	for _, sz := range sizes {
		it := iters
		if sz >= 64<<10 {
			it = iters / 10
		}
		mpiNs := medianOf(reps, func() int64 { return realMPIPingPong(sz, it) })
		pureNs := medianOf(reps, func() int64 { return realPurePingPong(sz, it) })
		tb.Rows = append(tb.Rows, []string{
			bytesLabel(sz), ns(mpiNs), ns(pureNs), fmt.Sprintf("%.2fx", float64(mpiNs)/float64(pureNs)),
		})
	}
	return tb
}

// realPurePingPong returns the mean round-trip ns over iters exchanges.
func realPurePingPong(size, iters int) int64 {
	var elapsed time.Duration
	err := pure.Run(pure.Config{NRanks: 2}, func(r *pure.Rank) {
		c := r.World()
		buf := make([]byte, size)
		c.Barrier()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if r.ID() == 0 {
				c.Send(buf, 1, 0)
				c.Recv(buf, 1, 1)
			} else {
				c.Recv(buf, 0, 0)
				c.Send(buf, 0, 1)
			}
		}
		if r.ID() == 0 {
			elapsed = time.Since(start)
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed.Nanoseconds() / int64(iters)
}

// realMPIPingPong is the mpibase counterpart.
func realMPIPingPong(size, iters int) int64 {
	var elapsed time.Duration
	err := mpibase.Run(mpibase.Config{NRanks: 2}, func(p *mpibase.Proc) {
		c := p.World()
		buf := make([]byte, size)
		c.Barrier()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if p.ID() == 0 {
				c.Send(buf, 1, 0)
				c.Recv(buf, 1, 1)
			} else {
				c.Recv(buf, 0, 0)
				c.Send(buf, 0, 1)
			}
		}
		if p.ID() == 0 {
			elapsed = time.Since(start)
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed.Nanoseconds() / int64(iters)
}

// RealHostBarrier measures real-runtime barriers at small rank counts
// (Fig. 7b's single-node leg on this host).
func RealHostBarrier(quick bool) Table {
	scales := []int{2, 4, 8, 16}
	iters := 500
	if quick {
		scales = []int{2, 8}
		iters = 100
	}
	tb := Table{
		ID:      "fig7breal",
		Title:   "Real-runtime barrier on this host",
		Columns: []string{"ranks", "mpibase-rt", "pure-rt", "speedup"},
	}
	for _, n := range scales {
		m := medianOf(5, func() int64 {
			var mpiD time.Duration
			if err := mpibase.Run(mpibase.Config{NRanks: n}, func(p *mpibase.Proc) {
				c := p.World()
				c.Barrier()
				start := time.Now()
				for i := 0; i < iters; i++ {
					c.Barrier()
				}
				if p.ID() == 0 {
					mpiD = time.Since(start)
				}
			}); err != nil {
				panic(err)
			}
			return mpiD.Nanoseconds() / int64(iters)
		})
		p := medianOf(5, func() int64 {
			var pureD time.Duration
			if err := pure.Run(pure.Config{NRanks: n}, func(r *pure.Rank) {
				c := r.World()
				c.Barrier()
				start := time.Now()
				for i := 0; i < iters; i++ {
					c.Barrier()
				}
				if r.ID() == 0 {
					pureD = time.Since(start)
				}
			}); err != nil {
				panic(err)
			}
			return pureD.Nanoseconds() / int64(iters)
		})
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(n), ns(m), ns(p), fmt.Sprintf("%.2fx", float64(m)/float64(p))})
	}
	return tb
}

// AppCThreshold reproduces Appendix C: the buffered (PBQ) vs rendezvous
// protocol crossover, measured on the real Pure runtime by sweeping the
// SmallMsgMax threshold against payload sizes around it.
func AppCThreshold(quick bool) Table {
	payloads := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	iters := 2000
	reps := 9
	if quick {
		payloads = []int{4 << 10, 16 << 10}
		iters = 300
		reps = 5
	}
	tb := Table{
		ID:      "appC",
		Title:   "Buffered (PBQ) vs rendezvous per payload (Appendix C threshold study)",
		Columns: []string{"payload", "buffered-rt", "rendezvous-rt", "faster"},
		Notes: []string{
			"buffered: threshold above payload (eager path); rendezvous: threshold below payload",
		},
	}
	for _, sz := range payloads {
		it := iters
		if sz >= 32<<10 {
			it = iters / 4
		}
		buffered := medianOf(reps, func() int64 { return realPureThresholdPingPong(sz, sz*2, it) })
		rendezvous := medianOf(reps, func() int64 { return realPureThresholdPingPong(sz, sz/2, it) })
		faster := "buffered"
		if rendezvous < buffered {
			faster = "rendezvous"
		}
		tb.Rows = append(tb.Rows, []string{bytesLabel(sz), ns(buffered), ns(rendezvous), faster})
	}
	return tb
}

func realPureThresholdPingPong(size, threshold, iters int) int64 {
	var elapsed time.Duration
	err := pure.Run(pure.Config{NRanks: 2, SmallMsgMax: threshold}, func(r *pure.Rank) {
		c := r.World()
		buf := make([]byte, size)
		c.Barrier()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if r.ID() == 0 {
				c.Send(buf, 1, 0)
				c.Recv(buf, 1, 1)
			} else {
				c.Recv(buf, 0, 0)
				c.Send(buf, 0, 1)
			}
		}
		if r.ID() == 0 {
			elapsed = time.Since(start)
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed.Nanoseconds() / int64(iters)
}

// AblationPBQSlots measures PBQ depth sensitivity on the real runtime
// (paper: "not a material performance driver").
func AblationPBQSlots(quick bool) Table {
	slots := []int{2, 4, 16, 64, 256}
	iters := 2000
	if quick {
		slots = []int{2, 16, 64}
		iters = 300
	}
	tb := Table{
		ID:      "ablation-pbq",
		Title:   "PBQ slot-count ablation (paper: slot count not a material driver)",
		Columns: []string{"slots", "pingpong-rt"},
	}
	for _, s := range slots {
		rt := medianOf(5, func() int64 {
			var elapsed time.Duration
			err := pure.Run(pure.Config{NRanks: 2, PBQSlots: s}, func(r *pure.Rank) {
				c := r.World()
				buf := make([]byte, 64)
				c.Barrier()
				start := time.Now()
				for i := 0; i < iters; i++ {
					if r.ID() == 0 {
						c.Send(buf, 1, 0)
						c.Recv(buf, 1, 1)
					} else {
						c.Recv(buf, 0, 0)
						c.Send(buf, 0, 1)
					}
				}
				if r.ID() == 0 {
					elapsed = time.Since(start)
				}
			})
			if err != nil {
				panic(err)
			}
			return elapsed.Nanoseconds() / int64(iters)
		})
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(s), ns(rt)})
	}
	return tb
}

// All returns every experiment in paper order.
func All(quick bool) []Table {
	return []Table{
		Fig1Timeline(quick),
		Sec2Stencil(quick),
		Fig4DT(quick),
		Fig5aCoMD(quick),
		Fig5bCoMDImbalanced(quick),
		Fig5cCoMDDynamic(quick),
		Fig5dMiniAMR(quick),
		Fig6PingPong(quick),
		RealHostPingPong(quick),
		Fig7aAllreduce(quick),
		Fig7bBarrierNode(quick),
		RealHostBarrier(quick),
		Fig7cBarrierScale(quick),
		AppAExtraCollectives(quick),
		AppCThreshold(quick),
		AblationPBQSlots(quick),
		RMAHalo(quick),
		ShmemPGAS(quick),
		StatsdPipeline(quick),
	}
}

// ByID returns the experiment runner for an id, or nil.
func ByID(id string) func(bool) Table {
	m := map[string]func(bool) Table{
		"fig1":         Fig1Timeline,
		"sec2":         Sec2Stencil,
		"fig4":         Fig4DT,
		"fig5a":        Fig5aCoMD,
		"fig5b":        Fig5bCoMDImbalanced,
		"fig5c":        Fig5cCoMDDynamic,
		"fig5d":        Fig5dMiniAMR,
		"fig6":         Fig6PingPong,
		"fig6real":     RealHostPingPong,
		"fig7a":        Fig7aAllreduce,
		"fig7b":        Fig7bBarrierNode,
		"fig7breal":    RealHostBarrier,
		"fig7c":        Fig7cBarrierScale,
		"appA":         AppAExtraCollectives,
		"appC":         AppCThreshold,
		"ablation-pbq": AblationPBQSlots,
		"rma":          RMAHalo,
		"shmem":        ShmemPGAS,
		"statsd":       StatsdPipeline,
	}
	return m[id]
}
