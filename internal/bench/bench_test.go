package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllQuickExperimentsProduceTables(t *testing.T) {
	for _, tb := range All(true) {
		if tb.ID == "" || tb.Title == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
			t.Errorf("experiment %q produced an empty table: %+v", tb.ID, tb)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("%s: row width %d != %d columns: %v", tb.ID, len(row), len(tb.Columns), row)
			}
		}
	}
}

func TestByIDCoversAll(t *testing.T) {
	for _, tb := range All(true) {
		if ByID(tb.ID) == nil {
			t.Errorf("ByID(%q) missing", tb.ID)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown id should return nil")
	}
}

func TestRenderAndCSV(t *testing.T) {
	tb := Sec2Stencil(true)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "sec2") || !strings.Contains(out, "Pure + Tasks") {
		t.Errorf("render output missing content:\n%s", out)
	}
	buf.Reset()
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(tb.Rows) {
		t.Errorf("csv has %d lines, want %d", len(lines), 1+len(tb.Rows))
	}
}

func TestFormattersRoundNumbers(t *testing.T) {
	if ns(1500000000) != "1.5s" || ns(2500000) != "2.5ms" || ns(1500) != "1.5us" || ns(999) != "999ns" {
		t.Errorf("ns formatting wrong: %s %s %s %s", ns(1500000000), ns(2500000), ns(1500), ns(999))
	}
	if bytesLabel(4) != "4B" || bytesLabel(2048) != "2kB" || bytesLabel(1<<21) != "2MB" {
		t.Errorf("bytesLabel wrong")
	}
	if ratio(200, 100) != "2.00x" || ratio(1, 0) != "-" {
		t.Errorf("ratio wrong")
	}
}

func TestFig4SpeedupShapeInQuickMode(t *testing.T) {
	tb := Fig4DT(true)
	// Row: class A; columns: class, ranks, MPI, noTasks, +Tasks, +Helpers.
	row := tb.Rows[0]
	if row[0] != "A" || row[1] != "80" {
		t.Fatalf("unexpected row: %v", row)
	}
	for _, cell := range []string{row[3], row[4], row[5]} {
		if !strings.HasSuffix(cell, "x") {
			t.Errorf("speedup cell %q not a ratio", cell)
		}
	}
}
