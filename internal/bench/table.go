// Package bench regenerates every table and figure of the paper's
// evaluation (§5 and the appendices), printing the same rows/series the
// paper reports.  Application-scale experiments (Figs. 4, 5a-d, 7a/c) run on
// the discrete-event cluster simulator; latency microbenchmarks (Fig. 6,
// Fig. 7b, App. C) additionally run on the real runtimes on this host.
//
// Each experiment returns a Table; cmd/purebench prints them and writes
// CSV, and the repository's bench_test.go exposes each as a testing.B
// benchmark (in quick mode).
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result grid.
type Table struct {
	ID      string // e.g. "fig4"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as CSV (RFC-4180-ish; cells are simple tokens here).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ns formats a nanosecond count compactly.
func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.4gms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4gus", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// ratio formats a speedup.
func ratio(base, other int64) string {
	if other == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(other))
}

// bytesLabel formats a payload size like the paper's axes.
func bytesLabel(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dkB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
