package bench

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/pure"
)

// RMAHalo compares the two ways to run a bidirectional halo exchange on the
// real runtime: paired Isend/Irecv messages versus one-sided Put + Notify
// into the peer's window.  Intra-node the Put path is a single direct copy
// into the target's exposed memory plus an atomic flag update — no channel
// slot, no matching, no request objects — which is exactly the shared-memory
// advantage the paper argues one-sided operations expose.  The cross-node
// rows ride the same modeled wire for both variants.
func RMAHalo(quick bool) Table {
	sizes := []int{64, 1 << 10, 8 << 10, 64 << 10}
	iters := 2000
	reps := 9
	if quick {
		sizes = []int{64, 8 << 10}
		iters = 300
		reps = 5
	}
	tb := Table{
		ID:      "rma",
		Title:   "Halo exchange: two-sided Isend/Irecv vs one-sided Put+Notify",
		Columns: []string{"placement", "payload", "isend/irecv-rt", "put+notify-rt", "speedup"},
		Notes: []string{
			"per-iteration wall time for a 2-rank bidirectional edge exchange, medians of repeated runs",
			"intra-node Put is one direct copy into the peer's window; cross-node both variants ride the modeled wire",
		},
	}
	for _, placement := range []string{"same-node", "cross-node"} {
		for _, sz := range sizes {
			it := iters
			if sz >= 64<<10 {
				it = iters / 10
			}
			cfg := func() pure.Config {
				if placement == "same-node" {
					return pure.Config{NRanks: 2}
				}
				return pure.Config{
					NRanks:       2,
					Spec:         topology.Spec{Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
					RanksPerNode: 1,
					Net:          netsim.Config{LatencyNs: 200, BytesPerNs: 10, TimeScale: 50},
				}
			}
			msgNs := medianOf(reps, func() int64 { return realMsgHalo(cfg(), sz, it) })
			rmaNs := medianOf(reps, func() int64 { return realRMAHalo(cfg(), sz, it) })
			tb.Rows = append(tb.Rows, []string{
				placement, bytesLabel(sz), ns(msgNs), ns(rmaNs),
				fmt.Sprintf("%.2fx", float64(msgNs)/float64(rmaNs)),
			})
		}
	}
	return tb
}

// realMsgHalo times the two-sided exchange: both ranks Isend their edge and
// Irecv the peer's every iteration.
func realMsgHalo(cfg pure.Config, size, iters int) int64 {
	var elapsed time.Duration
	err := pure.Run(cfg, func(r *pure.Rank) {
		c := r.World()
		send := make([]byte, size)
		recv := make([]byte, size)
		peer := 1 - r.ID()
		c.Barrier()
		start := time.Now()
		for i := 0; i < iters; i++ {
			rq := c.Irecv(recv, peer, 0)
			sq := c.Isend(send, peer, 0)
			c.Waitall(rq, sq)
		}
		if r.ID() == 0 {
			elapsed = time.Since(start)
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed.Nanoseconds() / int64(iters)
}

// realRMAHalo times the one-sided exchange: both ranks Put their edge into
// the peer's window and flag it, then wait for the peer's flag (slot 0) and
// ack consumption (slot 1) so the next iteration may overwrite.
func realRMAHalo(cfg pure.Config, size, iters int) int64 {
	var elapsed time.Duration
	err := pure.Run(cfg, func(r *pure.Rank) {
		c := r.World()
		w := c.WinCreate(make([]byte, size))
		edge := make([]byte, size)
		peer := 1 - r.ID()
		c.Barrier()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if i > 0 {
				w.NotifyWait(1, 1) // peer consumed our previous put
			}
			w.Put(edge, peer, 0)
			w.Notify(peer, 0)
			w.NotifyWait(0, 1) // peer's edge has landed in our window
			w.Notify(peer, 1)
		}
		if r.ID() == 0 {
			elapsed = time.Since(start)
		}
		w.Free()
	})
	if err != nil {
		panic(err)
	}
	return elapsed.Nanoseconds() / int64(iters)
}
