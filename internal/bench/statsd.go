package bench

import (
	"fmt"
	"runtime"
	"time"

	appstatsd "repro/internal/apps/statsd"
	proto "repro/internal/statsd"
	"repro/pure"
)

// StatsdPipeline is the serving-workload experiment (ROADMAP item 3): the
// DogStatsD-style aggregation pipeline at several load shapes, reporting
// end-to-end events/sec.  The zipf rows are the skew-absorption comparison
// the paper's task-stealing argument predicts: identical hot-keyed load
// with the aggregator drain as a plain loop (nosteal) versus a stealable
// Pure Task (steal), where the ranks otherwise spinning in the rollup
// collective steal drain chunks instead.
func StatsdPipeline(quick bool) Table {
	events := int64(400_000)
	reps := 5
	if quick {
		events = 80_000
		reps = 3
	}
	tb := Table{
		ID:      "statsd",
		Title:   "Statsd pipeline: events/sec by load shape, steal-on vs steal-off",
		Columns: []string{"scenario", "events/s", "per-event", "stolen-chunks", "exact"},
		Notes: []string{
			"2 ingesters + 2 aggregators on shared memory, medians of repeated runs",
			"zipf rows run identical s=2.0 hot-keyed load with heavy drains; steal runs the drain as a Pure Task",
			"flush totals are zero-sum checksum-verified every run (exact=yes required)",
		},
	}
	type scenario struct {
		name  string
		procs int
		cfg   appstatsd.Config
	}
	zipf := func(steal bool) appstatsd.Config {
		return appstatsd.Config{
			Gen:         proto.GenConfig{ZipfS: 2.0},
			WorkScale:   2048,
			Subshards:   32,
			DrainEvents: 1 << 30, // stage whole rounds; drain at the rollup
			Rounds:      int(events/131072) + 1,
			Steal:       steal,
		}
	}
	zp := runtime.NumCPU()
	if zp < 2 {
		zp = 2 // the steal comparison needs a P for the thieves
	}
	for _, sc := range []scenario{
		{"uniform", 0, appstatsd.Config{}},
		{"zipf-nosteal", zp, zipf(false)},
		{"zipf-steal", zp, zipf(true)},
		{"drop-policy", 0, appstatsd.Config{Drop: true}},
	} {
		var stolen int64
		exact := true
		perEvent := medianOf(reps, func() int64 {
			res, elapsed := runStatsdOnce(sc.cfg, sc.procs, events)
			stolen = res.Stolen
			exact = exact && res.Exact
			return elapsed.Nanoseconds() / events
		})
		ex := "yes"
		if !exact {
			ex = "NO"
		}
		tb.Rows = append(tb.Rows, []string{
			sc.name,
			fmt.Sprintf("%.3g", 1e9/float64(perEvent)),
			ns(perEvent),
			fmt.Sprint(stolen),
			ex,
		})
	}
	return tb
}

// runStatsdOnce executes one pipeline run and returns rank 0's verified
// result plus the wall time.
func runStatsdOnce(cfg appstatsd.Config, procs int, events int64) (appstatsd.Result, time.Duration) {
	if procs == 0 {
		procs = runtime.NumCPU()
	}
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	cfg.Ingesters = 2
	cfg.Aggregators = 2
	cfg.Events = events
	cfg.Interner = proto.NewInterner(4096)
	var res appstatsd.Result
	start := time.Now()
	err := pure.Run(pure.Config{NRanks: 4}, func(r *pure.Rank) {
		got, err := appstatsd.Run(r, cfg)
		if err != nil {
			r.Abort(err)
		}
		if r.ID() == 0 {
			res = got
		}
	})
	if err != nil {
		panic(err)
	}
	return res, time.Since(start)
}
