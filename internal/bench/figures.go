package bench

import (
	"fmt"
	"strings"

	"repro/internal/desmodels"
	"repro/internal/workloads"
)

// costs is the calibrated cost model used by every DES experiment.
var costs = desmodels.Paper()

func must(t int64, err error) int64 {
	if err != nil {
		panic(fmt.Sprintf("bench: simulation failed: %v", err))
	}
	return t
}

// Sec2Stencil reproduces the §2 example: 32 ranks on one node; Pure's
// messaging alone vs MPI, then Pure Tasks.
func Sec2Stencil(quick bool) Table {
	iters := 50
	if quick {
		iters = 8
	}
	p := workloads.DefaultStencil(32, iters)
	mpiT := must(desmodels.RunMPI(32, 0, costs, workloads.Stencil(p)))
	pureT := must(desmodels.RunPure(32, 0, costs, desmodels.PureOpts{}, workloads.Stencil(p)))
	pt := p
	pt.UseTask = true
	taskT := must(desmodels.RunPure(32, 0, costs, desmodels.PureOpts{}, workloads.Stencil(pt)))
	return Table{
		ID:      "sec2",
		Title:   "rand-stencil, 32 ranks, 1 node (paper: ~10% messaging, >200% with tasks)",
		Columns: []string{"config", "runtime", "speedup-vs-MPI"},
		Rows: [][]string{
			{"MPI", ns(mpiT), "1.00x"},
			{"Pure (messages only)", ns(pureT), ratio(mpiT, pureT)},
			{"Pure + Tasks", ns(taskT), ratio(mpiT, taskT)},
		},
	}
}

// Fig4DT reproduces Figure 4: NAS DT (SH), classes A-D, speedup over MPI for
// Pure without tasks, with tasks, and (class A) with helper threads.
func Fig4DT(quick bool) Table {
	classes := []struct {
		letter  byte
		rpn     int
		helpers int // idle hardware threads per node (class A: 64-40=24)
	}{
		{'A', 40, 24},
		{'B', 64, 0},
		{'C', 64, 0},
		{'D', 16, 0},
	}
	if quick {
		classes = classes[:1]
	}
	tb := Table{
		ID:      "fig4",
		Title:   "DT: Pure speedup over MPI baseline (paper: msgs 1.11-1.25x, tasks 1.7-2.5x, +helpers A: 2.3->2.6x)",
		Columns: []string{"class", "ranks", "MPI", "Pure-noTasks", "Pure+Tasks", "Pure+Tasks+Helpers"},
	}
	for _, cl := range classes {
		p, err := workloads.DTClass(cl.letter)
		if err != nil {
			panic(err)
		}
		if quick {
			p.Waves = 2
		}
		n := p.Width * p.Layers
		mpiT := must(desmodels.RunMPI(n, cl.rpn, costs, workloads.DT(p)))
		pureT := must(desmodels.RunPure(n, cl.rpn, costs, desmodels.PureOpts{}, workloads.DT(p)))
		pt := p
		pt.UseTask = true
		taskT := must(desmodels.RunPure(n, cl.rpn, costs, desmodels.PureOpts{}, workloads.DT(pt)))
		helpCell := "-"
		if cl.helpers > 0 {
			helpT := must(desmodels.RunPure(n, cl.rpn, costs,
				desmodels.PureOpts{HelpersPerNode: cl.helpers}, workloads.DT(pt)))
			helpCell = ratio(mpiT, helpT)
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%c", cl.letter), fmt.Sprint(n), ns(mpiT),
			ratio(mpiT, pureT), ratio(mpiT, taskT), helpCell,
		})
	}
	return tb
}

// comdScales returns the weak-scaling rank counts for Figs. 5a-5c.
func comdScales(quick bool) []int {
	if quick {
		return []int{8, 32}
	}
	return []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
}

// Fig5aCoMD reproduces Figure 5a: CoMD end-to-end runtimes, MPI vs
// MPI+OpenMP (16 procs x 4 threads per node) vs Pure.
func Fig5aCoMD(quick bool) Table {
	steps := 50
	if quick {
		steps = 8
	}
	tb := Table{
		ID:      "fig5a",
		Title:   "CoMD end-to-end (paper: Pure 7-25% over MPI; 35-50% over MPI+OpenMP)",
		Columns: []string{"ranks", "MPI", "MPI+OMP", "Pure", "Pure-vs-MPI", "Pure-vs-OMP"},
	}
	for _, n := range comdScales(quick) {
		p := workloads.DefaultCoMD(n, steps)
		mpiT := must(desmodels.RunMPI(n, 64, costs, workloads.CoMD(p)))
		pureT := must(desmodels.RunPure(n, 64, costs, desmodels.PureOpts{}, workloads.CoMD(p)))
		var hybT int64
		if n >= 4 {
			hp, procs := workloads.CoMDHybrid(p, 4)
			hybT = must(desmodels.RunHybrid(procs, 4, 16, costs, workloads.CoMD(hp)))
		}
		hybCell, vsOMP := "-", "-"
		if hybT > 0 {
			hybCell, vsOMP = ns(hybT), ratio(hybT, pureT)
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(n), ns(mpiT), hybCell, ns(pureT), ratio(mpiT, pureT), vsOMP,
		})
	}
	return tb
}

// Fig5bCoMDImbalanced reproduces Figure 5b: statically imbalanced CoMD
// (void spheres), MPI vs Pure with the eamForce task.
func Fig5bCoMDImbalanced(quick bool) Table {
	steps := 50
	if quick {
		steps = 8
	}
	tb := Table{
		ID:      "fig5b",
		Title:   "Imbalanced CoMD (void spheres; paper: Pure 1.6-2.1x)",
		Columns: []string{"ranks", "MPI", "Pure+Tasks", "speedup"},
	}
	for _, n := range comdScales(quick) {
		p := workloads.DefaultCoMD(n, steps)
		p.VoidFactor = workloads.VoidSpheres(n)
		mpiT := must(desmodels.RunMPI(n, 64, costs, workloads.CoMD(p)))
		pt := p
		pt.UseTask = true
		pureT := must(desmodels.RunPure(n, 64, costs, desmodels.PureOpts{}, workloads.CoMD(pt)))
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(n), ns(mpiT), ns(pureT), ratio(mpiT, pureT)})
	}
	return tb
}

// Fig5cCoMDDynamic reproduces Figure 5c: dynamically imbalanced CoMD
// against MPI, MPI+OpenMP and six AMPI variants.
func Fig5cCoMDDynamic(quick bool) Table {
	steps := 48
	scales := []int{8, 16, 32, 64, 128, 256, 512}
	if quick {
		steps = 16
		scales = []int{16}
	}
	tb := Table{
		ID:    "fig5c",
		Title: "Dynamic imbalanced CoMD (paper: Pure >=1.25x best AMPI on 1 node, ~2x multi-node)",
		Columns: []string{"ranks", "MPI", "MPI+OMP", "Pure",
			"AMPI", "AMPI-2vp", "AMPI-4vp", "AMPIsmp", "AMPIsmp-2vp", "AMPIsmp-4vp", "Pure-vs-bestAMPI"},
	}
	for _, n := range scales {
		p := workloads.DefaultCoMD(n, steps)
		p.HotFactor = workloads.MovingHotspot(n, 4)
		mpiT := must(desmodels.RunMPI(n, 64, costs, workloads.CoMD(p)))
		var hybCell string = "-"
		if n >= 4 {
			hp, procs := workloads.CoMDHybrid(p, 4)
			hybCell = ns(must(desmodels.RunHybrid(procs, 4, 16, costs, workloads.CoMD(hp))))
		}
		pt := p
		pt.UseTask = true
		pureT := must(desmodels.RunPure(n, 64, costs, desmodels.PureOpts{}, workloads.CoMD(pt)))
		bestAMPI := int64(1 << 62)
		cells := []string{fmt.Sprint(n), ns(mpiT), hybCell, ns(pureT)}
		for _, smp := range []bool{false, true} {
			for _, vp := range []int{1, 2, 4} {
				ap := workloads.CoMDAMPI(p, vp)
				at, _, err := desmodels.RunAMPI(ap.Ranks, costs,
					desmodels.AMPIOpts{VP: vp, SMP: smp, CoresPerNode: 64}, workloads.CoMD(ap))
				if err != nil {
					panic(err)
				}
				if at < bestAMPI {
					bestAMPI = at
				}
				cells = append(cells, ns(at))
			}
		}
		cells = append(cells, ratio(bestAMPI, pureT))
		tb.Rows = append(tb.Rows, cells)
	}
	return tb
}

// Fig5dMiniAMR reproduces Figure 5d: miniAMR weak scaling, MPI vs Pure.
func Fig5dMiniAMR(quick bool) Table {
	steps := 60
	scales := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	if quick {
		steps = 10
		scales = []int{2, 16, 64}
	}
	tb := Table{
		ID:      "fig5d",
		Title:   "miniAMR end-to-end (paper Fig. 5d: Pure consistently ahead of MPI)",
		Columns: []string{"ranks", "MPI", "Pure", "speedup"},
	}
	for _, n := range scales {
		p := workloads.DefaultMiniAMR(n, steps)
		mpiT := must(desmodels.RunMPI(n, 64, costs, workloads.MiniAMR(p)))
		pureT := must(desmodels.RunPure(n, 64, costs, desmodels.PureOpts{}, workloads.MiniAMR(p)))
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(n), ns(mpiT), ns(pureT), ratio(mpiT, pureT)})
	}
	return tb
}

// pingPongProg builds the two-rank ping-pong used by Fig. 6's DES leg.
func pingPongProg(bytes, iters int) func(desmodels.VCtx) {
	return func(v desmodels.VCtx) {
		for i := 0; i < iters; i++ {
			if v.Rank() == 0 {
				v.Send(1, bytes, 0)
				v.Recv(1, bytes, 1)
			} else if v.Rank() == 1 {
				v.Recv(0, bytes, 0)
				v.Send(0, bytes, 1)
			}
		}
	}
}

// Fig6PingPong reproduces Figure 6: intra-node point-to-point speedup over
// MPI for payloads 4 B-16 MB at three placements.  The placement curves come
// from the DES (this host cannot pin threads to sockets); RealHostPingPong
// adds the measured curve from the real runtimes.
func Fig6PingPong(quick bool) Table {
	sizes := []int{4, 8, 16, 32, 64, 128, 256, 512, 1 << 10, 2 << 10, 4 << 10, 8 << 10,
		16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
	iters := 40
	if quick {
		sizes = []int{8, 1 << 10, 64 << 10, 1 << 20}
		iters = 10
	}
	tb := Table{
		ID:      "fig6",
		Title:   "Intra-node ping-pong speedup over MPI by placement (paper: up to 17x small, 1-2x large)",
		Columns: []string{"payload", "MPI", "Pure-HTsibling", "Pure-sharedL3", "Pure-xNUMA", "best-speedup"},
	}
	for _, sz := range sizes {
		prog := pingPongProg(sz, iters)
		mpiT := must(desmodels.RunMPI(2, 0, costs, prog))
		// Placements: ranks 0,1 as HT siblings (64/node SMP), separate cores
		// same socket (2/node at cores 0 and 1 — SMP with 1 thread/core), and
		// across sockets.
		ht := must(desmodels.RunPure(2, 0, costs, desmodels.PureOpts{}, prog))
		l3 := must(runPurePlacedPair(1, prog)) // same socket, different cores
		xn := must(runPurePlacedPair(2, prog)) // different sockets
		tb.Rows = append(tb.Rows, []string{
			bytesLabel(sz), ns(mpiT), ns(ht), ns(l3), ns(xn), ratio(mpiT, ht),
		})
	}
	return tb
}

// Fig7aAllreduce reproduces Figure 7a: 8 B all-reduce, MPI vs MPI-DMAPP vs
// OpenMP (single node only) vs Pure.
func Fig7aAllreduce(quick bool) Table {
	scales := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}
	iters := 10
	if quick {
		scales = []int{2, 16, 64, 256}
		iters = 3
	}
	tb := Table{
		ID:      "fig7a",
		Title:   "All-Reduce 8B payload (paper: Pure 11% to >3.5x over MPI/DMAPP)",
		Columns: []string{"ranks", "MPI", "MPI-DMAPP", "OpenMP", "Pure", "Pure-vs-MPI"},
	}
	prog := func(v desmodels.VCtx) {
		for i := 0; i < iters; i++ {
			v.Allreduce(8)
		}
	}
	for _, n := range scales {
		mpiT := must(desmodels.RunMPI(n, 64, costs, prog))
		dmT := must(desmodels.RunMPIDMAPP(n, 64, costs, prog))
		ompCell := "-"
		if n <= 64 {
			ompCell = ns(must(desmodels.RunOMP(n, costs, prog)))
		}
		pureT := must(desmodels.RunPure(n, 64, costs, desmodels.PureOpts{}, prog))
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(n), ns(mpiT), ns(dmT), ompCell, ns(pureT), ratio(mpiT, pureT),
		})
	}
	return tb
}

// Fig7bBarrierNode reproduces Figure 7b: barrier on a single node, 2-64
// ranks (paper: Pure 2.4-5x over MPI, up to 8x over OpenMP).
func Fig7bBarrierNode(quick bool) Table {
	scales := []int{2, 4, 8, 16, 32, 64}
	iters := 20
	if quick {
		scales = []int{2, 16, 64}
		iters = 5
	}
	tb := Table{
		ID:      "fig7b",
		Title:   "Barrier, single node (paper: Pure 2.4-5x vs MPI, up to 8x vs OpenMP)",
		Columns: []string{"ranks", "MPI", "OpenMP", "Pure", "Pure-vs-MPI", "Pure-vs-OMP"},
	}
	prog := func(v desmodels.VCtx) {
		for i := 0; i < iters; i++ {
			v.Barrier()
		}
	}
	for _, n := range scales {
		mpiT := must(desmodels.RunMPI(n, 64, costs, prog))
		ompT := must(desmodels.RunOMP(n, costs, prog))
		pureT := must(desmodels.RunPure(n, 64, costs, desmodels.PureOpts{}, prog))
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(n), ns(mpiT), ns(ompT), ns(pureT), ratio(mpiT, pureT), ratio(ompT, pureT),
		})
	}
	return tb
}

// Fig7cBarrierScale reproduces Figure 7c: barrier to 65,536 ranks.
func Fig7cBarrierScale(quick bool) Table {
	scales := []int{2, 8, 64, 256, 1024, 4096, 16384, 65536}
	iters := 2
	if quick {
		scales = []int{2, 64, 256}
	}
	tb := Table{
		ID:      "fig7c",
		Title:   "Barrier at scale (to 65,536 ranks)",
		Columns: []string{"ranks", "MPI", "Pure", "speedup"},
	}
	prog := func(v desmodels.VCtx) {
		for i := 0; i < iters; i++ {
			v.Barrier()
		}
	}
	for _, n := range scales {
		mpiT := must(desmodels.RunMPI(n, 64, costs, prog))
		pureT := must(desmodels.RunPure(n, 64, costs, desmodels.PureOpts{}, prog))
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(n), ns(mpiT), ns(pureT), ratio(mpiT, pureT)})
	}
	return tb
}

// AppAExtraCollectives reproduces Appendix A's additional collective
// results: broadcast and reduce payload sweeps at 64 ranks.
func AppAExtraCollectives(quick bool) Table {
	sizes := []int{8, 64, 512, 2 << 10, 8 << 10, 64 << 10}
	iters := 10
	if quick {
		sizes = []int{8, 2 << 10}
		iters = 3
	}
	tb := Table{
		ID:      "appA",
		Title:   "Additional collectives, 64 ranks / 1 node (Appendix A)",
		Columns: []string{"payload", "MPI-bcast", "Pure-bcast", "bcast-speedup", "MPI-allreduce", "Pure-allreduce", "allreduce-speedup"},
	}
	for _, sz := range sizes {
		bc := func(v desmodels.VCtx) {
			for i := 0; i < iters; i++ {
				v.Bcast(sz, 0)
			}
		}
		ar := func(v desmodels.VCtx) {
			for i := 0; i < iters; i++ {
				v.Allreduce(sz)
			}
		}
		mb := must(desmodels.RunMPI(64, 64, costs, bc))
		pb := must(desmodels.RunPure(64, 64, costs, desmodels.PureOpts{}, bc))
		ma := must(desmodels.RunMPI(64, 64, costs, ar))
		pa := must(desmodels.RunPure(64, 64, costs, desmodels.PureOpts{}, ar))
		tb.Rows = append(tb.Rows, []string{
			bytesLabel(sz), ns(mb), ns(pb), ratio(mb, pb), ns(ma), ns(pa), ratio(ma, pa),
		})
	}
	return tb
}

// Fig1Timeline reproduces the paper's Figure 1: a timeline of three
// co-resident ranks where rank 0 executes a chunked task while ranks 1 and
// 2 block on receives and steal chunks.  The rendered timeline is attached
// to the table notes.
func Fig1Timeline(quick bool) Table {
	_ = quick
	trace := &desmodels.Trace{}
	prog := func(v desmodels.VCtx) {
		if v.Rank() == 0 {
			// Six chunks of varying cost, exactly like the figure.
			v.Task([]int64{30000, 20000, 90000, 25000, 110000, 15000})
			v.Send(1, 8, 0)
			v.Send(2, 8, 0)
		} else {
			v.Recv(0, 8, 0) // blocks; SSW-Loop steals chunks meanwhile
		}
	}
	end, err := desmodels.RunPure(3, 0, costs, desmodels.PureOpts{Trace: trace}, prog)
	if err != nil {
		panic(err)
	}
	var sb strings.Builder
	trace.Render(&sb, 96)
	tb := Table{
		ID:      "fig1",
		Title:   "Task-stealing timeline, 3 ranks / 1 node (paper Fig. 1)",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"virtual-runtime", ns(end)},
			{"chunks-stolen", fmt.Sprint(trace.StolenChunks())},
		},
	}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		tb.Notes = append(tb.Notes, line)
	}
	return tb
}
