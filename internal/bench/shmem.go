package bench

import (
	"fmt"
	"time"

	shmemapp "repro/internal/apps/shmem"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/pure"
)

// ShmemPGAS is the PGAS-layer experiment: the remote-atomic histogram and
// the mailbox-frontier BFS on co-resident ranks and across the modeled
// wire, plus the raw mailbox round trip.  Every data row is exactness-
// gated — a lost remote atomic or a reordered mailbox message flips the
// exact column, so the throughput numbers are only reported for verified
// runs.
func ShmemPGAS(quick bool) Table {
	reps := 5
	histItems := 4096
	bfsVerts := 4096
	mboxIters := 20000
	if quick {
		reps = 3
		histItems = 1024
		bfsVerts = 1024
		mboxIters = 3000
	}
	tb := Table{
		ID:      "shmem",
		Title:   "PGAS layer: remote-atomic histogram, mailbox BFS, mailbox round trip",
		Columns: []string{"workload", "placement", "per-op", "ops/s", "exact"},
		Notes: []string{
			"histogram: per remote AtomicAdd into strided bins, round-verified vs the serial oracle",
			"bfs: per vertex settled; frontier exchange over actor mailboxes with marker termination",
			"mailbox: one 8-byte message each way between two owner rings",
			"cross-node rows ride the modeled wire (200ns + 0.1ns/B); medians of repeated runs",
		},
	}

	crossCfg := func() pure.Config {
		return pure.Config{
			NRanks:       2,
			Spec:         topology.Spec{Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
			RanksPerNode: 1,
			Net:          netsim.Config{LatencyNs: 200, BytesPerNs: 10, TimeScale: 10},
		}
	}

	exactCell := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "NO"
	}
	row := func(workload, placement string, perOp int64, exact bool) {
		tb.Rows = append(tb.Rows, []string{
			workload, placement, ns(perOp),
			fmt.Sprintf("%.3g", 1e9/float64(perOp)), exactCell(exact),
		})
	}

	for _, placement := range []string{"same-node", "cross-node"} {
		cfg := func() pure.Config { return pure.Config{NRanks: 4} }
		items := histItems
		if placement == "cross-node" {
			cfg = crossCfg
			items = histItems / 8
		}
		hcfg := shmemapp.HistConfig{Bins: 256, Items: items, Rounds: 2, Seed: 3}
		exact := true
		var updates int64
		perOp := medianOf(reps, func() int64 {
			res, elapsed := runShmemHist(cfg(), hcfg)
			exact = exact && res.Exact
			updates = res.Updates
			return elapsed.Nanoseconds() / max64(updates, 1)
		})
		row("histogram", placement, perOp, exact)
	}

	{
		bcfg := shmemapp.BFSConfig{Vertices: bfsVerts, Degree: 3, Seed: 5}
		exact := true
		perOp := medianOf(reps, func() int64 {
			res, elapsed := runShmemBFS(pure.Config{NRanks: 4}, bcfg)
			exact = exact && res.Exact
			return elapsed.Nanoseconds() / max64(res.Reached, 1)
		})
		row("bfs", "same-node", perOp, exact)
	}

	for _, placement := range []string{"same-node", "cross-node"} {
		cfg := pure.Config{NRanks: 2}
		iters := mboxIters
		if placement == "cross-node" {
			cfg = crossCfg()
			iters = mboxIters / 20
		}
		exact := true
		perOp := medianOf(reps, func() int64 {
			ok, elapsed := runShmemMailboxPingPong(cfg, iters)
			exact = exact && ok
			return elapsed.Nanoseconds() / int64(iters)
		})
		row("mailbox-rt", placement, perOp, exact)
	}
	return tb
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// runShmemHist executes one verified histogram run and returns rank 0's
// result plus the wall time.
func runShmemHist(cfg pure.Config, hcfg shmemapp.HistConfig) (shmemapp.HistResult, time.Duration) {
	var res shmemapp.HistResult
	start := time.Now()
	err := pure.Run(cfg, func(r *pure.Rank) {
		got, herr := shmemapp.RunHistogram(r, hcfg)
		if herr != nil {
			r.Abort(herr)
			return
		}
		if r.ID() == 0 {
			res = got
		}
	})
	if err != nil {
		panic(err)
	}
	return res, time.Since(start)
}

// runShmemBFS executes one verified traversal and returns rank 0's result
// plus the wall time.
func runShmemBFS(cfg pure.Config, bcfg shmemapp.BFSConfig) (shmemapp.BFSResult, time.Duration) {
	var res shmemapp.BFSResult
	start := time.Now()
	err := pure.Run(cfg, func(r *pure.Rank) {
		got, berr := shmemapp.RunBFS(r, bcfg)
		if berr != nil {
			r.Abort(berr)
			return
		}
		if r.ID() == 0 {
			res = got
		}
	})
	if err != nil {
		panic(err)
	}
	return res, time.Since(start)
}

// runShmemMailboxPingPong bounces a stamped message between two mailboxes
// iters times and reports payload integrity plus elapsed time.
func runShmemMailboxPingPong(cfg pure.Config, iters int) (bool, time.Duration) {
	ok := true
	var elapsed time.Duration
	err := pure.Run(cfg, func(r *pure.Rank) {
		c := r.World()
		s := c.ShmemCreate(4096, 0)
		mb0 := s.NewMailbox(0, 8, 8)
		mb1 := s.NewMailbox(1, 8, 8)
		msg := make([]byte, 8)
		if c.Rank() == 0 {
			start := time.Now()
			for i := 0; i < iters; i++ {
				msg[0] = byte(i)
				mb1.Send(msg)
				mb0.Recv(msg)
				if msg[0] != byte(i)+1 {
					ok = false
				}
			}
			elapsed = time.Since(start)
		} else {
			for i := 0; i < iters; i++ {
				mb1.Recv(msg)
				msg[0]++
				mb0.Send(msg)
			}
		}
		s.Barrier()
		s.FreeHeap()
	})
	if err != nil {
		panic(err)
	}
	return ok, elapsed
}
