package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCoriSpec(t *testing.T) {
	s := CoriSpec(4)
	if got := s.HWThreadsPerNode(); got != 64 {
		t.Fatalf("HWThreadsPerNode = %d, want 64", got)
	}
	if got := s.TotalHWThreads(); got != 256 {
		t.Fatalf("TotalHWThreads = %d, want 256", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSpecValidateRejectsZeroFields(t *testing.T) {
	bad := []Spec{
		{Nodes: 0, SocketsPerNode: 2, CoresPerSocket: 16, ThreadsPerCore: 2},
		{Nodes: 1, SocketsPerNode: 0, CoresPerSocket: 16, ThreadsPerCore: 2},
		{Nodes: 1, SocketsPerNode: 2, CoresPerSocket: 0, ThreadsPerCore: 2},
		{Nodes: 1, SocketsPerNode: 2, CoresPerSocket: 16, ThreadsPerCore: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestHWThreadIndexRoundTrip(t *testing.T) {
	s := CoriSpec(3)
	for i := 0; i < s.TotalHWThreads(); i++ {
		h := HWThreadAt(s, i)
		if got := h.Index(s); got != i {
			t.Fatalf("round trip failed: %d -> %+v -> %d", i, h, got)
		}
	}
}

func TestHWThreadIndexRoundTripProperty(t *testing.T) {
	f := func(nodes, sockets, cores, threads uint8, pick uint16) bool {
		s := Spec{
			Nodes:          int(nodes%8) + 1,
			SocketsPerNode: int(sockets%4) + 1,
			CoresPerSocket: int(cores%16) + 1,
			ThreadsPerCore: int(threads%2) + 1,
		}
		i := int(pick) % s.TotalHWThreads()
		return HWThreadAt(s, i).Index(s) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		a, b HWThread
		want Distance
	}{
		{HWThread{0, 0, 0, 0}, HWThread{0, 0, 0, 0}, SameHWThread},
		{HWThread{0, 0, 0, 0}, HWThread{0, 0, 0, 1}, HyperthreadSiblings},
		{HWThread{0, 0, 0, 0}, HWThread{0, 0, 5, 0}, SharedL3},
		{HWThread{0, 0, 0, 0}, HWThread{0, 1, 0, 0}, CrossNUMA},
		{HWThread{0, 0, 0, 0}, HWThread{1, 0, 0, 0}, CrossNode},
	}
	for _, c := range cases {
		if got := Classify(c.a, c.b); got != c.want {
			t.Errorf("Classify(%+v,%+v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Classify(c.b, c.a); got != c.want {
			t.Errorf("Classify symmetric (%+v,%+v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestDistanceString(t *testing.T) {
	for d, want := range map[Distance]string{
		SameHWThread:        "same-hwthread",
		HyperthreadSiblings: "hyperthread-siblings",
		SharedL3:            "shared-l3",
		CrossNUMA:           "cross-numa",
		CrossNode:           "cross-node",
		Distance(99):        "Distance(99)",
	} {
		if got := d.String(); got != want {
			t.Errorf("Distance(%d).String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestSMPPlacementFillsNodesInOrder(t *testing.T) {
	s := CoriSpec(4)
	p, err := NewPlacement(s, 160, 64, SMP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeOf(0) != 0 || p.NodeOf(63) != 0 || p.NodeOf(64) != 1 || p.NodeOf(159) != 2 {
		t.Fatalf("SMP placement nodes wrong: %d %d %d %d",
			p.NodeOf(0), p.NodeOf(63), p.NodeOf(64), p.NodeOf(159))
	}
	if got := p.NodesUsed(); got != 3 {
		t.Fatalf("NodesUsed = %d, want 3", got)
	}
	// Ranks 0 and 1 are hyperthread siblings under compact numbering.
	if d := p.DistanceBetween(0, 1); d != HyperthreadSiblings {
		t.Fatalf("DistanceBetween(0,1) = %v, want hyperthread siblings", d)
	}
	// Rank 0 and 32 sit on different sockets of node 0 (32 HW threads/socket).
	if d := p.DistanceBetween(0, 32); d != CrossNUMA {
		t.Fatalf("DistanceBetween(0,32) = %v, want cross-numa", d)
	}
	if d := p.DistanceBetween(0, 64); d != CrossNode {
		t.Fatalf("DistanceBetween(0,64) = %v, want cross-node", d)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	s := CoriSpec(4)
	p, err := NewPlacement(s, 8, 0, RoundRobin, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if got := p.NodeOf(r); got != r%4 {
			t.Errorf("rank %d on node %d, want %d", r, got, r%4)
		}
	}
	if got := len(p.RanksOnNode(0)); got != 2 {
		t.Fatalf("node 0 hosts %d ranks, want 2", got)
	}
}

func TestSparsePlacementLeavesIdleThreads(t *testing.T) {
	// DT class A: 80 ranks at 40 ranks/node -> 24 idle threads per node.
	s := CoriSpec(2)
	p, err := NewPlacement(s, 80, 40, SMP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.IdleThreadsOnNode(0); got != 24 {
		t.Fatalf("IdleThreadsOnNode(0) = %d, want 24", got)
	}
	if got := p.NodeOf(40); got != 1 {
		t.Fatalf("rank 40 on node %d, want 1", got)
	}
}

func TestPlacementErrors(t *testing.T) {
	s := CoriSpec(1)
	if _, err := NewPlacement(s, 0, 0, SMP, nil); err == nil {
		t.Error("want error for zero ranks")
	}
	if _, err := NewPlacement(s, 65, 0, SMP, nil); err == nil {
		t.Error("want error for overflow")
	}
	if _, err := NewPlacement(s, 4, 0, SMP, make([]HWThread, 4)); err == nil {
		t.Error("want error for seats with SMP")
	}
	if _, err := NewPlacement(s, 4, 0, Policy(42), nil); err == nil {
		t.Error("want error for unknown policy")
	}
	if _, err := NewPlacement(s, 4, 128, SMP, nil); err == nil {
		t.Error("want error for ranksPerNode over capacity")
	}
	// Duplicate seat.
	seats := []HWThread{{0, 0, 0, 0}, {0, 0, 0, 0}}
	if _, err := NewPlacement(s, 2, 0, Custom, seats); err == nil {
		t.Error("want error for duplicate seats")
	}
	// Seat outside spec.
	seats = []HWThread{{0, 0, 0, 0}, {3, 0, 0, 0}}
	if _, err := NewPlacement(s, 2, 0, Custom, seats); err == nil {
		t.Error("want error for out-of-range seat")
	}
	// Wrong seat count.
	if _, err := NewPlacement(s, 2, 0, Custom, make([]HWThread, 3)); err == nil {
		t.Error("want error for wrong seat count")
	}
}

func TestLocalIndexAndLeader(t *testing.T) {
	s := CoriSpec(2)
	p, err := NewPlacement(s, 128, 64, SMP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LocalIndex(0); got != 0 {
		t.Errorf("LocalIndex(0) = %d, want 0", got)
	}
	if got := p.LocalIndex(70); got != 6 {
		t.Errorf("LocalIndex(70) = %d, want 6", got)
	}
	if got := p.NodeLeader(70); got != 64 {
		t.Errorf("NodeLeader(70) = %d, want 64", got)
	}
	if got := p.NodeLeader(3); got != 0 {
		t.Errorf("NodeLeader(3) = %d, want 0", got)
	}
}

// Property: every placement policy seats each rank exactly once on a distinct
// hardware thread, and LocalIndex is consistent with RanksOnNode.
func TestPlacementBijectiveProperty(t *testing.T) {
	f := func(nodesU, rpnU, nU uint8, rr bool) bool {
		spec := CoriSpec(int(nodesU%8) + 1)
		rpn := int(rpnU%64) + 1
		max := rpn * spec.Nodes
		n := int(nU)%max + 1
		pol := SMP
		if rr {
			pol = RoundRobin
		}
		p, err := NewPlacement(spec, n, rpn, pol, nil)
		if err != nil {
			return false
		}
		used := make(map[int]bool)
		for r := 0; r < n; r++ {
			idx := p.Seat(r).Index(spec)
			if used[idx] {
				return false
			}
			used[idx] = true
			node := p.NodeOf(r)
			li := p.LocalIndex(r)
			if li < 0 || p.RanksOnNode(node)[li] != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseReorderFile(t *testing.T) {
	in := "# CrayPAT recommended order\n3,2\n1 0 # trailing comment\n"
	perm, err := ParseReorderFile(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 1, 0}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestParseReorderFileErrors(t *testing.T) {
	cases := []string{
		"0,1,2",     // too few
		"0,1,2,3,3", // duplicate (and too many)
		"0,1,2,9",   // out of range
		"0,1,2,abc", // not a number
		"0,1,2,-1",  // negative
		"0,1,1,3",   // duplicate
	}
	for _, in := range cases {
		if _, err := ParseReorderFile(strings.NewReader(in), 4); err == nil {
			t.Errorf("ParseReorderFile(%q) = nil error, want failure", in)
		}
	}
}

func TestPlacementFromReorder(t *testing.T) {
	s := CoriSpec(2)
	// Reverse order: rank 3 gets slot 0 on node 0, rank 0 gets slot 3 on node 1.
	p, err := PlacementFromReorder(s, 4, 2, []int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeOf(3) != 0 || p.NodeOf(2) != 0 || p.NodeOf(1) != 1 || p.NodeOf(0) != 1 {
		t.Fatalf("reorder placement wrong: nodes %d %d %d %d",
			p.NodeOf(0), p.NodeOf(1), p.NodeOf(2), p.NodeOf(3))
	}
	if _, err := PlacementFromReorder(s, 4, 2, []int{0, 1}); err == nil {
		t.Error("want error for short permutation")
	}
	if _, err := PlacementFromReorder(s, 300, 0, make([]int, 300)); err == nil {
		t.Error("want error for overflow")
	}
}

func TestGlobalCore(t *testing.T) {
	s := CoriSpec(2)
	h := HWThread{Node: 1, Socket: 1, Core: 3, Thread: 1}
	// (1*2+1)*16+3 = 51
	if got := h.GlobalCore(s); got != 51 {
		t.Fatalf("GlobalCore = %d, want 51", got)
	}
}
