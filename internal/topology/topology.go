// Package topology models the cluster hardware that a Pure program runs on:
// nodes, NUMA domains (sockets), physical cores, and hardware threads, plus
// the assignment ("placement") of application ranks onto hardware threads.
//
// The paper evaluates Pure on NERSC Cori, a Cray XC40 whose nodes each hold
// two Intel Xeon E5-2698 v3 sockets (16 cores x 2 hyperthreads per socket,
// i.e. 64 hardware threads and 2 NUMA domains per node).  Both the real Pure
// runtime and the discrete-event cluster simulator consult this package: the
// runtime uses it to decide which rank pairs share a node (and therefore may
// use the lock-free shared-memory fast paths) and the simulator uses it to
// pick latency classes (same core / shared L3 / cross NUMA / cross node).
package topology

import (
	"fmt"
	"sort"
)

// Spec describes a homogeneous cluster.
type Spec struct {
	Nodes          int // number of nodes in the job
	SocketsPerNode int // NUMA domains per node
	CoresPerSocket int // physical cores per socket
	ThreadsPerCore int // hardware threads per core (2 = hyperthreading on)
}

// CoriSpec returns the machine used in the paper's evaluation: Cray XC40
// nodes with two 16-core Haswell sockets and hyperthreading enabled.
func CoriSpec(nodes int) Spec {
	return Spec{Nodes: nodes, SocketsPerNode: 2, CoresPerSocket: 16, ThreadsPerCore: 2}
}

// HWThreadsPerNode returns the number of schedulable hardware threads on one node.
func (s Spec) HWThreadsPerNode() int {
	return s.SocketsPerNode * s.CoresPerSocket * s.ThreadsPerCore
}

// TotalHWThreads returns the number of hardware threads in the whole job.
func (s Spec) TotalHWThreads() int { return s.Nodes * s.HWThreadsPerNode() }

// Validate reports whether the spec is well formed.
func (s Spec) Validate() error {
	if s.Nodes <= 0 || s.SocketsPerNode <= 0 || s.CoresPerSocket <= 0 || s.ThreadsPerCore <= 0 {
		return fmt.Errorf("topology: all Spec fields must be positive, got %+v", s)
	}
	return nil
}

// HWThread identifies one hardware thread within the cluster.
type HWThread struct {
	Node   int // node index, 0-based
	Socket int // NUMA domain within the node
	Core   int // physical core within the socket
	Thread int // hyperthread within the core
}

// GlobalCore returns a cluster-unique physical core id.
func (h HWThread) GlobalCore(s Spec) int {
	return (h.Node*s.SocketsPerNode+h.Socket)*s.CoresPerSocket + h.Core
}

// Index returns the cluster-unique hardware-thread id in [0, TotalHWThreads).
// Threads are numbered node-major, then socket, core, and hyperthread, which
// matches the "compact" numbering used by CrayPAT.
func (h HWThread) Index(s Spec) int {
	return ((h.Node*s.SocketsPerNode+h.Socket)*s.CoresPerSocket+h.Core)*s.ThreadsPerCore + h.Thread
}

// HWThreadAt inverts HWThread.Index.
func HWThreadAt(s Spec, index int) HWThread {
	t := index % s.ThreadsPerCore
	index /= s.ThreadsPerCore
	c := index % s.CoresPerSocket
	index /= s.CoresPerSocket
	sk := index % s.SocketsPerNode
	index /= s.SocketsPerNode
	return HWThread{Node: index, Socket: sk, Core: c, Thread: t}
}

// Distance is the locality class between two placed ranks.  It determines
// which messaging path the runtime takes and which latency class the
// simulator charges.
type Distance int

const (
	// SameHWThread means both ranks are mapped to the same hardware thread
	// (oversubscription; only used by helper-thread experiments).
	SameHWThread Distance = iota
	// HyperthreadSiblings means the ranks share a physical core.  This is
	// the paper's fastest placement: the queue slots stay in the shared L1/L2.
	HyperthreadSiblings
	// SharedL3 means same socket (NUMA domain), different core.
	SharedL3
	// CrossNUMA means same node, different socket.
	CrossNUMA
	// CrossNode means the ranks are on different nodes and must use the
	// network (MPI in the paper, netsim here).
	CrossNode
)

// String implements fmt.Stringer.
func (d Distance) String() string {
	switch d {
	case SameHWThread:
		return "same-hwthread"
	case HyperthreadSiblings:
		return "hyperthread-siblings"
	case SharedL3:
		return "shared-l3"
	case CrossNUMA:
		return "cross-numa"
	case CrossNode:
		return "cross-node"
	default:
		return fmt.Sprintf("Distance(%d)", int(d))
	}
}

// Classify returns the locality class between two hardware threads.
func Classify(a, b HWThread) Distance {
	switch {
	case a.Node != b.Node:
		return CrossNode
	case a.Socket != b.Socket:
		return CrossNUMA
	case a.Core != b.Core:
		return SharedL3
	case a.Thread != b.Thread:
		return HyperthreadSiblings
	default:
		return SameHWThread
	}
}

// Policy selects how ranks are laid out over hardware threads.
type Policy int

const (
	// SMP fills each node completely before moving to the next (block
	// placement).  This is Pure's default, matching MPI's typical default.
	SMP Policy = iota
	// RoundRobin deals ranks across nodes one at a time (cyclic placement).
	RoundRobin
	// Custom uses an explicit rank -> hardware-thread table supplied by the
	// caller (e.g. parsed from a CrayPAT reorder file).
	Custom
)

// Placement maps every application rank to a hardware thread.
//
// A placement may be "sparse": RanksPerNode below HWThreadsPerNode leaves
// hardware threads idle (the DT class A experiment runs 40 ranks on 64-thread
// nodes and donates the idle threads to helper threads).
type Placement struct {
	Spec  Spec
	NRank int
	// seat[r] is the hardware thread of rank r.
	seat []HWThread
	// ranksOfNode[n] lists the ranks placed on node n, ascending.
	ranksOfNode [][]int
}

// NewPlacement places nranks ranks using the given policy.  ranksPerNode
// bounds how many ranks land on one node; pass 0 to use every hardware
// thread.  For Custom, seats must hold exactly nranks entries; for the other
// policies seats must be nil.
func NewPlacement(spec Spec, nranks int, ranksPerNode int, policy Policy, seats []HWThread) (*Placement, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if nranks <= 0 {
		return nil, fmt.Errorf("topology: nranks must be positive, got %d", nranks)
	}
	if ranksPerNode == 0 {
		ranksPerNode = spec.HWThreadsPerNode()
	}
	if ranksPerNode < 0 || ranksPerNode > spec.HWThreadsPerNode() {
		return nil, fmt.Errorf("topology: ranksPerNode %d out of range [1,%d]", ranksPerNode, spec.HWThreadsPerNode())
	}
	if nranks > ranksPerNode*spec.Nodes {
		return nil, fmt.Errorf("topology: %d ranks do not fit on %d nodes at %d ranks/node",
			nranks, spec.Nodes, ranksPerNode)
	}
	p := &Placement{Spec: spec, NRank: nranks, seat: make([]HWThread, nranks)}
	switch policy {
	case SMP:
		if seats != nil {
			return nil, fmt.Errorf("topology: seats must be nil for SMP placement")
		}
		for r := 0; r < nranks; r++ {
			node := r / ranksPerNode
			slot := r % ranksPerNode
			p.seat[r] = HWThreadAt(spec, node*spec.HWThreadsPerNode()+slot)
		}
	case RoundRobin:
		if seats != nil {
			return nil, fmt.Errorf("topology: seats must be nil for RoundRobin placement")
		}
		perNode := make([]int, spec.Nodes)
		for r := 0; r < nranks; r++ {
			node := r % spec.Nodes
			slot := perNode[node]
			if slot >= ranksPerNode {
				return nil, fmt.Errorf("topology: node %d overflows at rank %d", node, r)
			}
			perNode[node]++
			p.seat[r] = HWThreadAt(spec, node*spec.HWThreadsPerNode()+slot)
		}
	case Custom:
		if len(seats) != nranks {
			return nil, fmt.Errorf("topology: Custom placement needs %d seats, got %d", nranks, len(seats))
		}
		used := make(map[int]int)
		for r, h := range seats {
			if h.Node < 0 || h.Node >= spec.Nodes || h.Socket < 0 || h.Socket >= spec.SocketsPerNode ||
				h.Core < 0 || h.Core >= spec.CoresPerSocket || h.Thread < 0 || h.Thread >= spec.ThreadsPerCore {
				return nil, fmt.Errorf("topology: rank %d seat %+v outside spec %+v", r, h, spec)
			}
			idx := h.Index(spec)
			if prev, dup := used[idx]; dup {
				return nil, fmt.Errorf("topology: ranks %d and %d share hardware thread %+v", prev, r, h)
			}
			used[idx] = r
			p.seat[r] = h
		}
	default:
		return nil, fmt.Errorf("topology: unknown policy %d", policy)
	}
	p.ranksOfNode = make([][]int, spec.Nodes)
	for r := 0; r < nranks; r++ {
		n := p.seat[r].Node
		p.ranksOfNode[n] = append(p.ranksOfNode[n], r)
	}
	for _, rs := range p.ranksOfNode {
		sort.Ints(rs)
	}
	return p, nil
}

// Seat returns the hardware thread of rank r.
func (p *Placement) Seat(r int) HWThread { return p.seat[r] }

// NodeOf returns the node index hosting rank r.
func (p *Placement) NodeOf(r int) int { return p.seat[r].Node }

// SocketOf returns the NUMA domain (within its node) hosting rank r.
func (p *Placement) SocketOf(r int) int { return p.seat[r].Socket }

// RanksOnNode returns the ranks placed on node n, ascending.  The returned
// slice is shared; callers must not modify it.
func (p *Placement) RanksOnNode(n int) []int { return p.ranksOfNode[n] }

// NodesUsed returns how many nodes host at least one rank.
func (p *Placement) NodesUsed() int {
	used := 0
	for _, rs := range p.ranksOfNode {
		if len(rs) > 0 {
			used++
		}
	}
	return used
}

// SameNode reports whether two ranks share an address space (a node).
func (p *Placement) SameNode(a, b int) bool { return p.seat[a].Node == p.seat[b].Node }

// DistanceBetween returns the locality class between two ranks.
func (p *Placement) DistanceBetween(a, b int) Distance {
	return Classify(p.seat[a], p.seat[b])
}

// LocalIndex returns rank r's position among the ranks of its node
// (its "thread number within the process" in the paper's terms).  The paper
// encodes this in the upper bits of the MPI tag for inter-node routing.
func (p *Placement) LocalIndex(r int) int {
	rs := p.ranksOfNode[p.seat[r].Node]
	i := sort.SearchInts(rs, r)
	if i >= len(rs) || rs[i] != r {
		return -1
	}
	return i
}

// NodeLeader returns the lowest rank on rank r's node.  Collective
// implementations use node leaders to bridge across nodes.
func (p *Placement) NodeLeader(r int) int {
	return p.ranksOfNode[p.seat[r].Node][0]
}

// IdleThreadsOnNode returns how many hardware threads on node n host no rank.
// The Pure runtime may start helper threads on those.
func (p *Placement) IdleThreadsOnNode(n int) int {
	return p.Spec.HWThreadsPerNode() - len(p.ranksOfNode[n])
}
