package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseReorderFile reads a CrayPAT-style MPICH_RANK_ORDER file: a sequence of
// rank numbers (comma- and/or newline-separated; '#' starts a comment) giving
// the order in which ranks should be dealt onto the job's hardware threads.
// The paper's experiments feed CrayPAT's recommended reorder files to both
// the MPI baseline and Pure.
//
// The returned permutation perm satisfies: perm[i] is the application rank
// seated at placement slot i.  Every rank in [0, nranks) must appear exactly
// once.
func ParseReorderFile(r io.Reader, nranks int) ([]int, error) {
	perm := make([]int, 0, nranks)
	seen := make([]bool, nranks)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		for _, field := range strings.FieldsFunc(text, func(c rune) bool { return c == ',' || c == ' ' || c == '\t' }) {
			v, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("topology: reorder file line %d: bad rank %q: %v", line, field, err)
			}
			if v < 0 || v >= nranks {
				return nil, fmt.Errorf("topology: reorder file line %d: rank %d out of range [0,%d)", line, v, nranks)
			}
			if seen[v] {
				return nil, fmt.Errorf("topology: reorder file line %d: rank %d listed twice", line, v)
			}
			seen[v] = true
			perm = append(perm, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading reorder file: %v", err)
	}
	if len(perm) != nranks {
		return nil, fmt.Errorf("topology: reorder file lists %d ranks, want %d", len(perm), nranks)
	}
	return perm, nil
}

// PlacementFromReorder builds a Custom placement by dealing the reordered
// ranks block-wise onto nodes, ranksPerNode at a time (the semantics of
// MPICH_RANK_REORDER_METHOD=3 with a rank-order file).
func PlacementFromReorder(spec Spec, nranks, ranksPerNode int, perm []int) (*Placement, error) {
	if len(perm) != nranks {
		return nil, fmt.Errorf("topology: permutation length %d != nranks %d", len(perm), nranks)
	}
	if ranksPerNode == 0 {
		ranksPerNode = spec.HWThreadsPerNode()
	}
	seats := make([]HWThread, nranks)
	for slot, rank := range perm {
		node := slot / ranksPerNode
		local := slot % ranksPerNode
		if node >= spec.Nodes {
			return nil, fmt.Errorf("topology: slot %d overflows %d nodes at %d ranks/node", slot, spec.Nodes, ranksPerNode)
		}
		seats[rank] = HWThreadAt(spec, node*spec.HWThreadsPerNode()+local)
	}
	return NewPlacement(spec, nranks, ranksPerNode, Custom, seats)
}
