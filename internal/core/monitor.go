package core

import (
	"net"
	"net/http"
	"time"

	"repro/internal/obs"
)

// The runtime side of the live monitor: Config.MonitorAddr starts an HTTP
// server for the duration of the run, serving obs.Monitor's endpoints over
// the run's metrics registry and the wait registry.  The wait registry is
// the same lock-free slot array the watchdog scans, so /ranks works exactly
// when it matters most — while the program is hung.

// monitorServer holds the running monitor's listener so the bound address
// survives ":0" and the server can be shut down when the run ends.
type monitorServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// startMonitor binds Config.MonitorAddr and serves the monitor endpoints.
// It runs before the rank goroutines launch (the wait slots already exist),
// so a scrape can never observe a half-built registry.
func (rt *Runtime) startMonitor() error {
	ln, err := net.Listen("tcp", rt.cfg.MonitorAddr)
	if err != nil {
		return err
	}
	mon := obs.NewMonitor(rt.cfg.Metrics, rt.RankStates)
	mon.SetLinks(rt.LinkStates)
	if rt.linkMet != nil {
		mon.SetOnScrape(rt.linkMet.sync)
	}
	ms := &monitorServer{
		ln:   ln,
		srv:  &http.Server{Handler: mon.Handler()},
		done: make(chan struct{}),
	}
	go func() {
		defer close(ms.done)
		ms.srv.Serve(ln) // returns once the listener closes
	}()
	rt.mon = ms
	return nil
}

// stopMonitor tears the server down; it runs after every rank has returned.
func (rt *Runtime) stopMonitor() {
	if rt.mon == nil {
		return
	}
	rt.mon.srv.Close()
	<-rt.mon.done
}

// MonitorAddr returns the monitor's bound listen address ("" when no monitor
// is running).  With Config.MonitorAddr ":0" this is how callers learn the
// picked port.
func (rt *Runtime) MonitorAddr() string {
	if rt.mon == nil {
		return ""
	}
	return rt.mon.ln.Addr().String()
}

// MonitorAddr returns the run's live-monitor address ("" when disabled).
func (r *Rank) MonitorAddr() string { return r.rt.MonitorAddr() }

// RankStates renders the wait registry as the monitor's /ranks view.  It is
// safe to call from any goroutine at any time: every slot field is atomic
// and published records are immutable.
func (rt *Runtime) RankStates() []obs.RankState {
	now := time.Now()
	out := make([]obs.RankState, len(rt.waitSlots))
	for id := range rt.waitSlots {
		s := &rt.waitSlots[id]
		st := obs.RankState{Rank: id, State: "running"}
		switch {
		case s.unwound.Load():
			st.State = "unwound"
		case s.done.Load():
			st.State = "done"
		default:
			if w := s.waiting.Load(); w != nil {
				st.State = "blocked"
				st.Wait = &obs.WaitState{
					Kind:      w.Kind.String(),
					Peer:      w.Peer,
					Tag:       w.Tag,
					Comm:      w.Comm,
					Seq:       w.Seq,
					Op:        w.Op,
					BlockedNs: int64(now.Sub(w.Since)),
				}
			}
		}
		out[id] = st
	}
	return out
}
