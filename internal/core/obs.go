package core

import (
	"repro/internal/obs"
	"repro/internal/transport"
)

// metricSet pre-resolves the runtime's metric handles once at launch so the
// instrumented hot paths never touch the registry's map or lock.  All fields
// are shared across ranks (obs counters are padded atomics); when metrics
// are disabled every instrumentation site reduces to one nil check.
type metricSet struct {
	reg *obs.Metrics

	// Point-to-point posts and bytes, by protocol path.
	sendsEager, sendsRvz, sendsRemote *obs.Counter
	recvsEager, recvsRvz, recvsRemote *obs.Counter
	bytesEager, bytesRvz, bytesRemote *obs.Counter
	bytesReceived                     *obs.Counter

	// PureBufferQueue backpressure: blocking sends that found the queue full
	// (live), queue-level failed enqueue attempts (harvested at run end), and
	// the high-water mark of sampled queue depth.
	pbqStallWaits  *obs.Counter
	pbqEnqueueFull *obs.Counter
	pbqDepthMax    *obs.Gauge

	// Rendezvous single-copy handoffs completed by senders.
	rvzHandoffs *obs.Counter

	// Collective calls entered (counted once per rank per call).
	barriers, reduces, allreduces, bcasts *obs.Counter

	// SSW-Loop stealing: per-steal chunk execution latency (live) and the
	// attempt/success totals (harvested from the per-rank thieves at run end).
	stealLatency  *obs.Histogram
	stealAttempts *obs.Counter
	steals        *obs.Counter

	// Pure Task executions and the chunks thieves took from them.
	tasks        *obs.Counter
	chunksStolen *obs.Counter

	// Fault tolerance: runtime aborts (all causes), watchdog hang dumps, and
	// the reliable inter-node path's retransmits / exhausted retry budgets.
	// The injected-fault counts (drops, dups, reorders) are harvested from
	// the netsim layer at run end.
	aborts            *obs.Counter
	hangs             *obs.Counter
	netRetransmits    *obs.Counter
	netRetryExhausted *obs.Counter
	netDupsDropped    *obs.Counter

	// One-sided (RMA) operations: posts and bytes by kind, fence epochs,
	// notifications, frames shipped between nodes, and payload copies into
	// window memory (an intra-node Put is exactly one copy — the metric the
	// zero-copy tests assert on).
	rmaPuts          *obs.Counter
	rmaGets          *obs.Counter
	rmaAccs          *obs.Counter
	rmaFences        *obs.Counter
	rmaNotifies      *obs.Counter
	rmaBytes         *obs.Counter
	rmaPutCopies     *obs.Counter
	rmaRemotePackets *obs.Counter
}

func newMetricSet(reg *obs.Metrics) *metricSet {
	return &metricSet{
		reg:            reg,
		sendsEager:     reg.Counter("pure_sends_eager_total"),
		sendsRvz:       reg.Counter("pure_sends_rendezvous_total"),
		sendsRemote:    reg.Counter("pure_sends_remote_total"),
		recvsEager:     reg.Counter("pure_recvs_eager_total"),
		recvsRvz:       reg.Counter("pure_recvs_rendezvous_total"),
		recvsRemote:    reg.Counter("pure_recvs_remote_total"),
		bytesEager:     reg.Counter("pure_bytes_sent_eager_total"),
		bytesRvz:       reg.Counter("pure_bytes_sent_rendezvous_total"),
		bytesRemote:    reg.Counter("pure_bytes_sent_remote_total"),
		bytesReceived:  reg.Counter("pure_bytes_received_total"),
		pbqStallWaits:  reg.Counter("pure_pbq_stall_waits_total"),
		pbqEnqueueFull: reg.Counter("pure_pbq_enqueue_full_total"),
		pbqDepthMax:    reg.Gauge("pure_pbq_depth_max"),
		rvzHandoffs:    reg.Counter("pure_rendezvous_handoffs_total"),
		barriers:       reg.Counter("pure_barriers_total"),
		reduces:        reg.Counter("pure_reduces_total"),
		allreduces:     reg.Counter("pure_allreduces_total"),
		bcasts:         reg.Counter("pure_bcasts_total"),
		stealLatency:   reg.Histogram("pure_steal_latency_ns", nil),
		stealAttempts:  reg.Counter("pure_steal_attempts_total"),
		steals:         reg.Counter("pure_steals_total"),
		tasks:          reg.Counter("pure_tasks_executed_total"),
		chunksStolen:   reg.Counter("pure_chunks_stolen_total"),

		aborts:            reg.Counter("pure_aborts_total"),
		hangs:             reg.Counter("pure_watchdog_hangs_total"),
		netRetransmits:    reg.Counter("pure_net_retransmits_total"),
		netRetryExhausted: reg.Counter("pure_net_retry_exhausted_total"),
		netDupsDropped:    reg.Counter("pure_net_dups_discarded_total"),

		rmaPuts:          reg.Counter("pure_rma_puts_total"),
		rmaGets:          reg.Counter("pure_rma_gets_total"),
		rmaAccs:          reg.Counter("pure_rma_accumulates_total"),
		rmaFences:        reg.Counter("pure_rma_fences_total"),
		rmaNotifies:      reg.Counter("pure_rma_notifies_total"),
		rmaBytes:         reg.Counter("pure_rma_bytes_total"),
		rmaPutCopies:     reg.Counter("pure_rma_put_copies_total"),
		rmaRemotePackets: reg.Counter("pure_rma_remote_packets_total"),
	}
}

// countSend records one send post on the metrics registry.
func (m *metricSet) countSend(kind reqKind, n int) {
	switch kind {
	case reqSendEager:
		m.sendsEager.Inc()
		m.bytesEager.Add(int64(n))
	case reqSendRvz:
		m.sendsRvz.Inc()
		m.bytesRvz.Add(int64(n))
	case reqRemoteSend:
		m.sendsRemote.Inc()
		m.bytesRemote.Add(int64(n))
	}
}

// harvestObs folds the counters that are only cheap to read after the ranks
// have stopped — queue-level enqueue-full totals and the thieves' lifetime
// attempt/success counts — into the metrics registry.
func (rt *Runtime) harvestObs(ranks []*Rank) {
	m := rt.met
	if m == nil {
		return
	}
	var stalls int64
	rt.channels.Range(func(_, v any) bool {
		ch := v.(*channel)
		if q := ch.pbqOnce.Load(); q != nil {
			stalls += q.Stalls()
		}
		return true
	})
	m.pbqEnqueueFull.Add(stalls)
	for _, r := range ranks {
		if r == nil {
			continue
		}
		m.stealAttempts.Add(r.thief.Attempts)
		m.steals.Add(r.thief.Stolen)
	}
	if fs := rt.net.FaultStats(); fs.Transmits > 0 {
		m.reg.Counter("pure_net_transmits_total").Add(fs.Transmits)
		m.reg.Counter("pure_net_drops_injected_total").Add(fs.Drops)
		m.reg.Counter("pure_net_dups_injected_total").Add(fs.Dups)
		m.reg.Counter("pure_net_reorders_injected_total").Add(fs.Reorders)
		var dupes int64
		rt.remotes.Range(func(_, v any) bool {
			dupes += v.(*remoteChannel).dupes
			return true
		})
		m.netDupsDropped.Add(dupes)
	}
	if rt.tp != nil {
		var agg transport.LinkStats
		var dead int64
		for _, ls := range rt.tp.Stats() {
			agg.FramesSent += ls.FramesSent
			agg.FramesRecv += ls.FramesRecv
			agg.BytesSent += ls.BytesSent
			agg.BytesRecv += ls.BytesRecv
			agg.Retransmits += ls.Retransmits
			agg.DupsDropped += ls.DupsDropped
			agg.OooDropped += ls.OooDropped
			agg.Reconnects += ls.Reconnects
			agg.DropsInjected += ls.DropsInjected
			agg.DelaysInjected += ls.DelaysInjected
			agg.SendBusy += ls.SendBusy
			if ls.Dead {
				dead++
			}
		}
		m.reg.Counter("pure_tp_frames_sent_total").Add(agg.FramesSent)
		m.reg.Counter("pure_tp_frames_recv_total").Add(agg.FramesRecv)
		m.reg.Counter("pure_tp_bytes_sent_total").Add(agg.BytesSent)
		m.reg.Counter("pure_tp_bytes_recv_total").Add(agg.BytesRecv)
		m.reg.Counter("pure_tp_retransmits_total").Add(agg.Retransmits)
		m.reg.Counter("pure_tp_dups_dropped_total").Add(agg.DupsDropped)
		m.reg.Counter("pure_tp_ooo_dropped_total").Add(agg.OooDropped)
		m.reg.Counter("pure_tp_reconnects_total").Add(agg.Reconnects)
		m.reg.Counter("pure_tp_drops_injected_total").Add(agg.DropsInjected)
		m.reg.Counter("pure_tp_delays_injected_total").Add(agg.DelaysInjected)
		m.reg.Counter("pure_tp_send_busy_total").Add(agg.SendBusy)
		m.reg.Counter("pure_tp_dead_peers_total").Add(dead)
	}
	if rt.linkMet != nil {
		// Final sync of the per-peer labeled mirror, so offline metric dumps
		// (no scrape ever happened) still carry the link telemetry.
		rt.linkMet.sync()
	}
}

// attachObs hooks a freshly built rank into the runtime's observability
// layer: its trace ring, the shared metric set, and the steal observer that
// feeds chunk-steal latencies to both.
func (r *Rank) attachObs() {
	rt := r.rt
	if rt.cfg.Trace != nil {
		r.trace = rt.cfg.Trace.Rank(r.id)
	}
	r.met = rt.met
	// The steal observer also feeds the watchdog: a stolen chunk is forward
	// progress even though the thief stays parked in its Wait, so without
	// the tick a long task execution would read as a global hang.  The hook
	// (two clock reads per successful steal) is only installed when someone
	// consumes it — tracing, metrics, or an armed watchdog.
	if r.trace == nil && r.met == nil && rt.cfg.HangTimeout == 0 {
		return
	}
	tr, met, slot := r.trace, r.met, r.slot
	r.thief.Obs = func(ns int64) {
		slot.progress.Add(1)
		if tr != nil {
			tr.EmitDur(obs.KStealSuccess, -1, 1, ns)
		}
		if met != nil {
			met.stealLatency.Observe(ns)
		}
	}
}

// traceStart returns the trace-relative timestamp for an about-to-start span,
// or 0 when tracing is off (callers only use it when tracing is on).
func (r *Rank) traceStart() int64 {
	if r.trace == nil {
		return 0
	}
	return r.trace.Now()
}

// finishColl closes out one collective call: a trace span from t0 to now
// (Arg = the SPTD round number, 0 on the large-payload path) plus the
// per-collective counter.
func (r *Rank) finishColl(k obs.Kind, t0, round int64) {
	if r.trace != nil {
		r.trace.EmitSpan(k, -1, round, t0)
	}
	if m := r.met; m != nil {
		switch k {
		case obs.KBarrier:
			m.barriers.Inc()
		case obs.KReduce:
			m.reduces.Inc()
		case obs.KAllreduce:
			m.allreduces.Inc()
		case obs.KBcast:
			m.bcasts.Inc()
		}
	}
}
