package core

import (
	"fmt"
	"strings"
	"time"
)

// The watchdog is the runtime's hang detector (enabled by Config.HangTimeout
// and/or Config.Deadline).  Pure blocks "in dozens of places" in the
// SSW-Loop; a mismatched Recv or a lost envelope classically leaves every
// rank spinning forever with no output.  The watchdog scans the wait
// registry: when every live rank is blocked and the global progress counter
// has not moved for HangTimeout, it builds the rank-to-rank wait-for graph,
// runs cycle detection to tell a true deadlock from a lost-message stall,
// poisons the runtime with a multi-line diagnostic, and lets the cooperative
// abort unwind every rank so Run can return the dump as a *RunError.

// watchdog runs until stop closes, the deadline fires, or a hang is
// diagnosed.  It is the only goroutine besides the ranks that the runtime
// starts, and it only ever reads the wait slots (atomics), never rank state.
func (rt *Runtime) watchdog(stop <-chan struct{}) {
	var deadlineC <-chan time.Time
	if rt.cfg.Deadline > 0 {
		t := time.NewTimer(rt.cfg.Deadline)
		defer t.Stop()
		deadlineC = t.C
	}
	var tickC <-chan time.Time
	if rt.cfg.HangTimeout > 0 {
		period := rt.cfg.HangTimeout / 8
		if period < time.Millisecond {
			period = time.Millisecond
		}
		tk := time.NewTicker(period)
		defer tk.Stop()
		tickC = tk.C
	}

	var lastSig uint64
	lastChange := time.Now()
	first := true
	for {
		select {
		case <-stop:
			return
		case <-deadlineC:
			rt.poison(CauseDeadline,
				fmt.Sprintf("wall-clock deadline of %v exceeded", rt.cfg.Deadline),
				rt.dumpBlocked("deadline expired"), nil)
			return
		case <-tickC:
			sig, blocked, running, live := rt.scanRanks()
			if first || sig != lastSig || running > 0 || blocked == 0 || live == 0 {
				lastSig, lastChange, first = sig, time.Now(), false
				continue
			}
			stuck := time.Since(lastChange)
			if stuck < rt.cfg.HangTimeout {
				continue
			}
			cause, text, cycle := rt.diagnoseHang(blocked, live, stuck)
			rt.poison(cause, text, rt.dumpBlocked(text), cycle)
			return
		}
	}
}

// scanRanks snapshots the wait registry: the global progress signature, how
// many live ranks are blocked vs. running, and how many are live at all.
func (rt *Runtime) scanRanks() (sig uint64, blocked, running, live int) {
	for id := range rt.waitSlots {
		s := &rt.waitSlots[id]
		sig += s.progress.Load()
		if s.done.Load() {
			continue
		}
		live++
		if s.waiting.Load() != nil {
			blocked++
		} else {
			running++
		}
	}
	return sig, blocked, running, live
}

// diagnoseHang classifies a confirmed global no-progress state: a wait-for
// cycle over peer-directed waits is a true deadlock; anything else is a
// stall (lost message, unmatched operation, or a collective some member
// never entered).
func (rt *Runtime) diagnoseHang(blocked, live int, stuck time.Duration) (cause, text string, cycle []int) {
	cycle = rt.findWaitCycle()
	if len(cycle) > 0 {
		return CauseDeadlock, fmt.Sprintf(
			"deadlock: no progress for %v, %d/%d ranks blocked, wait-for cycle of %d ranks",
			stuck.Round(time.Millisecond), blocked, live, len(cycle)), cycle
	}
	return CauseStall, fmt.Sprintf(
		"stall: no progress for %v, %d/%d ranks blocked, no wait-for cycle "+
			"(likely a lost message, an unmatched send/recv, or a collective a rank never entered)",
		stuck.Round(time.Millisecond), blocked, live), nil
}

// findWaitCycle builds the wait-for graph over peer-directed wait records
// (each blocked rank has at most one outgoing edge, to the peer it waits on)
// and returns the first cycle found, in wait order, starting from its
// smallest rank id.  nil when the graph is acyclic.
func (rt *Runtime) findWaitCycle() []int {
	n := len(rt.waitSlots)
	next := make([]int, n) // -1 = no edge
	for id := range rt.waitSlots {
		next[id] = -1
		s := &rt.waitSlots[id]
		if s.done.Load() {
			continue
		}
		if w := s.waiting.Load(); w != nil && w.Kind.waitsOnPeer() && w.Peer >= 0 && w.Peer < n {
			next[id] = w.Peer
		}
	}
	// Functional-graph cycle walk: color 0 unvisited, 1 on current path,
	// 2 finished.
	color := make([]uint8, n)
	for start := 0; start < n; start++ {
		if color[start] != 0 {
			continue
		}
		var path []int
		for v := start; ; {
			if v < 0 || color[v] == 2 {
				break
			}
			if color[v] == 1 {
				// Found a cycle: the suffix of path from v's first occurrence.
				for i, u := range path {
					if u == v {
						cyc := append([]int(nil), path[i:]...)
						rotateToMin(cyc)
						return cyc
					}
				}
				break
			}
			color[v] = 1
			path = append(path, v)
			v = next[v]
		}
		for _, u := range path {
			color[u] = 2
		}
	}
	return nil
}

// rotateToMin rotates the cycle in place so it starts at its smallest rank
// id, making the diagnostic (and tests) deterministic.
func rotateToMin(c []int) {
	mi := 0
	for i, v := range c {
		if v < c[mi] {
			mi = i
		}
	}
	rot := append(append([]int(nil), c[mi:]...), c[:mi]...)
	copy(c, rot)
}

// dumpBlocked renders the per-rank wait states into the multi-line
// diagnostic that travels on the RunError (and the process log).
func (rt *Runtime) dumpBlocked(header string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  watchdog: %s; per-rank wait states:", header)
	lines := 0
	for id := range rt.waitSlots {
		s := &rt.waitSlots[id]
		if s.done.Load() {
			continue
		}
		if lines == maxBlockedLines {
			fmt.Fprintf(&b, "\n    ... (%d ranks total)", len(rt.waitSlots))
			break
		}
		fmt.Fprintf(&b, "\n    rank %d: %s", id, s.waiting.Load().describe())
		lines++
	}
	if lines == 0 {
		b.WriteString("\n    (no live ranks)")
	}
	return b.String()
}
