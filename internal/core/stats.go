package core

// RankStats is one rank's lifetime operation counters — the runtime's
// profiling mode (the paper ships "special debugging and profiling modes to
// assist in application development", §4.0.1).  Counters are rank-local
// plain integers updated on the hot paths (no atomics: each rank owns its
// struct) and harvested after the rank's main returns.
type RankStats struct {
	Rank int
	Node int // node the rank was placed on

	// Point-to-point, by protocol path.
	SendsEager      int64
	SendsRendezvous int64
	SendsRemote     int64
	RecvsEager      int64
	RecvsRendezvous int64
	RecvsRemote     int64
	BytesSent       int64
	BytesReceived   int64

	// Collectives entered (application-level calls; the point-to-point
	// counters above also include the runtime-internal leader-tree messages
	// collectives generate across nodes).
	Barriers   int64
	Allreduces int64
	Reduces    int64
	Bcasts     int64
	Gathers    int64
	Scatters   int64
	Splits     int64

	// One-sided (RMA) operations posted by this rank.
	RmaPuts        int64
	RmaGets        int64
	RmaAccumulates int64
	RmaFences      int64
	RmaNotifies    int64
	RmaBytesPut    int64 // bytes moved by Put and Accumulate posts

	// PGAS (shmem) operations posted by this rank.
	ShmemPuts    int64
	ShmemGets    int64
	ShmemAtomics int64
	ShmemSends   int64 // mailbox messages sent
	ShmemRecvs   int64 // mailbox messages consumed

	// Tasks.
	TasksExecuted int64
	ChunksOwned   int64
	ChunksStolen  int64 // chunks *taken from* this rank's tasks by others

	// SSW-Loop stealing performed by this rank while blocked.
	StealAttempts   int64
	StealsSucceeded int64
}

// Add folds other into s (Rank is left untouched).
func (s *RankStats) Add(o RankStats) {
	s.SendsEager += o.SendsEager
	s.SendsRendezvous += o.SendsRendezvous
	s.SendsRemote += o.SendsRemote
	s.RecvsEager += o.RecvsEager
	s.RecvsRendezvous += o.RecvsRendezvous
	s.RecvsRemote += o.RecvsRemote
	s.BytesSent += o.BytesSent
	s.BytesReceived += o.BytesReceived
	s.Barriers += o.Barriers
	s.Allreduces += o.Allreduces
	s.Reduces += o.Reduces
	s.Bcasts += o.Bcasts
	s.Gathers += o.Gathers
	s.Scatters += o.Scatters
	s.Splits += o.Splits
	s.RmaPuts += o.RmaPuts
	s.RmaGets += o.RmaGets
	s.RmaAccumulates += o.RmaAccumulates
	s.RmaFences += o.RmaFences
	s.RmaNotifies += o.RmaNotifies
	s.RmaBytesPut += o.RmaBytesPut
	s.ShmemPuts += o.ShmemPuts
	s.ShmemGets += o.ShmemGets
	s.ShmemAtomics += o.ShmemAtomics
	s.ShmemSends += o.ShmemSends
	s.ShmemRecvs += o.ShmemRecvs
	s.TasksExecuted += o.TasksExecuted
	s.ChunksOwned += o.ChunksOwned
	s.ChunksStolen += o.ChunksStolen
	s.StealAttempts += o.StealAttempts
	s.StealsSucceeded += o.StealsSucceeded
}

// Messages returns the total point-to-point message count this rank sent.
func (s *RankStats) Messages() int64 {
	return s.SendsEager + s.SendsRendezvous + s.SendsRemote
}

// Stats returns a snapshot of the rank's counters (valid any time from the
// rank's own goroutine; harvest after Run for the final values).
func (r *Rank) Stats() RankStats {
	st := r.stats
	st.Rank = r.id
	st.Node = r.node
	st.StealAttempts = r.thief.Attempts
	st.StealsSucceeded = r.thief.Stolen
	return st
}

// RunWithStats is Run plus a per-rank counter harvest: stats[i] is rank i's
// final counters.
func RunWithStats(cfg Config, main func(r *Rank)) ([]RankStats, error) {
	var stats []RankStats
	err := runInternal(cfg, main, func(ranks []*Rank) {
		stats = make([]RankStats, len(ranks))
		for i, r := range ranks {
			if r == nil {
				// The rank died inside newRank (its main panicked before the
				// bootstrap published the handle); it has no counters.
				stats[i].Rank = i
				continue
			}
			stats[i] = r.Stats()
		}
	})
	return stats, err
}
