//go:build purecheck

package core

import (
	"sync"

	"repro/internal/queue"
)

// ModelChannelTable is a purecheck-only harness over the shared
// channel-manager map: it lets internal/check drive the real
// endpoint-creation seam (lookupChannel + the CAS-once PBQ bind) from
// cooperative model threads without bootstrapping a full runtime.  The two
// halves of a pair racing through Endpoint on first use is exactly the race
// newEndpoint runs when both ranks touch a fresh (src, dst, tag, comm) key.
type ModelChannelTable struct {
	m sync.Map
}

// Endpoint resolves the channel for (src, dst, tag) the way endpoint
// creation does and binds its eager queue, returning both so the model can
// assert that every interleaving converges on one shared object pair.
func (t *ModelChannelTable) Endpoint(src, dst, tag, slots, maxPayload int) (any, *queue.PBQ) {
	ch := lookupChannel(&t.m, chanKey{src: src, dst: dst, tag: tag, comm: 1})
	return ch, ch.pbq(slots, maxPayload)
}
