package core

import (
	"runtime"

	"repro/internal/obs"
	"repro/internal/sched"
)

func gosched() { runtime.Gosched() }

// Task is a Pure Task (paper §3.2): a closure over application state whose
// chunk range [start, end) executions the runtime may distribute across the
// owning rank and any co-resident ranks blocked in their SSW-Loops.
//
// A task is defined once (typically outside the timestep loop) and executed
// many times.  The body must be safe for concurrent invocation on disjoint
// chunk ranges; use AlignedIdxRange to map chunks to cacheline-aligned index
// ranges and avoid false sharing.
type Task struct {
	r       *Rank
	nchunks int64
	body    sched.Body
}

// NewTask defines a task split into nchunks chunks.  nchunks defaults to
// DefaultTaskChunks when zero and is capped by the runtime's configured
// maximum (PURE_MAX_TASK_CHUNKS in the paper's build system).
func (r *Rank) NewTask(nchunks int, body sched.Body) *Task {
	if nchunks <= 0 {
		nchunks = DefaultTaskChunks
	}
	return &Task{r: r, nchunks: int64(nchunks), body: body}
}

// Chunks returns the number of chunks the task splits into.
func (t *Task) Chunks() int64 { return t.nchunks }

// Execute runs the task to completion, possibly with chunks stolen by other
// ranks on the node, and returns how the chunks were distributed.  extra is
// passed to every body invocation (the paper's per_exe_args, for values that
// change between executions and therefore cannot be captured at definition
// time).  Execute returns only when every chunk has run (paper: "This call
// passes responsibility to the Pure runtime system ... and only returns when
// it is complete").
func (t *Task) Execute(extra any) sched.RunStats {
	r := t.r
	ns := r.rt.nodes[r.node]
	t0 := r.traceStart()
	// The straggler wait inside Run (owner waiting for stolen chunks to
	// finish) is a blocking point like any other; publish it.  Thieves that
	// execute chunks tick the progress counter through the steal observer, so
	// the watchdog sees a long-running task as live.
	lw := lazyWait{r: r, rec: WaitRecord{Kind: WaitTask, Peer: -1, Seq: uint64(t.nchunks), Op: "execute"}}
	stats := ns.sched.Run(r.local, t.nchunks, t.body, extra, lw.wait)
	lw.finish()
	r.stats.TasksExecuted++
	r.stats.ChunksOwned += stats.OwnerChunks
	r.stats.ChunksStolen += stats.StolenChunks
	if r.trace != nil {
		r.trace.EmitSpan(obs.KTaskExecute, -1, t.nchunks, t0)
	}
	if r.met != nil {
		r.met.tasks.Inc()
		r.met.chunksStolen.Add(stats.StolenChunks)
	}
	return stats
}

// AlignedIdxRange maps a chunk range to a cacheline-aligned element index
// range over n elements of elemSize bytes (the paper's
// pure_aligned_idx_range helper).
func (t *Task) AlignedIdxRange(n int64, elemSize int, startChunk, endChunk int64) (lo, hi int64) {
	return sched.AlignedIdxRange(n, elemSize, startChunk, endChunk, t.nchunks)
}

// UnalignedIdxRange is the unaligned variant.
func (t *Task) UnalignedIdxRange(n int64, startChunk, endChunk int64) (lo, hi int64) {
	return sched.UnalignedIdxRange(n, startChunk, endChunk, t.nchunks)
}
