package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rma"
	"repro/internal/shmem"
)

// The PGAS layer (shmem): the core-layer glue around internal/shmem.
//
// A symmetric heap is an RMA window whose per-rank buffers are identically
// sized, 8-aligned regions, plus a deterministic allocator every member
// mirrors so the k-th Malloc returns the same offset on every rank (see
// internal/shmem's package comment for why that needs no communication).
// Addressed operations name (target rank, heap offset) instead of a
// message: intra-node they resolve to direct loads, stores and hardware
// atomics on the target's exposed buffer — no allocation, no request
// object, no frame — while inter-node they ship as one shmem.Op nested in
// an rma.FrameShmem and apply on the target's goroutine through the same
// shmem atomics, so local and remote updates to one cell compose.
// Completion reuses the window machinery wholesale: fire-and-forget ops
// join the window's pending set (Quiet = completePending), and fetching
// ops ride the existing get-reply path.
//
// Mailboxes put an actor-style face on the heap: a bounded MPSC ring in
// the owner's region (internal/shmem's model-checked step protocol) plus a
// window notify counter as the wake hint.  Intra-node senders run the ring
// steps directly on the owner's buffer; inter-node senders run the same
// steps as addressed operations, whose per-flow FIFO application gives the
// publish step its ordering for free.

// Shm is one rank's handle on a symmetric heap (the analogue of an
// OpenSHMEM PE's view of the symmetric heap).  The shared consensus state
// lives in the runtime's heap registry; the handle owns this rank's
// allocator mirror and mailbox bookkeeping.
type Shm struct {
	win     *Win
	h       *shmem.Heap
	alloc   shmem.LocalAlloc
	seq     int    // Malloc calls on this handle (allocation table index)
	mboxSeq int    // NewMailbox calls (notify-slot assignment)
	buf     []byte // this rank's own symmetric region
}

// ShmemCreate collectively creates a symmetric heap of size bytes (rounded
// up to whole cells) over the communicator.  Every member must call it in
// the same order with the same size — the window-registry discipline.
// maxAllocs bounds lifetime Malloc calls (0 = shmem.DefaultMaxAllocs).
func (c *Comm) ShmemCreate(size int64, maxAllocs int) *Shm {
	size = shmem.Align8(size)
	if size <= 0 || size > shmem.MaxHeapBytes {
		panic(fmt.Sprintf("core: symmetric heap size %d out of range (0, %d]", size, shmem.MaxHeapBytes))
	}
	buf := shmem.AlignedBytes(int(size))
	win := c.WinCreate(buf)
	h := c.r.rt.shmReg.GetOrCreate(shmem.Key(win.key), size, maxAllocs)
	if h.Size() != size {
		panic(fmt.Sprintf("core: rank %d called ShmemCreate with size %d but a peer created the heap with size %d", c.r.id, size, h.Size()))
	}
	return &Shm{win: win, h: h, buf: buf}
}

// Comm returns the communicator the heap was created over.
func (s *Shm) Comm() *Comm { return s.win.c }

// Win returns the backing window (for Notify/NotifyWait interop).
func (s *Shm) Win() *Win { return s.win }

// Local returns the calling rank's own symmetric region.
func (s *Shm) Local() []byte { return s.buf }

// Size returns the symmetric region size in bytes.
func (s *Shm) Size() int64 { return s.h.Size() }

// Malloc returns the offset of a fresh n-byte symmetric allocation
// (rounded up to whole cells).  Symmetric discipline: every member calls
// Malloc/Free in the same order, so every member computes — and the shared
// table confirms — the same offset.  Unlike shmem_malloc there is no
// implied barrier: the regions already exist, so a rank may Put to a
// peer's fresh allocation before the peer has reached its matching Malloc.
func (s *Shm) Malloc(n int64) int64 {
	size := shmem.Align8(n)
	if size <= 0 {
		panic(fmt.Sprintf("core: shmem Malloc of %d bytes", n))
	}
	off, err := s.alloc.Alloc(s.seq, size, s.h.Size())
	if err != nil {
		panic(err.Error())
	}
	off = s.h.Publish(s.seq, off, size)
	s.seq++
	return off
}

// Free releases the symmetric allocation at off (same call-ordering
// obligation as Malloc).
func (s *Shm) Free(off int64) {
	seq, _, err := s.alloc.Release(off)
	if err != nil {
		panic(err.Error())
	}
	s.h.PublishFree(seq)
}

// shipPend encodes op, ships it toward comm rank target on this rank's
// flow, and joins the window's pending set (completed by Quiet/Barrier).
func (s *Shm) shipPend(g, target int, op *shmem.Op) {
	r := s.win.c.r
	f := &rma.Frame{Kind: rma.FrameShmem, WinSeq: s.win.key.Seq,
		Origin: uint32(s.win.c.myRank), Target: uint32(target), Payload: op.Encode(nil)}
	flow, seq := r.rmaTransmit(s.win.key.Comm, g, f)
	s.win.addPend(r.rmaRemoteReq(flow, seq, g, s.win.key.Comm))
}

// shipFetch ships a fetching op (get/fetch-add/cas) and returns the
// request its reply completes; dest receives the reply payload.
func (s *Shm) shipFetch(g, target int, op *shmem.Op, dest []byte) *Request {
	r := s.win.c.r
	if r.rmaGets == nil {
		r.rmaGets = make(map[uint64]*Request)
	}
	r.rmaGetSeq++
	op.Req = r.rmaGetSeq
	req := &Request{kind: reqRmaGet, buf: dest, peer: int32(g), tag: rmaTag, comm: s.win.key.Comm, seq: r.rmaGetSeq}
	r.rmaGets[r.rmaGetSeq] = req
	f := &rma.Frame{Kind: rma.FrameShmem, WinSeq: s.win.key.Seq,
		Origin: uint32(s.win.c.myRank), Target: uint32(target), Payload: op.Encode(nil)}
	r.rmaTransmit(s.win.key.Comm, g, f)
	return req
}

// Put copies data into target's symmetric region at off.  Intra-node it is
// one direct copy (zero allocations); inter-node it is fire-and-forget,
// applied to target memory by the next Quiet/Barrier.  Like rma Put,
// unordered concurrent access to the same bytes is an application race —
// use the atomic cells for concurrently updated words.
func (s *Shm) Put(target int, off int64, data []byte) {
	c := s.win.c
	r := c.r
	c.checkPeer(target, "shmem Put target")
	s.win.w.Check(target, int(off), len(data), "shmem Put")
	r.stats.ShmemPuts++
	g, same := s.win.local(target)
	if same {
		s.win.w.CopyIn(target, int(off), data)
		return
	}
	s.shipPend(g, target, &shmem.Op{Kind: shmem.OpPut, Off: off, Data: data})
}

// Get copies len(dest) bytes from target's symmetric region at off,
// blocking until dest is filled.  Not atomic with respect to concurrent
// cell updates — use AtomicLoad for single hot cells.
func (s *Shm) Get(target int, off int64, dest []byte) {
	c := s.win.c
	r := c.r
	c.checkPeer(target, "shmem Get target")
	s.win.w.Check(target, int(off), len(dest), "shmem Get")
	r.stats.ShmemGets++
	g, same := s.win.local(target)
	if same {
		s.win.w.CopyOut(target, int(off), dest)
		return
	}
	req := s.shipFetch(g, target, &shmem.Op{Kind: shmem.OpGet, Off: off, Val: int64(len(dest))}, dest)
	r.waitReq(req)
}

// AtomicAdd folds delta into the cell at (target, off).  Intra-node it is
// one hardware atomic on the shared window (zero allocations); inter-node
// it is fire-and-forget and applies through the same hardware atomic on
// the target, so adds from every origin compose without lost updates.
func (s *Shm) AtomicAdd(target int, off, delta int64) {
	c := s.win.c
	r := c.r
	c.checkPeer(target, "shmem AtomicAdd target")
	r.stats.ShmemAtomics++
	g, same := s.win.local(target)
	if same {
		shmem.AtomicAdd(s.win.w.Buffer(target), int(off), delta)
		return
	}
	s.shipPend(g, target, &shmem.Op{Kind: shmem.OpAdd, Off: off, Val: delta})
}

// AtomicFetchAdd folds delta into the cell at (target, off) and returns
// the value the cell held immediately before, blocking for the reply on
// the inter-node path.
func (s *Shm) AtomicFetchAdd(target int, off, delta int64) int64 {
	c := s.win.c
	r := c.r
	c.checkPeer(target, "shmem AtomicFetchAdd target")
	r.stats.ShmemAtomics++
	g, same := s.win.local(target)
	if same {
		return shmem.AtomicFetchAdd(s.win.w.Buffer(target), int(off), delta)
	}
	dest := make([]byte, shmem.CellBytes)
	req := s.shipFetch(g, target, &shmem.Op{Kind: shmem.OpFetchAdd, Off: off, Val: delta}, dest)
	r.waitReq(req)
	return int64(binary.LittleEndian.Uint64(dest))
}

// AtomicCAS compares-and-swaps the cell at (target, off): if it holds old,
// it becomes new.  Returns the value the cell held immediately before the
// attempt (the swap happened iff the return equals old).
func (s *Shm) AtomicCAS(target int, off, old, new int64) int64 {
	c := s.win.c
	r := c.r
	c.checkPeer(target, "shmem AtomicCAS target")
	r.stats.ShmemAtomics++
	g, same := s.win.local(target)
	if same {
		return shmem.AtomicCAS(s.win.w.Buffer(target), int(off), old, new)
	}
	dest := make([]byte, shmem.CellBytes)
	req := s.shipFetch(g, target, &shmem.Op{Kind: shmem.OpCAS, Off: off, Val: new, Cmp: old}, dest)
	r.waitReq(req)
	return int64(binary.LittleEndian.Uint64(dest))
}

// AtomicStore publishes v into the cell at (target, off); fire-and-forget
// inter-node, completed by the next Quiet/Barrier.
func (s *Shm) AtomicStore(target int, off, v int64) {
	c := s.win.c
	r := c.r
	c.checkPeer(target, "shmem AtomicStore target")
	r.stats.ShmemAtomics++
	g, same := s.win.local(target)
	if same {
		shmem.AtomicStore(s.win.w.Buffer(target), int(off), v)
		return
	}
	s.shipPend(g, target, &shmem.Op{Kind: shmem.OpStore, Off: off, Val: v})
}

// AtomicLoad returns the cell at (target, off).  The inter-node path is a
// fetch-add of zero, so the read is serialized with every other cell
// operation (a plain remote Get of a hot cell would race the target's
// atomics).
func (s *Shm) AtomicLoad(target int, off int64) int64 {
	c := s.win.c
	c.checkPeer(target, "shmem AtomicLoad target")
	if _, same := s.win.local(target); same {
		c.r.stats.ShmemAtomics++
		return shmem.AtomicLoad(s.win.w.Buffer(target), int(off))
	}
	return s.AtomicFetchAdd(target, off, 0)
}

// Quiet blocks until every outstanding fire-and-forget operation this rank
// issued has been applied at its target (OpenSHMEM shmem_quiet, with the
// runtime's stronger applied-not-just-delivered completion).
func (s *Shm) Quiet() { s.win.completePending() }

// Fence orders this rank's operations toward each target: operations
// issued before the fence apply before operations issued after it.  In
// this runtime that ordering is structural — intra-node ops complete
// immediately in program order, and inter-node ops toward one target ride
// one FIFO flow applied in order — so Fence compiles to nothing; it exists
// so shmem-style programs state their ordering intent portably.
func (s *Shm) Fence() {}

// Barrier is Quiet plus a communicator barrier: on return, every member's
// prior operations are applied everywhere (shmem_barrier_all).
func (s *Shm) Barrier() {
	s.Quiet()
	s.win.c.Barrier()
}

// FreeHeap collectively releases the heap and its backing window.
func (s *Shm) FreeHeap() {
	s.win.Free()
	s.win.c.r.rt.shmReg.Free(shmem.Key(s.win.key))
}

// shmemApply executes one arrived shmem op against this replica (called
// from rmaApply on the target rank's own goroutine).  Atomic kinds go
// through the same hardware atomics as the intra-node fast path; fetching
// kinds reply on the existing get-reply path with the op's request id.
func (r *Rank) shmemApply(in *rmaInbox, w *rma.Window, f *rma.Frame) {
	op, err := shmem.DecodeOp(f.Payload)
	if err != nil {
		panic(fmt.Sprintf("core: rank %d: corrupt shmem op from rank %d: %v", r.id, in.origin, err))
	}
	target := int(f.Target)
	if op.Kind == shmem.OpGet {
		w.Check(target, int(op.Off), int(op.Val), "shmem Get")
		data := make([]byte, op.Val)
		w.CopyOut(target, int(op.Off), data)
		rep := &rma.Frame{Kind: rma.FrameGetRep, WinSeq: f.WinSeq, Origin: f.Target, Target: f.Origin, Aux: op.Req, Payload: data}
		r.rmaTransmit(in.comm, in.origin, rep)
		return
	}
	old, wantRep := op.Apply(w.Buffer(target))
	if wantRep {
		rep := &rma.Frame{Kind: rma.FrameGetRep, WinSeq: f.WinSeq, Origin: f.Target, Target: f.Origin, Aux: op.Req, Payload: binary.LittleEndian.AppendUint64(nil, uint64(old))}
		r.rmaTransmit(in.comm, in.origin, rep)
	}
}

// ---- Mailboxes ----

// Mailbox is an actor-style message queue owned by one rank: a bounded
// MPSC ring in the owner's symmetric region (see internal/shmem/ring.go
// for the slot-stamp protocol) plus a window notify counter as the wake
// hint.  Any member may Send; only the owner may Poll/Recv.  Messages from
// one sender arrive in the order sent (ring tickets are claimed in send
// order); messages from different senders interleave arbitrarily.
type Mailbox struct {
	s     *Shm
	owner int // comm rank that consumes
	ring  shmem.Ring
	head  int64 // consumer cursor (owner-private, unshared by design)
	slot  int   // notify slot (wake hint; the slot stamp is authoritative)
}

// NewMailbox collectively creates a mailbox owned by comm rank owner, with
// capacity cap messages of at most slotBytes bytes (a positive multiple of
// 8).  Every member calls it in the same order (it allocates from the
// symmetric heap); the returned handle is a sender handle everywhere and
// the consumer handle on the owner.
func (s *Shm) NewMailbox(owner, cap, slotBytes int) *Mailbox {
	c := s.win.c
	c.checkPeer(owner, "mailbox owner")
	if cap < 2 || slotBytes < shmem.CellBytes || slotBytes%shmem.CellBytes != 0 {
		// cap >= 2 because the ring's publish and recycle stamps collide at
		// cap 1 (see shmem.InitRing).
		panic(fmt.Sprintf("core: mailbox needs cap >= 2 and a positive multiple-of-8 slot size, got cap %d slot %d", cap, slotBytes))
	}
	base := s.Malloc(shmem.RingBytes(cap, slotBytes))
	m := &Mailbox{s: s, owner: owner, ring: shmem.Ring{Base: base, Cap: cap, Slot: slotBytes},
		slot: s.mboxSeq % rma.NotifySlots}
	s.mboxSeq++
	if c.myRank == owner {
		shmem.InitRing(s.buf, m.ring)
	}
	s.Barrier() // the ring is initialized before any sender can claim
	return m
}

// Owner returns the consuming comm rank.
func (m *Mailbox) Owner() int { return m.owner }

// Cap returns the ring capacity in messages.
func (m *Mailbox) Cap() int { return m.ring.Cap }

// SlotBytes returns the per-message payload capacity.
func (m *Mailbox) SlotBytes() int { return m.ring.Slot }

// Notifications returns the mailbox's cumulative notify-counter value
// (the wake hint; it can trail the stamps, which are authoritative).
func (m *Mailbox) Notifications() uint64 {
	return m.s.win.w.NotifyCount(m.owner, m.slot)
}

// TrySend attempts to deliver msg without blocking; false means the ring
// was full.  Intra-node senders run the model-checked ring steps directly
// on the owner's buffer; inter-node senders run the same steps as
// addressed operations — the claim is a blocking remote CAS, and the
// fill/publish/notify frames ride one FIFO flow, so the owner observes the
// published stamp only after the payload landed.
func (m *Mailbox) TrySend(msg []byte) bool {
	if len(msg) > m.ring.Slot {
		panic(fmt.Sprintf("core: mailbox message of %d bytes exceeds the %d-byte slot", len(msg), m.ring.Slot))
	}
	s := m.s
	r := s.win.c.r
	rg := m.ring
	if _, same := s.win.local(m.owner); same {
		buf := s.win.w.Buffer(m.owner)
		t, ok := shmem.SendClaim(buf, rg)
		if !ok {
			return false
		}
		shmem.SendFill(buf, rg, t, msg)
		shmem.SendPublish(buf, rg, t)
		s.win.w.Notify(m.owner, m.slot)
		r.stats.ShmemSends++
		return true
	}
	for {
		t := s.AtomicLoad(m.owner, rg.TailOff())
		st := s.AtomicLoad(m.owner, rg.StampOff(rg.SlotOf(t)))
		if st < t {
			return false // slot not recycled: ring full
		}
		if st > t {
			continue // stale tail; reload
		}
		if s.AtomicCAS(m.owner, rg.TailOff(), t, t+1) != t {
			continue // lost the ticket race
		}
		i := rg.SlotOf(t)
		s.Put(m.owner, rg.PayloadOff(i), msg)
		s.AtomicStore(m.owner, rg.LenOff(i), int64(len(msg)))
		s.AtomicStore(m.owner, rg.StampOff(i), t+1)
		s.win.Notify(m.owner, m.slot)
		r.stats.ShmemSends++
		return true
	}
}

// Send delivers msg, blocking while the ring is full (backpressure from a
// slow consumer).  The wait steals work like every runtime wait.
func (m *Mailbox) Send(msg []byte) {
	if m.TrySend(msg) {
		return
	}
	r := m.s.win.c.r
	g := m.s.win.c.sh.members[m.owner]
	r.pendRec = WaitRecord{Kind: WaitShmem, Peer: g, Tag: rmaTag, Comm: m.s.win.key.Comm, Op: "mailbox-send"}
	r.leafWaitVia(false, func() bool {
		r.rmaProgress()
		return m.TrySend(msg)
	})
}

// checkOwner guards the consumer-only entry points.
func (m *Mailbox) checkOwner(what string) {
	if m.s.win.c.myRank != m.owner {
		panic(fmt.Sprintf("core: rank %d called mailbox %s but rank %d owns the mailbox", m.s.win.c.myRank, what, m.owner))
	}
}

// ready reports whether the message at the consumer cursor is published.
func (m *Mailbox) ready() bool {
	return shmem.PollStamp(m.s.buf, m.ring, m.head)
}

// Poll attempts to consume one message into dst (which must hold SlotBytes
// bytes) without blocking, returning its length and true, or (0, false)
// when the mailbox is empty.  Owner only.
func (m *Mailbox) Poll(dst []byte) (int, bool) {
	m.checkOwner("Poll")
	r := m.s.win.c.r
	r.rmaProgress() // apply senders' frames before declaring empty
	if !m.ready() {
		return 0, false
	}
	return m.consume(dst), true
}

func (m *Mailbox) consume(dst []byte) int {
	if len(dst) < m.ring.Slot {
		panic(fmt.Sprintf("core: mailbox Poll/Recv dst of %d bytes is smaller than the %d-byte slot", len(dst), m.ring.Slot))
	}
	n := shmem.Consume(m.s.buf, m.ring, m.head, dst)
	m.head++
	m.s.win.c.r.stats.ShmemRecvs++
	return n
}

// Recv consumes one message into dst, blocking until one is published.
// Owner only; the wait parks via the SSW loop (stealing locally, sleeping
// for the netpoller when the senders are in other processes).
func (m *Mailbox) Recv(dst []byte) int {
	m.checkOwner("Recv")
	r := m.s.win.c.r
	if r.rmaProgress(); m.ready() {
		return m.consume(dst)
	}
	lw := lazyWait{r: r, rec: WaitRecord{
		Kind: WaitShmem, Peer: -1, Tag: rmaTag, Comm: m.s.win.key.Comm, Seq: uint64(m.head) + 1, Op: "mailbox-recv",
	}, idle: r.rt.tp != nil && m.s.win.c.multiNode()}
	lw.wait(func() bool {
		if m.ready() {
			return true
		}
		schedpoint("core:shmem:recv-poll")
		r.rmaProgress()
		return m.ready()
	})
	lw.finish()
	return m.consume(dst)
}

// Select blocks until at least one of the caller-owned mailboxes has a
// published message and returns its index (the selector pattern from the
// actor-PGAS line of work).  It does not consume — follow with Poll/Recv
// on the returned mailbox.  When several are ready, the lowest index wins.
func (s *Shm) Select(mboxes ...*Mailbox) int {
	if len(mboxes) == 0 {
		panic("core: shmem Select over no mailboxes")
	}
	for _, m := range mboxes {
		m.checkOwner("Select")
	}
	r := s.win.c.r
	pick := -1
	scan := func() bool {
		for i, m := range mboxes {
			if m.ready() {
				pick = i
				return true
			}
		}
		return false
	}
	if r.rmaProgress(); scan() {
		return pick
	}
	lw := lazyWait{r: r, rec: WaitRecord{
		Kind: WaitShmem, Peer: -1, Tag: rmaTag, Comm: s.win.key.Comm, Op: "mailbox-select",
	}, idle: r.rt.tp != nil && s.win.c.multiNode()}
	lw.wait(func() bool {
		if scan() {
			return true
		}
		schedpoint("core:shmem:select-poll")
		r.rmaProgress()
		return scan()
	})
	lw.finish()
	return pick
}
