package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ssw"
)

// ---- Wait registry ----
//
// Every place a rank blocks in the SSW-Loop publishes a WaitRecord first:
// what the rank is blocked on, the peer it is waiting for, and the channel
// coordinates.  The watchdog reads the records concurrently to build the
// rank-to-rank wait-for graph, and the abort path reads them to report what
// each unwound survivor was blocked on.  Records are immutable once
// published (a fresh record per blocking wait), so a lock-free atomic
// pointer per rank is all the synchronization needed.

// WaitKind classifies what a blocked rank is waiting for.
type WaitKind uint8

// Wait kinds.
const (
	WaitNone       WaitKind = iota
	WaitP2PRecv             // eager receive: waiting for the sender's payload
	WaitP2PSend             // eager send: waiting for the receiver to drain a PBQ slot
	WaitRvzRecv             // rendezvous receive: waiting for the sender's handoff
	WaitRvzSend             // rendezvous send: waiting for the receiver to post an envelope
	WaitRemoteRecv          // inter-node receive: waiting for a mailbox arrival
	WaitRemoteAck           // inter-node reliable send: waiting for the link-layer ack
	WaitCollective          // inside a collective phase (SPTD / PartitionedReducer / leader tree)
	WaitTask                // Task.Execute straggler wait (stolen chunks still running)
	WaitRmaRemote           // one-sided remote op: waiting for target-side application (or a Get reply)
	WaitRmaFence            // window fence: waiting for every member's epoch flag
	WaitRmaPSCW             // PSCW start/wait: waiting for a peer's post/complete flag
	WaitRmaNotify           // NotifyWait: waiting for a window notification counter
	WaitApp                 // Rank.WaitFor: waiting on an application-defined condition
	WaitShmem               // mailbox Recv/Select: waiting for a published ring slot
)

var waitKindNames = [...]string{
	"none", "p2p-recv", "p2p-send", "rendezvous-recv", "rendezvous-send",
	"remote-recv", "remote-send-ack", "collective", "task",
	"rma-remote", "rma-fence", "rma-pscw", "rma-notify", "app-wait",
	"shmem-mailbox",
}

// String returns the kind's stable name (used in diagnostics and exports).
func (k WaitKind) String() string {
	if int(k) < len(waitKindNames) {
		return waitKindNames[k]
	}
	return fmt.Sprintf("WaitKind(%d)", int(k))
}

// waitsOnPeer reports whether the kind blocks on one identifiable peer rank
// (the edges of the wait-for graph).
func (k WaitKind) waitsOnPeer() bool {
	switch k {
	case WaitP2PRecv, WaitP2PSend, WaitRvzRecv, WaitRvzSend, WaitRemoteRecv, WaitRemoteAck,
		WaitRmaRemote, WaitRmaPSCW:
		return true
	}
	return false
}

// WaitRecord is one rank's published "what am I blocked on" record.
type WaitRecord struct {
	Kind WaitKind
	Peer int    // global peer rank, -1 when not peer-directed
	Tag  int    // message tag (p2p kinds)
	Comm uint64 // communicator id
	Seq  uint64 // SPTD round / rendezvous ticket / remote link sequence
	Op   string // collective op name ("barrier", "allreduce", ...), else ""
	// Since is the wall-clock time the rank blocked (for "blocked for X"
	// diagnostics).
	Since time.Time
}

func (w *WaitRecord) describe() string {
	if w == nil {
		return "running (not blocked in the runtime)"
	}
	var b strings.Builder
	if w.Op != "" {
		fmt.Fprintf(&b, "%s %s", w.Kind, w.Op)
	} else {
		b.WriteString(w.Kind.String())
	}
	if w.Peer >= 0 {
		fmt.Fprintf(&b, " <-> rank %d", w.Peer)
	}
	fmt.Fprintf(&b, " (tag %d, comm %d", w.Tag, w.Comm)
	if w.Seq != 0 {
		fmt.Fprintf(&b, ", seq %d", w.Seq)
	}
	fmt.Fprintf(&b, ", blocked %s)", time.Since(w.Since).Round(time.Millisecond))
	return b.String()
}

// rankWaitSlot is the runtime-owned per-rank observability slot.  It lives in
// a runtime-level array (not on Rank) so the watchdog can scan it even while
// a rank is still bootstrapping, and so a rank that dies in newRank leaves a
// readable slot behind.
type rankWaitSlot struct {
	// waiting is the currently published record; nil means the rank is
	// running application code (or is done).
	waiting atomic.Pointer[WaitRecord]
	// progress counts completed blocking operations and successful steals;
	// the watchdog declares a hang only when the sum over all ranks stops
	// moving.
	progress atomic.Uint64
	// done is set when the rank's main has returned (normally or not).
	done atomic.Bool
	// unwound is set when the rank was forcibly unwound by runtime poisoning
	// rather than returning or failing on its own.
	unwound atomic.Bool
	_       [64]byte
}

// beginWait publishes rec as the rank's blocking state and returns the
// previously published record so nested waits (a collective whose leader
// blocks in p2p leader-tree traffic) can restore it.
func (r *Rank) beginWait(rec *WaitRecord) *WaitRecord {
	rec.Since = time.Now()
	prev := r.slot.waiting.Load()
	r.slot.waiting.Store(rec)
	return prev
}

// endWait restores the previous record and ticks the progress counter.  It is
// deliberately not deferred: when an abort unwinds the rank mid-wait the
// record must survive so diagnostics can say what the rank was blocked on.
func (r *Rank) endWait(prev *WaitRecord) {
	r.slot.waiting.Store(prev)
	r.slot.progress.Add(1)
}

// lazyPublishProbes is how many failed condition probes a wait burns before
// publishing its record.  A wait satisfied while its peer is merely in
// flight (a ping-pong leg, a collective phase) probes a few dozen times;
// 1024 keeps every such wait off the registry while a genuinely blocked
// rank still publishes within microseconds — far inside any usable
// HangTimeout, which is the only consumer of the records.
const lazyPublishProbes = 1024

// lazyWait defers wait-record publication until the wait has proven slow.
// Waits satisfied on the fast path — the common case on the
// latency-critical p2p and collective paths — never touch the registry (no
// allocation, no clock read, no shared stores).  Diagnostics lose nothing:
// a genuinely blocked rank publishes within microseconds (far inside any
// usable HangTimeout), and a wait caught by an abort unwind before its
// threshold publishes its record from the unwind handler, so the failure
// report still names what every rank was blocked on.
type lazyWait struct {
	r         *Rank
	rec       WaitRecord // pending record; copied to the heap only on publish
	prev      *WaitRecord
	probes    int
	published bool
	// idle marks a wait completed by the transport's reader goroutine
	// (inter-node frames over a real socket) rather than by a local rank's
	// store: it selects the netpoller-friendly sleep-backoff SSW loop.
	idle bool
}

// wait runs one SSW wait under the pending record.  A multi-phase caller (a
// collective) may call it repeatedly; the probe count accumulates and the
// record is published at most once.
//
// Live (pre-abort) publication only matters to the hang watchdog, so the
// probe-counting wrapper runs only when HangTimeout is armed; otherwise the
// raw condition goes straight to the SSW loop and the registry costs one
// deferred flag check per wait.  Abort diagnostics are unaffected either
// way: the unwind handler below settles the record as the rank dies.
func (lw *lazyWait) wait(cond func() bool) {
	completed := false
	defer func() {
		if !completed {
			// An abort panic is unwinding this wait.
			lw.r.settleUnwoundWait(lw)
		}
	}()
	if lw.published || !lw.r.liveWaitRecords {
		lw.r.sswWait(lw.idle, cond)
	} else {
		lw.r.sswWait(lw.idle, func() bool {
			if cond() {
				return true
			}
			if !lw.published {
				if lw.probes++; lw.probes >= lazyPublishProbes {
					p := new(WaitRecord)
					*p = lw.rec
					lw.prev = lw.r.beginWait(p)
					lw.published = true
				}
			}
			return false
		})
	}
	completed = true
}

// finish closes the record out if it was published.  Like endWait it is
// deliberately not deferred, so an abort unwind leaves the record visible.
func (lw *lazyWait) finish() {
	if lw.published {
		lw.r.endWait(lw.prev)
	}
}

// leafWait runs one SSW wait for a leaf blocking site — a p2p or remote
// stall with no waits nested inside it, which is also the latency-critical
// case.  The caller stamps r.pendRec immediately before calling; the
// always-on cost is only those plain stores to rank-owned fields.  When the
// watchdog is armed the condition is wrapped to publish the record after
// lazyPublishProbes failed probes; when a poison unwind catches the wait
// earlier (or the watchdog is off), the nearest lazyWait unwind handler or
// the rank bootstrap settles r.pendRec into the slot instead.
//
// One sacrifice for the cheap stamp: there is no save/restore nesting.  A
// stolen task chunk that itself blocks in communication (legal but rare)
// overwrites the thief's pending record, so an unwind caught between that
// inner wait's completion and the outer wait's is reported without a
// record.  The watchdog path is unaffected — its records are published, not
// pending.
func (r *Rank) leafWait(cond func() bool) { r.leafWaitVia(false, cond) }

// leafWaitIdle is leafWait for conditions completed by the transport's
// reader goroutine (an inter-node frame arriving over a real socket)
// rather than by a rank spinning on this node: it backs off to short
// sleeps so the netpoller gets scheduled.  See ssw.Waiter.WaitIdle.
func (r *Rank) leafWaitIdle(cond func() bool) { r.leafWaitVia(true, cond) }

// sswWait dispatches one condition to the SSW loop, choosing the spin
// (local completion) or sleep-backoff (socket completion) discipline.  A
// branch rather than a method value on purpose: binding r.wait.Wait to a
// variable allocates, and this dispatcher sits on the zero-allocation
// eager paths.
func (r *Rank) sswWait(idle bool, cond func() bool) {
	if idle {
		r.wait.WaitIdle(cond)
	} else {
		r.wait.Wait(cond)
	}
}

func (r *Rank) leafWaitVia(idle bool, cond func() bool) {
	r.pendActive = true
	r.pendPublished = false
	if !r.liveWaitRecords {
		r.sswWait(idle, cond)
	} else {
		probes := 0
		var prev *WaitRecord
		r.sswWait(idle, func() bool {
			if cond() {
				return true
			}
			if !r.pendPublished {
				if probes++; probes >= lazyPublishProbes {
					p := new(WaitRecord)
					*p = r.pendRec
					prev = r.beginWait(p)
					r.pendPublished = true
				}
			}
			return false
		})
		if r.pendPublished {
			r.endWait(prev)
		}
	}
	r.pendActive = false
}

// settleUnwoundWait runs while an abort panic unwinds the rank and makes
// sure its most specific interrupted wait ends up published for
// diagnostics.  The innermost handler on the stack (a lazyWait defer, or
// the rank bootstrap when the interrupted wait was a leaf) settles it;
// outer handlers then leave the slot alone.
func (r *Rank) settleUnwoundWait(lw *lazyWait) {
	if r.unwindPublished {
		return
	}
	r.unwindPublished = true
	switch {
	case r.pendActive:
		// A leaf wait was interrupted; its pending record wins over any
		// enclosing collective's.
		if !r.pendPublished {
			p := new(WaitRecord)
			*p = r.pendRec
			r.beginWait(p)
			r.pendPublished = true
		}
	case lw != nil && !lw.published:
		p := new(WaitRecord)
		*p = lw.rec
		r.beginWait(p)
		lw.published = true
	}
}

// ---- Runtime poisoning ----

// Abort causes.
const (
	CausePanic    = "panic"     // a rank panicked
	CauseAbort    = "abort"     // a rank called Rank.Abort
	CauseDeadlock = "deadlock"  // watchdog found a wait-for cycle
	CauseStall    = "stall"     // watchdog found global no-progress without a cycle
	CauseDeadline = "deadline"  // Config.Deadline expired
	CauseNetDead  = "net-dead"  // a remote send exhausted its retry budget
	CauseNodeDead = "node-dead" // the transport failure detector declared a peer node dead
)

// errPoisoned is what Waiter.Poison returns once the runtime is aborted; the
// detailed diagnosis lives in the abort state and is assembled into the
// *RunError that Run returns.
var errPoisoned = errors.New("core: runtime aborted")

// abortState is the runtime's poison flag plus the first abort's diagnosis
// (first cause wins; later aborts are usually cascades of the first).
type abortState struct {
	flag  atomic.Bool
	mu    sync.Mutex
	cause string
	text  string
	diag  string // multi-line watchdog diagnostic, "" unless the watchdog fired
	cycle []int
	// deadNodes lists peer nodes the transport declared dead or aborted
	// (CauseNodeDead); it accumulates even after the first poison so a
	// multi-node failure names every lost peer.
	deadNodes []int
}

// poison aborts the runtime: the first caller records the cause, every
// subsequent SSW wait observes the flag and unwinds its rank with an
// AbortPanic.  Safe to call from any goroutine, including the watchdog.
func (rt *Runtime) poison(cause, text, diag string, cycle []int) {
	rt.abort.mu.Lock()
	defer rt.abort.mu.Unlock()
	if rt.abort.flag.Load() {
		return
	}
	rt.abort.cause = cause
	rt.abort.text = text
	rt.abort.diag = diag
	rt.abort.cycle = cycle
	rt.abort.flag.Store(true)
	if rt.met != nil {
		rt.met.aborts.Inc()
		if cause == CauseDeadlock || cause == CauseStall {
			rt.met.hangs.Inc()
		}
	}
	// With a real transport attached, tell every peer node this runtime is
	// going down (an abort-flagged Bye) so survivors propagate the failure
	// immediately instead of waiting out their heartbeat detectors.  On a
	// separate goroutine: Abort takes link locks and this path may run from
	// a transport callback already holding them.
	if rt.tp != nil && cause != CauseNodeDead {
		msg := fmt.Sprintf("node %d aborted (%s): %s", rt.tp.Node(), cause, text)
		go rt.tp.Abort(msg, nil)
	}
}

// poisonNodeDead poisons the runtime because a peer node failed (the
// transport's failure detector gave up on it, or it announced its own
// abort).  The node joins the RunError's DeadNodes list even when the
// runtime is already poisoned, so a cascading multi-node failure reports
// every lost peer.
func (rt *Runtime) poisonNodeDead(node int, text string) {
	rt.abort.mu.Lock()
	for _, n := range rt.abort.deadNodes {
		if n == node {
			rt.abort.mu.Unlock()
			return
		}
	}
	rt.abort.deadNodes = append(rt.abort.deadNodes, node)
	rt.abort.mu.Unlock()
	rt.poison(CauseNodeDead, text, "", nil)
}

// abortErr is the Waiter.Poison hook: nil until the runtime is poisoned.
// The un-poisoned fast path is a single atomic load.
func (rt *Runtime) abortErr() error {
	if !rt.abort.flag.Load() {
		return nil
	}
	return errPoisoned
}

// checkPoison unwinds the calling rank if the runtime has been poisoned.
// Blocking loops that cannot go through Waiter.Wait (the rendezvous
// completion-ring push) call it between probes.
func (r *Rank) checkPoison() {
	if err := r.rt.abortErr(); err != nil {
		panic(ssw.AbortPanic{Err: err})
	}
}

// Abort poisons the runtime on behalf of the calling rank and unwinds it.
// Every other rank blocked in the runtime unwinds too, and Run returns a
// *RunError listing this rank as failed.  Abort does not return.
func (r *Rank) Abort(err error) {
	if err == nil {
		err = errors.New("aborted")
	}
	r.rt.poison(CauseAbort, fmt.Sprintf("rank %d called Abort: %v", r.id, err), "", nil)
	panic(rankAbortPanic{err: err})
}

// rankAbortPanic carries a Rank.Abort through the unwind so the bootstrap can
// tell a deliberate abort from an accidental panic.
type rankAbortPanic struct{ err error }

// ---- Run errors ----

// RankFailure names one failed rank and why it failed.
type RankFailure struct {
	Rank   int
	Reason string // panic value or Abort error text
}

// BlockedRank is a surviving rank that was forcibly unwound, with the wait it
// was parked in when the runtime aborted.
type BlockedRank struct {
	Rank int
	Wait *WaitRecord // nil when the rank was running application code
}

// RunError is the structured error Run returns when the runtime aborts
// instead of completing: which ranks failed, what every unwound survivor was
// blocked on, and — when the watchdog fired — the wait-for cycle and its
// multi-line diagnostic dump.
type RunError struct {
	// Cause is one of CausePanic, CauseAbort, CauseDeadlock, CauseStall,
	// CauseDeadline, CauseNetDead.
	Cause string
	// Text is the one-line summary of the first abort cause.
	Text string
	// Failures lists every rank that panicked or called Abort (all of them,
	// not just the first), ordered by rank.
	Failures []RankFailure
	// Blocked lists the surviving ranks that were unwound mid-wait, ordered
	// by rank.
	Blocked []BlockedRank
	// Cycle is the wait-for cycle the watchdog identified (rank ids, in
	// order; the last waits on the first), or nil.
	Cycle []int
	// DeadNodes lists the peer nodes whose failure caused the abort (set
	// with CauseNodeDead: the transport's failure detector gave up on them
	// or they announced their own abort), ordered by node id.
	DeadNodes []int
	// Diag is the watchdog's full diagnostic dump ("" unless it fired).
	Diag string
}

// maxBlockedLines bounds the per-rank listing in Error() so a 10k-rank abort
// stays readable; the full list is in Blocked.
const maxBlockedLines = 16

// Error renders the multi-line diagnostic.
func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: run aborted (%s): %s", e.Cause, e.Text)
	if len(e.DeadNodes) > 0 {
		b.WriteString("\n  dead nodes:")
		for _, n := range e.DeadNodes {
			fmt.Fprintf(&b, " %d", n)
		}
	}
	if len(e.Cycle) > 0 {
		b.WriteString("\n  wait-for cycle: ")
		for _, r := range e.Cycle {
			fmt.Fprintf(&b, "rank %d -> ", r)
		}
		fmt.Fprintf(&b, "rank %d", e.Cycle[0])
	}
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "\n  rank %d failed: %s", f.Rank, f.Reason)
	}
	for i, s := range e.Blocked {
		if i == maxBlockedLines {
			fmt.Fprintf(&b, "\n  ... and %d more blocked ranks", len(e.Blocked)-i)
			break
		}
		fmt.Fprintf(&b, "\n  rank %d blocked: %s", s.Rank, s.Wait.describe())
	}
	if e.Diag != "" {
		b.WriteString("\n")
		b.WriteString(e.Diag)
	}
	return b.String()
}

// buildRunError assembles the *RunError after every rank goroutine has
// stopped.  failures is what the rank bootstraps collected; the blocked list
// comes from the wait slots of unwound ranks.
func (rt *Runtime) buildRunError(failures []RankFailure) *RunError {
	sort.Slice(failures, func(a, b int) bool { return failures[a].Rank < failures[b].Rank })
	rt.abort.mu.Lock()
	e := &RunError{
		Cause:    rt.abort.cause,
		Text:     rt.abort.text,
		Failures: failures,
		Cycle:    rt.abort.cycle,
		Diag:     rt.abort.diag,
	}
	if len(rt.abort.deadNodes) > 0 {
		e.DeadNodes = append(e.DeadNodes, rt.abort.deadNodes...)
		sort.Ints(e.DeadNodes)
	}
	rt.abort.mu.Unlock()
	if e.Cause == "" { // failures without runtime poisoning cannot happen, but stay safe
		e.Cause = CausePanic
	}
	if e.Text == "" && len(failures) > 0 {
		e.Text = fmt.Sprintf("rank %d failed: %s", failures[0].Rank, failures[0].Reason)
	}
	for id := range rt.waitSlots {
		s := &rt.waitSlots[id]
		if s.unwound.Load() {
			e.Blocked = append(e.Blocked, BlockedRank{Rank: id, Wait: s.waiting.Load()})
		}
	}
	return e
}

// emitAbortEvent records the rank's forced unwind in its trace ring (the
// ring is single-writer, and this runs on the rank's own goroutine during
// the unwind, so it is the one safe place to emit it).
func (r *Rank) emitAbortEvent() {
	if r == nil || r.trace == nil {
		return
	}
	peer := int32(-1)
	var arg int64
	if w := r.slot.waiting.Load(); w != nil {
		if w.Peer >= 0 {
			peer = int32(w.Peer)
		}
		arg = int64(w.Kind)
	}
	r.trace.Emit(obs.KAbortUnwind, peer, arg)
}
