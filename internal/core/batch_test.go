package core

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/ssw"
	"repro/internal/topology"
)

// setProcs pins GOMAXPROCS for a subtest and returns a restore func (also
// registered as a cleanup, for the early-exit paths).
func setProcs(t *testing.T, n int) func() {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	restore := func() { runtime.GOMAXPROCS(old) }
	t.Cleanup(restore)
	return restore
}

func TestSendBatchRoundTrip(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			ch := c.SendChannel(1, 0)
			ch.SendBatch([][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")})
			ch.SendBatch([][]byte{[]byte("solo")})
		} else {
			ch := c.RecvChannel(0, 0)
			buf := make([]byte, 256)
			msgs := ch.RecvBatch(buf, nil)
			want := []string{"alpha", "", "gamma-gamma"}
			if len(msgs) != len(want) {
				t.Errorf("batch 1: %d messages, want %d", len(msgs), len(want))
				return
			}
			for i, w := range want {
				if string(msgs[i]) != w {
					t.Errorf("batch 1 msg %d = %q, want %q", i, msgs[i], w)
				}
			}
			msgs = ch.RecvBatch(buf, msgs)
			if len(msgs) != 1 || string(msgs[0]) != "solo" {
				t.Errorf("batch 2 = %q", msgs)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBatchRemote(t *testing.T) {
	// The same batch frames cross the modeled inter-node network.
	err := Run(Config{NRanks: 2, Spec: topology.Spec{Nodes: 2, SocketsPerNode: 1, CoresPerSocket: 1, ThreadsPerCore: 1}},
		func(r *Rank) {
			c := r.World()
			if r.ID() == 0 {
				c.SendChannel(1, 0).SendBatch([][]byte{[]byte("cross"), []byte("node")})
			} else {
				ch := c.RecvChannel(0, 0)
				buf := make([]byte, 256)
				var msgs [][]byte
				r.WaitFor(func() bool {
					var ok bool
					msgs, ok = ch.TryRecvBatch(buf, msgs)
					return ok
				})
				if len(msgs) != 2 || string(msgs[0]) != "cross" || string(msgs[1]) != "node" {
					t.Errorf("remote batch = %q", msgs)
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrySendBackpressure(t *testing.T) {
	err := Run(Config{NRanks: 2, PBQSlots: 4}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			ch := c.SendChannel(1, 0)
			sent := 0
			for ch.TrySend([]byte{byte(sent)}) {
				sent++
				if sent > 64 {
					t.Error("TrySend never refused on a full 4-slot queue")
					break
				}
			}
			if sent != 4 {
				t.Errorf("TrySend accepted %d messages into a 4-slot queue", sent)
			}
			c.Barrier() // queue is full; only now may the receiver drain
			// The receiver expects exactly `sent` messages then a stop byte.
			ch.Send([]byte{255, byte(sent)})
		} else {
			c.Barrier() // let the sender fill the queue first
			ch := c.RecvChannel(0, 0)
			buf := make([]byte, 8)
			got := 0
			for {
				n := ch.Recv(buf)
				if n == 2 && buf[0] == 255 {
					if int(buf[1]) != got {
						t.Errorf("received %d data messages, sender committed %d", got, buf[1])
					}
					break
				}
				if buf[0] != byte(got) {
					t.Errorf("message %d carried %d (drop-policy reordering?)", got, buf[0])
				}
				got++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrySendBarrierOrder(t *testing.T) {
	// TrySendBackpressure's sender fills the queue before the receiver
	// drains; this variant pins that the barrier above cannot deadlock with
	// PBQSlots=4 (the sender stops at the full queue rather than stalling).
	// Also covers TryRecv on an endpoint whose queue doesn't exist yet.
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			ch := c.RecvChannel(1, 3)
			buf := make([]byte, 16)
			if _, ok := ch.TryRecv(buf); ok {
				t.Error("TryRecv found a message before anything was sent")
			}
			if ch.RecvReady() {
				t.Error("RecvReady true before anything was sent")
			}
			c.Barrier()
			var n int
			r.WaitFor(func() bool {
				var ok bool
				n, ok = ch.TryRecv(buf)
				return ok
			})
			if n != 5 || !bytes.Equal(buf[:5], []byte("hello")) {
				t.Errorf("TryRecv got %q", buf[:n])
			}
		} else {
			c.Barrier()
			c.SendChannel(0, 3).Send([]byte("hello"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBatchTooLargePanics(t *testing.T) {
	err := Run(Config{NRanks: 2, SmallMsgMax: 64}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("oversized SendBatch did not panic")
				}
				c.SendChannel(1, 0).Send([]byte("done"))
			}()
			c.SendChannel(1, 0).SendBatch([][]byte{make([]byte, 128)})
		} else {
			buf := make([]byte, 32)
			c.RecvChannel(0, 0).Recv(buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitForStealsAndAborts(t *testing.T) {
	// A rank parked in WaitFor must unwind when the runtime is poisoned
	// (here: by a peer abort), like any runtime-internal blocking site.
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() == 0 {
			r.WaitFor(func() bool { return false }) // waits forever: only the abort frees it
			t.Error("WaitFor returned without its condition")
		} else {
			r.Abort(fmt.Errorf("statsd test abort"))
		}
	})
	if err == nil {
		t.Fatal("Run returned nil after an abort under WaitFor")
	}
}

// TestDeriveSpinBudget pins the graded budget derivation (ROADMAP item 2:
// the ssw budget must track GOMAXPROCS vs the ranks this process hosts).
func TestDeriveSpinBudget(t *testing.T) {
	cases := []struct {
		gomaxprocs, live, want int
	}{
		{8, 2, ssw.DefaultSpinBudget},  // undersubscribed: spin freely
		{4, 4, ssw.DefaultSpinBudget},  // exactly covered
		{16, 0, ssw.DefaultSpinBudget}, // degenerate
		{1, 2, 2},                      // single P: near-immediate yield
		{1, 64, 2},
		{4, 8, 32},  // graded by occupancy ratio
		{2, 16, 8},  //
		{2, 128, 4}, // graded floor
	}
	for _, c := range cases {
		if got := deriveSpinBudget(c.gomaxprocs, c.live); got != c.want {
			t.Errorf("deriveSpinBudget(%d, %d) = %d, want %d", c.gomaxprocs, c.live, got, c.want)
		}
	}
}

// TestOversubscribedWaitYieldsEarly is the satellite regression test: on an
// oversubscribed host (GOMAXPROCS=1 modeled, many live ranks) a blocked
// receive must NOT burn a full default spin budget per wakeup.  Poison runs
// exactly at each yield boundary, so counting probes between Poison calls
// measures precisely what one wakeup costs.
func TestOversubscribedWaitYieldsEarly(t *testing.T) {
	budget := deriveSpinBudget(1, 8)
	probes, yields := 0, 0
	var perWakeup []int
	last := 0
	w := ssw.Waiter{
		SpinBudget: budget,
		Poison: func() error {
			yields++
			perWakeup = append(perWakeup, probes-last)
			last = probes
			return nil
		},
	}
	w.Wait(func() bool { probes++; return yields >= 4 })
	for i, p := range perWakeup {
		if p > 2 {
			t.Fatalf("wakeup %d burned %d probes before yielding (budget %d); want <= 2 on an oversubscribed host",
				i, p, budget)
		}
	}
	if yields < 4 {
		t.Fatalf("only %d yield boundaries observed", yields)
	}
}

// TestSpinBudgetDerivedFromLiveRanks: an oversubscribed run (more ranks
// than GOMAXPROCS) must derive a reduced budget, and an exactly-covered run
// the full one.  White-box: ranks read the resolved config.
func TestSpinBudgetDerivedFromLiveRanks(t *testing.T) {
	restore := setProcs(t, 1)
	got := 0
	if err := Run(Config{NRanks: 4}, func(r *Rank) {
		if r.ID() == 0 {
			got = r.rt.cfg.SpinBudget
		}
	}); err != nil {
		t.Fatal(err)
	}
	restore()
	if got != 2 {
		t.Fatalf("4 ranks on GOMAXPROCS=1 derived budget %d, want 2", got)
	}

	setProcs(t, 4)
	if err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() == 0 {
			got = r.rt.cfg.SpinBudget
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got != ssw.DefaultSpinBudget {
		t.Fatalf("2 ranks on GOMAXPROCS=4 derived budget %d, want %d", got, ssw.DefaultSpinBudget)
	}
}

// BenchmarkChannelSendBatch measures the coalesced many-small-messages
// path: one enqueue per 32-message batch, against
// BenchmarkChannelSendUnbatched's message-per-enqueue baseline.  ns/op is
// per *message* in both, and both must report 0 allocs/op.
func BenchmarkChannelSendBatch(b *testing.B) {
	const batch = 32
	benchProcs(b)
	b.ReportAllocs()
	benchBatchedPipe(b, batch)
}

// BenchmarkChannelSendUnbatched is the per-message baseline for
// BenchmarkChannelSendBatch.
func BenchmarkChannelSendUnbatched(b *testing.B) {
	benchProcs(b)
	b.ReportAllocs()
	benchBatchedPipe(b, 1)
}

func benchBatchedPipe(b *testing.B, batch int) {
	const msgSize = 25 // one statsd record
	err := Run(Config{NRanks: 2, PBQSlots: 64}, func(r *Rank) {
		c := r.World()
		iters := (b.N + batch - 1) / batch
		if r.ID() == 0 {
			ch := c.SendChannel(1, 0)
			ack := c.RecvChannel(1, 1)
			msgs := make([][]byte, batch)
			payload := make([]byte, msgSize*batch)
			for i := range msgs {
				msgs[i] = payload[i*msgSize : (i+1)*msgSize]
			}
			ackBuf := make([]byte, 8)
			c.Barrier()
			b.ResetTimer()
			for i := 0; i < iters; i++ {
				if batch == 1 {
					ch.Send(msgs[0])
				} else {
					ch.SendBatch(msgs)
				}
				if i%16 == 15 {
					ack.Recv(ackBuf) // keep the queue from being the bottleneck
				}
			}
			b.StopTimer()
		} else {
			ch := c.RecvChannel(0, 0)
			ack := c.SendChannel(0, 1)
			buf := make([]byte, msgSize*batch+batchHeader+batchMsgHeader*batch)
			msgs := make([][]byte, 0, batch)
			c.Barrier()
			for i := 0; i < iters; i++ {
				if batch == 1 {
					ch.Recv(buf[:msgSize])
				} else {
					msgs = ch.RecvBatch(buf, msgs)
				}
				if i%16 == 15 {
					ack.Send([]byte{1})
				}
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
