package core

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topology"
)

// This file is the robustness suite: watchdog hang diagnosis, panic
// containment and cooperative abort, and the netsim fault-injection /
// link-layer recovery path.  The TestChaos* subset is what `make chaos` runs
// under -race across several seeds.

// chaosSeeds returns the fault-injection seeds to sweep: {1, 2, 3} by
// default, overridable with PURE_CHAOS_SEEDS=comma,separated,ints.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("PURE_CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad PURE_CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// twoNodeConfig is a 2-node cluster with rpn ranks per node and a cheap
// modeled wire, the base for cross-node fault tests.
func twoNodeConfig(rpn int) Config {
	return Config{
		NRanks:       2 * rpn,
		Spec:         topology.Spec{Nodes: 2, SocketsPerNode: 2, CoresPerSocket: (rpn + 3) / 4 * 2, ThreadsPerCore: 1},
		RanksPerNode: rpn,
		Net:          netsim.Config{LatencyNs: 200, BytesPerNs: 10, TimeScale: 10},
	}
}

func asRunError(t *testing.T, err error) *RunError {
	t.Helper()
	if err == nil {
		t.Fatal("want *RunError, got nil")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	return re
}

// ---- Watchdog: deadlock and stall diagnosis ----

func TestWatchdogDeadlockRing(t *testing.T) {
	// Every rank receives from its left neighbor and nobody ever sends: the
	// canonical 4-cycle.  The watchdog must name it within HangTimeout.
	const n = 4
	start := time.Now()
	err := Run(Config{NRanks: n, HangTimeout: 150 * time.Millisecond}, func(r *Rank) {
		buf := make([]byte, 8)
		r.World().Recv(buf, (r.ID()+n-1)%n, 7)
	})
	re := asRunError(t, err)
	if re.Cause != CauseDeadlock {
		t.Fatalf("cause = %q, want %q (err: %v)", re.Cause, CauseDeadlock, err)
	}
	if len(re.Cycle) != n {
		t.Fatalf("cycle = %v, want all %d ranks", re.Cycle, n)
	}
	if re.Cycle[0] != 0 {
		t.Fatalf("cycle = %v, want rotation starting at rank 0", re.Cycle)
	}
	if len(re.Blocked) != n {
		t.Fatalf("blocked = %d ranks, want %d", len(re.Blocked), n)
	}
	for _, b := range re.Blocked {
		if b.Wait == nil || b.Wait.Kind != WaitP2PRecv {
			t.Fatalf("rank %d wait = %v, want p2p-recv", b.Rank, b.Wait)
		}
		if want := (b.Rank + n - 1) % n; b.Wait.Peer != want {
			t.Fatalf("rank %d waits on %d, want %d", b.Rank, b.Wait.Peer, want)
		}
	}
	for _, s := range []string{"deadlock", "wait-for cycle", "rank 0", "p2p-recv", "tag 7"} {
		if !strings.Contains(err.Error(), s) {
			t.Errorf("error text missing %q:\n%v", s, err)
		}
	}
	// "within HangTimeout" with slack for the detection tick and CI noise.
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("deadlock detection took %v", took)
	}
}

func TestWatchdogUnmatchedRecvStall(t *testing.T) {
	// Rank 1 posts a receive nobody matches while rank 0 exits: global
	// no-progress with no cycle, diagnosed as a stall naming the lost wait.
	err := Run(Config{NRanks: 2, HangTimeout: 150 * time.Millisecond}, func(r *Rank) {
		if r.ID() == 1 {
			buf := make([]byte, 8)
			r.World().Recv(buf, 0, 3)
		}
	})
	re := asRunError(t, err)
	if re.Cause != CauseStall {
		t.Fatalf("cause = %q, want %q (err: %v)", re.Cause, CauseStall, err)
	}
	if len(re.Blocked) != 1 || re.Blocked[0].Rank != 1 {
		t.Fatalf("blocked = %+v, want just rank 1", re.Blocked)
	}
	for _, s := range []string{"stall", "unmatched", "p2p-recv"} {
		if !strings.Contains(err.Error(), s) {
			t.Errorf("error text missing %q:\n%v", s, err)
		}
	}
}

func TestWatchdogCollectiveStragglerStall(t *testing.T) {
	// Three ranks enter a Barrier, one never does: no peer-directed cycle,
	// and the dump shows who is parked in the collective.
	err := Run(Config{NRanks: 4, HangTimeout: 150 * time.Millisecond}, func(r *Rank) {
		if r.ID() != 3 {
			r.World().Barrier()
		}
	})
	re := asRunError(t, err)
	if re.Cause != CauseStall {
		t.Fatalf("cause = %q, want %q (err: %v)", re.Cause, CauseStall, err)
	}
	if !strings.Contains(err.Error(), "collective barrier") {
		t.Errorf("error text missing collective wait state:\n%v", err)
	}
}

func TestWatchdogDoesNotFireOnProgress(t *testing.T) {
	// A healthy ping-pong far outlasting HangTimeout must complete: every
	// completed wait ticks the progress counter.
	err := Run(Config{NRanks: 2, HangTimeout: 50 * time.Millisecond}, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 8)
		if r.ID() == 0 {
			// Rank 0 drives the clock and terminates the exchange with a
			// stop sentinel, so the ranks never desynchronize.
			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				buf[0] = 0
				w.Send(buf, 1, 0)
				w.Recv(buf, 1, 1)
			}
			buf[0] = 1
			w.Send(buf, 1, 0)
			return
		}
		for {
			w.Recv(buf, 0, 0)
			if buf[0] == 1 {
				return
			}
			w.Send(buf, 0, 1)
		}
	})
	if err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
}

func TestDeadlineAbortsProgressingRun(t *testing.T) {
	// Barriers in a loop make continuous progress, so only the wall-clock
	// deadline can stop them.
	start := time.Now()
	err := Run(Config{NRanks: 4, Deadline: 150 * time.Millisecond}, func(r *Rank) {
		for {
			r.World().Barrier()
		}
	})
	re := asRunError(t, err)
	if re.Cause != CauseDeadline {
		t.Fatalf("cause = %q, want %q (err: %v)", re.Cause, CauseDeadline, err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("deadline abort took %v", took)
	}
}

// ---- Panic containment and cooperative abort ----

func TestPanicMidCollectiveUnblocksPeers(t *testing.T) {
	// Rank 2 dies before the Allreduce; the others are parked inside the
	// SPTD phase and must unwind instead of spinning forever.  No watchdog:
	// poisoning alone must release them.
	err := Run(Config{NRanks: 4}, func(r *Rank) {
		if r.ID() == 2 {
			panic("rank 2 exploded")
		}
		in, out := f64b(float64(r.ID())), make([]byte, 8)
		r.World().Allreduce(in, out, collective.OpSum, collective.Float64)
	})
	re := asRunError(t, err)
	if re.Cause != CausePanic {
		t.Fatalf("cause = %q, want %q (err: %v)", re.Cause, CausePanic, err)
	}
	if len(re.Failures) != 1 || re.Failures[0].Rank != 2 {
		t.Fatalf("failures = %+v, want just rank 2", re.Failures)
	}
	if !strings.Contains(re.Failures[0].Reason, "rank 2 exploded") {
		t.Fatalf("failure reason %q missing panic value", re.Failures[0].Reason)
	}
	if len(re.Blocked) != 3 {
		t.Fatalf("blocked = %+v, want the 3 survivors", re.Blocked)
	}
	for _, b := range re.Blocked {
		if b.Wait == nil || b.Wait.Kind != WaitCollective || b.Wait.Op != "allreduce" {
			t.Fatalf("rank %d wait = %s, want collective allreduce", b.Rank, b.Wait.describe())
		}
	}
}

func TestAllPanickedRanksReported(t *testing.T) {
	// Every rank fails: the error must list them all, not just the first
	// drained from the channel.
	const n = 4
	err := Run(Config{NRanks: n}, func(r *Rank) {
		panic(fmt.Sprintf("boom %d", r.ID()))
	})
	re := asRunError(t, err)
	if len(re.Failures) != n {
		t.Fatalf("failures = %+v, want all %d ranks", re.Failures, n)
	}
	for i, f := range re.Failures {
		if f.Rank != i || !strings.Contains(f.Reason, fmt.Sprintf("boom %d", i)) {
			t.Fatalf("failure[%d] = %+v", i, f)
		}
	}
}

func TestRankAbort(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() == 1 {
			r.Abort(errors.New("fatal input"))
		}
		buf := make([]byte, 8)
		r.World().Recv(buf, 1, 0) // would hang; the abort must release it
	})
	re := asRunError(t, err)
	if re.Cause != CauseAbort {
		t.Fatalf("cause = %q, want %q (err: %v)", re.Cause, CauseAbort, err)
	}
	if len(re.Failures) != 1 || re.Failures[0].Rank != 1 ||
		!strings.Contains(re.Failures[0].Reason, "fatal input") {
		t.Fatalf("failures = %+v", re.Failures)
	}
}

func TestPanicUnblocksPBQBackpressure(t *testing.T) {
	// Rank 0 fills rank 1's PBQ until it stalls in backpressure; rank 1
	// panics without ever receiving.  The stalled send must unwind.
	err := Run(Config{NRanks: 2, PBQSlots: 4}, func(r *Rank) {
		if r.ID() == 1 {
			panic("receiver died")
		}
		buf := make([]byte, 64)
		for i := 0; i < 1000; i++ {
			r.World().Send(buf, 1, 0)
		}
	})
	re := asRunError(t, err)
	if len(re.Failures) != 1 || re.Failures[0].Rank != 1 {
		t.Fatalf("failures = %+v, want just rank 1", re.Failures)
	}
}

func TestPanicDuringTaskExecute(t *testing.T) {
	// The task owner panics mid-execution while a peer is blocked in a
	// receive (and thus potentially stealing); everyone must come home.
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() == 0 {
			task := r.NewTask(8, func(start, end int64, extra any) {
				if start == 0 {
					panic("task body bug")
				}
			})
			task.Execute(nil)
			return
		}
		buf := make([]byte, 8)
		r.World().Recv(buf, 0, 0)
	})
	re := asRunError(t, err)
	if re.Cause != CausePanic {
		t.Fatalf("cause = %q, want %q (err: %v)", re.Cause, CausePanic, err)
	}
}

func TestNilRankHarvestAfterBootstrapPanic(t *testing.T) {
	// A rank that dies inside newRank leaves ranks[id] == nil; the stats and
	// obs harvests must tolerate the hole (regression: they dereferenced it).
	testNewRankHook = func(id int) {
		if id == 2 {
			panic("bootstrap failure")
		}
	}
	defer func() { testNewRankHook = nil }()

	met := obs.NewMetrics()
	stats, err := RunWithStats(Config{NRanks: 4, Metrics: met}, func(r *Rank) {
		buf := make([]byte, 8)
		r.World().Recv(buf, (r.ID()+3)%4, 0) // parked until the poison spreads
	})
	re := asRunError(t, err)
	if len(re.Failures) != 1 || re.Failures[0].Rank != 2 ||
		!strings.Contains(re.Failures[0].Reason, "bootstrap failure") {
		t.Fatalf("failures = %+v", re.Failures)
	}
	if len(stats) != 4 {
		t.Fatalf("stats len = %d, want 4", len(stats))
	}
	if stats[2].Rank != 2 || stats[2].Messages() != 0 {
		t.Fatalf("dead rank stats = %+v, want zeroed placeholder", stats[2])
	}
}

func TestAbortEmitsTraceEvent(t *testing.T) {
	tr := obs.NewTrace(2, 0)
	err := Run(Config{NRanks: 2, Trace: tr}, func(r *Rank) {
		if r.ID() == 0 {
			panic("die")
		}
		buf := make([]byte, 8)
		r.World().Recv(buf, 0, 0)
	})
	asRunError(t, err)
	var unwinds int
	for _, e := range tr.Events() {
		if e.Kind == obs.KAbortUnwind {
			unwinds++
			if e.Rank != 1 {
				t.Fatalf("unwind event from rank %d, want 1", e.Rank)
			}
			if e.Arg != int64(WaitP2PRecv) {
				t.Fatalf("unwind arg = %d, want %d (p2p-recv)", e.Arg, WaitP2PRecv)
			}
		}
	}
	if unwinds != 1 {
		t.Fatalf("unwind events = %d, want 1 (the blocked survivor)", unwinds)
	}
}

// ---- Fault injection and link-layer recovery (the `make chaos` subset) ----

// TestChaosLossyPingPong drives a cross-node ping-pong through 10% drops:
// the ack/retransmit layer must deliver every payload bit-identically, and
// the metrics must show both the injected drops and the recoveries.
func TestChaosLossyPingPong(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := twoNodeConfig(1)
			cfg.Net.Faults = netsim.Faults{Seed: seed, DropProb: 0.10, RetryBackoffNs: 20_000}
			cfg.HangTimeout = 10 * time.Second // safety net: diagnose, don't hang, if the protocol breaks
			met := obs.NewMetrics()
			cfg.Metrics = met
			const rounds = 40
			err := Run(cfg, func(r *Rank) {
				w := r.World()
				buf := make([]byte, 32)
				for i := 0; i < rounds; i++ {
					if r.ID() == 0 {
						for b := range buf {
							buf[b] = byte(i + b)
						}
						w.Send(buf, 1, 5)
						n := w.Recv(buf, 1, 6)
						if n != len(buf) {
							r.Abort(fmt.Errorf("round %d: short reply %d", i, n))
						}
						for b := range buf {
							if buf[b] != byte(i+b+1) {
								r.Abort(fmt.Errorf("round %d: reply byte %d = %d, want %d", i, b, buf[b], byte(i+b+1)))
							}
						}
					} else {
						w.Recv(buf, 0, 5)
						for b := range buf {
							buf[b]++
						}
						w.Send(buf, 0, 6)
					}
				}
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			snap := counters(met)
			if snap["pure_net_drops_injected_total"] == 0 {
				t.Fatalf("seed %d: no drops injected; snapshot %v", seed, snap)
			}
			if snap["pure_net_retransmits_total"] == 0 {
				t.Fatalf("seed %d: drops injected but no retransmits", seed)
			}
			if snap["pure_net_retry_exhausted_total"] != 0 {
				t.Fatalf("seed %d: retry budget exhausted in a recoverable run", seed)
			}
		})
	}
}

// TestChaosLossyAllreduce runs cross-node allreduces (leader-tree traffic
// over the lossy wire) under combined drop+dup+reorder+jitter and checks the
// results are exact.
func TestChaosLossyAllreduce(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := twoNodeConfig(2)
			cfg.Net.Faults = netsim.Faults{
				Seed: seed, DropProb: 0.08, DupProb: 0.08, ReorderProb: 0.08,
				JitterNs: 2_000, RetryBackoffNs: 20_000,
			}
			cfg.HangTimeout = 10 * time.Second
			met := obs.NewMetrics()
			cfg.Metrics = met
			const rounds = 12
			err := Run(cfg, func(r *Rank) {
				w := r.World()
				out := make([]byte, 8)
				for i := 0; i < rounds; i++ {
					in := f64b(float64(r.ID() + i))
					w.Allreduce(in, out, collective.OpSum, collective.Float64)
					want := float64(0+1+2+3) + 4*float64(i)
					if got := bToF64(out)[0]; got != want {
						r.Abort(fmt.Errorf("round %d: allreduce = %v, want %v", i, got, want))
					}
				}
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			snap := counters(met)
			if snap["pure_net_transmits_total"] == 0 {
				t.Fatalf("seed %d: no transmits recorded", seed)
			}
			if snap["pure_net_drops_injected_total"]+snap["pure_net_dups_injected_total"]+
				snap["pure_net_reorders_injected_total"] == 0 {
				t.Fatalf("seed %d: no faults injected; snapshot %v", seed, snap)
			}
		})
	}
}

// TestChaosDupsDiscarded checks the receiving NIC's dedup: under heavy
// duplication every payload still arrives exactly once.
func TestChaosDupsDiscarded(t *testing.T) {
	cfg := twoNodeConfig(1)
	cfg.Net.Faults = netsim.Faults{Seed: 7, DupProb: 0.5, RetryBackoffNs: 20_000}
	cfg.HangTimeout = 10 * time.Second
	met := obs.NewMetrics()
	cfg.Metrics = met
	const msgs = 50
	err := Run(cfg, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 16)
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				buf[0] = byte(i)
				w.Send(buf, 1, 0)
			}
		} else {
			for i := 0; i < msgs; i++ {
				w.Recv(buf, 0, 0)
				if buf[0] != byte(i) {
					r.Abort(fmt.Errorf("message %d arrived as %d (dup or loss leaked through)", i, buf[0]))
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := counters(met)
	if snap["pure_net_dups_injected_total"] == 0 {
		t.Fatal("no dups injected")
	}
	if snap["pure_net_dups_discarded_total"] == 0 {
		t.Fatal("dups injected but none discarded at the NIC")
	}
}

// TestChaosRetryBudgetExhausted cuts the wire entirely: the sender must give
// up after its retry budget and Run must name the dead link.
func TestChaosRetryBudgetExhausted(t *testing.T) {
	cfg := twoNodeConfig(1)
	cfg.Net.Faults = netsim.Faults{Seed: 1, DropProb: 1.0, RetryBudget: 4, RetryBackoffNs: 1_000}
	met := obs.NewMetrics()
	cfg.Metrics = met
	err := Run(cfg, func(r *Rank) {
		buf := make([]byte, 16)
		if r.ID() == 0 {
			r.World().Send(buf, 1, 0)
		} else {
			r.World().Recv(buf, 0, 0)
		}
	})
	re := asRunError(t, err)
	if re.Cause != CauseNetDead {
		t.Fatalf("cause = %q, want %q (err: %v)", re.Cause, CauseNetDead, err)
	}
	for _, s := range []string{"retry budget", "rank 0"} {
		if !strings.Contains(err.Error(), s) {
			t.Errorf("error text missing %q:\n%v", s, err)
		}
	}
	if counters(met)["pure_net_retry_exhausted_total"] == 0 {
		t.Fatal("exhaustion not counted")
	}
}

// TestChaosFaultsDisabledFastPath pins the invariant behind the "latency
// within noise" acceptance bar: with no faults configured the runtime never
// touches the reliable-path machinery.
func TestChaosFaultsDisabledFastPath(t *testing.T) {
	cfg := twoNodeConfig(1)
	met := obs.NewMetrics()
	cfg.Metrics = met
	err := Run(cfg, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 32)
		for i := 0; i < 20; i++ {
			if r.ID() == 0 {
				w.Send(buf, 1, 0)
				w.Recv(buf, 1, 1)
			} else {
				w.Recv(buf, 0, 0)
				w.Send(buf, 0, 1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := counters(met)
	for _, k := range []string{"pure_net_transmits_total", "pure_net_retransmits_total"} {
		if snap[k] != 0 {
			t.Fatalf("%s = %d on the fault-free path, want 0", k, snap[k])
		}
	}
}

// counters flattens a metrics snapshot into name -> counter value.
func counters(m *obs.Metrics) map[string]int64 {
	out := map[string]int64{}
	for _, c := range m.Snapshot().Counters {
		out[c.Name] = c.Value
	}
	return out
}
