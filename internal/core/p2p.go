package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/queue"
)

// chanKey identifies a persistent point-to-point channel: the paper's
// Channel Manager "maps message arguments (e.g., ranks, tags, datatypes,
// etc.) to the appropriate data structure, creating it on-demand if needed".
// Ranks here are global rank ids; comm is the communicator id (messages on
// different communicators never match).
type chanKey struct {
	src, dst int
	tag      int
	comm     uint64
}

// channel is an intra-node point-to-point channel.  The eager (PBQ) and
// rendezvous structures are created lazily on first use of each protocol.
// The pending-request lists are single-owner: sendPend belongs to the sender
// rank and recvPend to the receiver rank, so neither needs a lock.
type channel struct {
	pbqOnce  atomic.Pointer[queue.PBQ]
	rvzOnce  atomic.Pointer[queue.RendezvousChannel]
	sendPend reqList // owned by sender
	recvPend reqList // owned by receiver
	recvSeq  uint64  // rendezvous ticket counter, owned by receiver
}

// reqList is a tiny FIFO of in-flight requests, owned by one rank.  The
// backing array is retained across drain cycles (the offset rewinds to 0
// whenever the list empties), so steady-state push/pop never allocates —
// it only grows to the high-water mark of simultaneously pending requests.
type reqList struct {
	q   []*Request
	off int
}

func (l *reqList) push(r *Request) { l.q = append(l.q, r) }
func (l *reqList) head() *Request {
	if l.off == len(l.q) {
		return nil
	}
	return l.q[l.off]
}
func (l *reqList) pop() {
	l.q[l.off] = nil
	l.off++
	if l.off == len(l.q) {
		l.q = l.q[:0]
		l.off = 0
	}
}

// netMsg is one mailbox entry.  seq is only meaningful on the reliable
// (fault-injected) path, where the link layer sequences, deduplicates and
// acknowledges messages; the fault-free fast path leaves it zero.
type netMsg struct {
	seq     uint64
	payload []byte
}

// remoteChannel is an inter-node channel.  In the paper this is MPI_Send /
// MPI_Recv with sender/receiver thread ids encoded in the tag's upper bits;
// here it is an ordered mailbox whose enqueue pays the modeled network cost
// and contends on the destination node's "NIC" lock (the
// MPI_THREAD_MULTIPLE serialization Pure accepts on this path).
//
// When fault injection is active the channel additionally runs a link-layer
// ack/retransmit protocol: the (single) sending rank stamps each message with
// a sequence number, the receiving NIC accepts messages in order — stashing
// out-of-order arrivals, discarding duplicates — and publishes the highest
// contiguous sequence in arrived, which doubles as the (shared-memory) ack
// the sender polls.  Injected drops are recovered by retransmission with
// exponential backoff under a retry budget.
type remoteChannel struct {
	n    atomic.Int64 // buffered message count (lock-free emptiness probe)
	mu   chanMutex
	msgs []netMsg

	// Reliable-path state (untouched on the fault-free path).
	sendSeq uint64            // last sequence assigned; owned by the sending rank
	arrived atomic.Uint64     // highest contiguous seq accepted into msgs (the ack)
	pending map[uint64][]byte // out-of-order arrivals keyed by seq (guarded by mu)
	hold    *netMsg           // reorder-injection hold slot (guarded by mu)
	dupes   int64             // duplicates discarded at the NIC (guarded by mu)
}

// chanMutex is a tiny spinlock; contention on it plays the role of the MPI
// runtime's internal lock.
type chanMutex struct{ state atomic.Int32 }

func (m *chanMutex) lock() {
	for !m.state.CompareAndSwap(0, 1) {
		gosched()
	}
}
func (m *chanMutex) unlock() { m.state.Store(0) }

// getChannel returns the persistent intra-node channel for key, creating it
// on demand (paper §4.1: "we allocate a persistent 'channel' object that is
// stored in the runtime system and is reused throughout the program").
func (r *Rank) getChannel(key chanKey) *channel {
	if ch, ok := r.chanCache[key]; ok {
		return ch
	}
	ch := lookupChannel(&r.rt.channels, key)
	r.chanCache[key] = ch
	return ch
}

// lookupChannel resolves key in the shared channel-manager map, creating the
// channel on demand.  This is the endpoint-creation seam: the two ranks of a
// pair race to create the same channel on first use (typically from
// newEndpoint), and the schedpoints let the purecheck model explore every
// interleaving of that race.
func lookupChannel(m *sync.Map, key chanKey) *channel {
	schedpoint("core:chan:lookup")
	if v, ok := m.Load(key); ok {
		return v.(*channel)
	}
	schedpoint("core:chan:create")
	v, _ := m.LoadOrStore(key, &channel{})
	return v.(*channel)
}

func (r *Rank) getRemote(key chanKey) *remoteChannel {
	if ch, ok := r.remCache[key]; ok {
		return ch
	}
	v, _ := r.rt.remotes.LoadOrStore(key, &remoteChannel{})
	ch := v.(*remoteChannel)
	r.remCache[key] = ch
	return ch
}

func (ch *channel) pbq(slots, maxPayload int) *queue.PBQ {
	if q := ch.pbqOnce.Load(); q != nil {
		return q
	}
	schedpoint("core:pbq:create")
	q := queue.NewPBQ(slots, maxPayload)
	if ch.pbqOnce.CompareAndSwap(nil, q) {
		return q
	}
	return ch.pbqOnce.Load()
}

func (ch *channel) rvz(depth int) *queue.RendezvousChannel {
	if q := ch.rvzOnce.Load(); q != nil {
		return q
	}
	q := queue.NewRendezvousChannel(depth)
	if ch.rvzOnce.CompareAndSwap(nil, q) {
		return q
	}
	return ch.rvzOnce.Load()
}

// reqKind identifies a request's protocol path.
type reqKind uint8

const (
	reqSendEager reqKind = iota
	reqSendRvz
	reqRecvEager
	reqRecvRvz
	reqRemoteSend
	reqRemoteRecv
	reqRmaRemote // one-sided remote op: done when the target's applied watermark covers flowSeq
	reqRmaGet    // one-sided get: done when the reply frame fills buf
)

// Request is an in-flight nonblocking operation (the analogue of
// MPI_Request).  A request belongs to the rank that created it.
type Request struct {
	kind   reqKind
	ch     *channel
	rem    *remoteChannel
	buf    []byte
	seq    uint64 // rendezvous ticket (recv side) or remote link sequence
	peer   int32  // global peer rank (for trace events and wait records)
	tag    int    // message tag (wait-registry diagnostics)
	comm   uint64 // communicator id (wait-registry diagnostics)
	posted bool   // rendezvous recv: envelope pushed
	done   bool
	n      int // bytes transferred (recv side)

	// Reliable remote-send state (fault-injected runs only).
	dstNode  int       // destination node (for the NIC lock on retransmit)
	attempts int       // transmit attempts so far
	retryAt  time.Time // when the next retransmit is due

	// One-sided (RMA) completion state: a remote Put/Accumulate/Notify is
	// done once flow.applied covers flowSeq (the target applied the frame).
	flow    *rmaFlow
	flowSeq uint64

	// Endpoint request pooling: requests created on a Channel carry their
	// owner and return to its free list when waited, so steady-state
	// nonblocking traffic recycles a handful of request objects instead of
	// allocating one per operation.
	owner      *Channel
	nextFree   *Request
	pooledFree bool
}

// Done reports whether the request has completed.  Completion only advances
// inside Wait/Test/progress calls made by the owning rank.
func (q *Request) Done() bool { return q.done }

// Bytes returns the received byte count of a completed receive request.
func (q *Request) Bytes() int { return q.n }

// EncodeInterNodeTag reproduces the paper's inter-node tag encoding: the
// sender and receiver thread numbers (within their processes) are packed
// into the upper bits of the MPI tag (paper §4.1.3; 6 bits each covered the
// 64 threads per node used in the evaluation).  The mailbox transport does
// not need this — channels are keyed by global ranks — but the encoding is
// kept (and tested) as the documented wire format.
func EncodeInterNodeTag(tag, srcLocal, dstLocal, bits int) (int, error) {
	if bits <= 0 || bits > 12 {
		return 0, fmt.Errorf("core: thread-id field of %d bits out of range", bits)
	}
	limit := 1 << bits
	if srcLocal < 0 || srcLocal >= limit || dstLocal < 0 || dstLocal >= limit {
		return 0, fmt.Errorf("core: thread ids (%d, %d) do not fit in %d bits", srcLocal, dstLocal, bits)
	}
	if tag < 0 || tag >= 1<<(31-2*bits-1) {
		return 0, fmt.Errorf("core: tag %d overflows with 2x%d thread-id bits", tag, bits)
	}
	return tag | srcLocal<<(31-2*bits) | dstLocal<<(31-bits), nil
}

// DecodeInterNodeTag inverts EncodeInterNodeTag.
func DecodeInterNodeTag(enc, bits int) (tag, srcLocal, dstLocal int) {
	mask := 1<<bits - 1
	srcLocal = (enc >> (31 - 2*bits)) & mask
	dstLocal = (enc >> (31 - bits)) & mask
	tag = enc & (1<<(31-2*bits) - 1)
	return
}

// ---- Point-to-point operations (rank-level; Comm wraps these with rank
// translation) ----

// isend starts a send of buf to global rank dst.  Eager sends complete as
// soon as the payload is buffered (MPI buffered-send semantics: the caller
// may reuse buf immediately after the request completes).  Rendezvous sends
// complete once the payload has been copied into the receiver's buffer.
func (r *Rank) isend(commID uint64, buf []byte, dst, tag int) *Request {
	if dst == r.id {
		panic("core: self-send is not supported; ranks are threads, use local state")
	}
	key := chanKey{src: r.id, dst: dst, tag: tag, comm: commID}
	r.stats.BytesSent += int64(len(buf))
	if !r.rt.place.SameNode(r.id, dst) {
		r.stats.SendsRemote++
		if r.trace != nil {
			r.trace.Emit(obs.KSendRemote, int32(dst), int64(len(buf)))
		}
		if r.met != nil {
			r.met.countSend(reqRemoteSend, len(buf))
		}
		req := &Request{kind: reqRemoteSend, peer: int32(dst), tag: tag, comm: commID, buf: buf}
		if r.rt.tp != nil {
			// Real transport: the link copies the payload into its encoded
			// resend buffer at send time, so the post completes immediately
			// (MPI buffered semantics); loss, reordering and reconnects are
			// the link protocol's problem.
			r.tpSendData(key, buf)
			req.done = true
			req.n = len(buf)
			return req
		}
		if !r.rt.net.FaultsActive() {
			// Fault-free fast path: the modeled wire never loses anything,
			// so the send completes at post time (MPI buffered semantics).
			r.remoteSend(key, buf)
			req.done = true
			return req
		}
		// Reliable path: stamp a link sequence, transmit attempt 1, and let
		// Wait/Test drive retransmits until the receiving NIC acks.
		rc := r.getRemote(key)
		rc.sendSeq++ // channels are SPSC: this rank is the only sender
		req.rem = rc
		req.seq = rc.sendSeq
		req.dstNode = r.rt.place.NodeOf(dst)
		r.transmitRemote(req)
		return req
	}
	ch := r.getChannel(key)
	var req *Request
	if len(buf) < r.rt.cfg.SmallMsgMax {
		r.stats.SendsEager++
		if r.trace != nil {
			r.trace.Emit(obs.KSendEager, int32(dst), int64(len(buf)))
		}
		req = &Request{kind: reqSendEager, ch: ch, peer: int32(dst), tag: tag, comm: commID, buf: buf}
	} else {
		r.stats.SendsRendezvous++
		if r.trace != nil {
			r.trace.Emit(obs.KSendRendezvous, int32(dst), int64(len(buf)))
		}
		req = &Request{kind: reqSendRvz, ch: ch, peer: int32(dst), tag: tag, comm: commID, buf: buf}
	}
	if r.met != nil {
		r.met.countSend(req.kind, len(buf))
	}
	ch.sendPend.push(req)
	r.progressSend(ch) // opportunistic completion
	return req
}

// irecv starts a receive into buf from global rank src.  The received
// message must be exactly len(buf) bytes for the rendezvous path and at
// most len(buf) for the eager path; Pure's channels are persistent and
// size-keyed, so both endpoints of a message must sit on the same side of
// the SmallMsgMax threshold (see package pure documentation).
func (r *Rank) irecv(commID uint64, buf []byte, src, tag int) *Request {
	if src == r.id {
		panic("core: self-receive is not supported")
	}
	key := chanKey{src: src, dst: r.id, tag: tag, comm: commID}
	if !r.rt.place.SameNode(r.id, src) {
		r.stats.RecvsRemote++
		req := &Request{kind: reqRemoteRecv, rem: r.getRemote(key), peer: int32(src), tag: tag, comm: commID, buf: buf}
		return req
	}
	ch := r.getChannel(key)
	var req *Request
	if len(buf) < r.rt.cfg.SmallMsgMax {
		r.stats.RecvsEager++
		req = &Request{kind: reqRecvEager, ch: ch, peer: int32(src), tag: tag, comm: commID, buf: buf}
	} else {
		r.stats.RecvsRendezvous++
		req = &Request{kind: reqRecvRvz, ch: ch, peer: int32(src), tag: tag, comm: commID, buf: buf}
	}
	ch.recvPend.push(req)
	r.progressRecv(ch)
	return req
}

// waitKindFor maps a request's protocol path to its wait-registry kind.
func waitKindFor(k reqKind) WaitKind {
	switch k {
	case reqSendEager:
		return WaitP2PSend
	case reqSendRvz:
		return WaitRvzSend
	case reqRecvEager:
		return WaitP2PRecv
	case reqRecvRvz:
		return WaitRvzRecv
	case reqRemoteSend:
		return WaitRemoteAck
	case reqRemoteRecv:
		return WaitRemoteRecv
	case reqRmaRemote, reqRmaGet:
		return WaitRmaRemote
	}
	return WaitNone
}

// waitReq blocks (in the SSW-Loop) until req completes and returns the byte
// count for receives.  While blocked, the rank publishes a wait record so the
// watchdog can name what (and whom) it is waiting on.  Completion releases
// endpoint-pooled requests back to their owner: a request handle must be
// waited exactly once and is dead afterwards.
func (r *Rank) waitReq(req *Request) int {
	if req.done {
		n := req.n
		releaseReq(req)
		return n
	}
	r.pendRec = WaitRecord{
		Kind: waitKindFor(req.kind), Peer: int(req.peer),
		Tag: req.tag, Comm: req.comm, Seq: req.seq,
	}
	// Remote completions on the real transport arrive via the link reader
	// goroutine, so those waits must let the netpoller run; on the modeled
	// network the waiting rank drives delivery itself and keeps spinning.
	idle := r.rt.tp != nil
	switch req.kind {
	case reqRemoteSend:
		// Reliable path only (fault-free remote sends complete at post time):
		// poll the receiver NIC's ack watermark, retransmitting on timeout.
		r.leafWaitVia(idle, func() bool {
			if req.done {
				return true
			}
			r.progressRemoteSend(req)
			return req.done
		})
	case reqRemoteRecv:
		r.leafWaitVia(idle, func() bool {
			if req.done {
				return true
			}
			r.progressRemoteRecv(req)
			return req.done
		})
	case reqRmaRemote:
		// Origin side of a remote one-sided op: drive our own frame
		// retransmits and apply incoming frames (two origins putting at
		// each other must each drain their inbox), then poll the target's
		// applied watermark.
		r.leafWaitVia(idle, func() bool {
			if req.flow.applied.Load() >= req.flowSeq {
				req.done = true
				return true
			}
			r.rmaProgress()
			if req.flow.applied.Load() >= req.flowSeq {
				req.done = true
			}
			return req.done
		})
	case reqRmaGet:
		// The reply frame arrives on our own inbox; rmaProgress fills buf.
		r.leafWaitVia(idle, func() bool {
			if req.done {
				return true
			}
			r.rmaProgress()
			return req.done
		})
	default:
		ch := req.ch
		r.leafWait(func() bool {
			if req.done {
				return true
			}
			if req.kind == reqSendEager || req.kind == reqSendRvz {
				r.progressSend(ch)
			} else {
				r.progressRecv(ch)
			}
			return req.done
		})
	}
	n := req.n
	releaseReq(req)
	return n
}

// progressSend advances the sender-side pending list head of ch.
func (r *Rank) progressSend(ch *channel) {
	for {
		req := ch.sendPend.head()
		if req == nil {
			return
		}
		switch req.kind {
		case reqSendEager:
			q := ch.pbq(r.rt.cfg.PBQSlots, r.rt.cfg.SmallMsgMax)
			if !q.TryEnqueue(req.buf) {
				return // queue full; retry on next progress call
			}
		case reqSendRvz:
			// Single-copy: claim the receiver's posted envelope, copy the
			// payload straight into the destination buffer, then signal the
			// byte count on the completion queue (paper §4.1.2).
			rz := ch.rvz(r.rt.cfg.RendezvousDepth)
			env, ok := rz.Envelopes.TryPop()
			if !ok {
				return // receiver has not posted yet
			}
			if len(req.buf) > len(env.Dest) {
				panic(fmt.Sprintf("core: %d-byte message overflows %d-byte posted receive buffer",
					len(req.buf), len(env.Dest)))
			}
			n := copy(env.Dest, req.buf)
			for !rz.Completions.TryPush(queue.Completion{Bytes: n, Seq: env.Seq}) {
				r.checkPoison() // receiver may have unwound without draining
				gosched()       // completion ring full: receiver must drain; bounded wait
			}
			if r.trace != nil {
				r.trace.Emit(obs.KRendezvousHandoff, req.peer, int64(n))
			}
			if r.met != nil {
				r.met.rvzHandoffs.Inc()
			}
		}
		req.done = true
		req.n = len(req.buf)
		ch.sendPend.pop()
	}
}

// progressRecv advances the receiver-side pending list head of ch.
func (r *Rank) progressRecv(ch *channel) {
	for {
		req := ch.recvPend.head()
		if req == nil {
			return
		}
		switch req.kind {
		case reqRecvEager:
			q := ch.pbq(r.rt.cfg.PBQSlots, r.rt.cfg.SmallMsgMax)
			n, ok := q.TryDequeue(req.buf)
			if !ok {
				return
			}
			req.n = n
			r.stats.BytesReceived += int64(n)
			if r.trace != nil {
				r.trace.Emit(obs.KRecvEager, req.peer, int64(n))
			}
			if r.met != nil {
				r.met.recvsEager.Inc()
				r.met.bytesReceived.Add(int64(n))
			}
		case reqRecvRvz:
			rz := ch.rvz(r.rt.cfg.RendezvousDepth)
			if !req.posted {
				ch.recvSeq++
				req.seq = ch.recvSeq
				if !rz.Envelopes.TryPush(queue.Envelope{Dest: req.buf, Seq: req.seq}) {
					ch.recvSeq-- // envelope ring full; repost later
					return
				}
				req.posted = true
			}
			c, ok := rz.Completions.Peek()
			if !ok || c.Seq != req.seq {
				return // our transfer has not completed yet (completions are FIFO)
			}
			rz.Completions.TryPop()
			req.n = c.Bytes
			r.stats.BytesReceived += int64(c.Bytes)
			if r.trace != nil {
				r.trace.Emit(obs.KRecvRendezvous, req.peer, int64(c.Bytes))
			}
			if r.met != nil {
				r.met.recvsRvz.Inc()
				r.met.bytesReceived.Add(int64(c.Bytes))
			}
		}
		req.done = true
		ch.recvPend.pop()
	}
}

// remoteSend delivers buf to a rank on another node: pay the modeled wire
// time, then append to the destination mailbox under the destination node's
// NIC lock.  Fault-free fast path only; the reliable path goes through
// transmitRemote.
func (r *Rank) remoteSend(key chanKey, buf []byte) {
	cp := make([]byte, len(buf))
	copy(cp, buf)
	r.remoteSendOwned(key, cp)
}

// remoteSendOwned is remoteSend for a payload the caller hands over (a
// freshly encoded RMA frame): no defensive copy.
func (r *Rank) remoteSendOwned(key chanKey, buf []byte) {
	rc := r.getRemote(key)
	r.rt.net.Transfer(len(buf))
	dstNode := r.rt.place.NodeOf(key.dst)
	nic := &r.rt.nodes[dstNode].nic
	nic.Lock()
	rc.mu.lock()
	rc.msgs = append(rc.msgs, netMsg{payload: buf})
	rc.n.Add(1)
	rc.mu.unlock()
	nic.Unlock()
}

// transmitRemote pushes one (re)transmission of a reliable remote send onto
// the wire, letting the fault injector drop, duplicate, reorder or delay it.
// The ack is the receiving channel's arrived watermark, advanced under the
// NIC lock by whoever delivers the missing sequence — which, because acks are
// modeled as free shared-memory reads, the sender observes without the
// receiver ever posting a matching recv.
func (r *Rank) transmitRemote(req *Request) {
	req.attempts++
	req.retryAt = time.Now().Add(r.rt.net.RetryBackoff(req.attempts))
	net := r.rt.net
	v := net.Inject()
	if v.Drop {
		return // the wire ate it; Wait will retransmit after the backoff
	}
	cp := make([]byte, len(req.buf))
	copy(cp, req.buf)
	net.TransferExtra(len(req.buf), v.ExtraNs)
	rc := req.rem
	nic := &r.rt.nodes[req.dstNode].nic
	nic.Lock()
	rc.mu.lock()
	rc.deliver(netMsg{seq: req.seq, payload: cp}, v.Reorder)
	if v.Dup {
		rc.deliver(netMsg{seq: req.seq, payload: cp}, false)
	}
	rc.mu.unlock()
	nic.Unlock()
}

// deliver runs the receiving NIC's link-layer accept logic for one arriving
// frame.  Caller holds rc.mu (and the node NIC lock).  A Reorder verdict
// parks the frame in the one-slot hold; the next arrival (or retransmit)
// releases it afterwards, swapping their order on an in-order stream.
func (rc *remoteChannel) deliver(m netMsg, reorder bool) {
	if held := rc.hold; held != nil {
		rc.hold = nil
		rc.accept(m)
		rc.accept(*held)
		return
	}
	if reorder {
		rc.hold = &m
		return
	}
	rc.accept(m)
}

// accept sequences one frame into the mailbox: duplicates (at or below the
// watermark, or already stashed) are discarded, out-of-order arrivals are
// stashed, and the in-order frame is appended along with any stashed
// successors it unblocks.  Advancing arrived is the ack.
func (rc *remoteChannel) accept(m netMsg) {
	want := rc.arrived.Load() + 1
	switch {
	case m.seq < want:
		rc.dupes++
	case m.seq > want:
		if rc.pending == nil {
			rc.pending = make(map[uint64][]byte)
		}
		if _, ok := rc.pending[m.seq]; ok {
			rc.dupes++
			return
		}
		rc.pending[m.seq] = m.payload
	default:
		rc.msgs = append(rc.msgs, m)
		rc.n.Add(1)
		for {
			want++
			p, ok := rc.pending[want]
			if !ok {
				break
			}
			delete(rc.pending, want)
			rc.msgs = append(rc.msgs, netMsg{seq: want, payload: p})
			rc.n.Add(1)
		}
		rc.arrived.Store(want - 1)
	}
}

// progressRemoteSend advances a reliable remote send: done once the receiver
// NIC's watermark covers our sequence; otherwise retransmit when the backoff
// expires, poisoning the runtime when the retry budget runs out.
func (r *Rank) progressRemoteSend(req *Request) {
	if req.rem.arrived.Load() >= req.seq {
		req.done = true
		req.n = len(req.buf)
		return
	}
	if time.Now().Before(req.retryAt) {
		return
	}
	if req.attempts >= r.rt.net.RetryBudget() {
		if r.met != nil {
			r.met.netRetryExhausted.Inc()
		}
		r.rt.poison(CauseNetDead, fmt.Sprintf(
			"rank %d: remote send seq %d to rank %d (tag %d) unacked after %d attempts: retry budget exhausted",
			r.id, req.seq, req.peer, req.tag, req.attempts), "", nil)
		r.checkPoison() // unwinds
	}
	if r.met != nil {
		r.met.netRetransmits.Inc()
	}
	r.transmitRemote(req)
}

// tryPop dequeues the channel's head message, or reports none buffered.
func (rc *remoteChannel) tryPop() ([]byte, bool) {
	rc.mu.lock()
	if len(rc.msgs) == 0 {
		rc.mu.unlock()
		return nil, false
	}
	msg := rc.msgs[0].payload
	rc.msgs[0] = netMsg{}
	rc.msgs = rc.msgs[1:]
	if len(rc.msgs) == 0 {
		rc.msgs = nil
	}
	rc.n.Add(-1)
	rc.mu.unlock()
	return msg, true
}

// progressRemoteRecv completes a remote receive if a message has arrived.
func (r *Rank) progressRemoteRecv(req *Request) {
	rc := req.rem
	if rc.n.Load() == 0 {
		return
	}
	msg, ok := rc.tryPop()
	if !ok {
		return
	}
	if len(msg) > len(req.buf) {
		panic(fmt.Sprintf("core: %d-byte message overflows %d-byte receive buffer", len(msg), len(req.buf)))
	}
	req.n = copy(req.buf, msg)
	r.stats.BytesReceived += int64(req.n)
	if r.trace != nil {
		r.trace.Emit(obs.KRecvRemote, req.peer, int64(req.n))
	}
	if r.met != nil {
		r.met.recvsRemote.Inc()
		r.met.bytesReceived.Add(int64(req.n))
	}
	req.done = true
}
