package core

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collective"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/transport"
)

// In-process multi-runtime TCP tests: one Runtime per virtual node, each in
// its own goroutine with its own Config.Transport, talking over real
// localhost TCP.  These are the single-process form of a purerun launch —
// every cross-node code path (link protocol, comm ids, RMA watermarks) is
// identical; only the process boundary is missing, which internal/livechaos
// covers with real SIGKILLs.

var tcpJobSeq atomic.Uint64

// tcpReserveAddrs picks n distinct localhost ports by binding and releasing
// them; the window between release and the transport's bind is the usual
// ephemeral-port reuse gamble, fine for tests.
func tcpReserveAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserving port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// tcpWorld runs one Runtime per node over real TCP and returns Run's error
// per node.  mut (optional) adjusts each node's config before launch.
func tcpWorld(t testing.TB, nodes, perNode int, mut func(node int, cfg *Config), main func(r *Rank)) []error {
	t.Helper()
	addrs := tcpReserveAddrs(t, nodes)
	job := tcpJobSeq.Add(1)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		cfg := Config{
			NRanks: nodes * perNode,
			Spec:   topology.Spec{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: perNode, ThreadsPerCore: 1},
			// Generous liveness bounds: a loaded CI host can starve a
			// heartbeat goroutine past the 200ms production default and
			// fail runs that aren't about failure detection.  Tests that
			// exercise the detector dial these back down in mut.
			Transport: &transport.Config{
				Node: n, Addrs: addrs, Job: job,
				HeartbeatEvery: 50 * time.Millisecond,
				PeerDeadAfter:  5 * time.Second,
			},
			HangTimeout: 20 * time.Second,
		}
		if mut != nil {
			mut(n, &cfg)
		}
		wg.Add(1)
		go func(n int, cfg Config) {
			defer wg.Done()
			errs[n] = Run(cfg, main)
		}(n, cfg)
	}
	wg.Wait()
	return errs
}

func tcpAllOK(t *testing.T, errs []error) {
	t.Helper()
	for n, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", n, err)
		}
	}
}

func TestChaosTCPPingPong(t *testing.T) {
	const rounds = 50
	errs := tcpWorld(t, 2, 1, nil, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			if r.ID() == 0 {
				binary.LittleEndian.PutUint64(buf, uint64(i))
				w.Send(buf, 1, 7)
				got := make([]byte, 8)
				w.Recv(got, 1, 7)
				if v := binary.LittleEndian.Uint64(got); v != uint64(i*3) {
					panic(fmt.Sprintf("round %d: echoed %d", i, v))
				}
			} else {
				w.Recv(buf, 0, 7)
				binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)*3)
				w.Send(buf, 0, 7)
			}
		}
	})
	tcpAllOK(t, errs)
}

// TestChaosTCPLargeRendezvous sends payloads beyond SmallMsgMax so the
// cross-node path carries them in single frames (the transport does not
// split; MaxPayload is far above any test payload).
func TestChaosTCPLargeRendezvous(t *testing.T) {
	const size = 256 << 10
	errs := tcpWorld(t, 2, 1, nil, func(r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			buf := make([]byte, size)
			for i := range buf {
				buf[i] = byte(i * 31)
			}
			w.Send(buf, 1, 1)
		} else {
			got := make([]byte, size)
			n := w.Recv(got, 0, 1)
			if n != size {
				panic(fmt.Sprintf("got %d bytes, want %d", n, size))
			}
			for i := range got {
				if got[i] != byte(i*31) {
					panic(fmt.Sprintf("byte %d corrupted", i))
				}
			}
		}
	})
	tcpAllOK(t, errs)
}

// TestChaosTCPAllreduceSplit exercises the leader-tree collective legs over
// TCP plus the Allgather-based Split with its deterministic hashed comm ids
// (the cross-process correctness piece: both processes must derive the same
// id without a shared counter).
func TestChaosTCPAllreduceSplit(t *testing.T) {
	const nodes, perNode = 2, 2
	errs := tcpWorld(t, nodes, perNode, nil, func(r *Rank) {
		w := r.World()
		n := nodes * perNode

		in := make([]byte, 8)
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(in, uint64(1+r.ID()))
		w.Allreduce(in, out, collective.OpSum, collective.Int64)
		want := uint64(n * (n + 1) / 2)
		if got := binary.LittleEndian.Uint64(out); got != want {
			panic(fmt.Sprintf("rank %d: allreduce %d, want %d", r.ID(), got, want))
		}

		// Split by parity: each half spans both nodes, so the sub-comms'
		// collectives still bridge over the transport.
		sub := w.Split(r.ID()%2, r.ID())
		if sub == nil || sub.Size() != n/2 {
			panic("bad split")
		}
		binary.LittleEndian.PutUint64(in, uint64(r.ID()))
		sub.Allreduce(in, out, collective.OpSum, collective.Int64)
		var wantSub uint64
		for id := r.ID() % 2; id < n; id += 2 {
			wantSub += uint64(id)
		}
		if got := binary.LittleEndian.Uint64(out); got != wantSub {
			panic(fmt.Sprintf("rank %d: sub allreduce %d, want %d", r.ID(), got, wantSub))
		}
		sub.Barrier()
	})
	tcpAllOK(t, errs)
}

// TestChaosTCPRMA drives the one-sided path across processes: Put + Fence
// (barrier form), Get (request/reply frames), Accumulate, and the PSCW
// epoch frames, with the applied watermark riding KindApplied frames.
func TestChaosTCPRMA(t *testing.T) {
	errs := tcpWorld(t, 2, 1, nil, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 64)
		win := w.WinCreate(buf)
		me, peer := r.ID(), 1-r.ID()

		if win.Len(peer) != 64 {
			panic(fmt.Sprintf("rank %d: peer window len %d", me, win.Len(peer)))
		}

		// Fence epoch: everyone puts a tagged byte into the peer.
		data := []byte{byte(0xA0 | me)}
		win.Put(data, peer, me)
		win.Fence()
		if buf[peer] != byte(0xA0|peer) {
			panic(fmt.Sprintf("rank %d: window byte %#x after fence", me, buf[peer]))
		}

		// Get reads the peer's own slot back out.
		got := make([]byte, 1)
		win.Get(got, peer, me)
		if got[0] != byte(0xA0|me) {
			panic(fmt.Sprintf("rank %d: get %#x", me, got[0]))
		}

		// Accumulate into slot 8 (int64), then fence and check the sum.
		one := make([]byte, 8)
		binary.LittleEndian.PutUint64(one, uint64(me+1))
		win.Accumulate(one, peer, 8, collective.OpSum, collective.Int64)
		win.Fence()
		if got := binary.LittleEndian.Uint64(buf[8:]); got != uint64(peer+1) {
			panic(fmt.Sprintf("rank %d: accumulated %d", me, got))
		}

		// PSCW: rank 0 exposes, rank 1 puts.
		for round := 0; round < 3; round++ {
			if me == 0 {
				win.Post([]int{1})
				win.Wait()
				if buf[32] != byte(round+1) {
					panic(fmt.Sprintf("round %d: pscw byte %d", round, buf[32]))
				}
			} else {
				win.Start([]int{0})
				win.Put([]byte{byte(round + 1)}, 0, 32)
				win.Complete()
			}
		}
		win.Free()
	})
	tcpAllOK(t, errs)
}

// TestChaosTCPLossyRecovers runs ping-pong traffic over links that drop a
// quarter of first transmissions: the ack/retransmit protocol must recover
// every frame, and the recovery must be visible in the harvested metrics.
func TestChaosTCPLossyRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy links need real retransmit timeouts")
	}
	mets := []*obs.Metrics{obs.NewMetrics(), obs.NewMetrics()}
	errs := tcpWorld(t, 2, 1, func(n int, cfg *Config) {
		cfg.Metrics = mets[n]
		cfg.Transport.Faults = transport.Faults{Seed: 42, DropProb: 0.25}
		cfg.Transport.RetryBackoff = 2 * time.Millisecond
		cfg.Transport.RetryBudget = 1000
	}, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 8)
		for i := 0; i < 100; i++ {
			if r.ID() == 0 {
				binary.LittleEndian.PutUint64(buf, uint64(i))
				w.Send(buf, 1, 3)
				w.Recv(buf, 1, 4)
				if got := binary.LittleEndian.Uint64(buf); got != uint64(i) {
					panic(fmt.Sprintf("round %d: echoed %d", i, got))
				}
			} else {
				w.Recv(buf, 0, 3)
				w.Send(buf, 0, 4)
			}
		}
	})
	tcpAllOK(t, errs)
	var drops, retrans int64
	for _, m := range mets {
		drops += m.Counter("pure_tp_drops_injected_total").Value()
		retrans += m.Counter("pure_tp_retransmits_total").Value()
	}
	if drops == 0 {
		t.Fatal("fault plan injected no drops; the test exercised nothing")
	}
	if retrans == 0 {
		t.Fatal("drops were injected but nothing was retransmitted")
	}
}

// TestChaosTCPLatencyInjection delays a third of arriving frames by up to
// 2ms: ordering and correctness must be unaffected (delays stall one
// link's reader, they never reorder the stream), the Allreduce results
// must stay exact, and the injections must be visible in the metrics.
func TestChaosTCPLatencyInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("injected delays add real wall time")
	}
	mets := []*obs.Metrics{obs.NewMetrics(), obs.NewMetrics()}
	errs := tcpWorld(t, 2, 2, func(n int, cfg *Config) {
		cfg.Metrics = mets[n]
		cfg.Transport.Faults = transport.Faults{Seed: 9, DelayProb: 0.33, DelayMax: 2 * time.Millisecond}
	}, func(r *Rank) {
		w := r.World()
		n := r.NRanks()
		in, out := make([]byte, 8), make([]byte, 8)
		for i := 0; i < 20; i++ {
			binary.LittleEndian.PutUint64(in, uint64(r.ID()+i))
			w.Allreduce(in, out, collective.OpSum, collective.Int64)
			want := uint64(n*i + n*(n-1)/2)
			if got := binary.LittleEndian.Uint64(out); got != want {
				panic(fmt.Sprintf("iter %d: allreduce %d, want %d", i, got, want))
			}
		}
	})
	tcpAllOK(t, errs)
	var delays int64
	for _, m := range mets {
		delays += m.Counter("pure_tp_delays_injected_total").Value()
	}
	if delays == 0 {
		t.Fatal("fault plan injected no delays; the test exercised nothing")
	}
}

// TestChaosTCPKillLinkReconnect severs the TCP connection mid-stream from
// both sides; the link layer must redial and resume from the delivered
// watermarks without losing or duplicating a message.
func TestChaosTCPKillLinkReconnect(t *testing.T) {
	const rounds = 120
	errs := tcpWorld(t, 2, 1, nil, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			if i == rounds/3 || i == 2*rounds/3 {
				r.rt.tp.KillLink(1 - r.ID())
			}
			if r.ID() == 0 {
				binary.LittleEndian.PutUint64(buf, uint64(i*7))
				w.Send(buf, 1, 9)
				w.Recv(buf, 1, 9)
				if got := binary.LittleEndian.Uint64(buf); got != uint64(i*7+1) {
					panic(fmt.Sprintf("round %d: echoed %d", i, got))
				}
			} else {
				w.Recv(buf, 0, 9)
				binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(buf)+1)
				w.Send(buf, 0, 9)
			}
		}
	})
	tcpAllOK(t, errs)
}

// TestChaosTCPPartitionDeath partitions the link from node 0's side mid-run.
// Node 0 stops hearing node 1 (heartbeat silence); node 1's frames go
// unacked until its retry budget dies.  Both runtimes must return a
// structured *RunError naming the peer in DeadNodes — within HangTimeout,
// so the failure is attributed to the dead node rather than diagnosed as an
// anonymous stall.
func TestChaosTCPPartitionDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("failure detection needs real timeouts")
	}
	start := time.Now()
	const hang = 30 * time.Second
	errs := tcpWorld(t, 2, 1, func(n int, cfg *Config) {
		cfg.HangTimeout = hang
		cfg.Transport.HeartbeatEvery = 5 * time.Millisecond
		cfg.Transport.PeerDeadAfter = 100 * time.Millisecond
		cfg.Transport.RetryBackoff = 5 * time.Millisecond
		cfg.Transport.RetryBudget = 8
	}, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 8)
		// One clean round proves the link is up before the partition.
		if r.ID() == 0 {
			w.Send(buf, 1, 2)
			w.Recv(buf, 1, 2)
			r.rt.tp.SetPartitioned(1, true)
			// Tag 99 is never sent: this blocks until heartbeat silence
			// kills the link and the poison unwinds the recv.
			w.Recv(buf, 1, 99)
		} else {
			w.Recv(buf, 0, 2)
			w.Send(buf, 0, 2)
			// Unacked frames pile up against the partition until the retry
			// budget declares node 0 dead and the send path unwinds.
			for {
				w.Send(buf, 0, 2)
				time.Sleep(time.Millisecond)
			}
		}
	})
	elapsed := time.Since(start)
	for n, err := range errs {
		re, ok := err.(*RunError)
		if !ok {
			t.Fatalf("node %d: got %v, want *RunError", n, err)
		}
		if re.Cause != CauseNodeDead {
			t.Fatalf("node %d: cause %q, want %q\n%v", n, re.Cause, CauseNodeDead, re)
		}
		if len(re.DeadNodes) != 1 || re.DeadNodes[0] != 1-n {
			t.Fatalf("node %d: dead nodes %v, want [%d]", n, re.DeadNodes, 1-n)
		}
	}
	if elapsed >= hang {
		t.Fatalf("failure detection took %v, not inside HangTimeout %v", elapsed, hang)
	}
}

// ---- Benchmarks ----

func BenchmarkTCPPingPong8B(b *testing.B) {
	n := b.N
	errs := tcpWorld(b, 2, 1, nil, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 8)
		for i := 0; i < n; i++ {
			if r.ID() == 0 {
				w.Send(buf, 1, 5)
				w.Recv(buf, 1, 5)
			} else {
				w.Recv(buf, 0, 5)
				w.Send(buf, 0, 5)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPPingPong8BMonitored is the same cross-node exchange with each
// node's live monitor enabled (as under `purerun -monitor`): every frame
// additionally ticks the transport's per-peer link counters and the node
// serves /metrics, /ranks and /links.  The delta against
// BenchmarkTCPPingPong8B is the link-telemetry overhead, which must stay
// under 5% — the counters are lock-free atomics off the syscall path, and
// the labeled-series mirror only syncs on scrape.
func BenchmarkTCPPingPong8BMonitored(b *testing.B) {
	n := b.N
	errs := tcpWorld(b, 2, 1, func(node int, cfg *Config) {
		cfg.MonitorAddr = "127.0.0.1:0"
	}, func(r *Rank) {
		w := r.World()
		buf := make([]byte, 8)
		for i := 0; i < n; i++ {
			if r.ID() == 0 {
				w.Send(buf, 1, 5)
				w.Recv(buf, 1, 5)
			} else {
				w.Recv(buf, 0, 5)
				w.Send(buf, 0, 5)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPAllreduce8B(b *testing.B) {
	n := b.N
	errs := tcpWorld(b, 2, 2, nil, func(r *Rank) {
		w := r.World()
		in := make([]byte, 8)
		out := make([]byte, 8)
		for i := 0; i < n; i++ {
			w.Allreduce(in, out, collective.OpSum, collective.Int64)
		}
	})
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}
