package core

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Per-peer link telemetry: every transport link's counters mirrored into
// the metrics registry as Prometheus series labeled peer="<node>".  The
// transport keeps its own lock-free atomics on the hot paths; this mirror
// syncs them on demand — at every /metrics scrape (Monitor.SetOnScrape) and
// once at harvest time — so scrapes serve current values while the
// transport pays nothing per frame.
type linkMetrics struct {
	tp    *transport.Transport
	peers []*linkPeerMetrics // indexed by node id; nil for self
}

type linkPeerMetrics struct {
	framesSent, framesRecv *obs.Counter
	bytesSent, bytesRecv   *obs.Counter
	retransmits            *obs.Counter
	retryRounds            *obs.Counter
	reconnects             *obs.Counter
	acksSent, acksRecv     *obs.Counter
	hbSent, hbRecv         *obs.Counter
	sendBusy               *obs.Counter

	up, queueDepth       *obs.Gauge
	hbAge, rtt, clockOff *obs.Gauge
}

func newLinkMetrics(tp *transport.Transport, reg *obs.Metrics) *linkMetrics {
	lm := &linkMetrics{tp: tp, peers: make([]*linkPeerMetrics, tp.Nodes())}
	for peer := range lm.peers {
		if peer == tp.Node() {
			continue
		}
		l := obs.Label{Key: "peer", Value: strconv.Itoa(peer)}
		lm.peers[peer] = &linkPeerMetrics{
			framesSent:  reg.CounterL("pure_link_frames_sent_total", l),
			framesRecv:  reg.CounterL("pure_link_frames_recv_total", l),
			bytesSent:   reg.CounterL("pure_link_bytes_sent_total", l),
			bytesRecv:   reg.CounterL("pure_link_bytes_recv_total", l),
			retransmits: reg.CounterL("pure_link_retransmits_total", l),
			retryRounds: reg.CounterL("pure_link_retry_rounds_total", l),
			reconnects:  reg.CounterL("pure_link_reconnects_total", l),
			acksSent:    reg.CounterL("pure_link_acks_sent_total", l),
			acksRecv:    reg.CounterL("pure_link_acks_recv_total", l),
			hbSent:      reg.CounterL("pure_link_heartbeats_sent_total", l),
			hbRecv:      reg.CounterL("pure_link_heartbeats_recv_total", l),
			sendBusy:    reg.CounterL("pure_link_send_busy_total", l),

			up:         reg.GaugeL("pure_link_up", l),
			queueDepth: reg.GaugeL("pure_link_send_queue_depth", l),
			hbAge:      reg.GaugeL("pure_link_heartbeat_age_ns", l),
			rtt:        reg.GaugeL("pure_link_smoothed_rtt_ns", l),
			clockOff:   reg.GaugeL("pure_link_clock_offset_ns", l),
		}
	}
	return lm
}

// sync copies the transport's current per-link snapshot into the labeled
// series.  Counters use Store (the transport values are the monotonic
// truth; repeated syncs must not double-count).
func (lm *linkMetrics) sync() {
	for peer, st := range lm.tp.Stats() {
		pm := lm.peers[peer]
		if pm == nil {
			continue
		}
		pm.framesSent.Store(st.FramesSent)
		pm.framesRecv.Store(st.FramesRecv)
		pm.bytesSent.Store(st.BytesSent)
		pm.bytesRecv.Store(st.BytesRecv)
		pm.retransmits.Store(st.Retransmits)
		pm.retryRounds.Store(st.RetryRounds)
		pm.reconnects.Store(st.Reconnects)
		pm.acksSent.Store(st.AcksSent)
		pm.acksRecv.Store(st.AcksRecv)
		pm.hbSent.Store(st.HeartbeatsSent)
		pm.hbRecv.Store(st.HeartbeatsRecv)
		pm.sendBusy.Store(st.SendBusy)

		up := int64(0)
		if st.Up {
			up = 1
		}
		pm.up.Set(up)
		pm.queueDepth.Set(int64(st.Unacked))
		pm.hbAge.Set(st.HeartbeatAgeNs)
		pm.rtt.Set(st.SmoothedRTTNs)
		pm.clockOff.Set(st.ClockOffsetNs)
	}
}

// LinkStates renders the transport's per-peer snapshot as the monitor's
// /links view (nil without a transport).
func (rt *Runtime) LinkStates() []obs.LinkState {
	if rt.tp == nil {
		return nil
	}
	stats := rt.tp.Stats()
	out := make([]obs.LinkState, 0, len(stats)-1)
	for peer, st := range stats {
		if peer == rt.tp.Node() {
			continue
		}
		out = append(out, obs.LinkState{
			Peer:       peer,
			Up:         st.Up,
			EverUp:     st.EverUp,
			Departed:   st.Departed,
			Dead:       st.Dead,
			DeadReason: st.DeadReason,
			Unacked:    st.Unacked,

			FramesSent:  st.FramesSent,
			FramesRecv:  st.FramesRecv,
			BytesSent:   st.BytesSent,
			BytesRecv:   st.BytesRecv,
			Retransmits: st.Retransmits,
			RetryRounds: st.RetryRounds,
			Reconnects:  st.Reconnects,
			AcksSent:    st.AcksSent,
			AcksRecv:    st.AcksRecv,
			SendBusy:    st.SendBusy,

			HeartbeatsSent: st.HeartbeatsSent,
			HeartbeatsRecv: st.HeartbeatsRecv,
			HeartbeatAgeNs: st.HeartbeatAgeNs,
			SmoothedRTTNs:  st.SmoothedRTTNs,
			ClockOffsetNs:  st.ClockOffsetNs,
		})
	}
	return out
}
