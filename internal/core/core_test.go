package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/collective"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func init() {
	// The concurrency in these tests needs more than the host's single core
	// to actually interleave.
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

// run launches a single-node Pure program.
func run(t *testing.T, nranks int, main func(r *Rank)) {
	t.Helper()
	if err := Run(Config{NRanks: nranks}, main); err != nil {
		t.Fatal(err)
	}
}

// runMulti launches nranks over multiple virtual nodes with rpn ranks each.
func runMulti(t *testing.T, nranks, nodes, rpn int, main func(r *Rank)) {
	t.Helper()
	err := Run(Config{
		NRanks:       nranks,
		Spec:         topology.Spec{Nodes: nodes, SocketsPerNode: 2, CoresPerSocket: (rpn + 3) / 4 * 2, ThreadsPerCore: 1},
		RanksPerNode: rpn,
		Net:          netsim.Config{LatencyNs: 200, BytesPerNs: 10, TimeScale: 10},
	}, main)
	if err != nil {
		t.Fatal(err)
	}
}

func f64b(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func bToF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := Run(Config{NRanks: 0}, func(*Rank) {}); err == nil {
		t.Fatal("want error for zero ranks")
	}
	if err := Run(Config{NRanks: 4, Spec: topology.Spec{Nodes: 1, SocketsPerNode: 1, CoresPerSocket: 2, ThreadsPerCore: 1}}, func(*Rank) {}); err == nil {
		t.Fatal("want error for ranks exceeding hardware")
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("want error from panicking rank")
	}
}

func TestRankIdentity(t *testing.T) {
	var seen [8]atomic.Int32
	run(t, 8, func(r *Rank) {
		seen[r.ID()].Add(1)
		if r.NRanks() != 8 {
			t.Errorf("NRanks = %d", r.NRanks())
		}
		if r.World().Rank() != r.ID() || r.World().Size() != 8 {
			t.Errorf("world comm identity wrong for %d", r.ID())
		}
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("rank %d ran %d times", i, seen[i].Load())
		}
	}
}

func TestSendRecvEagerIntraNode(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send([]byte("hello"), 1, 7)
		} else {
			buf := make([]byte, 16)
			n := c.Recv(buf, 0, 7)
			if n != 5 || string(buf[:5]) != "hello" {
				t.Errorf("recv got %q (%d)", buf[:n], n)
			}
		}
	})
}

func TestSendRecvLargeRendezvous(t *testing.T) {
	const size = 64 << 10 // > 8 KiB threshold
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			msg := bytes.Repeat([]byte{0x5A}, size)
			c.Send(msg, 1, 0)
		} else {
			buf := make([]byte, size)
			n := c.Recv(buf, 0, 0)
			if n != size || buf[0] != 0x5A || buf[size-1] != 0x5A {
				t.Errorf("rendezvous recv wrong: n=%d", n)
			}
		}
	})
}

func TestMessageOrderingPerPair(t *testing.T) {
	const n = 500
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			msg := make([]byte, 8)
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(msg, uint64(i))
				c.Send(msg, 1, 3)
			}
		} else {
			buf := make([]byte, 8)
			for i := 0; i < n; i++ {
				c.Recv(buf, 0, 3)
				if got := binary.LittleEndian.Uint64(buf); got != uint64(i) {
					t.Errorf("message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
}

func TestTagsKeepStreamsSeparate(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send([]byte("tagA"), 1, 1)
			c.Send([]byte("tagB"), 1, 2)
		} else {
			bufB := make([]byte, 8)
			nB := c.Recv(bufB, 0, 2) // receive tag 2 first
			bufA := make([]byte, 8)
			nA := c.Recv(bufA, 0, 1)
			if string(bufB[:nB]) != "tagB" || string(bufA[:nA]) != "tagA" {
				t.Errorf("tag streams crossed: %q %q", bufA[:nA], bufB[:nB])
			}
		}
	})
}

func TestNonblockingWaitall(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			var reqs []*Request
			for i := 0; i < 8; i++ {
				msg := []byte{byte(i)}
				reqs = append(reqs, c.Isend(msg, 1, i))
			}
			c.Waitall(reqs...)
		} else {
			var reqs []*Request
			bufs := make([][]byte, 8)
			// Post receives in reverse tag order to prove independence.
			for i := 7; i >= 0; i-- {
				bufs[i] = make([]byte, 1)
				reqs = append(reqs, c.Irecv(bufs[i], 0, i))
			}
			c.Waitall(reqs...)
			for i := 0; i < 8; i++ {
				if bufs[i][0] != byte(i) {
					t.Errorf("tag %d delivered %d", i, bufs[i][0])
				}
			}
		}
	})
}

func TestMultipleOutstandingRendezvous(t *testing.T) {
	const size = 32 << 10
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			a := bytes.Repeat([]byte{1}, size)
			b := bytes.Repeat([]byte{2}, size)
			ra := c.Isend(a, 1, 0)
			rb := c.Isend(b, 1, 0)
			c.Waitall(ra, rb)
		} else {
			a := make([]byte, size)
			b := make([]byte, size)
			ra := c.Irecv(a, 0, 0)
			rb := c.Irecv(b, 0, 0)
			c.Waitall(rb, ra) // wait out of order
			if a[0] != 1 || b[0] != 2 {
				t.Errorf("rendezvous order broken: %d %d", a[0], b[0])
			}
		}
	})
}

func TestCrossNodeMessaging(t *testing.T) {
	runMulti(t, 4, 2, 2, func(r *Rank) {
		c := r.World()
		// Ranks 0,1 on node 0; ranks 2,3 on node 1.
		if r.ID() == 0 {
			c.Send([]byte("crossing"), 2, 5)
		} else if r.ID() == 2 {
			buf := make([]byte, 16)
			n := c.Recv(buf, 0, 5)
			if string(buf[:n]) != "crossing" {
				t.Errorf("got %q", buf[:n])
			}
			if r.Node() != 1 {
				t.Errorf("rank 2 on node %d", r.Node())
			}
		}
	})
}

func TestCrossNodeOrdering(t *testing.T) {
	const n = 100
	runMulti(t, 2, 2, 1, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			msg := make([]byte, 8)
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(msg, uint64(i))
				c.Send(msg, 1, 0)
			}
		} else {
			buf := make([]byte, 8)
			for i := 0; i < n; i++ {
				c.Recv(buf, 0, 0)
				if got := binary.LittleEndian.Uint64(buf); got != uint64(i) {
					t.Errorf("cross-node message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
}

func TestBarrierSingleNode(t *testing.T) {
	const n = 8
	var counter atomic.Int64
	run(t, n, func(r *Rank) {
		c := r.World()
		for round := 1; round <= 10; round++ {
			counter.Add(1)
			c.Barrier()
			if got := counter.Load(); got != int64(round*n) {
				t.Errorf("round %d rank %d: counter = %d, want %d", round, r.ID(), got, round*n)
			}
			c.Barrier()
		}
	})
}

func TestBarrierMultiNode(t *testing.T) {
	const n = 8
	var counter atomic.Int64
	runMulti(t, n, 4, 2, func(r *Rank) {
		c := r.World()
		for round := 1; round <= 5; round++ {
			counter.Add(1)
			c.Barrier()
			if got := counter.Load(); got != int64(round*n) {
				t.Errorf("round %d: counter = %d, want %d", round, got, round*n)
			}
			c.Barrier()
		}
	})
}

func TestAllreduceSmallSingleNode(t *testing.T) {
	const n = 8
	run(t, n, func(r *Rank) {
		c := r.World()
		out := make([]byte, 8)
		c.Allreduce(f64b(float64(r.ID()+1)), out, collective.OpSum, collective.Float64)
		if got := bToF64(out)[0]; got != 36 { // 1+..+8
			t.Errorf("rank %d: allreduce = %v, want 36", r.ID(), got)
		}
	})
}

func TestAllreduceSmallMultiNode(t *testing.T) {
	const n = 12
	runMulti(t, n, 3, 4, func(r *Rank) {
		c := r.World()
		out := make([]byte, 8)
		for round := 0; round < 5; round++ {
			c.Allreduce(f64b(float64(r.ID()+round)), out, collective.OpSum, collective.Float64)
			want := float64(round*n) + 66 // 0+..+11 = 66
			if got := bToF64(out)[0]; got != want {
				t.Errorf("round %d rank %d: got %v, want %v", round, r.ID(), got, want)
			}
		}
	})
}

func TestAllreduceLargePartitioned(t *testing.T) {
	const n = 6
	const elems = 1024 // 8 KiB > SPTDMax
	runMulti(t, n, 2, 3, func(r *Rank) {
		c := r.World()
		in := make([]float64, elems)
		for i := range in {
			in[i] = float64(r.ID() + i)
		}
		out := make([]byte, elems*8)
		c.Allreduce(f64b(in...), out, collective.OpSum, collective.Float64)
		got := bToF64(out)
		for i := 0; i < elems; i += 131 {
			want := 0.0
			for t2 := 0; t2 < n; t2++ {
				want += float64(t2 + i)
			}
			if got[i] != want {
				t.Errorf("elem %d: got %v, want %v", i, got[i], want)
				return
			}
		}
	})
}

func TestAllreduceMinMax(t *testing.T) {
	const n = 5
	run(t, n, func(r *Rank) {
		c := r.World()
		out := make([]byte, 8)
		c.Allreduce(f64b(float64(r.ID())), out, collective.OpMax, collective.Float64)
		if got := bToF64(out)[0]; got != 4 {
			t.Errorf("max = %v", got)
		}
		c.Allreduce(f64b(float64(r.ID())), out, collective.OpMin, collective.Float64)
		if got := bToF64(out)[0]; got != 0 {
			t.Errorf("min = %v", got)
		}
	})
}

func TestReduceToEveryRoot(t *testing.T) {
	const n = 6
	runMulti(t, n, 2, 3, func(r *Rank) {
		c := r.World()
		for root := 0; root < n; root++ {
			out := make([]byte, 8)
			c.Reduce(f64b(float64(r.ID()+1)), out, root, collective.OpSum, collective.Float64)
			if r.ID() == root {
				if got := bToF64(out)[0]; got != 21 {
					t.Errorf("root %d: reduce = %v, want 21", root, got)
				}
			}
			c.Barrier()
		}
	})
}

func TestReduceNilOutOnNonRoot(t *testing.T) {
	run(t, 4, func(r *Rank) {
		c := r.World()
		var out []byte
		if r.ID() == 2 {
			out = make([]byte, 8)
		}
		c.Reduce(f64b(1), out, 2, collective.OpSum, collective.Float64)
		if r.ID() == 2 {
			if got := bToF64(out)[0]; got != 4 {
				t.Errorf("reduce = %v, want 4", got)
			}
		}
	})
}

func TestBcastSmallAndLarge(t *testing.T) {
	for _, size := range []int{64, 64 << 10} {
		size := size
		t.Run(fmt.Sprintf("%dB", size), func(t *testing.T) {
			const n = 6
			runMulti(t, n, 2, 3, func(r *Rank) {
				c := r.World()
				for root := 0; root < n; root += 3 {
					buf := make([]byte, size)
					if r.ID() == root {
						for i := range buf {
							buf[i] = byte(root + 1)
						}
					}
					c.Bcast(buf, root)
					if buf[0] != byte(root+1) || buf[size-1] != byte(root+1) {
						t.Errorf("root %d rank %d: bcast payload wrong", root, r.ID())
					}
					c.Barrier()
				}
			})
		})
	}
}

func TestCommSplitEvenOdd(t *testing.T) {
	const n = 8
	runMulti(t, n, 2, 4, func(r *Rank) {
		world := r.World()
		sub := world.Split(r.ID()%2, r.ID())
		if sub.Size() != 4 {
			t.Errorf("rank %d: sub size = %d", r.ID(), sub.Size())
		}
		if want := r.ID() / 2; sub.Rank() != want {
			t.Errorf("rank %d: sub rank = %d, want %d", r.ID(), sub.Rank(), want)
		}
		// Allreduce within the sub-communicator: sum of the member ids.
		out := make([]byte, 8)
		sub.Allreduce(f64b(float64(r.ID())), out, collective.OpSum, collective.Float64)
		want := 12.0 // 0+2+4+6
		if r.ID()%2 == 1 {
			want = 16.0 // 1+3+5+7
		}
		if got := bToF64(out)[0]; got != want {
			t.Errorf("rank %d: sub allreduce = %v, want %v", r.ID(), got, want)
		}
		// p2p within the sub-communicator.
		if sub.Rank() == 0 {
			sub.Send([]byte{42}, 1, 0)
		} else if sub.Rank() == 1 {
			b := make([]byte, 1)
			sub.Recv(b, 0, 0)
			if b[0] != 42 {
				t.Errorf("sub p2p delivered %d", b[0])
			}
		}
	})
}

func TestCommSplitUndefinedColor(t *testing.T) {
	run(t, 4, func(r *Rank) {
		color := -1
		if r.ID() < 2 {
			color = 0
		}
		sub := r.World().Split(color, 0)
		if r.ID() < 2 && (sub == nil || sub.Size() != 2) {
			t.Errorf("rank %d: expected comm of 2", r.ID())
		}
		if r.ID() >= 2 && sub != nil {
			t.Errorf("rank %d: expected nil comm", r.ID())
		}
	})
}

func TestCommSplitKeyReordersRanks(t *testing.T) {
	run(t, 4, func(r *Rank) {
		// Reverse order via descending keys.
		sub := r.World().Split(0, -r.ID())
		if want := 3 - r.ID(); sub.Rank() != want {
			t.Errorf("rank %d: sub rank %d, want %d", r.ID(), sub.Rank(), want)
		}
	})
}

func TestRepeatedSplits(t *testing.T) {
	run(t, 4, func(r *Rank) {
		world := r.World()
		for i := 0; i < 3; i++ {
			sub := world.Split(r.ID()%2, r.ID())
			out := make([]byte, 8)
			sub.Allreduce(f64b(1), out, collective.OpSum, collective.Float64)
			if got := bToF64(out)[0]; got != 2 {
				t.Errorf("split %d: allreduce = %v", i, got)
			}
		}
	})
}

func TestTaskExecuteAllChunks(t *testing.T) {
	const n = 4
	const chunks = 64
	var counts [chunks]atomic.Int32
	run(t, n, func(r *Rank) {
		if r.ID() == 0 {
			task := r.NewTask(chunks, func(start, end int64, _ any) {
				for c := start; c < end; c++ {
					counts[c].Add(1)
				}
			})
			stats := task.Execute(nil)
			if stats.OwnerChunks+stats.StolenChunks != chunks {
				t.Errorf("stats = %+v", stats)
			}
		}
		r.World().Barrier()
	})
	for c := range counts {
		if counts[c].Load() != 1 {
			t.Fatalf("chunk %d ran %d times", c, counts[c].Load())
		}
	}
}

func TestTaskStealingWhileBlocked(t *testing.T) {
	// Rank 0 runs a long task; rank 1 blocks on a recv that only completes
	// after the task is done, so its SSW-Loop must steal chunks.  The
	// interleaving depends on the Go scheduler (this host has one core), so
	// the check retries a few times before declaring the SSW-Loop broken.
	const chunks = 256
	attempt := func() (execCount, stolen int64, err error) {
		var executed atomic.Int64
		var stolenByOne atomic.Int64
		var oneReady atomic.Bool
		err = Run(Config{NRanks: 2}, func(r *Rank) {
			c := r.World()
			if r.ID() == 0 {
				// Give rank 1 a chance to enter its SSW-Loop first.
				for i := 0; i < 1_000_000 && !oneReady.Load(); i++ {
					runtime.Gosched()
				}
				for i := 0; i < 64; i++ {
					runtime.Gosched() // let rank 1 park inside Wait
				}
				task := r.NewTask(chunks, func(start, end int64, _ any) {
					for ch := start; ch < end; ch++ {
						executed.Add(1)
						for spin := 0; spin < 20000; spin++ {
							_ = spin * spin
						}
						runtime.Gosched()
					}
				})
				task.Execute(nil)
				c.Send([]byte{1}, 1, 0) // release rank 1
			} else {
				buf := make([]byte, 1)
				req := c.Irecv(buf, 0, 0)
				oneReady.Store(true)
				c.Wait(req) // SSW-Loop steals here
				_, st := r.StealStats()
				stolenByOne.Store(st)
			}
		})
		return executed.Load(), stolenByOne.Load(), err
	}
	for try := 0; try < 12; try++ {
		exec, stolen, err := attempt()
		if err != nil {
			t.Fatal(err)
		}
		if exec != chunks {
			t.Fatalf("executed %d chunks, want %d", exec, chunks)
		}
		if stolen > 0 {
			t.Logf("rank 1 stole %d allocations (attempt %d)", stolen, try+1)
			return
		}
	}
	t.Error("rank 1 stole nothing in 12 attempts (SSW-Loop not stealing)")
}

func TestTaskPerExecuteArgs(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.ID() == 0 {
			var got int
			task := r.NewTask(1, func(_, _ int64, extra any) { got = extra.(int) })
			for i := 0; i < 3; i++ {
				task.Execute(i * 10)
				if got != i*10 {
					t.Errorf("per-exe arg = %d, want %d", got, i*10)
				}
			}
		}
		r.World().Barrier()
	})
}

func TestTaskDefaultChunks(t *testing.T) {
	run(t, 1, func(r *Rank) {
		task := r.NewTask(0, func(_, _ int64, _ any) {})
		if task.Chunks() != DefaultTaskChunks {
			t.Errorf("default chunks = %d", task.Chunks())
		}
	})
}

func TestHelperThreadsSteal(t *testing.T) {
	const chunks = 512
	var executed atomic.Int64
	err := Run(Config{
		NRanks:         1,
		Spec:           topology.Spec{Nodes: 1, SocketsPerNode: 1, CoresPerSocket: 4, ThreadsPerCore: 1},
		HelpersPerNode: 3,
	}, func(r *Rank) {
		task := r.NewTask(chunks, func(start, end int64, _ any) {
			for c := start; c < end; c++ {
				executed.Add(1)
				runtime.Gosched()
			}
		})
		stats := task.Execute(nil)
		t.Logf("owner=%d stolen-by-helpers=%d", stats.OwnerChunks, stats.StolenChunks)
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != chunks {
		t.Fatalf("executed %d, want %d", executed.Load(), chunks)
	}
}

func TestTagValidation(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("reserved tag accepted")
			}
		}()
		r.World().Send([]byte{1}, 1, collTag)
	})
}

func TestSelfSendPanics(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("self-send accepted")
			}
		}()
		r.World().Send([]byte{1}, 0, 0)
	})
}

func TestEncodeDecodeInterNodeTag(t *testing.T) {
	enc, err := EncodeInterNodeTag(123, 17, 42, 6)
	if err != nil {
		t.Fatal(err)
	}
	tag, src, dst := DecodeInterNodeTag(enc, 6)
	if tag != 123 || src != 17 || dst != 42 {
		t.Fatalf("decode = (%d,%d,%d)", tag, src, dst)
	}
	if _, err := EncodeInterNodeTag(1, 64, 0, 6); err == nil {
		t.Error("thread id overflow accepted")
	}
	if _, err := EncodeInterNodeTag(1<<20, 0, 0, 6); err == nil {
		t.Error("tag overflow accepted")
	}
	if _, err := EncodeInterNodeTag(1, 0, 0, 0); err == nil {
		t.Error("zero bits accepted")
	}
}

// Property: encode/decode round-trips for every (tag, src, dst) in range.
func TestInterNodeTagRoundTripProperty(t *testing.T) {
	f := func(tagU uint16, srcU, dstU uint8) bool {
		tag := int(tagU)
		src := int(srcU % 64)
		dst := int(dstU % 64)
		enc, err := EncodeInterNodeTag(tag, src, dst, 6)
		if err != nil {
			return false
		}
		gt, gs, gd := DecodeInterNodeTag(enc, 6)
		return gt == tag && gs == src && gd == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Integration: the §2 random-work stencil smoke test on the real runtime.
func TestStencilIntegration(t *testing.T) {
	const nranks = 4
	const arr = 64
	const iters = 10
	finals := make([][]float64, nranks)
	run(t, nranks, func(r *Rank) {
		c := r.World()
		a := make([]float64, arr)
		for i := range a {
			a[i] = float64(r.ID()*arr + i)
		}
		temp := make([]float64, arr)
		task := r.NewTask(8, func(start, end int64, _ any) {
			lo, hi := (&Task{nchunks: 8}).AlignedIdxRange(arr, 8, start, end)
			for i := lo; i < hi; i++ {
				temp[i] = a[i] * 1.0001
			}
		})
		buf := make([]byte, 8)
		for it := 0; it < iters; it++ {
			task.Execute(nil)
			for i := 1; i < arr-1; i++ {
				a[i] = (temp[i-1] + temp[i] + temp[i+1]) / 3.0
			}
			if r.ID() > 0 {
				c.Send(f64b(temp[0]), r.ID()-1, 0)
				c.Recv(buf, r.ID()-1, 0)
				hi := bToF64(buf)[0]
				a[0] = (hi + temp[0] + temp[1]) / 3.0
			}
			if r.ID() < nranks-1 {
				c.Send(f64b(temp[arr-1]), r.ID()+1, 0)
				c.Recv(buf, r.ID()+1, 0)
				lo := bToF64(buf)[0]
				a[arr-1] = (temp[arr-2] + temp[arr-1] + lo) / 3.0
			}
		}
		finals[r.ID()] = a
	})
	// Reference: sequential computation of the same stencil.
	ref := make([]float64, nranks*arr)
	for i := range ref {
		ref[i] = float64(i)
	}
	tmp := make([]float64, nranks*arr)
	for it := 0; it < iters; it++ {
		for i := range ref {
			tmp[i] = ref[i] * 1.0001
		}
		for i := range ref {
			li := i % arr
			var l, c2, h float64
			c2 = tmp[i]
			if li == 0 {
				if i == 0 {
					continue
				}
				l, h = tmp[i-1], tmp[i+1]
			} else if li == arr-1 {
				if i == len(ref)-1 {
					continue
				}
				l, h = tmp[i-1], tmp[i+1]
			} else {
				l, h = tmp[i-1], tmp[i+1]
			}
			ref[i] = (l + c2 + h) / 3.0
		}
	}
	for rank := 0; rank < nranks; rank++ {
		for i := 0; i < arr; i++ {
			gi := rank*arr + i
			if gi == 0 || gi == nranks*arr-1 {
				continue
			}
			if math.Abs(finals[rank][i]-ref[gi]) > 1e-9 {
				t.Fatalf("rank %d elem %d: %v != ref %v", rank, i, finals[rank][i], ref[gi])
			}
		}
	}
}

func TestIsendBackpressureBeyondPBQSlots(t *testing.T) {
	// Post far more Isends than PBQ slots; pending sends must drain as the
	// receiver consumes, preserving FIFO.
	const msgs = 100
	err := Run(Config{NRanks: 2, PBQSlots: 4}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			bufs := make([][]byte, msgs)
			reqs := make([]*Request, msgs)
			for i := 0; i < msgs; i++ {
				bufs[i] = []byte{byte(i)}
				reqs[i] = c.Isend(bufs[i], 1, 0)
			}
			c.Waitall(reqs...)
		} else {
			buf := make([]byte, 1)
			for i := 0; i < msgs; i++ {
				c.Recv(buf, 0, 0)
				if buf[0] != byte(i) {
					t.Errorf("message %d arrived as %d", i, buf[0])
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFastPathAndPendingInterleaveFIFO(t *testing.T) {
	// Mix Isend (may pend) and blocking Send on the same channel: delivery
	// order must match the call order even though blocking sends have a
	// direct fast path.
	err := Run(Config{NRanks: 2, PBQSlots: 2}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			var reqs []*Request
			seq := byte(0)
			for round := 0; round < 20; round++ {
				for k := 0; k < 3; k++ { // overflow the 2-slot queue
					reqs = append(reqs, c.Isend([]byte{seq}, 1, 0))
					seq++
				}
				c.Send([]byte{seq}, 1, 0) // blocking send behind pendings
				seq++
			}
			c.Waitall(reqs...)
		} else {
			buf := make([]byte, 1)
			for i := 0; i < 20*4; i++ {
				c.Recv(buf, 0, 0)
				if buf[0] != byte(i) {
					t.Fatalf("message %d arrived as %d", i, buf[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvFastPathInterleaveFIFO(t *testing.T) {
	// Mix Irecv (pending) and blocking Recv on the same channel.
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			for i := 0; i < 40; i++ {
				c.Send([]byte{byte(i)}, 1, 0)
			}
		} else {
			got := make([]byte, 0, 40)
			for i := 0; i < 10; i++ {
				a := make([]byte, 1)
				b := make([]byte, 1)
				ra := c.Irecv(a, 0, 0)
				rb := c.Irecv(b, 0, 0)
				cbuf := make([]byte, 1)
				// Blocking Recv must queue BEHIND the two pending Irecvs.
				c.Recv(cbuf, 0, 0)
				d := make([]byte, 1)
				c.Wait(ra)
				c.Wait(rb)
				c.Recv(d, 0, 0)
				got = append(got, a[0], b[0], cbuf[0], d[0])
			}
			for i, v := range got {
				if v != byte(i) {
					t.Fatalf("position %d got message %d", i, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyTagsManyRanksStress(t *testing.T) {
	// All-to-all with per-pair tags: every rank sends one message to every
	// other rank on 3 different tags.
	const n = 6
	err := Run(Config{NRanks: n}, func(r *Rank) {
		c := r.World()
		var reqs []*Request
		inbox := make([][]byte, 0, (n-1)*3)
		for tag := 0; tag < 3; tag++ {
			for src := 0; src < n; src++ {
				if src == r.ID() {
					continue
				}
				buf := make([]byte, 2)
				inbox = append(inbox, buf)
				reqs = append(reqs, c.Irecv(buf, src, tag))
			}
		}
		for tag := 0; tag < 3; tag++ {
			for dst := 0; dst < n; dst++ {
				if dst == r.ID() {
					continue
				}
				c.Send([]byte{byte(r.ID()), byte(tag)}, dst, tag)
			}
		}
		c.Waitall(reqs...)
		i := 0
		for tag := 0; tag < 3; tag++ {
			for src := 0; src < n; src++ {
				if src == r.ID() {
					continue
				}
				if inbox[i][0] != byte(src) || inbox[i][1] != byte(tag) {
					t.Errorf("rank %d: slot %d = % x, want (%d,%d)", r.ID(), i, inbox[i], src, tag)
				}
				i++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedCollectiveSequenceMultiNode(t *testing.T) {
	// Alternate every collective kind across 3 nodes, twice, to exercise the
	// per-kind round counters and shared-buffer reuse gates together.
	const n = 9
	runMulti(t, n, 3, 3, func(r *Rank) {
		c := r.World()
		for round := 0; round < 2; round++ {
			if got := bToF64(allreduce(c, float64(r.ID())))[0]; got != 36 {
				t.Errorf("allreduce = %v, want 36", got)
			}
			c.Barrier()
			buf := make([]byte, 8)
			root := (round*4 + 1) % n
			if r.ID() == root {
				copy(buf, f64b(float64(100+round)))
			}
			c.Bcast(buf, root)
			if got := bToF64(buf)[0]; got != float64(100+round) {
				t.Errorf("bcast = %v", got)
			}
			out := make([]byte, 8)
			c.Reduce(f64b(1), out, root, collective.OpSum, collective.Float64)
			if r.ID() == root {
				if got := bToF64(out)[0]; got != n {
					t.Errorf("reduce = %v, want %d", got, n)
				}
			}
			gout := make([]byte, n)
			c.Allgather([]byte{byte(r.ID())}, gout)
			for i := 0; i < n; i++ {
				if gout[i] != byte(i) {
					t.Errorf("allgather[%d] = %d", i, gout[i])
				}
			}
		}
	})
}

func allreduce(c *Comm, v float64) []byte {
	out := make([]byte, 8)
	c.Allreduce(f64b(v), out, collective.OpSum, collective.Float64)
	return out
}

func TestLargeAllreduceAlternatesWithSmall(t *testing.T) {
	// Switching between the SPTD and Partitioned Reducer paths on the same
	// communicator must not confuse either structure's round counters.
	const n = 6
	runMulti(t, n, 2, 3, func(r *Rank) {
		c := r.World()
		small := f64b(1)
		large := make([]byte, 4096*8) // > SPTDMax
		PutVal := func(b []byte, v float64) {
			for i := 0; i+8 <= len(b); i += 8 {
				copy(b[i:], f64b(v))
			}
		}
		PutVal(large, 2)
		for round := 0; round < 3; round++ {
			outS := make([]byte, 8)
			c.Allreduce(small, outS, collective.OpSum, collective.Float64)
			if got := bToF64(outS)[0]; got != n {
				t.Errorf("small allreduce = %v", got)
			}
			outL := make([]byte, len(large))
			c.Allreduce(large, outL, collective.OpSum, collective.Float64)
			if got := bToF64(outL[:8])[0]; got != 2*n {
				t.Errorf("large allreduce = %v", got)
			}
			if got := bToF64(outL[len(outL)-8:])[0]; got != 2*n {
				t.Errorf("large allreduce tail = %v", got)
			}
		}
	})
}

func TestSubCommCollectivesAcrossNodes(t *testing.T) {
	// Split into row communicators that each span nodes; collectives on the
	// sub-comms must build their own per-node structures correctly.
	const n = 8 // 2 nodes x 4; rows = even/odd ranks -> 2 per node per row
	runMulti(t, n, 2, 4, func(r *Rank) {
		c := r.World()
		row := c.Split(r.ID()%2, r.ID())
		want := 12.0 // 0+2+4+6
		if r.ID()%2 == 1 {
			want = 16.0
		}
		out := make([]byte, 8)
		row.Allreduce(f64b(float64(r.ID())), out, collective.OpSum, collective.Float64)
		if got := bToF64(out)[0]; got != want {
			t.Errorf("rank %d: row allreduce = %v, want %v", r.ID(), got, want)
		}
		row.Barrier()
		buf := make([]byte, 8)
		if row.Rank() == row.Size()-1 {
			copy(buf, f64b(7))
		}
		row.Bcast(buf, row.Size()-1)
		if got := bToF64(buf)[0]; got != 7 {
			t.Errorf("row bcast = %v", got)
		}
	})
}

// Property: a randomized two-rank message schedule — arbitrary mixes of
// blocking/nonblocking operations, sizes straddling the rendezvous
// threshold, and several tags — always delivers every payload intact, in
// per-tag FIFO order.
func TestRandomScheduleProperty(t *testing.T) {
	type op struct {
		Tag  uint8
		Size uint16
		NB   bool // nonblocking
	}
	f := func(ops []op) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		if len(ops) == 0 {
			return true
		}
		// Normalize: 3 tags, sizes 1..16384 (spanning the 8 KiB threshold).
		for i := range ops {
			ops[i].Tag %= 3
			if ops[i].Size == 0 {
				ops[i].Size = 1
			}
		}
		ok := true
		err := Run(Config{NRanks: 2, PBQSlots: 4}, func(r *Rank) {
			c := r.World()
			if r.ID() == 0 {
				var reqs []*Request
				var seq [3]byte
				for _, o := range ops {
					buf := make([]byte, o.Size)
					buf[0] = seq[o.Tag]
					buf[len(buf)-1] = seq[o.Tag]
					seq[o.Tag]++
					if o.NB {
						reqs = append(reqs, c.Isend(buf, 1, int(o.Tag)))
					} else {
						c.Send(buf, 1, int(o.Tag))
					}
				}
				c.Waitall(reqs...)
			} else {
				var reqs []*Request
				var bufs [][]byte
				var tags []uint8
				var seq [3]byte
				var wantSeq []byte
				for _, o := range ops {
					buf := make([]byte, o.Size)
					if o.NB {
						reqs = append(reqs, c.Irecv(buf, 0, int(o.Tag)))
						bufs = append(bufs, buf)
						tags = append(tags, o.Tag)
						wantSeq = append(wantSeq, seq[o.Tag])
					} else {
						c.Recv(buf, 0, int(o.Tag))
						if buf[0] != seq[o.Tag] || buf[len(buf)-1] != seq[o.Tag] {
							ok = false
						}
					}
					seq[o.Tag]++
				}
				c.Waitall(reqs...)
				for i, buf := range bufs {
					if buf[0] != wantSeq[i] || buf[len(buf)-1] != wantSeq[i] {
						ok = false
					}
					_ = tags
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitReversedAcrossNodesSortsNodeList(t *testing.T) {
	// A split whose comm-rank order visits nodes out of ascending order
	// exercises newCommShared's node-list normalization.
	runMulti(t, 4, 2, 2, func(r *Rank) {
		c := r.World()
		// Reverse order: rank 3 (node 1) becomes comm rank 0.
		sub := c.Split(0, -r.ID())
		if want := 3 - r.ID(); sub.Rank() != want {
			t.Errorf("rank %d: sub rank %d, want %d", r.ID(), sub.Rank(), want)
		}
		if got := sub.GlobalRank(sub.Rank()); got != r.ID() {
			t.Errorf("GlobalRank round trip: %d != %d", got, r.ID())
		}
		out := make([]byte, 8)
		sub.Allreduce(f64b(1), out, collective.OpSum, collective.Float64)
		if got := bToF64(out)[0]; got != 4 {
			t.Errorf("reversed-split allreduce = %v", got)
		}
		sub.Barrier()
		buf := make([]byte, 8)
		if sub.Rank() == 0 { // global rank 3, on node 1
			copy(buf, f64b(9))
		}
		sub.Bcast(buf, 0)
		if got := bToF64(buf)[0]; got != 9 {
			t.Errorf("reversed-split bcast = %v", got)
		}
	})
}

func TestRequestAccessorsAndRankIntrospection(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			req := c.Isend([]byte{5, 6}, 1, 0)
			c.Wait(req)
			if !req.Done() {
				t.Error("completed send not Done")
			}
		} else {
			buf := make([]byte, 2)
			req := c.Irecv(buf, 0, 0)
			c.Wait(req)
			if !req.Done() || req.Bytes() != 2 {
				t.Errorf("recv req: done=%v bytes=%d", req.Done(), req.Bytes())
			}
		}
		rt := r.Runtime()
		if rt.Config().NRanks != 2 || rt.Placement().NRank != 2 {
			t.Error("runtime introspection wrong")
		}
	})
}

func TestTaskUnalignedIdxRange(t *testing.T) {
	run(t, 1, func(r *Rank) {
		task := r.NewTask(4, func(_, _ int64, _ any) {})
		lo, hi := task.UnalignedIdxRange(100, 0, 4)
		if lo != 0 || hi != 100 {
			t.Errorf("unaligned full range = [%d,%d)", lo, hi)
		}
		lo, hi = task.UnalignedIdxRange(100, 1, 2)
		if lo != 25 || hi != 50 {
			t.Errorf("unaligned chunk = [%d,%d)", lo, hi)
		}
	})
}

func TestRunWithStatsDirect(t *testing.T) {
	stats, err := RunWithStats(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			c.Send([]byte{1}, 1, 0)
		} else {
			c.Recv(make([]byte, 1), 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var total RankStats
	for _, s := range stats {
		total.Add(s)
	}
	if total.Messages() != 1 || total.BytesSent != 1 || total.BytesReceived != 1 {
		t.Errorf("stats total = %+v", total)
	}
}

// Property: for any color assignment, Split partitions the world into
// communicators whose sizes sum to the participating rank count, with
// contiguous 0..size-1 ranks, and collectives work inside each group.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(colorsU [6]uint8) bool {
		const n = 6
		var colors [n]int
		for i, c := range colorsU {
			colors[i] = int(c%3) - 1 // -1 (undefined), 0, 1
		}
		sizes := make([]int32, n)
		ok := true
		err := Run(Config{NRanks: n}, func(r *Rank) {
			c := r.World()
			sub := c.Split(colors[r.ID()], r.ID())
			if colors[r.ID()] < 0 {
				if sub != nil {
					ok = false
				}
				return
			}
			if sub == nil {
				ok = false
				return
			}
			atomic.StoreInt32(&sizes[r.ID()], int32(sub.Size()))
			// Collective inside the subgroup: sum of global ids must match
			// the expected group sum.
			want := 0
			for g := 0; g < n; g++ {
				if colors[g] == colors[r.ID()] {
					want += g
				}
			}
			out := make([]byte, 8)
			sub.Allreduce(f64b(float64(r.ID())), out, collective.OpSum, collective.Float64)
			if got := bToF64(out)[0]; got != float64(want) {
				ok = false
			}
		})
		if err != nil || !ok {
			return false
		}
		// Size consistency: every member of a color must report the color's
		// member count.
		for i := 0; i < n; i++ {
			if colors[i] < 0 {
				continue
			}
			count := int32(0)
			for g := 0; g < n; g++ {
				if colors[g] == colors[i] {
					count++
				}
			}
			if sizes[i] != count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
