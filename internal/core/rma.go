package core

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/collective"
	"repro/internal/obs"
	"repro/internal/rma"
)

// One-sided communication (RMA): the core-layer glue around internal/rma.
//
// Intra-node window operations are direct memory accesses: a Put is one
// bounds-checked copy into the target rank's exposed buffer — the same
// single-copy discipline as the rendezvous path — ordered by the epoch
// primitives' atomic flags.  Inter-node operations are encoded as frames
// and ride the existing mailbox transport on a reserved tag (and, under
// fault injection, the same link-layer ack/retransmit protocol as ordinary
// remote sends).  The target applies incoming frames from its own
// goroutine — in every runtime wait via the SSW loop's Progress hook, and
// inside the RMA wait loops themselves — and advances a per-flow applied
// watermark that doubles as the origin's completion signal (a free
// shared-memory read, modeled exactly like the link-layer ack).

// rmaTag is the reserved channel-manager tag space for RMA frames; it sits
// above collTag, so it can never collide with application tags (checked
// below collTag) or with internal collective traffic (exactly collTag).
const rmaTag = collTag + 1

// rmaFlow is one origin->target remote RMA stream: the underlying mailbox
// channel plus the applied watermark.  sent is origin-owned (single
// goroutine); applied is advanced by the target as it applies frames in
// flow order, so an origin's operation is globally complete — applied to
// target memory, not merely delivered — once applied covers its sequence.
type rmaFlow struct {
	rc      *remoteChannel
	sent    uint64        // frames shipped; owned by the origin rank
	applied atomic.Uint64 // frames applied by the target (completion watermark)
}

// rmaInbox is one incoming flow a rank drains: the flow plus the frame
// dispatch coordinates the chanKey carried (communicator and origin).
type rmaInbox struct {
	flow   *rmaFlow
	comm   uint64
	origin int // global origin rank
}

// rmaFlowFor resolves (or creates) the flow for key, with a rank-local
// cache in front of the shared map, like the channel caches.
func (r *Rank) rmaFlowFor(key chanKey) *rmaFlow {
	if f, ok := r.rmaFlowCache[key]; ok {
		return f
	}
	rc := r.getRemote(key)
	v, _ := r.rt.rmaFlows.LoadOrStore(key, &rmaFlow{rc: rc})
	f := v.(*rmaFlow)
	if r.rmaFlowCache == nil {
		r.rmaFlowCache = make(map[chanKey]*rmaFlow)
	}
	r.rmaFlowCache[key] = f
	return f
}

// Win is one rank's handle on a window (the analogue of MPI_Win).  The
// shared state lives in the runtime's window registry; the handle holds
// this rank's epoch rounds and outstanding remote operations.
type Win struct {
	c   *Comm
	w   *rma.Window
	key rma.Key

	fenceRound    uint64
	postRound     uint64
	startRound    uint64
	completeRound uint64
	waitRound     uint64
	startTargets  []int // comm ranks of the open access epoch (Start..Complete)
	postOrigins   []int // comm ranks of the open exposure epoch (Post..Wait)
	consumed      [rma.NotifySlots]uint64
	pend          []*Request // outstanding remote operations on this window
}

// WinCreate collectively creates a window over the communicator, exposing
// buf as the calling rank's window memory (ranks may expose buffers of
// different sizes, including nil).  Windows are registered in a registry
// keyed like the channel manager — (communicator, creation sequence) — so
// every member, and the remote-frame dispatch, resolves the same shared
// state.  Collective: every member must call WinCreate in the same order.
func (c *Comm) WinCreate(buf []byte) *Win {
	r := c.r
	c.winEpoch++
	k := rma.Key{Comm: c.sh.id, Seq: c.winEpoch}
	w := r.rt.rmaReg.GetOrCreate(k, c.Size())
	w.Attach(c.myRank, buf)
	// Subscribe to RMA frames from every member on another node: the
	// origin-role kinds (put/acc/get-req/notify) and get replies all arrive
	// on the same per-origin flow.
	for _, g := range c.sh.members {
		if g == r.id || r.rt.place.SameNode(r.id, g) {
			continue
		}
		key := chanKey{src: g, dst: r.id, tag: rmaTag, comm: c.sh.id}
		if r.rmaInSet == nil {
			r.rmaInSet = make(map[chanKey]bool)
		}
		if !r.rmaInSet[key] {
			r.rmaInSet[key] = true
			r.rmaIn = append(r.rmaIn, &rmaInbox{flow: r.rmaFlowFor(key), comm: c.sh.id, origin: g})
		}
	}
	if r.rt.tp != nil && c.multiNode() {
		// Members in other OS processes never Attach into this replica, so
		// exchange buffer lengths to keep origin-side bounds checks global.
		var mine [8]byte
		binary.LittleEndian.PutUint64(mine[:], uint64(len(buf)))
		all := make([]byte, 8*c.Size())
		c.Allgather(mine[:], all)
		for cr := 0; cr < c.Size(); cr++ {
			w.SetLen(cr, int(binary.LittleEndian.Uint64(all[cr*8:])))
		}
	}
	c.Barrier() // every buffer attached and every inbox subscribed
	return &Win{c: c, w: w, key: k}
}

// Comm returns the communicator the window was created over.
func (win *Win) Comm() *Comm { return win.c }

// Size returns the window's member count.
func (win *Win) Size() int { return win.w.N() }

// Len returns the byte length of target's exposed buffer (valid for every
// member, including cross-process members whose buffer this replica cannot
// address).
func (win *Win) Len(target int) int {
	win.c.checkPeer(target, "window")
	return win.w.Len(target)
}

// Buffer returns the calling rank's own exposed buffer.
func (win *Win) Buffer() []byte { return win.w.Buffer(win.c.myRank) }

// local reports whether target (comm rank) shares this rank's node, and
// returns its global rank.
func (win *Win) local(target int) (int, bool) {
	g := win.c.sh.members[target]
	return g, g == win.c.r.id || win.c.r.rt.place.SameNode(win.c.r.id, g)
}

// addPend records an outstanding remote operation for the next closing
// synchronization, first pruning completed entries from the head (flows
// complete in order, so the head check is cheap and keeps put+notify loops
// that never fence from accumulating requests without bound).
func (win *Win) addPend(req *Request) {
	for len(win.pend) > 0 {
		h := win.pend[0]
		if !h.done && h.kind == reqRmaRemote && h.flow.applied.Load() >= h.flowSeq {
			h.done = true
		}
		if !h.done {
			break
		}
		win.pend[0] = nil
		win.pend = win.pend[1:]
	}
	if len(win.pend) == 0 {
		win.pend = nil
	}
	win.pend = append(win.pend, req)
}

// completePending blocks until every outstanding remote operation on the
// window has been applied at its target (Put/Accumulate/Notify) or
// replied to (Get).
func (win *Win) completePending() {
	for _, req := range win.pend {
		win.c.r.waitReq(req)
	}
	for i := range win.pend {
		win.pend[i] = nil
	}
	win.pend = nil
}

// rmaTransmit encodes f and ships it on the calling rank's flow toward
// dstGlobal, returning the flow and the frame's sequence in it (the
// applied watermark that signals completion).  Under fault injection the
// frame goes through the link-layer ack/retransmit protocol; the link
// request joins r.rmaLinks and is driven by rmaProgress.
func (r *Rank) rmaTransmit(commID uint64, dstGlobal int, f *rma.Frame) (*rmaFlow, uint64) {
	key := chanKey{src: r.id, dst: dstGlobal, tag: rmaTag, comm: commID}
	flow := r.rmaFlowFor(key)
	buf := f.Encode()
	flow.sent++
	if r.met != nil {
		r.met.rmaRemotePackets.Inc()
	}
	if r.rt.tp != nil {
		// Real transport: the encoded frame rides the link's sequenced
		// stream into the target process's mailbox; the applied watermark
		// comes back as KindApplied frames (see tpApplied).
		r.tpSendData(key, buf)
		return flow, flow.sent
	}
	if !r.rt.net.FaultsActive() {
		r.remoteSendOwned(key, buf)
		return flow, flow.sent
	}
	rc := flow.rc
	rc.sendSeq++ // this rank is the flow's only sender
	lreq := &Request{
		kind: reqRemoteSend, rem: rc, seq: rc.sendSeq, peer: int32(dstGlobal),
		tag: rmaTag, comm: commID, buf: buf, dstNode: r.rt.place.NodeOf(dstGlobal),
	}
	r.transmitRemote(lreq)
	r.rmaLinks = append(r.rmaLinks, lreq)
	return flow, flow.sent
}

// rmaRemoteReq builds the origin-side completion request for a shipped
// frame: done once the target's applied watermark covers the sequence.
func (r *Rank) rmaRemoteReq(flow *rmaFlow, seq uint64, dstGlobal int, commID uint64) *Request {
	return &Request{kind: reqRmaRemote, flow: flow, flowSeq: seq, peer: int32(dstGlobal), tag: rmaTag, comm: commID}
}

// rmaProgress drives this rank's share of the one-sided machinery: it
// retransmits outstanding frame sends on the lossy path and applies every
// arrived frame targeting this rank.  It runs only on the rank's own
// goroutine — from the SSW loop's Progress hook at yield boundaries and
// from the RMA wait conditions — so the inboxes stay single-consumer.
func (r *Rank) rmaProgress() {
	if r.inRmaProgress {
		// Reentrancy guard: applying a frame can itself block briefly (an
		// Accumulate waiting for the serialization lock), and re-entering
		// from that wait would apply later frames before earlier ones.
		return
	}
	if len(r.rmaLinks) == 0 && len(r.rmaIn) == 0 {
		return
	}
	r.inRmaProgress = true
	defer func() { r.inRmaProgress = false }()

	if len(r.rmaLinks) > 0 {
		live := r.rmaLinks[:0]
		for _, lq := range r.rmaLinks {
			if !lq.done {
				r.progressRemoteSend(lq)
			}
			if !lq.done {
				live = append(live, lq)
			}
		}
		for i := len(live); i < len(r.rmaLinks); i++ {
			r.rmaLinks[i] = nil
		}
		r.rmaLinks = live
		if len(r.rmaLinks) == 0 {
			r.rmaLinks = nil
		}
	}
	for _, in := range r.rmaIn {
		schedpoint("core:rma:drain-inbox")
		drained := 0
		for in.flow.rc.n.Load() > 0 {
			msg, ok := in.flow.rc.tryPop()
			if !ok {
				break
			}
			r.rmaApply(in, msg)
			schedpoint("core:rma:applied")
			in.flow.applied.Add(1)
			drained++
			r.slot.progress.Add(1) // frame application is forward progress
		}
		if drained > 0 && r.rt.tp != nil {
			// Across processes the origin cannot read our replica's applied
			// watermark; ship the new total back on the reverse link.
			r.tpSendApplied(in)
		}
	}
}

// rmaApply decodes and applies one arrived frame targeting this rank.
func (r *Rank) rmaApply(in *rmaInbox, buf []byte) {
	f, err := rma.DecodeFrame(buf)
	if err != nil {
		panic(fmt.Sprintf("core: rank %d: corrupt RMA frame from rank %d: %v", r.id, in.origin, err))
	}
	if f.Kind == rma.FrameGetRep {
		req := r.rmaGets[f.Aux]
		if req == nil {
			panic(fmt.Sprintf("core: rank %d: RMA get reply %d from rank %d matches no outstanding get", r.id, f.Aux, in.origin))
		}
		delete(r.rmaGets, f.Aux)
		req.n = copy(req.buf, f.Payload)
		r.stats.BytesReceived += int64(req.n)
		req.done = true
		return
	}
	w := r.rt.rmaReg.Lookup(rma.Key{Comm: in.comm, Seq: f.WinSeq})
	if w == nil {
		panic(fmt.Sprintf("core: rank %d: RMA frame for unknown window (comm %d, seq %d)", r.id, in.comm, f.WinSeq))
	}
	switch f.Kind {
	case rma.FramePut:
		w.CopyIn(int(f.Target), int(f.Off), f.Payload)
		if r.met != nil {
			r.met.rmaPutCopies.Inc()
		}
	case rma.FrameAcc:
		op, dt := rma.UnpackAcc(f.Aux)
		w.AccumulateLocal(int(f.Target), int(f.Off), f.Payload, op, dt, func(cond func() bool) {
			for !cond() {
				r.checkPoison()
				gosched()
			}
		})
	case rma.FrameGetReq:
		data := make([]byte, f.N)
		w.CopyOut(int(f.Target), int(f.Off), data)
		rep := &rma.Frame{Kind: rma.FrameGetRep, WinSeq: f.WinSeq, Origin: f.Target, Target: f.Origin, Aux: f.Aux, Payload: data}
		r.rmaTransmit(in.comm, in.origin, rep)
	case rma.FrameNotify:
		w.Notify(int(f.Target), int(f.Aux))
	case rma.FramePost:
		// Cross-process PSCW: the sender (f.Origin) posted exposure round
		// f.Aux; mirror it into this replica's flags for local Start polls.
		w.Post(int(f.Origin), f.Aux)
	case rma.FrameComplete:
		// Cross-process PSCW: f.Origin completed access round f.Aux at
		// f.Target (a rank in this process, polling in Wait).
		w.Complete(int(f.Origin), int(f.Target), f.Aux)
	case rma.FrameShmem:
		r.shmemApply(in, w, &f)
	default:
		panic(fmt.Sprintf("core: rank %d: unexpected RMA frame kind %v", r.id, f.Kind))
	}
}

// ---- Put / Get / Accumulate ----

// Put copies data into target's window at byte offset off.  Intra-node it
// is a single direct copy into the exposed buffer (the one unavoidable
// payload copy); inter-node the operation is shipped as a frame and
// completes — applied to target memory — at the next closing
// synchronization (Fence, Complete, or a Wait on the request from Rput).
// The transfer only becomes readable by the target after a synchronization
// (fence/PSCW/notify) orders it; concurrent unordered access to the same
// window bytes is an application data race, exactly as in MPI.
func (win *Win) Put(data []byte, target, off int) {
	if req := win.Rput(data, target, off); !req.done {
		win.addPend(req)
	}
}

// Rput is the request-returning Put: complete it with Wait/Waitall, or let
// a closing synchronization on the window complete it.  Completion means
// the data has been applied to the target's window (stronger than MPI's
// local completion), so the origin may reuse data immediately after.
func (win *Win) Rput(data []byte, target, off int) *Request {
	c := win.c
	r := c.r
	c.checkPeer(target, "Put target")
	win.w.Check(target, off, len(data), "Put")
	r.stats.RmaPuts++
	r.stats.RmaBytesPut += int64(len(data))
	if r.trace != nil {
		r.trace.Emit(obs.KRmaPut, int32(c.sh.members[target]), int64(len(data)))
	}
	if r.met != nil {
		r.met.rmaPuts.Inc()
		r.met.rmaBytes.Add(int64(len(data)))
	}
	g, sameNode := win.local(target)
	if sameNode {
		win.w.CopyIn(target, off, data)
		if r.met != nil {
			r.met.rmaPutCopies.Inc()
		}
		return &Request{kind: reqRmaRemote, peer: int32(g), tag: rmaTag, comm: win.key.Comm, done: true}
	}
	f := &rma.Frame{Kind: rma.FramePut, WinSeq: win.key.Seq, Origin: uint32(c.myRank), Target: uint32(target), Off: uint64(off), Payload: data}
	flow, seq := r.rmaTransmit(win.key.Comm, g, f)
	return r.rmaRemoteReq(flow, seq, g, win.key.Comm)
}

// Get copies len(dest) bytes out of target's window at off into dest,
// blocking until dest is filled.
func (win *Win) Get(dest []byte, target, off int) {
	if req := win.Rget(dest, target, off); !req.done {
		win.c.r.waitReq(req)
	}
}

// Rget is the request-returning Get; dest is filled when the request
// completes.
func (win *Win) Rget(dest []byte, target, off int) *Request {
	c := win.c
	r := c.r
	c.checkPeer(target, "Get target")
	win.w.Check(target, off, len(dest), "Get")
	r.stats.RmaGets++
	if r.trace != nil {
		r.trace.Emit(obs.KRmaGet, int32(c.sh.members[target]), int64(len(dest)))
	}
	if r.met != nil {
		r.met.rmaGets.Inc()
		r.met.rmaBytes.Add(int64(len(dest)))
	}
	g, sameNode := win.local(target)
	if sameNode {
		win.w.CopyOut(target, off, dest)
		return &Request{kind: reqRmaGet, peer: int32(g), tag: rmaTag, comm: win.key.Comm, done: true, n: len(dest)}
	}
	if r.rmaGets == nil {
		r.rmaGets = make(map[uint64]*Request)
	}
	r.rmaGetSeq++
	req := &Request{kind: reqRmaGet, buf: dest, peer: int32(g), tag: rmaTag, comm: win.key.Comm, seq: r.rmaGetSeq}
	r.rmaGets[r.rmaGetSeq] = req
	f := &rma.Frame{Kind: rma.FrameGetReq, WinSeq: win.key.Seq, Origin: uint32(c.myRank), Target: uint32(target), Off: uint64(off), Aux: r.rmaGetSeq, N: uint64(len(dest))}
	r.rmaTransmit(win.key.Comm, g, f)
	return req
}

// Accumulate folds data into target's window at off with op over dt,
// serialized against every other Accumulate targeting the same rank
// (element-wise atomicity at window-target granularity, like
// MPI_Accumulate).  Inter-node accumulates apply at the next closing
// synchronization.
func (win *Win) Accumulate(data []byte, target, off int, op collective.Op, dt collective.DType) {
	c := win.c
	r := c.r
	c.checkPeer(target, "Accumulate target")
	win.w.Check(target, off, len(data), "Accumulate")
	r.stats.RmaAccumulates++
	r.stats.RmaBytesPut += int64(len(data))
	if r.trace != nil {
		r.trace.Emit(obs.KRmaAcc, int32(c.sh.members[target]), int64(len(data)))
	}
	if r.met != nil {
		r.met.rmaAccs.Inc()
		r.met.rmaBytes.Add(int64(len(data)))
	}
	g, sameNode := win.local(target)
	if sameNode {
		win.w.AccumulateLocal(target, off, data, op, dt, r.wait.Wait)
		return
	}
	f := &rma.Frame{Kind: rma.FrameAcc, WinSeq: win.key.Seq, Origin: uint32(c.myRank), Target: uint32(target), Off: uint64(off), Aux: rma.PackAcc(op, dt), Payload: data}
	flow, seq := r.rmaTransmit(win.key.Comm, g, f)
	win.addPend(r.rmaRemoteReq(flow, seq, g, win.key.Comm))
}

// ---- Synchronization epochs ----

// Fence closes the current access epoch and opens the next one: it first
// completes the caller's outstanding remote operations (so they are
// applied at their targets), then publishes the caller's fence flag and
// waits for every member's — sequence-numbered per-rank flags in the SPTD
// style, never reset, so a member one round ahead still satisfies earlier
// rounds.  After Fence returns, every member's puts from the previous
// epoch are visible in every window buffer.  Collective over the window.
func (win *Win) Fence() {
	r := win.c.r
	t0 := r.traceStart()
	win.completePending()
	win.fenceRound++
	if r.rt.tp != nil && win.c.multiNode() {
		// Cross-process members never store into this replica's fence flags.
		// A barrier (whose leader legs ride the transport) gives the same
		// guarantee: everyone's outstanding operations were applied (their
		// completePending ran first) before anyone proceeds.
		win.c.Barrier()
		r.stats.RmaFences++
		if r.trace != nil {
			r.trace.EmitSpan(obs.KRmaFence, -1, int64(win.fenceRound), t0)
		}
		if r.met != nil {
			r.met.rmaFences.Inc()
		}
		return
	}
	win.w.FenceArrive(win.c.myRank, win.fenceRound)
	if !win.w.FenceReached(win.fenceRound) {
		lw := lazyWait{r: r, rec: WaitRecord{
			Kind: WaitRmaFence, Peer: -1, Tag: rmaTag, Comm: win.key.Comm, Seq: win.fenceRound, Op: "fence",
		}}
		lw.wait(func() bool {
			if win.w.FenceReached(win.fenceRound) {
				return true
			}
			schedpoint("core:rma:fence-poll")
			r.rmaProgress()
			return win.w.FenceReached(win.fenceRound)
		})
		lw.finish()
	}
	r.stats.RmaFences++
	if r.trace != nil {
		r.trace.EmitSpan(obs.KRmaFence, -1, int64(win.fenceRound), t0)
	}
	if r.met != nil {
		r.met.rmaFences.Inc()
	}
}

// Post opens an exposure epoch toward origins (comm ranks): the caller's
// window may now be accessed by those origins' Start..Complete epochs.
// Close it with Wait.  (PSCW target side.)
func (win *Win) Post(origins []int) {
	for _, o := range origins {
		win.c.checkPeer(o, "Post origin")
	}
	if win.postOrigins != nil {
		panic("core: Post called with an exposure epoch already open (missing Wait)")
	}
	win.postOrigins = append([]int(nil), origins...)
	win.postRound++
	win.w.Post(win.c.myRank, win.postRound)
	if r := win.c.r; r.rt.tp != nil {
		// Mirror the exposure flag into cross-process origins' replicas;
		// their Start polls locally and rmaProgress applies the frame.
		for _, o := range win.postOrigins {
			if g, same := win.local(o); !same {
				f := &rma.Frame{Kind: rma.FramePost, WinSeq: win.key.Seq,
					Origin: uint32(win.c.myRank), Target: uint32(o), Aux: win.postRound}
				flow, seq := r.rmaTransmit(win.key.Comm, g, f)
				win.addPend(r.rmaRemoteReq(flow, seq, g, win.key.Comm))
			}
		}
	}
}

// Start opens an access epoch toward targets (comm ranks), blocking until
// each has posted a matching exposure epoch.  Close it with Complete.
// Matching Post/Start (and Complete/Wait) pairs must be called the same
// number of times on both sides — epochs are matched by per-pair rounds,
// like every other flag in the runtime.  (PSCW origin side.)
func (win *Win) Start(targets []int) {
	r := win.c.r
	for _, t := range targets {
		win.c.checkPeer(t, "Start target")
	}
	if win.startTargets != nil {
		panic("core: Start called with an access epoch already open (missing Complete)")
	}
	win.startTargets = append([]int(nil), targets...)
	win.startRound++
	for _, t := range win.startTargets {
		if win.w.Posted(t, win.startRound) {
			continue
		}
		g := win.c.sh.members[t]
		r.pendRec = WaitRecord{Kind: WaitRmaPSCW, Peer: g, Tag: rmaTag, Comm: win.key.Comm, Seq: win.startRound, Op: "start"}
		idle := false
		if r.rt.tp != nil {
			if _, same := win.local(t); !same {
				idle = true // the Post flag arrives as a frame
			}
		}
		t := t
		r.leafWaitVia(idle, func() bool {
			if win.w.Posted(t, win.startRound) {
				return true
			}
			r.rmaProgress()
			return win.w.Posted(t, win.startRound)
		})
	}
}

// Complete closes the caller's access epoch: outstanding remote operations
// are completed, then the completion flag is published toward every epoch
// target, releasing their Wait.
func (win *Win) Complete() {
	if win.startTargets == nil {
		panic("core: Complete without a matching Start")
	}
	win.completePending()
	win.completeRound++
	r := win.c.r
	for _, t := range win.startTargets {
		win.w.Complete(win.c.myRank, t, win.completeRound)
		if r.rt.tp != nil {
			if g, same := win.local(t); !same {
				// Mirror the completion flag into the cross-process target's
				// replica.  The frame follows this epoch's operation frames
				// on the same flow, and completePending already confirmed
				// they were applied, so the target's Wait release orders
				// correctly after the data.
				f := &rma.Frame{Kind: rma.FrameComplete, WinSeq: win.key.Seq,
					Origin: uint32(win.c.myRank), Target: uint32(t), Aux: win.completeRound}
				flow, seq := r.rmaTransmit(win.key.Comm, g, f)
				win.addPend(r.rmaRemoteReq(flow, seq, g, win.key.Comm))
			}
		}
	}
	win.startTargets = nil
}

// Wait closes the caller's exposure epoch, blocking until every origin
// named in Post has called Complete.  After Wait returns, those origins'
// operations are visible in the caller's window buffer.
func (win *Win) Wait() {
	if win.postOrigins == nil {
		panic("core: Wait without a matching Post")
	}
	r := win.c.r
	win.waitRound++
	for _, o := range win.postOrigins {
		if win.w.Completed(o, win.c.myRank, win.waitRound) {
			continue
		}
		g := win.c.sh.members[o]
		r.pendRec = WaitRecord{Kind: WaitRmaPSCW, Peer: g, Tag: rmaTag, Comm: win.key.Comm, Seq: win.waitRound, Op: "wait"}
		idle := false
		if r.rt.tp != nil {
			if _, same := win.local(o); !same {
				idle = true // the Complete flag arrives as a frame
			}
		}
		o := o
		r.leafWaitVia(idle, func() bool {
			if win.w.Completed(o, win.c.myRank, win.waitRound) {
				return true
			}
			r.rmaProgress()
			return win.w.Completed(o, win.c.myRank, win.waitRound)
		})
	}
	win.postOrigins = nil
}

// Notify increments target's notification counter for slot, ordered after
// the caller's earlier operations toward that target (program order
// intra-node; flow order inter-node), so a consumer that observes the
// count also observes the data the producer put before notifying.
func (win *Win) Notify(target, slot int) {
	c := win.c
	r := c.r
	c.checkPeer(target, "Notify target")
	r.stats.RmaNotifies++
	if r.met != nil {
		r.met.rmaNotifies.Inc()
	}
	g, sameNode := win.local(target)
	if sameNode {
		win.w.Notify(target, slot)
		return
	}
	f := &rma.Frame{Kind: rma.FrameNotify, WinSeq: win.key.Seq, Origin: uint32(c.myRank), Target: uint32(target), Aux: uint64(slot)}
	flow, seq := r.rmaTransmit(win.key.Comm, g, f)
	win.addPend(r.rmaRemoteReq(flow, seq, g, win.key.Comm))
}

// NotifyWait blocks until the caller's notification counter for slot has
// grown by count beyond what previous NotifyWait calls consumed.
func (win *Win) NotifyWait(slot, count int) {
	r := win.c.r
	if slot < 0 || slot >= rma.NotifySlots {
		panic(fmt.Sprintf("core: notify slot %d out of range [0,%d)", slot, rma.NotifySlots))
	}
	win.consumed[slot] += uint64(count)
	need := win.consumed[slot]
	me := win.c.myRank
	if win.w.NotifyCount(me, slot) >= need {
		return
	}
	lw := lazyWait{r: r, rec: WaitRecord{
		Kind: WaitRmaNotify, Peer: -1, Tag: rmaTag, Comm: win.key.Comm, Seq: need, Op: "notify-wait",
	}, idle: r.rt.tp != nil && win.c.multiNode()}
	lw.wait(func() bool {
		if win.w.NotifyCount(me, slot) >= need {
			return true
		}
		schedpoint("core:rma:notify-poll")
		r.rmaProgress()
		return win.w.NotifyCount(me, slot) >= need
	})
	lw.finish()
}

// Free collectively releases the window: outstanding operations are
// completed, members synchronize, and the registry entry is dropped
// (window sequence numbers are never reused, so a freed key cannot alias
// a later window).
func (win *Win) Free() {
	win.completePending()
	win.c.Barrier()
	win.c.r.rt.rmaReg.Free(win.key)
}
