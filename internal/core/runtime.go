// Package core is the Pure runtime system (paper §4): a multithreaded,
// "distributed" runtime in which application ranks are goroutines (the
// paper uses kernel threads) that communicate through lock-free shared
// memory structures within a node and through a modeled network across
// nodes.
//
// The runtime owns: rank bootstrap and placement; the channel manager that
// maps message arguments to persistent channel objects; the point-to-point
// eager (PureBufferQueue) and rendezvous protocols; lock-free collectives
// (SPTD and Partitioned Reducer) bridged across nodes; communicators; and
// the Pure Task scheduler with SSW-Loop work stealing.
//
// The public package pure wraps this with the application-facing API.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rma"
	"repro/internal/sched"
	"repro/internal/shmem"
	"repro/internal/ssw"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Default tuning values, matching the paper's configuration where reported.
const (
	// DefaultSmallMsgMax is the eager/rendezvous threshold (paper: 8 KiB,
	// configurable; Appendix C sweeps it).
	DefaultSmallMsgMax = 8 << 10
	// DefaultPBQSlots is the PureBufferQueue depth (paper: "the configurable
	// number of slots within the PBQ was not a material performance driver").
	DefaultPBQSlots = 16
	// DefaultSPTDMax is the small-collective payload bound (paper: SPTD used
	// for arrays up to 2 KiB, Partitioned Reducer beyond).
	DefaultSPTDMax = 2 << 10
	// DefaultRendezvousDepth bounds outstanding posted large receives per channel.
	DefaultRendezvousDepth = 16
	// DefaultTaskChunks is the default number of chunks a task splits into
	// (the paper's PURE_MAX_TASK_CHUNKS Makefile variable).
	DefaultTaskChunks = 64
)

// Config configures a Pure program launch.
type Config struct {
	// NRanks is the number of application ranks (fixed for the program).
	NRanks int
	// Spec is the virtual cluster to place ranks on.  Zero value means a
	// single node large enough for all ranks.
	Spec topology.Spec
	// RanksPerNode caps ranks per node (0 = node capacity).
	RanksPerNode int
	// Policy/Seats select the rank-to-hardware mapping (topology package).
	Policy topology.Policy
	Seats  []topology.HWThread

	// SmallMsgMax is the eager/rendezvous protocol threshold in bytes.
	SmallMsgMax int
	// PBQSlots is the eager queue depth per channel.
	PBQSlots int
	// SPTDMax is the SPTD/PartitionedReducer collective threshold in bytes.
	SPTDMax int
	// RendezvousDepth is the envelope queue depth per channel.
	RendezvousDepth int
	// SpinBudget is the SSW-Loop probe count between yields.
	SpinBudget int

	// Net is the inter-node cost model (netsim.Loopback() for 1 node).
	// Net.Faults enables seeded drop/duplicate/reorder/jitter injection,
	// which also switches the inter-node path onto the ack/retransmit layer.
	Net netsim.Config

	// Transport, when non-nil, replaces the in-process modeled network with
	// a real inter-node transport (TCP by default): this OS process runs
	// only the ranks placed on Transport.Node, one cooperating process per
	// node in Transport.Addrs, and all cross-node traffic — two-sided sends,
	// leader-tree collective legs, and RMA frames — travels the transport's
	// sequenced, acked, heartbeat-monitored links.  Spec.Nodes must equal
	// len(Transport.Addrs).  Mutually exclusive with Net.Faults, whose
	// injection models the in-process wire; use Transport.Faults for
	// link-level drop/delay injection instead.
	Transport *transport.Config

	// HangTimeout arms the watchdog: when every live rank is blocked and no
	// rank makes progress for this long, the runtime diagnoses the hang
	// (wait-for cycle vs. lost-message stall), aborts, and Run returns a
	// *RunError naming the blocked ranks.  Zero disables the watchdog.
	HangTimeout time.Duration
	// Deadline aborts the run after this much wall-clock time regardless of
	// progress.  Zero means no deadline.  Abort is cooperative: a rank that
	// never re-enters the runtime (a pure compute loop) cannot be unwound.
	Deadline time.Duration

	// HelpersPerNode starts that many pure helper threads on each node
	// (threads that only steal; paper §5.1, DT class A).
	HelpersPerNode int
	// ChunkMode / StealPolicy / OwnerSteals configure the task scheduler.
	ChunkMode   sched.ChunkMode
	StealPolicy sched.StealPolicy
	OwnerSteals bool

	// Trace, when non-nil, receives runtime events (p2p posts per protocol
	// path, PBQ stalls, rendezvous handoffs, collective spans with SPTD round
	// numbers, steal latencies, task executions).  It must be sized for
	// NRanks ranks (obs.NewTrace).  When nil, every instrumentation site
	// costs a single pointer nil check.
	Trace *obs.Trace
	// Metrics, when non-nil, registers live counters/gauges/histograms that
	// may be snapshotted at any time, including mid-run.
	Metrics *obs.Metrics
	// MonitorAddr, when non-empty, serves the live runtime monitor on that
	// TCP address for the duration of the run: a Prometheus scrape of
	// Config.Metrics at /metrics, every rank's current wait state at /ranks,
	// and net/http/pprof.  ":0" picks a free port; Runtime.MonitorAddr
	// returns the bound address.  The monitor itself does not enable
	// metrics or tracing — it serves whatever the configuration already
	// records, so its steady-state cost is an idle listener plus the lazy
	// wait-record publication (<5% on the ping-pong benchmark).
	MonitorAddr string
}

// withDefaults validates the configuration and fills zero values with the
// documented defaults.  Invalid configurations — non-positive NRanks,
// negative tuning knobs (zero always means "use the default"), a Seats table
// that does not match the placement policy, or a Trace sized for a different
// rank count — yield a descriptive error rather than a panic mid-launch.
func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.NRanks <= 0 {
		return cfg, fmt.Errorf("core: NRanks must be positive, got %d", cfg.NRanks)
	}
	for _, knob := range []struct {
		name string
		v    int
	}{
		{"SmallMsgMax", cfg.SmallMsgMax},
		{"PBQSlots", cfg.PBQSlots},
		{"SPTDMax", cfg.SPTDMax},
		{"RendezvousDepth", cfg.RendezvousDepth},
		{"SpinBudget", cfg.SpinBudget},
		{"HelpersPerNode", cfg.HelpersPerNode},
		{"RanksPerNode", cfg.RanksPerNode},
	} {
		if knob.v < 0 {
			return cfg, fmt.Errorf("core: %s must not be negative (0 selects the default), got %d", knob.name, knob.v)
		}
	}
	if len(cfg.Seats) > 0 {
		if cfg.Policy != topology.Custom {
			return cfg, fmt.Errorf("core: Seats requires Policy == Custom placement, got policy %v", cfg.Policy)
		}
		if len(cfg.Seats) != cfg.NRanks {
			return cfg, fmt.Errorf("core: Custom placement needs exactly %d seats (one per rank), got %d", cfg.NRanks, len(cfg.Seats))
		}
	}
	if cfg.Trace != nil && cfg.Trace.NRanks() != cfg.NRanks {
		return cfg, fmt.Errorf("core: Trace sized for %d ranks but NRanks is %d", cfg.Trace.NRanks(), cfg.NRanks)
	}
	if cfg.HangTimeout < 0 {
		return cfg, fmt.Errorf("core: HangTimeout must not be negative, got %v", cfg.HangTimeout)
	}
	if cfg.Deadline < 0 {
		return cfg, fmt.Errorf("core: Deadline must not be negative, got %v", cfg.Deadline)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", cfg.Net.Faults.DropProb},
		{"DupProb", cfg.Net.Faults.DupProb},
		{"ReorderProb", cfg.Net.Faults.ReorderProb},
	} {
		if p.v < 0 || p.v > 1 {
			return cfg, fmt.Errorf("core: Net.Faults.%s must be in [0, 1], got %g", p.name, p.v)
		}
	}
	if cfg.Net.Faults.JitterNs < 0 || cfg.Net.Faults.RetryBudget < 0 || cfg.Net.Faults.RetryBackoffNs < 0 {
		return cfg, fmt.Errorf("core: Net.Faults jitter/retry knobs must not be negative")
	}
	if cfg.Spec == (topology.Spec{}) {
		cfg.Spec = topology.Spec{Nodes: 1, SocketsPerNode: 1, CoresPerSocket: cfg.NRanks, ThreadsPerCore: 1}
	}
	if cfg.Transport != nil {
		t := cfg.Transport.WithDefaults()
		if err := t.Validate(cfg.HangTimeout); err != nil {
			return cfg, fmt.Errorf("core: Transport: %w", err)
		}
		if len(t.Addrs) != cfg.Spec.Nodes {
			return cfg, fmt.Errorf("core: Transport lists %d node addresses but Spec.Nodes is %d — one cooperating process per node",
				len(t.Addrs), cfg.Spec.Nodes)
		}
		if cfg.Net.Faults.Active() {
			return cfg, fmt.Errorf("core: Net.Faults injects on the in-process modeled wire, which a real Transport replaces; use Transport.Faults for link-level injection")
		}
		cfg.Transport = &t
	}
	if cfg.SmallMsgMax == 0 {
		cfg.SmallMsgMax = DefaultSmallMsgMax
	}
	if cfg.PBQSlots == 0 {
		cfg.PBQSlots = DefaultPBQSlots
	}
	if cfg.SPTDMax == 0 {
		cfg.SPTDMax = DefaultSPTDMax
	}
	if cfg.RendezvousDepth == 0 {
		cfg.RendezvousDepth = DefaultRendezvousDepth
	}
	return cfg, nil
}

// nodeState is the per-node shared state: the task scheduler (active_tasks
// array) and the node's "NIC" lock, which models the MPI_THREAD_MULTIPLE
// serialization Pure pays on its inter-node path (paper §4.1.3).
type nodeState struct {
	sched      *sched.Scheduler
	nic        sync.Mutex
	helperStop chan struct{}
	helperWG   *sync.WaitGroup
	nRanks     int // application ranks on this node (helpers get slots after)
}

// Runtime is one Pure program instance.
type Runtime struct {
	cfg   Config
	place *topology.Placement
	net   *netsim.Network
	nodes []*nodeState

	channels sync.Map // chanKey -> *channel   (intra-node)
	remotes  sync.Map // chanKey -> *remoteChannel (inter-node)
	comms    sync.Map // splitKey -> *commShared

	// tp is the real inter-node transport when Config.Transport is set (nil
	// for in-process runs); tpFinished marks that every local rank has
	// returned, turning late peer-failure upcalls into no-ops (peer shutdown
	// is not synchronized across nodes).
	tp         *transport.Transport
	tpFinished atomic.Bool

	// One-sided communication: the window registry (keyed like the channel
	// manager) and the remote RMA flows with their applied watermarks.
	rmaReg   rma.Registry
	rmaFlows sync.Map // chanKey -> *rmaFlow

	// shmReg holds the symmetric heaps' shared publish tables, keyed by the
	// backing window's key (one heap per ShmemCreate).
	shmReg shmem.Registry

	world *commShared

	// met holds the pre-resolved metric handles when cfg.Metrics is set
	// (nil otherwise — the disabled state every hot path nil-checks).
	met *metricSet
	// linkMet mirrors the transport's per-link counters into per-peer
	// labeled series (nil without both a transport and a registry).
	linkMet *linkMetrics

	// waitSlots is the wait registry: one slot per rank, scanned by the
	// watchdog and harvested into RunError diagnostics on abort.
	waitSlots []rankWaitSlot
	// mon is the live monitor server when Config.MonitorAddr is set.
	mon *monitorServer
	// abort is the runtime poison: once set, every SSW wait unwinds its rank.
	abort abortState
}

// Rank is one application rank's runtime handle.  Every runtime call a rank
// makes goes through its Rank (ranks must not share handles).
type Rank struct {
	id    int
	rt    *Runtime
	node  int
	local int // index among the node's ranks ("thread number in the process")
	thief *sched.Thief
	wait  ssw.Waiter
	world *Comm
	stats RankStats

	// chanCache avoids the shared channel-manager map on the fast path; the
	// paper's channels are persistent objects reused for the whole program.
	chanCache map[chanKey]*channel
	remCache  map[chanKey]*remoteChannel
	// eps is the persistent-endpoint cache (Comm.SendChannel/RecvChannel):
	// an open-addressed table owned by this rank's goroutine, so repeat
	// pairs resolve with one hash and no locks.
	eps epTable

	// One-sided communication state, all owned by this rank's goroutine:
	// incoming remote flows to drain, outstanding link-layer frame sends to
	// drive, outstanding remote gets by request id, and the reentrancy
	// guard that keeps frame application in flow order.
	rmaIn         []*rmaInbox
	rmaInSet      map[chanKey]bool
	rmaFlowCache  map[chanKey]*rmaFlow
	rmaLinks      []*Request
	rmaGets       map[uint64]*Request
	rmaGetSeq     uint64
	inRmaProgress bool

	// trace is this rank's single-writer event ring (nil when tracing is
	// off); met is the runtime's shared metric set (nil when metrics are off).
	trace *obs.RankTrace
	met   *metricSet

	// slot is the rank's entry in the runtime's wait registry (watchdog and
	// abort diagnostics read it).
	slot *rankWaitSlot
	// pendRec describes the rank's innermost *leaf* wait — a p2p or remote
	// stall with no waits nested inside it — while pendActive is set.  These
	// are plain fields: only the rank's own goroutine touches them, and they
	// become visible to diagnostics only when copied into the (atomic) wait
	// slot, either by the watchdog-armed probe counter or by the unwind
	// settlement in settleUnwoundWait.
	pendRec       WaitRecord
	pendActive    bool
	pendPublished bool
	// unwindPublished is set by the first unwind handler to run while an
	// abort panic unwinds this rank, so outer (less specific) waits on the
	// same stack leave the innermost record in place.  Only the rank's own
	// goroutine touches it.
	unwindPublished bool
	// liveWaitRecords is true when the hang watchdog is armed and therefore
	// needs wait records published while ranks are still blocked (not just
	// at abort unwind).
	liveWaitRecords bool
}

// ID returns the rank's global id in [0, NRanks).
func (r *Rank) ID() int { return r.id }

// NRanks returns the total rank count.
func (r *Rank) NRanks() int { return r.rt.cfg.NRanks }

// Node returns the rank's node index.
func (r *Rank) Node() int { return r.node }

// World returns the world communicator handle for this rank.
func (r *Rank) World() *Comm { return r.world }

// Runtime returns the owning runtime (for tooling/diagnostics).
func (r *Rank) Runtime() *Runtime { return r.rt }

// Placement exposes the rank-to-hardware mapping.
func (rt *Runtime) Placement() *topology.Placement { return rt.place }

// Config returns the resolved configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Run bootstraps a Pure program: it builds the placement, the per-node
// schedulers and helper threads, and the world communicator, then launches
// NRanks goroutines each executing main (the application's __original_main
// in the paper's bootstrap, §4.0.1) and waits for them all to return.
func Run(cfg Config, main func(r *Rank)) error {
	return runInternal(cfg, main, nil)
}

// runInternal is Run with an optional post-run hook over the rank handles
// (used by RunWithStats to harvest profiling counters).
func runInternal(cfg Config, main func(r *Rank), harvest func([]*Rank)) error {
	rcfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	place, err := topology.NewPlacement(rcfg.Spec, rcfg.NRanks, rcfg.RanksPerNode, rcfg.Policy, rcfg.Seats)
	if err != nil {
		return fmt.Errorf("core: placing ranks: %w", err)
	}
	rt := &Runtime{cfg: rcfg, place: place, net: netsim.New(rcfg.Net)}
	if rcfg.Metrics == nil && rcfg.MonitorAddr != "" {
		// A monitored run without an explicit registry still wants /metrics
		// to carry the runtime counters (the cluster monitor scrapes them),
		// so give it a private one.
		rcfg.Metrics = obs.NewMetrics()
		rt.cfg.Metrics = rcfg.Metrics
	}
	if rcfg.Metrics != nil {
		rt.met = newMetricSet(rcfg.Metrics)
	}
	rt.nodes = make([]*nodeState, rcfg.Spec.Nodes)
	for n := range rt.nodes {
		nRanks := len(place.RanksOnNode(n))
		if nRanks == 0 {
			continue
		}
		slots := nRanks + rcfg.HelpersPerNode
		var socketOf []int
		if rcfg.StealPolicy == sched.NUMAAwareSteal {
			socketOf = make([]int, slots)
			for i, rank := range place.RanksOnNode(n) {
				socketOf[i] = place.SocketOf(rank)
			}
		}
		rt.nodes[n] = &nodeState{
			sched: sched.New(sched.Config{
				Slots:       slots,
				ChunkMode:   rcfg.ChunkMode,
				Policy:      rcfg.StealPolicy,
				SocketOf:    socketOf,
				OwnerSteals: rcfg.OwnerSteals,
			}),
			nRanks: nRanks,
		}
	}
	rt.world = rt.newCommShared(worldCommID, allRanks(rcfg.NRanks))

	// With a real transport, this process runs only its own node's ranks.
	localRank := func(int) bool { return true }
	if rcfg.Transport != nil {
		tcfg := *rcfg.Transport
		if rcfg.Trace != nil && tcfg.LinkEvents == 0 {
			// Rank tracing is on: record transport frame events too, so the
			// dump carries what `puretrace merge` matches across nodes.
			tcfg.LinkEvents = 1 << 14
		}
		tp, err := transport.New(tcfg, nil, rcfg.NRanks, transport.Handlers{
			Deliver:  rt.tpDeliver,
			Applied:  rt.tpApplied,
			PeerDead: rt.tpPeerDead,
			PeerBye:  rt.tpPeerBye,
		})
		if err != nil {
			return fmt.Errorf("core: building transport: %w", err)
		}
		if err := tp.Start(); err != nil {
			return err
		}
		rt.tp = tp
		defer func() {
			rt.tpFinished.Store(true)
			tp.Close()
		}()
		if rt.met != nil {
			rt.linkMet = newLinkMetrics(tp, rt.met.reg)
		}
		myNode := tp.Node()
		localRank = func(id int) bool { return place.NodeOf(id) == myNode }
	}

	// Adaptive SSW spin budget: the paper pins one rank per hardware thread
	// and spins freely.  When this host cannot do that (goroutine ranks
	// oversubscribed onto fewer cores), long spins only delay the scheduler
	// from running the peer.  The budget derives from GOMAXPROCS against
	// the goroutines this *process* actually hosts: under a real transport
	// that is only this node's ranks — the old all-nodes maximum would let
	// a 16-rank peer node throttle a process hosting one rank on idle
	// cores — and without one it is every rank of every virtual node, all
	// sharing this scheduler.
	if rcfg.SpinBudget == 0 {
		tpNode := -1
		if rt.tp != nil {
			tpNode = rt.tp.Node()
		}
		live := liveLocalRanks(place, rcfg.Spec.Nodes, rcfg.HelpersPerNode, tpNode)
		rt.cfg.SpinBudget = deriveSpinBudget(runtime.GOMAXPROCS(0), live)
	}

	// Start helper threads (paper: "extra threads that continuously try to
	// steal work", used when ranks don't cover all hardware threads).
	if rcfg.HelpersPerNode > 0 {
		for n, ns := range rt.nodes {
			if ns == nil || (rt.tp != nil && n != rt.tp.Node()) {
				continue
			}
			ns.helperStop = make(chan struct{})
			ns.helperWG = ns.sched.Helpers(ns.nRanks, rcfg.HelpersPerNode, ns.helperStop)
		}
	}

	rt.waitSlots = make([]rankWaitSlot, rcfg.NRanks)
	if rcfg.MonitorAddr != "" {
		if err := rt.startMonitor(); err != nil {
			return fmt.Errorf("core: starting monitor: %w", err)
		}
		defer rt.stopMonitor()
	}
	var wg sync.WaitGroup
	failures := make(chan RankFailure, rcfg.NRanks)
	ranks := make([]*Rank, rcfg.NRanks)
	for id := 0; id < rcfg.NRanks; id++ {
		if !localRank(id) {
			// Another OS process runs this rank; mark its slot done so the
			// watchdog and the failure harvest skip it here.
			rt.waitSlots[id].done.Store(true)
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				rt.waitSlots[id].done.Store(true)
				p := recover()
				if p == nil {
					return
				}
				switch v := p.(type) {
				case ssw.AbortPanic:
					// Unwound by runtime poisoning: a survivor, not a new
					// failure.  Its wait record stays published for the
					// RunError's blocked-rank listing; a leaf wait that
					// unwound before publishing settles its pending record
					// here (there is no lazyWait handler below a leaf).
					rt.waitSlots[id].unwound.Store(true)
					if r := ranks[id]; r != nil {
						r.settleUnwoundWait(nil)
					}
					ranks[id].emitAbortEvent()
				case rankAbortPanic:
					failures <- RankFailure{Rank: id, Reason: fmt.Sprintf("Abort: %v", v.err)}
				default:
					rt.poison(CausePanic, fmt.Sprintf("rank %d panicked: %v", id, p), "", nil)
					failures <- RankFailure{Rank: id, Reason: fmt.Sprintf("panic: %v", p)}
				}
			}()
			r := rt.newRank(id)
			ranks[id] = r
			main(r)
		}(id)
	}

	// The watchdog is the only non-rank goroutine the runtime starts; it
	// scans the wait registry for global no-progress and enforces Deadline.
	var watchWG sync.WaitGroup
	stopWatch := make(chan struct{})
	if rcfg.HangTimeout > 0 || rcfg.Deadline > 0 {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			rt.watchdog(stopWatch)
		}()
	}

	wg.Wait()
	if rt.tp != nil {
		// Local ranks are done: late peer-failure upcalls must no longer
		// poison the run (peer shutdown is unsynchronized).  If the run
		// aborted, re-announce it synchronously — the poison-time Bye rides a
		// separate goroutine that may not have run before Close tears the
		// links down.
		rt.tpFinished.Store(true)
		if rt.abort.flag.Load() {
			rt.abort.mu.Lock()
			text := fmt.Sprintf("node %d aborted (%s): %s", rt.tp.Node(), rt.abort.cause, rt.abort.text)
			dead := append([]int(nil), rt.abort.deadNodes...)
			rt.abort.mu.Unlock()
			rt.tp.Abort(text, dead)
		}
	}
	close(stopWatch)
	watchWG.Wait()
	// Attach recording-time context to the trace before anything dumps it:
	// node identity, rank placement, and — under a real transport — the
	// clock-offset samples and link events cross-node merging needs.
	if rcfg.Trace != nil {
		nodeOf := make([]int32, rcfg.NRanks)
		for id := 0; id < rcfg.NRanks; id++ {
			nodeOf[id] = int32(place.NodeOf(id))
		}
		meta := obs.TraceMeta{Node: -1, Nodes: rcfg.Spec.Nodes, NodeOfRank: nodeOf}
		if rt.tp != nil {
			meta.Node = rt.tp.Node()
			meta.Nodes = rt.tp.Nodes()
			meta.Clock = rt.tp.ClockSamples()
			meta.Links = rt.tp.LinkEvents()
		}
		rcfg.Trace.SetMeta(meta)
	}
	rt.harvestObs(ranks)
	if harvest != nil {
		harvest(ranks)
	}

	if rcfg.HelpersPerNode > 0 {
		for _, ns := range rt.nodes {
			if ns == nil || ns.helperStop == nil {
				continue
			}
			close(ns.helperStop)
			ns.helperWG.Wait()
		}
	}
	close(failures)
	var fails []RankFailure
	for f := range failures {
		fails = append(fails, f)
	}
	if len(fails) > 0 || rt.abort.flag.Load() {
		return rt.buildRunError(fails)
	}
	return nil
}

// testNewRankHook, when non-nil, runs at the top of newRank.  Tests use it to
// simulate a rank that dies during bootstrap, which leaves ranks[id] == nil —
// the harvest paths must tolerate that.
var testNewRankHook func(id int)

func (rt *Runtime) newRank(id int) *Rank {
	if testNewRankHook != nil {
		testNewRankHook(id)
	}
	node := rt.place.NodeOf(id)
	local := rt.place.LocalIndex(id)
	r := &Rank{
		id:        id,
		rt:        rt,
		node:      node,
		local:     local,
		chanCache: make(map[chanKey]*channel),
		remCache:  make(map[chanKey]*remoteChannel),
		slot:      &rt.waitSlots[id],

		// Live wait-record publication feeds both the hang watchdog and
		// the monitor's /ranks view.
		liveWaitRecords: rt.cfg.HangTimeout > 0 || rt.cfg.MonitorAddr != "",
	}
	r.thief = rt.nodes[node].sched.NewThief(local)
	r.attachObs()
	// Progress applies incoming one-sided operations at every SSW yield
	// boundary, so a rank parked in any wait still exposes its windows and
	// unblocks remote origins.
	r.wait = ssw.Waiter{Steal: r.thief, SpinBudget: rt.cfg.SpinBudget, Poison: rt.abortErr, Progress: r.rmaProgress}
	r.world = &Comm{r: r, sh: rt.world, myRank: id}
	return r
}

// Metrics returns the run's metrics registry, or nil when metrics are off.
func (r *Rank) Metrics() *obs.Metrics {
	if r.met == nil {
		return nil
	}
	return r.met.reg
}

func allRanks(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// StealStats reports a rank's lifetime stealing counters (diagnostics).
func (r *Rank) StealStats() (attempts, stolen int64) {
	return r.thief.Attempts, r.thief.Stolen
}
