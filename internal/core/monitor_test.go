package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestMonitorLiveRun drives the whole MonitorAddr path end to end: rank 1
// blocks in an eager receive (the induced stall) while rank 0 scrapes the
// live monitor until /ranks reports the blocked wait state, round-trips
// /metrics through ParsePrometheus mid-run, and only then releases rank 1.
func TestMonitorLiveRun(t *testing.T) {
	met := obs.NewMetrics()
	type seen struct {
		blocked obs.RankState
		metrics obs.Snapshot
	}
	got := make(chan seen, 1)
	err := Run(Config{NRanks: 2, Metrics: met, MonitorAddr: "127.0.0.1:0"}, func(r *Rank) {
		c := r.World()
		buf := make([]byte, 8)
		if r.ID() == 1 {
			c.Recv(buf, 0, 7)
			return
		}
		base := "http://" + r.MonitorAddr()
		deadline := time.Now().Add(20 * time.Second)
		var s seen
		for {
			var view obs.RanksView
			if err := getJSON(base+"/ranks", &view); err != nil {
				r.Abort(fmt.Errorf("scraping /ranks: %w", err))
			}
			if len(view.Ranks) == 2 && view.Ranks[1].State == "blocked" && view.Ranks[1].Wait != nil {
				s.blocked = view.Ranks[1]
				break
			}
			if time.Now().After(deadline) {
				r.Abort(fmt.Errorf("rank 1 never showed as blocked: %+v", view))
			}
			time.Sleep(time.Millisecond)
		}
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			r.Abort(err)
		}
		snap, err := obs.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if err != nil {
			r.Abort(fmt.Errorf("mid-run /metrics does not parse: %w", err))
		}
		s.metrics = snap
		got <- s
		c.Send(buf, 1, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := <-got
	w := s.blocked.Wait
	if w.Kind != "p2p-recv" || w.Peer != 0 || w.Tag != 7 || w.BlockedNs <= 0 {
		t.Fatalf("blocked wait state = %+v, want p2p-recv from rank 0 tag 7", w)
	}
	// The run's registry (not a private one) must be what the scrape serves:
	// the runtime's pre-resolved metric set registers pure_* series on it.
	names := map[string]bool{}
	for _, c := range s.metrics.Counters {
		names[c.Name] = true
	}
	if !names["pure_monitor_scrapes_total"] || !names["pure_sends_eager_total"] {
		t.Fatalf("mid-run scrape missing runtime metrics: %+v", names)
	}
}

// TestMonitorRankStatesLifecycle checks the /ranks states a run moves
// through, including "done", via an httptest server mounted directly on the
// runtime's wait-registry hook.
func TestMonitorRankStatesLifecycle(t *testing.T) {
	done := make(chan struct{})
	err := Run(Config{NRanks: 2, MonitorAddr: "127.0.0.1:0"}, func(r *Rank) {
		if r.ID() != 0 {
			return // finishes immediately -> "done"
		}
		srv := httptest.NewServer(obs.NewMonitor(nil, r.Runtime().RankStates).Handler())
		defer srv.Close()
		deadline := time.Now().Add(20 * time.Second)
		for {
			var view obs.RanksView
			if err := getJSON(srv.URL+"/ranks", &view); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if view.Ranks[0].State == "running" && view.Ranks[1].State == "done" {
				close(done)
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("states never settled: %+v", view.Ranks)
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("lifecycle states not observed")
	}
}

func TestMonitorAddrAccessors(t *testing.T) {
	err := Run(Config{NRanks: 1, MonitorAddr: "127.0.0.1:0"}, func(r *Rank) {
		addr := r.MonitorAddr()
		if addr == "" || strings.HasSuffix(addr, ":0") {
			t.Errorf("MonitorAddr = %q, want a bound port", addr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	err = Run(Config{NRanks: 1}, func(r *Rank) {
		if r.MonitorAddr() != "" {
			t.Errorf("MonitorAddr without monitor = %q, want empty", r.MonitorAddr())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMonitorBadAddrFailsRun(t *testing.T) {
	ran := false
	err := Run(Config{NRanks: 1, MonitorAddr: "256.0.0.1:bogus"}, func(r *Rank) { ran = true })
	if err == nil || !strings.Contains(err.Error(), "monitor") {
		t.Fatalf("err = %v, want monitor listen failure", err)
	}
	if ran {
		t.Fatal("ranks launched despite monitor failure")
	}
}
