package core

import (
	"repro/internal/ssw"
	"repro/internal/topology"
)

// liveLocalRanks counts the spinning goroutines this process hosts: with a
// real transport (tpNode >= 0), the ranks placed on this process's node
// plus its helper threads; without one, every rank of every virtual node —
// they all run in this one Go scheduler and contend for the same
// GOMAXPROCS — plus each populated node's helpers.
func liveLocalRanks(place *topology.Placement, nodes, helpersPerNode, tpNode int) int {
	if tpNode >= 0 {
		return len(place.RanksOnNode(tpNode)) + helpersPerNode
	}
	live := 0
	for n := 0; n < nodes; n++ {
		if l := len(place.RanksOnNode(n)); l > 0 {
			live += l + helpersPerNode
		}
	}
	return live
}

// deriveSpinBudget grades the SSW-Loop spin budget by how oversubscribed
// the host is:
//
//   - Every spinner can own a hardware thread (gomaxprocs >= live): spin
//     freely, the paper's discipline — the peer flipping the condition is
//     running *right now* on another core.
//   - A single P (gomaxprocs == 1): no peer can run concurrently, ever, so
//     every probe after the first is pure waste and the only useful move
//     is yielding the P to whoever will flip the condition.  Near-immediate
//     yield: a blocked receive pays two probes per wakeup, not a full
//     budget.
//   - In between: scale the budget by the occupancy ratio.  Some peers are
//     running concurrently, so moderate spinning still catches flips
//     without a scheduler round trip, but burning a full budget per wakeup
//     just starves the descheduled ones.
func deriveSpinBudget(gomaxprocs, live int) int {
	switch {
	case live <= 0 || gomaxprocs >= live:
		return ssw.DefaultSpinBudget
	case gomaxprocs == 1:
		return 2
	default:
		b := ssw.DefaultSpinBudget * gomaxprocs / live
		if b < 4 {
			b = 4
		}
		return b
	}
}
