package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/queue"
)

// This file is the persistent-endpoint layer: the paper's channel manager
// resolves "message arguments (e.g., ranks, tags, datatypes, etc.) to the
// appropriate data structure" once, and every later operation on the same
// logical (sender, receiver, tag, comm) pair reuses the resolved object.
// A Channel binds everything the per-call path used to recompute — the
// chanKey hash lookup, the peer-rank translation, the SameNode placement
// test, the eager-queue pointer, and the trace/metric handles — so the
// steady-state Send/Recv fast paths touch only pre-resolved fields and
// allocate nothing.  Comm.Send/Recv/Isend/Irecv are thin wrappers over a
// per-rank open-addressed endpoint cache, so legacy callers get the same
// fast path without source changes.

// epDir distinguishes the two halves of a unidirectional channel.
type epDir uint8

const (
	epSend epDir = iota
	epRecv
)

func (d epDir) String() string {
	if d == epSend {
		return "send"
	}
	return "receive"
}

// epKey identifies one cached endpoint in a rank's table.  peer is the
// global rank id; dir keeps a rank's send and receive endpoints for the
// same pair distinct (they front different unidirectional channels).
type epKey struct {
	comm uint64
	peer int32
	tag  int32
	dir  epDir
}

// epHash mixes the key fields with a 64-bit finalizer (splitmix64's) so
// sequential tags and ranks spread across the table.
func epHash(k epKey) uint32 {
	h := k.comm*0x9e3779b97f4a7c15 ^
		uint64(uint32(k.peer))*0x85ebca77c2b2ae63 ^
		uint64(uint32(k.tag))*0xc2b2ae3d27d4eb4f ^
		uint64(k.dir)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}

// epTable is the per-rank endpoint cache: open-addressed, power-of-two
// sized, linear probing, grown at 50% load.  It is owned by one rank's
// goroutine, so lookups take no locks and the repeat-pair path never
// touches the runtime's shared sync.Map.
type epTable struct {
	keys []epKey
	eps  []*Channel // nil marks an empty slot
	n    int
}

func (t *epTable) lookup(k epKey) *Channel {
	eps := t.eps
	if len(eps) == 0 {
		return nil
	}
	mask := uint32(len(eps) - 1)
	i := epHash(k) & mask
	for {
		ep := eps[i]
		if ep == nil {
			return nil
		}
		if t.keys[i] == k {
			return ep
		}
		i = (i + 1) & mask
	}
}

func (t *epTable) insert(k epKey, ep *Channel) {
	if 2*(t.n+1) > len(t.eps) {
		t.grow()
	}
	mask := uint32(len(t.eps) - 1)
	i := epHash(k) & mask
	for t.eps[i] != nil {
		i = (i + 1) & mask
	}
	t.keys[i], t.eps[i] = k, ep
	t.n++
}

func (t *epTable) grow() {
	oldKeys, oldEps := t.keys, t.eps
	size := 16
	if len(oldEps) > 0 {
		size = len(oldEps) * 2
	}
	t.keys = make([]epKey, size)
	t.eps = make([]*Channel, size)
	mask := uint32(size - 1)
	for i, ep := range oldEps {
		if ep == nil {
			continue
		}
		j := epHash(oldKeys[i]) & mask
		for t.eps[j] != nil {
			j = (j + 1) & mask
		}
		t.keys[j], t.eps[j] = oldKeys[i], ep
	}
}

// Channel is a persistent point-to-point endpoint: one rank's handle on one
// direction of a (sender, receiver, tag, comm) channel.  Obtain endpoints
// from Comm.SendChannel / Comm.RecvChannel; they are cached per rank, so
// repeated calls with the same arguments return the identical object.  A
// Channel belongs to the rank that created it and must not be shared.
//
// Send and Recv are the zero-allocation fast paths for eager payloads
// (len(buf) < SmallMsgMax on an intra-node pair); Isend and Irecv recycle
// request objects through a per-endpoint free list, so steady-state
// nonblocking traffic does not allocate either.  Each request returned by
// Isend/Irecv must be completed by exactly one Wait/Waitall; completion
// returns it to the pool, after which the handle is dead.
type Channel struct {
	r      *Rank
	peer   int // global peer rank
	peer32 int32
	tag    int
	comm   uint64
	dir    epDir

	eagerMax int            // the eager/rendezvous threshold, resolved once
	ch       *channel       // intra-node channel; nil when the peer is remote
	q        *queue.PBQ     // eager queue, bound on first eager operation
	rem      *remoteChannel // inter-node mailbox, bound on first nonblocking probe
	batch    []byte         // SendBatch coalescing scratch, endpoint-owned

	// Pre-resolved observability handles.  All nil when the corresponding
	// layer is disabled, so the fast path pays one nil check per layer and
	// zero map or interface hops.
	trace      *obs.RankTrace
	cSends     *obs.Counter // eager sends (send endpoints)
	cSendBytes *obs.Counter
	gDepth     *obs.Gauge
	cStalls    *obs.Counter
	cRecvs     *obs.Counter // eager receives (recv endpoints)
	cRecvBytes *obs.Counter

	freeReq *Request // intrusive free list of recycled requests
}

// endpoint returns the rank's cached endpoint for (comm, global peer, tag,
// dir), creating it on first use.
func (r *Rank) endpoint(commID uint64, peer, tag int, dir epDir) *Channel {
	k := epKey{comm: commID, peer: int32(peer), tag: int32(tag), dir: dir}
	if ep := r.eps.lookup(k); ep != nil {
		return ep
	}
	return r.newEndpoint(k)
}

// newEndpoint builds and caches one endpoint: all the per-message work the
// old per-call path repeated — peer validation, placement lookup, channel
// resolution, metric handle resolution — happens exactly once, here.
func (r *Rank) newEndpoint(k epKey) *Channel {
	peer := int(k.peer)
	if peer == r.id {
		if k.dir == epSend {
			panic("core: self-send is not supported; ranks are threads, use local state")
		}
		panic("core: self-receive is not supported")
	}
	ep := &Channel{
		r: r, peer: peer, peer32: k.peer, tag: int(k.tag), comm: k.comm,
		dir: k.dir, eagerMax: r.rt.cfg.SmallMsgMax, trace: r.trace,
	}
	if r.rt.place.SameNode(r.id, peer) {
		ck := chanKey{src: r.id, dst: peer, tag: ep.tag, comm: k.comm}
		if k.dir == epRecv {
			ck.src, ck.dst = peer, r.id
		}
		ep.ch = r.getChannel(ck)
	}
	if m := r.met; m != nil {
		ep.cSends, ep.cSendBytes = m.sendsEager, m.bytesEager
		ep.gDepth, ep.cStalls = m.pbqDepthMax, m.pbqStallWaits
		ep.cRecvs, ep.cRecvBytes = m.recvsEager, m.bytesReceived
	}
	r.eps.insert(k, ep)
	return ep
}

// Peer returns the endpoint's peer as a global rank id.
func (ep *Channel) Peer() int { return ep.peer }

// Tag returns the endpoint's message tag.
func (ep *Channel) Tag() int { return ep.tag }

// bindPBQ resolves the eager queue on the endpoint's first eager operation
// (rendezvous-only channels never pay for PBQ slot storage).
func (ep *Channel) bindPBQ() *queue.PBQ {
	ep.q = ep.ch.pbq(ep.r.rt.cfg.PBQSlots, ep.eagerMax)
	return ep.q
}

func (ep *Channel) badDir(op string) {
	panic(fmt.Sprintf("core: %s on a %s endpoint (peer %d, tag %d)", op, ep.dir, ep.peer, ep.tag))
}

// Send sends buf to the endpoint's peer, blocking until the buffer is
// reusable.  The eager intra-node case with no pending nonblocking sends is
// allocation-free: a bounds check, a pre-resolved queue enqueue, and the
// counter bumps.
func (ep *Channel) Send(buf []byte) {
	if ep.dir != epSend {
		ep.badDir("Send")
	}
	if ep.ch != nil && len(buf) < ep.eagerMax {
		if ep.ch.sendPend.head() == nil {
			r := ep.r
			r.stats.SendsEager++
			r.stats.BytesSent += int64(len(buf))
			q := ep.q
			if q == nil {
				q = ep.bindPBQ()
			}
			if ep.trace != nil {
				ep.trace.Emit(obs.KSendEager, ep.peer32, int64(len(buf)))
			}
			if ep.cSends != nil {
				ep.cSends.Inc()
				ep.cSendBytes.Add(int64(len(buf)))
				ep.gDepth.Max(int64(q.Len()))
			}
			if q.TryEnqueue(buf) {
				return
			}
			ep.sendStall(q, buf)
			return
		}
	}
	ep.r.waitReq(ep.Isend(buf))
}

// sendStall is the backpressure slow path: the PureBufferQueue is full, so
// the send parks in the SSW-Loop until the receiver drains a slot.
func (ep *Channel) sendStall(q *queue.PBQ, buf []byte) {
	r := ep.r
	var t0 int64
	if ep.trace != nil {
		t0 = ep.trace.Now()
	}
	if ep.cStalls != nil {
		ep.cStalls.Inc()
	}
	r.pendRec = WaitRecord{Kind: WaitP2PSend, Peer: ep.peer, Tag: ep.tag, Comm: ep.comm}
	r.leafWait(func() bool { return q.TryEnqueue(buf) })
	if ep.trace != nil {
		ep.trace.EmitSpan(obs.KPBQStall, ep.peer32, int64(len(buf)), t0)
	}
}

// Recv receives from the endpoint's peer into buf, blocking until delivery;
// it returns the byte count.  The eager intra-node case with no pending
// nonblocking receives dequeues directly, allocation-free.
func (ep *Channel) Recv(buf []byte) int {
	if ep.dir != epRecv {
		ep.badDir("Recv")
	}
	if ep.ch != nil && len(buf) < ep.eagerMax {
		if ep.ch.recvPend.head() == nil {
			r := ep.r
			r.stats.RecvsEager++
			q := ep.q
			if q == nil {
				q = ep.bindPBQ()
			}
			n, ok := q.TryDequeue(buf)
			if !ok {
				n = ep.recvStall(q, buf)
			}
			r.stats.BytesReceived += int64(n)
			if ep.trace != nil {
				ep.trace.Emit(obs.KRecvEager, ep.peer32, int64(n))
			}
			if ep.cRecvs != nil {
				ep.cRecvs.Inc()
				ep.cRecvBytes.Add(int64(n))
			}
			return n
		}
	}
	return ep.r.waitReq(ep.Irecv(buf))
}

// recvStall parks in the SSW-Loop until the sender publishes a message.
func (ep *Channel) recvStall(q *queue.PBQ, buf []byte) int {
	r := ep.r
	var n int
	r.pendRec = WaitRecord{Kind: WaitP2PRecv, Peer: ep.peer, Tag: ep.tag, Comm: ep.comm}
	r.leafWait(func() bool {
		var ok bool
		n, ok = q.TryDequeue(buf)
		return ok
	})
	return n
}

// Isend starts a nonblocking send on the endpoint; complete it with
// Wait/Waitall, which recycles the request into the endpoint's pool.
func (ep *Channel) Isend(buf []byte) *Request {
	if ep.dir != epSend {
		ep.badDir("Isend")
	}
	r := ep.r
	if ep.ch == nil {
		return r.isend(ep.comm, buf, ep.peer, ep.tag)
	}
	r.stats.BytesSent += int64(len(buf))
	req := ep.getReq()
	req.ch, req.buf = ep.ch, buf
	req.peer, req.tag, req.comm = ep.peer32, ep.tag, ep.comm
	if len(buf) < ep.eagerMax {
		r.stats.SendsEager++
		req.kind = reqSendEager
		if ep.trace != nil {
			ep.trace.Emit(obs.KSendEager, ep.peer32, int64(len(buf)))
		}
		if ep.cSends != nil {
			ep.cSends.Inc()
			ep.cSendBytes.Add(int64(len(buf)))
		}
	} else {
		r.stats.SendsRendezvous++
		req.kind = reqSendRvz
		if ep.trace != nil {
			ep.trace.Emit(obs.KSendRendezvous, ep.peer32, int64(len(buf)))
		}
		if r.met != nil {
			r.met.countSend(reqSendRvz, len(buf))
		}
	}
	ep.ch.sendPend.push(req)
	r.progressSend(ep.ch)
	return req
}

// Irecv starts a nonblocking receive on the endpoint; complete it with
// Wait/Waitall, which recycles the request into the endpoint's pool.
func (ep *Channel) Irecv(buf []byte) *Request {
	if ep.dir != epRecv {
		ep.badDir("Irecv")
	}
	r := ep.r
	if ep.ch == nil {
		return r.irecv(ep.comm, buf, ep.peer, ep.tag)
	}
	req := ep.getReq()
	req.ch, req.buf = ep.ch, buf
	req.peer, req.tag, req.comm = ep.peer32, ep.tag, ep.comm
	if len(buf) < ep.eagerMax {
		r.stats.RecvsEager++
		req.kind = reqRecvEager
	} else {
		r.stats.RecvsRendezvous++
		req.kind = reqRecvRvz
	}
	ep.ch.recvPend.push(req)
	r.progressRecv(ep.ch)
	return req
}

// getReq takes a request from the endpoint's pool, or allocates the pool's
// next entry when all are in flight (steady state never allocates: each
// completed request returns to the free list in waitReq).
func (ep *Channel) getReq() *Request {
	req := ep.freeReq
	if req == nil {
		return &Request{owner: ep}
	}
	ep.freeReq = req.nextFree
	*req = Request{owner: ep}
	return req
}

// releaseReq returns a completed pooled request to its owning endpoint.
// Requests created by the legacy rank-level isend/irecv (owner == nil) and
// RMA link requests are never pooled.  The pooledFree guard makes a
// redundant Wait on an already-completed request harmless (it was already
// harmless before pooling) instead of corrupting the free list.
func releaseReq(req *Request) {
	ep := req.owner
	if ep == nil || req.pooledFree {
		return
	}
	req.pooledFree = true
	req.buf = nil
	req.nextFree = ep.freeReq
	ep.freeReq = req
}

// ---- Persistent operations (the MPI_Send_init / MPI_Recv_init analogue,
// which mpi2pure targets) ----

// PersistentOp binds an endpoint to a fixed buffer once; Start posts the
// operation and Wait completes it, any number of times.  This is the
// analogue of MPI's persistent requests (MPI_Send_init / MPI_Recv_init /
// MPI_Start / MPI_Wait), which Pure's persistent channels implement for
// free: Start is exactly a pooled Isend/Irecv on the prebound endpoint.
type PersistentOp struct {
	ep  *Channel
	buf []byte
	req *Request
}

// SendInit creates a persistent send of buf to dst with tag.
func (c *Comm) SendInit(buf []byte, dst, tag int) *PersistentOp {
	return &PersistentOp{ep: c.SendChannel(dst, tag), buf: buf}
}

// RecvInit creates a persistent receive into buf from src with tag.
func (c *Comm) RecvInit(buf []byte, src, tag int) *PersistentOp {
	return &PersistentOp{ep: c.RecvChannel(src, tag), buf: buf}
}

// Start posts the operation (MPI_Start).  The previous start must have been
// completed with Wait.
func (p *PersistentOp) Start() {
	if p.req != nil {
		panic("core: Start on a persistent operation whose previous start was not waited")
	}
	if p.ep.dir == epSend {
		p.req = p.ep.Isend(p.buf)
	} else {
		p.req = p.ep.Irecv(p.buf)
	}
}

// Wait completes the outstanding start and returns the byte count for
// receives.  Waiting an unstarted op is a no-op (MPI_REQUEST_NULL).
func (p *PersistentOp) Wait() int {
	req := p.req
	if req == nil {
		return 0
	}
	p.req = nil
	return p.ep.r.waitReq(req)
}

// Startall posts every operation (MPI_Startall).  Receives are posted
// before sends so a symmetric exchange cannot deadlock on rendezvous pairs.
func Startall(ops ...*PersistentOp) {
	for _, p := range ops {
		if p != nil && p.ep.dir == epRecv {
			p.Start()
		}
	}
	for _, p := range ops {
		if p != nil && p.ep.dir == epSend {
			p.Start()
		}
	}
}

// WaitallOps completes every operation (the persistent-op MPI_Waitall).
func WaitallOps(ops ...*PersistentOp) {
	for _, p := range ops {
		if p != nil {
			p.Wait()
		}
	}
}
