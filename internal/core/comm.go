package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/collective"
	"repro/internal/obs"
)

// collTag is the reserved tag space for runtime-internal leader-to-leader
// collective traffic.  Application tags must be below it.
const collTag = 1 << 29

// commShared is the rank-independent state of one communicator: the member
// list and, per participating node, the lock-free collective structures
// shared by that node's member threads.
type commShared struct {
	id      uint64
	members []int       // global rank ids in comm-rank order
	indexOf map[int]int // global rank -> comm rank

	nodeList      []int   // node ids with members, ascending
	groups        [][]int // per node index: comm ranks on that node, ascending
	nodeIdxOfRank []int   // comm rank -> index into nodeList
	localIdxOf    []int   // comm rank -> index within its node group
	nodes         []*commNode
}

// commNode holds one node's collective structures for one communicator.
type commNode struct {
	sptd *collective.SPTD
	prs  sync.Map // payload bucket (int) -> *collective.PartitionedReducer
	n    int
}

type splitKey struct {
	parent uint64
	epoch  uint64
	color  int
}

// worldCommID is the world communicator's id.  Derived communicators (Split)
// hash their lineage into ids with the top bit set (splitCommID), so the two
// spaces can never collide.
const worldCommID = 1

// splitCommID derives a communicator id from its lineage: the parent comm's
// id, the handle's Split call count, and the color.  Every member computes
// the same id from the same collective history — no shared counter — which
// is what keeps communicator ids consistent across OS processes when the
// runtime spans nodes over a real transport.
func splitCommID(parent, epoch uint64, color int) uint64 {
	h := mix64(parent ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ epoch)
	h = mix64(h ^ uint64(int64(color)))
	return h | 1<<63
}

// mix64 is the splitmix64 finalizer (a fixed full-avalanche permutation).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newCommShared builds the shared state for a communicator over the given
// global ranks (which must be in the desired comm-rank order).
func (rt *Runtime) newCommShared(id uint64, members []int) *commShared {
	sh := &commShared{
		id:            id,
		members:       members,
		indexOf:       make(map[int]int, len(members)),
		nodeIdxOfRank: make([]int, len(members)),
		localIdxOf:    make([]int, len(members)),
	}
	for cr, g := range members {
		sh.indexOf[g] = cr
	}
	nodeIdx := map[int]int{}
	for cr, g := range members {
		n := rt.place.NodeOf(g)
		i, ok := nodeIdx[n]
		if !ok {
			i = len(sh.nodeList)
			nodeIdx[n] = i
			sh.nodeList = append(sh.nodeList, n)
			sh.groups = append(sh.groups, nil)
		}
		sh.nodeIdxOfRank[cr] = i
		sh.localIdxOf[cr] = len(sh.groups[i])
		sh.groups[i] = append(sh.groups[i], cr)
	}
	// Members arrive in ascending comm-rank order, so groups are ascending,
	// but nodeList may be out of order; normalize to ascending node id so
	// the leader tree is deterministic.
	if !sort.IntsAreSorted(sh.nodeList) {
		perm := make([]int, len(sh.nodeList))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool { return sh.nodeList[perm[a]] < sh.nodeList[perm[b]] })
		newList := make([]int, len(sh.nodeList))
		newGroups := make([][]int, len(sh.groups))
		inv := make([]int, len(perm))
		for newI, oldI := range perm {
			newList[newI] = sh.nodeList[oldI]
			newGroups[newI] = sh.groups[oldI]
			inv[oldI] = newI
		}
		sh.nodeList, sh.groups = newList, newGroups
		for cr := range sh.nodeIdxOfRank {
			sh.nodeIdxOfRank[cr] = inv[sh.nodeIdxOfRank[cr]]
		}
	}
	sh.nodes = make([]*commNode, len(sh.nodeList))
	for i, g := range sh.groups {
		sh.nodes[i] = &commNode{
			sptd: collective.NewSPTD(len(g), rt.cfg.SPTDMax),
			n:    len(g),
		}
	}
	return sh
}

// pr returns the node's PartitionedReducer sized for payloads of n bytes,
// creating the power-of-two size bucket on demand.
func (cn *commNode) pr(n int) *collective.PartitionedReducer {
	bucket := 64
	for bucket < n {
		bucket <<= 1
	}
	if v, ok := cn.prs.Load(bucket); ok {
		return v.(*collective.PartitionedReducer)
	}
	v, _ := cn.prs.LoadOrStore(bucket, collective.NewPartitionedReducer(cn.n, bucket))
	return v.(*collective.PartitionedReducer)
}

// Comm is one rank's handle on a communicator (the analogue of MPI_Comm).
type Comm struct {
	r          *Rank
	sh         *commShared
	myRank     int // rank within the communicator
	splitEpoch uint64
	winEpoch   uint64 // WinCreate calls on this handle (window registry sequence)
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator's member count.
func (c *Comm) Size() int { return len(c.sh.members) }

// GlobalRank translates a comm rank to the global (world) rank.
func (c *Comm) GlobalRank(commRank int) int { return c.sh.members[commRank] }

func (c *Comm) checkPeer(peer int, what string) {
	if peer < 0 || peer >= len(c.sh.members) {
		panic(fmt.Sprintf("core: %s rank %d out of range [0,%d)", what, peer, len(c.sh.members)))
	}
}

func checkTag(tag int) {
	if tag < 0 || tag >= collTag {
		panic(fmt.Sprintf("core: tag %d outside [0, %d)", tag, collTag))
	}
}

// SendChannel returns the rank's persistent send endpoint to dst (comm
// rank) with tag, creating and caching it on first use: repeated calls with
// the same arguments return the identical *Channel.  Hot loops should hoist
// the call out and reuse the endpoint; Comm.Send/Isend do the (cheap,
// lock-free) cache lookup per call.
func (c *Comm) SendChannel(dst, tag int) *Channel {
	c.checkPeer(dst, "destination")
	checkTag(tag)
	return c.r.endpoint(c.sh.id, c.sh.members[dst], tag, epSend)
}

// RecvChannel returns the rank's persistent receive endpoint from src (comm
// rank) with tag, creating and caching it on first use.
func (c *Comm) RecvChannel(src, tag int) *Channel {
	c.checkPeer(src, "source")
	checkTag(tag)
	return c.r.endpoint(c.sh.id, c.sh.members[src], tag, epRecv)
}

// Send sends buf to dst (comm rank) with tag, blocking until the buffer is
// reusable (eager: buffered; rendezvous: delivered).  It is a thin wrapper
// over the persistent endpoint cache: the common case — an intra-node eager
// send with no pending nonblocking sends — takes the endpoint's
// allocation-free fast path straight into the PureBufferQueue.
func (c *Comm) Send(buf []byte, dst, tag int) {
	c.SendChannel(dst, tag).Send(buf)
}

// Recv receives a message from src (comm rank) with tag into buf, blocking
// until delivery; it returns the byte count.  Like Send, it wraps the
// cached receive endpoint, whose eager intra-node case dequeues directly.
func (c *Comm) Recv(buf []byte, src, tag int) int {
	return c.RecvChannel(src, tag).Recv(buf)
}

// Isend starts a nonblocking send; complete it with Wait/Waitall (exactly
// once — completion recycles the request into the endpoint's pool).
func (c *Comm) Isend(buf []byte, dst, tag int) *Request {
	return c.SendChannel(dst, tag).Isend(buf)
}

// Irecv starts a nonblocking receive; complete it with Wait/Waitall
// (exactly once — completion recycles the request into the endpoint's pool).
func (c *Comm) Irecv(buf []byte, src, tag int) *Request {
	return c.RecvChannel(src, tag).Irecv(buf)
}

// Wait blocks until req completes and returns the transferred byte count.
// A nil request is a no-op (MPI_REQUEST_NULL).
func (c *Comm) Wait(req *Request) int {
	if req == nil {
		return 0
	}
	return c.r.waitReq(req)
}

// Waitall completes every request, skipping nil entries (the analogue of
// MPI_REQUEST_NULL slots in an MPI_Waitall array).
func (c *Comm) Waitall(reqs ...*Request) {
	for _, q := range reqs {
		if q == nil {
			continue
		}
		c.r.waitReq(q)
	}
}

// multiNode reports whether the communicator spans nodes.
func (c *Comm) multiNode() bool { return len(c.sh.nodeList) > 1 }

// collWait builds a lazyWait holding a WaitCollective record for the duration
// of a collective call; the record is published only if the collective
// actually stalls (nested leader-tree p2p waits overlay it and restore it on
// completion).  Seq is the SPTD round being entered, so a watchdog dump of a
// stuck Barrier shows which ranks reached round N and which are a round
// behind — the classic "someone never entered the collective" signature.
func (c *Comm) collWait(op string, ni, tid int) lazyWait {
	return lazyWait{r: c.r, rec: WaitRecord{
		Kind: WaitCollective, Peer: -1, Comm: c.sh.id, Op: op,
		Seq: c.sh.nodes[ni].sptd.Round(tid) + 1,
	},
		// On a multi-node comm over the real transport the collective's
		// critical path runs through the leaders' socket legs, so waiters
		// back off to sleeps: a spinning non-leader would starve the very
		// netpoller its leader is blocked on, and the extra wakeup
		// microseconds vanish under the wire latency.  Single-node comms
		// keep the pure spin even when a transport is up.
		idle: c.r.rt.tp != nil && c.multiNode()}
}

// Barrier blocks until every comm member has entered it.
func (c *Comm) Barrier() {
	c.r.stats.Barriers++
	t0 := c.r.traceStart()
	sh := c.sh
	ni := sh.nodeIdxOfRank[c.myRank]
	tid := sh.localIdxOf[c.myRank]
	var bridge func()
	if c.multiNode() {
		bridge = func() { c.leaderDissemination(ni) }
	}
	lw := c.collWait("barrier", ni, tid)
	sh.nodes[ni].sptd.BarrierBridged(tid, bridge, lw.wait)
	lw.finish()
	c.r.finishColl(obs.KBarrier, t0, int64(sh.nodes[ni].sptd.Round(tid)))
}

// Allreduce folds every member's in buffer element-wise with op over dt and
// delivers the result to every member's out buffer.  Payloads at or below
// the SPTD threshold use the leader flat-combining path (paper §4.2.1);
// larger payloads use the Partitioned Reducer (§4.2.2).
func (c *Comm) Allreduce(in, out []byte, op collective.Op, dt collective.DType) {
	c.r.stats.Allreduces++
	sh := c.sh
	ni := sh.nodeIdxOfRank[c.myRank]
	tid := sh.localIdxOf[c.myRank]
	var bridge func([]byte)
	if c.multiNode() {
		bridge = func(acc []byte) {
			c.leaderReduce(ni, 0, acc, op, dt)
			c.leaderBcast(ni, 0, -1, acc)
		}
	}
	node := sh.nodes[ni]
	t0 := c.r.traceStart()
	lw := c.collWait("allreduce", ni, tid)
	if len(in) <= c.r.rt.cfg.SPTDMax {
		node.sptd.Allreduce(tid, in, out, op, dt, bridge, lw.wait)
		lw.finish()
		c.r.finishColl(obs.KAllreduce, t0, int64(node.sptd.Round(tid)))
	} else {
		node.pr(len(in)).Allreduce(tid, in, out, op, dt, bridge, lw.wait)
		lw.finish()
		c.r.finishColl(obs.KAllreduce, t0, 0)
	}
}

// Reduce folds every member's in buffer; the result lands in root's out
// buffer (other ranks may pass nil).
func (c *Comm) Reduce(in, out []byte, root int, op collective.Op, dt collective.DType) {
	c.r.stats.Reduces++
	c.checkPeer(root, "root")
	sh := c.sh
	ni := sh.nodeIdxOfRank[c.myRank]
	tid := sh.localIdxOf[c.myRank]
	rootNi := sh.nodeIdxOfRank[root]
	localRoot := 0
	if ni == rootNi {
		localRoot = sh.localIdxOf[root]
	}
	if out == nil {
		out = make([]byte, len(in))
	}
	var bridge func([]byte)
	if c.multiNode() {
		bridge = func(acc []byte) { c.leaderReduce(ni, rootNi, acc, op, dt) }
	}
	t0 := c.r.traceStart()
	lw := c.collWait("reduce", ni, tid)
	if len(in) <= c.r.rt.cfg.SPTDMax {
		// On non-root nodes the local leader receives the node reduction and
		// forwards it to the cross-node tree inside bridge.
		sh.nodes[ni].sptd.Reduce(tid, localRoot, in, out, op, dt, bridge, lw.wait)
		lw.finish()
		c.r.finishColl(obs.KReduce, t0, int64(sh.nodes[ni].sptd.Round(tid)))
		return
	}
	// Large payloads: partitioned all-reduce locally, leader forwards.
	sh.nodes[ni].pr(len(in)).Allreduce(tid, in, out, op, dt, bridge, lw.wait)
	lw.finish()
	c.r.finishColl(obs.KReduce, t0, 0)
}

// Bcast distributes root's buf to every member's buf.
func (c *Comm) Bcast(buf []byte, root int) {
	c.r.stats.Bcasts++
	c.checkPeer(root, "root")
	sh := c.sh
	ni := sh.nodeIdxOfRank[c.myRank]
	tid := sh.localIdxOf[c.myRank]
	rootNi := sh.nodeIdxOfRank[root]
	t0 := c.r.traceStart()

	if len(buf) <= c.r.rt.cfg.SPTDMax {
		rootGlobal := sh.members[root]
		lw := c.collWait("bcast", ni, tid)
		if ni == rootNi {
			localRoot := sh.localIdxOf[root]
			var bridge func([]byte)
			if c.multiNode() {
				// The root rank itself acts as its node's tree agent.
				bridge = func(b []byte) { c.leaderBcast(ni, rootNi, rootGlobal, b) }
			}
			sh.nodes[ni].sptd.Broadcast(tid, localRoot, buf, bridge, lw.wait)
			lw.finish()
			c.r.finishColl(obs.KBcast, t0, int64(sh.nodes[ni].sptd.Round(tid)))
			return
		}
		// Non-root node: the leader takes part in the cross-node tree first,
		// then broadcasts locally.
		var bridge func([]byte)
		if tid == 0 {
			bridge = func(b []byte) { c.leaderBcast(ni, rootNi, rootGlobal, b) }
		}
		sh.nodes[ni].sptd.Broadcast(tid, 0, buf, bridge, lw.wait)
		lw.finish()
		c.r.finishColl(obs.KBcast, t0, int64(sh.nodes[ni].sptd.Round(tid)))
		return
	}

	// Large payloads: binomial tree over all comm ranks via rendezvous p2p.
	c.treeBcast(buf, root)
	c.r.finishColl(obs.KBcast, t0, 0)
}

// treeBcast is a locality-oblivious binomial broadcast over comm ranks,
// used for payloads beyond the SPTD bound.
func (c *Comm) treeBcast(buf []byte, root int) {
	m := c.Size()
	v := (c.myRank - root + m) % m
	toReal := func(u int) int { return (u + root) % m }
	mask := 1
	for mask < m {
		if v&mask != 0 {
			c.collRecvEP(c.sh.members[toReal(v-mask)]).Recv(buf)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if v+mask < m && v&(mask-1) == 0 && v&mask == 0 {
			c.sendColl(buf, toReal(v+mask))
		}
		mask >>= 1
	}
}

// ---- Leader-to-leader bridging (the cross-node legs of collectives, which
// the paper delegates to MPI collectives; here: binomial trees over the
// inter-node transport) ----

// leaderRankGlobal returns the global rank of node index i's leader.
func (c *Comm) leaderRankGlobal(i int) int {
	return c.sh.members[c.sh.groups[i][0]]
}

// collSendEP / collRecvEP are the runtime-internal endpoint getters for the
// reserved collective tag, keyed by *global* rank.  Application tags live
// below collTag, so these cached endpoints never collide with user traffic,
// and the leader trees inherit the pooled (allocation-free in steady state)
// request path.
func (c *Comm) collSendEP(g int) *Channel { return c.r.endpoint(c.sh.id, g, collTag, epSend) }
func (c *Comm) collRecvEP(g int) *Channel { return c.r.endpoint(c.sh.id, g, collTag, epRecv) }

func (c *Comm) sendColl(buf []byte, dstCommRank int) {
	c.collSendEP(c.sh.members[dstCommRank]).Send(buf)
}

func (c *Comm) sendLeader(buf []byte, nodeIdx int) {
	c.collSendEP(c.leaderRankGlobal(nodeIdx)).Send(buf)
}

func (c *Comm) recvLeader(buf []byte, nodeIdx int) {
	c.collRecvEP(c.leaderRankGlobal(nodeIdx)).Recv(buf)
}

// leaderDissemination synchronizes the node leaders with the classic
// dissemination barrier (ceil(log2(m)) rounds), the same algorithm MPI
// implementations use for MPI_Barrier — half the critical path of a
// reduce+broadcast tree.  Only leaders (local index 0) call it.
func (c *Comm) leaderDissemination(myNi int) {
	m := len(c.sh.nodeList)
	one := []byte{1}
	in := make([]byte, 1)
	for dist := 1; dist < m; dist *= 2 {
		to := (myNi + dist) % m
		from := (myNi - dist + m) % m
		reqS := c.collSendEP(c.leaderRankGlobal(to)).Isend(one)
		reqR := c.collRecvEP(c.leaderRankGlobal(from)).Irecv(in)
		c.r.waitReq(reqS)
		c.r.waitReq(reqR)
	}
}

// leaderReduce runs a binomial reduction of acc across node leaders, rooted
// at node index rootNi.  Only leaders (local index 0) call it; acc is
// rewritten in place on the root node's leader.
func (c *Comm) leaderReduce(myNi, rootNi int, acc []byte, op collective.Op, dt collective.DType) {
	m := len(c.sh.nodeList)
	v := (myNi - rootNi + m) % m
	toReal := func(u int) int { return (u + rootNi) % m }
	var tmp []byte
	for mask := 1; mask < m; mask <<= 1 {
		if v&mask != 0 {
			c.sendLeader(acc, toReal(v-mask))
			return
		}
		if v+mask < m {
			if tmp == nil {
				tmp = make([]byte, len(acc))
			}
			c.recvLeader(tmp[:len(acc)], toReal(v+mask))
			collective.Accumulate(acc, tmp[:len(acc)], op, dt)
		}
	}
}

// leaderBcast runs a binomial broadcast of buf across the per-node tree
// agents from node index rootNi.  Every node's agent is its leader except
// the root's node, whose agent is the root rank itself (rootGlobal; pass -1
// when the root is known to be its node's leader, as in the all-reduce
// bridge where the leader itself bridges).  Only agents call it.
func (c *Comm) leaderBcast(myNi, rootNi, rootGlobal int, buf []byte) {
	m := len(c.sh.nodeList)
	agent := func(i int) int {
		if i == rootNi && rootGlobal >= 0 {
			return rootGlobal
		}
		return c.leaderRankGlobal(i)
	}
	v := (myNi - rootNi + m) % m
	toReal := func(u int) int { return (u + rootNi) % m }
	mask := 1
	for mask < m {
		if v&mask != 0 {
			c.collRecvEP(agent(toReal(v - mask))).Recv(buf)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if v+mask < m && v&(mask-1) == 0 && v&mask == 0 {
			c.collSendEP(agent(toReal(v + mask))).Send(buf)
		}
		mask >>= 1
	}
}

// Split partitions the communicator like MPI_Comm_split: members with equal
// color form a new communicator, ranked by (key, current rank).  A negative
// color returns nil (MPI_UNDEFINED).  Split is collective over the
// communicator.
//
// The (color, key) exchange is an Allgather rather than a shared scratch
// table, so Split works unchanged when the communicator's members span OS
// processes over a real transport; the gather/broadcast pair also provides
// the synchronization the old table needed explicit barriers for.
func (c *Comm) Split(color, key int) *Comm {
	c.r.stats.Splits++
	sh := c.sh
	c.splitEpoch++

	var mine [16]byte
	binary.LittleEndian.PutUint64(mine[0:], uint64(int64(color)))
	binary.LittleEndian.PutUint64(mine[8:], uint64(int64(key)))
	all := make([]byte, 16*c.Size())
	c.Allgather(mine[:], all)

	if color < 0 {
		return nil
	}
	type member struct{ key, commRank int }
	var group []member
	for cr := 0; cr < c.Size(); cr++ {
		ecolor := int(int64(binary.LittleEndian.Uint64(all[cr*16:])))
		ekey := int(int64(binary.LittleEndian.Uint64(all[cr*16+8:])))
		if ecolor == color {
			group = append(group, member{ekey, cr})
		}
	}
	sort.Slice(group, func(a, b int) bool {
		if group[a].key != group[b].key {
			return group[a].key < group[b].key
		}
		return group[a].commRank < group[b].commRank
	})
	members := make([]int, len(group))
	for i, g := range group {
		members[i] = sh.members[g.commRank]
	}
	k := splitKey{parent: sh.id, epoch: c.splitEpoch, color: color}
	fresh := c.r.rt.newCommShared(splitCommID(sh.id, c.splitEpoch, color), members)
	v, _ := c.r.rt.comms.LoadOrStore(k, fresh)
	newSh := v.(*commShared)
	return &Comm{r: c.r, sh: newSh, myRank: newSh.indexOf[c.r.id]}
}

// ---- Extension collectives (beyond the paper's reduce / all-reduce /
// barrier / broadcast set; root-mediated implementations) ----

// Gather collects every member's equal-sized in payload into root's out
// buffer (out must hold Size()*len(in) bytes at the root; others may pass
// nil).  Collective.
func (c *Comm) Gather(in, out []byte, root int) {
	c.r.stats.Gathers++
	c.checkPeer(root, "root")
	n := c.Size()
	if c.myRank == root {
		if len(out) < n*len(in) {
			panic(fmt.Sprintf("core: Gather root buffer %d too small for %d x %d", len(out), n, len(in)))
		}
		copy(out[root*len(in):], in)
		for cr := 0; cr < n; cr++ {
			if cr == root {
				continue
			}
			c.collRecvEP(c.sh.members[cr]).Recv(out[cr*len(in) : (cr+1)*len(in)])
		}
		return
	}
	c.collSendEP(c.sh.members[root]).Send(in)
}

// Allgather collects every member's in payload into every member's out
// buffer (Size()*len(in) bytes): a gather to rank 0 followed by a broadcast.
func (c *Comm) Allgather(in, out []byte) {
	if len(out) < c.Size()*len(in) {
		panic(fmt.Sprintf("core: Allgather buffer %d too small for %d x %d", len(out), c.Size(), len(in)))
	}
	c.Gather(in, out, 0)
	c.Bcast(out[:c.Size()*len(in)], 0)
}

// Scatter distributes contiguous len(out)-byte slices of root's in buffer
// to each member's out buffer (in must hold Size()*len(out) bytes at the
// root; others may pass nil).  Collective.
func (c *Comm) Scatter(in, out []byte, root int) {
	c.r.stats.Scatters++
	c.checkPeer(root, "root")
	n := c.Size()
	if c.myRank == root {
		if len(in) < n*len(out) {
			panic(fmt.Sprintf("core: Scatter root buffer %d too small for %d x %d", len(in), n, len(out)))
		}
		copy(out, in[root*len(out):(root+1)*len(out)])
		for cr := 0; cr < n; cr++ {
			if cr == root {
				continue
			}
			c.collSendEP(c.sh.members[cr]).Send(in[cr*len(out) : (cr+1)*len(out)])
		}
		return
	}
	c.collRecvEP(c.sh.members[root]).Recv(out)
}

// Sendrecv posts the receive, performs the send, and completes both — the
// deadlock-free paired exchange (the analogue of MPI_Sendrecv, which the
// halo exchanges in the bundled apps hand-roll).  It returns the received
// byte count.
func (c *Comm) Sendrecv(sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) int {
	rreq := c.RecvChannel(src, recvTag).Irecv(recvBuf)
	sreq := c.SendChannel(dst, sendTag).Isend(sendBuf)
	c.r.waitReq(sreq)
	return c.r.waitReq(rreq)
}
