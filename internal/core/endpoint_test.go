package core

import (
	"bytes"
	"fmt"
	"testing"
)

// TestEndpointIdentity: repeated SendChannel/RecvChannel calls with the same
// (peer, tag, comm) return the identical cached endpoint, and the endpoints
// front the same persistent channel the legacy wrappers use.
func TestEndpointIdentity(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.World()
		peer := 1 - r.ID()
		s1 := c.SendChannel(peer, 5)
		s2 := c.SendChannel(peer, 5)
		if s1 != s2 {
			t.Errorf("rank %d: SendChannel(%d, 5) returned distinct endpoints", r.ID(), peer)
		}
		r1 := c.RecvChannel(peer, 5)
		r2 := c.RecvChannel(peer, 5)
		if r1 != r2 {
			t.Errorf("rank %d: RecvChannel(%d, 5) returned distinct endpoints", r.ID(), peer)
		}
		if s1 == r1 {
			t.Errorf("rank %d: send and recv endpoints for the same pair must differ", r.ID())
		}
		if s1.Peer() != peer || s1.Tag() != 5 {
			t.Errorf("rank %d: endpoint identity (peer %d, tag %d), want (%d, 5)",
				r.ID(), s1.Peer(), s1.Tag(), peer)
		}
	})
}

// TestEndpointIsolation: endpoints with distinct tags or communicators are
// distinct objects, and traffic on one never surfaces on the other.
func TestEndpointIsolation(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.World()
		peer := 1 - r.ID()
		if c.SendChannel(peer, 1) == c.SendChannel(peer, 2) {
			t.Errorf("rank %d: distinct tags share an endpoint", r.ID())
		}
		sub := c.Split(0, c.Rank())
		if c.SendChannel(peer, 1) == sub.SendChannel(peer, 1) {
			t.Errorf("rank %d: distinct comms share an endpoint", r.ID())
		}
		// Same tag on the two comms: messages must match per communicator.
		if r.ID() == 0 {
			c.SendChannel(1, 1).Send([]byte("world"))
			sub.SendChannel(1, 1).Send([]byte("sub"))
		} else {
			buf := make([]byte, 16)
			n := sub.RecvChannel(0, 1).Recv(buf)
			if string(buf[:n]) != "sub" {
				t.Errorf("sub comm got %q, want %q", buf[:n], "sub")
			}
			n = c.RecvChannel(0, 1).Recv(buf)
			if string(buf[:n]) != "world" {
				t.Errorf("world comm got %q, want %q", buf[:n], "world")
			}
		}
		c.Barrier()
	})
}

// TestEndpointLegacyFIFO: mixed traffic — explicit endpoint ops interleaved
// with legacy Comm.Send/Isend on the same (peer, tag) pair — preserves FIFO
// order, because the wrappers resolve to the very same endpoint and channel.
func TestEndpointLegacyFIFO(t *testing.T) {
	const k = 64
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			ep := c.SendChannel(1, 9)
			for i := 0; i < k; i++ {
				msg := []byte(fmt.Sprintf("m%03d", i))
				switch i % 4 {
				case 0:
					ep.Send(msg)
				case 1:
					c.Send(msg, 1, 9)
				case 2:
					c.Wait(ep.Isend(msg))
				default:
					c.Wait(c.Isend(msg, 1, 9))
				}
			}
		} else {
			ep := c.RecvChannel(0, 9)
			buf := make([]byte, 16)
			for i := 0; i < k; i++ {
				var n int
				switch i % 3 {
				case 0:
					n = ep.Recv(buf)
				case 1:
					n = c.Recv(buf, 0, 9)
				default:
					n = c.Wait(ep.Irecv(buf))
				}
				if want := fmt.Sprintf("m%03d", i); string(buf[:n]) != want {
					t.Errorf("message %d: got %q, want %q (FIFO violated)", i, buf[:n], want)
				}
			}
		}
	})
}

// TestEndpointConcurrentFirstUse: many rank pairs create endpoints for
// fresh keys simultaneously and exchange through them immediately — the
// concurrent-creation race `go test -race` watches, complementing the
// purecheck model's deterministic exploration.
func TestEndpointConcurrentFirstUse(t *testing.T) {
	const nranks = 8
	run(t, nranks, func(r *Rank) {
		c := r.World()
		me := r.ID()
		buf := make([]byte, 8)
		for tag := 0; tag < 8; tag++ {
			for peer := 0; peer < nranks; peer++ {
				if peer == me {
					continue
				}
				// Both directions created concurrently with the peer's.
				var sreq, rreq *Request
				sreq = c.SendChannel(peer, tag).Isend([]byte{byte(me), byte(tag)})
				rreq = c.RecvChannel(peer, tag).Irecv(buf[:2])
				n := c.Wait(rreq)
				c.Wait(sreq)
				if n != 2 || buf[0] != byte(peer) || buf[1] != byte(tag) {
					t.Errorf("rank %d tag %d: got (%d, %v) from %d", me, tag, n, buf[:n], peer)
				}
			}
		}
	})
}

// TestEndpointRendezvous: endpoint ops above SmallMsgMax take the
// rendezvous path with pooled requests and still deliver exactly.
func TestEndpointRendezvous(t *testing.T) {
	const size = DefaultSmallMsgMax * 2
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			ep := c.SendChannel(1, 0)
			msg := bytes.Repeat([]byte{0xab}, size)
			for i := 0; i < 4; i++ {
				ep.Send(msg)
			}
		} else {
			ep := c.RecvChannel(0, 0)
			buf := make([]byte, size)
			for i := 0; i < 4; i++ {
				if n := ep.Recv(buf); n != size || buf[size-1] != 0xab {
					t.Errorf("round %d: got %d bytes, want %d", i, n, size)
				}
			}
		}
	})
}

// TestEndpointRequestPoolReuse: steady-state nonblocking traffic recycles
// request objects through the endpoint pool instead of allocating.
func TestEndpointRequestPoolReuse(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			ep := c.SendChannel(1, 0)
			first := ep.Isend([]byte("a"))
			c.Wait(first)
			for i := 0; i < 8; i++ {
				req := ep.Isend([]byte("b"))
				if req != first {
					t.Errorf("iteration %d: pooled request not reused (got %p, want %p)", i, req, first)
				}
				c.Wait(req)
			}
		} else {
			buf := make([]byte, 4)
			for i := 0; i < 9; i++ {
				c.Recv(buf, 0, 0)
			}
		}
	})
}

// TestEndpointDirectionPanics: using an endpoint against its direction is a
// programming error caught immediately.
func TestEndpointDirectionPanics(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		r.World().SendChannel(1, 0).Recv(make([]byte, 8))
	})
	if err == nil {
		t.Fatal("want the direction-misuse panic to surface as a run error")
	}
}

// TestPersistentOps: the MPI_Send_init/MPI_Recv_init analogue — init once,
// Start/Wait many times, including Startall over a symmetric exchange.
func TestPersistentOps(t *testing.T) {
	const rounds = 16
	run(t, 2, func(r *Rank) {
		c := r.World()
		peer := 1 - r.ID()
		out := make([]byte, 8)
		in := make([]byte, 8)
		send := c.SendInit(out, peer, 0)
		recv := c.RecvInit(in, peer, 0)
		for i := 0; i < rounds; i++ {
			out[0], out[1] = byte(r.ID()), byte(i)
			Startall(send, recv)
			WaitallOps(send, recv)
			if in[0] != byte(peer) || in[1] != byte(i) {
				t.Errorf("rank %d round %d: got (%d, %d)", r.ID(), i, in[0], in[1])
			}
		}
	})
}

// TestPersistentOpRestartPanics: restarting an op before completing the
// previous start is refused (MPI semantics).
func TestPersistentOpRestartPanics(t *testing.T) {
	err := Run(Config{NRanks: 2}, func(r *Rank) {
		c := r.World()
		if r.ID() == 0 {
			op := c.SendInit(make([]byte, 8), 1, 0)
			op.Start()
			defer func() {
				recover() // the double-start panic
				op.Wait()
				c.Send(make([]byte, 8), 1, 1) // release rank 1
			}()
			op.Start()
		} else {
			buf := make([]byte, 8)
			c.Recv(buf, 0, 0)
			c.Recv(buf, 0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEndpointTableGrowth: more distinct endpoints than the initial table
// size, all still resolving to their own identity after rehashing.
func TestEndpointTableGrowth(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.World()
		peer := 1 - r.ID()
		eps := make(map[*Channel]int, 64)
		for tag := 0; tag < 64; tag++ {
			eps[c.SendChannel(peer, tag)] = tag
		}
		if len(eps) != 64 {
			t.Errorf("rank %d: %d distinct endpoints for 64 tags", r.ID(), len(eps))
		}
		for tag := 0; tag < 64; tag++ {
			ep := c.SendChannel(peer, tag)
			if eps[ep] != tag {
				t.Errorf("rank %d: tag %d resolved to the tag-%d endpoint after growth", r.ID(), tag, eps[ep])
			}
		}
	})
}
